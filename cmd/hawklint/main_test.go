package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolEndToEnd builds the hawklint binary and drives it through the
// real `go vet -vettool` protocol — the -flags/-V=full probes, export-data
// importing, per-package .cfg invocations — which the analysistest-based
// unit tests in internal/lint never touch. The clean package must pass;
// the deliberately-broken selftest fixture must fail with at least one
// finding from every analyzer (the same negative control CI runs).
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode (CI's hawklint step covers it)")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "hawklint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/hawklint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hawklint: %v\n%s", err, out)
	}

	run := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, pkg)
		cmd.Dir = repoRoot
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// A fully annotated package with no violations must come back clean.
	if out, err := run("./internal/eventq/"); err != nil {
		t.Errorf("clean package failed: %v\n%s", err, out)
	}

	// The broken fixture must fail, with every analyzer represented.
	out, err := run("./internal/lint/testdata/src/selftest/")
	if err == nil {
		t.Fatalf("selftest fixture passed; expected findings\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("go vet did not run: %v\n%s", err, out)
	}
	for _, analyzer := range []string{"hotalloc", "structsize", "determinism", "imports"} {
		if !strings.Contains(out, "["+analyzer+"]") {
			t.Errorf("no %s finding on the selftest fixture; output:\n%s", analyzer, out)
		}
	}
}
