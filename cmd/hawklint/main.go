// Command hawklint runs the repository's invariant analyzers (see
// internal/lint) as a `go vet -vettool`:
//
//	go build -o bin/hawklint ./cmd/hawklint
//	go vet -vettool=$PWD/bin/hawklint ./...
//
// It enforces the //hawk: directive contracts — zero-alloc hot paths,
// pinned pointer-free struct layouts, deterministic report paths, and the
// hand-rolled-container discipline — across every package on every build,
// where the runtime tests only cover the call sites they exercise. CI runs
// it after the stock `go vet`; run it locally with the two commands above
// before pushing changes that touch internal/sim, internal/core,
// internal/eventq, or internal/policy.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	analysis.Main(lint.Analyzers...)
}
