// Command hawksim runs a single trace-driven scheduling simulation and
// prints the collected metrics. The scheduler is selected by name through
// the hawk policy registry, so policies registered by linked-in code are
// available without touching this file.
//
// Usage:
//
//	hawksim -workload google -nodes 15000 -policy hawk -jobs 20000
//	hawksim -trace mytrace.csv -nodes 1000 -policy sparrow -cutoff 500
//	hawksim -trace google.trace.gz -nodes 15000 -stream
//	hawksim -workload google -jobs 1000000 -trace-out google.trace.gz
//	hawksim -nodes 1000 -policy split -json run.json
//
// -trace accepts both the hawk-trace stream format (written by -trace-out
// or hawkgen; gzip by ".gz" suffix), which is decoded job by job as the
// simulation runs, and the legacy bare-CSV format (which carries no cutoff;
// pass -cutoff). With -stream the run keeps no per-job reports — class
// counts and percentile reservoirs only — so memory stays O(in-flight)
// regardless of trace length; combine with -dump to still persist every
// job's outcome as CSV.
//
// For performance work, -cpuprofile and -memprofile write pprof profiles
// of the run (inspect with `go tool pprof`):
//
//	hawksim -workload google -nodes 15000 -jobs 20000 -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/hawk"
)

var (
	workloadFlag  = flag.String("workload", "google", "synthetic workload: google, cloudera, facebook, yahoo, motivation")
	traceFlag     = flag.String("trace", "", "trace file, hawk-trace stream or legacy CSV (overrides -workload)")
	jobsFlag      = flag.Int("jobs", 20000, "number of jobs to generate")
	iaFlag        = flag.Float64("ia", 0, "mean job inter-arrival time in seconds (0 = workload default)")
	nodesFlag     = flag.Int("nodes", 15000, "cluster size")
	policyFlag    = flag.String("policy", "hawk", "scheduling policy: "+strings.Join(hawk.Policies(), ", "))
	modeFlag      = flag.String("mode", "", "deprecated alias for -policy")
	cutoffFlag    = flag.Float64("cutoff", 0, "long/short cutoff seconds (0 = trace default)")
	partFlag      = flag.Float64("partition", 0, "short-partition fraction (0 = trace default)")
	probesFlag    = flag.Int("probes", 2, "probes per task")
	stealCapFlag  = flag.Int("stealcap", 10, "max nodes contacted per steal attempt")
	noStealFlag   = flag.Bool("nosteal", false, "disable work stealing")
	noPartFlag    = flag.Bool("nopartition", false, "disable the short partition")
	noCentralFlag = flag.Bool("nocentral", false, "schedule long jobs with probing instead of centrally")
	misLoFlag     = flag.Float64("mislo", 0, "mis-estimation factor lower bound")
	misHiFlag     = flag.Float64("mishi", 0, "mis-estimation factor upper bound")
	seedFlag      = flag.Int64("seed", 42, "random seed")
	listPolFlag   = flag.Bool("list-policies", false, "list registered scheduling policies and exit")

	// Multi-scheduler model flags (§4.10).
	schedulersFlag   = flag.Int("schedulers", 0, "concurrent schedulers with stale snapshots (0 or 1 = exact single-scheduler model)")
	snapIntervalFlag = flag.Float64("snapshot-interval", 0, "seconds between scheduler snapshot refreshes (0 = default)")
	schedFailAtFlag  = flag.Float64("scheduler-fail-at", 0, "simulated seconds at which scheduler 0 fails (0 = never; requires -schedulers)")
	schedRecAtFlag   = flag.Float64("scheduler-recover-at", 0, "simulated seconds at which scheduler 0 recovers (0 = never)")

	// Dynamic-cluster scenario flags.
	failNodesFlag = flag.Int("fail-nodes", 0, "fail this many random nodes at -fail-at (0 = no failures)")
	failAtFlag    = flag.Float64("fail-at", 0, "simulated seconds at which -fail-nodes nodes fail")
	recoverAtFlag = flag.Float64("recover-at", 0, "simulated seconds at which failed nodes recover (0 = never)")
	downAtFlag    = flag.Float64("central-down", 0, "simulated seconds at which the centralized scheduler goes down (0 = never)")
	upAtFlag      = flag.Float64("central-up", 0, "simulated seconds at which the centralized scheduler recovers (0 = never)")
	speedSkewFlag = flag.Float64("speed-skew", 0, "fraction of nodes running at -slow-speed (0 = homogeneous)")
	slowSpeedFlag = flag.Float64("slow-speed", 0.5, "speed factor of the skewed nodes (1 = nominal)")

	// Gray-failure injection flags.
	netDelayFlag       = flag.Float64("net-delay", 0, "one-way network delay per message leg in seconds (0 = default)")
	msgLossFlag        = flag.Float64("msg-loss", 0, "drop probability applied to every message class (0 = lossless)")
	jitterFlag         = flag.Float64("jitter", 0, "extra uniform [0,jitter) delay per message leg in seconds")
	straggleAtFlag     = flag.Float64("straggle-at", 0, "simulated seconds at which -straggle-nodes nodes slow down")
	straggleNodesFlag  = flag.Int("straggle-nodes", 0, "slow down this many random nodes at -straggle-at (0 = no stragglers)")
	straggleFactorFlag = flag.Float64("straggle-factor", 4, "slowdown factor of the straggling nodes (tasks stretch by this)")
	speculateFlag      = flag.Bool("speculate", false, "speculatively re-execute straggling short tasks (first completion wins)")
	faultRetriesFlag   = flag.Int("fault-retries", 0, "send retries before a lossy message gives up (0 = default 3; raise for heavy -msg-loss)")

	traceOutFlag = flag.String("trace-out", "", "write the workload to this hawk-trace file (gzip by .gz suffix) before running")
	streamFlag   = flag.Bool("stream", false, "discard per-job reports; aggregate into bounded reservoirs (for multi-million-task traces)")

	dumpFlag    = flag.String("dump", "", "write per-job results to this CSV file")
	jsonFlag    = flag.String("json", "", "write the full report to this JSON file")
	cpuProfFlag = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfFlag = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
)

func main() {
	flag.Parse()
	os.Exit(realMain())
}

// realMain holds the body so deferred profile writers run before the
// process exits (os.Exit skips defers in main).
func realMain() int {
	if *cpuProfFlag != "" {
		f, err := os.Create(*cpuProfFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfFlag != "" {
		defer func() {
			f, err := os.Create(*memProfFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hawksim: writing heap profile: %v\n", err)
			}
		}()
	}
	if *listPolFlag {
		for _, name := range hawk.Policies() {
			fmt.Println(name)
		}
		return 0
	}
	trace, streamFile, err := loadWorkload()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
		return 1
	}
	name := *policyFlag
	if *modeFlag != "" {
		policySet := false
		flag.Visit(func(f *flag.Flag) { policySet = policySet || f.Name == "policy" })
		if policySet && *modeFlag != *policyFlag {
			fmt.Fprintf(os.Stderr, "hawksim: conflicting -policy %q and deprecated -mode %q; drop -mode\n",
				*policyFlag, *modeFlag)
			return 2
		}
		fmt.Fprintln(os.Stderr, "hawksim: -mode is deprecated; use -policy")
		name = *modeFlag
	}
	if !hawk.Registered(name) {
		fmt.Fprintf(os.Stderr, "hawksim: unknown policy %q (registered: %v)\n", name, hawk.Policies())
		return 2
	}
	if *traceOutFlag != "" {
		if err := writeTraceOut(trace, streamFile); err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: writing %s: %v\n", *traceOutFlag, err)
			return 1
		}
		fmt.Printf("wrote workload to %s\n", *traceOutFlag)
	}
	cfg := hawk.Config{
		Policy:                 name,
		NumNodes:               *nodesFlag,
		Cutoff:                 *cutoffFlag,
		ShortPartitionFraction: *partFlag,
		ProbeRatio:             *probesFlag,
		StealCap:               *stealCapFlag,
		DisableStealing:        *noStealFlag,
		DisablePartition:       *noPartFlag,
		DisableCentral:         *noCentralFlag,
		MisestimateLo:          *misLoFlag,
		MisestimateHi:          *misHiFlag,
		NetworkDelay:           *netDelayFlag,
		Schedulers:             schedulerSpec(),
		Churn:                  churnSpec(),
		Heterogeneity:          heterogeneitySpec(),
		Faults:                 faultSpec(),
		Seed:                   *seedFlag,
		DiscardJobReports:      *streamFlag,
	}
	// On a streamed run -dump rides the job sink, so per-job rows land on
	// disk at completion and the report never holds them.
	var sink *hawk.JobCSVSink
	if *streamFlag && *dumpFlag != "" {
		sink, err = hawk.CreateJobCSVSink(*dumpFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
			return 1
		}
		cfg.JobSink = sink.Sink
	}
	var res *hawk.Report
	if streamFile {
		src, serr := hawk.OpenTraceSource(*traceFlag)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "hawksim: %v\n", serr)
			return 1
		}
		res, err = hawk.SimulateSource(src, cfg)
		src.Close()
	} else {
		res, err = hawk.Simulate(trace, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
		return 1
	}
	printResult(trace, res)
	if sink != nil {
		if err := sink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: writing %s: %v\n", *dumpFlag, err)
			return 1
		}
		fmt.Printf("wrote per-job results to %s\n", *dumpFlag)
	} else if *dumpFlag != "" {
		if err := hawk.SaveResultsCSV(*dumpFlag, res); err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: writing %s: %v\n", *dumpFlag, err)
			return 1
		}
		fmt.Printf("wrote per-job results to %s\n", *dumpFlag)
	}
	if *jsonFlag != "" {
		if err := hawk.SaveReportJSON(*jsonFlag, res); err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: writing %s: %v\n", *jsonFlag, err)
			return 1
		}
		fmt.Printf("wrote report to %s\n", *jsonFlag)
	}
	return 0
}

// schedulerSpec maps -schedulers/-snapshot-interval onto a SchedulerSpec,
// or nil when the flags are unset (the exact single-scheduler model).
func schedulerSpec() *hawk.SchedulerSpec {
	if *schedulersFlag <= 0 {
		return nil
	}
	return &hawk.SchedulerSpec{Count: *schedulersFlag, SnapshotInterval: *snapIntervalFlag}
}

// churnSpec assembles the scripted scenario from the failure/outage flags,
// or nil when none are set (the static fast path).
func churnSpec() *hawk.ChurnSpec {
	var events []hawk.ChurnEvent
	if *failNodesFlag > 0 {
		events = append(events, hawk.ChurnEvent{At: *failAtFlag, Kind: hawk.ChurnFail, Count: *failNodesFlag})
		if *recoverAtFlag > 0 {
			events = append(events, hawk.ChurnEvent{At: *recoverAtFlag, Kind: hawk.ChurnRecover, Count: *failNodesFlag})
		}
	}
	if *downAtFlag > 0 {
		events = append(events, hawk.ChurnEvent{At: *downAtFlag, Kind: hawk.ChurnCentralDown})
		if *upAtFlag > 0 {
			events = append(events, hawk.ChurnEvent{At: *upAtFlag, Kind: hawk.ChurnCentralUp})
		}
	}
	if *schedFailAtFlag > 0 {
		events = append(events, hawk.SchedulerChurn(0, *schedFailAtFlag, *schedRecAtFlag)...)
	}
	if len(events) == 0 {
		return nil
	}
	return &hawk.ChurnSpec{Events: events}
}

// faultSpec assembles the gray-failure scenario from the injection flags,
// or nil when none are set (no fault state, static fast path).
func faultSpec() *hawk.FaultSpec {
	// Zero means unset; non-zero values (including invalid negatives) are
	// passed through so Config.Normalize can reject them with a real error.
	if *msgLossFlag == 0 && *jitterFlag == 0 && *straggleNodesFlag == 0 && !*speculateFlag {
		return nil
	}
	f := &hawk.FaultSpec{
		ProbeLoss:  *msgLossFlag,
		ReplyLoss:  *msgLossFlag,
		StealLoss:  *msgLossFlag,
		AssignLoss: *msgLossFlag,
		CommitLoss: *msgLossFlag,
		Jitter:     *jitterFlag,
		MaxRetries: *faultRetriesFlag,
		Speculate:  *speculateFlag,
	}
	if *straggleNodesFlag != 0 {
		f.Stragglers = []hawk.StragglerEvent{
			{At: *straggleAtFlag, Count: *straggleNodesFlag, Factor: *straggleFactorFlag},
		}
	}
	return f
}

// heterogeneitySpec maps -speed-skew/-slow-speed onto a one-class spec.
func heterogeneitySpec() *hawk.Heterogeneity {
	if *speedSkewFlag <= 0 {
		return nil
	}
	return &hawk.Heterogeneity{Classes: []hawk.SpeedClass{{Fraction: *speedSkewFlag, Speed: *slowSpeedFlag}}}
}

// loadWorkload resolves -trace/-workload. It returns either a materialized
// trace (synthetic generation, legacy CSV) or stream=true for a hawk-trace
// file, which the run then opens and decodes job by job instead of loading.
func loadWorkload() (t *hawk.Trace, stream bool, err error) {
	if *traceFlag != "" {
		src, err := hawk.OpenTraceSource(*traceFlag)
		if err == nil {
			src.Close() // probe only; the run reopens to stream
			return nil, true, nil
		}
		if !errors.Is(err, hawk.ErrNotStreamTrace) {
			return nil, false, err
		}
		t, err := hawk.LoadTraceFile(*traceFlag)
		if err != nil {
			return nil, false, err
		}
		if *cutoffFlag > 0 {
			t.Cutoff = *cutoffFlag
		}
		if t.Cutoff == 0 {
			return nil, false, fmt.Errorf("legacy CSV traces carry no cutoff; pass -cutoff")
		}
		if *partFlag > 0 {
			t.ShortPartitionFraction = *partFlag
		}
		return t, false, nil
	}
	if *workloadFlag == "motivation" {
		return hawk.MotivationWorkload(*seedFlag), false, nil
	}
	spec, err := hawk.SpecByName(*workloadFlag)
	if err != nil {
		return nil, false, err
	}
	ia := *iaFlag
	if ia <= 0 {
		ia = defaultInterArrival(spec.Name)
	}
	return hawk.Generate(spec, hawk.GenConfig{
		NumJobs:          *jobsFlag,
		MeanInterArrival: ia,
		Seed:             *seedFlag,
	}), false, nil
}

// writeTraceOut dumps the resolved workload to -trace-out in the
// hawk-trace stream format (a format conversion when the input was itself
// a trace file).
func writeTraceOut(t *hawk.Trace, streamFile bool) error {
	if streamFile {
		src, err := hawk.OpenTraceSource(*traceFlag)
		if err != nil {
			return err
		}
		defer src.Close()
		return hawk.SaveTraceSource(*traceOutFlag, src)
	}
	return hawk.SaveTraceSource(*traceOutFlag, hawk.NewTraceSource(t))
}

func defaultInterArrival(name string) float64 {
	switch name {
	case "google":
		return 2.3
	case "cloudera":
		return 1.5
	case "facebook":
		return 1.0
	case "yahoo":
		return 7.5
	}
	return 2.3
}

// printResult prints the run's headline numbers. trace is nil when the
// workload streamed from a file; ClassSummary reads whichever store the
// run kept (per-job reports, or the -stream reservoirs).
func printResult(trace *hawk.Trace, res *hawk.Report) {
	short := res.ClassSummary(false)
	long := res.ClassSummary(true)
	fmt.Printf("policy: %s  jobs: %d  makespan: %.0f s  events: %d\n",
		res.Policy, short.Count+long.Count, res.Makespan, res.Events)
	fmt.Printf("short jobs: %s\n", short)
	fmt.Printf("long jobs:  %s\n", long)
	if trace != nil {
		fmt.Printf("median utilization (arrival window): %.1f%%  max: %.1f%%\n",
			100*res.Utilization.MedianUpTo(trace.MakespanLowerBound()), 100*res.Utilization.Max())
	} else {
		fmt.Printf("median utilization: %.1f%%  max: %.1f%%\n",
			100*res.Utilization.Median(), 100*res.Utilization.Max())
	}
	fmt.Printf("probes: %d  cancels: %d  tasks: %d  central assigns: %d\n",
		res.ProbesSent, res.Cancels, res.TasksExecuted, res.CentralAssigns)
	fmt.Printf("steals: attempts=%d contacts=%d successes=%d entries=%d\n",
		res.StealAttempts, res.StealContacts, res.StealSuccesses, res.EntriesStolen)
	if res.NodeFailures > 0 || res.CentralOutageSeconds > 0 {
		fmt.Printf("churn: failures=%d recoveries=%d reexecuted=%d probesLost=%d workLost=%.0fs outage=%.0fs deferred=%d\n",
			res.NodeFailures, res.NodeRecoveries, res.TasksReexecuted, res.ProbesLost,
			res.WorkLostSeconds, res.CentralOutageSeconds, res.CentralDeferred)
	}
	if d := res.MessagesDropped; d != nil {
		fmt.Printf("faults: dropped probes=%d replies=%d steals=%d assigns=%d commits=%d  retries=%d/%d  fallbacks=%d\n",
			d.Probes, d.Replies, d.Steals, d.Assigns, d.Commits,
			res.ProbeRetries, res.AssignRetries, res.FallbacksToCentral)
		if res.SpeculativeLaunches > 0 || res.StragglerSlowdowns > 0 {
			fmt.Printf("speculation: launches=%d wins=%d wasted=%d  stragglers=%d\n",
				res.SpeculativeLaunches, res.SpeculativeWins, res.SpeculativeWasted, res.StragglerSlowdowns)
		}
	}
	if res.Config.Schedulers != nil {
		fmt.Printf("schedulers: n=%d conflicts=%d retries=%d refreshes=%d staleness=%.1fs\n",
			res.Config.Schedulers.Count, res.PlacementConflicts, res.ConflictRetries,
			res.SnapshotRefreshes, res.SnapshotStalenessSeconds)
		if res.SchedulerFailures > 0 {
			fmt.Printf("scheduler churn: failures=%d recoveries=%d reassigned=%d\n",
				res.SchedulerFailures, res.SchedulerRecoveries, res.SchedulerReassigned)
		}
	}
}
