// Command hawksim runs a single trace-driven scheduling simulation and
// prints the collected metrics.
//
// Usage:
//
//	hawksim -workload google -nodes 15000 -mode hawk -jobs 20000
//	hawksim -trace mytrace.csv -nodes 1000 -mode sparrow -cutoff 500
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	workloadFlag  = flag.String("workload", "google", "synthetic workload: google, cloudera, facebook, yahoo, motivation")
	traceFlag     = flag.String("trace", "", "CSV trace file (overrides -workload)")
	jobsFlag      = flag.Int("jobs", 20000, "number of jobs to generate")
	iaFlag        = flag.Float64("ia", 0, "mean job inter-arrival time in seconds (0 = workload default)")
	nodesFlag     = flag.Int("nodes", 15000, "cluster size")
	modeFlag      = flag.String("mode", "hawk", "scheduler: sparrow, hawk, centralized, split")
	cutoffFlag    = flag.Float64("cutoff", 0, "long/short cutoff seconds (0 = trace default)")
	partFlag      = flag.Float64("partition", 0, "short-partition fraction (0 = trace default)")
	probesFlag    = flag.Int("probes", 2, "probes per task")
	stealCapFlag  = flag.Int("stealcap", 10, "max nodes contacted per steal attempt")
	noStealFlag   = flag.Bool("nosteal", false, "disable work stealing")
	noPartFlag    = flag.Bool("nopartition", false, "disable the short partition")
	noCentralFlag = flag.Bool("nocentral", false, "schedule long jobs with probing instead of centrally")
	misLoFlag     = flag.Float64("mislo", 0, "mis-estimation factor lower bound")
	misHiFlag     = flag.Float64("mishi", 0, "mis-estimation factor upper bound")
	seedFlag      = flag.Int64("seed", 42, "random seed")
	dumpFlag      = flag.String("dump", "", "write per-job results to this CSV file")
)

func main() {
	flag.Parse()
	trace, err := loadTrace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
		os.Exit(1)
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
		os.Exit(2)
	}
	res, err := sim.Run(trace, sim.Config{
		NumNodes:               *nodesFlag,
		Mode:                   mode,
		Cutoff:                 *cutoffFlag,
		ShortPartitionFraction: *partFlag,
		ProbeRatio:             *probesFlag,
		StealCap:               *stealCapFlag,
		DisableStealing:        *noStealFlag,
		DisablePartition:       *noPartFlag,
		DisableCentral:         *noCentralFlag,
		MisestimateLo:          *misLoFlag,
		MisestimateHi:          *misHiFlag,
		Seed:                   *seedFlag,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawksim: %v\n", err)
		os.Exit(1)
	}
	printResult(trace, res)
	if *dumpFlag != "" {
		if err := sim.SaveResultsCSV(*dumpFlag, res); err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: writing %s: %v\n", *dumpFlag, err)
			os.Exit(1)
		}
		fmt.Printf("wrote per-job results to %s\n", *dumpFlag)
	}
}

func loadTrace() (*workload.Trace, error) {
	if *traceFlag != "" {
		t, err := workload.LoadFile(*traceFlag)
		if err != nil {
			return nil, err
		}
		if *cutoffFlag > 0 {
			t.Cutoff = *cutoffFlag
		}
		if t.Cutoff == 0 {
			return nil, fmt.Errorf("trace files carry no cutoff; pass -cutoff")
		}
		if *partFlag > 0 {
			t.ShortPartitionFraction = *partFlag
		}
		return t, nil
	}
	if *workloadFlag == "motivation" {
		return workload.MotivationWorkload(*seedFlag), nil
	}
	spec, err := workload.SpecByName(*workloadFlag)
	if err != nil {
		return nil, err
	}
	ia := *iaFlag
	if ia <= 0 {
		ia = defaultInterArrival(spec.Name)
	}
	return workload.Generate(spec, workload.GenConfig{
		NumJobs:          *jobsFlag,
		MeanInterArrival: ia,
		Seed:             *seedFlag,
	}), nil
}

func defaultInterArrival(name string) float64 {
	switch name {
	case "google":
		return 2.3
	case "cloudera":
		return 1.5
	case "facebook":
		return 1.0
	case "yahoo":
		return 7.5
	}
	return 2.3
}

func parseMode(s string) (sim.Mode, error) {
	switch s {
	case "sparrow":
		return sim.ModeSparrow, nil
	case "hawk":
		return sim.ModeHawk, nil
	case "centralized":
		return sim.ModeCentralized, nil
	case "split":
		return sim.ModeSplit, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func printResult(trace *workload.Trace, res *sim.Result) {
	short := stats.Summarize(res.ShortRuntimes())
	long := stats.Summarize(res.LongRuntimes())
	fmt.Printf("mode: %s  jobs: %d  makespan: %.0f s  events: %d\n",
		res.Mode, len(res.Jobs), res.Makespan, res.Events)
	fmt.Printf("short jobs: %s\n", short)
	fmt.Printf("long jobs:  %s\n", long)
	fmt.Printf("median utilization (arrival window): %.1f%%  max: %.1f%%\n",
		100*res.Utilization.MedianUpTo(trace.MakespanLowerBound()), 100*res.Utilization.Max())
	fmt.Printf("probes: %d  cancels: %d  tasks: %d  central assigns: %d\n",
		res.ProbesSent, res.Cancels, res.TasksExecuted, res.CentralAssigns)
	fmt.Printf("steals: attempts=%d contacts=%d successes=%d entries=%d\n",
		res.StealAttempts, res.StealContacts, res.StealSuccesses, res.EntriesStolen)
}
