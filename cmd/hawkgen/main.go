// Command hawkgen generates synthetic workload traces, converts between
// the on-disk trace formats, and prints Table 1/2 characterization.
//
// Usage:
//
//	hawkgen -workload google -jobs 20000 -out google.csv
//	hawkgen -workload google -jobs 1000000 -out google.trace.gz
//	hawkgen -stats -in google.csv -cutoff 1129
//	hawkgen -in legacy.csv -cutoff 1129 -out google.trace.gz -stats=false
//
// Two formats are supported. The hawk-trace stream format (gzip by ".gz"
// suffix) carries a header with the workload's cutoff, partition fraction,
// and size, so hawksim/hawkexp can stream it without flags; the legacy
// bare-CSV format carries jobs only and needs -cutoff on load. -out picks
// the format by suffix (override with -format); converting between the two
// is just -in plus -out.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/hawk"
)

var (
	workloadFlag = flag.String("workload", "google", "workload: google, cloudera, facebook, yahoo, motivation")
	jobsFlag     = flag.Int("jobs", 20000, "number of jobs")
	iaFlag       = flag.Float64("ia", 2.3, "mean inter-arrival time (seconds)")
	seedFlag     = flag.Int64("seed", 42, "random seed")
	outFlag      = flag.String("out", "", "write the trace to this file")
	formatFlag   = flag.String("format", "auto", "-out format: stream (hawk-trace), legacy (bare CSV), auto (stream for .gz/.trace suffixes)")
	inFlag       = flag.String("in", "", "read a trace from this file (hawk-trace or legacy CSV) instead of generating")
	cutoffFlag   = flag.Float64("cutoff", 0, "cutoff for the by-cutoff statistics (0 = workload/header default)")
	statsFlag    = flag.Bool("stats", true, "print workload statistics")
)

func main() {
	flag.Parse()
	t, cutoff, err := obtainTrace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawkgen: %v\n", err)
		os.Exit(1)
	}
	if *outFlag != "" {
		if err := writeTrace(t); err != nil {
			fmt.Fprintf(os.Stderr, "hawkgen: writing %s: %v\n", *outFlag, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d jobs to %s\n", t.Len(), *outFlag)
	}
	if *statsFlag {
		printStats(t, cutoff)
	}
}

// writeTrace saves t in the format -format selects (by suffix on "auto").
func writeTrace(t *hawk.Trace) error {
	format := *formatFlag
	if format == "auto" {
		if strings.HasSuffix(*outFlag, ".gz") || strings.HasSuffix(*outFlag, ".trace") {
			format = "stream"
		} else {
			format = "legacy"
		}
	}
	switch format {
	case "stream":
		return hawk.SaveTraceSource(*outFlag, hawk.NewTraceSource(t))
	case "legacy":
		return hawk.SaveTraceFile(*outFlag, t)
	}
	return fmt.Errorf("unknown -format %q (stream, legacy, auto)", *formatFlag)
}

func obtainTrace() (*hawk.Trace, float64, error) {
	if *inFlag != "" {
		t, err := loadTrace(*inFlag)
		if err != nil {
			return nil, 0, err
		}
		cutoff := *cutoffFlag
		if cutoff <= 0 {
			cutoff = t.Cutoff // hawk-trace headers carry it; legacy CSV does not
		}
		if cutoff <= 0 {
			return nil, 0, fmt.Errorf("legacy CSV traces need -cutoff for by-cutoff stats")
		}
		if t.Cutoff <= 0 {
			// Bake the resolved cutoff into the trace, so a legacy CSV
			// converted with -out yields a stream header that carries it.
			t.Cutoff = cutoff
		}
		return t, cutoff, nil
	}
	if *workloadFlag == "motivation" {
		t := hawk.MotivationWorkload(*seedFlag)
		return t, t.Cutoff, nil
	}
	spec, err := hawk.SpecByName(*workloadFlag)
	if err != nil {
		return nil, 0, err
	}
	t := hawk.Generate(spec, hawk.GenConfig{
		NumJobs:          *jobsFlag,
		MeanInterArrival: *iaFlag,
		Seed:             *seedFlag,
	})
	cutoff := *cutoffFlag
	if cutoff <= 0 {
		cutoff = spec.Cutoff
	}
	return t, cutoff, nil
}

// loadTrace reads either trace format, materialized (hawkgen's statistics
// and the legacy writer both need the whole trace in memory).
func loadTrace(path string) (*hawk.Trace, error) {
	src, err := hawk.OpenTraceSource(path)
	if err == nil {
		defer src.Close()
		return hawk.MaterializeSource(src)
	}
	if !errors.Is(err, hawk.ErrNotStreamTrace) {
		return nil, err
	}
	return hawk.LoadTraceFile(path)
}

func printStats(t *hawk.Trace, cutoff float64) {
	byCut := hawk.ComputeStats(t, cutoff)
	byGen := hawk.ComputeStatsByConstruction(t)
	fmt.Printf("trace: %s  jobs: %d  tasks: %d  task-seconds: %.3g\n",
		t.Name, byCut.TotalJobs, byCut.TotalTasks, byCut.TotalTaskSeconds)
	fmt.Printf("last submission: %.0f s\n", t.MakespanLowerBound())
	fmt.Printf("by cutoff %.0f s:      %%long=%.2f  %%task-seconds=%.2f  %%tasks=%.2f  dur-ratio=%.2f\n",
		cutoff, byCut.PctLongJobs, byCut.PctLongTaskSeconds, byCut.PctLongTasks, byCut.AvgTaskDurRatio)
	if byGen.LongJobs > 0 {
		fmt.Printf("by construction:     %%long=%.2f  %%task-seconds=%.2f  %%tasks=%.2f  dur-ratio=%.2f\n",
			byGen.PctLongJobs, byGen.PctLongTaskSeconds, byGen.PctLongTasks, byGen.AvgTaskDurRatio)
	}
}
