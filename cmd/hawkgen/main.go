// Command hawkgen generates synthetic workload traces and prints their
// Table 1/2 characterization.
//
// Usage:
//
//	hawkgen -workload google -jobs 20000 -out google.csv
//	hawkgen -stats -in google.csv -cutoff 1129
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/hawk"
)

var (
	workloadFlag = flag.String("workload", "google", "workload: google, cloudera, facebook, yahoo, motivation")
	jobsFlag     = flag.Int("jobs", 20000, "number of jobs")
	iaFlag       = flag.Float64("ia", 2.3, "mean inter-arrival time (seconds)")
	seedFlag     = flag.Int64("seed", 42, "random seed")
	outFlag      = flag.String("out", "", "write the trace to this CSV file")
	inFlag       = flag.String("in", "", "read a trace from this CSV file instead of generating")
	cutoffFlag   = flag.Float64("cutoff", 0, "cutoff for the by-cutoff statistics (0 = workload default)")
	statsFlag    = flag.Bool("stats", true, "print workload statistics")
)

func main() {
	flag.Parse()
	t, cutoff, err := obtainTrace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawkgen: %v\n", err)
		os.Exit(1)
	}
	if *outFlag != "" {
		if err := hawk.SaveTraceFile(*outFlag, t); err != nil {
			fmt.Fprintf(os.Stderr, "hawkgen: writing %s: %v\n", *outFlag, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d jobs to %s\n", t.Len(), *outFlag)
	}
	if *statsFlag {
		printStats(t, cutoff)
	}
}

func obtainTrace() (*hawk.Trace, float64, error) {
	if *inFlag != "" {
		t, err := hawk.LoadTraceFile(*inFlag)
		if err != nil {
			return nil, 0, err
		}
		cutoff := *cutoffFlag
		if cutoff <= 0 {
			return nil, 0, fmt.Errorf("loaded traces need -cutoff for by-cutoff stats")
		}
		return t, cutoff, nil
	}
	if *workloadFlag == "motivation" {
		t := hawk.MotivationWorkload(*seedFlag)
		return t, t.Cutoff, nil
	}
	spec, err := hawk.SpecByName(*workloadFlag)
	if err != nil {
		return nil, 0, err
	}
	t := hawk.Generate(spec, hawk.GenConfig{
		NumJobs:          *jobsFlag,
		MeanInterArrival: *iaFlag,
		Seed:             *seedFlag,
	})
	cutoff := *cutoffFlag
	if cutoff <= 0 {
		cutoff = spec.Cutoff
	}
	return t, cutoff, nil
}

func printStats(t *hawk.Trace, cutoff float64) {
	byCut := hawk.ComputeStats(t, cutoff)
	byGen := hawk.ComputeStatsByConstruction(t)
	fmt.Printf("trace: %s  jobs: %d  tasks: %d  task-seconds: %.3g\n",
		t.Name, byCut.TotalJobs, byCut.TotalTasks, byCut.TotalTaskSeconds)
	fmt.Printf("last submission: %.0f s\n", t.MakespanLowerBound())
	fmt.Printf("by cutoff %.0f s:      %%long=%.2f  %%task-seconds=%.2f  %%tasks=%.2f  dur-ratio=%.2f\n",
		cutoff, byCut.PctLongJobs, byCut.PctLongTaskSeconds, byCut.PctLongTasks, byCut.AvgTaskDurRatio)
	if byGen.LongJobs > 0 {
		fmt.Printf("by construction:     %%long=%.2f  %%task-seconds=%.2f  %%tasks=%.2f  dur-ratio=%.2f\n",
			byGen.PctLongJobs, byGen.PctLongTaskSeconds, byGen.PctLongTasks, byGen.AvgTaskDurRatio)
	}
}
