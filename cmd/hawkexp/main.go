// Command hawkexp reproduces the paper's tables and figures. Each
// experiment prints the rows or curve series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	hawkexp -list
//	hawkexp -exp fig5 [-numjobs 20000] [-seed 42] [-runs 10]
//	hawkexp -exp fig6 -jobs 8    # fan the sweep over 8 workers
//	hawkexp -exp all -quick
//	hawkexp -trace-out google.trace.gz -numjobs 20000   # record the trace
//	hawkexp -exp fig5 -trace google.trace.gz            # replay it
//
// Every experiment is a sweep of independent simulations, fanned out over
// a bounded worker pool (internal/sweep); -jobs bounds the pool, make
// style, and defaults to one worker per CPU. Results are byte-identical
// for any -jobs value.
//
// For performance work, -cpuprofile and -memprofile write pprof profiles
// of the whole experiment (inspect with `go tool pprof`):
//
//	hawkexp -exp fig5 -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/hawk"
	"repro/internal/experiments"
	"repro/internal/stats"
)

var (
	expFlag     = flag.String("exp", "", "experiment id (table1, table2, fig1, fig4, fig5, fig6, fig7, fig8-9, fig10-11, fig12-13, fig14, fig15, fig16-17, robustness, churn, faults, multisched) or 'all'")
	listFlag    = flag.Bool("list", false, "list experiment ids and exit")
	numJobsFlag = flag.Int("numjobs", 20000, "synthetic trace size in jobs")
	jobsFlag    = flag.Int("jobs", 0, "max concurrent simulations (0 = one per CPU)")
	seedFlag    = flag.Int64("seed", 42, "random seed")
	runsFlag    = flag.Int("runs", 10, "runs to average where the paper averages (fig14)")
	quickFlag   = flag.Bool("quick", false, "use the reduced quick scale (fewer jobs, fewer runs)")
	policyFlag  = flag.String("policy", "hawk", "candidate policy for the comparison figures; one of: "+strings.Join(hawk.Policies(), ", "))
	traceFlag   = flag.String("trace", "", "replay this recorded hawk-trace file instead of the synthetic Google trace (experiments built on the Google workload)")
	traceOut    = flag.String("trace-out", "", "write the synthetic Google trace at the current -numjobs/-seed to this hawk-trace file and exit")
	fullProto   = flag.Bool("fullproto", false, "run fig16-17 at the paper's full prototype scale (3300 jobs, sec->ms; takes tens of minutes)")

	// Dynamic-cluster scenario flags, overlaid on every simulator run of
	// the selected experiment (see hawk.ChurnSpec / hawk.Heterogeneity).
	failNodes = flag.Int("fail-nodes", 0, "fail this many random nodes at -fail-at (0 = no failures)")
	failAt    = flag.Float64("fail-at", 0, "simulated seconds at which -fail-nodes nodes fail")
	recoverAt = flag.Float64("recover-at", 0, "simulated seconds at which failed nodes recover (0 = never)")
	speedSkew = flag.Float64("speed-skew", 0, "fraction of nodes running at -slow-speed (0 = homogeneous)")
	slowSpeed = flag.Float64("slow-speed", 0.5, "speed factor of the skewed nodes (1 = nominal)")

	// Profiling, mirroring cmd/hawksim: macro-experiment profiles can be
	// captured directly instead of reconstructing the sweep as a
	// benchmark.
	cpuProfFlag = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfFlag = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")

	// Multi-scheduler overlay (see hawk.SchedulerSpec); the multisched
	// experiment sweeps the count itself and ignores these.
	schedulers     = flag.Int("schedulers", 0, "run every simulation with this many concurrent schedulers (0 or 1 = exact single scheduler)")
	schedFailAt    = flag.Float64("scheduler-fail-at", 0, "simulated seconds at which scheduler 0 fails (0 = never; requires -schedulers)")
	schedRecoverAt = flag.Float64("scheduler-recover-at", 0, "simulated seconds at which scheduler 0 recovers (0 = never)")

	// Gray-failure overlay (see hawk.FaultSpec); the faults experiment
	// sweeps the loss probability itself and ignores these.
	netDelay       = flag.Float64("net-delay", 0, "one-way network delay per message leg in seconds (0 = default)")
	msgLoss        = flag.Float64("msg-loss", 0, "drop probability applied to every message class in every run (0 = lossless)")
	jitter         = flag.Float64("jitter", 0, "extra uniform [0,jitter) delay per message leg in seconds")
	straggleAt     = flag.Float64("straggle-at", 0, "simulated seconds at which -straggle-nodes nodes slow down")
	straggleNodes  = flag.Int("straggle-nodes", 0, "slow down this many random nodes at -straggle-at (0 = no stragglers)")
	straggleFactor = flag.Float64("straggle-factor", 4, "slowdown factor of the straggling nodes (tasks stretch by this)")
	speculate      = flag.Bool("speculate", false, "speculatively re-execute straggling short tasks (first completion wins)")
	faultRetries   = flag.Int("fault-retries", 0, "send retries before a lossy message gives up (0 = default 3; raise for heavy -msg-loss)")
)

// scenario assembles the Churn/Heterogeneity/Schedulers overlay from the
// flags.
func scenario() (*hawk.ChurnSpec, *hawk.Heterogeneity, *hawk.SchedulerSpec) {
	var events []hawk.ChurnEvent
	if *failNodes > 0 {
		events = append(events, hawk.ChurnEvent{At: *failAt, Kind: hawk.ChurnFail, Count: *failNodes})
		if *recoverAt > 0 {
			events = append(events, hawk.ChurnEvent{At: *recoverAt, Kind: hawk.ChurnRecover, Count: *failNodes})
		}
	}
	if *schedFailAt > 0 {
		events = append(events, hawk.SchedulerChurn(0, *schedFailAt, *schedRecoverAt)...)
	}
	var churn *hawk.ChurnSpec
	if len(events) > 0 {
		churn = &hawk.ChurnSpec{Events: events}
	}
	var hetero *hawk.Heterogeneity
	if *speedSkew > 0 {
		hetero = &hawk.Heterogeneity{Classes: []hawk.SpeedClass{{Fraction: *speedSkew, Speed: *slowSpeed}}}
	}
	var spec *hawk.SchedulerSpec
	if *schedulers > 0 {
		spec = &hawk.SchedulerSpec{Count: *schedulers}
	}
	return churn, hetero, spec
}

// faultOverlay assembles the gray-failure scenario from the injection
// flags, or nil when none are set.
func faultOverlay() *hawk.FaultSpec {
	// Zero means unset; non-zero values (including invalid negatives) are
	// passed through so Config.Normalize can reject them with a real error.
	if *msgLoss == 0 && *jitter == 0 && *straggleNodes == 0 && !*speculate {
		return nil
	}
	f := &hawk.FaultSpec{
		ProbeLoss:  *msgLoss,
		ReplyLoss:  *msgLoss,
		StealLoss:  *msgLoss,
		AssignLoss: *msgLoss,
		CommitLoss: *msgLoss,
		Jitter:     *jitter,
		MaxRetries: *faultRetries,
		Speculate:  *speculate,
	}
	if *straggleNodes != 0 {
		f.Stragglers = []hawk.StragglerEvent{
			{At: *straggleAt, Count: *straggleNodes, Factor: *straggleFactor},
		}
	}
	return f
}

type experiment struct {
	id   string
	desc string
	run  func(sc experiments.Scale) error
}

func registry() []experiment {
	return []experiment{
		{"table1", "Table 1: long-job and task-second shares per workload", runTable1},
		{"table2", "Table 2: long-job percentage and job counts", runTable2},
		{"fig1", "Figure 1: CDF of short-job runtime under Sparrow, loaded cluster", runFig1},
		{"fig4", "Figure 4: workload property CDFs", runFig4},
		{"fig5", "Figure 5: Hawk vs Sparrow, Google trace, node sweep", runFig5},
		{"fig6", "Figure 6: Hawk vs Sparrow, Cloudera/Facebook/Yahoo", runFig6},
		{"fig7", "Figure 7: component breakdown (ablations)", runFig7},
		{"fig8-9", "Figures 8-9: Hawk vs fully centralized", runFig89},
		{"fig10-11", "Figures 10-11: Hawk vs split cluster", runFig1011},
		{"fig12-13", "Figures 12-13: cutoff sensitivity", runFig1213},
		{"fig14", "Figure 14: mis-estimation sensitivity", runFig14},
		{"fig15", "Figure 15: stealing-attempt cap sensitivity", runFig15},
		{"fig16-17", "Figures 16-17: implementation vs simulation (live prototype)", runFig1617},
		{"robustness", "Central-scheduler outage: stealing keeps the general partition utilized (§4 resilience)", runRobustness},
		{"churn", "Rolling node failures: re-execution and lost work under churn", runChurn},
		{"faults", "Message-loss sweep 0-10%: latency degradation under a lossy RPC plane", runFaults},
		{"multisched", "Scheduler-count sweep 1-100: claim conflicts and latency vs distributed schedulers (§4.10)", runMultiSched},
	}
}

func main() {
	flag.Parse()
	os.Exit(realMain())
}

// realMain holds the body so deferred profile writers run before the
// process exits (os.Exit skips defers in main).
func realMain() int {
	regs := registry()
	if *listFlag || (*expFlag == "" && *traceOut == "") {
		fmt.Println("experiments:")
		for _, e := range regs {
			fmt.Printf("  %-9s %s\n", e.id, e.desc)
		}
		if *expFlag == "" && !*listFlag {
			return 2
		}
		return 0
	}
	if *cpuProfFlag != "" {
		f, err := os.Create(*cpuProfFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hawkexp: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hawkexp: starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfFlag != "" {
		defer func() {
			f, err := os.Create(*memProfFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hawkexp: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hawkexp: writing heap profile: %v\n", err)
			}
		}()
	}
	if !hawk.Registered(*policyFlag) {
		fmt.Fprintf(os.Stderr, "hawkexp: unknown policy %q (registered: %v)\n", *policyFlag, hawk.Policies())
		return 2
	}
	sc := experiments.Scale{NumJobs: *numJobsFlag, Seed: *seedFlag, Runs: *runsFlag}
	if *quickFlag {
		sc = experiments.QuickScale()
		sc.Seed = *seedFlag
	}
	sc.Policy = *policyFlag
	sc.TracePath = *traceFlag
	sc.Churn, sc.Heterogeneity, sc.Schedulers = scenario()
	sc.Faults = faultOverlay()
	sc.NetworkDelay = *netDelay
	if *traceOut != "" {
		t, err := experiments.GoogleTrace(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hawkexp: %v\n", err)
			return 1
		}
		if err := hawk.SaveTraceSource(*traceOut, hawk.NewTraceSource(t)); err != nil {
			fmt.Fprintf(os.Stderr, "hawkexp: writing %s: %v\n", *traceOut, err)
			return 1
		}
		fmt.Printf("wrote %d jobs to %s\n", t.Len(), *traceOut)
		return 0
	}
	// -jobs used to mean the synthetic trace size (now -numjobs); catch
	// scripts written against the old meaning rather than silently running
	// the default-sized trace with an absurd worker bound.
	if *jobsFlag > 256 {
		fmt.Fprintf(os.Stderr, "hawkexp: -jobs is the worker-pool bound (got %d); trace size moved to -numjobs\n", *jobsFlag)
		return 2
	}
	sc.Workers = *jobsFlag
	ids := map[string]experiment{}
	order := []string{}
	for _, e := range regs {
		ids[e.id] = e
		order = append(order, e.id)
	}
	var toRun []string
	if *expFlag == "all" {
		toRun = order
	} else {
		if _, ok := ids[*expFlag]; !ok {
			fmt.Fprintf(os.Stderr, "hawkexp: unknown experiment %q (use -list)\n", *expFlag)
			return 2
		}
		toRun = []string{*expFlag}
	}
	for _, id := range toRun {
		e := ids[id]
		if (sc.Churn != nil || sc.Heterogeneity != nil) && (id == "fig1" || id == "fig16-17") {
			fmt.Fprintf(os.Stderr, "hawkexp: note: %s builds its own fixed configuration; the -fail-nodes/-speed-skew overlay does not apply to it\n", id)
		}
		fmt.Printf("=== %s — %s\n", e.id, e.desc)
		start := time.Now()
		if err := e.run(sc); err != nil {
			fmt.Fprintf(os.Stderr, "hawkexp: %s: %v\n", e.id, err)
			return 1
		}
		fmt.Printf("--- %s done in %v\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

func runTable1(sc experiments.Scale) error {
	rows, err := experiments.Table1(sc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable1(rows))
	return nil
}

func runTable2(sc experiments.Scale) error {
	rows, err := experiments.Table2(sc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable2(rows))
	return nil
}

func runFig1(sc experiments.Scale) error {
	r, err := experiments.Fig1(sc.Seed)
	if err != nil {
		return err
	}
	fmt.Printf("median utilization: %.1f%%  max: %.1f%%\n", 100*r.MedianUtil, 100*r.MaxUtil)
	fmt.Printf("short jobs with runtime > 15000 s: %.1f%%\n", 100*r.FracOver15000s)
	fmt.Println("short-job runtime CDF (runtime s -> cumulative fraction):")
	marks := []float64{100, 1000, 5000, 10000, 15000, 20000, 25000, 30000, 35000}
	for _, m := range marks {
		frac := cdfAt(r.ShortRuntimeCDF, m)
		fmt.Printf("  %7.0f s: %5.1f%%\n", m, 100*frac)
	}
	return nil
}

func runFig4(sc experiments.Scale) error {
	data, err := experiments.Fig4(sc)
	if err != nil {
		return err
	}
	for _, d := range data {
		fmt.Printf("%s:\n", d.Workload)
		fmt.Printf("  long  dur  p50=%.0f p90=%.0f | tasks p50=%.0f p90=%.0f\n",
			cdfPct(d.LongDur, 50), cdfPct(d.LongDur, 90), cdfPct(d.LongTasks, 50), cdfPct(d.LongTasks, 90))
		fmt.Printf("  short dur  p50=%.0f p90=%.0f | tasks p50=%.0f p90=%.0f\n",
			cdfPct(d.ShortDur, 50), cdfPct(d.ShortDur, 90), cdfPct(d.ShortTasks, 50), cdfPct(d.ShortTasks, 90))
	}
	return nil
}

func runFig5(sc experiments.Scale) error {
	pts, err := experiments.Fig5(sc)
	if err != nil {
		return err
	}
	fmt.Printf("nodes  util | short p50 p90 | long p50 p90 | fracImp short long | avgRatio short long  (%s / sparrow)\n", sc.PolicyName())
	for _, p := range pts {
		fmt.Printf("%6.0f %.2f | %.2f %.2f | %.2f %.2f | %.2f %.2f | %.2f %.2f  %s\n",
			p.X, p.BaselineUtil, p.ShortP50, p.ShortP90, p.LongP50, p.LongP90,
			p.FracShortImproved, p.FracLongImproved, p.AvgRatioShort, p.AvgRatioLong,
			bar(p.ShortP50))
	}
	fmt.Printf("(bar: %s/sparrow short p50; '|' marks ratio 1.0 — shorter is better)\n", sc.PolicyName())
	return nil
}

// bar renders a ratio in [0, 1.6] as a small horizontal bar with a tick at
// 1.0, echoing the figures' normalized-to-baseline y-axis.
func bar(ratio float64) string {
	const width = 32
	const tick = 20 // position of ratio 1.0
	if math.IsNaN(ratio) {
		return ""
	}
	n := int(ratio * tick)
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		switch {
		case i == tick:
			b.WriteByte('|')
		case i < n:
			b.WriteByte('#')
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func runFig6(sc experiments.Scale) error {
	series, err := experiments.Fig6(sc)
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("%s: nodes util | short p90 | long p90  (%s / sparrow)\n", s.Workload, sc.PolicyName())
		for _, p := range s.Points {
			fmt.Printf("  %6.0f %.2f | %.2f | %.2f\n", p.X, p.BaselineUtil, p.ShortP90, p.LongP90)
		}
	}
	return nil
}

func runFig7(sc experiments.Scale) error {
	rows, err := experiments.Fig7(sc)
	if err != nil {
		return err
	}
	fmt.Println("variant            short p50 p90 | long p50 p90  (normalized to full Hawk)")
	for _, r := range rows {
		fmt.Printf("%-18s %.2f %.2f | %.2f %.2f\n", r.Variant, r.ShortP50, r.ShortP90, r.LongP50, r.LongP90)
	}
	return nil
}

func runFig89(sc experiments.Scale) error {
	pts, err := experiments.Fig8And9(sc)
	if err != nil {
		return err
	}
	fmt.Printf("nodes | short p50 p90 | long p50 p90  (%s / centralized)\n", sc.PolicyName())
	for _, p := range pts {
		fmt.Printf("%6.0f | %.2f %.2f | %.2f %.2f\n", p.X, p.ShortP50, p.ShortP90, p.LongP50, p.LongP90)
	}
	return nil
}

func runFig1011(sc experiments.Scale) error {
	pts, err := experiments.Fig10And11(sc)
	if err != nil {
		return err
	}
	fmt.Printf("nodes | short p50 p90 | long p50 p90  (%s / split cluster)\n", sc.PolicyName())
	for _, p := range pts {
		fmt.Printf("%6.0f | %.2f %.2f | %.2f %.2f\n", p.X, p.ShortP50, p.ShortP90, p.LongP50, p.LongP90)
	}
	return nil
}

func runFig1213(sc experiments.Scale) error {
	pts, err := experiments.Fig12And13(sc)
	if err != nil {
		return err
	}
	fmt.Printf("cutoff | short p50 p90 | long p50 p90  (%s / sparrow, 15000 nodes)\n", sc.PolicyName())
	for _, p := range pts {
		fmt.Printf("%6.0f | %.2f %.2f | %.2f %.2f\n", p.X, p.ShortP50, p.ShortP90, p.LongP50, p.LongP90)
	}
	return nil
}

func runFig14(sc experiments.Scale) error {
	pts, err := experiments.Fig14(sc)
	if err != nil {
		return err
	}
	fmt.Printf("mis-estimation | long p50 p90  (%s / sparrow, avg over runs)\n", sc.PolicyName())
	for _, p := range pts {
		fmt.Printf("%.1f-%.1f | %.2f %.2f\n", p.Lo, p.Hi, p.LongP50, p.LongP90)
	}
	return nil
}

func runFig15(sc experiments.Scale) error {
	pts, err := experiments.Fig15(sc)
	if err != nil {
		return err
	}
	fmt.Println("cap | short p50 p90 | long p50 p90  (normalized to cap 1)")
	for _, p := range pts {
		fmt.Printf("%3d | %.2f %.2f | %.2f %.2f\n", p.Cap, p.ShortP50, p.ShortP90, p.LongP50, p.LongP90)
	}
	return nil
}

func runFig1617(sc experiments.Scale) error {
	cfg := experiments.QuickFig16Config()
	if *fullProto {
		cfg = experiments.DefaultFig16Config()
	}
	cfg.Seed = sc.Seed
	cfg.Workers = sc.Workers
	pts, err := experiments.Fig16And17(cfg)
	if err != nil {
		return err
	}
	fmt.Println("load | impl: short p50 p90, long p50 p90 | sim: short p50 p90, long p50 p90")
	for _, p := range pts {
		fmt.Printf("%.2f | %.2f %.2f, %.2f %.2f | %.2f %.2f, %.2f %.2f\n",
			p.LoadFactor,
			p.Impl.ShortP50, p.Impl.ShortP90, p.Impl.LongP50, p.Impl.LongP90,
			p.Sim.ShortP50, p.Sim.ShortP90, p.Sim.LongP50, p.Sim.LongP90)
	}
	return nil
}

func runRobustness(sc experiments.Scale) error {
	rows, err := experiments.RobustnessOutage(sc)
	if err != nil {
		return err
	}
	fmt.Println("variant              | genUtil before/outage | short p50 all/outage | long p50 all/outage | deferred outageSec steals")
	for _, r := range rows {
		fmt.Printf("%-20s | %.2f %.2f | %.0f %.0f | %.0f %.0f | %d %.0f %d\n",
			r.Variant, r.GeneralUtilBefore, r.GeneralUtilOutage,
			r.ShortP50, r.ShortP50Outage, r.LongP50, r.LongP50Outage,
			r.CentralDeferred, r.OutageSeconds, r.StealSuccesses)
	}
	fmt.Println("(general-partition utilization sustained under outage = the paper's stealing resilience argument)")
	return nil
}

func runChurn(sc experiments.Scale) error {
	rows, err := experiments.RobustnessChurn(sc)
	if err != nil {
		return err
	}
	fmt.Println("variant              | short p50 | long p50 | fails recoveries reexec probesLost workLost(s)")
	for _, r := range rows {
		fmt.Printf("%-20s | %.0f | %.0f | %d %d %d %d %.0f\n",
			r.Variant, r.ShortP50, r.LongP50,
			r.NodeFailures, r.NodeRecoveries, r.TasksReexecuted, r.ProbesLost, r.WorkLostSeconds)
	}
	return nil
}

func runFaults(sc experiments.Scale) error {
	rows, err := experiments.RobustnessFaults(sc)
	if err != nil {
		return err
	}
	fmt.Println("policy       loss | short p50 p99 | long p50 | dropped probeRetries assignRetries fallbacks")
	for _, r := range rows {
		fmt.Printf("%-11s %.2f | %.0f %.0f | %.0f | %d %d %d %d\n",
			r.Policy, r.Loss, r.ShortP50, r.ShortP99, r.LongP50,
			r.MessagesDropped, r.ProbeRetries, r.AssignRetries, r.FallbacksToCentral)
	}
	fmt.Println("(bounded retries absorb the drops; hawk's exhausted short jobs degrade to the central queue instead of hanging)")
	return nil
}

func runMultiSched(sc experiments.Scale) error {
	rows, err := experiments.SchedulerSweep(sc)
	if err != nil {
		return err
	}
	fmt.Println("scheds | conflict/assign retries/conflict staleness(s) | short p50 p90 | long p50 p90 | conflicts assigns refreshes")
	for _, r := range rows {
		fmt.Printf("%6d | %.3f %.2f %.2f | %.0f %.0f | %.0f %.0f | %d %d %d\n",
			r.Schedulers, r.ConflictRate, r.RetriesPerConflict, r.MeanStaleness,
			r.ShortP50, r.ShortP90, r.LongP50, r.LongP90,
			r.PlacementConflicts, r.CentralAssigns, r.SnapshotRefreshes)
	}
	fmt.Println("(latency holds flat across the sweep — the paper's graceful degradation at 10 schedulers (§4.10); conflicts peak while schedulers are mutually active, then dormancy makes placements effectively fresh)")
	return nil
}

func cdfAt(points []stats.CDFPoint, x float64) float64 {
	return stats.CDFAt(points, x)
}

func cdfPct(points []stats.CDFPoint, pct float64) float64 {
	target := pct / 100
	for _, p := range points {
		if p.Fraction >= target {
			return p.Value
		}
	}
	if len(points) == 0 {
		return 0
	}
	return points[len(points)-1].Value
}
