// Command benchjson converts `go test -bench` output into a stable JSON
// document and compares two such documents for performance regressions.
// CI uses it for the benchmark-regression gate: every push to main uploads
// a BENCH_<sha>.json artifact, and every pull request re-runs the
// benchmarks on the base branch and fails if ns/op regresses by more than
// a threshold (see .github/workflows/ci.yml).
//
// Convert (reads stdin or a file, writes stdout or -o):
//
//	go test -bench='SimulatorThroughput|CentralQueue' -benchmem -count=5 -run='^$' . |
//	    benchjson -sha "$GITHUB_SHA" -o BENCH_$GITHUB_SHA.json
//
// Compare (exit status 1 on regression):
//
//	benchjson -compare base.json head.json -threshold 15 -alloc-threshold 25 -bytes-threshold 25
//
// Compare gates three metrics: min ns/op against -threshold, min allocs/op
// against -alloc-threshold, and min B/op against -bytes-threshold. An
// allocation-count regression is a structural change (a new allocation
// site on a hot path), is essentially noise-free, and historically
// precedes the ns/op regression it causes, so it gets its own,
// stricter-by-nature gate; bytes catch the complementary failure — the
// same number of allocations growing larger (an over-sized hint, a struct
// that gained a field, a buffer that stopped being reused) — which an
// allocation count cannot see.
//
// With -count=N each benchmark aggregates to {min, mean, max} per unit;
// comparisons use min, the estimate least sensitive to scheduler noise on
// shared CI runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// File is the JSON document: one benchmark run environment plus aggregated
// results keyed by benchmark name.
type File struct {
	SHA        string               `json:"sha,omitempty"`
	Goos       string               `json:"goos,omitempty"`
	Goarch     string               `json:"goarch,omitempty"`
	CPU        string               `json:"cpu,omitempty"`
	Pkg        string               `json:"pkg,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark aggregates all -count repetitions of one benchmark.
type Benchmark struct {
	// Runs is the number of result lines aggregated (the -count value).
	Runs int `json:"runs"`
	// Metrics maps a unit ("ns/op", "B/op", "allocs/op", or any custom
	// b.ReportMetric unit) to its aggregate over the runs.
	Metrics map[string]Stat `json:"metrics"`
}

// Stat summarizes one metric across repetitions.
type Stat struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func (s Stat) add(v float64, n int) Stat {
	if n == 0 || v < s.Min {
		s.Min = v
	}
	if n == 0 || v > s.Max {
		s.Max = v
	}
	// Mean accumulates a running average so the struct stays flat.
	s.Mean = (s.Mean*float64(n) + v) / float64(n+1)
	return s
}

// Parse reads `go test -bench` output and aggregates it into a File.
func Parse(r io.Reader) (*File, error) {
	f := &File{Benchmarks: map[string]Benchmark{}}
	runs := map[string]map[string]int{} // name -> unit -> samples seen
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			f.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			f.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// A result line is: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := normalizeName(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		b, ok := f.Benchmarks[name]
		if !ok {
			b = Benchmark{Metrics: map[string]Stat{}}
			runs[name] = map[string]int{}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			unit := fields[i+1]
			b.Metrics[unit] = b.Metrics[unit].add(v, runs[name][unit])
			runs[name][unit]++
		}
		b.Runs = runs[name]["ns/op"]
		f.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines found")
	}
	return f, nil
}

// normalizeName strips the Benchmark prefix and the -GOMAXPROCS suffix so
// names compare across machines with different core counts.
func normalizeName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// Delta is one benchmark's base-vs-head comparison on the min of one
// gated metric (ns/op, allocs/op, or B/op).
type Delta struct {
	Name    string
	Unit    string  // "ns/op", "allocs/op", or "B/op"
	Base    float64 // min in base
	Head    float64 // min in head
	Percent float64 // (head-base)/base * 100; positive = worse
}

// gatedUnits are the metrics Compare produces deltas for. ns/op is wall
// time; allocs/op and B/op are gated separately because allocation counts
// and sizes are deterministic — a regression there is a real new or grown
// allocation site, not runner noise.
var gatedUnits = []string{"ns/op", "allocs/op", "B/op"}

// Compare matches benchmarks by name and reports per-metric deltas, sorted
// worst-first, plus the names of base benchmarks missing from head.
// Benchmarks new in head are skipped (no baseline to regress against), as
// are metrics absent on either side (e.g. allocs/op when a stored base
// predates -benchmem), but base benchmarks absent from head are coverage
// the gate would silently lose — a deleted, renamed, or crashed benchmark —
// so they are returned for the caller to fail on.
func Compare(base, head *File) (deltas []Delta, missing []string) {
	for name, hb := range head.Benchmarks {
		bb, ok := base.Benchmarks[name]
		if !ok {
			continue
		}
		for _, unit := range gatedUnits {
			hs, hok := hb.Metrics[unit]
			bs, bok := bb.Metrics[unit]
			if !hok || !bok {
				continue
			}
			if bs.Min == 0 {
				if hs.Min == 0 {
					continue // both zero: nothing to gate
				}
				// A zero baseline (a benchmark driven to 0 allocs/op) has
				// no finite percentage; any nonzero head is an infinite
				// regression and must trip the gate, not be skipped.
				deltas = append(deltas, Delta{
					Name: name, Unit: unit, Base: 0, Head: hs.Min, Percent: math.Inf(1),
				})
				continue
			}
			deltas = append(deltas, Delta{
				Name:    name,
				Unit:    unit,
				Base:    bs.Min,
				Head:    hs.Min,
				Percent: 100 * (hs.Min - bs.Min) / bs.Min,
			})
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Percent != deltas[j].Percent {
			return deltas[i].Percent > deltas[j].Percent
		}
		if deltas[i].Name != deltas[j].Name {
			return deltas[i].Name < deltas[j].Name
		}
		return deltas[i].Unit < deltas[j].Unit
	})
	for name := range base.Benchmarks {
		if _, ok := head.Benchmarks[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return deltas, missing
}

func main() {
	var (
		sha            = flag.String("sha", "", "commit sha to record in the JSON")
		out            = flag.String("o", "", "output path (default stdout)")
		compare        = flag.Bool("compare", false, "compare two benchjson files: base.json head.json")
		threshold      = flag.Float64("threshold", 15, "with -compare: fail on ns/op regressions above this percent")
		allocThreshold = flag.Float64("alloc-threshold", 25, "with -compare: fail on allocs/op regressions above this percent")
		bytesThreshold = flag.Float64("bytes-threshold", 25, "with -compare: fail on B/op regressions above this percent")
	)
	flag.Parse()
	if err := run(*sha, *out, *compare, *threshold, *allocThreshold, *bytesThreshold, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(sha, out string, compare bool, threshold, allocThreshold, bytesThreshold float64, args []string) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two files: base.json head.json")
		}
		base, err := readFile(args[0])
		if err != nil {
			return err
		}
		head, err := readFile(args[1])
		if err != nil {
			return err
		}
		deltas, missing := Compare(base, head)
		if len(deltas) == 0 {
			return fmt.Errorf("no common benchmarks between %s and %s", args[0], args[1])
		}
		var failedUnits []string
		for _, d := range deltas {
			limit := threshold
			switch d.Unit {
			case "allocs/op":
				limit = allocThreshold
			case "B/op":
				limit = bytesThreshold
			}
			verdict := "ok"
			if d.Percent > limit {
				verdict = "REGRESSION"
				failedUnits = append(failedUnits, fmt.Sprintf("%s %s %+.2f%% (limit %g%%)", d.Name, d.Unit, d.Percent, limit))
			}
			fmt.Printf("%-40s base %14.0f %-9s head %14.0f %-9s %+7.2f%%  %s\n",
				d.Name, d.Base, d.Unit, d.Head, d.Unit, d.Percent, verdict)
		}
		if len(missing) > 0 {
			return fmt.Errorf("benchmarks in %s missing from %s (deleted, renamed, or crashed?): %s",
				args[0], args[1], strings.Join(missing, ", "))
		}
		if len(failedUnits) > 0 {
			return fmt.Errorf("performance regressed beyond the gate: %s", strings.Join(failedUnits, "; "))
		}
		return nil
	}

	in := io.Reader(os.Stdin)
	if len(args) == 1 {
		fh, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer fh.Close()
		in = fh
	} else if len(args) > 1 {
		return fmt.Errorf("at most one input file, got %d", len(args))
	}
	f, err := Parse(in)
	if err != nil {
		return err
	}
	f.SHA = sha
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
