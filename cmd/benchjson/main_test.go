package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorThroughput-4 	       2	 535154571 ns/op	    452472 events/op	122210656 B/op	 2271496 allocs/op
BenchmarkSimulatorThroughput-4 	       2	 521495500 ns/op	    452472 events/op	122210688 B/op	 2271496 allocs/op
BenchmarkSimulatorThroughput-4 	       2	 526799683 ns/op	    452472 events/op	122210640 B/op	 2271496 allocs/op
BenchmarkCentralQueue-4        	      36	  34265197 ns/op	     13593 assigns/op	 6443664 B/op	  118084 allocs/op
BenchmarkCentralQueue-4        	      39	  32822202 ns/op	     13593 assigns/op	 6443664 B/op	  118084 allocs/op
PASS
ok  	repro	8.603s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.Pkg != "repro" {
		t.Errorf("env = %q/%q/%q", f.Goos, f.Goarch, f.Pkg)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(f.Benchmarks))
	}
	st, ok := f.Benchmarks["SimulatorThroughput"]
	if !ok {
		t.Fatalf("missing SimulatorThroughput (GOMAXPROCS suffix must be stripped); have %v", f.Benchmarks)
	}
	if st.Runs != 3 {
		t.Errorf("runs = %d, want 3", st.Runs)
	}
	ns := st.Metrics["ns/op"]
	if ns.Min != 521495500 || ns.Max != 535154571 {
		t.Errorf("ns/op min/max = %v/%v", ns.Min, ns.Max)
	}
	wantMean := (535154571.0 + 521495500.0 + 526799683.0) / 3
	if math.Abs(ns.Mean-wantMean) > 1 {
		t.Errorf("ns/op mean = %v, want %v", ns.Mean, wantMean)
	}
	if ev := st.Metrics["events/op"]; ev.Min != 452472 || ev.Max != 452472 {
		t.Errorf("custom metric events/op = %+v", ev)
	}
	if al := st.Metrics["allocs/op"]; al.Mean != 2271496 {
		t.Errorf("allocs/op mean = %v", al.Mean)
	}
	cq := f.Benchmarks["CentralQueue"]
	if cq.Runs != 2 || cq.Metrics["ns/op"].Min != 32822202 {
		t.Errorf("CentralQueue = %+v", cq)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("expected error on output with no benchmark lines")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":       "Foo",
		"BenchmarkFoo":         "Foo",
		"BenchmarkFig8And9-16": "Fig8And9",
		"BenchmarkFig8And9":    "Fig8And9",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func bench(nsMin float64) Benchmark {
	return Benchmark{Runs: 1, Metrics: map[string]Stat{"ns/op": {Min: nsMin, Mean: nsMin, Max: nsMin}}}
}

func TestCompare(t *testing.T) {
	base := &File{Benchmarks: map[string]Benchmark{
		"A":        bench(100),
		"B":        bench(1000),
		"BaseOnly": bench(5),
	}}
	head := &File{Benchmarks: map[string]Benchmark{
		"A":        bench(130), // +30%
		"B":        bench(900), // -10%
		"HeadOnly": bench(7),
	}}
	deltas, missing := Compare(base, head)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (head-only benchmarks skipped)", len(deltas))
	}
	// Sorted worst-first.
	if deltas[0].Name != "A" || math.Abs(deltas[0].Percent-30) > 1e-9 {
		t.Errorf("worst delta = %+v", deltas[0])
	}
	if deltas[1].Name != "B" || math.Abs(deltas[1].Percent+10) > 1e-9 {
		t.Errorf("second delta = %+v", deltas[1])
	}
	// A benchmark present in base but absent from head is lost coverage
	// and must be reported, not silently dropped.
	if len(missing) != 1 || missing[0] != "BaseOnly" {
		t.Errorf("missing = %v, want [BaseOnly]", missing)
	}
}

// A base benchmark vanishing from head must fail the compare run even when
// every common benchmark is within threshold.
func TestRunFailsOnLostCoverage(t *testing.T) {
	dir := t.TempDir()
	base := &File{Benchmarks: map[string]Benchmark{"A": bench(100), "Gone": bench(50)}}
	head := &File{Benchmarks: map[string]Benchmark{"A": bench(100)}}
	basePath := filepath.Join(dir, "base.json")
	headPath := filepath.Join(dir, "head.json")
	writeJSON(t, basePath, base)
	writeJSON(t, headPath, head)
	err := run("", "", true, 15, 25, 25, []string{basePath, headPath})
	if err == nil || !strings.Contains(err.Error(), "Gone") {
		t.Fatalf("err = %v, want failure naming the missing benchmark", err)
	}
}

// End-to-end through run(): convert a log to JSON, then compare against a
// slower base and verify the threshold trips.
func TestRunConvertAndCompare(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "bench.txt")
	headJSON := filepath.Join(dir, "head.json")
	writeFile(t, log, sampleOutput)
	if err := run("abc123", headJSON, false, 15, 25, 25, []string{log}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	head, err := readFile(headJSON)
	if err != nil {
		t.Fatal(err)
	}
	if head.SHA != "abc123" {
		t.Errorf("sha = %q", head.SHA)
	}

	// Same numbers: no regression at any threshold.
	if err := run("", "", true, 0.1, 0.1, 0.1, []string{headJSON, headJSON}); err != nil {
		t.Errorf("self-compare should pass: %v", err)
	}

	// Base 30% faster than head: a 15% gate must fail.
	base := *head
	base.Benchmarks = map[string]Benchmark{}
	for name, b := range head.Benchmarks {
		ns := b.Metrics["ns/op"]
		ns.Min *= 0.7
		nb := Benchmark{Runs: b.Runs, Metrics: map[string]Stat{"ns/op": ns}}
		base.Benchmarks[name] = nb
	}
	baseJSON := filepath.Join(dir, "base.json")
	writeJSON(t, baseJSON, &base)
	err = run("", "", true, 15, 25, 25, []string{baseJSON, headJSON})
	if err == nil {
		t.Fatal("expected regression failure")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("error = %v", err)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeJSON(t *testing.T, path string, f *File) {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func benchWithAllocs(nsMin, allocMin float64) Benchmark {
	return Benchmark{Runs: 1, Metrics: map[string]Stat{
		"ns/op":     {Min: nsMin, Mean: nsMin, Max: nsMin},
		"allocs/op": {Min: allocMin, Mean: allocMin, Max: allocMin},
	}}
}

func TestCompareReportsAllocDeltas(t *testing.T) {
	base := &File{Benchmarks: map[string]Benchmark{"A": benchWithAllocs(100, 1000)}}
	head := &File{Benchmarks: map[string]Benchmark{"A": benchWithAllocs(110, 1500)}}
	deltas, missing := Compare(base, head)
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (ns/op and allocs/op)", len(deltas))
	}
	// Worst-first: the +50% allocs/op delta sorts above the +10% ns/op one.
	if deltas[0].Unit != "allocs/op" || math.Abs(deltas[0].Percent-50) > 1e-9 {
		t.Errorf("worst delta = %+v, want allocs/op +50%%", deltas[0])
	}
	if deltas[1].Unit != "ns/op" || math.Abs(deltas[1].Percent-10) > 1e-9 {
		t.Errorf("second delta = %+v, want ns/op +10%%", deltas[1])
	}
}

// A pure allocation regression — ns/op within its gate — must fail the
// compare via the allocs/op threshold, and an allocation delta within the
// threshold must pass.
func TestRunGatesAllocRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	writeJSON(t, basePath, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithAllocs(100, 1000),
	}})

	// +40% allocs, +5% ns: trips the 25% alloc gate despite the 15% ns gate passing.
	regressed := filepath.Join(dir, "regressed.json")
	writeJSON(t, regressed, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithAllocs(105, 1400),
	}})
	err := run("", "", true, 15, 25, 25, []string{basePath, regressed})
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("err = %v, want failure naming allocs/op", err)
	}

	// +20% allocs stays under the 25% gate.
	ok := filepath.Join(dir, "ok.json")
	writeJSON(t, ok, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithAllocs(105, 1200),
	}})
	if err := run("", "", true, 15, 25, 25, []string{basePath, ok}); err != nil {
		t.Fatalf("within-threshold alloc delta should pass: %v", err)
	}
}

// A base stored before -benchmem (no allocs/op metric) must not block the
// compare: the alloc gate simply has no baseline for that benchmark.
func TestRunTolerateMissingAllocBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	headPath := filepath.Join(dir, "head.json")
	writeJSON(t, basePath, &File{Benchmarks: map[string]Benchmark{"A": bench(100)}})
	writeJSON(t, headPath, &File{Benchmarks: map[string]Benchmark{"A": benchWithAllocs(100, 999999)}})
	if err := run("", "", true, 15, 25, 25, []string{basePath, headPath}); err != nil {
		t.Fatalf("missing alloc baseline should be skipped, got: %v", err)
	}
}

// A benchmark whose baseline reached 0 (e.g. 0 allocs/op) must not lose its
// gate: regressing from 0 to anything nonzero is an infinite regression and
// fails; staying at 0 passes.
func TestRunGatesZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	writeJSON(t, basePath, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithAllocs(100, 0),
	}})

	regressed := filepath.Join(dir, "regressed.json")
	writeJSON(t, regressed, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithAllocs(100, 3),
	}})
	err := run("", "", true, 15, 25, 25, []string{basePath, regressed})
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("err = %v, want failure on 0 -> 3 allocs/op", err)
	}

	stillZero := filepath.Join(dir, "zero.json")
	writeJSON(t, stillZero, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithAllocs(100, 0),
	}})
	if err := run("", "", true, 15, 25, 25, []string{basePath, stillZero}); err != nil {
		t.Fatalf("0 -> 0 should pass: %v", err)
	}
}

func benchWithBytes(nsMin, bytesMin float64) Benchmark {
	return Benchmark{Runs: 1, Metrics: map[string]Stat{
		"ns/op": {Min: nsMin, Mean: nsMin, Max: nsMin},
		"B/op":  {Min: bytesMin, Mean: bytesMin, Max: bytesMin},
	}}
}

// A pure bytes regression — same allocation count, bigger allocations, ns/op
// within its gate — must fail the compare via the B/op threshold, and a
// bytes delta within the threshold must pass.
func TestRunGatesBytesRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	writeJSON(t, basePath, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithBytes(100, 1_000_000),
	}})

	// +40% B/op, +5% ns: trips the 25% bytes gate despite the ns gate passing.
	regressed := filepath.Join(dir, "regressed.json")
	writeJSON(t, regressed, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithBytes(105, 1_400_000),
	}})
	err := run("", "", true, 15, 25, 25, []string{basePath, regressed})
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("err = %v, want failure naming B/op", err)
	}

	// +20% B/op stays under the 25% gate.
	ok := filepath.Join(dir, "ok.json")
	writeJSON(t, ok, &File{Benchmarks: map[string]Benchmark{
		"A": benchWithBytes(105, 1_200_000),
	}})
	if err := run("", "", true, 15, 25, 25, []string{basePath, ok}); err != nil {
		t.Fatalf("within-threshold bytes delta should pass: %v", err)
	}
}

// A base stored before -benchmem (no B/op metric) must not block the
// compare, and a zero-B/op baseline must keep its gate: 0 -> N bytes is an
// infinite regression.
func TestRunBytesBaselineEdgeCases(t *testing.T) {
	dir := t.TempDir()

	noBytesBase := filepath.Join(dir, "nobytes.json")
	writeJSON(t, noBytesBase, &File{Benchmarks: map[string]Benchmark{"A": bench(100)}})
	head := filepath.Join(dir, "head.json")
	writeJSON(t, head, &File{Benchmarks: map[string]Benchmark{"A": benchWithBytes(100, 1<<30)}})
	if err := run("", "", true, 15, 25, 25, []string{noBytesBase, head}); err != nil {
		t.Fatalf("missing bytes baseline should be skipped, got: %v", err)
	}

	zeroBase := filepath.Join(dir, "zerobytes.json")
	writeJSON(t, zeroBase, &File{Benchmarks: map[string]Benchmark{"A": benchWithBytes(100, 0)}})
	err := run("", "", true, 15, 25, 25, []string{zeroBase, head})
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("err = %v, want failure on 0 -> nonzero B/op", err)
	}
	stillZero := filepath.Join(dir, "stillzero.json")
	writeJSON(t, stillZero, &File{Benchmarks: map[string]Benchmark{"A": benchWithBytes(100, 0)}})
	if err := run("", "", true, 15, 25, 25, []string{zeroBase, stillZero}); err != nil {
		t.Fatalf("0 -> 0 B/op should pass: %v", err)
	}
}
