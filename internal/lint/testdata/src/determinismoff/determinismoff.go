// Package determinismoff is NOT annotated //hawk:deterministic: nothing in
// it may be flagged, wall clock and all.
package determinismoff

import "time"

func now() time.Time { return time.Now() }

func mapRange(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
