// Package structsize exercises the structsize analyzer: correct pins,
// violated pins, pointer-bearing fields behind //hawk:nopointers, and
// malformed size arguments.
package structsize

// ev is pinned correctly: 4+4+8 = 16 bytes, no pointers.
//
//hawk:size=16
//hawk:nopointers
type ev struct {
	a, b int32
	c    float64
}

// wrongSize really is 16 bytes.
//
//hawk:size=8
type wrongSize struct { // want `size is 16 bytes, directive pins 8`
	a, b int32
	c    float64
}

// padded: alignment counts — the directive pins what the compiler does.
//
//hawk:size=16
type padded struct {
	flag bool
	f    float64
}

// slicePtr: slices carry a data pointer.
//
//hawk:nopointers
type slicePtr struct { // want `slicePtr\.s \(\[\]int\) carries a pointer`
	s []int
}

// strPtr: strings do too.
//
//hawk:nopointers
type strPtr struct { // want `strPtr\.s \(string\) carries a pointer`
	s string
}

// nested: the scan descends through named field types and arrays.
//
//hawk:nopointers
type nested struct { // want `nested\.inner\[…\]\.m .* carries a pointer`
	inner [2]innerT
}

type innerT struct {
	m map[int]int
}

// cleanNested: pointer-free all the way down.
//
//hawk:size=24
//hawk:nopointers
type cleanNested struct {
	e  ev
	id int64
}

//hawk:size=x16
type badArg struct{} // want `malformed //hawk:size value "x16"`
