// Package selftest is hawklint's deliberately-broken fixture: it violates
// at least one rule of every analyzer in the suite while compiling
// cleanly. CI builds cmd/hawklint and runs `go vet -vettool` over this
// package expecting FAILURE — if the run passes, the suite has silently
// stopped finding anything and the green checkmark on the real tree means
// nothing. (testdata/ is invisible to ./... patterns, so the main hawklint
// pass over the repository never sees this package.)
//
//hawk:deterministic
//hawk:hotpath
package selftest

import (
	"container/list" // imports: forbidden in a hot-path package
	"fmt"
	"sort" // imports: forbidden in a hot-path package
	"time"
)

// wide is 48 bytes, not the 8 the directive pins, and the slice field
// breaks the nopointers contract.
//
//hawk:size=8
//hawk:nopointers
type wide struct {
	a, b, c float64
	ptrs    []int
}

// hot is a hot path (package-level annotation) that allocates three ways
// and is nondeterministic twice over.
func hot(w wide) string {
	seen := map[int]bool{} // hotalloc: map literal
	for k := range seen {  // determinism: map-order iteration
		w.a += float64(k)
	}
	_ = list.New()                        // uses the forbidden import
	sort.Ints(w.ptrs)                     // uses the other forbidden import
	return fmt.Sprint(time.Now(), w.ptrs) // hotalloc: fmt; determinism: wall clock
}
