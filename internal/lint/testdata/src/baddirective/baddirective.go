// Package baddirective exercises the directive hygiene checks owned by the
// hotalloc analyzer: unknown verbs, unjustified allows, and directives
// placed where they have no effect must all be reported, never ignored.
package baddirective

//hawk:frobnicate // want `unknown //hawk: directive "frobnicate"`

//hawk:allow // want `//hawk:allow needs a justification`

func f() int {
	//hawk:size=16 // want `misplaced //hawk:size`
	x := 0
	//hawk:hotpath // want `misplaced //hawk:hotpath`
	return x
}

// Misplaced on a non-type declaration:
//
//hawk:nopointers // want `misplaced //hawk:nopointers`
var v int

// wellPlaced directives produce no hygiene findings.
//
//hawk:size=8
//hawk:nopointers
type wellPlaced struct{ a, b int32 }

//hawk:hotpath
func hot() {
	m := make(map[int]int) //hawk:allow reused lookup table, justified properly
	_ = m
	_ = v
}
