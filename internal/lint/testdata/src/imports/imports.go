// Package imports is a hot-path package (package-level annotation) pulling
// in the packages the imports analyzer forbids there.
//
//hawk:hotpath
package imports

import (
	"container/heap" // want `hot-path package imports container/heap`
	"container/list" // want `hot-path package imports container/list`
	"reflect"        // want `hot-path package imports reflect`
	"sort"           // want `hot-path package imports sort`
)

func use(h heap.Interface, vs []int) int {
	sort.Ints(vs)
	return list.New().Len() + h.Len() + int(reflect.ValueOf(vs).Kind())
}
