// Package exporteddocoff is not marked //hawk:exporteddoc, so undocumented
// exported symbols pass without diagnostics.
package exporteddocoff

type Bare struct{}

func BareFunc() {}

const BareConst = 1

var BareVar = 2
