// Package hotallocpkg is annotated hot as a whole: every function in every
// non-test file is a hot path.
//
//hawk:hotpath
package hotallocpkg

func anyFunc() {
	_ = map[int]int{} // want `map literal allocates`
}

func anotherFunc(buf []byte, b byte) []byte {
	buf = append(buf, b) // sanctioned form, no finding
	return buf
}
