// Package importsfunc has no package-level annotation; one annotated
// function is enough to make the whole package hot for the import rules.
// The justified sort import shows //hawk:allow suppressing the finding
// for a cold-path use.
package importsfunc

import (
	"container/list" // want `hot-path package imports container/list`

	//hawk:allow cold-path report formatting only, never on the event loop
	"sort"
)

//hawk:hotpath
func hot(l *list.List) int { return l.Len() }

func cold(vs []int) { sort.Ints(vs) }
