// Package importsfunc has no package-level annotation; one annotated
// function is enough to make the whole package hot for the import rules.
package importsfunc

import "container/list" // want `hot-path package imports container/list`

//hawk:hotpath
func hot(l *list.List) int { return l.Len() }
