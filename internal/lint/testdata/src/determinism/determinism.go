// Package determinism exercises the determinism analyzer in a marked
// package: wall clock, global rand, environment reads, and map ranges.
//
//hawk:deterministic
package determinism

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now is wall clock`
}

func wallClockRef() func() time.Time {
	return time.Now // want `time\.Now is wall clock`
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since is wall clock`
}

func durationOK() time.Duration {
	return 3 * time.Second // the time package's types and constants are fine
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func seededOK() float64 {
	r := rand.New(rand.NewSource(42)) // explicit seeded stream: allowed
	return r.Float64()                // methods on *rand.Rand: allowed
}

func env() string {
	return os.Getenv("HOME") // want `os\.Getenv is environment-dependent`
}

func fileOK() error {
	f, err := os.Open("trace.csv") // os as such is fine; only env reads are not
	if err != nil {
		return err
	}
	return f.Close()
}

func mapOrder(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map: iteration order is nondeterministic`
		out = append(out, v)
	}
	return out
}

func sliceOK(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //hawk:allow keys are sorted below before anything order-sensitive happens
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
