// Package importsok has no hot-path annotations at all, so the forbidden
// imports are fine here — the rule is about hot packages, not the tree.
package importsok

import "reflect"

func kind(v any) reflect.Kind { return reflect.ValueOf(v).Kind() }
