// Package exporteddoc exercises the exported-doc analyzer in a marked
// package: every exported symbol needs a leading doc comment.
//
//hawk:exporteddoc
package exporteddoc

// Documented is fine.
type Documented struct{ n int }

type Bare struct{} // want `exported type Bare has no doc comment`

type hidden struct{}

// DocumentedFunc is fine.
func DocumentedFunc() {}

func BareFunc() {} // want `exported function BareFunc has no doc comment`

func internalFunc() { BareFunc(); internalFunc() }

// Get documents one method.
func (d *Documented) Get() int { return d.n }

func (d *Documented) Set(n int) { d.n = n } // want `exported method Set has no doc comment`

// Ignored: methods on unexported types are not rendered godoc.
func (hidden) Ignored() {}

// DocConst is fine.
const DocConst = 1

const BareConst = 2 // want `exported const BareConst has no doc comment`

// A group doc on the declaration covers every member of the block.
const (
	GroupedA = iota
	GroupedB
)

var (
	// DocdVar has a spec-level doc inside an undocumented block.
	DocdVar = 1
	BareVar = 2 // want `exported var BareVar has no doc comment`
	hiddenV = 3
)

//hawk:hotpath
func OnlyDirective() {} // want `exported function OnlyDirective has no doc comment`

func useAll() {
	_ = hidden{}
	_ = DocdVar + BareVar + hiddenV
	useAll()
}
