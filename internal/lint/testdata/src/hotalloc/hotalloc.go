// Package hotalloc exercises the hotalloc analyzer: each forbidden
// construct inside an annotated function, the sanctioned counterparts, and
// the //hawk:allow escape hatch.
package hotalloc

import "fmt"

// appendOK uses the sanctioned scratch-reuse forms.
//
//hawk:hotpath
func appendOK(buf []int, v int) []int {
	buf = append(buf, v)
	buf = append(buf[:0], v)
	buf = append((buf)[:0], v, v)
	return buf
}

//hawk:hotpath
func appendBad(src []int) []int {
	out := append(src, 1) // want `append result assigned to out but extends src`
	return out
}

//hawk:hotpath
func appendNested(src []int) int {
	return len(append(src, 2)) // want `append outside a .x = append\(x, \.\.\.\). assignment`
}

//hawk:hotpath
func maps() {
	m := map[string]int{} // want `map literal allocates`
	_ = m
	n := make(map[int]int) // want `make\(map\) allocates`
	_ = n
	s := make([]int, 0, 8) // slices are fine: growth is the caller's business
	_ = s
}

//hawk:hotpath
func closureBad(x int) func() int {
	return func() int { return x } // want `closure captures x`
}

//hawk:hotpath
func closureOK() func() int {
	return func() int { return 2 } // captures nothing: a static closure
}

var global int

//hawk:hotpath
func closureGlobalOK() func() int {
	return func() int { return global } // package-level vars are not captures
}

//hawk:hotpath
func formatting(id int) {
	fmt.Println("node", id) // want `fmt\.Println allocates`
}

//hawk:hotpath
func boxing(v int) any {
	var sink any = v // want `boxing int into any`
	_ = any(v)       // want `boxing int into any`
	var e error      // interface zero value: no boxing
	_ = e
	sink = nil // nil assignment: no boxing
	return sink
}

//hawk:hotpath
func allowedFinding() {
	m := make(map[int]int) //hawk:allow one-time table, built before the run starts
	_ = m
	//hawk:allow cold growth path, executes once per simulation
	n := map[string]bool{"a": true}
	_ = n
}

// cold is unannotated: nothing in it is checked.
func cold() map[string]int {
	return map[string]int{"a": 1}
}
