package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis/analysistest"
)

func TestStructSize(t *testing.T) {
	analysistest.Run(t, "testdata", lint.StructSize, "structsize")
}
