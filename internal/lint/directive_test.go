package lint

import (
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint/analysis/analysistest"
)

// TestDirectiveHygiene drives the fixture in which every kind of bad
// //hawk: directive must produce a finding: unknown verbs, allows without
// a justification, and directives placed where they have no effect.
func TestDirectiveHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", HotAlloc, "baddirective")
}

// TestParseDirectives unit-tests the grammar corner cases directly.
func TestParseDirectives(t *testing.T) {
	src := `// Package p is a doc comment.
//
//hawk:hotpath
//hawk:size=16 trailing text is ignored
//hawk:allow because the growth path runs once
//hawk:allow // a nested comment is not a justification
//hawk:allow
//hawk:
// plain comment, not a directive
//  hawk:hotpath is not a directive either (space before hawk)
package p
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := parseDirectives(f.Doc)
	want := []struct {
		verb, arg string
	}{
		{"hotpath", ""},
		{"size", "16"},
		{"allow", "because the growth path runs once"},
		{"allow", ""}, // nested comment stripped: unjustified
		{"allow", ""},
		{"", ""}, // empty verb: unknown, so hygiene reports it
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d directives, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].verb != w.verb || got[i].arg != w.arg {
			t.Errorf("directive %d = {verb:%q arg:%q}, want {verb:%q arg:%q}",
				i, got[i].verb, got[i].arg, w.verb, w.arg)
		}
	}
	if knownVerb("") || knownVerb("frobnicate") {
		t.Error("empty and unknown verbs must not be known")
	}
	for _, v := range knownVerbs {
		if !knownVerb(v) {
			t.Errorf("knownVerb(%q) = false", v)
		}
	}
}
