package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// A directive is one parsed //hawk: comment line.
type directive struct {
	pos  token.Pos // position of the comment line
	verb string    // "hotpath", "size", "nopointers", "deterministic", "allow", or unknown
	arg  string    // size: the byte count text; allow: the justification
}

// knownVerbs lists every directive verb the suite understands, for the
// unknown-verb diagnostic.
var knownVerbs = []string{"allow", "deterministic", "exporteddoc", "hotpath", "nopointers", "size"}

func knownVerb(v string) bool {
	for _, k := range knownVerbs {
		if v == k {
			return true
		}
	}
	return false
}

const directivePrefix = "//hawk:"

// parseDirectives extracts the //hawk: directives from one comment group.
// A nil group yields nil.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		d := directive{pos: c.Pos()}
		head, rest, _ := strings.Cut(text, " ")
		d.verb, d.arg, _ = strings.Cut(head, "=")
		if d.verb == "allow" {
			// The justification is the whole remainder — unless it is just
			// another comment, which is not a justification (this also
			// keeps `// want` test expectations from counting as one).
			d.arg = strings.TrimSpace(rest)
			if strings.HasPrefix(d.arg, "//") {
				d.arg = ""
			}
		}
		out = append(out, d)
	}
	return out
}

// hasDirective reports whether cg contains //hawk:<verb>.
func hasDirective(cg *ast.CommentGroup, verb string) bool {
	for _, d := range parseDirectives(cg) {
		if d.verb == verb {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file containing pos is a _test.go file.
// Package-level annotations (//hawk:hotpath, //hawk:deterministic) exempt
// test files: tests legitimately format, allocate, and range over maps.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// pkgMarked reports whether any non-test file's package doc comment
// carries //hawk:<verb> — the package-level annotation form.
func pkgMarked(pass *analysis.Pass, verb string) bool {
	for _, f := range pass.Files {
		if !isTestFile(pass, f.Pos()) && hasDirective(f.Doc, verb) {
			return true
		}
	}
	return false
}

// An allowIndex records which source lines carry a justified //hawk:allow.
// An allow on line L suppresses findings reported on L (trailing comment
// form) and on L+1 (standalone comment above the offending line).
type allowIndex map[lineKey]bool

type lineKey struct {
	file string
	line int
}

// buildAllowIndex scans every comment in the package for justified allow
// directives. Unjustified ones are not indexed — they suppress nothing and
// are themselves reported by hotalloc's hygiene pass.
func buildAllowIndex(pass *analysis.Pass) allowIndex {
	idx := make(allowIndex)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, d := range parseDirectives(cg) {
				if d.verb == "allow" && d.arg != "" {
					p := pass.Fset.Position(d.pos)
					idx[lineKey{p.Filename, p.Line}] = true
				}
			}
		}
	}
	return idx
}

// allowed reports whether a finding at pos is suppressed.
func (idx allowIndex) allowed(pass *analysis.Pass, pos token.Pos) bool {
	p := pass.Fset.Position(pos)
	return idx[lineKey{p.Filename, p.Line}] || idx[lineKey{p.Filename, p.Line - 1}]
}

// report emits a finding unless an //hawk:allow covers it.
func report(pass *analysis.Pass, idx allowIndex, pos token.Pos, format string, args ...any) {
	if idx.allowed(pass, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}
