// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// plus a `go vet -vettool` driver (see Main in unitchecker.go).
//
// The repository deliberately has no third-party dependencies, so the real
// x/tools module is not available; this package supplies the ~5% of its
// surface the hawklint analyzers need. Analyzers written against it are
// intentionally source-compatible with the x/tools shape (same field names,
// same Run signature), so they could be ported to the real framework by
// changing one import path.
//
// Differences from x/tools kept on purpose:
//
//   - no Facts, no Requires/ResultOf: the hawklint analyzers are all
//     single-package and self-contained;
//   - no SuggestedFixes;
//   - the unitchecker always typechecks from the export data `go vet`
//     hands it (compiled-package import, never source import).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. Run is invoked once per package
// with a fully typechecked Pass; it reports problems via pass.Report /
// pass.Reportf. The first return value is unused (kept for x/tools
// signature compatibility).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, then detail.
	Doc string

	// Run applies the analyzer to a package.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single typechecked package and a
// sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet // positions for Files
	Files []*ast.File    // the package's syntax trees, comments included

	Pkg        *types.Package // the typechecked package
	TypesInfo  *types.Info    // type information (Types, Defs, Uses, ...)
	TypesSizes types.Sizes    // target-platform layout, for Sizeof checks

	// Report delivers one diagnostic. The driver fills it in; analyzers
	// usually call Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The reporting
// analyzer's name is attached by the driver, not carried here.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
