// Package analysistest runs an analysis.Analyzer over fixture packages and
// checks its diagnostics against `// want` expectations embedded in the
// fixture source — a dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. Each expected diagnostic
// is declared on the line it should be reported on, as a comment (or a
// comment suffix — expectations inside directive comments work too):
//
//	m := map[string]int{} // want `map literal`
//	//hawk:frobnicate // want `unknown //hawk: directive`
//
// Each back- or double-quoted string after `want` is a regular expression;
// every expectation must be matched by a diagnostic on that line and every
// diagnostic must match an expectation, or the test fails.
//
// Fixture imports are typechecked from source (GOROOT packages only — the
// go/build source importer used here does not resolve module paths), so
// fixtures must be self-contained apart from standard-library imports.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
)

// The file set and source importer are process-wide: the importer caches
// every GOROOT package it typechecks, and its results are only valid
// against the file set they were parsed into, so both must be shared by
// all Run calls in the test binary.
var (
	loadMu     sync.Mutex
	sharedFset = token.NewFileSet()
	sharedImp  = importer.ForCompiler(sharedFset, "source", nil)
)

// Run analyzes each fixture package under dir ("<dir>/src/<pkg>") with a
// and reports expectation mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(a.Name+"/"+pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(dir, "src", pkg), a)
		})
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	sizes := types.SizesFor("gc", runtime.GOARCH)
	tcfg := &types.Config{Importer: sharedImp, Sizes: sizes}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check("fixture/"+filepath.Base(dir), sharedFset, files, info)
	if err != nil {
		t.Fatalf("fixture does not typecheck: %v", err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       sharedFset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: sizes,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	checkExpectations(t, sharedFset, files, diags)
}

// expectation is one `want` regexp and whether a diagnostic matched it.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`// want (.+)$`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				base := fset.Position(c.Pos())
				for i, text := range strings.Split(c.Text, "\n") {
					m := wantRE.FindStringSubmatch(strings.TrimRight(text, " \t"))
					if m == nil {
						continue
					}
					key := lineKey{base.Filename, base.Line + i}
					for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
						pat := arg[1]
						if pat == "" {
							pat = arg[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", key.file, key.line, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: pat})
					}
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := lineKey{posn.Filename, posn.Line}
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}

	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", fmt.Sprintf("%s:%d", k.file, k.line), w.raw)
			}
		}
	}
}
