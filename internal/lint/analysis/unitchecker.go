package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON configuration file `go vet` writes for its
// -vettool (the x/tools unitchecker protocol). Only the fields this driver
// consumes are listed; unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID          string            // package ID (import path + variant)
	Compiler    string            // "gc"
	Dir         string            // package directory
	ImportPath  string            // canonical import path
	GoVersion   string            // minimum Go version, e.g. "go1.24"
	GoFiles     []string          // absolute paths of the package's Go files
	ImportMap   map[string]string // import path in source -> canonical path
	PackageFile map[string]string // canonical path -> export data file

	// Facts plumbing. This driver has no facts, but the protocol requires
	// the output file to be written and dependency-only invocations
	// (VetxOnly) to be cheap no-ops.
	PackageVetx map[string]string // dependency facts (unused)
	VetxOnly    bool              // only facts are wanted: skip analysis
	VetxOutput  string            // where to write this package's facts

	SucceedOnTypecheckFailure bool // cgo fallback: exit 0 on type errors
}

// Main implements a `go vet -vettool` executable running the given
// analyzers, then exits. Usage:
//
//	func main() { analysis.Main(lint.Analyzers...) }
//	$ go build -o hawklint ./cmd/hawklint
//	$ go vet -vettool=$PWD/hawklint ./...
//
// The protocol, reverse-engineered from cmd/go and x/tools/go/analysis/
// unitchecker: the tool is probed once with `-flags` (it must print a JSON
// array of the flags it accepts) and once with `-V=full` (it must print a
// line ending in a build ID, which keys go vet's result cache), then
// invoked once per package with a single *.cfg argument. Diagnostics go to
// stderr as file:line:col lines; a nonzero exit marks the package failed.
func Main(analyzers ...*Analyzer) {
	os.Exit(unitchecker(analyzers, os.Args[1:], os.Stderr))
}

func unitchecker(analyzers []*Analyzer, args []string, stderr io.Writer) int {
	progname := filepath.Base(os.Args[0])

	// `go vet` probes the supported flags before first use. Declaring none
	// keeps every analyzer always-on (there is no per-analyzer opt-out;
	// suppression is per-finding via //hawk:allow).
	if len(args) > 0 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go vet probes with -V=full)")
	fs.Parse(args)
	if *version == "full" {
		fmt.Printf("%s version devel buildID=%s\n", progname, executableHash())
		return 0
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fmt.Fprintf(stderr, "usage: %s unit.cfg\n", progname)
		fmt.Fprintf(stderr, "(run it via: go vet -vettool=$(command -v %s) ./...)\n", progname)
		return 1
	}

	cfg, err := readConfig(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// Dependency packages are visited for facts only; we have none.
	if cfg.VetxOnly {
		if err := writeVetx(cfg); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	diags, err := runAnalyzers(analyzers, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "%s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	return 2
}

// namedDiagnostic is a rendered diagnostic with its position resolved and
// its analyzer attached, ready for sorting and printing.
type namedDiagnostic struct {
	posn     token.Position
	message  string
	analyzer string
}

func (d namedDiagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.posn, d.message, d.analyzer)
}

// runAnalyzers typechecks the package described by cfg against the export
// data `go vet` compiled for its dependencies, then runs every analyzer.
func runAnalyzers(analyzers []*Analyzer, cfg *vetConfig) ([]namedDiagnostic, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Imports resolve through the export data files cmd/go already built
	// for the compilation — the same bytes the compiler consumed, so the
	// type information is exact and no source re-typechecking happens.
	compiled := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	sizes := types.SizesFor(cfg.Compiler, targetArch())
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	tcfg := &types.Config{
		GoVersion: cfg.GoVersion,
		Sizes:     sizes,
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return compiled.Import(path)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []namedDiagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: sizes,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			diags = append(diags, namedDiagnostic{
				posn:     fset.Position(d.Pos),
				message:  d.Message,
				analyzer: name,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].posn, diags[j].posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

func readConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", path, err)
	}
	return cfg, nil
}

// writeVetx writes the (empty) facts file the protocol requires: cmd/go
// caches it and feeds it to dependents via PackageVetx.
func writeVetx(cfg *vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0666)
}

// executableHash returns a build ID for -V=full: go vet keys its per-package
// result cache on it, so it must change whenever the tool's behavior could —
// hashing the binary itself is the conservative answer.
func executableHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// targetArch returns the architecture `go vet` is analyzing for. cmd/go
// exports GOARCH to the tool's environment, so cross-compiled vet runs
// measure struct sizes for the target, not the host.
func targetArch() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
