package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// ExportedDoc enforces godoc coverage in packages annotated
// //hawk:exporteddoc: every exported symbol — type, function, method with an
// exported receiver, constant, and variable — must carry a doc comment. The
// annotated packages are the repo's API surface (repro/hawk and the engine
// packages it re-exports), where an undocumented symbol is a hole in the
// rendered godoc rather than a style nit. Grouped const/var declarations may
// document the group once on the declaration; a symbol-level comment is only
// required where no group doc covers it. Test files are exempt.
var ExportedDoc = &analysis.Analyzer{
	Name: "exporteddoc",
	Doc:  "require a doc comment on every exported symbol in //hawk:exporteddoc packages",
	Run:  runExportedDoc,
}

func runExportedDoc(pass *analysis.Pass) (any, error) {
	if !pkgMarked(pass, "exporteddoc") {
		return nil, nil
	}
	allows := buildAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, allows, d)
			case *ast.GenDecl:
				checkGenDoc(pass, allows, d)
			}
		}
	}
	return nil, nil
}

// hasDoc reports whether a comment group contains actual commentary (a
// group consisting solely of //hawk: directives documents nothing).
func hasDoc(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if text := c.Text; len(text) > 2 && text[:2] == "//" {
			if len(parseDirectives(&ast.CommentGroup{List: []*ast.Comment{c}})) == 0 {
				return true
			}
		} else if len(text) > 2 {
			return true // /* ... */ form
		}
	}
	return false
}

// checkFuncDoc flags an undocumented exported function or method. Methods
// count only when their receiver type is exported too: a method on an
// unexported type is not part of the rendered godoc (interface satisfaction
// aside, which the interface's own doc covers).
func checkFuncDoc(pass *analysis.Pass, allows allowIndex, d *ast.FuncDecl) {
	if !d.Name.IsExported() || hasDoc(d.Doc) {
		return
	}
	kind := "exported function"
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind = "exported method"
	}
	report(pass, allows, d.Pos(), "%s %s has no doc comment", kind, d.Name.Name)
}

// receiverTypeName unwraps a method receiver to its named type.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkGenDoc flags undocumented exported types, constants, and variables.
// A doc comment on the declaration covers every spec in its group; a spec's
// own doc or trailing line comment covers just that spec.
func checkGenDoc(pass *analysis.Pass, allows allowIndex, d *ast.GenDecl) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !hasDoc(s.Doc) {
				report(pass, allows, s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || hasDoc(s.Doc) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(pass, allows, name.Pos(), "exported %s %s has no doc comment", kindOf(d), name.Name)
				}
			}
		}
	}
}

func kindOf(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "var"
}
