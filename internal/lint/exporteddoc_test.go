package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis/analysistest"
)

func TestExportedDoc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ExportedDoc, "exporteddoc", "exporteddocoff")
}
