// Package lint implements hawklint: five static analyzers that enforce, at
// compile time, the invariants this reproduction's performance and
// replayability results rest on. They run as a `go vet -vettool` suite (see
// cmd/hawklint) over the whole repository in CI, so the rules hold for
// every future call site — not just the ones the runtime tests happen to
// exercise.
//
// The analyzers:
//
//   - hotalloc: functions (or whole packages) annotated //hawk:hotpath may
//     not contain allocating constructs — variable-capturing closures, map
//     literals or make(map), append calls that do not reuse their
//     destination's backing array, boxing concrete values into interface
//     types, or fmt.* calls. It also owns directive hygiene: unknown,
//     malformed, or misplaced //hawk: directives are reported here.
//   - structsize: struct types annotated //hawk:size=N are checked against
//     the target platform's real layout (types.Sizes), and types annotated
//     //hawk:nopointers are rejected if any reachable field carries a
//     pointer (including strings, slices, maps, and interfaces). This is
//     the compile-time form of internal/sim's TestHotStructSizes, and it
//     covers structs that test will never hear about.
//   - determinism: packages annotated //hawk:deterministic may not call
//     time.Now/Since/Until, the global math/rand functions (seeded
//     rand.New(rand.NewSource(...)) streams are fine), or os.Getenv and
//     friends, and may not range over maps — iteration order would leak
//     into event ordering or report output. Order-insensitive map loops
//     (counting, collect-then-sort) carry a //hawk:allow justification.
//   - imports: packages containing any //hawk:hotpath annotation may not
//     import container/heap, container/list, or reflect — the event queue
//     and server heap are hand-rolled precisely because those packages box
//     every element through interface{}.
//   - exporteddoc: packages annotated //hawk:exporteddoc must carry a doc
//     comment on every exported symbol — types, functions, methods on
//     exported receivers, constants, and variables (a group doc covers a
//     whole const/var block). The annotated packages are the repo's API
//     surface (repro/hawk and the engine packages it re-exports), where an
//     undocumented symbol is a hole in the rendered godoc.
//
// # Directive grammar
//
// Directives are comments of the form //hawk:verb (no space after //, per
// Go directive convention), placed where each verb expects:
//
//	//hawk:hotpath
//	    On a function or method declaration's doc comment: that body is a
//	    hot path. On the package clause's doc comment: every function in
//	    the package is (test files exempt).
//	//hawk:size=<bytes>
//	    On a type declaration's doc comment: unsafe.Sizeof the type must
//	    equal <bytes> on the platform being vetted.
//	//hawk:nopointers
//	    On a type declaration's doc comment: the type must contain no
//	    pointer-bearing fields at any depth.
//	//hawk:deterministic
//	    On the package clause's doc comment: the determinism analyzer
//	    applies to the package (test files exempt).
//	//hawk:exporteddoc
//	    On the package clause's doc comment: the exporteddoc analyzer
//	    applies to the package (test files exempt).
//	//hawk:allow <justification>
//	    Anywhere: suppresses hawklint findings on its own line and the
//	    line directly below. The justification is mandatory and must be
//	    prose, not another comment — a bare //hawk:allow is itself a
//	    finding.
//
// Text after the first token of a non-allow directive is ignored, so
// fixture files can append `// want` expectations to directive lines. A
// directive with an unknown verb, a malformed argument, or placed where its
// verb has no effect (e.g. //hawk:size inside a function body) is reported
// by hotalloc rather than silently skipped.
//
// # Relationship to the runtime pins
//
// internal/sim keeps TestHotStructSizes and the testing.AllocsPerRun pins:
// the analyzers prove the constructs are absent, the runtime tests prove
// the compiler agreed (escape analysis can still surprise). Each runtime
// pin cross-references the analyzer guarding the same invariant so the two
// layers are maintained together. internal/liverun is deliberately
// unannotated: it is the wall-clock prototype, and time.Now is its job.
package lint
