package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis/analysistest"
)

func TestImports(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Imports, "imports", "importsfunc", "importsok")
}
