package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// StructSize checks //hawk:size=N and //hawk:nopointers type annotations
// against the real layout the compiler will use (types.Sizes for the
// platform being vetted). It is the compile-time replacement for the
// runtime TestHotStructSizes pin: a new field on simEvent or entry fails
// `go vet` before any test runs, and future hot structs get the same guard
// by adding one directive instead of one test case.
var StructSize = &analysis.Analyzer{
	Name: "structsize",
	Doc:  "check //hawk:size and //hawk:nopointers type annotations against real layout",
	Run:  runStructSize,
}

func runStructSize(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				var dirs []directive
				if len(gd.Specs) == 1 {
					dirs = parseDirectives(gd.Doc)
				}
				dirs = append(dirs, parseDirectives(ts.Doc)...)
				checkTypeDirectives(pass, ts, dirs)
			}
		}
	}
	return nil, nil
}

func checkTypeDirectives(pass *analysis.Pass, ts *ast.TypeSpec, dirs []directive) {
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	t := obj.Type()
	for _, d := range dirs {
		switch d.verb {
		case "size":
			want, err := strconv.ParseInt(d.arg, 10, 64)
			if err != nil || want < 0 {
				pass.Reportf(ts.Name.Pos(), "malformed //hawk:size value %q on %s: want a byte count", d.arg, ts.Name.Name)
				continue
			}
			if got := pass.TypesSizes.Sizeof(t); got != want {
				pass.Reportf(ts.Name.Pos(), "%s: size is %d bytes, directive pins %d", ts.Name.Name, got, want)
			}
		case "nopointers":
			if path := pointerPath(t, ts.Name.Name, make(map[types.Type]bool)); path != "" {
				pass.Reportf(ts.Name.Pos(), "%s: //hawk:nopointers but %s carries a pointer", ts.Name.Name, path)
			}
		}
	}
}

// pointerPath returns a dotted description of the first pointer-bearing
// component reachable from t, or "" if the garbage collector sees no
// pointers in values of t. Strings count: they carry a data pointer, which
// is exactly what keeps a struct out of the GC-opaque arenas.
func pointerPath(t types.Type, path string, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.String, types.UnsafePointer:
			return fmt.Sprintf("%s (%s)", path, u.Name())
		}
		return ""
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return fmt.Sprintf("%s (%s)", path, u.String())
	case *types.Array:
		return pointerPath(u.Elem(), path+"[…]", seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := pointerPath(f.Type(), path+"."+f.Name(), seen); p != "" {
				return p
			}
		}
		return ""
	default:
		// Type parameters and anything unrecognized: conservatively treat
		// as pointer-bearing so the directive never silently passes.
		return fmt.Sprintf("%s (%s)", path, t.String())
	}
}
