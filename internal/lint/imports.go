package lint

import (
	"go/ast"
	"strconv"

	"repro/internal/lint/analysis"
)

// Imports forbids the boxed-container, reflection, and sorting packages in
// hot-path packages — any package containing a //hawk:hotpath annotation
// (package- or function-level). The event queue (PR 2) and the central
// scheduler's server heap (PR 3) are hand-rolled precisely because
// container/heap and container/list move every element through
// interface{}, allocating on each push and pop; importing them back into a
// hot package is invariably the first step of undoing that work. reflect
// is banned for the same reason plus its cost model. sort is banned
// because sort.Slice boxes the slice through interface{} and allocates its
// comparison closure per call (and sort.Sort boxes through sort.Interface)
// — the ladder timeline (PR 10) carries its own insertion sort instead;
// cold-path uses justify themselves with //hawk:allow. Test files are
// exempt (reflect.DeepEqual and sort in assertions are fine).
var Imports = &analysis.Analyzer{
	Name: "imports",
	Doc:  "forbid container/heap, container/list, reflect, and sort in hot-path packages",
	Run:  runImports,
}

// forbiddenImports maps import path -> why it is banned in hot packages.
var forbiddenImports = map[string]string{
	"container/heap": "boxes every element through interface{} on push/pop; use a hand-rolled heap over a concrete slice (see internal/eventq)",
	"container/list": "one heap allocation and pointer chase per element; use a slice-backed structure",
	"reflect":        "defeats the static layout discipline and allocates through interface boxing",
	"sort":           "sort.Slice boxes through interface{} and allocates its closure per call; hand-roll the sort over the concrete slice (see internal/eventq's ladder) or //hawk:allow a cold-path use",
}

func runImports(pass *analysis.Pass) (any, error) {
	if !hotPackage(pass) {
		return nil, nil
	}
	allows := buildAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				report(pass, allows, imp.Pos(), "hot-path package imports %s: %s", path, why)
			}
		}
	}
	return nil, nil
}

// hotPackage reports whether the package carries any //hawk:hotpath
// annotation in a non-test file.
func hotPackage(pass *analysis.Pass) bool {
	if pkgMarked(pass, "hotpath") {
		return true
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && hasDirective(fn.Doc, "hotpath") {
				return true
			}
		}
	}
	return false
}
