package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "hotalloc", "hotallocpkg")
}
