package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Determinism enforces replayability in packages annotated
// //hawk:deterministic: every simulation, and every report derived from
// one, must be a pure function of (trace, config, seed) — that is what
// lets internal/sweep fan runs out in parallel with byte-identical results
// and what makes the golden-report suite meaningful at all. Forbidden:
//
//   - time.Now / time.Since / time.Until — wall clock (the live prototype
//     in internal/liverun is the one place wall-clock belongs, and it is
//     deliberately not annotated);
//   - the global math/rand functions — a process-wide stream that cannot
//     be seeded per run; rand.New(rand.NewSource(seed)) streams and
//     internal/randdist Sources are fine;
//   - os.Getenv / os.LookupEnv / os.Environ — environment-dependent
//     behavior changes results between hosts;
//   - ranging over a map — iteration order is randomized per run, and a
//     map-ordered loop that feeds event ordering or report output is the
//     classic source of almost-always-identical runs. Order-insensitive
//     loops (counting, collect-then-sort) carry //hawk:allow with a
//     justification saying why order cannot reach the output.
//
// Test files are exempt: goldens and assertions already pin their output.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, env, and map-order dependence in //hawk:deterministic packages",
	Run:  runDeterminism,
}

// forbiddenFuncs maps package path -> function name -> short reason.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall clock",
		"Since": "wall clock",
		"Until": "wall clock",
	},
	"os": {
		"Getenv":    "environment-dependent",
		"LookupEnv": "environment-dependent",
		"Environ":   "environment-dependent",
	},
}

// allowedRand lists the math/rand functions that construct explicit seeded
// streams rather than touching the global one.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // operates on an explicit *Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !pkgMarked(pass, "deterministic") {
		return nil, nil
	}
	allows := buildAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkForbiddenRef(pass, allows, n)
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					report(pass, allows, n.Pos(),
						"range over map: iteration order is nondeterministic and must not reach event ordering or report output (sort the keys, or //hawk:allow with a justification)")
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkForbiddenRef flags any reference (call or value use) to a forbidden
// stdlib function — passing time.Now around is as nondeterministic as
// calling it.
func checkForbiddenRef(pass *analysis.Pass, allows allowIndex, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if reason, ok := forbiddenFuncs[path][name]; ok {
		report(pass, allows, sel.Pos(),
			"%s.%s is %s: deterministic packages must derive every value from (trace, config, seed)", path, name, reason)
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !allowedRand[name] {
		// Only package-level functions are the global stream; methods on
		// *rand.Rand have a receiver and are explicitly seeded.
		if fn.Type().(*types.Signature).Recv() == nil {
			report(pass, allows, sel.Pos(),
				"global math/rand.%s uses the process-wide stream: draw from a seeded source (randdist.Source or rand.New) instead", name)
		}
	}
}
