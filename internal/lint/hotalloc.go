package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// HotAlloc reports allocating constructs inside //hawk:hotpath functions,
// plus directive-hygiene problems anywhere in the package. The checks are
// syntactic plus type information — deliberately stricter than escape
// analysis, because "provably does not allocate" is the property the
// simulator's throughput (and the AllocsPerRun pins) depend on:
//
//   - closures that capture variables (each call allocates the closure and
//     moves captured locals to the heap);
//   - map composite literals and make(map...) (maps always heap-allocate);
//   - append whose destination does not reuse the appended slice's backing
//     array — the sanctioned forms are `x = append(x, ...)` and
//     `x = append(x[:n], ...)`, the scratch-buffer discipline used by the
//     steal and probe paths;
//   - conversions or assignments that box a concrete value into an
//     interface type;
//   - any call into package fmt (formatting allocates; hot paths report
//     through pre-sized counters and slices instead).
//
// Rare cold branches inside a hot function (growth paths, panics on
// programmer error) carry //hawk:allow justifications.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //hawk:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	allows := buildAllowIndex(pass)
	checkDirectiveHygiene(pass)

	pkgHot := pkgMarked(pass, "hotpath")
	for _, f := range pass.Files {
		fileHot := pkgHot && !isTestFile(pass, f.Pos())
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fileHot || hasDirective(fn.Doc, "hotpath") {
				checkHotFunc(pass, allows, fn)
			}
		}
	}
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, allows allowIndex, fn *ast.FuncDecl) {
	appendTargets := collectAppendTargets(pass.TypesInfo, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			for _, v := range capturedVars(pass, n) {
				report(pass, allows, n.Pos(),
					"closure captures %s: allocates the closure (and heap-moves the variable) per call in hot path %s",
					v.Name(), fn.Name.Name)
			}
		case *ast.CompositeLit:
			if isMapType(pass.TypesInfo.TypeOf(n)) {
				report(pass, allows, n.Pos(),
					"map literal allocates in hot path %s (maps always live on the heap)", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, allows, appendTargets, fn, n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					checkBoxing(pass, allows, lhs.Pos(), pass.TypesInfo.TypeOf(lhs), n.Rhs[i], fn)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					checkBoxing(pass, allows, name.Pos(), pass.TypesInfo.TypeOf(name), n.Values[i], fn)
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, allows allowIndex, appendTargets map[*ast.CallExpr]ast.Expr, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Conversion to an interface type boxes its operand.
	if len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			checkBoxing(pass, allows, call.Pos(), tv.Type, call.Args[0], fn)
			return
		}
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				if len(call.Args) > 0 {
					if tv, ok := info.Types[call.Args[0]]; ok && isMapType(tv.Type) {
						report(pass, allows, call.Pos(),
							"make(map) allocates in hot path %s (reuse a scratch structure instead)", fn.Name.Name)
					}
				}
			case "append":
				checkAppend(pass, allows, appendTargets, fn, call)
			}
		}
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if pkgName, ok := info.Uses[x].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
				report(pass, allows, call.Pos(),
					"fmt.%s allocates in hot path %s (format off the hot path, or accumulate into pre-sized state)",
					fun.Sel.Name, fn.Name.Name)
			}
		}
	}
}

// checkAppend enforces the scratch-slice discipline: an append's result
// must be assigned back over the slice it extends (`x = append(x, ...)` or
// `x = append(x[:n], ...)`), so steady-state calls reuse the destination's
// backing array and only genuine growth allocates.
func checkAppend(pass *analysis.Pass, allows allowIndex, appendTargets map[*ast.CallExpr]ast.Expr, fn *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if lhs, ok := appendTargets[call]; ok {
		if exprText(sliceBase(call.Args[0])) == exprText(lhs) {
			return
		}
		report(pass, allows, call.Pos(),
			"append result assigned to %s but extends %s: no backing-array reuse in hot path %s",
			exprText(lhs), exprText(sliceBase(call.Args[0])), fn.Name.Name)
		return
	}
	report(pass, allows, call.Pos(),
		"append outside a `x = append(x, ...)` assignment in hot path %s: the grown slice cannot be reused", fn.Name.Name)
}

// collectAppendTargets maps each append call that is the direct right-hand
// side of an assignment to its left-hand side, for the reuse check.
func collectAppendTargets(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]ast.Expr {
	targets := make(map[*ast.CallExpr]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						targets[call] = assign.Lhs[i]
					}
				}
			}
		}
		return true
	})
	return targets
}

// sliceBase strips slicing and parens: base(`x[:0]`) == base(`x[a:b]`) == x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.SliceExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return e
		}
	}
}

func exprText(e ast.Expr) string { return types.ExprString(e) }

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkBoxing reports rhs being converted/assigned into an interface type.
func checkBoxing(pass *analysis.Pass, allows allowIndex, pos token.Pos, dst types.Type, rhs ast.Expr, fn *ast.FuncDecl) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	rt := pass.TypesInfo.TypeOf(rhs)
	if rt == nil || types.IsInterface(rt) {
		return
	}
	if b, ok := rt.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	report(pass, allows, pos,
		"boxing %s into %s allocates in hot path %s (interface conversions escape their operand)",
		rt.String(), dst.String(), fn.Name.Name)
}

// capturedVars returns the variables lit references but does not declare —
// the captures that force a heap-allocated closure. Package-level variables
// and struct fields are not captures.
func capturedVars(pass *analysis.Pass, lit *ast.FuncLit) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (param or local)
		}
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true // package-level: accessed directly, not captured
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// checkDirectiveHygiene reports //hawk: comments that would otherwise be
// silently ignored: unknown verbs, unjustified allows, and known verbs in
// positions where they have no effect. hotalloc owns this check so each
// problem is reported exactly once across the suite.
func checkDirectiveHygiene(pass *analysis.Pass) {
	for _, f := range pass.Files {
		// Comment groups where placed directives actually take effect.
		effective := make(map[*ast.CommentGroup]bool)
		effective[f.Doc] = true
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				effective[d.Doc] = true
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					effective[d.Doc] = true
					for _, spec := range d.Specs {
						if ts, ok := spec.(*ast.TypeSpec); ok {
							effective[ts.Doc] = true
						}
					}
				}
			}
		}
		for _, cg := range f.Comments {
			for _, d := range parseDirectives(cg) {
				switch {
				case !knownVerb(d.verb):
					pass.Reportf(d.pos, "unknown //hawk: directive %q (known: %s)",
						d.verb, strings.Join(knownVerbs, ", "))
				case d.verb == "allow" && d.arg == "":
					pass.Reportf(d.pos, "//hawk:allow needs a justification: say why this finding is safe to suppress")
				case d.verb != "allow" && !effective[cg]:
					pass.Reportf(d.pos, "misplaced //hawk:%s: directives take effect on package, func, or type doc comments only", d.verb)
				}
			}
		}
	}
}
