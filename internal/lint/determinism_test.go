package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Determinism, "determinism", "determinismoff")
}
