package lint

import "repro/internal/lint/analysis"

// Analyzers is the hawklint suite in the order diagnostics should be
// easiest to read: layout first, then allocation, then determinism, then
// imports, then doc coverage. cmd/hawklint runs exactly this list.
var Analyzers = []*analysis.Analyzer{
	StructSize,
	HotAlloc,
	Determinism,
	Imports,
	ExportedDoc,
}
