// Package sim implements the trace-driven discrete-event cluster simulator
// used for the paper's evaluation (§4.1): single-slot FIFO nodes, 0.5 ms
// network delay, Sparrow batch sampling, Hawk's hybrid scheduling with
// partitioning and randomized stealing, a fully centralized baseline, and
// the split-cluster baseline — plus the three Hawk ablations of Figure 7.
//
// The scheduler itself is not hard-coded here: the engine executes whatever
// policy.Policy the run configuration names, so registered policies (see
// repro/hawk) run unmodified on this engine and on the live prototype in
// internal/liverun.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/policy"
	"repro/internal/randdist"
	"repro/internal/workload"
)

// jobState tracks one job while it runs.
type jobState struct {
	job      *workload.Job
	sim      *simulation
	estimate float64
	long     bool
	trueLong bool
	next     int // next task index to hand out (probe-scheduled jobs)
	finished int
}

// nextTaskDuration hands out the next unassigned task, or reports that all
// tasks have been given to other servers (the probe is cancelled).
func (js *jobState) nextTaskDuration() (float64, bool) {
	if js.next >= js.job.NumTasks() {
		return 0, false
	}
	d := js.job.Durations[js.next]
	js.next++
	return d, true
}

// taskFinished accounts one completed task and records the job runtime when
// the last task finishes (a job completes only after all its tasks, §3.1).
func (js *jobState) taskFinished(now float64) {
	js.finished++
	if js.finished == js.job.NumTasks() {
		js.sim.jobCompleted(js, now)
	}
}

type simulation struct {
	cfg        policy.Config
	pol        policy.Policy
	eng        *eventq.Engine[simEvent]
	trace      *workload.Trace
	part       core.Partition
	classifier core.Classifier
	estimator  *core.Estimator
	steal      core.StealPolicy
	src        *randdist.Source
	nodes      []*node
	central    *core.CentralQueue
	res        *policy.Report

	slots      int // total execution slots (len(nodes))
	busyNodes  int
	jobsDone   int
	nextSample float64 // absolute time of the next utilization tick

	// Per-simulation scratch buffers. The simulation is single-threaded
	// and each use fully overwrites its buffer before reading, so reusing
	// them keeps the probe and steal paths allocation-free:
	//
	//   - stealFlags: appendQueueLongFlags snapshot of one victim's queue
	//   - nodeIDs: probe targets (submit) and steal candidates; the two
	//     uses never overlap — probe placement only schedules events, and
	//     a steal attempt never submits
	//   - stolen: entries moved by one steal, copied into the thief's
	//     queue before the next attempt
	stealFlags []bool
	nodeIDs    []int
	stolen     []entry
}

// Run simulates the trace under the configuration, executing the policy
// named by cfg.Policy, and returns the collected metrics. Runs are
// deterministic for a given (trace, config) pair.
func Run(trace *workload.Trace, cfg policy.Config) (*policy.Report, error) {
	cfg, err := cfg.Normalize(trace)
	if err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	pol, err := policy.New(cfg.Policy, cfg)
	if err != nil {
		return nil, err
	}

	s := &simulation{
		cfg:        cfg,
		pol:        pol,
		trace:      trace,
		classifier: core.Classifier{Cutoff: cfg.Cutoff},
		estimator:  core.NewEstimator(cfg.MisestimateLo, cfg.MisestimateHi, cfg.Seed+1),
		src:        randdist.New(cfg.Seed),
		res:        &policy.Report{Engine: "sim", Policy: pol.String(), Config: cfg},
	}
	// The heap holds flat simEvent records; pre-size it with a
	// trace-derived bound (~3 events per task plus one submit per job).
	// Peak *pending* events — unsubmitted jobs, messages in their 0.5 ms
	// network flight, and one completion per busy slot — sits far below
	// this bound, so the hot loop never pays a growth copy. (Total events
	// *executed* can exceed it: probe-based policies run ~5 events per
	// task. The bound is about peak, not volume.) A hint of 0 would
	// merely grow on demand.
	hint := len(trace.Jobs)
	for _, j := range trace.Jobs {
		hint += 3 * j.NumTasks()
	}
	s.eng = eventq.New(s.dispatch, hint)
	// Every job produces exactly one JobReport; reserving the slice up
	// front keeps jobCompleted off the allocator's growth path.
	s.res.Jobs = make([]policy.JobReport, 0, len(trace.Jobs))

	s.slots = cfg.TotalSlots()
	s.part = core.NewPartition(s.slots, pol.ShortPartitionFraction())
	s.steal = core.StealPolicy{Cap: cfg.StealCap, Enabled: pol.Steal()}
	if s.steal.Enabled && s.steal.Cap > 0 {
		s.nodeIDs = make([]int, 0, s.steal.Cap+1)
	}

	if pool := pol.CentralPool(); pool != policy.PoolNone {
		s.central = core.NewCentralQueue(pool.IDs(s.part))
	}

	s.nodes = make([]*node, s.slots)
	for i := range s.nodes {
		s.nodes[i] = &node{id: i, sim: s}
	}

	if err := s.checkFeasibility(); err != nil {
		return nil, err
	}

	for i, j := range trace.Jobs {
		s.eng.At(j.SubmitTime, simEvent{kind: evSubmit, ref: int32(i)})
	}
	s.nextSample = cfg.UtilizationInterval
	s.eng.At(s.nextSample, simEvent{kind: evSample})

	s.eng.Run()

	if s.jobsDone != len(trace.Jobs) {
		return nil, fmt.Errorf("sim: deadlock — %d of %d jobs completed", s.jobsDone, len(trace.Jobs))
	}
	s.res.Makespan = s.eng.Now()
	s.res.Events = s.eng.Executed()
	return s.res, nil
}

// checkFeasibility runs the shared pre-flight check. With exact estimates
// each job's true class determines its route; under mis-estimation a job's
// class can flip at runtime, so both routes must be feasible.
func (s *simulation) checkFeasibility() error {
	exact := s.cfg.ExactEstimates()
	return policy.CheckFeasibility(s.trace, s.pol, s.part,
		func(j *workload.Job) []bool {
			if exact {
				return []bool{s.classifier.IsLong(j.AvgTaskDuration())}
			}
			return []bool{false, true}
		})
}

// submit routes a newly arrived job per the policy's decision.
func (s *simulation) submit(job *workload.Job) {
	js := &jobState{
		job:      job,
		sim:      s,
		estimate: s.estimator.Estimate(job),
	}
	js.long = s.classifier.IsLong(js.estimate)
	js.trueLong = s.classifier.IsLong(job.AvgTaskDuration())

	dec := s.pol.Route(policy.JobInfo{
		ID: job.ID, Tasks: job.NumTasks(), Estimate: js.estimate, Long: js.long,
	})
	switch dec.Action {
	case policy.ActionCentral:
		s.centralJob(js)
	default:
		k := s.probeCount(js, dec.Pool.Size(s.part))
		s.nodeIDs = dec.Pool.SampleInto(s.nodeIDs[:0], s.part, s.src, k)
		s.probeJob(js, s.nodeIDs)
	}
}

func (s *simulation) probeCount(js *jobState, candidates int) int {
	return core.NumProbes(js.job.NumTasks(), s.cfg.ProbeRatio, candidates)
}

// probeJob sends batch-sampling probes to the chosen nodes; each arrives
// after one network delay.
func (s *simulation) probeJob(js *jobState, nodeIDs []int) {
	s.res.ProbesSent += int64(len(nodeIDs))
	for _, id := range nodeIDs {
		s.eng.After(s.cfg.NetworkDelay, simEvent{kind: evProbeArrive, ref: int32(id), js: js})
	}
}

// centralJob places every task of the job with the §3.7 algorithm: each
// task goes to the server with the smallest estimated waiting time, which
// is then bumped by the job's estimated task runtime.
func (s *simulation) centralJob(js *jobState) {
	now := s.eng.Now()
	for i := 0; i < js.job.NumTasks(); i++ {
		nodeID, _ := s.central.Assign(now, js.estimate)
		s.res.CentralAssigns++
		s.eng.After(s.cfg.NetworkDelay, simEvent{
			kind: evTaskArrive, ref: int32(nodeID), js: js, dur: js.job.Durations[i],
		})
	}
}

// attemptSteal performs one randomized steal attempt for an idle thief:
// contact up to Cap random general-partition nodes and move the first
// eligible group found (§3.6, Figure 3). Per §4.1 the decision itself is
// free; stolen work restarts instantly at the thief.
func (s *simulation) attemptSteal(thief *node) {
	if !s.steal.Enabled {
		return
	}
	s.nodeIDs = s.steal.CandidatesInto(s.nodeIDs[:0], s.part, s.src, thief.id)
	candidates := s.nodeIDs
	if len(candidates) == 0 {
		return
	}
	s.res.StealAttempts++
	for _, id := range candidates {
		s.res.StealContacts++
		victim := s.nodes[id]
		if victim.queueLen() == 0 {
			continue
		}
		if !victim.busy {
			// The victim is between entries at this very instant; its
			// queue will advance on its own. Skip rather than race it.
			continue
		}
		s.stealFlags = victim.appendQueueLongFlags(s.stealFlags[:0])
		flags := s.stealFlags
		start, end, ok := core.EligibleGroup(victim.runningLong, flags)
		if !ok {
			continue
		}
		if s.cfg.StealRandomPositions {
			s.stolen = victim.appendStealIndices(s.stolen[:0], core.RandomShortIndices(flags, end-start, s.src))
		} else {
			s.stolen = victim.appendStealRange(s.stolen[:0], start, end)
		}
		if len(s.stolen) == 0 {
			continue
		}
		s.res.StealSuccesses++
		s.res.EntriesStolen += int64(len(s.stolen))
		thief.enqueueFront(s.stolen)
		return
	}
}

func (s *simulation) jobCompleted(js *jobState, now float64) {
	s.jobsDone++
	s.res.Jobs = append(s.res.Jobs, policy.JobReport{
		ID:         js.job.ID,
		SubmitTime: js.job.SubmitTime,
		Runtime:    now - js.job.SubmitTime,
		Tasks:      js.job.NumTasks(),
		Long:       js.long,
		TrueLong:   js.trueLong,
		Estimate:   js.estimate,
	})
}

// observeWait records how long a queue entry waited at nodes before its
// slot opened, split by job class — diagnostic for the queueing analyses.
func (s *simulation) observeWait(e entry, now float64) {
	w := now - e.enq
	if e.js.long {
		s.res.LongEntryWaits = append(s.res.LongEntryWaits, w)
	} else {
		s.res.ShortEntryWaits = append(s.res.ShortEntryWaits, w)
	}
}

func (s *simulation) nodeBecameBusy() { s.busyNodes++ }

func (s *simulation) nodeBecameIdle() { s.busyNodes-- }
