// Package sim implements the trace-driven discrete-event cluster simulator
// used for the paper's evaluation (§4.1): single-slot FIFO nodes, 0.5 ms
// network delay, Sparrow batch sampling, Hawk's hybrid scheduling with
// partitioning and randomized stealing, a fully centralized baseline, and
// the split-cluster baseline — plus the three Hawk ablations of Figure 7.
//
// The scheduler itself is not hard-coded here: the engine executes whatever
// policy.Policy the run configuration names, so registered policies (see
// repro/hawk) run unmodified on this engine and on the live prototype in
// internal/liverun.
//
// # Data layout
//
// The engine's hot state is data-oriented: nodes live in one dense []node
// arena indexed by node id, per-job state lives in one preallocated
// []jobState arena indexed by trace position, and queue entries and events
// refer to jobs by int32 arena index instead of by pointer. Trace
// submission is lazy — each submit event chains the next — so the event
// heap's working set is bounded by in-flight messages and running tasks,
// not by the trace length. See the README's Performance section.
//
// Every run must be a pure function of (trace, config, seed) — the golden
// report tests depend on it — so hawklint's determinism analyzer guards the
// whole package:
//
//hawk:deterministic
package sim

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/policy"
	"repro/internal/randdist"
	"repro/internal/workload"
)

// jobState tracks one job while it runs. States live in the simulation's
// flat jobs arena (index = trace position) and are referenced everywhere by
// that int32 index; the struct itself caches exactly what the hot paths
// read — the duration slice for task hand-out and the classification bits —
// so serving a probe reply touches one arena slot and one duration.
type jobState struct {
	durations []float64 // the job's per-task durations (shares the trace's backing array)
	// lost holds task indices handed out to a node that failed before the
	// task completed; nextTask re-serves them before fresh tasks. Nil on a
	// churn-free run.
	lost     []int32
	estimate float64
	next     int32 // next task index to hand out (probe-scheduled jobs)
	finished int32
	long     bool
	trueLong bool
	// outage marks jobs submitted while the centralized scheduler was
	// scripted down (reported as JobReport.DuringOutage).
	outage bool
	// owner is the distributed scheduler the job hash-partitioned to
	// (multi-scheduler model only; 0 otherwise). Re-hashed lazily when the
	// owner fails.
	owner uint8
}

// nextTask hands out the next unassigned task index — a task lost to a
// node failure first, else the next fresh one — or reports that all tasks
// are placed (the probe is cancelled).
//
//hawk:hotpath
func (js *jobState) nextTask() (int32, bool) {
	if n := len(js.lost); n > 0 {
		t := js.lost[n-1]
		js.lost = js.lost[:n-1]
		return t, true
	}
	if int(js.next) >= len(js.durations) {
		return -1, false
	}
	t := js.next
	js.next++
	return t, true
}

type simulation struct {
	cfg        policy.Config
	pol        policy.Policy
	eng        *eventq.Engine[simEvent]
	trace      *workload.Trace
	part       core.Partition
	classifier core.Classifier
	estimator  *core.Estimator
	steal      core.StealPolicy
	src        *randdist.Source
	central    *core.CentralQueue
	res        *policy.Report

	// nodes is the node arena: one dense value slice, index = node id.
	nodes []node
	// jobs is the job-state arena, index = trace position; slots are
	// populated when their job submits.
	jobs []jobState
	// submitOrder maps submission-order position to trace position when
	// the trace is not already sorted by submit time (nil when it is, the
	// common case — generators sort). Ties keep trace order, matching the
	// event heap's FIFO tie-break on the eager-preload engine.
	submitOrder []int32

	slots       int   // total execution slots (len(nodes))
	shortOnly   int32 // cached s.part.ShortOnlyNodes() for the busy-count split
	busyNodes   int
	busyGeneral int // busy slots in the general partition
	jobsDone    int
	lastDone    float64 // completion time of the last finished job
	nextSample  float64 // absolute time of the next utilization tick

	// Dynamic cluster state. view is always set (static when no scenario
	// is configured — every sampler then delegates to the dense partition
	// fast path); everything else is nil/zero on a churn-free run, and the
	// hot paths guard on dyn == nil.
	view     *core.ClusterView
	speeds   []float64 // view.Speeds(), cached; nil when homogeneous
	dyn      *dynState
	churnSrc *randdist.Source // seeded stream for random churn picks

	// Multi-scheduler state; nil unless Config.Schedulers turns the model
	// on, and every hot path guards on that (see sched.go).
	ms *multiSched

	centralDown      bool
	centralDownSince float64
	// backlog parks central placements (whole jobs at submission, single
	// tasks on re-route) while the centralized scheduler is down or has no
	// live servers; drained on central-up and node recovery.
	backlog []centralRef
	// parkedJobs holds probe-routed jobs whose live pool was narrower than
	// their task count at submission; re-routed on node recovery.
	parkedJobs []int32
	// lostProbes holds jobs whose probe re-send found no live pool node;
	// retried on node recovery.
	lostProbes []int32
	churnIDs   []int // scratch for random churn picks
	deadIDs    []int // scratch for enumerating dead nodes

	// Per-simulation scratch buffers. The simulation is single-threaded
	// and each use fully overwrites its buffer before reading, so reusing
	// them keeps the probe and steal paths allocation-free:
	//
	//   - stealFlags: appendQueueLongFlags snapshot of one victim's queue
	//   - nodeIDs: probe targets (submit) and steal candidates; the two
	//     uses never overlap — probe placement only schedules events, and
	//     a steal attempt never submits
	//   - stolen: entries moved by one steal, copied into the thief's
	//     queue before the next attempt
	//   - shortIdx, shortPos: the random-position ablation's picked queue
	//     indices and its short-entry position list
	stealFlags []bool
	nodeIDs    []int
	stolen     []entry
	shortIdx   []int
	shortPos   []int
}

// Run simulates the trace under the configuration, executing the policy
// named by cfg.Policy, and returns the collected metrics. Runs are
// deterministic for a given (trace, config) pair.
func Run(trace *workload.Trace, cfg policy.Config) (*policy.Report, error) {
	s, err := newSimulation(trace, cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// newSimulation validates the inputs and builds the arenas and event
// engine, leaving the first submit (and the first utilization tick)
// scheduled. Split from run so tests can inspect engine state.
func newSimulation(trace *workload.Trace, cfg policy.Config) (*simulation, error) {
	cfg, err := cfg.Normalize(trace)
	if err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	pol, err := policy.New(cfg.Policy, cfg)
	if err != nil {
		return nil, err
	}

	s := &simulation{
		cfg:        cfg,
		pol:        pol,
		trace:      trace,
		classifier: core.Classifier{Cutoff: cfg.Cutoff},
		estimator:  core.NewEstimator(cfg.MisestimateLo, cfg.MisestimateHi, cfg.Seed+1),
		src:        randdist.New(cfg.Seed),
		res:        &policy.Report{Engine: "sim", Policy: pol.String(), Config: cfg},
	}
	s.slots = cfg.TotalSlots()

	// The heap holds flat simEvent records. Submission is lazily chained
	// (one pending submit at a time), so peak pending events track
	// in-flight state: one completion or probe round-trip per busy slot,
	// messages in their 0.5 ms network flight, the submit chain, and the
	// sampler tick — O(slots + arrival burst), however long the trace.
	// Pre-size with that bound, but never beyond what the whole trace
	// could possibly keep pending at once (tiny traces on huge clusters).
	// The hint is about avoiding growth copies in the hot loop; either
	// way the heap grows on demand if a burst exceeds it.
	traceBound := 2 + len(trace.Jobs)
	for _, j := range trace.Jobs {
		traceBound += 3 * j.NumTasks()
	}
	s.eng = eventq.New(s.dispatch, min(s.slots+64, traceBound))

	// One flat arena per hot structure: node and job state become
	// sequential array indexing instead of 15k–170k individually
	// heap-allocated objects.
	s.nodes = make([]node, s.slots)
	for i := range s.nodes {
		s.nodes[i].id = int32(i)
	}
	s.jobs = make([]jobState, len(trace.Jobs))
	// Every job produces exactly one JobReport; reserving the slice up
	// front keeps jobCompleted off the allocator's growth path.
	s.res.Jobs = make([]policy.JobReport, 0, len(trace.Jobs))

	s.part = core.NewPartition(s.slots, pol.ShortPartitionFraction())
	s.shortOnly = int32(s.part.ShortOnlyNodes())
	s.steal = core.StealPolicy{Cap: cfg.StealCap, Enabled: pol.Steal()}
	if s.steal.Enabled && s.steal.Cap > 0 {
		s.nodeIDs = make([]int, 0, s.steal.Cap+1)
	}

	// The cluster view: static (and therefore drawing bit-identically to
	// the plain partition samplers) unless the scenario scripts membership
	// transitions or speed heterogeneity.
	s.view = core.NewClusterView(s.part)
	if cfg.Heterogeneity != nil {
		s.view.SetSpeeds(cfg.Heterogeneity.Factors(s.slots, cfg.Seed+2))
		s.speeds = s.view.Speeds()
	}
	if churnHasMembership(cfg.Churn) {
		s.view.EnableMembership()
		s.dyn = &dynState{epoch: make([]uint8, s.slots), run: make([]runRef, s.slots)}
		s.churnSrc = randdist.New(cfg.Seed + 3)
	}

	if pool := pol.CentralPool(); pool != policy.PoolNone {
		s.central = core.NewCentralQueue(pool.IDs(s.part))
	}
	if cfg.Schedulers != nil {
		s.initMultiSched()
	}

	if err := s.checkFeasibility(); err != nil {
		return nil, err
	}

	// Lazy chained submission: schedule only the first job's submit; each
	// submit event schedules the next (see submitNext). Submission order
	// is by submit time with trace order breaking ties, and the submit
	// chain runs on the engine's reserved low sequence numbers, so every
	// event receives the exact (timestamp, sequence) rank it would have
	// had if all submits were preloaded before the run — including a
	// submit winning an equal-timestamp tie against any run-time event.
	if !sort.SliceIsSorted(trace.Jobs, func(i, j int) bool {
		return trace.Jobs[i].SubmitTime < trace.Jobs[j].SubmitTime
	}) {
		s.submitOrder = make([]int32, len(trace.Jobs))
		for i := range s.submitOrder {
			s.submitOrder[i] = int32(i)
		}
		sort.SliceStable(s.submitOrder, func(i, j int) bool {
			return trace.Jobs[s.submitOrder[i]].SubmitTime < trace.Jobs[s.submitOrder[j]].SubmitTime
		})
	}
	s.eng.ReserveSeqs(uint64(len(trace.Jobs)))
	if len(trace.Jobs) > 0 {
		s.eng.AtReserved(trace.Jobs[s.jobAt(0)].SubmitTime, 1, simEvent{kind: evSubmit, ref: 0})
	}
	s.nextSample = cfg.UtilizationInterval
	s.eng.At(s.nextSample, simEvent{kind: evSample})

	// Scripted cluster transitions become ordinary typed events, scheduled
	// up front (churn scripts are short). Equal-timestamp ties resolve in
	// spec order, after any same-instant submit (reserved sequence) — the
	// timeline is a pure function of (config, seed).
	if cfg.Churn != nil {
		for _, ev := range cfg.Churn.Events {
			e := simEvent{ref: int32(ev.Node)}
			if ev.Count > 0 {
				e.ref, e.aux = -1, int32(ev.Count)
			}
			switch ev.Kind {
			case policy.ChurnFail:
				e.kind = evNodeFail
			case policy.ChurnRecover:
				e.kind = evNodeRecover
			case policy.ChurnCentralDown:
				e.kind = evCentralDown
			case policy.ChurnCentralUp:
				e.kind = evCentralUp
			case policy.ChurnSchedFail:
				e.kind = evSchedFail
			case policy.ChurnSchedRecover:
				e.kind = evSchedRecover
			}
			s.eng.At(ev.At, e)
		}
	}
	return s, nil
}

// churnHasMembership reports whether the scenario scripts node-level
// membership transitions (as opposed to only central-scheduler outages,
// which leave sampling on the static fast path).
func churnHasMembership(spec *policy.ChurnSpec) bool {
	if spec == nil {
		return false
	}
	for _, ev := range spec.Events {
		if ev.Kind == policy.ChurnFail || ev.Kind == policy.ChurnRecover {
			return true
		}
	}
	return false
}

// run drains the event queue and assembles the report.
func (s *simulation) run() (*policy.Report, error) {
	s.eng.Run()
	if s.jobsDone != len(s.trace.Jobs) {
		detail := ""
		if n := len(s.backlog); n > 0 {
			detail += fmt.Sprintf("; %d central placements backlogged (scenario never restored the central scheduler?)", n)
		}
		if n := len(s.parkedJobs); n > 0 {
			detail += fmt.Sprintf("; %d jobs parked for pool capacity (scenario never recovered enough nodes?)", n)
		}
		if n := len(s.lostProbes); n > 0 {
			detail += fmt.Sprintf("; %d probes waiting for a live pool node", n)
		}
		if s.ms != nil {
			if n := len(s.ms.pendingJobs) + len(s.ms.pendingProbes) + len(s.ms.pendingReplies) + len(s.ms.pendingCentral); n > 0 {
				detail += fmt.Sprintf("; %d placements waiting for a live scheduler (scenario never recovered one?)", n)
			}
		}
		return nil, fmt.Errorf("sim: deadlock — %d of %d jobs completed%s", s.jobsDone, len(s.trace.Jobs), detail)
	}
	if s.centralDown {
		// Outage never closed by the script: account it up to the end.
		s.centralOutageEnd(s.eng.Now())
	}
	if s.cfg.Churn != nil || s.ms != nil {
		// Scripted events and armed snapshot-refresh chains can outlive the
		// workload (a recovery or refresh scheduled past the last
		// completion); the makespan is still the last job's completion, not
		// the last drained event.
		s.res.Makespan = s.lastDone
	} else {
		s.res.Makespan = s.eng.Now()
	}
	s.res.Events = s.eng.Executed()
	return s.res, nil
}

// jobAt maps a submission-order position to its trace position.
//
//hawk:hotpath
func (s *simulation) jobAt(pos int32) int32 {
	if s.submitOrder != nil {
		return s.submitOrder[pos]
	}
	return pos
}

// checkFeasibility runs the shared pre-flight check. With exact estimates
// each job's true class determines its route; under mis-estimation a job's
// class can flip at runtime, so both routes must be feasible. The margin
// is the scenario's worst-case concurrent failures, so a churn script that
// could starve a probe pool is rejected before the run.
func (s *simulation) checkFeasibility() error {
	exact := s.cfg.ExactEstimates()
	return policy.CheckFeasibility(s.trace, s.pol, s.view, s.cfg.Churn.MaxConcurrentFailures(),
		func(j *workload.Job) []bool {
			if exact {
				return []bool{s.classifier.IsLong(j.AvgTaskDuration())}
			}
			return []bool{false, true}
		})
}

// submit routes the newly arrived job at trace position idx per the
// policy's decision, populating its arena slot.
//
//hawk:hotpath
func (s *simulation) submit(idx int32) {
	job := s.trace.Jobs[idx]
	js := &s.jobs[idx]
	js.durations = job.Durations
	js.estimate = s.estimator.Estimate(job)
	js.long = s.classifier.IsLong(js.estimate)
	js.trueLong = s.classifier.IsLong(job.AvgTaskDuration())
	js.outage = s.centralDown
	s.routeJob(idx)
}

// routeJob executes the policy's placement decision for a populated job —
// at submission, and again when a parked job is released by a recovery.
//
//hawk:hotpath
func (s *simulation) routeJob(idx int32) {
	job := s.trace.Jobs[idx]
	js := &s.jobs[idx]
	dec := s.pol.Route(policy.JobInfo{
		ID: job.ID, Tasks: job.NumTasks(), Estimate: js.estimate, Long: js.long,
	})
	if s.ms != nil && !s.msAssignOwner(idx) {
		return // no live scheduler; parked until one recovers
	}
	switch dec.Action {
	case policy.ActionCentral:
		s.centralJob(idx)
	default:
		// Probe sampling runs against the owning scheduler's (possibly
		// stale) snapshot; on a single-scheduler run that is the truth
		// view itself.
		view := s.view
		if s.ms != nil {
			view = s.ms.scheds[js.owner].view
		}
		poolSize := dec.Pool.Size(view)
		if s.ms != nil && s.dyn != nil && poolSize < len(js.durations) {
			// The stale snapshot looks too narrow for batch sampling; a
			// real scheduler would consult fresh state before giving up,
			// so refresh and re-check against the truth.
			s.refreshSched(int32(js.owner), s.eng.Now())
			poolSize = dec.Pool.Size(view)
		}
		if s.dyn != nil && poolSize < len(js.durations) {
			// Batch sampling needs one live candidate per task; churn has
			// shrunk the pool below that, so park the job until nodes
			// recover. The feasibility margin makes this unreachable for
			// validated scenarios — it is the belt to that suspender.
			s.parkedJobs = append(s.parkedJobs, idx)
			return
		}
		k := core.NumProbes(len(js.durations), s.cfg.ProbeRatio, poolSize)
		s.nodeIDs = dec.Pool.SampleInto(s.nodeIDs[:0], view, s.src, k)
		s.probeJob(idx, s.nodeIDs)
	}
}

// probeJob sends batch-sampling probes to the chosen nodes; each arrives
// after one network delay.
//
//hawk:hotpath
func (s *simulation) probeJob(idx int32, nodeIDs []int) {
	s.res.ProbesSent += int64(len(nodeIDs))
	for _, id := range nodeIDs {
		s.eng.After(s.cfg.NetworkDelay, simEvent{kind: evProbeArrive, ref: int32(id), jidx: idx})
	}
}

// centralJob places every task of the job with the §3.7 algorithm: each
// task goes to the server with the smallest estimated waiting time, which
// is then bumped by the job's estimated task runtime. While the central
// scheduler is scripted down (or churn has removed its every server) the
// whole job parks in the backlog instead.
//
//hawk:hotpath
func (s *simulation) centralJob(idx int32) {
	if s.centralUnavailable() {
		s.parkCentral(idx, -1)
		return
	}
	js := &s.jobs[idx]
	if s.ms != nil {
		// Multi-scheduler model: every task goes through the owning
		// scheduler's optimistic claim/commit path.
		for i := range js.durations {
			s.placeCentral(idx, int32(i), 0)
		}
		return
	}
	now := s.eng.Now()
	for i := range js.durations {
		nodeID, _ := s.central.Assign(now, js.estimate)
		s.res.CentralAssigns++
		s.eng.After(s.cfg.NetworkDelay, simEvent{
			kind: evTaskArrive, ref: int32(nodeID), jidx: idx, aux: int32(i),
		})
	}
}

// attemptSteal performs one randomized steal attempt for an idle thief:
// contact up to Cap random general-partition nodes and move the first
// eligible group found (§3.6, Figure 3). Per §4.1 the decision itself is
// free; stolen work restarts instantly at the thief.
//
//hawk:hotpath
func (s *simulation) attemptSteal(thief *node) {
	if !s.steal.Enabled {
		return
	}
	s.nodeIDs = s.steal.CandidatesInto(s.nodeIDs[:0], s.view, s.src, int(thief.id))
	candidates := s.nodeIDs
	if len(candidates) == 0 {
		return
	}
	s.res.StealAttempts++
	for _, id := range candidates {
		s.res.StealContacts++
		victim := &s.nodes[id]
		if victim.queueLen() == 0 {
			continue
		}
		if !victim.busy {
			// The victim is between entries at this very instant; its
			// queue will advance on its own. Skip rather than race it.
			continue
		}
		s.stealFlags = victim.appendQueueLongFlags(s.stealFlags[:0])
		flags := s.stealFlags
		start, end, ok := core.EligibleGroup(victim.runningLong, flags)
		if !ok {
			continue
		}
		if s.cfg.StealRandomPositions {
			s.shortIdx, s.shortPos = core.RandomShortIndicesInto(
				s.shortIdx[:0], s.shortPos[:0], flags, end-start, s.src)
			s.stolen = victim.appendStealIndices(s.stolen[:0], s.shortIdx)
		} else {
			s.stolen = victim.appendStealRange(s.stolen[:0], start, end)
		}
		if len(s.stolen) == 0 {
			continue
		}
		s.res.StealSuccesses++
		s.res.EntriesStolen += int64(len(s.stolen))
		thief.enqueueFront(s, s.stolen)
		return
	}
}

//hawk:hotpath
func (s *simulation) jobCompleted(idx int32, now float64) {
	s.jobsDone++
	if now > s.lastDone {
		s.lastDone = now
	}
	job := s.trace.Jobs[idx]
	js := &s.jobs[idx]
	s.res.Jobs = append(s.res.Jobs, policy.JobReport{
		ID:           job.ID,
		SubmitTime:   job.SubmitTime,
		Runtime:      now - job.SubmitTime,
		Tasks:        len(js.durations),
		Long:         js.long,
		TrueLong:     js.trueLong,
		Estimate:     js.estimate,
		DuringOutage: js.outage,
	})
}

// observeWait records how long a queue entry waited at nodes before its
// slot opened, split by job class — diagnostic for the queueing analyses.
//
//hawk:hotpath
func (s *simulation) observeWait(e entry, now float64) {
	w := now - e.enq
	if e.long() {
		s.res.LongEntryWaits = append(s.res.LongEntryWaits, w)
	} else {
		s.res.ShortEntryWaits = append(s.res.ShortEntryWaits, w)
	}
}

//hawk:hotpath
func (s *simulation) nodeBecameBusy(id int32) {
	s.busyNodes++
	if id >= s.shortOnly {
		s.busyGeneral++
	}
}

//hawk:hotpath
func (s *simulation) nodeBecameIdle(id int32) {
	s.busyNodes--
	if id >= s.shortOnly {
		s.busyGeneral--
	}
}
