package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/randdist"
	"repro/internal/workload"
)

// jobState tracks one job while it runs.
type jobState struct {
	job      *workload.Job
	sim      *simulation
	estimate float64
	long     bool
	trueLong bool
	next     int // next task index to hand out (probe-scheduled jobs)
	finished int
}

// nextTaskDuration hands out the next unassigned task, or reports that all
// tasks have been given to other servers (the probe is cancelled).
func (js *jobState) nextTaskDuration() (float64, bool) {
	if js.next >= js.job.NumTasks() {
		return 0, false
	}
	d := js.job.Durations[js.next]
	js.next++
	return d, true
}

// taskFinished accounts one completed task and records the job runtime when
// the last task finishes (a job completes only after all its tasks, §3.1).
func (js *jobState) taskFinished(now float64) {
	js.finished++
	if js.finished == js.job.NumTasks() {
		js.sim.jobCompleted(js, now)
	}
}

type simulation struct {
	cfg        Config
	eng        *eventq.Engine
	trace      *workload.Trace
	part       core.Partition
	classifier core.Classifier
	estimator  *core.Estimator
	steal      core.StealPolicy
	src        *randdist.Source
	nodes      []*node
	central    *core.CentralQueue
	res        *Result

	busyNodes int
	jobsDone  int
}

// Run simulates the trace under the configuration and returns the collected
// metrics. Runs are deterministic for a given (trace, config) pair.
func Run(trace *workload.Trace, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(trace)
	if err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}

	s := &simulation{
		cfg:        cfg,
		eng:        eventq.New(),
		trace:      trace,
		classifier: core.Classifier{Cutoff: cfg.Cutoff},
		estimator:  core.NewEstimator(cfg.MisestimateLo, cfg.MisestimateHi, cfg.Seed+1),
		src:        randdist.New(cfg.Seed),
		res:        &Result{Mode: cfg.Mode},
	}

	switch cfg.Mode {
	case ModeSparrow, ModeCentralized:
		// No reservation: the "partition" is the whole cluster.
		s.part = core.NewPartition(cfg.NumNodes, 0)
	case ModeHawk, ModeSplit:
		frac := cfg.ShortPartitionFraction
		if cfg.DisablePartition {
			frac = 0
		}
		s.part = core.NewPartition(cfg.NumNodes, frac)
	default:
		return nil, fmt.Errorf("sim: unknown mode %v", cfg.Mode)
	}

	s.steal = core.StealPolicy{Cap: cfg.StealCap, Enabled: cfg.Mode == ModeHawk && !cfg.DisableStealing}

	if s.usesCentral() {
		ids := make([]int, 0, s.part.GeneralNodes())
		if cfg.Mode == ModeCentralized {
			for i := 0; i < cfg.NumNodes; i++ {
				ids = append(ids, i)
			}
		} else {
			for i := 0; i < s.part.GeneralNodes(); i++ {
				ids = append(ids, s.part.GeneralID(i))
			}
		}
		s.central = core.NewCentralQueue(ids)
	}

	s.nodes = make([]*node, cfg.NumNodes)
	for i := range s.nodes {
		s.nodes[i] = &node{id: i, sim: s}
	}

	if err := s.checkProbeFeasibility(); err != nil {
		return nil, err
	}

	for _, j := range trace.Jobs {
		job := j
		s.eng.At(job.SubmitTime, func() { s.submit(job) })
	}
	s.eng.EverySample(cfg.UtilizationInterval, cfg.UtilizationInterval,
		func() bool { return s.jobsDone < len(trace.Jobs) },
		func(now float64) {
			s.res.Utilization.AddAt(now, float64(s.busyNodes)/float64(cfg.NumNodes))
		})

	s.eng.Run()

	if s.jobsDone != len(trace.Jobs) {
		return nil, fmt.Errorf("sim: deadlock — %d of %d jobs completed", s.jobsDone, len(trace.Jobs))
	}
	s.res.Makespan = s.eng.Now()
	s.res.Events = s.eng.Executed()
	return s.res, nil
}

func (s *simulation) usesCentral() bool {
	switch s.cfg.Mode {
	case ModeCentralized, ModeSplit:
		return true
	case ModeHawk:
		return !s.cfg.DisableCentral
	default:
		return false
	}
}

// checkProbeFeasibility rejects traces whose jobs have more tasks than the
// nodes eligible to receive their probes: with batch sampling one probe
// yields at most one task, so such jobs could never finish. Callers should
// scale the trace down first (workload.Trace.CapTasks), as the paper does
// for its 100-node prototype runs.
func (s *simulation) checkProbeFeasibility() error {
	maxTasks := 0
	maxLongTasks := 0
	for _, j := range s.trace.Jobs {
		n := j.NumTasks()
		if n > maxTasks {
			maxTasks = n
		}
		if j.AvgTaskDuration() >= s.cfg.Cutoff && n > maxLongTasks {
			maxLongTasks = n
		}
	}
	switch s.cfg.Mode {
	case ModeSparrow:
		if maxTasks > s.cfg.NumNodes {
			return fmt.Errorf("sim: job with %d tasks exceeds %d nodes (probe-scheduled); cap tasks first", maxTasks, s.cfg.NumNodes)
		}
	case ModeHawk:
		if maxTasks > s.cfg.NumNodes {
			return fmt.Errorf("sim: job with %d tasks exceeds %d nodes; cap tasks first", maxTasks, s.cfg.NumNodes)
		}
		if s.cfg.DisableCentral && maxLongTasks > s.part.GeneralNodes() {
			return fmt.Errorf("sim: long job with %d tasks exceeds %d general nodes (w/o central ablation)", maxLongTasks, s.part.GeneralNodes())
		}
	case ModeSplit:
		shortNodes := s.part.ShortOnlyNodes()
		for _, j := range s.trace.Jobs {
			if j.AvgTaskDuration() < s.cfg.Cutoff && j.NumTasks() > shortNodes {
				return fmt.Errorf("sim: short job with %d tasks exceeds %d short-partition nodes (split mode)", j.NumTasks(), shortNodes)
			}
		}
	}
	return nil
}

// submit routes a newly arrived job to its scheduler.
func (s *simulation) submit(job *workload.Job) {
	js := &jobState{
		job:      job,
		sim:      s,
		estimate: s.estimator.Estimate(job),
	}
	js.long = s.classifier.IsLong(js.estimate)
	js.trueLong = s.classifier.IsLong(job.AvgTaskDuration())

	switch s.cfg.Mode {
	case ModeSparrow:
		s.probeJob(js, s.part.SampleAll(s.src, s.probeCount(js, s.cfg.NumNodes)))
	case ModeHawk:
		if js.long {
			if s.cfg.DisableCentral {
				s.probeJob(js, s.part.SampleGeneral(s.src, s.probeCount(js, s.part.GeneralNodes())))
			} else {
				s.centralJob(js)
			}
		} else {
			// Short jobs probe the whole cluster: the short partition
			// plus any idle general node (§3.4, §3.5).
			s.probeJob(js, s.part.SampleAll(s.src, s.probeCount(js, s.cfg.NumNodes)))
		}
	case ModeCentralized:
		s.centralJob(js)
	case ModeSplit:
		if js.long {
			s.centralJob(js)
		} else {
			s.probeJob(js, sampleShortPartition(s.part, s.src, s.probeCount(js, s.part.ShortOnlyNodes())))
		}
	}
}

func (s *simulation) probeCount(js *jobState, candidates int) int {
	return core.NumProbes(js.job.NumTasks(), s.cfg.ProbeRatio, candidates)
}

// probeJob sends batch-sampling probes to the chosen nodes; each arrives
// after one network delay.
func (s *simulation) probeJob(js *jobState, nodeIDs []int) {
	s.res.ProbesSent += len(nodeIDs)
	for _, id := range nodeIDs {
		n := s.nodes[id]
		s.eng.After(s.cfg.NetworkDelay, func() {
			n.enqueue(entry{kind: probeEntry, js: js, enq: s.eng.Now()})
		})
	}
}

// centralJob places every task of the job with the §3.7 algorithm: each
// task goes to the server with the smallest estimated waiting time, which
// is then bumped by the job's estimated task runtime.
func (s *simulation) centralJob(js *jobState) {
	now := s.eng.Now()
	for i := 0; i < js.job.NumTasks(); i++ {
		nodeID, _ := s.central.Assign(now, js.estimate)
		s.res.CentralAssigns++
		dur := js.job.Durations[i]
		n := s.nodes[nodeID]
		s.eng.After(s.cfg.NetworkDelay, func() {
			n.enqueue(entry{kind: taskEntry, js: js, dur: dur, enq: s.eng.Now()})
		})
	}
}

// attemptSteal performs one randomized steal attempt for an idle thief:
// contact up to Cap random general-partition nodes and move the first
// eligible group found (§3.6, Figure 3). Per §4.1 the decision itself is
// free; stolen work restarts instantly at the thief.
func (s *simulation) attemptSteal(thief *node) {
	if !s.steal.Enabled {
		return
	}
	candidates := s.steal.Candidates(s.part, s.src, thief.id)
	if len(candidates) == 0 {
		return
	}
	s.res.StealAttempts++
	for _, id := range candidates {
		s.res.StealContacts++
		victim := s.nodes[id]
		if len(victim.queue) == 0 {
			continue
		}
		if !victim.busy {
			// The victim is between entries at this very instant; its
			// queue will advance on its own. Skip rather than race it.
			continue
		}
		flags := victim.queueLongFlags()
		start, end, ok := core.EligibleGroup(victim.runningLong, flags)
		if !ok {
			continue
		}
		var stolen []entry
		if s.cfg.StealRandomPositions {
			stolen = victim.stealIndices(core.RandomShortIndices(flags, end-start, s.src))
		} else {
			stolen = victim.stealRange(start, end)
		}
		if len(stolen) == 0 {
			continue
		}
		s.res.StealSuccesses++
		s.res.EntriesStolen += len(stolen)
		thief.enqueueFront(stolen)
		return
	}
}

func (s *simulation) jobCompleted(js *jobState, now float64) {
	s.jobsDone++
	s.res.Jobs = append(s.res.Jobs, JobResult{
		ID:         js.job.ID,
		SubmitTime: js.job.SubmitTime,
		Runtime:    now - js.job.SubmitTime,
		Tasks:      js.job.NumTasks(),
		Long:       js.long,
		TrueLong:   js.trueLong,
		Estimate:   js.estimate,
	})
}

// observeWait records how long a queue entry waited at nodes before its
// slot opened, split by job class — diagnostic for the queueing analyses.
func (s *simulation) observeWait(e entry, now float64) {
	w := now - e.enq
	if e.js.long {
		s.res.LongEntryWaits = append(s.res.LongEntryWaits, w)
	} else {
		s.res.ShortEntryWaits = append(s.res.ShortEntryWaits, w)
	}
}

func (s *simulation) nodeBecameBusy() { s.busyNodes++ }

func (s *simulation) nodeBecameIdle() { s.busyNodes-- }

// sampleShortPartition returns k distinct node ids from the short
// partition, used by split-cluster mode where short jobs may only run
// there.
func sampleShortPartition(p core.Partition, src *randdist.Source, k int) []int {
	n := p.ShortOnlyNodes()
	if k > n {
		k = n
	}
	return src.SampleWithoutReplacement(n, k)
}
