// Package sim implements the trace-driven discrete-event cluster simulator
// used for the paper's evaluation (§4.1): single-slot FIFO nodes, 0.5 ms
// network delay, Sparrow batch sampling, Hawk's hybrid scheduling with
// partitioning and randomized stealing, a fully centralized baseline, and
// the split-cluster baseline — plus the three Hawk ablations of Figure 7.
//
// The scheduler itself is not hard-coded here: the engine executes whatever
// policy.Policy the run configuration names, so registered policies (see
// repro/hawk) run unmodified on this engine and on the live prototype in
// internal/liverun.
//
// # Data layout
//
// The engine's hot state is data-oriented: nodes live in one dense []node
// arena indexed by node id, per-job state lives in one dense []jobState
// arena, and queue entries and events refer to jobs by int32 arena index
// instead of by pointer. Trace submission is lazy — each submit event
// chains the next — so the event heap's working set is bounded by
// in-flight messages and running tasks, not by the trace length. See the
// README's Performance section.
//
// # Streaming
//
// Run consumes a materialized workload.Trace; RunSource consumes any
// workload.Source, pulling the next job from the iterator only when its
// submit event fires. On a streamed run (any non-adapter source) the jobs
// arena doubles as a free list: a slot is recycled — and the decoded Job
// handed back to a pooling source for reuse — as soon as its last probe is
// accounted for and its report has been emitted, so peak live heap is
// O(in-flight jobs + cluster), independent of trace length
// (TestStreamedRunHeapStaysBounded pins this). Report memory streams too:
// Config.JobSink emits each report at completion and
// Config.DiscardJobReports replaces the Jobs slice with bounded reservoir
// aggregates.
//
// Every run must be a pure function of (workload, config, seed) — the
// golden report tests depend on it — so hawklint's determinism analyzer
// guards the whole package:
//
//hawk:deterministic
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/policy"
	"repro/internal/randdist"
	"repro/internal/workload"
)

// streamArenaHint caps the initial jobs-arena capacity on a streamed run:
// the arena grows to the peak in-flight job count on demand, so the hint
// only avoids early growth copies without committing trace-sized memory.
const streamArenaHint = 1024

// engineBackend selects the event-queue implementation behind every run.
// The ladder timeline dispatches the byte-identical event order at
// amortized O(1) instead of the heap's O(log n) — the golden suite pins
// the equivalence, and TestBackendsProduceIdenticalReports re-checks it
// directly by flipping this back to the heap. A var rather than a const
// only so tests can do that flip.
var engineBackend = eventq.BackendLadder

// jobState tracks one job while it runs. States live in the simulation's
// flat jobs arena and are referenced everywhere by int32 index (on a
// materialized run, the trace position; on a streamed run, a recycled
// free-list slot); the struct itself caches exactly what the hot paths
// read — the duration slice for task hand-out and the classification bits —
// so serving a probe reply touches one arena slot and one duration.
type jobState struct {
	durations []float64 // the job's per-task durations (shares the decoded Job's backing array)
	// lost holds task indices handed out to a node that failed before the
	// task completed; nextTask re-serves them before fresh tasks. Nil on a
	// churn-free run.
	lost     []int32
	estimate float64
	// submit and id cache the Job fields the report needs, so completion
	// reporting (and the multi-scheduler owner hash) never touches the
	// decoded Job — which a streamed run recycles when the slot frees.
	submit float64
	id     int
	// ref is the decoded job backing durations; handed back to a recycling
	// source when the slot frees (streaming runs only).
	ref *workload.Job
	// probes counts outstanding probe chains for the job: incremented per
	// probe sent (plus one per failure-recovered task awaiting a re-sent
	// probe), decremented when a probe is consumed at probeReply. A slot
	// can be recycled only once no probe can ever reference it again.
	probes   int32
	next     int32 // next task index to hand out (probe-scheduled jobs)
	finished int32
	// specThresh is the job's speculative re-execution delay threshold (the
	// configured percentile of its task durations), computed once at submit;
	// 0 unless the fault plane's speculation is on.
	specThresh float64
	long       bool
	trueLong   bool
	// outage marks jobs submitted while the centralized scheduler was
	// scripted down (reported as JobReport.DuringOutage).
	outage bool
	// owner is the distributed scheduler the job hash-partitioned to
	// (multi-scheduler model only; 0 otherwise). Re-hashed lazily when the
	// owner fails.
	owner uint8
}

// nextTask hands out the next unassigned task index — a task lost to a
// node failure first, else the next fresh one — or reports that all tasks
// are placed (the probe is cancelled).
//
//hawk:hotpath
func (js *jobState) nextTask() (int32, bool) {
	if n := len(js.lost); n > 0 {
		t := js.lost[n-1]
		js.lost = js.lost[:n-1]
		return t, true
	}
	if int(js.next) >= len(js.durations) {
		return -1, false
	}
	t := js.next
	js.next++
	return t, true
}

type simulation struct {
	cfg        policy.Config
	pol        policy.Policy
	eng        *eventq.Engine[simEvent]
	part       core.Partition
	classifier core.Classifier
	estimator  *core.Estimator
	steal      core.StealPolicy
	src        *randdist.Source
	central    *core.CentralQueue
	res        *policy.Report

	// source streams the workload in submission order; meta is its
	// up-front metadata (exact job count, task bounds, defaults).
	source workload.Source
	meta   workload.Meta
	// trace is the in-memory trace when the source is a Trace adapter, nil
	// on a genuinely streamed run. Adapter runs keep the exact per-job
	// feasibility pre-flight and never recycle job memory (the trace owns
	// it); streamed runs are the converse.
	trace *workload.Trace
	// recycler hands finished jobs back to a pooling source (streamed runs
	// only; nil otherwise).
	recycler workload.Recycler
	// streaming is true when the run must bound its memory by in-flight
	// work: job-state slots recycle through freeSlots and decoded Jobs
	// return to the source.
	streaming bool
	// pending is the next decoded job, waiting for its submit event to
	// fire — the stream stays exactly one job ahead of simulated time.
	pending *workload.Job
	// freeSlots lists recyclable jobs-arena indices (streamed runs).
	freeSlots []int32
	// failErr aborts the run: a mid-stream source failure or an infeasible
	// streamed job stops the submit chain and surfaces from run.
	failErr error
	// sinkErr is the first error returned by cfg.JobSink, reported after
	// the run drains.
	sinkErr error
	// perJobFeas marks that the metadata feasibility check was
	// inconclusive (conservative MaxTasks bound failed), so each streamed
	// job is re-checked against its actual route at submission.
	perJobFeas bool

	// nodes is the node arena: one dense value slice, index = node id.
	nodes []node
	// jobs is the job-state arena, indexed by the int32 jidx carried in
	// events and queue entries. Slots are appended at submission; on a
	// streamed run a completed slot returns to freeSlots for reuse, so the
	// arena's length tracks peak in-flight jobs, not the trace.
	jobs []jobState

	totalJobs   int   // exact number of jobs the source will yield
	submitted   int   // jobs pulled from the source so far
	slots       int   // total execution slots (len(nodes))
	shortOnly   int32 // cached s.part.ShortOnlyNodes() for the busy-count split
	busyNodes   int
	busyGeneral int // busy slots in the general partition
	jobsDone    int
	lastDone    float64 // completion time of the last finished job
	nextSample  float64 // absolute time of the next utilization tick

	// Dynamic cluster state. view is always set (static when no scenario
	// is configured — every sampler then delegates to the dense partition
	// fast path); everything else is nil/zero on a churn-free run, and the
	// hot paths guard on dyn == nil.
	view     *core.ClusterView
	speeds   []float64 // view.Speeds(), cached; nil when homogeneous
	dyn      *dynState
	churnSrc *randdist.Source // seeded stream for random churn picks

	// Multi-scheduler state; nil unless Config.Schedulers turns the model
	// on, and every hot path guards on that (see sched.go).
	ms *multiSched

	// Fault-plane state; nil unless Config.Faults turns the gray-failure
	// model on, and every send site guards on that (see faults.go). A fault
	// run always carries dyn too — the defenses ride the incarnation
	// machinery — but membership stays static without churn.
	flt *faultState

	centralDown      bool
	centralDownSince float64
	// backlog parks central placements (whole jobs at submission, single
	// tasks on re-route) while the centralized scheduler is down or has no
	// live servers; drained on central-up and node recovery.
	backlog []centralRef
	// parkedJobs holds probe-routed jobs whose live pool was narrower than
	// their task count at submission; re-routed on node recovery.
	parkedJobs []int32
	// lostProbes holds jobs whose probe re-send found no live pool node;
	// retried on node recovery.
	lostProbes []int32
	churnIDs   []int // scratch for random churn picks
	deadIDs    []int // scratch for enumerating dead nodes

	// Per-simulation scratch buffers. The simulation is single-threaded
	// and each use fully overwrites its buffer before reading, so reusing
	// them keeps the probe and steal paths allocation-free:
	//
	//   - stealFlags: appendQueueLongFlags snapshot of one victim's queue
	//   - nodeIDs: probe targets (submit) and steal candidates; the two
	//     uses never overlap — probe placement only schedules events, and
	//     a steal attempt never submits
	//   - stolen: entries moved by one steal, copied into the thief's
	//     queue before the next attempt
	//   - shortIdx, shortPos: the random-position ablation's picked queue
	//     indices and its short-entry position list
	stealFlags []bool
	nodeIDs    []int
	stolen     []entry
	shortIdx   []int
	shortPos   []int
}

// Run simulates the trace under the configuration, executing the policy
// named by cfg.Policy, and returns the collected metrics. Runs are
// deterministic for a given (trace, config) pair. It is the materialized
// convenience form of RunSource: the trace is adapted to a Source and run
// on the identical engine path, producing identical reports.
func Run(trace *workload.Trace, cfg policy.Config) (*policy.Report, error) {
	s, err := newSimulation(trace, cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// RunSource simulates a streamed workload: jobs are decoded from src one
// submit event at a time, so together with job-slot recycling the peak
// live heap is O(in-flight jobs + slots) regardless of trace length. The
// source must yield jobs in non-decreasing submit-time order (its Meta
// must say Sorted) and its Meta.NumJobs must be exact. Runs are
// deterministic for a given (source stream, config) pair and — for the
// same job stream — byte-identical to Run.
func RunSource(src workload.Source, cfg policy.Config) (*policy.Report, error) {
	s, err := newSimulationSource(src, cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// newSimulation validates an in-memory trace and builds the simulation on
// the Trace-adapter source. Split from run so tests can inspect engine
// state.
func newSimulation(trace *workload.Trace, cfg policy.Config) (*simulation, error) {
	// Config errors take precedence over trace errors (and the adapter's
	// Meta scan must not run on a structurally invalid trace).
	if _, err := cfg.Normalize(trace); err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	return newSimulationSource(workload.NewTraceSource(trace), cfg)
}

// newSimulationSource validates the inputs and builds the arenas and event
// engine, leaving the first submit (and the first utilization tick)
// scheduled.
func newSimulationSource(src workload.Source, cfg policy.Config) (*simulation, error) {
	meta := src.Meta()
	cfg, err := cfg.NormalizeMeta(meta)
	if err != nil {
		return nil, err
	}
	if !meta.Sorted {
		return nil, fmt.Errorf("sim: source %q does not guarantee submit-time order; sort the trace first", meta.Name)
	}
	if meta.NumJobs < 0 {
		return nil, fmt.Errorf("sim: source %q reports negative job count %d", meta.Name, meta.NumJobs)
	}
	pol, err := policy.New(cfg.Policy, cfg)
	if err != nil {
		return nil, err
	}

	s := &simulation{
		cfg:        cfg,
		pol:        pol,
		source:     src,
		meta:       meta,
		totalJobs:  meta.NumJobs,
		classifier: core.Classifier{Cutoff: cfg.Cutoff},
		estimator:  core.NewEstimator(cfg.MisestimateLo, cfg.MisestimateHi, cfg.Seed+1),
		src:        randdist.New(cfg.Seed),
		res:        &policy.Report{Engine: "sim", Policy: pol.String(), Config: cfg},
	}
	if ts, ok := src.(interface{ Trace() *workload.Trace }); ok {
		// Trace-adapter mode: the jobs are retained by their owner, so the
		// run must not recycle them — and the exact job list is available
		// for the precise feasibility pre-flight.
		s.trace = ts.Trace()
	}
	s.streaming = s.trace == nil
	if s.streaming {
		s.recycler, _ = src.(workload.Recycler)
	}
	s.slots = cfg.TotalSlots()

	// The heap holds flat simEvent records. Submission is lazily chained
	// (one pending submit at a time), so peak pending events track
	// in-flight state: one completion or probe round-trip per busy slot,
	// messages in their 0.5 ms network flight, the submit chain, and the
	// sampler tick — O(slots + arrival burst), however long the trace.
	// Pre-size with that bound, but never beyond what the whole trace
	// could possibly keep pending at once (tiny traces on huge clusters).
	// The hint is about avoiding growth copies in the hot loop; either
	// way the heap grows on demand if a burst exceeds it.
	heapHint := s.slots + 64
	if meta.TotalTasks > 0 {
		traceBound := 2 + meta.NumJobs + 3*int(meta.TotalTasks)
		heapHint = min(heapHint, traceBound)
	}
	s.eng = eventq.New(s.dispatch, heapHint, eventq.WithBackend(engineBackend))

	// One flat arena per hot structure: node and job state become
	// sequential array indexing instead of 15k–170k individually
	// heap-allocated objects.
	s.nodes = make([]node, s.slots)
	for i := range s.nodes {
		s.nodes[i].id = int32(i)
	}
	// The job arena starts at the full job count on a materialized run
	// (slots are never recycled, so submission appends never re-allocate)
	// but stays small on a streamed one, growing only to the peak
	// in-flight job count.
	arenaCap := meta.NumJobs
	if s.streaming && arenaCap > streamArenaHint {
		arenaCap = streamArenaHint
	}
	s.jobs = make([]jobState, 0, arenaCap)
	if cfg.DiscardJobReports {
		// Jobs retention is off: aggregate into bounded reservoirs instead
		// of the per-job slice, so report memory is O(1) too.
		s.res.Streamed = policy.NewStreamedStats(policy.DefaultReservoirSize, cfg.Seed+4)
	} else {
		// Every job produces exactly one JobReport; reserving the slice up
		// front keeps jobCompleted off the allocator's growth path.
		s.res.Jobs = make([]policy.JobReport, 0, meta.NumJobs)
	}

	s.part = core.NewPartition(s.slots, pol.ShortPartitionFraction())
	s.shortOnly = int32(s.part.ShortOnlyNodes())
	s.steal = core.StealPolicy{Cap: cfg.StealCap, Enabled: pol.Steal()}
	if s.steal.Enabled && s.steal.Cap > 0 {
		s.nodeIDs = make([]int, 0, s.steal.Cap+1)
	}

	// The cluster view: static (and therefore drawing bit-identically to
	// the plain partition samplers) unless the scenario scripts membership
	// transitions or speed heterogeneity.
	s.view = core.NewClusterView(s.part)
	if cfg.Heterogeneity != nil {
		s.view.SetSpeeds(cfg.Heterogeneity.Factors(s.slots, cfg.Seed+2))
		s.speeds = s.view.Speeds()
	}
	if churnHasMembership(cfg.Churn) {
		s.view.EnableMembership()
		s.dyn = &dynState{epoch: make([]uint8, s.slots), run: make([]runRef, s.slots)}
		s.churnSrc = randdist.New(cfg.Seed + 3)
	}

	if pool := pol.CentralPool(); pool != policy.PoolNone {
		s.central = core.NewCentralQueue(pool.IDs(s.part))
	}
	if cfg.Schedulers != nil {
		s.initMultiSched()
	}
	if cfg.Faults != nil {
		// Built after initMultiSched on purpose: without churn the
		// schedulers' snapshots alias the truth view, and forcing dyn below
		// must not change that.
		s.flt = newFaultState(*cfg.Faults, cfg.Seed, s.slots)
		s.res.MessagesDropped = &s.flt.drops
		if s.dyn == nil {
			// The defenses (stale-completion epochs, speculative
			// cancellation, running-task re-routes) ride the churn
			// incarnation machinery, so a fault run always carries dynState —
			// but membership stays static, keeping probe sampling on the
			// dense fast path.
			s.dyn = &dynState{epoch: make([]uint8, s.slots), run: make([]runRef, s.slots)}
		}
	}

	if err := s.checkFeasibility(); err != nil {
		return nil, err
	}

	// Lazy chained submission: decode and schedule only the first job's
	// submit; each submit event pulls the next job from the source and
	// schedules it (see submitNext), so the stream stays exactly one
	// decoded job ahead of simulated time. The submit chain runs on the
	// engine's reserved low sequence numbers, so every event receives the
	// exact (timestamp, sequence) rank it would have had if all submits
	// were preloaded before the run — including a submit winning an
	// equal-timestamp tie against any run-time event.
	s.eng.ReserveSeqs(uint64(meta.NumJobs))
	if meta.NumJobs > 0 {
		j, ok := src.Next()
		if !ok {
			err := workload.SourceErr(src)
			if err == nil {
				err = fmt.Errorf("sim: source %q yielded no jobs, meta promised %d", meta.Name, meta.NumJobs)
			}
			return nil, err
		}
		s.pending = j
		s.submitted = 1
		s.eng.AtReserved(j.SubmitTime, 1, simEvent{kind: evSubmit, ref: 0})
	}
	s.nextSample = cfg.UtilizationInterval
	s.eng.At(s.nextSample, simEvent{kind: evSample})

	// Scripted cluster transitions become ordinary typed events, scheduled
	// up front (churn scripts are short). Equal-timestamp ties resolve in
	// spec order, after any same-instant submit (reserved sequence) — the
	// timeline is a pure function of (config, seed).
	if cfg.Churn != nil {
		for _, ev := range cfg.Churn.Events {
			e := simEvent{ref: int32(ev.Node)}
			if ev.Count > 0 {
				e.ref, e.aux = -1, int32(ev.Count)
			}
			switch ev.Kind {
			case policy.ChurnFail:
				e.kind = evNodeFail
			case policy.ChurnRecover:
				e.kind = evNodeRecover
			case policy.ChurnCentralDown:
				e.kind = evCentralDown
			case policy.ChurnCentralUp:
				e.kind = evCentralUp
			case policy.ChurnSchedFail:
				e.kind = evSchedFail
			case policy.ChurnSchedRecover:
				e.kind = evSchedRecover
			}
			s.eng.At(ev.At, e)
		}
	}
	// Scripted straggler events follow the same pattern: typed events in
	// spec order, scheduled up front after sequence reservation.
	if s.flt != nil {
		for i, ev := range s.flt.spec.Stragglers {
			s.eng.At(ev.At, simEvent{kind: evStraggle, aux: int32(i)})
		}
	}
	return s, nil
}

// churnHasMembership reports whether the scenario scripts node-level
// membership transitions (as opposed to only central-scheduler outages,
// which leave sampling on the static fast path).
func churnHasMembership(spec *policy.ChurnSpec) bool {
	if spec == nil {
		return false
	}
	for _, ev := range spec.Events {
		if ev.Kind == policy.ChurnFail || ev.Kind == policy.ChurnRecover {
			return true
		}
	}
	return false
}

// run drains the event queue and assembles the report.
func (s *simulation) run() (*policy.Report, error) {
	s.eng.Run()
	if s.failErr != nil {
		return nil, s.failErr
	}
	if s.sinkErr != nil {
		return nil, fmt.Errorf("sim: job sink: %w", s.sinkErr)
	}
	if s.jobsDone != s.totalJobs {
		detail := ""
		if n := len(s.backlog); n > 0 {
			detail += fmt.Sprintf("; %d central placements backlogged (scenario never restored the central scheduler?)", n)
		}
		if n := len(s.parkedJobs); n > 0 {
			detail += fmt.Sprintf("; %d jobs parked for pool capacity (scenario never recovered enough nodes?)", n)
		}
		if n := len(s.lostProbes); n > 0 {
			detail += fmt.Sprintf("; %d probes waiting for a live pool node", n)
		}
		if s.flt != nil {
			if n := len(s.flt.starved); n > 0 {
				detail += fmt.Sprintf("; %d placements gave up after exhausting fault retries", n)
			}
		}
		if s.ms != nil {
			if n := len(s.ms.pendingJobs) + len(s.ms.pendingProbes) + len(s.ms.pendingReplies) + len(s.ms.pendingCentral); n > 0 {
				detail += fmt.Sprintf("; %d placements waiting for a live scheduler (scenario never recovered one?)", n)
			}
		}
		return nil, fmt.Errorf("sim: deadlock — %d of %d jobs completed%s", s.jobsDone, s.totalJobs, detail)
	}
	if s.centralDown {
		// Outage never closed by the script: account it up to the end.
		s.centralOutageEnd(s.eng.Now())
	}
	if s.cfg.Churn != nil || s.ms != nil || s.flt != nil {
		// Scripted events, armed snapshot-refresh chains, and fault-plane
		// timers can outlive the workload (a recovery, refresh, or straggler
		// scheduled past the last completion); the makespan is still the
		// last job's completion, not the last drained event.
		s.res.Makespan = s.lastDone
	} else {
		s.res.Makespan = s.eng.Now()
	}
	s.res.Events = s.eng.Executed()
	return s.res, nil
}

// checkFeasibility runs the pre-flight check. With exact estimates each
// job's true class determines its route; under mis-estimation a job's
// class can flip at runtime, so both routes must be feasible. The margin
// is the scenario's worst-case concurrent failures, so a churn script that
// could starve a probe pool is rejected before the run. Adapter runs check
// every job exactly; streamed runs check the metadata's conservative
// MaxTasks bound, falling back to a per-job check at submission when that
// bound is inconclusive (see routeJob).
func (s *simulation) checkFeasibility() error {
	margin := s.cfg.Churn.MaxConcurrentFailures()
	if s.trace != nil {
		exact := s.cfg.ExactEstimates()
		return policy.CheckFeasibility(s.trace, s.pol, s.view, margin,
			func(j *workload.Job) []bool {
				if exact {
					return []bool{s.classifier.IsLong(j.AvgTaskDuration())}
				}
				return []bool{false, true}
			})
	}
	perJob, err := policy.CheckFeasibilityMeta(s.meta, s.pol, s.view, margin)
	if err != nil {
		return err
	}
	s.perJobFeas = perJob
	return nil
}

// allocSlot returns a jobs-arena index for a newly submitted job: a
// recycled slot when one is free, else a fresh append. On a materialized
// run slots never recycle and the arena was pre-sized to the job count, so
// the append never re-allocates.
//
//hawk:hotpath
func (s *simulation) allocSlot() int32 {
	if n := len(s.freeSlots); n > 0 {
		idx := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return idx
	}
	s.jobs = append(s.jobs, jobState{})
	return int32(len(s.jobs) - 1)
}

// maybeFreeJob recycles idx's arena slot once nothing can reference it
// again: the job has completed AND no probe chain is outstanding (a probe
// cancellation may arrive after the last task finishes elsewhere). The
// decoded Job goes back to the source's pool. Materialized runs keep every
// slot live — the report and the trace own the memory.
//
//hawk:hotpath
func (s *simulation) maybeFreeJob(idx int32) {
	if !s.streaming {
		return
	}
	js := &s.jobs[idx]
	if js.probes != 0 || int(js.finished) != len(js.durations) {
		return
	}
	ref := js.ref
	lost := js.lost[:0]
	*js = jobState{lost: lost} // keep the lost backing array with the slot
	s.freeSlots = append(s.freeSlots, idx)
	if s.recycler != nil {
		s.recycler.Recycle(ref)
	}
}

// failRun records the first fatal mid-run error. The submit chain checks
// it before pulling the next job, so the stream stops and run surfaces the
// error after the queue drains.
func (s *simulation) failRun(err error) {
	if s.failErr == nil {
		s.failErr = err
	}
}

// submit routes a newly arrived decoded job per the policy's decision,
// populating a (possibly recycled) arena slot.
//
//hawk:hotpath
func (s *simulation) submit(job *workload.Job) {
	idx := s.allocSlot()
	js := &s.jobs[idx]
	js.ref = job
	js.id = job.ID
	js.submit = job.SubmitTime
	js.durations = job.Durations
	js.estimate = s.estimator.Estimate(job)
	js.long = s.classifier.IsLong(js.estimate)
	js.trueLong = s.classifier.IsLong(job.AvgTaskDuration())
	js.outage = s.centralDown
	if s.flt != nil && s.flt.spec.Speculate {
		js.specThresh = s.flt.threshold(job.Durations)
	}
	s.routeJob(idx)
}

// routeJob executes the policy's placement decision for a populated job —
// at submission, and again when a parked job is released by a recovery.
//
//hawk:hotpath
func (s *simulation) routeJob(idx int32) {
	js := &s.jobs[idx]
	dec := s.pol.Route(policy.JobInfo{
		ID: js.id, Tasks: len(js.durations), Estimate: js.estimate, Long: js.long,
	})
	if s.ms != nil && !s.msAssignOwner(idx) {
		return // no live scheduler; parked until one recovers
	}
	switch dec.Action {
	case policy.ActionCentral:
		s.centralJob(idx)
	default:
		// Probe sampling runs against the owning scheduler's (possibly
		// stale) snapshot; on a single-scheduler run that is the truth
		// view itself.
		view := s.view
		if s.ms != nil {
			view = s.ms.scheds[js.owner].view
		}
		poolSize := dec.Pool.Size(view)
		if s.ms != nil && s.dyn != nil && poolSize < len(js.durations) {
			// The stale snapshot looks too narrow for batch sampling; a
			// real scheduler would consult fresh state before giving up,
			// so refresh and re-check against the truth.
			s.refreshSched(int32(js.owner), s.eng.Now())
			poolSize = dec.Pool.Size(view)
		}
		if s.dyn != nil && poolSize < len(js.durations) {
			// Batch sampling needs one live candidate per task; churn has
			// shrunk the pool below that, so park the job until nodes
			// recover. The feasibility margin makes this unreachable for
			// validated scenarios — it is the belt to that suspender.
			s.parkedJobs = append(s.parkedJobs, idx)
			return
		}
		if s.perJobFeas && s.dyn == nil && poolSize < len(js.durations) {
			// Streamed run whose metadata bound was inconclusive: this job
			// really is too wide for its probe pool on a static cluster —
			// the same condition the exact pre-flight rejects up front.
			s.failRun(fmt.Errorf("sim: job %d has %d tasks but its probe pool has only %d nodes", js.id, len(js.durations), poolSize)) //hawk:allow fatal-abort path, runs at most once per run
			return
		}
		k := core.NumProbes(len(js.durations), s.cfg.ProbeRatio, poolSize)
		s.nodeIDs = dec.Pool.SampleInto(s.nodeIDs[:0], view, s.src, k)
		s.probeJob(idx, s.nodeIDs)
	}
}

// probeJob sends batch-sampling probes to the chosen nodes; each arrives
// after one network delay.
//
//hawk:hotpath
func (s *simulation) probeJob(idx int32, nodeIDs []int) {
	s.res.ProbesSent += int64(len(nodeIDs))
	s.jobs[idx].probes += int32(len(nodeIDs))
	if s.flt != nil {
		for _, id := range nodeIDs {
			s.sendProbe(idx, int32(id))
		}
		return
	}
	for _, id := range nodeIDs {
		s.eng.After(s.cfg.NetworkDelay, simEvent{kind: evProbeArrive, ref: int32(id), jidx: idx})
	}
}

// centralJob places every task of the job with the §3.7 algorithm: each
// task goes to the server with the smallest estimated waiting time, which
// is then bumped by the job's estimated task runtime. While the central
// scheduler is scripted down (or churn has removed its every server) the
// whole job parks in the backlog instead.
//
//hawk:hotpath
func (s *simulation) centralJob(idx int32) {
	if s.centralUnavailable() {
		s.parkCentral(idx, -1)
		return
	}
	js := &s.jobs[idx]
	if s.ms != nil {
		// Multi-scheduler model: every task goes through the owning
		// scheduler's optimistic claim/commit path.
		for i := range js.durations {
			s.placeCentral(idx, int32(i), 0)
		}
		return
	}
	now := s.eng.Now()
	for i := range js.durations {
		nodeID, _ := s.central.Assign(now, js.estimate)
		s.res.CentralAssigns++
		if s.flt != nil {
			s.sendAssign(int32(nodeID), idx, int32(i), 0, false)
			continue
		}
		s.eng.After(s.cfg.NetworkDelay, simEvent{
			kind: evTaskArrive, ref: int32(nodeID), jidx: idx, aux: int32(i),
		})
	}
}

// attemptSteal performs one randomized steal attempt for an idle thief:
// contact up to Cap random general-partition nodes and move the first
// eligible group found (§3.6, Figure 3). Per §4.1 the decision itself is
// free; stolen work restarts instantly at the thief.
//
//hawk:hotpath
func (s *simulation) attemptSteal(thief *node) {
	if !s.steal.Enabled {
		return
	}
	s.nodeIDs = s.steal.CandidatesInto(s.nodeIDs[:0], s.view, s.src, int(thief.id))
	candidates := s.nodeIDs
	if len(candidates) == 0 {
		return
	}
	s.res.StealAttempts++
	for _, id := range candidates {
		s.res.StealContacts++
		if s.flt != nil && s.faultDrop(s.flt.spec.StealLoss, &s.flt.drops.Steals) {
			continue // the contact was lost; stealing is opportunistic, move on
		}
		victim := &s.nodes[id]
		if victim.queueLen() == 0 {
			continue
		}
		if !victim.busy {
			// The victim is between entries at this very instant; its
			// queue will advance on its own. Skip rather than race it.
			continue
		}
		s.stealFlags = victim.appendQueueLongFlags(s.stealFlags[:0])
		flags := s.stealFlags
		start, end, ok := core.EligibleGroup(victim.runningLong, flags)
		if !ok {
			continue
		}
		if s.cfg.StealRandomPositions {
			s.shortIdx, s.shortPos = core.RandomShortIndicesInto(
				s.shortIdx[:0], s.shortPos[:0], flags, end-start, s.src)
			s.stolen = victim.appendStealIndices(s.stolen[:0], s.shortIdx)
		} else {
			s.stolen = victim.appendStealRange(s.stolen[:0], start, end)
		}
		if len(s.stolen) == 0 {
			continue
		}
		s.res.StealSuccesses++
		s.res.EntriesStolen += int64(len(s.stolen))
		thief.enqueueFront(s, s.stolen)
		return
	}
}

//hawk:hotpath
func (s *simulation) jobCompleted(idx int32, now float64) {
	s.jobsDone++
	if now > s.lastDone {
		s.lastDone = now
	}
	js := &s.jobs[idx]
	jr := policy.JobReport{
		ID:           js.id,
		SubmitTime:   js.submit,
		Runtime:      now - js.submit,
		Tasks:        len(js.durations),
		Long:         js.long,
		TrueLong:     js.trueLong,
		Estimate:     js.estimate,
		DuringOutage: js.outage,
	}
	if s.cfg.JobSink != nil {
		if err := s.cfg.JobSink(jr); err != nil && s.sinkErr == nil {
			s.sinkErr = err
		}
	}
	if s.res.Streamed != nil {
		s.res.Streamed.ObserveJob(jr)
	} else {
		s.res.Jobs = append(s.res.Jobs, jr)
	}
	s.maybeFreeJob(idx)
}

// observeWait records how long a queue entry waited at nodes before its
// slot opened, split by job class — diagnostic for the queueing analyses.
//
//hawk:hotpath
func (s *simulation) observeWait(e entry, now float64) {
	w := now - e.enq
	if s.res.Streamed != nil {
		s.res.Streamed.ObserveWait(w, e.long())
		return
	}
	if e.long() {
		s.res.LongEntryWaits = append(s.res.LongEntryWaits, w)
	} else {
		s.res.ShortEntryWaits = append(s.res.ShortEntryWaits, w)
	}
}

//hawk:hotpath
func (s *simulation) nodeBecameBusy(id int32) {
	s.busyNodes++
	if id >= s.shortOnly {
		s.busyGeneral++
	}
}

//hawk:hotpath
func (s *simulation) nodeBecameIdle(id int32) {
	s.busyNodes--
	if id >= s.shortOnly {
		s.busyGeneral--
	}
}
