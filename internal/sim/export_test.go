package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestResultsCSVRoundTrip(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 100, MeanInterArrival: 1, Seed: 2})
	res := mustRun(t, tr, Config{NumNodes: 500, Mode: ModeHawk, Seed: 1})

	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Jobs) {
		t.Fatalf("round trip: %d rows, want %d", len(got), len(res.Jobs))
	}
	for i := range got {
		a, b := got[i], res.Jobs[i]
		if a != b {
			t.Fatalf("row %d mismatch: %+v != %+v", i, a, b)
		}
	}
}

func TestSaveResultsCSV(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10))
	res := mustRun(t, tr, Config{NumNodes: 10, Mode: ModeSparrow, Seed: 1})
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := SaveResultsCSV(path, res); err != nil {
		t.Fatal(err)
	}
	rows, err := readResultsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func readResultsFile(path string) ([]JobResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadResultsCSV(f)
}

func TestReadResultsCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"jobID,submitTime,runtime,tasks,long,trueLong,estimate\n1,2,3\n",
		"jobID,submitTime,runtime,tasks,long,trueLong,estimate\nx,0,1,1,false,false,1\n",
		"jobID,submitTime,runtime,tasks,long,trueLong,estimate\n1,0,1,1,maybe,false,1\n",
	}
	for i, in := range cases {
		if _, err := ReadResultsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
