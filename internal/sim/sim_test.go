package sim

import (
	"math"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// tinyTrace builds a deterministic hand-written trace.
func tinyTrace(jobs ...*workload.Job) *workload.Trace {
	return &workload.Trace{
		Name:                   "tiny",
		Jobs:                   jobs,
		Cutoff:                 1000,
		ShortPartitionFraction: 0.2,
	}
}

func job(id int, submit float64, durs ...float64) *workload.Job {
	return &workload.Job{ID: id, SubmitTime: submit, Durations: durs}
}

func mustRun(t *testing.T, tr *workload.Trace, cfg policy.Config) *policy.Report {
	t.Helper()
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSingleJobIdleCluster(t *testing.T) {
	// One 3-task short job on an idle cluster: runtime = max duration
	// plus probe latency (1 delay to reach the node + RTT to fetch).
	tr := tinyTrace(job(1, 0, 100, 200, 300))
	for _, pol := range []string{"sparrow", "hawk", "centralized", "split"} {
		res := mustRun(t, tr, policy.Config{NumNodes: 50, Policy: pol, Seed: 1})
		if len(res.Jobs) != 1 {
			t.Fatalf("%s: %d jobs", pol, len(res.Jobs))
		}
		rt := res.Jobs[0].Runtime
		if rt < 300 || rt > 300.01 {
			t.Errorf("%s: runtime = %v, want ~300 (+ms latency)", pol, rt)
		}
	}
}

func TestAllTasksExecuteExactlyOnce(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 300, MeanInterArrival: 1, Seed: 3})
	wantTasks := 0
	for _, j := range tr.Jobs {
		wantTasks += j.NumTasks()
	}
	for _, pol := range []string{"sparrow", "hawk", "centralized", "split"} {
		res := mustRun(t, tr, policy.Config{NumNodes: 2000, Policy: pol, Seed: 4})
		if res.TasksExecuted != int64(wantTasks) {
			t.Errorf("%s: executed %d tasks, want %d", pol, res.TasksExecuted, wantTasks)
		}
		if len(res.Jobs) != tr.Len() {
			t.Errorf("%s: %d job results, want %d", pol, len(res.Jobs), tr.Len())
		}
	}
}

func TestProbeAccounting(t *testing.T) {
	// Sparrow sends 2 probes per task; surplus probes are cancelled.
	tr := tinyTrace(job(1, 0, 10, 10, 10, 10))
	res := mustRun(t, tr, policy.Config{NumNodes: 100, Policy: "sparrow", Seed: 1})
	if res.ProbesSent != 8 {
		t.Fatalf("probes = %d, want 8", res.ProbesSent)
	}
	if res.Cancels != 4 {
		t.Fatalf("cancels = %d, want 4", res.Cancels)
	}
}

func TestJobRuntimeIsLastTaskCompletion(t *testing.T) {
	// Two jobs on one node: FIFO forces serialization. Job 1 has two
	// tasks of 100 s; with a single node its runtime is ~200 s.
	tr := tinyTrace(job(1, 0, 100, 100))
	res := mustRun(t, tr, policy.Config{NumNodes: 1, Policy: "centralized", Seed: 1})
	rt := res.Jobs[0].Runtime
	if rt < 200 || rt > 200.01 {
		t.Fatalf("serialized runtime = %v, want ~200", rt)
	}
}

func TestClassificationAndCutoff(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10), job(2, 1, 5000))
	res := mustRun(t, tr, policy.Config{NumNodes: 10, Policy: "hawk", Seed: 1})
	for _, j := range res.Jobs {
		switch j.ID {
		case 1:
			if j.Long || j.TrueLong {
				t.Error("job 1 should be short")
			}
		case 2:
			if !j.Long || !j.TrueLong {
				t.Error("job 2 should be long")
			}
		}
	}
	if len(res.ShortRuntimes()) != 1 || len(res.LongRuntimes()) != 1 {
		t.Fatal("per-class runtime split wrong")
	}
}

func TestDeterminism(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 200, MeanInterArrival: 1, Seed: 8})
	for _, pol := range []string{"sparrow", "hawk"} {
		a := mustRun(t, tr, policy.Config{NumNodes: 1000, Policy: pol, Seed: 9})
		b := mustRun(t, tr, policy.Config{NumNodes: 1000, Policy: pol, Seed: 9})
		if a.Makespan != b.Makespan || a.StealSuccesses != b.StealSuccesses {
			t.Fatalf("%s: runs with equal seeds differ", pol)
		}
		for i := range a.Jobs {
			if a.Jobs[i].Runtime != b.Jobs[i].Runtime {
				t.Fatalf("%s: job %d runtime differs", pol, a.Jobs[i].ID)
			}
		}
	}
}

func TestSeedsChangeOutcome(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 200, MeanInterArrival: 1, Seed: 8})
	a := mustRun(t, tr, policy.Config{NumNodes: 500, Policy: "sparrow", Seed: 1})
	b := mustRun(t, tr, policy.Config{NumNodes: 500, Policy: "sparrow", Seed: 2})
	diff := false
	for i := range a.Jobs {
		if a.Jobs[i].Runtime != b.Jobs[i].Runtime {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestHawkLongJobsStayInGeneralPartition(t *testing.T) {
	// With a 50% short partition on 2 nodes, node 0 is short-only. A
	// long job's tasks must all run on node 1, serialized.
	tr := &workload.Trace{
		Name:                   "conf",
		Jobs:                   []*workload.Job{job(1, 0, 2000, 2000)},
		Cutoff:                 1000,
		ShortPartitionFraction: 0.5,
	}
	res := mustRun(t, tr, policy.Config{NumNodes: 2, Policy: "hawk", Seed: 1})
	rt := res.Jobs[0].Runtime
	if rt < 4000 || rt > 4000.01 {
		t.Fatalf("long job runtime = %v, want ~4000 (serialized on the single general node)", rt)
	}
}

func TestSparrowUsesWholeCluster(t *testing.T) {
	// Same trace under Sparrow: both nodes are usable, so the two tasks
	// run in parallel.
	tr := &workload.Trace{
		Name:                   "conf",
		Jobs:                   []*workload.Job{job(1, 0, 2000, 2000)},
		Cutoff:                 1000,
		ShortPartitionFraction: 0.5,
	}
	res := mustRun(t, tr, policy.Config{NumNodes: 2, Policy: "sparrow", Seed: 1})
	rt := res.Jobs[0].Runtime
	if rt > 2000.02 {
		t.Fatalf("runtime = %v, want ~2000 (parallel)", rt)
	}
}

func TestSplitConfinesShortJobs(t *testing.T) {
	// Split cluster with a 25% short partition on 8 nodes: two 2-task
	// short jobs compete for the 2 short-only nodes, so the second job
	// queues (~200 s total) even though 6 general nodes sit idle. Under
	// Hawk the same jobs would spread over the whole cluster.
	tr := &workload.Trace{
		Name: "conf",
		Jobs: []*workload.Job{
			job(1, 0, 100, 100),
			job(2, 1, 100, 100),
		},
		Cutoff:                 1000,
		ShortPartitionFraction: 0.25,
	}
	res := mustRun(t, tr, policy.Config{NumNodes: 8, Policy: "split", Seed: 1})
	var rt2 float64
	for _, j := range res.Jobs {
		if j.ID == 2 {
			rt2 = j.Runtime
		}
	}
	if rt2 < 150 {
		t.Fatalf("second short job runtime = %v, want ~200 (queued in the short partition)", rt2)
	}
	hawk := mustRun(t, tr, policy.Config{NumNodes: 8, Policy: "hawk", Seed: 1})
	for _, j := range hawk.Jobs {
		if j.ID == 2 && j.Runtime > 150 {
			t.Fatalf("hawk should spread short jobs cluster-wide, runtime = %v", j.Runtime)
		}
	}
}

func TestStealingRescuesShortJob(t *testing.T) {
	// One general node (id 1) and one short-only node (id 0). A long job
	// occupies the general node; a short job's probes (2 probes on 2
	// nodes = both) put one probe behind the long task. Without stealing
	// the short task behind the long task would wait 5000 s; with
	// stealing the idle short-partition node rescues it.
	tr := &workload.Trace{
		Name: "steal",
		Jobs: []*workload.Job{
			{ID: 1, SubmitTime: 0, Durations: []float64{5000, 5000}},
			{ID: 2, SubmitTime: 1, Durations: []float64{10, 10, 10}},
		},
		Cutoff:                 1000,
		ShortPartitionFraction: 1.0 / 3, // ceil(n/3) = 1 of 3 nodes reserved
	}
	withSteal := mustRun(t, tr, policy.Config{NumNodes: 3, Policy: "hawk", Seed: 1})
	without := mustRun(t, tr, policy.Config{NumNodes: 3, Policy: "hawk", Seed: 1, DisableStealing: true})
	var rtSteal, rtNo float64
	for _, j := range withSteal.Jobs {
		if j.ID == 2 {
			rtSteal = j.Runtime
		}
	}
	for _, j := range without.Jobs {
		if j.ID == 2 {
			rtNo = j.Runtime
		}
	}
	if rtSteal > rtNo {
		t.Fatalf("stealing made the short job slower: %v > %v", rtSteal, rtNo)
	}
	if withSteal.StealSuccesses == 0 && rtNo > 1000 && rtSteal > 1000 {
		t.Fatalf("no steals happened and the short job queued: steal=%v no-steal=%v", rtSteal, rtNo)
	}
}

func TestUtilizationBounds(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 200, MeanInterArrival: 1, Seed: 8})
	res := mustRun(t, tr, policy.Config{NumNodes: 1000, Policy: "hawk", Seed: 1})
	for _, u := range res.Utilization.Samples() {
		if u < 0 || u > 1 {
			t.Fatalf("utilization sample %v out of [0,1]", u)
		}
	}
	if res.Utilization.Len() == 0 {
		t.Fatal("no utilization samples collected")
	}
}

func TestConfigValidation(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10))
	if _, err := Run(tr, policy.Config{NumNodes: 0, Policy: "sparrow"}); err == nil {
		t.Error("zero nodes should error")
	}
	bad := tinyTrace(job(1, 0, 10))
	bad.Cutoff = 0
	if _, err := Run(bad, policy.Config{NumNodes: 10, Policy: "sparrow"}); err == nil {
		t.Error("zero cutoff should error")
	}
	if _, err := Run(tr, policy.Config{NumNodes: 10, Policy: "no-such-policy"}); err == nil {
		t.Error("unknown policy should error")
	}
	invalid := tinyTrace(job(1, -5, 10))
	if _, err := Run(invalid, policy.Config{NumNodes: 10, Policy: "sparrow"}); err == nil {
		t.Error("invalid trace should error")
	}
}

func TestProbeFeasibilityCheck(t *testing.T) {
	// 20-task job on a 10-node cluster cannot be probe-scheduled.
	wide := tinyTrace(job(1, 0, make([]float64, 20)...))
	for i := range wide.Jobs[0].Durations {
		wide.Jobs[0].Durations[i] = 10
	}
	if _, err := Run(wide, policy.Config{NumNodes: 10, Policy: "sparrow"}); err == nil {
		t.Error("infeasible sparrow trace should error")
	}
	// Centralized mode has no such limit.
	if _, err := Run(wide, policy.Config{NumNodes: 10, Policy: "centralized"}); err != nil {
		t.Errorf("centralized should handle wide jobs: %v", err)
	}
	// Capping fixes it.
	capped := wide.CapTasks(10)
	if _, err := Run(capped, policy.Config{NumNodes: 10, Policy: "sparrow"}); err != nil {
		t.Errorf("capped trace should run: %v", err)
	}
}

func TestMisestimationClassification(t *testing.T) {
	// With an extreme downward mis-estimation every job classifies short.
	tr := tinyTrace(job(1, 0, 5000, 5000), job(2, 1, 10))
	res := mustRun(t, tr, policy.Config{
		NumNodes: 10, Policy: "hawk", Seed: 1,
		MisestimateLo: 0.01, MisestimateHi: 0.02,
	})
	for _, j := range res.Jobs {
		if j.Long {
			t.Errorf("job %d classified long despite tiny estimates", j.ID)
		}
		if j.ID == 1 && !j.TrueLong {
			t.Error("TrueLong must ignore mis-estimation")
		}
	}
}

func TestResultHelpers(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10), job(2, 1, 5000))
	res := mustRun(t, tr, policy.Config{NumNodes: 10, Policy: "hawk", Seed: 1})
	if got := res.RuntimesByID(false); len(got) != 1 {
		t.Fatalf("RuntimesByID(short) = %v", got)
	}
	if got := res.RuntimesByID(true); len(got) != 1 {
		t.Fatalf("RuntimesByID(long) = %v", got)
	}
	if math.IsNaN(res.Percentile(false, 50)) {
		t.Fatal("short percentile NaN")
	}
	if res.Summary() == "" {
		t.Fatal("summary empty")
	}
	if len(res.TrueShortRuntimes()) != 1 || len(res.TrueLongRuntimes()) != 1 {
		t.Fatal("true-class runtime split wrong")
	}
}

func TestNetworkDelayAddsUp(t *testing.T) {
	// A 1-task short job: probe (delay) + request (delay) + response
	// (delay) = 3 network delays before execution.
	tr := tinyTrace(job(1, 0, 100))
	res := mustRun(t, tr, policy.Config{NumNodes: 4, Policy: "sparrow", Seed: 1, NetworkDelay: 1})
	rt := res.Jobs[0].Runtime
	if math.Abs(rt-103) > 1e-9 {
		t.Fatalf("runtime = %v, want 103 (100 + 3 x 1 s delay)", rt)
	}
}

func TestCentralizedDelayIsOneHop(t *testing.T) {
	// A centrally placed task pays only the dispatch hop.
	tr := tinyTrace(job(1, 0, 100))
	res := mustRun(t, tr, policy.Config{NumNodes: 4, Policy: "centralized", Seed: 1, NetworkDelay: 1})
	rt := res.Jobs[0].Runtime
	if math.Abs(rt-101) > 1e-9 {
		t.Fatalf("runtime = %v, want 101", rt)
	}
}

func TestMultiSlotNodesAddCapacity(t *testing.T) {
	// Four 100 s tasks on 2 nodes: with 1 slot each they run two-deep
	// (~200 s); with 2 slots per node all four run in parallel (~100 s).
	tr := tinyTrace(job(1, 0, 100, 100, 100, 100))
	oneSlot := mustRun(t, tr, policy.Config{NumNodes: 2, Policy: "centralized", Seed: 1})
	twoSlots := mustRun(t, tr, policy.Config{NumNodes: 2, SlotsPerNode: 2, Policy: "centralized", Seed: 1})
	if rt := oneSlot.Jobs[0].Runtime; rt < 200 {
		t.Fatalf("1-slot runtime = %v, want ~200", rt)
	}
	if rt := twoSlots.Jobs[0].Runtime; rt > 100.01 {
		t.Fatalf("2-slot runtime = %v, want ~100", rt)
	}
	if _, err := Run(tr, policy.Config{NumNodes: 2, SlotsPerNode: -1, Policy: "centralized"}); err == nil {
		t.Fatal("negative slots should error")
	}
}
