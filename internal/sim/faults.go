package sim

import (
	"slices"

	"repro/internal/policy"
	"repro/internal/randdist"
)

// The gray-failure injection plane (policy.FaultSpec) and its defenses.
// Everything hangs off simulation.flt, nil unless Config.Faults is set —
// the fault-free fast path pays one pointer compare at each send site and
// draws the exact same main-stream random sequence as before, so golden
// reports stay byte-identical. All fault randomness (loss draws, jitter,
// retry-target and straggler sampling) comes from a dedicated stream seeded
// with Config.Seed+5.
//
// Loss is decided omnisciently at send time: a dropped message schedules
// the timeout/retry event that will notice it instead of an arrival, and a
// delivered message schedules no timer at all. Every in-flight or failed
// message is therefore represented by exactly one pending event, which
// keeps the quiescent-heap deadlock detector exact — an all-drop scenario
// exhausts its bounded retry chains, parks, drains the heap, and surfaces
// as the deadlock error rather than ticking forever.

// faultState is the per-run fault-plane bookkeeping.
type faultState struct {
	spec policy.FaultSpec
	src  *randdist.Source // the dedicated Seed+5 stream
	// drops is the per-class drop accounting the report points at.
	drops policy.MessageDrops
	// slow is the per-node straggler multiplier (1 = nominal speed),
	// applied on top of any static Heterogeneity skew.
	slow []float64
	// fin is the authoritative finish time of the task running on each
	// node. A straggler event stretches it; an evTaskDone firing early
	// (scheduled before the stretch) re-arms at fin. Valid only while the
	// node is busy executing.
	fin []float64
	// dups tracks outstanding speculative duplicates (at most one per
	// task); resolved records are swap-removed, so the scan is O(in-flight
	// speculation), not O(trace).
	dups []specDup
	// starved parks tasks whose retry chain exhausted or whose direct
	// placement found no live node; drained on node recovery, and surfaced
	// in the deadlock report otherwise.
	starved []centralRef
	// ids is the fault plane's sampling scratch (retry targets, duplicate
	// hosts, straggler picks) — never aliased with simulation.nodeIDs,
	// whose probe/steal uses can be live when a fault path samples.
	ids []int
	// durScratch is the speculation threshold's sort scratch.
	durScratch []float64
}

// specDup is one outstanding speculative duplicate: task tidx of job jidx,
// originally running on orig, duplicated on dup (-1 while the duplicate is
// still in flight or queued). cancelled marks a duplicate whose original
// won before the duplicate started executing; it is squashed when it
// surfaces.
type specDup struct {
	jidx, tidx int32
	orig       int32
	dup        int32
	cancelled  bool
}

// newFaultState builds the fault plane for a normalized spec.
func newFaultState(spec policy.FaultSpec, seed int64, slots int) *faultState {
	f := &faultState{
		spec: spec,
		src:  randdist.New(seed + 5),
		slow: make([]float64, slots),
		fin:  make([]float64, slots),
	}
	for i := range f.slow {
		f.slow[i] = 1
	}
	return f
}

// retryDelay is the exponential backoff before retry attempt k (1-based):
// RetryBackoff, doubling per attempt.
func (f *faultState) retryDelay(attempt int) float64 {
	return f.spec.RetryBackoff * float64(int64(1)<<(attempt-1))
}

// threshold computes a job's speculation delay threshold: the configured
// nearest-rank percentile of its task-duration distribution.
func (f *faultState) threshold(durations []float64) float64 {
	f.durScratch = append(f.durScratch[:0], durations...)
	slices.Sort(f.durScratch)
	rank := int(float64(len(f.durScratch))*f.spec.SpeculatePercentile/100+0.5) - 1
	rank = max(rank, 0)
	rank = min(rank, len(f.durScratch)-1)
	return f.durScratch[rank]
}

// findDup returns the index of the outstanding duplicate record for the
// task, or -1.
func (f *faultState) findDup(jidx, tidx int32) int {
	for i := range f.dups {
		if f.dups[i].jidx == jidx && f.dups[i].tidx == tidx {
			return i
		}
	}
	return -1
}

// removeDup swap-removes record i.
func (f *faultState) removeDup(i int) {
	last := len(f.dups) - 1
	f.dups[i] = f.dups[last]
	f.dups = f.dups[:last]
}

// msgDelay is one message leg's delay: NetworkDelay plus, under the fault
// plane, uniform jitter in [0, Jitter). Round trips draw two legs.
//
//hawk:hotpath
func (s *simulation) msgDelay() float64 {
	if s.flt == nil || s.flt.spec.Jitter == 0 {
		return s.cfg.NetworkDelay
	}
	return s.cfg.NetworkDelay + s.flt.spec.Jitter*s.flt.src.Float64()
}

// faultDrop draws one loss decision and accounts a drop in counter. Only
// called with s.flt != nil; a zero probability draws nothing.
func (s *simulation) faultDrop(p float64, counter *int64) bool {
	if p == 0 || s.flt.src.Float64() >= p {
		return false
	}
	*counter++
	return true
}

// sendProbe dispatches one batch-sampling probe under the fault plane: a
// dropped send schedules the scheduler-side timeout that will retry it
// toward a fresh node.
func (s *simulation) sendProbe(jidx, nodeID int32) {
	if s.faultDrop(s.flt.spec.ProbeLoss, &s.flt.drops.Probes) {
		s.eng.After(s.flt.retryDelay(1), simEvent{kind: evProbeTimeout, ref: -1, jidx: jidx, flags: 1 << evfAttemptShift})
		return
	}
	s.eng.After(s.msgDelay(), simEvent{kind: evProbeArrive, ref: nodeID, jidx: jidx})
}

// sendReply issues (or re-issues, continuing attempt) node nodeID's
// task-request round trip for job jidx under the fault plane: a drop
// schedules the node-side timeout, a delivery draws two jittered legs.
func (s *simulation) sendReply(nodeID int32, gen uint8, jidx int32, attempt int) {
	if s.faultDrop(s.flt.spec.ReplyLoss, &s.flt.drops.Replies) {
		s.eng.After(s.flt.retryDelay(attempt+1), simEvent{
			kind: evProbeTimeout, gen: gen, ref: nodeID, jidx: jidx,
			flags: uint8(attempt+1) << evfAttemptShift,
		})
		return
	}
	s.eng.After(s.msgDelay()+s.msgDelay(), simEvent{kind: evProbeReply, gen: gen, ref: nodeID, jidx: jidx})
}

// sendAssign dispatches one placed central task to its node under the
// fault plane; commit marks the multi-scheduler commit leg, a distinct
// message class. A dropped send retries toward the same node — its queue
// load was already charged by the assignment.
func (s *simulation) sendAssign(nodeID, jidx, tidx int32, sched uint8, commit bool) {
	p, cnt, cls := s.flt.spec.AssignLoss, &s.flt.drops.Assigns, evfCentral
	if commit {
		p, cnt, cls = s.flt.spec.CommitLoss, &s.flt.drops.Commits, evfCentral|evfCommit
	}
	if s.faultDrop(p, cnt) {
		s.eng.After(s.flt.retryDelay(1), simEvent{
			kind: evAssignRetry, ref: nodeID, jidx: jidx, aux: tidx, sched: sched,
			flags: cls | 1<<evfAttemptShift,
		})
		return
	}
	s.eng.After(s.msgDelay(), simEvent{kind: evTaskArrive, sched: sched, ref: nodeID, jidx: jidx, aux: tidx})
}

// probeTimeoutTick handles evProbeTimeout: a dropped probe-plane message's
// timeout fired. Bounded retry with exponential backoff; exhaustion
// degrades the probe to a fallback placement instead of hanging.
func (s *simulation) probeTimeoutTick(ev simEvent) {
	attempt := int(ev.flags >> evfAttemptShift)
	if ev.ref >= 0 {
		// Node side: the task-request round trip was dropped while the node
		// held its slot for it.
		if ev.gen != s.dyn.epoch[ev.ref] {
			return // the node failed meanwhile; its probe was re-sent at failure time
		}
		s.res.ProbeTimeouts++
		if attempt > s.flt.spec.MaxRetries {
			// The node gives up the round trip and frees its slot; the
			// probe's job degrades to a fallback placement.
			s.fallbackProbe(ev.jidx)
			s.nodes[ev.ref].finishSlot(s)
			return
		}
		s.res.ProbeRetries++
		s.sendReply(ev.ref, ev.gen, ev.jidx, attempt)
		return
	}
	// Scheduler side: the probe send itself was dropped; retry toward a
	// fresh pool node (the original target never knew about it).
	s.res.ProbeTimeouts++
	if attempt > s.flt.spec.MaxRetries {
		s.fallbackProbe(ev.jidx)
		return
	}
	s.res.ProbeRetries++
	js := &s.jobs[ev.jidx]
	dec := s.pol.Route(policy.JobInfo{ID: js.id, Tasks: len(js.durations), Estimate: js.estimate, Long: js.long})
	s.flt.ids = dec.Pool.SampleInto(s.flt.ids[:0], s.view, s.flt.src, 1)
	if len(s.flt.ids) == 0 {
		s.lostProbes = append(s.lostProbes, ev.jidx)
		return
	}
	s.res.ProbesSent++
	if s.faultDrop(s.flt.spec.ProbeLoss, &s.flt.drops.Probes) {
		s.eng.After(s.flt.retryDelay(attempt+1), simEvent{
			kind: evProbeTimeout, ref: -1, jidx: ev.jidx,
			flags: uint8(attempt+1) << evfAttemptShift,
		})
		return
	}
	s.eng.After(s.msgDelay(), simEvent{kind: evProbeArrive, ref: int32(s.flt.ids[0]), jidx: ev.jidx})
}

// fallbackProbe degrades one abandoned probe chain after its retries
// exhaust: the job's next unserved task is placed through the central
// queue (or sent directly on a policy without one) instead of probed for —
// graceful degradation, never a hang.
func (s *simulation) fallbackProbe(jidx int32) {
	js := &s.jobs[jidx]
	js.probes--
	tidx, ok := js.nextTask()
	if !ok {
		// Other probes drained the job first — same as a probe cancel.
		s.res.Cancels++
		s.maybeFreeJob(jidx)
		return
	}
	s.res.FallbacksToCentral++
	if s.central != nil {
		s.centralReassign(jidx, tidx)
		return
	}
	s.directPlace(jidx, tidx, 0)
}

// directPlace sends one task straight to a sampled live pool node, for
// policies without a central queue to fall back to (and for re-routing
// direct tasks off a failed node). attempt continues a dropped send's
// retry chain.
func (s *simulation) directPlace(jidx, tidx int32, attempt int) {
	js := &s.jobs[jidx]
	dec := s.pol.Route(policy.JobInfo{ID: js.id, Tasks: len(js.durations), Estimate: js.estimate, Long: js.long})
	s.flt.ids = dec.Pool.SampleInto(s.flt.ids[:0], s.view, s.flt.src, 1)
	if len(s.flt.ids) == 0 {
		s.flt.starved = append(s.flt.starved, centralRef{jidx: jidx, tidx: tidx})
		return
	}
	if s.faultDrop(s.flt.spec.AssignLoss, &s.flt.drops.Assigns) {
		s.eng.After(s.flt.retryDelay(attempt+1), simEvent{
			kind: evAssignRetry, ref: -1, jidx: jidx, aux: tidx,
			flags: uint8(attempt+1) << evfAttemptShift,
		})
		return
	}
	s.eng.After(s.msgDelay(), simEvent{kind: evTaskDirect, ref: int32(s.flt.ids[0]), jidx: jidx, aux: tidx})
}

// assignRetryTick handles evAssignRetry: a dropped task placement's
// backoff expired. Exhausted chains park in starved — re-placed on the
// next node recovery, and surfaced in the deadlock report if nothing ever
// drains them (the bounded terminal state of an all-drop scenario).
func (s *simulation) assignRetryTick(ev simEvent) {
	attempt := int(ev.flags >> evfAttemptShift)
	if attempt > s.flt.spec.MaxRetries {
		s.flt.starved = append(s.flt.starved, centralRef{jidx: ev.jidx, tidx: ev.aux})
		return
	}
	s.res.AssignRetries++
	if ev.ref < 0 {
		// Direct placement: re-run toward a freshly sampled node.
		s.directPlace(ev.jidx, ev.aux, attempt)
		return
	}
	p, cnt := s.flt.spec.AssignLoss, &s.flt.drops.Assigns
	if ev.flags&evfCommit != 0 {
		p, cnt = s.flt.spec.CommitLoss, &s.flt.drops.Commits
	}
	if s.faultDrop(p, cnt) {
		next := ev
		next.flags = ev.flags&(evfCentral|evfSpec|evfCommit) | uint8(attempt+1)<<evfAttemptShift
		s.eng.After(s.flt.retryDelay(attempt+1), next)
		return
	}
	s.eng.After(s.msgDelay(), simEvent{kind: evTaskArrive, sched: ev.sched, ref: ev.ref, jidx: ev.jidx, aux: ev.aux})
}

// drainStarved re-places fault-plane parked tasks after a node recovery.
func (s *simulation) drainStarved() {
	if s.flt == nil || len(s.flt.starved) == 0 {
		return
	}
	pending := s.flt.starved
	s.flt.starved = nil
	for _, p := range pending {
		if s.central != nil {
			s.centralReassign(p.jidx, p.tidx)
		} else {
			s.directPlace(p.jidx, p.tidx, 0)
		}
	}
}

// taskDirectArrive handles evTaskDirect: a directly sent task (fallback
// placement or speculative duplicate) reaches its node's queue. Direct
// tasks carry no central-queue feedback.
func (s *simulation) taskDirectArrive(ev simEvent, now float64) {
	if !s.view.Alive(int(ev.ref)) {
		// The destination failed in flight.
		if ev.flags&evfSpec != 0 {
			s.specAbandon(ev.jidx, ev.aux)
		} else {
			s.directPlace(ev.jidx, ev.aux, 0)
		}
		return
	}
	js := &s.jobs[ev.jidx]
	flags := entryTask | entryDirect | longFlag(js.long)
	if ev.flags&evfSpec != 0 {
		flags |= entrySpec
	}
	s.nodes[ev.ref].enqueue(s, entry{flags: flags, jidx: ev.jidx, tidx: ev.aux, enq: now})
}

// specLaunchTick handles evSpecLaunch: the speculation timer armed when the
// task started fires. If the task is still running on its original node, a
// duplicate launches on a freshly sampled host; otherwise the armed job
// reference resolves. The duplicate's send is deliberately loss-free — it
// is the defense, not the fault — but it does pick up jitter.
func (s *simulation) specLaunchTick(ev simEvent) {
	js := &s.jobs[ev.jidx]
	n := &s.nodes[ev.ref]
	r := s.dyn.run[ev.ref]
	if ev.gen != s.dyn.epoch[ev.ref] || !n.busy || r.probeWait || r.central || r.spec ||
		r.jidx != ev.jidx || r.task != ev.aux || s.flt.findDup(ev.jidx, ev.aux) >= 0 {
		// The task finished, moved, or is already speculated.
		js.probes--
		s.maybeFreeJob(ev.jidx)
		return
	}
	dec := s.pol.Route(policy.JobInfo{ID: js.id, Tasks: len(js.durations), Estimate: js.estimate, Long: js.long})
	s.flt.ids = dec.Pool.SampleInto(s.flt.ids[:0], s.view, s.flt.src, 1)
	if len(s.flt.ids) == 0 || int32(s.flt.ids[0]) == ev.ref {
		// No live host (or the sample landed on the straggler itself): skip.
		js.probes--
		s.maybeFreeJob(ev.jidx)
		return
	}
	s.res.SpeculativeLaunches++
	s.flt.dups = append(s.flt.dups, specDup{jidx: ev.jidx, tidx: ev.aux, orig: ev.ref, dup: -1})
	s.eng.After(s.msgDelay(), simEvent{kind: evTaskDirect, flags: evfSpec, ref: int32(s.flt.ids[0]), jidx: ev.jidx, aux: ev.aux})
}

// specBegin gates a speculative duplicate popping at the head of a node's
// queue: false means the duplicate is obsolete (its original already won)
// and the entry is discarded.
func (s *simulation) specBegin(n *node, jidx, tidx int32) bool {
	i := s.flt.findDup(jidx, tidx)
	if i < 0 || s.flt.dups[i].cancelled {
		if i >= 0 {
			s.flt.removeDup(i)
		}
		s.jobs[jidx].probes--
		s.maybeFreeJob(jidx)
		return false
	}
	s.flt.dups[i].dup = n.id
	return true
}

// specResolve applies first-completion-wins when a completed probe-path
// task has a speculative duplicate outstanding: the completion proceeds
// and the losing copy is cancelled through the incarnation machinery (its
// pending completion event goes stale immediately; the cancellation
// message frees its slot when it lands).
func (s *simulation) specResolve(jidx, tidx int32, isSpec bool) {
	i := s.flt.findDup(jidx, tidx)
	if i < 0 {
		return
	}
	d := s.flt.dups[i]
	js := &s.jobs[jidx]
	if isSpec {
		// The duplicate finished first: speculation paid off.
		s.res.SpeculativeWins++
		s.flt.removeDup(i)
		s.cancelRunning(d.orig, jidx, tidx)
		js.probes--
		return
	}
	// The original finished first.
	s.res.SpeculativeWasted++
	if d.dup >= 0 {
		s.flt.removeDup(i)
		s.cancelRunning(d.dup, jidx, tidx)
		js.probes--
		return
	}
	// The duplicate is still in flight or queued: squash it when it
	// surfaces (specBegin / specAbandon); the record keeps the reference.
	s.flt.dups[i].cancelled = true
}

// cancelRunning cancels the speculation loser executing (jidx, tidx) on
// nodeID: its completion event goes stale via the epoch bump, the slot
// holds a recognizable zombie (runRef jidx -1) until the cancellation
// message lands (evSpecCancel), and the node then moves on.
func (s *simulation) cancelRunning(nodeID, jidx, tidx int32) {
	n := &s.nodes[nodeID]
	r := s.dyn.run[nodeID]
	if !n.busy || r.probeWait || r.jidx != jidx || r.task != tidx {
		return // already gone (defensive; the record's invariants keep it live)
	}
	s.dyn.epoch[nodeID]++
	s.dyn.run[nodeID] = runRef{jidx: -1, task: -1}
	s.eng.After(s.msgDelay(), simEvent{kind: evSpecCancel, gen: s.dyn.epoch[nodeID], ref: nodeID, jidx: jidx})
}

// specCancelTick handles evSpecCancel: the cancellation lands and the
// loser's node frees its slot.
func (s *simulation) specCancelTick(ev simEvent) {
	if ev.gen != s.dyn.epoch[ev.ref] {
		return // the node failed after the cancellation was sent
	}
	n := &s.nodes[ev.ref]
	if !n.busy || s.dyn.run[ev.ref].jidx >= 0 {
		return // the slot was already freed or reused
	}
	n.finishSlot(s)
}

// specAbandon handles a speculative duplicate that dies before executing:
// its entry drained from a failed node's queue, or its send reached a node
// that failed in flight. If the original still runs, the duplicate is
// simply wasted; if the original died after the launch, the abandoned
// duplicate was the task's only copy and it re-serves through a fresh
// probe, inheriting the duplicate's job reference.
func (s *simulation) specAbandon(jidx, tidx int32) {
	i := s.flt.findDup(jidx, tidx)
	if i < 0 {
		return
	}
	d := s.flt.dups[i]
	s.flt.removeDup(i)
	js := &s.jobs[jidx]
	if !d.cancelled && !s.taskRunningOn(d.orig, jidx, tidx) {
		js.lost = append(js.lost, tidx)
		s.resendProbe(jidx)
		return
	}
	if !d.cancelled {
		s.res.SpeculativeWasted++
	}
	js.probes--
	s.maybeFreeJob(jidx)
}

// taskRunningOn reports whether nodeID is currently executing (jidx, tidx)
// as a plain (non-speculative) task.
func (s *simulation) taskRunningOn(nodeID, jidx, tidx int32) bool {
	n := &s.nodes[nodeID]
	r := s.dyn.run[nodeID]
	return n.busy && !r.probeWait && !r.spec && r.jidx == jidx && r.task == tidx
}

// dupTakesOver checks whether a failed original's task survives as a
// speculative duplicate; true means there is nothing to re-serve. A
// running duplicate becomes the task's real execution immediately; a
// queued or in-flight one keeps its record and runs when it surfaces
// (specAbandon rescues the task if it dies too).
func (s *simulation) dupTakesOver(jidx, task int32) bool {
	if s.flt == nil {
		return false
	}
	i := s.flt.findDup(jidx, task)
	if i < 0 {
		return false
	}
	if s.flt.dups[i].dup >= 0 {
		s.flt.removeDup(i)
		s.jobs[jidx].probes--
		s.maybeFreeJob(jidx)
	}
	return true
}

// straggleTick handles evStraggle: scripted straggler event idx fires.
func (s *simulation) straggleTick(idx int, now float64) {
	ev := s.flt.spec.Stragglers[idx]
	if ev.Count > 0 {
		s.flt.ids = s.view.SampleAllInto(s.flt.ids[:0], s.flt.src, ev.Count)
		for _, id := range s.flt.ids {
			s.straggleNode(int32(id), ev.Factor, now)
		}
		return
	}
	s.straggleNode(int32(ev.Node), ev.Factor, now)
}

// straggleNode applies one slowdown: future tasks on the node execute
// Factor times slower, and the task in flight stretches — its remaining
// work is re-scaled and the authoritative finish time moves out, with the
// already-scheduled completion re-arming at it. A factor reduction never
// shrinks an in-flight task retroactively (the completion already fired or
// is correctly scheduled); it only speeds up subsequent tasks.
func (s *simulation) straggleNode(id int32, factor, now float64) {
	old := s.flt.slow[id]
	s.flt.slow[id] = factor
	s.res.StragglerSlowdowns++
	n := &s.nodes[id]
	if n.busy && s.flt.fin[id] > now && s.dyn.run[id].task >= 0 && s.dyn.run[id].jidx >= 0 {
		if nf := now + (s.flt.fin[id]-now)*factor/old; nf > s.flt.fin[id] {
			s.flt.fin[id] = nf
		}
	}
}
