package sim

import (
	"bytes"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// The streaming pipeline's contract is equivalence: a run fed job-by-job
// from a Source must be indistinguishable from a run over the materialized
// trace — same report, byte for byte — with peak memory proportional to
// in-flight work instead of trace length. The tests in this file pin both
// halves: report equality across every source kind, and the memory bound
// (heap pin + zero-alloc steady state) that is the point of streaming.

func TestStreamedGeneratorMatchesMaterialized(t *testing.T) {
	gcfg := workload.GenConfig{NumJobs: 400, MeanInterArrival: 1, Seed: 3}
	tr := workload.Generate(workload.Google(), gcfg)
	for _, pol := range []string{"sparrow", "hawk", "centralized", "split"} {
		cfg := policy.Config{NumNodes: 2000, Policy: pol, Seed: 4}
		want := mustRun(t, tr, cfg)
		got, err := RunSource(workload.NewGeneratorSource(workload.Google(), gcfg), cfg)
		if err != nil {
			t.Fatalf("%s: RunSource: %v", pol, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streamed generator report differs from materialized run", pol)
		}
	}
}

func TestStreamedFileMatchesMaterialized(t *testing.T) {
	gcfg := workload.GenConfig{NumJobs: 300, MeanInterArrival: 1, Seed: 8}
	tr := workload.Generate(workload.Google(), gcfg)
	cfg := policy.Config{NumNodes: 2000, Policy: "hawk", Seed: 5}
	want := mustRun(t, tr, cfg)

	// Round-trip through the gzipped stream format: the float encoding is
	// exact (strconv 'g'/-1), so the decoded jobs — and therefore the
	// whole report — must match the in-memory run bit for bit.
	path := filepath.Join(t.TempDir(), "google.csv.gz")
	if err := workload.SaveSource(path, workload.NewGeneratorSource(workload.Google(), gcfg)); err != nil {
		t.Fatalf("SaveSource: %v", err)
	}
	src, err := workload.OpenSource(path)
	if err != nil {
		t.Fatalf("OpenSource: %v", err)
	}
	defer src.Close()
	got, err := RunSource(src, cfg)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("file-streamed report differs from materialized run")
	}
}

func TestDiscardedJobReportsAggregates(t *testing.T) {
	gcfg := workload.GenConfig{NumJobs: 500, MeanInterArrival: 1, Seed: 6}
	tr := workload.Generate(workload.Google(), gcfg)
	cfg := policy.Config{NumNodes: 2000, Policy: "hawk", Seed: 2}
	want := mustRun(t, tr, cfg)

	cfg.DiscardJobReports = true
	got, err := RunSource(workload.NewGeneratorSource(workload.Google(), gcfg), cfg)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if len(got.Jobs) != 0 {
		t.Fatalf("DiscardJobReports retained %d job reports", len(got.Jobs))
	}
	if got.Streamed == nil {
		t.Fatal("DiscardJobReports produced no streamed aggregates")
	}

	var short, long, trueLong int64
	for _, j := range want.Jobs {
		if j.Long {
			long++
		} else {
			short++
		}
		if j.TrueLong {
			trueLong++
		}
	}
	st := got.Streamed
	if st.ShortJobs != short || st.LongJobs != long {
		t.Errorf("class counts = %d short / %d long, want %d / %d",
			st.ShortJobs, st.LongJobs, short, long)
	}
	if st.TrueLongJobs != trueLong {
		t.Errorf("TrueLongJobs = %d, want %d", st.TrueLongJobs, trueLong)
	}
	// Both classes hold fewer samples than the reservoir capacity, so the
	// reservoirs are exact and streamed percentiles must equal the ones
	// computed from the retained Jobs slice.
	for _, isLong := range []bool{false, true} {
		for _, p := range []float64{50, 90, 99} {
			if g, w := got.Percentile(isLong, p), want.Percentile(isLong, p); g != w {
				t.Errorf("Percentile(%v, long=%v) = %v, want %v", p, isLong, g, w)
			}
		}
	}
	// The mechanism counters do not depend on report retention.
	if got.Events != want.Events || got.TasksExecuted != want.TasksExecuted ||
		got.ProbesSent != want.ProbesSent || got.Makespan != want.Makespan {
		t.Error("streamed run's scalar counters differ from materialized run")
	}
}

func TestJobSinkReceivesEveryJob(t *testing.T) {
	gcfg := workload.GenConfig{NumJobs: 300, MeanInterArrival: 1, Seed: 9}
	tr := workload.Generate(workload.Google(), gcfg)
	cfg := policy.Config{NumNodes: 2000, Policy: "hawk", Seed: 3}
	want := mustRun(t, tr, cfg)

	var sunk []policy.JobReport
	cfg.DiscardJobReports = true
	cfg.JobSink = func(j policy.JobReport) error {
		sunk = append(sunk, j)
		return nil
	}
	if _, err := RunSource(workload.NewGeneratorSource(workload.Google(), gcfg), cfg); err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if !reflect.DeepEqual(sunk, want.Jobs) {
		t.Errorf("sink received %d jobs that differ from the retained Jobs slice (want %d)",
			len(sunk), len(want.Jobs))
	}
}

func TestJobCSVSinkRoundTrip(t *testing.T) {
	gcfg := workload.GenConfig{NumJobs: 250, MeanInterArrival: 1, Seed: 12}
	tr := workload.Generate(workload.Google(), gcfg)
	cfg := policy.Config{NumNodes: 2000, Policy: "hawk", Seed: 6}
	want := mustRun(t, tr, cfg)

	var buf bytes.Buffer
	sink, err := policy.NewJobCSVSink(&buf)
	if err != nil {
		t.Fatalf("NewJobCSVSink: %v", err)
	}
	cfg.DiscardJobReports = true
	cfg.JobSink = sink.Sink
	if _, err := RunSource(workload.NewGeneratorSource(workload.Google(), gcfg), cfg); err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("sink close: %v", err)
	}
	jobs, err := policy.ReadResultsCSV(&buf)
	if err != nil {
		t.Fatalf("ReadResultsCSV: %v", err)
	}
	if !reflect.DeepEqual(jobs, want.Jobs) {
		t.Errorf("CSV round trip yielded %d jobs differing from the retained Jobs slice (want %d)",
			len(jobs), len(want.Jobs))
	}
}

func TestJobSinkErrorAbortsRun(t *testing.T) {
	gcfg := workload.GenConfig{NumJobs: 100, MeanInterArrival: 1, Seed: 2}
	cfg := policy.Config{NumNodes: 500, Policy: "hawk", Seed: 1}
	cfg.JobSink = func(policy.JobReport) error {
		return errSinkFull
	}
	_, err := RunSource(workload.NewGeneratorSource(workload.Google(), gcfg), cfg)
	if err == nil {
		t.Fatal("a failing job sink did not abort the run")
	}
}

var errSinkFull = &sinkErr{}

type sinkErr struct{}

func (*sinkErr) Error() string { return "sink full" }

// peakLiveHeap runs a streamed discard-reports simulation of jobs Google
// jobs and returns the largest post-GC live heap observed at eight points
// spread across the run. Sampling rides the job sink, so the measurement
// is in-band and deterministic.
func peakLiveHeap(t *testing.T, jobs int) uint64 {
	t.Helper()
	src := workload.NewGeneratorSource(workload.Google(), workload.GenConfig{
		NumJobs: jobs, MeanInterArrival: 5.75, Seed: 11,
	})
	stride := jobs / 8
	if stride < 1 {
		stride = 1
	}
	var peak uint64
	done := 0
	cfg := policy.Config{
		NumNodes: 6000, Policy: "hawk", Seed: 9,
		DiscardJobReports: true,
		JobSink: func(policy.JobReport) error {
			if done++; done%stride == 0 {
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
			return nil
		},
	}
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatalf("RunSource(%d jobs): %v", jobs, err)
	}
	if n := res.Streamed.ShortJobs + res.Streamed.LongJobs; n != int64(jobs) {
		t.Fatalf("run completed %d jobs, want %d", n, jobs)
	}
	return peak
}

// TestStreamedRunHeapStaysBounded is the pin on the tentpole property:
// peak live heap of a streamed run is O(in-flight jobs + cluster), not
// O(trace). A 10× longer trace at the same offered load must stay within
// 2× of the short run's peak (the slack absorbs GC timing and the
// allocator's size-class rounding). Grows with trace length — whether from
// retained job reports, per-job wait slices, a materialized trace, or an
// unrecycled arena — and this fails immediately.
func TestStreamedRunHeapStaysBounded(t *testing.T) {
	small, big := 2000, 20000
	if !testing.Short() {
		big = 80000 // ≈2.2M tasks, the full-Google-trace scale
	}
	peakSmall := peakLiveHeap(t, small)
	peakBig := peakLiveHeap(t, big)
	t.Logf("peak live heap: %d jobs → %.1f MiB, %d jobs → %.1f MiB",
		small, float64(peakSmall)/(1<<20), big, float64(peakBig)/(1<<20))
	const slack = 8 << 20
	if peakBig > 2*peakSmall+slack {
		t.Errorf("peak live heap grew from %d to %d bytes (%.1f×) across a %d× longer trace; streaming should pin it",
			peakSmall, peakBig, float64(peakBig)/float64(peakSmall), big/small)
	}
}

// loopSource yields fixed-shape jobs at a fixed cadence and pools the
// structs it handed out, like GeneratorSource but with constant task
// counts — so a recycled Durations slice always has capacity for the next
// job and the steady-state decode loop provably allocates nothing.
type loopSource struct {
	meta workload.Meta
	durs []float64
	gap  float64
	next int
	free []*workload.Job
}

func newLoopSource(jobs int, gap float64, durs ...float64) *loopSource {
	return &loopSource{
		meta: workload.Meta{
			Name: "loop", Cutoff: 1000, ShortPartitionFraction: 0.2,
			NumJobs: jobs, MaxTasks: len(durs),
			TotalTasks: int64(jobs) * int64(len(durs)), Sorted: true,
		},
		durs: durs,
		gap:  gap,
	}
}

func (l *loopSource) Meta() workload.Meta { return l.meta }

func (l *loopSource) Next() (*workload.Job, bool) {
	if l.next >= l.meta.NumJobs {
		return nil, false
	}
	var j *workload.Job
	if n := len(l.free); n > 0 {
		j, l.free = l.free[n-1], l.free[:n-1]
	} else {
		j = &workload.Job{Durations: make([]float64, 0, len(l.durs))}
	}
	j.ID = l.next
	j.SubmitTime = float64(l.next) * l.gap
	j.Durations = append(j.Durations[:0], l.durs...)
	l.next++
	return j, true
}

func (l *loopSource) Recycle(j *workload.Job) { l.free = append(l.free, j) }

// steadyStateSimSource is steadyStateSim for a streamed run: same warm-up
// contract, but the simulation pulls from src with job reports discarded,
// so the only per-job state is the recycled arena slot and the
// preallocated reservoirs.
func steadyStateSimSource(t *testing.T, src workload.Source, cfg policy.Config, warm int) *simulation {
	t.Helper()
	cfg.UtilizationInterval = 1e18
	cfg.DiscardJobReports = true
	s, err := newSimulationSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warm; i++ {
		if !s.eng.Step() {
			t.Fatalf("simulation drained after %d warm-up events — enlarge the source", i)
		}
	}
	return s
}

// TestStreamingSteadyStateZeroAllocs extends the TestSteadyStateZeroAllocs
// pin to the full streaming loop: decode (source Next), submit-chain,
// placement, completion, streamed aggregation, slot free, and job recycle.
// Once the free lists and reservoirs are warm, none of it may allocate.
func TestStreamingSteadyStateZeroAllocs(t *testing.T) {
	src := newLoopSource(200000, 2.5, 200, 200, 200, 200)
	s := steadyStateSimSource(t, src, policy.Config{NumNodes: 400, Policy: "hawk", Seed: 5}, 20000)
	measureSteadySteps(t, s, 30000)
	if int(s.submitted) <= len(s.jobs) {
		t.Fatalf("submitted %d jobs into an arena of %d slots — recycling never kicked in", s.submitted, len(s.jobs))
	}
	if len(src.free) == 0 && len(s.freeSlots) == 0 {
		t.Fatal("neither the source pool nor the slot free list was ever used")
	}
}
