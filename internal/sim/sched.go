package sim

import (
	"repro/internal/core"
	"repro/internal/policy"
)

// The concurrent multi-scheduler model (§4.10): N distributed schedulers
// share one cluster. Each scheduler owns an independent local copy of the
// centralized queue and a *stale snapshot* of the cluster view, refreshed on
// a configurable cadence; it places work optimistically against that
// snapshot and resolves collisions with the shared truth through a
// claim/commit protocol (detect-and-retry with bounded backoff, Omega
// style). Jobs hash-partition across the live schedulers by job id and
// re-hash when their scheduler fails; scheduler fail/recover rides the same
// scripted-churn machinery as node membership.
//
// The whole model hangs off simulation.ms, nil unless Config.Schedulers is
// set — every hot path guards on that one pointer, exactly like s.dyn, so a
// single-scheduler run never pays for it. The simulation stays
// single-threaded and deterministic: "concurrent" schedulers interleave on
// the virtual clock, conflicts arise from snapshot staleness rather than
// from data races, and all schedulers draw from the run's one seeded stream.

// multiSched is the root of the multi-scheduler state.
type multiSched struct {
	spec   policy.SchedulerSpec
	scheds []schedState
	// live lists the live scheduler ids in ascending order; jobs
	// hash-partition over it (pickOwner).
	live []int32
	// pendingJobs parks whole jobs submitted while no scheduler was live;
	// pendingCentral parks single central tasks, pendingProbes jobs whose
	// probe re-send found no scheduler, pendingReplies probe round trips
	// whose scheduler died with no survivor. All drain on the next
	// scheduler recovery.
	pendingJobs    []int32
	pendingCentral []centralRef
	pendingProbes  []int32
	pendingReplies []replyRef
}

// schedState is one distributed scheduler.
type schedState struct {
	// local is this scheduler's mirror of the shared central queue (nil
	// when the policy has no centralized component). It is synced from the
	// truth on each snapshot refresh and tracks the scheduler's *own*
	// placements in between — other schedulers' commits stay invisible
	// until the next refresh, which is precisely the staleness the model
	// exists to measure.
	local *core.CentralQueue
	// view is the scheduler's cluster snapshot for probe sampling and pool
	// sizing. On a static-membership run it aliases the shared truth view
	// (there is nothing stale to see, and sampling stays on the bit-exact
	// static fast path); under node churn it is an owned copy refreshed by
	// SnapshotInto.
	view *core.ClusterView
	// snapVer is the shared claim-version at the last refresh: claims no
	// newer than it were visible in this snapshot, so a foreign claim
	// above it is a conflict (core.ClusterView.Claim).
	snapVer uint64
	snapAt  float64 // time of the last refresh (staleness accounting)
	// retryQ is the FIFO of conflicted placements awaiting their backoff;
	// popping advances retryHead (rewound when drained) so the backing
	// array is reused, mirroring node.queue.
	retryQ    []schedRetry
	retryHead int32
	// placed counts placements since the last snapshot refresh; the
	// refresh chain (snapRefreshTick) uses it as an activity gate and
	// disarms after an idle interval so a quiescent run can drain.
	placed int64
	// epoch counts the scheduler's incarnations, bumped on failure, so
	// refresh-chain and retry events from before a failure are
	// recognizably stale — the node-epoch trick applied to schedulers.
	epoch uint8
	alive bool
	armed bool // a refresh-chain event is pending
}

// schedRetry is one conflicted placement waiting out its backoff.
type schedRetry struct {
	jidx, tidx int32
	attempt    int8
}

// replyRef is a parked probe round trip: node held its slot for a task
// request whose scheduler died with no live survivor. gen pins the node's
// incarnation so a node failure while parked invalidates the reply.
type replyRef struct {
	node, jidx int32
	gen        uint8
}

// initMultiSched builds the per-scheduler state: every scheduler starts
// live, with a fresh (accurate) snapshot at t=0.
func (s *simulation) initMultiSched() {
	spec := *s.cfg.Schedulers
	s.ms = &multiSched{
		spec:   spec,
		scheds: make([]schedState, spec.Count),
		live:   make([]int32, 0, spec.Count),
	}
	s.view.EnableClaims()
	pool := s.pol.CentralPool()
	for i := range s.ms.scheds {
		sd := &s.ms.scheds[i]
		sd.alive = true
		sd.view = s.view
		if s.dyn != nil {
			sd.view = s.view.SnapshotInto(nil)
		}
		if s.central != nil {
			sd.local = core.NewCentralQueue(pool.IDs(s.part))
		}
		s.ms.live = append(s.ms.live, int32(i))
	}
}

// pickOwner hash-partitions a job id over the live schedulers, or returns
// -1 when none is live. Fibonacci hashing rather than a modulo of the raw
// id: trace ids are often sequential, and a multiplicative hash spreads
// them evenly across any scheduler count without consuming randomness.
//
//hawk:hotpath
func (m *multiSched) pickOwner(jobID int) int32 {
	if len(m.live) == 0 {
		return -1
	}
	h := uint64(uint32(jobID)) * 0x9e3779b97f4a7c15
	return m.live[(h>>33)%uint64(len(m.live))]
}

// removeLive deletes id from the sorted live list.
func (m *multiSched) removeLive(id int32) {
	for i, v := range m.live {
		if v == id {
			m.live = append(m.live[:i], m.live[i+1:]...)
			return
		}
	}
}

// insertLive inserts id into the sorted live list.
func (m *multiSched) insertLive(id int32) {
	i := 0
	for i < len(m.live) && m.live[i] < id {
		i++
	}
	m.live = append(m.live, 0)
	copy(m.live[i+1:], m.live[i:])
	m.live[i] = id
}

// mirrorTaskStarted reflects a task start into the placing scheduler's
// local queue (no-op if that scheduler is down — its mirror resyncs from
// the truth on recovery anyway).
//
//hawk:hotpath
func (m *multiSched) mirrorTaskStarted(k uint8, nodeID int, now, estimate, dur float64) {
	if sd := &m.scheds[k]; sd.alive {
		sd.local.TaskStarted(nodeID, now, estimate, dur)
	}
}

// mirrorTaskFinished reflects a task completion into the placing
// scheduler's local queue.
//
//hawk:hotpath
func (m *multiSched) mirrorTaskFinished(k uint8, nodeID int, now float64) {
	if sd := &m.scheds[k]; sd.alive {
		sd.local.TaskFinished(nodeID, now)
	}
}

// refreshSched brings scheduler k's snapshot up to the shared truth: the
// claim version, the central-queue mirror, and (under node churn) the
// cluster-view copy.
func (s *simulation) refreshSched(k int32, now float64) {
	sd := &s.ms.scheds[k]
	sd.snapVer = s.view.ClaimVersion()
	sd.snapAt = now
	s.res.SnapshotRefreshes++
	if sd.local != nil {
		sd.local.SyncFrom(s.central)
	}
	if sd.view != s.view {
		s.view.SnapshotInto(sd.view)
	}
}

// touchSched records placement activity for scheduler k and arms its
// periodic snapshot-refresh chain if dormant. A scheduler waking from
// dormancy with a snapshot older than the refresh interval catches up
// immediately — it would have refreshed in the meantime had the chain kept
// running.
//
//hawk:hotpath
func (s *simulation) touchSched(k uint8) {
	sd := &s.ms.scheds[k]
	sd.placed++
	if sd.armed {
		return
	}
	sd.armed = true
	now := s.eng.Now()
	if now-sd.snapAt >= s.ms.spec.SnapshotInterval {
		s.refreshSched(int32(k), now)
	}
	s.eng.After(s.ms.spec.SnapshotInterval, simEvent{kind: evSnapRefresh, ref: int32(k), gen: sd.epoch})
}

// snapRefreshTick is the evSnapRefresh handler: refresh scheduler k's
// snapshot and re-arm the chain — unless the chain is stale (scheduler
// failed since), the run is over, or the scheduler placed nothing in the
// last interval (dormant; touchSched re-arms it on the next placement).
// The dormancy gate is what lets a stuck scenario drain: an armed chain
// would keep the event heap non-empty and the utilization sampler ticking
// forever instead of reporting the deadlock.
func (s *simulation) snapRefreshTick(k int32, gen uint8, now float64) {
	sd := &s.ms.scheds[k]
	if gen != sd.epoch || !sd.alive {
		return // chain from a previous incarnation
	}
	if s.jobsDone >= s.totalJobs || sd.placed == 0 {
		sd.armed = false
		return
	}
	sd.placed = 0
	s.refreshSched(k, now)
	s.eng.After(s.ms.spec.SnapshotInterval, simEvent{kind: evSnapRefresh, ref: k, gen: sd.epoch})
}

// msAssignOwner picks (or re-picks) the owning scheduler for a routed job,
// parking the job when no scheduler is live. Called on every routeJob so a
// parked-and-released job re-hashes over the current live set.
//
//hawk:hotpath
func (s *simulation) msAssignOwner(idx int32) bool {
	owner := s.ms.pickOwner(s.jobs[idx].id)
	if owner < 0 {
		s.ms.pendingJobs = append(s.ms.pendingJobs, idx)
		return false
	}
	s.jobs[idx].owner = uint8(owner)
	s.touchSched(uint8(owner))
	return true
}

// ensureOwner verifies the job's owning scheduler is live, re-hashing to a
// survivor if it failed; false means no scheduler is live at all.
func (s *simulation) ensureOwner(jidx int32) bool {
	js := &s.jobs[jidx]
	if s.ms.scheds[js.owner].alive {
		return true
	}
	owner := s.ms.pickOwner(s.jobs[jidx].id)
	if owner < 0 {
		return false
	}
	js.owner = uint8(owner)
	s.res.SchedulerReassigned++
	return true
}

// placeCentralOwned places one central task via the job's owning scheduler,
// re-hashing a dead owner first and parking the task when no scheduler is
// live. The multi-scheduler counterpart of assignCentralTask.
func (s *simulation) placeCentralOwned(jidx, tidx int32) {
	if !s.ensureOwner(jidx) {
		s.ms.pendingCentral = append(s.ms.pendingCentral, centralRef{jidx: jidx, tidx: tidx})
		return
	}
	s.placeCentral(jidx, tidx, 0)
}

// placeCentral runs one optimistic placement by the job's owning scheduler:
// a §3.7 min-waiting assignment against the scheduler's *stale* local
// queue, then a claim against the shared truth. A won claim commits; a
// lost claim (another scheduler claimed the node since this scheduler's
// snapshot, or the node died unseen) retries after a backoff, and a
// placement that exhausts its retries forces a snapshot refresh and places
// against fresh state, which cannot conflict. The caller has checked
// centralUnavailable.
//
//hawk:hotpath
func (s *simulation) placeCentral(jidx, tidx int32, attempt int8) {
	k := s.jobs[jidx].owner
	sd := &s.ms.scheds[k]
	s.touchSched(k)
	now := s.eng.Now()
	if sd.local.Len() == 0 {
		// The mirror last synced while the truth had no live server; the
		// truth has some now (the caller checked), so catch up first.
		s.refreshSched(int32(k), now)
	}
	estimate := s.jobs[jidx].estimate
	nodeID, _ := sd.local.Assign(now, estimate)
	if s.view.Claim(nodeID, int32(k), sd.snapVer) {
		s.commitCentral(k, nodeID, jidx, tidx, now)
		return
	}
	// Conflict. The local Assign already bumped the chosen server's
	// mirrored load, which is exactly what we want: the retry will pick a
	// different server, and the phantom load washes out at the next sync.
	s.res.PlacementConflicts++
	if int(attempt) >= s.ms.spec.MaxRetries {
		s.refreshSched(int32(k), now)
		nodeID, _ = sd.local.Assign(now, estimate)
		if !s.view.Claim(nodeID, int32(k), sd.snapVer) {
			panic("sim: claim conflict against a fresh snapshot")
		}
		s.commitCentral(k, nodeID, jidx, tidx, now)
		return
	}
	s.res.ConflictRetries++
	sd.retryQ = append(sd.retryQ, schedRetry{jidx: jidx, tidx: tidx, attempt: attempt + 1})
	s.eng.After(s.ms.spec.RetryBackoff, simEvent{kind: evSchedRetry, ref: int32(k), gen: sd.epoch})
}

// commitCentral publishes a won placement into the shared truth queue and
// dispatches the task, accounting how stale the deciding snapshot was.
//
//hawk:hotpath
func (s *simulation) commitCentral(k uint8, nodeID int, jidx, tidx int32, now float64) {
	sd := &s.ms.scheds[k]
	s.central.AddLoad(nodeID, now, s.jobs[jidx].estimate)
	s.res.CentralAssigns++
	s.res.SnapshotStalenessSeconds += now - sd.snapAt
	if s.flt != nil {
		s.sendAssign(int32(nodeID), jidx, tidx, k, true)
		return
	}
	s.eng.After(s.cfg.NetworkDelay, simEvent{
		kind: evTaskArrive, sched: k, ref: int32(nodeID), jidx: jidx, aux: tidx,
	})
}

// schedRetryTick is the evSchedRetry handler: the oldest conflicted
// placement of scheduler k has waited out its backoff. Each pushed retry
// schedules exactly one event, so the FIFO and the events pair up; a
// failure drains the queue and bumps the epoch, so leftover events are
// recognizably stale.
func (s *simulation) schedRetryTick(k int32, gen uint8) {
	sd := &s.ms.scheds[k]
	if gen != sd.epoch || !sd.alive {
		return // retries were re-assigned when the scheduler failed
	}
	r := sd.retryQ[sd.retryHead]
	sd.retryHead++
	if int(sd.retryHead) == len(sd.retryQ) {
		sd.retryQ = sd.retryQ[:0]
		sd.retryHead = 0
	}
	if s.centralUnavailable() {
		s.parkCentral(r.jidx, r.tidx)
		return
	}
	s.placeCentral(r.jidx, r.tidx, r.attempt)
}

// msReplyReady gates a probe reply on the owning scheduler being live: a
// reply is the scheduler's answer, so a dead owner means the answer was
// lost. The node re-requests from the job's re-hashed owner (one extra
// round trip), or parks until a scheduler recovers; either way the node's
// slot stays held, like any probe awaiting its reply.
func (s *simulation) msReplyReady(ev simEvent) bool {
	js := &s.jobs[ev.jidx]
	if s.ms.scheds[js.owner].alive {
		return true
	}
	owner := s.ms.pickOwner(s.jobs[ev.jidx].id)
	if owner < 0 {
		s.ms.pendingReplies = append(s.ms.pendingReplies, replyRef{node: ev.ref, jidx: ev.jidx, gen: ev.gen})
		return false
	}
	js.owner = uint8(owner)
	s.res.SchedulerReassigned++
	s.res.ProbesLost++
	if s.flt != nil {
		s.sendReply(ev.ref, ev.gen, ev.jidx, 0)
		return false
	}
	s.eng.After(2*s.cfg.NetworkDelay, simEvent{kind: evProbeReply, gen: ev.gen, ref: ev.ref, jidx: ev.jidx})
	return false
}

// failScheduler applies a scripted scheduler failure: the scheduler leaves
// the live set, its pending conflicted placements re-hash to the survivors
// (or park), and its refresh chain and retry events go stale via the epoch
// bump. Jobs it owned re-hash lazily, at their next interaction
// (ensureOwner / msReplyReady). Failing a dead scheduler is a no-op.
func (s *simulation) failScheduler(id int32) {
	sd := &s.ms.scheds[id]
	if !sd.alive {
		return
	}
	sd.alive = false
	sd.epoch++
	sd.armed = false
	sd.placed = 0
	s.res.SchedulerFailures++
	s.ms.removeLive(id)
	retries := sd.retryQ[sd.retryHead:]
	for _, r := range retries {
		if s.centralUnavailable() {
			s.parkCentral(r.jidx, r.tidx)
			continue
		}
		s.placeCentralOwned(r.jidx, r.tidx)
	}
	sd.retryQ = sd.retryQ[:0]
	sd.retryHead = 0
}

// recoverScheduler returns a failed scheduler to service with a fresh
// snapshot and releases everything that waited for a live scheduler.
// Recovering a live scheduler is a no-op.
func (s *simulation) recoverScheduler(id int32, now float64) {
	sd := &s.ms.scheds[id]
	if sd.alive {
		return
	}
	sd.alive = true
	s.res.SchedulerRecoveries++
	s.ms.insertLive(id)
	s.refreshSched(id, now)
	sd.placed = 0
	sd.armed = true
	s.eng.After(s.ms.spec.SnapshotInterval, simEvent{kind: evSnapRefresh, ref: id, gen: sd.epoch})
	if jobs := s.ms.pendingJobs; len(jobs) > 0 {
		s.ms.pendingJobs = nil
		for _, jidx := range jobs {
			s.routeJob(jidx)
		}
	}
	if tasks := s.ms.pendingCentral; len(tasks) > 0 {
		s.ms.pendingCentral = nil
		for _, t := range tasks {
			s.centralReassign(t.jidx, t.tidx)
		}
	}
	if probes := s.ms.pendingProbes; len(probes) > 0 {
		s.ms.pendingProbes = nil
		for _, jidx := range probes {
			s.resendProbe(jidx)
		}
	}
	if replies := s.ms.pendingReplies; len(replies) > 0 {
		s.ms.pendingReplies = nil
		for _, r := range replies {
			if s.dyn != nil && s.dyn.epoch[r.node] != r.gen {
				continue // the node failed while parked; its probe was re-sent then
			}
			if s.flt != nil {
				s.sendReply(r.node, r.gen, r.jidx, 0)
				continue
			}
			s.eng.After(2*s.cfg.NetworkDelay, simEvent{kind: evProbeReply, gen: r.gen, ref: r.node, jidx: r.jidx})
		}
	}
}
