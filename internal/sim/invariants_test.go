package sim

import (
	"math/rand"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// randomTrace builds a random but structurally valid heterogeneous trace.
func randomTrace(rng *rand.Rand, jobs int) *workload.Trace {
	tr := &workload.Trace{
		Name:                   "random",
		Cutoff:                 500,
		ShortPartitionFraction: 0.2,
	}
	submit := 0.0
	for i := 0; i < jobs; i++ {
		submit += rng.Float64() * 10
		var durs []float64
		if rng.Float64() < 0.1 { // long job
			n := rng.Intn(20) + 1
			for k := 0; k < n; k++ {
				durs = append(durs, 500+rng.Float64()*3000)
			}
		} else {
			n := rng.Intn(10) + 1
			for k := 0; k < n; k++ {
				durs = append(durs, 1+rng.Float64()*200)
			}
		}
		tr.Jobs = append(tr.Jobs, &workload.Job{ID: i, SubmitTime: submit, Durations: durs})
	}
	return tr
}

// Invariants that must hold for every scheduler on every trace:
//   - every job completes, exactly once, with a non-negative runtime
//   - runtime >= the job's longest task duration (tasks never shrink)
//   - the number of executed tasks equals the trace's task count
//   - probe accounting balances: probes = tasks handed out + cancels for
//     probe-scheduled jobs
func TestSchedulerInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		tr := randomTrace(rng, 150)
		maxDur := map[int]float64{}
		totalTasks := 0
		for _, j := range tr.Jobs {
			m := 0.0
			for _, d := range j.Durations {
				if d > m {
					m = d
				}
			}
			maxDur[j.ID] = m
			totalTasks += j.NumTasks()
		}
		for _, pol := range []string{"sparrow", "hawk", "centralized", "split"} {
			res, err := Run(tr, policy.Config{NumNodes: 100, Policy: pol, Seed: int64(trial)})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, pol, err)
			}
			if len(res.Jobs) != tr.Len() {
				t.Fatalf("trial %d %v: %d results for %d jobs", trial, pol, len(res.Jobs), tr.Len())
			}
			seen := map[int]bool{}
			for _, j := range res.Jobs {
				if seen[j.ID] {
					t.Fatalf("trial %d %v: job %d completed twice", trial, pol, j.ID)
				}
				seen[j.ID] = true
				if j.Runtime < maxDur[j.ID]-1e-9 {
					t.Fatalf("trial %d %v: job %d runtime %v < max task duration %v",
						trial, pol, j.ID, j.Runtime, maxDur[j.ID])
				}
			}
			if res.TasksExecuted != int64(totalTasks) {
				t.Fatalf("trial %d %v: executed %d of %d tasks", trial, pol, res.TasksExecuted, totalTasks)
			}
			if res.ProbesSent > 0 {
				handedOut := res.ProbesSent - res.Cancels
				if handedOut < 0 || handedOut > int64(totalTasks) {
					t.Fatalf("trial %d %v: probe accounting broken: %d probes, %d cancels",
						trial, pol, res.ProbesSent, res.Cancels)
				}
			}
			if res.Makespan < tr.MakespanLowerBound() {
				t.Fatalf("trial %d %v: makespan %v before last submission %v",
					trial, pol, res.Makespan, tr.MakespanLowerBound())
			}
		}
	}
}

// Stealing must never lose or duplicate work: totals already checked above;
// here we additionally verify steal counters are consistent.
func TestStealCountersConsistent(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 400, MeanInterArrival: 0.5, Seed: 2})
	res, err := Run(tr, policy.Config{NumNodes: 1500, Policy: "hawk", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.StealSuccesses > res.StealAttempts {
		t.Fatalf("successes %d > attempts %d", res.StealSuccesses, res.StealAttempts)
	}
	if res.EntriesStolen < res.StealSuccesses {
		t.Fatalf("every successful steal moves at least one entry: %d < %d",
			res.EntriesStolen, res.StealSuccesses)
	}
	if res.StealContacts < res.StealAttempts {
		t.Fatalf("every attempt contacts at least one node: %d < %d",
			res.StealContacts, res.StealAttempts)
	}
}

// Ablations behave sanely: disabling stealing reports zero steals, and
// disabling the partition uses the whole cluster for long jobs.
func TestAblationFlags(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 300, MeanInterArrival: 0.5, Seed: 5})
	noSteal, err := Run(tr, policy.Config{NumNodes: 1500, Policy: "hawk", Seed: 1, DisableStealing: true})
	if err != nil {
		t.Fatal(err)
	}
	if noSteal.StealAttempts != 0 || noSteal.StealSuccesses != 0 {
		t.Fatal("DisableStealing still stole")
	}
	noCentral, err := Run(tr, policy.Config{NumNodes: 1500, Policy: "hawk", Seed: 1, DisableCentral: true})
	if err != nil {
		t.Fatal(err)
	}
	if noCentral.CentralAssigns != 0 {
		t.Fatal("DisableCentral still assigned centrally")
	}
	full, err := Run(tr, policy.Config{NumNodes: 1500, Policy: "hawk", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.CentralAssigns == 0 {
		t.Fatal("full Hawk should centrally assign long tasks")
	}
}

// A cluster under extreme overload must still complete all jobs (queues
// drain after submissions stop) — no deadlock, no lost work.
func TestOverloadDrains(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 150, MeanInterArrival: 0.05, Seed: 6})
	for _, pol := range []string{"sparrow", "hawk", "centralized", "split"} {
		res, err := Run(tr, policy.Config{NumNodes: 120, Policy: pol, Seed: 1})
		if err != nil {
			// Probe feasibility may legitimately reject wide jobs on the
			// tiny cluster; cap and retry.
			capped := tr.CapTasks(20)
			res, err = Run(capped, policy.Config{NumNodes: 120, Policy: pol, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", pol, err)
			}
		}
		if len(res.Jobs) == 0 {
			t.Fatalf("%s: no jobs completed", pol)
		}
	}
}

// The empty trace runs and produces an empty result.
func TestEmptyTrace(t *testing.T) {
	tr := &workload.Trace{Name: "empty", Cutoff: 100, ShortPartitionFraction: 0.1}
	res, err := Run(tr, policy.Config{NumNodes: 10, Policy: "hawk", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 0 || res.TasksExecuted != 0 {
		t.Fatalf("empty trace produced work: %+v", res)
	}
}

// One-node cluster: everything serializes but still completes.
func TestOneNodeCluster(t *testing.T) {
	tr := &workload.Trace{
		Name:                   "one",
		Cutoff:                 100,
		ShortPartitionFraction: 0.1,
		Jobs: []*workload.Job{
			{ID: 1, SubmitTime: 0, Durations: []float64{10}},
			{ID: 2, SubmitTime: 0, Durations: []float64{20}},
			{ID: 3, SubmitTime: 0, Durations: []float64{500}},
		},
	}
	for _, pol := range []string{"sparrow", "centralized"} {
		res, err := Run(tr, policy.Config{NumNodes: 1, Policy: pol, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.TasksExecuted != 3 {
			t.Fatalf("%s: executed %d tasks", pol, res.TasksExecuted)
		}
		// All 530 task-seconds serialize on the single node.
		if res.Makespan < 530 {
			t.Fatalf("%s: makespan %v < 530", pol, res.Makespan)
		}
	}
}

// Random-position stealing preserves the same global invariants as the
// Figure 3 rule: no lost or duplicated work.
func TestRandomPositionStealingInvariants(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 300, MeanInterArrival: 0.5, Seed: 11})
	wantTasks := 0
	for _, j := range tr.Jobs {
		wantTasks += j.NumTasks()
	}
	res, err := Run(tr, policy.Config{NumNodes: 1500, Policy: "hawk", Seed: 2, StealRandomPositions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != int64(wantTasks) {
		t.Fatalf("executed %d tasks, want %d", res.TasksExecuted, wantTasks)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("%d results for %d jobs", len(res.Jobs), tr.Len())
	}
	if res.StealSuccesses == 0 {
		t.Fatal("expected steals under load")
	}
}
