// Package sim implements the trace-driven discrete-event cluster simulator
// used for the paper's evaluation (§4.1): single-slot FIFO nodes, 0.5 ms
// network delay, Sparrow batch sampling, Hawk's hybrid scheduling with
// partitioning and randomized stealing, a fully centralized baseline, and
// the split-cluster baseline — plus the three Hawk ablations of Figure 7.
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Mode selects the scheduler under simulation.
type Mode int

const (
	// ModeSparrow is the fully distributed baseline: batch sampling with
	// ProbeRatio probes per task over the entire cluster for all jobs.
	ModeSparrow Mode = iota
	// ModeHawk is the paper's hybrid scheduler: centralized long jobs in
	// the general partition, distributed short jobs over the whole
	// cluster, randomized work stealing.
	ModeHawk
	// ModeCentralized schedules all jobs with the §3.7 centralized
	// algorithm over the whole cluster (no partition, no stealing).
	ModeCentralized
	// ModeSplit is the §4.6 baseline: a short partition running only
	// short jobs (distributed) and a long partition running only long
	// jobs (centralized); no overlap, no stealing.
	ModeSplit
)

// String returns the mode name used in reports.
func (m Mode) String() string {
	switch m {
	case ModeSparrow:
		return "sparrow"
	case ModeHawk:
		return "hawk"
	case ModeCentralized:
		return "centralized"
	case ModeSplit:
		return "split"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes one simulation run. Zero values select the paper's
// defaults where meaningful (see field comments).
type Config struct {
	// NumNodes is the cluster size; required (> 0). Each node has
	// SlotsPerNode slots, each served by its own FIFO queue (§4.1).
	NumNodes int
	// SlotsPerNode expands every node into this many independently
	// queued slots (default 1). The paper notes that one-slot nodes are
	// "analogous to having multi-slot nodes with each slot served by a
	// different queue" (§4.1); this knob makes the analogy executable:
	// the simulation runs NumNodes*SlotsPerNode single-slot queues.
	SlotsPerNode int
	// Mode selects the scheduler (default ModeSparrow).
	Mode Mode
	// Cutoff is the long/short classification threshold in seconds of
	// estimated task runtime. Zero means "use the trace default".
	Cutoff float64
	// ShortPartitionFraction is the fraction of nodes reserved for short
	// tasks. Negative means "use the trace default". Ignored by
	// ModeSparrow and ModeCentralized.
	ShortPartitionFraction float64
	// ProbeRatio is the batch-sampling probes-per-task ratio (default 2).
	ProbeRatio int
	// StealCap bounds the random nodes contacted per steal attempt
	// (default 10). Only ModeHawk steals.
	StealCap int
	// DisableStealing turns off work stealing (Figure 7 ablation).
	DisableStealing bool
	// StealRandomPositions replaces Figure 3's consecutive-group rule
	// with stealing the same number of short entries from random queue
	// positions — the alternative the paper argues against in §3.6.
	// Ablation only; off by default.
	StealRandomPositions bool
	// DisablePartition makes the general partition span the whole
	// cluster (Figure 7 ablation).
	DisablePartition bool
	// DisableCentral schedules long jobs with distributed probing over
	// the general partition instead of centrally (Figure 7 ablation).
	DisableCentral bool
	// NetworkDelay is the one-way message delay in seconds (default
	// 0.5 ms, §4.1).
	NetworkDelay float64
	// MisestimateLo/Hi define the uniform mis-estimation factor range of
	// §4.8. Both zero (or both one) means exact estimates.
	MisestimateLo, MisestimateHi float64
	// Seed drives all randomness (probe placement, steal victims,
	// mis-estimation draws). Equal seeds give identical runs.
	Seed int64
	// UtilizationInterval is the utilization sampling period in seconds
	// (default 100, §2.3/§4.2).
	UtilizationInterval float64
}

func (c Config) withDefaults(t *workload.Trace) (Config, error) {
	if c.NumNodes <= 0 {
		return c, fmt.Errorf("sim: NumNodes must be positive, got %d", c.NumNodes)
	}
	if c.SlotsPerNode < 0 {
		return c, fmt.Errorf("sim: SlotsPerNode must be non-negative, got %d", c.SlotsPerNode)
	}
	if c.SlotsPerNode == 0 {
		c.SlotsPerNode = 1
	}
	c.NumNodes *= c.SlotsPerNode
	if c.Cutoff == 0 {
		c.Cutoff = t.Cutoff
	}
	if c.Cutoff <= 0 {
		return c, fmt.Errorf("sim: cutoff must be positive, got %g", c.Cutoff)
	}
	if c.ShortPartitionFraction < 0 || c.ShortPartitionFraction == 0 {
		c.ShortPartitionFraction = t.ShortPartitionFraction
	}
	if c.ProbeRatio <= 0 {
		c.ProbeRatio = core.DefaultProbeRatio
	}
	if c.StealCap <= 0 {
		c.StealCap = core.DefaultStealCap
	}
	if c.NetworkDelay <= 0 {
		c.NetworkDelay = core.DefaultNetworkDelay
	}
	if c.UtilizationInterval <= 0 {
		c.UtilizationInterval = 100
	}
	return c, nil
}

// JobResult records the outcome for one job.
type JobResult struct {
	ID         int
	SubmitTime float64
	Runtime    float64 // completion of last task − submission
	Tasks      int
	// Long is the scheduler's classification (with mis-estimation, if
	// configured); TrueLong is the classification under exact estimates,
	// used by Figure 14's reporting.
	Long     bool
	TrueLong bool
	Estimate float64
}

// Result aggregates one run's outputs.
type Result struct {
	Mode     Mode
	Jobs     []JobResult
	Makespan float64
	// Utilization is the 100 s-sampled fraction of busy nodes.
	Utilization stats.UtilizationSeries

	// Mechanism counters.
	ProbesSent     int
	Cancels        int
	TasksExecuted  int
	StealAttempts  int // idle transitions that tried to steal
	StealContacts  int // victim nodes contacted
	StealSuccesses int // attempts that stole a group
	EntriesStolen  int // queue entries moved by stealing
	CentralAssigns int
	Events         uint64

	// Per-entry queueing waits (time from arrival at a node to the slot
	// opening), split by the owning job's class. Diagnostics for the
	// head-of-line-blocking analyses.
	ShortEntryWaits []float64
	LongEntryWaits  []float64
}

// runtimes returns per-class runtimes selected by sel.
func (r *Result) runtimes(sel func(JobResult) bool) []float64 {
	out := make([]float64, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if sel(j) {
			out = append(out, j.Runtime)
		}
	}
	return out
}

// ShortRuntimes returns runtimes of jobs the scheduler classified short.
func (r *Result) ShortRuntimes() []float64 {
	return r.runtimes(func(j JobResult) bool { return !j.Long })
}

// LongRuntimes returns runtimes of jobs the scheduler classified long.
func (r *Result) LongRuntimes() []float64 {
	return r.runtimes(func(j JobResult) bool { return j.Long })
}

// TrueShortRuntimes returns runtimes of jobs that are short under exact
// estimates (regardless of how mis-estimation classified them).
func (r *Result) TrueShortRuntimes() []float64 {
	return r.runtimes(func(j JobResult) bool { return !j.TrueLong })
}

// TrueLongRuntimes returns runtimes of jobs that are long under exact
// estimates.
func (r *Result) TrueLongRuntimes() []float64 {
	return r.runtimes(func(j JobResult) bool { return j.TrueLong })
}

// RuntimesByID returns a job-id → runtime map for the class selected by
// long (using the true classification so paired comparisons across
// schedulers and mis-estimation settings align).
func (r *Result) RuntimesByID(long bool) map[int]float64 {
	out := make(map[int]float64)
	for _, j := range r.Jobs {
		if j.TrueLong == long {
			out[j.ID] = j.Runtime
		}
	}
	return out
}

// Percentile returns the p-th percentile runtime for the class.
func (r *Result) Percentile(long bool, p float64) float64 {
	if long {
		return stats.Percentile(r.LongRuntimes(), p)
	}
	return stats.Percentile(r.ShortRuntimes(), p)
}

// Summary formats the headline numbers of the run.
func (r *Result) Summary() string {
	short := stats.Summarize(r.ShortRuntimes())
	long := stats.Summarize(r.LongRuntimes())
	util := r.Utilization.Median()
	if math.IsNaN(util) {
		util = 0
	}
	return fmt.Sprintf("%s: short[%s] long[%s] medianUtil=%.1f%% makespan=%.0fs",
		r.Mode, short, long, 100*util, r.Makespan)
}
