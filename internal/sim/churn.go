package sim

import "repro/internal/policy"

// Scripted cluster-churn handling: node failures and recoveries, central
// scheduler outages, and the re-routing of work lost with a failed node.
// Everything in this file is off the hot path — it runs only when a
// scenario event fires (or when an in-flight message lands on a node that
// failed after it was sent), so clarity wins over allocation discipline;
// the churn-free fast path never enters here (simulation.dyn == nil).

// dynState is the per-node dynamic-cluster bookkeeping, allocated only
// when the scenario scripts membership transitions.
type dynState struct {
	// epoch counts a node's incarnations: bumped on every failure, so an
	// evProbeReply/evTaskDone stamped with an older epoch is recognizably
	// stale (its work was re-routed when the node failed). Events cannot
	// outlive 256 incarnations of a node: an event's flight time is one
	// task duration or network round trip, and each incarnation requires
	// a scripted failure inside that window.
	epoch []uint8
	// run describes what a busy node is doing, so a failure knows exactly
	// which work to re-route; valid only while the node is busy.
	run []runRef
}

// runRef identifies the work occupying a node's slot. A negative jidx
// marks a cancelled speculation loser: the slot is held until the
// cancellation message lands, but there is no work to re-route.
type runRef struct {
	jidx    int32 // job arena index; -1 for a cancelled zombie slot
	task    int32 // executing task index; -1 while awaiting a probe reply
	start   float64
	central bool // task was placed by the centralized scheduler
	// spec marks a speculative duplicate (fault plane): a failure resolves
	// it against its specDup record instead of re-serving the task.
	spec bool
	// probeWait marks the probe request/response round trip: the slot is
	// held but no task has been handed out yet.
	probeWait bool
}

// centralRef is one parked central placement: a whole job (tidx < 0,
// parked at submission) or a single task (parked on re-route).
type centralRef struct {
	jidx, tidx int32
}

// failRandomNodes applies a count-based ChurnFail: count live nodes picked
// uniformly by the churn stream.
func (s *simulation) failRandomNodes(now float64, count int) {
	s.churnIDs = s.view.SampleAllInto(s.churnIDs[:0], s.churnSrc, count)
	for _, id := range s.churnIDs {
		s.failNode(int32(id), now)
	}
}

// recoverRandomNodes applies a count-based ChurnRecover: count dead nodes
// picked uniformly by the churn stream.
func (s *simulation) recoverRandomNodes(now float64, count int) {
	s.deadIDs = s.view.AppendDead(s.deadIDs[:0])
	if count > len(s.deadIDs) {
		count = len(s.deadIDs)
	}
	if count == 0 {
		return
	}
	s.churnIDs = s.churnSrc.SampleWithoutReplacementInto(s.churnIDs[:0], len(s.deadIDs), count)
	for _, i := range s.churnIDs {
		s.recoverNode(int32(s.deadIDs[i]), now)
	}
}

// failNode removes one node from the cluster: membership, the central
// queue's server set, and every piece of work the node held. Queued and
// in-flight probes are re-sent to live nodes; queued and running centrally
// placed tasks are re-assigned; a task that was mid-execution re-executes
// from scratch elsewhere (its elapsed time is lost work). Failing a dead
// node is a no-op.
func (s *simulation) failNode(id int32, now float64) {
	if !s.view.Alive(int(id)) {
		return
	}
	s.view.Fail(int(id))
	s.res.NodeFailures++
	s.dyn.epoch[id]++ // pending replies/completions for this node are now stale
	if s.central != nil {
		s.central.Remove(int(id))
	}
	if s.flt != nil {
		// A node that later recovers comes back at nominal speed; its
		// straggler state dies with it.
		s.flt.slow[id] = 1
		s.flt.fin[id] = 0
	}
	n := &s.nodes[id]
	if n.busy {
		n.busy = false
		n.runningLong = false
		s.nodeBecameIdle(n.id)
		r := s.dyn.run[id]
		switch {
		case r.jidx < 0:
			// A cancelled speculation loser held the slot; nothing to
			// re-route (the in-flight cancellation goes stale with the epoch).
		case r.probeWait:
			// The request/response round trip dies with the node; the
			// scheduler re-probes a live one.
			s.res.ProbesLost++
			s.resendProbe(r.jidx)
		case r.central:
			s.res.TasksReexecuted++
			s.res.WorkLostSeconds += now - r.start
			s.centralReassign(r.jidx, r.task)
		case r.spec:
			// A running speculative duplicate dies. Normally its original
			// keeps running and the duplicate is simply wasted; if the
			// original died first (the duplicate had taken over), the task
			// re-serves, inheriting the duplicate's job reference.
			s.res.WorkLostSeconds += now - r.start
			js := &s.jobs[r.jidx]
			if i := s.flt.findDup(r.jidx, r.task); i >= 0 {
				s.flt.removeDup(i)
				s.res.SpeculativeWasted++
				js.probes--
				s.maybeFreeJob(r.jidx)
			} else {
				s.res.TasksReexecuted++
				js.lost = append(js.lost, r.task)
				s.resendProbe(r.jidx)
			}
		default:
			s.res.TasksReexecuted++
			s.res.WorkLostSeconds += now - r.start
			if s.dupTakesOver(r.jidx, r.task) {
				// A speculative duplicate of this task survives the
				// original; it becomes the task's real execution.
				break
			}
			// A probe-fetched task: hand the task index back to the job
			// and send a fresh probe to carry it. The fresh probe is a new
			// outstanding chain — its consuming reply is still to come —
			// so the job's probe count grows by one.
			js := &s.jobs[r.jidx]
			js.lost = append(js.lost, r.task)
			js.probes++
			s.resendProbe(r.jidx)
		}
	}
	for _, e := range n.queue[n.head:] {
		switch {
		case e.flags&entrySpec != 0:
			s.specAbandon(e.jidx, e.tidx)
		case e.flags&entryDirect != 0:
			s.directPlace(e.jidx, e.tidx, 0)
		case e.flags&entryTask != 0:
			s.centralReassign(e.jidx, e.tidx)
		default:
			s.res.ProbesLost++
			s.resendProbe(e.jidx)
		}
	}
	n.queue = n.queue[:0]
	n.head = 0
}

// recoverNode returns one node to the cluster, idle with an empty queue,
// and releases work waiting on capacity: probes that found no live pool
// node, jobs parked for pool width, and — via the central queue — any
// backlog the recovered server can now absorb. Like any node that runs
// dry, the recovered node immediately attempts one randomized steal.
// Recovering a live node is a no-op.
func (s *simulation) recoverNode(id int32, now float64) {
	if s.view.Alive(int(id)) {
		return
	}
	s.view.Recover(int(id))
	s.res.NodeRecoveries++
	if s.central != nil && s.pol.CentralPool().Contains(s.part, int(id)) {
		s.central.Add(int(id), now)
	}
	if len(s.lostProbes) > 0 {
		pending := s.lostProbes
		s.lostProbes = nil
		for _, jidx := range pending {
			s.resendProbe(jidx)
		}
	}
	if len(s.parkedJobs) > 0 {
		pending := s.parkedJobs
		s.parkedJobs = nil
		for _, jidx := range pending {
			s.routeJob(jidx)
		}
	}
	s.drainCentralBacklog()
	if s.flt != nil {
		s.drainStarved()
	}
	s.attemptSteal(&s.nodes[id])
}

// resendProbe sends one replacement batch-sampling probe for the job to a
// live node of its decision pool. With no live pool node the job waits in
// lostProbes for the next recovery. In the multi-scheduler model the
// re-send needs a live owner to answer the eventual task request — with
// none, the job waits in pendingProbes for a scheduler recovery — and it
// deliberately samples the truth view, not the owner's snapshot: a re-send
// aimed at a stale member could bounce between dead nodes indefinitely.
func (s *simulation) resendProbe(jidx int32) {
	if s.ms != nil && !s.ensureOwner(jidx) {
		s.ms.pendingProbes = append(s.ms.pendingProbes, jidx)
		return
	}
	js := &s.jobs[jidx]
	dec := s.pol.Route(policy.JobInfo{
		ID: js.id, Tasks: len(js.durations), Estimate: js.estimate, Long: js.long,
	})
	s.nodeIDs = dec.Pool.SampleInto(s.nodeIDs[:0], s.view, s.src, 1)
	if len(s.nodeIDs) == 0 {
		s.lostProbes = append(s.lostProbes, jidx)
		return
	}
	s.res.ProbesSent++
	if s.flt != nil {
		s.sendProbe(jidx, int32(s.nodeIDs[0]))
		return
	}
	s.eng.After(s.cfg.NetworkDelay, simEvent{kind: evProbeArrive, ref: int32(s.nodeIDs[0]), jidx: jidx})
}

// centralUnavailable reports whether central placement must park: the
// scheduler is scripted down, or churn has removed its every live server.
// Both compares are no-ops on a static run.
func (s *simulation) centralUnavailable() bool {
	return s.centralDown || s.central.Len() == 0
}

// centralReassign re-places one task through the central scheduler, or
// parks it while the scheduler is unavailable.
func (s *simulation) centralReassign(jidx, tidx int32) {
	if s.centralUnavailable() {
		s.parkCentral(jidx, tidx)
		return
	}
	s.assignCentralTask(jidx, tidx)
}

// assignCentralTask runs one §3.7 assignment for a single task — through
// the owning scheduler's claim/commit path when the multi-scheduler model
// is on.
func (s *simulation) assignCentralTask(jidx, tidx int32) {
	if s.ms != nil {
		s.placeCentralOwned(jidx, tidx)
		return
	}
	nodeID, _ := s.central.Assign(s.eng.Now(), s.jobs[jidx].estimate)
	s.res.CentralAssigns++
	if s.flt != nil {
		s.sendAssign(int32(nodeID), jidx, tidx, 0, false)
		return
	}
	s.eng.After(s.cfg.NetworkDelay, simEvent{kind: evTaskArrive, ref: int32(nodeID), jidx: jidx, aux: tidx})
}

// parkCentral appends one placement to the central backlog.
func (s *simulation) parkCentral(jidx, tidx int32) {
	s.backlog = append(s.backlog, centralRef{jidx: jidx, tidx: tidx})
	s.res.CentralDeferred++
}

// drainCentralBacklog releases parked central placements in arrival order
// once the scheduler is back (and has at least one live server).
func (s *simulation) drainCentralBacklog() {
	if s.central == nil || len(s.backlog) == 0 || s.centralUnavailable() {
		return
	}
	pending := s.backlog
	s.backlog = nil
	for _, p := range pending {
		if p.tidx < 0 {
			js := &s.jobs[p.jidx]
			for i := range js.durations {
				s.assignCentralTask(p.jidx, int32(i))
			}
			continue
		}
		s.assignCentralTask(p.jidx, p.tidx)
	}
}

// centralOutageStart begins a scripted central-scheduler outage.
func (s *simulation) centralOutageStart(now float64) {
	if s.centralDown {
		return
	}
	s.centralDown = true
	s.centralDownSince = now
}

// centralOutageEnd closes a scripted outage, accounts its duration, and
// drains the backlog.
func (s *simulation) centralOutageEnd(now float64) {
	if !s.centralDown {
		return
	}
	s.centralDown = false
	s.res.CentralOutageSeconds += now - s.centralDownSince
	s.drainCentralBacklog()
}
