package sim

// entryKind distinguishes the two things a node queue can hold.
type entryKind uint8

const (
	// probeEntry is a batch-sampling placeholder: when it reaches the
	// head of the queue the node asks the job's scheduler for a task and
	// receives either a task or a cancel (§3.5).
	probeEntry entryKind = iota
	// taskEntry is a concrete task placed directly by the centralized
	// scheduler (§3.7), carrying its actual duration.
	taskEntry
)

// entry is one element of a node's FIFO queue.
type entry struct {
	kind entryKind
	js   *jobState
	dur  float64 // taskEntry only: actual task duration
	enq  float64 // time the entry first arrived at a node (survives stealing)
}

// long reports whether this entry belongs to a long job, the property the
// stealing policy classifies queue contents by.
func (e entry) long() bool { return e.js.long }

// node models one worker: a single execution slot plus a FIFO queue (§3.1).
type node struct {
	id  int
	sim *simulation

	queue []entry
	// busy is true while the slot is occupied: executing a task or
	// holding the request/response round-trip of a probe at the head of
	// the queue.
	busy bool
	// runningLong is valid while busy: whether the occupying work
	// belongs to a long job. The stealing policy's Figure 3 cases branch
	// on it.
	runningLong bool
}

// enqueue appends an entry and starts it immediately if the node is idle.
func (n *node) enqueue(e entry) {
	n.queue = append(n.queue, e)
	n.advance()
}

// enqueueFront pushes entries to the head of the queue, preserving their
// order. Stolen groups land at the thief's head so they run before anything
// else already queued there (the thief is idle when it steals, so in
// practice the queue is empty).
func (n *node) enqueueFront(es []entry) {
	if len(n.queue) == 0 {
		// The common case — the thief stole because it ran dry — reuses
		// the thief's queue capacity instead of allocating a fresh slice.
		n.queue = append(n.queue, es...)
	} else {
		n.queue = append(append(make([]entry, 0, len(es)+len(n.queue)), es...), n.queue...)
	}
	n.advance()
}

// advance starts the head-of-queue entry if the slot is free.
func (n *node) advance() {
	if n.busy || len(n.queue) == 0 {
		return
	}
	head := n.queue[0]
	n.queue = n.queue[1:]
	n.busy = true
	n.runningLong = head.long()
	n.sim.nodeBecameBusy()
	n.sim.observeWait(head, n.sim.eng.Now())
	switch head.kind {
	case taskEntry:
		// Centrally placed task: the central queue observes its start so
		// waiting times track the server's actual queue state (§3.7).
		// The estimate leaves the queued sum; the running term uses the
		// task's actual duration, which the executing node knows — this
		// is what keeps a server with an overrunning task from looking
		// idle to the centralized scheduler.
		n.sim.central.TaskStarted(n.id, n.sim.eng.Now(), head.js.estimate, head.dur)
		n.execute(head.js, head.dur, true)
	case probeEntry:
		// Request/response round trip to the job's scheduler: the node
		// asks for a task; the scheduler answers with a task or cancel.
		n.sim.eng.After(2*n.sim.cfg.NetworkDelay, func() {
			dur, ok := head.js.nextTaskDuration()
			if !ok {
				n.sim.res.Cancels++
				n.finishSlot()
				return
			}
			n.execute(head.js, dur, false)
		})
	}
}

// execute runs one task to completion. central marks tasks placed by the
// centralized scheduler, whose completion it observes.
func (n *node) execute(js *jobState, dur float64, central bool) {
	n.sim.res.TasksExecuted++
	n.sim.eng.After(dur, func() {
		now := n.sim.eng.Now()
		if central {
			n.sim.central.TaskFinished(n.id, now)
		}
		js.taskFinished(now)
		n.finishSlot()
	})
}

// finishSlot releases the slot, continues with the queue, and — if the node
// ran dry — performs one randomized steal attempt (§3.6).
func (n *node) finishSlot() {
	n.busy = false
	n.sim.nodeBecameIdle()
	n.advance()
	if !n.busy && len(n.queue) == 0 {
		n.sim.attemptSteal(n)
	}
}

// appendQueueLongFlags appends, head-first, which queued entries belong to
// long jobs onto buf and returns it, for the eligible-group computation.
// Callers pass a reused scratch buffer (see simulation.stealFlags).
func (n *node) appendQueueLongFlags(buf []bool) []bool {
	for _, e := range n.queue {
		buf = append(buf, e.long())
	}
	return buf
}

// stealRange removes and returns queue entries [start, end).
func (n *node) stealRange(start, end int) []entry {
	stolen := append([]entry(nil), n.queue[start:end]...)
	n.queue = append(n.queue[:start], n.queue[end:]...)
	return stolen
}

// stealIndices removes and returns the entries at the given sorted queue
// indices (the random-position stealing ablation).
func (n *node) stealIndices(idx []int) []entry {
	if len(idx) == 0 {
		return nil
	}
	stolen := make([]entry, 0, len(idx))
	kept := n.queue[:0]
	next := 0
	for i, e := range n.queue {
		if next < len(idx) && i == idx[next] {
			stolen = append(stolen, e)
			next++
			continue
		}
		kept = append(kept, e)
	}
	n.queue = kept
	return stolen
}
