package sim

// entryFlags packs the two properties the hot paths read per queue entry:
// what the entry is (probe vs centrally placed task) and whether it belongs
// to a long job. The long bit is cached at entry creation — a job's
// classification never changes after submission — so the stealing policy's
// queue scans (appendQueueLongFlags, the Figure-3 eligible-group rule) read
// the queue linearly with no pointer chasing: at 12k+ nodes the steal scan
// previously took a cache miss per queued entry dereferencing job state.
type entryFlags uint8

const (
	// entryTask marks a concrete task placed directly by the centralized
	// scheduler (§3.7), carrying its actual duration. Entries without it
	// are batch-sampling probes: when a probe reaches the head of the
	// queue the node asks the job's scheduler for a task and receives
	// either a task or a cancel (§3.5).
	entryTask entryFlags = 1 << iota
	// entryLong marks entries belonging to long jobs, the property the
	// stealing policy classifies queue contents by.
	entryLong
	// entryDirect marks a task sent straight to the node without central-
	// queue bookkeeping: a probe-fallback placement or a speculative
	// duplicate (fault plane only; see faults.go).
	entryDirect
	// entrySpec marks a speculative duplicate (implies entryDirect): its
	// execution is gated on the original not having won the race yet.
	entrySpec
)

// longFlag converts a job's classification into its entry flag bit.
func longFlag(long bool) entryFlags {
	if long {
		return entryLong
	}
	return 0
}

// entry is one element of a node's FIFO queue: 24 pointer-free bytes (a
// float64, two int32 indices, and the packed flags), down from 32 with a
// *jobState pointer. Queue scans and steals copy entries around, so the
// size and pointer-freeness both matter. A task's duration is not stored:
// tidx indexes the owning job's duration slice, which also identifies the
// exact task to re-assign if the node holding this entry fails.
//
// Both pins are enforced at vet time by hawklint's structsize analyzer and
// re-checked at run time by TestHotStructSizes:
//
//hawk:size=24
//hawk:nopointers
type entry struct {
	enq   float64 // time the entry first arrived at a node (survives stealing)
	jidx  int32   // index into simulation.jobs
	tidx  int32   // task entries: task index within the job; -1 for probes
	flags entryFlags
	// sched is the scheduler that placed a task entry (multi-scheduler
	// model): the node reports the task's start and completion back to that
	// scheduler's local queue. Always 0 on a single-scheduler run.
	sched uint8
}

// long reports whether this entry belongs to a long job.
//
//hawk:hotpath
func (e entry) long() bool { return e.flags&entryLong != 0 }

// node models one worker: a single execution slot plus a FIFO queue (§3.1).
// Nodes live in the simulation's dense []node arena (index = node id), so a
// 170k-node cluster is one allocation of sequentially laid-out state, not
// 170k heap objects; methods take the owning simulation explicitly.
type node struct {
	// The FIFO queue's live entries are queue[head:]. Popping advances
	// head instead of reslicing from the front, and the slice is rewound
	// to its start whenever the queue drains — so the backing array's
	// capacity is reused for the node's lifetime and steady-state
	// enqueues never allocate. (Reslicing queue[1:] looks free but
	// strands the popped prefix: the array can never be re-used from the
	// front again, forcing a fresh allocation each time the window slides
	// past the capacity.)
	queue []entry
	head  int32
	id    int32
	// busy is true while the slot is occupied: executing a task or
	// holding the request/response round-trip of a probe at the head of
	// the queue.
	busy bool
	// runningLong is valid while busy: whether the occupying work
	// belongs to a long job. The stealing policy's Figure 3 cases branch
	// on it.
	runningLong bool
}

// queueLen returns the number of live queued entries.
//
//hawk:hotpath
func (n *node) queueLen() int { return len(n.queue) - int(n.head) }

// enqueue appends an entry and starts it immediately if the node is idle.
//
//hawk:hotpath
func (n *node) enqueue(s *simulation, e entry) {
	if n.head > 0 && len(n.queue) == cap(n.queue) {
		// About to grow: compact live entries to the front first, so the
		// stranded [0:head) prefix is not copied into (and retained by) a
		// larger array. This keeps a queue that never fully drains — a
		// node under sustained overload — at memory proportional to its
		// peak depth rather than its total throughput.
		live := copy(n.queue, n.queue[n.head:])
		n.queue = n.queue[:live]
		n.head = 0
	}
	n.queue = append(n.queue, e)
	n.advance(s)
}

// enqueueFront pushes entries to the head of the queue, preserving their
// order. Stolen groups land at the thief's head so they run before anything
// else already queued there (the thief is idle when it steals, so in
// practice the queue is empty). Every path reuses the queue's backing array
// when it has capacity; es is the caller's scratch buffer and is copied
// from, never retained.
//
//hawk:hotpath
func (n *node) enqueueFront(s *simulation, es []entry) {
	live := n.queueLen()
	switch {
	case live == 0:
		// The common case — the thief stole because it ran dry.
		n.queue = append(n.queue[:0], es...)
		n.head = 0
	case int(n.head) >= len(es):
		// The popped prefix has room: place the entries right before head.
		n.head -= int32(len(es))
		copy(n.queue[n.head:], es)
	case cap(n.queue) >= live+len(es):
		// Shift the live entries up in place (copy is memmove, so the
		// overlapping ranges are safe) and fill the front.
		n.queue = n.queue[:live+len(es)]
		copy(n.queue[len(es):], n.queue[n.head:int(n.head)+live])
		copy(n.queue, es)
		n.head = 0
	default:
		// Capacity exhausted: one growth allocation sized for both.
		merged := make([]entry, live+len(es))
		copy(merged, es)
		copy(merged[len(es):], n.queue[n.head:])
		n.queue, n.head = merged, 0
	}
	n.advance(s)
}

// advance starts the head-of-queue entry if the slot is free.
//
//hawk:hotpath
func (n *node) advance(s *simulation) {
	if n.busy || n.queueLen() == 0 {
		return
	}
	head := n.queue[n.head]
	n.head++
	if int(n.head) == len(n.queue) {
		// Drained: rewind so the backing array is reusable from the top.
		n.queue, n.head = n.queue[:0], 0
	}
	n.busy = true
	n.runningLong = head.long()
	s.nodeBecameBusy(n.id)
	s.observeWait(head, s.eng.Now())
	if head.flags&entryTask != 0 {
		dur := s.jobs[head.jidx].durations[head.tidx]
		if s.speeds != nil {
			dur /= s.speeds[n.id]
		}
		if head.flags&entryDirect != 0 {
			// Fault-plane direct task: no central queue observed this
			// placement, so there is no start/finish feedback to publish.
			if head.flags&entrySpec != 0 {
				if !s.specBegin(n, head.jidx, head.tidx) {
					// The duplicate is obsolete (its original already won);
					// discard the entry and free the slot.
					n.finishSlot(s)
					return
				}
				n.execute(s, head.jidx, head.tidx, 0, dur, evfSpec)
				return
			}
			n.execute(s, head.jidx, head.tidx, 0, dur, 0)
			return
		}
		// Centrally placed task: the central queue observes its start so
		// waiting times track the server's actual queue state (§3.7).
		// The estimate leaves the queued sum; the running term uses the
		// task's actual duration as executed on this node (speed-scaled
		// on a heterogeneous cluster) — this is what keeps a server with
		// an overrunning task from looking idle to the centralized
		// scheduler.
		s.central.TaskStarted(int(n.id), s.eng.Now(), s.jobs[head.jidx].estimate, dur)
		if s.ms != nil {
			// The placing scheduler's local mirror observes its own task's
			// start too, so its view of this server stays as fresh as its
			// own placements allow between snapshot refreshes.
			s.ms.mirrorTaskStarted(head.sched, int(n.id), s.eng.Now(), s.jobs[head.jidx].estimate, dur)
		}
		n.execute(s, head.jidx, head.tidx, head.sched, dur, evfCentral)
		return
	}
	// Probe: request/response round trip to the job's scheduler — the node
	// asks for a task; the scheduler answers with a task or cancel (the
	// evProbeReply event, handled by probeReply). On a dynamic cluster the
	// reply is stamped with the node's incarnation so a reply out-racing a
	// failure is recognizably stale.
	var gen uint8
	if s.dyn != nil {
		gen = s.dyn.epoch[n.id]
		s.dyn.run[n.id] = runRef{jidx: head.jidx, task: -1, probeWait: true}
	}
	if s.flt != nil {
		s.sendReply(n.id, gen, head.jidx, 0)
		return
	}
	s.eng.After(2*s.cfg.NetworkDelay, simEvent{kind: evProbeReply, gen: gen, ref: n.id, jidx: head.jidx})
}

// probeReply handles the scheduler's answer to this node's task request:
// either the job's next unassigned task, or a cancel because other probes
// drained the job first (§3.5).
//
//hawk:hotpath
func (n *node) probeReply(s *simulation, jidx int32) {
	js := &s.jobs[jidx]
	js.probes--
	tidx, ok := js.nextTask()
	if !ok {
		s.res.Cancels++
		// A cancel can be the job's last outstanding reference: if its
		// tasks all finished elsewhere first, the slot frees here.
		s.maybeFreeJob(jidx)
		n.finishSlot(s)
		return
	}
	dur := js.durations[tidx]
	if s.speeds != nil {
		dur /= s.speeds[n.id]
	}
	n.execute(s, jidx, tidx, 0, dur, 0)
}

// execute runs task tidx of job jidx to completion; dur is the task's wall
// duration on this node (the caller has already applied the node's speed
// factor; any straggler slowdown applies here). eflags carries evfCentral
// for tasks placed by the centralized scheduler, whose completion it
// observes, and evfSpec for speculative duplicates; sched is the placing
// scheduler in the multi-scheduler model. On a dynamic cluster the
// completion event carries the node's incarnation and the running task is
// recorded so a failure can re-route it.
//
//hawk:hotpath
func (n *node) execute(s *simulation, jidx, tidx int32, sched uint8, dur float64, eflags uint8) {
	s.res.TasksExecuted++
	var gen uint8
	if s.dyn != nil {
		gen = s.dyn.epoch[n.id]
		s.dyn.run[n.id] = runRef{
			jidx: jidx, task: tidx, start: s.eng.Now(),
			central: eflags&evfCentral != 0, spec: eflags&evfSpec != 0,
		}
	}
	if s.flt != nil {
		dur *= s.flt.slow[n.id]
		s.flt.fin[n.id] = s.eng.Now() + dur
	}
	s.eng.After(dur, simEvent{kind: evTaskDone, flags: eflags, gen: gen, sched: sched, ref: n.id, jidx: jidx, aux: tidx})
	if s.flt != nil && s.flt.spec.Speculate && eflags == 0 {
		// Plain probe-path task: arm the duplicate-launch timer (after the
		// completion, so an exact tie resolves to the completion). The job
		// slot stays referenced until the timer resolves.
		s.jobs[jidx].probes++
		s.eng.After(s.jobs[jidx].specThresh, simEvent{kind: evSpecLaunch, gen: gen, ref: n.id, jidx: jidx, aux: tidx})
	}
}

// taskDone accounts a completed task and frees the slot. A job completes
// only after all its tasks (§3.1).
//
//hawk:hotpath
func (n *node) taskDone(s *simulation, jidx, tidx int32, flags uint8, sched uint8, now float64) {
	if flags&evfCentral != 0 {
		s.central.TaskFinished(int(n.id), now)
		if s.ms != nil {
			s.ms.mirrorTaskFinished(sched, int(n.id), now)
		}
	} else if s.flt != nil && s.flt.spec.Speculate {
		s.specResolve(jidx, tidx, flags&evfSpec != 0)
	}
	js := &s.jobs[jidx]
	js.finished++
	if int(js.finished) == len(js.durations) {
		s.jobCompleted(jidx, now)
	}
	n.finishSlot(s)
}

// finishSlot releases the slot, continues with the queue, and — if the node
// ran dry — performs one randomized steal attempt (§3.6).
//
//hawk:hotpath
func (n *node) finishSlot(s *simulation) {
	n.busy = false
	s.nodeBecameIdle(n.id)
	n.advance(s)
	if !n.busy && n.queueLen() == 0 {
		s.attemptSteal(n)
	}
}

// appendQueueLongFlags appends, head-first, which queued entries belong to
// long jobs onto buf and returns it, for the eligible-group computation.
// The long bit is read straight from the packed entry flags — one linear
// scan of the queue's backing array, no job-state dereference per entry.
// Callers pass a reused scratch buffer (see simulation.stealFlags).
//
//hawk:hotpath
func (n *node) appendQueueLongFlags(buf []bool) []bool {
	for _, e := range n.queue[n.head:] {
		buf = append(buf, e.long())
	}
	return buf
}

// appendStealRange removes queue entries [start, end), appends them to buf,
// and returns it. Callers pass a reused scratch buffer (see
// simulation.stolen); the entries are copied into the thief's queue before
// the buffer's next use.
// Indices are relative to the live queue (head-first), matching the flags
// appendQueueLongFlags reports.
//
//hawk:hotpath
func (n *node) appendStealRange(buf []entry, start, end int) []entry {
	live := n.queue[n.head:]
	buf = append(buf, live[start:end]...)
	n.queue = append(n.queue[:int(n.head)+start], live[end:]...)
	return buf
}

// appendStealIndices removes the entries at the given sorted queue indices
// (the random-position stealing ablation), appending them to buf.
//
//hawk:hotpath
func (n *node) appendStealIndices(buf []entry, idx []int) []entry {
	if len(idx) == 0 {
		return buf
	}
	live := n.queue[n.head:]
	kept := live[:0]
	next := 0
	for i, e := range live {
		if next < len(idx) && i == idx[next] {
			buf = append(buf, e)
			next++
			continue
		}
		kept = append(kept, e)
	}
	n.queue = n.queue[:int(n.head)+len(kept)]
	return buf
}
