package sim

// entryKind distinguishes the two things a node queue can hold.
type entryKind uint8

const (
	// probeEntry is a batch-sampling placeholder: when it reaches the
	// head of the queue the node asks the job's scheduler for a task and
	// receives either a task or a cancel (§3.5).
	probeEntry entryKind = iota
	// taskEntry is a concrete task placed directly by the centralized
	// scheduler (§3.7), carrying its actual duration.
	taskEntry
)

// entry is one element of a node's FIFO queue.
type entry struct {
	kind entryKind
	js   *jobState
	dur  float64 // taskEntry only: actual task duration
	enq  float64 // time the entry first arrived at a node (survives stealing)
}

// long reports whether this entry belongs to a long job, the property the
// stealing policy classifies queue contents by.
func (e entry) long() bool { return e.js.long }

// node models one worker: a single execution slot plus a FIFO queue (§3.1).
type node struct {
	id  int
	sim *simulation

	// The FIFO queue's live entries are queue[head:]. Popping advances
	// head instead of reslicing from the front, and the slice is rewound
	// to its start whenever the queue drains — so the backing array's
	// capacity is reused for the node's lifetime and steady-state
	// enqueues never allocate. (Reslicing queue[1:] looks free but
	// strands the popped prefix: the array can never be re-used from the
	// front again, forcing a fresh allocation each time the window slides
	// past the capacity.)
	queue []entry
	head  int
	// busy is true while the slot is occupied: executing a task or
	// holding the request/response round-trip of a probe at the head of
	// the queue.
	busy bool
	// runningLong is valid while busy: whether the occupying work
	// belongs to a long job. The stealing policy's Figure 3 cases branch
	// on it.
	runningLong bool
}

// queueLen returns the number of live queued entries.
func (n *node) queueLen() int { return len(n.queue) - n.head }

// enqueue appends an entry and starts it immediately if the node is idle.
func (n *node) enqueue(e entry) {
	if n.head > 0 && len(n.queue) == cap(n.queue) {
		// About to grow: compact live entries to the front first, so the
		// stranded [0:head) prefix is not copied into (and retained by) a
		// larger array. This keeps a queue that never fully drains — a
		// node under sustained overload — at memory proportional to its
		// peak depth rather than its total throughput.
		live := copy(n.queue, n.queue[n.head:])
		n.queue = n.queue[:live]
		n.head = 0
	}
	n.queue = append(n.queue, e)
	n.advance()
}

// enqueueFront pushes entries to the head of the queue, preserving their
// order. Stolen groups land at the thief's head so they run before anything
// else already queued there (the thief is idle when it steals, so in
// practice the queue is empty).
func (n *node) enqueueFront(es []entry) {
	if n.queueLen() == 0 {
		// The common case — the thief stole because it ran dry — reuses
		// the thief's queue capacity instead of allocating a fresh slice.
		n.queue = append(n.queue[:0], es...)
		n.head = 0
	} else {
		merged := make([]entry, 0, len(es)+n.queueLen())
		merged = append(merged, es...)
		merged = append(merged, n.queue[n.head:]...)
		n.queue, n.head = merged, 0
	}
	n.advance()
}

// advance starts the head-of-queue entry if the slot is free.
func (n *node) advance() {
	if n.busy || n.queueLen() == 0 {
		return
	}
	head := n.queue[n.head]
	n.head++
	if n.head == len(n.queue) {
		// Drained: rewind so the backing array is reusable from the top.
		n.queue, n.head = n.queue[:0], 0
	}
	n.busy = true
	n.runningLong = head.long()
	n.sim.nodeBecameBusy()
	n.sim.observeWait(head, n.sim.eng.Now())
	switch head.kind {
	case taskEntry:
		// Centrally placed task: the central queue observes its start so
		// waiting times track the server's actual queue state (§3.7).
		// The estimate leaves the queued sum; the running term uses the
		// task's actual duration, which the executing node knows — this
		// is what keeps a server with an overrunning task from looking
		// idle to the centralized scheduler.
		n.sim.central.TaskStarted(n.id, n.sim.eng.Now(), head.js.estimate, head.dur)
		n.execute(head.js, head.dur, true)
	case probeEntry:
		// Request/response round trip to the job's scheduler: the node
		// asks for a task; the scheduler answers with a task or cancel
		// (the evProbeReply event, handled by probeReply).
		n.sim.eng.After(2*n.sim.cfg.NetworkDelay, simEvent{kind: evProbeReply, ref: int32(n.id), js: head.js})
	}
}

// probeReply handles the scheduler's answer to this node's task request:
// either the job's next unassigned task, or a cancel because other probes
// drained the job first (§3.5).
func (n *node) probeReply(js *jobState) {
	dur, ok := js.nextTaskDuration()
	if !ok {
		n.sim.res.Cancels++
		n.finishSlot()
		return
	}
	n.execute(js, dur, false)
}

// execute runs one task to completion. central marks tasks placed by the
// centralized scheduler, whose completion it observes.
func (n *node) execute(js *jobState, dur float64, central bool) {
	n.sim.res.TasksExecuted++
	n.sim.eng.After(dur, simEvent{kind: evTaskDone, central: central, ref: int32(n.id), js: js})
}

// taskDone accounts a completed task and frees the slot.
func (n *node) taskDone(js *jobState, central bool, now float64) {
	if central {
		n.sim.central.TaskFinished(n.id, now)
	}
	js.taskFinished(now)
	n.finishSlot()
}

// finishSlot releases the slot, continues with the queue, and — if the node
// ran dry — performs one randomized steal attempt (§3.6).
func (n *node) finishSlot() {
	n.busy = false
	n.sim.nodeBecameIdle()
	n.advance()
	if !n.busy && n.queueLen() == 0 {
		n.sim.attemptSteal(n)
	}
}

// appendQueueLongFlags appends, head-first, which queued entries belong to
// long jobs onto buf and returns it, for the eligible-group computation.
// Callers pass a reused scratch buffer (see simulation.stealFlags).
func (n *node) appendQueueLongFlags(buf []bool) []bool {
	for _, e := range n.queue[n.head:] {
		buf = append(buf, e.long())
	}
	return buf
}

// appendStealRange removes queue entries [start, end), appends them to buf,
// and returns it. Callers pass a reused scratch buffer (see
// simulation.stolen); the entries are copied into the thief's queue before
// the buffer's next use.
// Indices are relative to the live queue (head-first), matching the flags
// appendQueueLongFlags reports.
func (n *node) appendStealRange(buf []entry, start, end int) []entry {
	live := n.queue[n.head:]
	buf = append(buf, live[start:end]...)
	n.queue = append(n.queue[:n.head+start], live[end:]...)
	return buf
}

// appendStealIndices removes the entries at the given sorted queue indices
// (the random-position stealing ablation), appending them to buf.
func (n *node) appendStealIndices(buf []entry, idx []int) []entry {
	if len(idx) == 0 {
		return buf
	}
	live := n.queue[n.head:]
	kept := live[:0]
	next := 0
	for i, e := range live {
		if next < len(idx) && i == idx[next] {
			buf = append(buf, e)
			next++
			continue
		}
		kept = append(kept, e)
	}
	n.queue = n.queue[:n.head+len(kept)]
	return buf
}
