package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
)

// TestSingleSchedulerEquivalence pins the tentpole's compatibility promise:
// Config.Schedulers with Count == 1 (and no scheduler churn) is canonicalized
// away by Normalize, so an N=1 run is byte-identical to a run that never
// mentioned schedulers — compared here against the committed hawk golden, not
// a freshly generated one, so a drift in either the canonicalization or the
// engine fails the test.
func TestSingleSchedulerEquivalence(t *testing.T) {
	trace := goldenTrace()
	cfg := policy.Config{NumNodes: 1200, Seed: 9, Policy: "hawk"}
	cfg.Schedulers = &policy.SchedulerSpec{Count: 1}
	res, err := Run(trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := marshalPinned(t, res)
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "hawk.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("schedulers=1 run differs from the single-scheduler golden; " +
			"N=1 must stay byte-identical to the model being off")
	}
	if res.PlacementConflicts != 0 || res.SnapshotRefreshes != 0 {
		t.Fatalf("schedulers=1 run reported multi-scheduler counters: conflicts=%d refreshes=%d",
			res.PlacementConflicts, res.SnapshotRefreshes)
	}
}

// multiSchedConfig is a contended operating point: few central servers per
// scheduler and a long snapshot interval, so concurrent schedulers place
// against visibly stale state and collide.
func multiSchedConfig(count int) policy.Config {
	cfg := policy.Config{NumNodes: 1200, Seed: 9, Policy: "hawk"}
	cfg.Schedulers = &policy.SchedulerSpec{Count: count, SnapshotInterval: 10}
	return cfg
}

func TestMultiSchedulerConflictAccounting(t *testing.T) {
	trace := goldenTrace()
	res, err := Run(trace, multiSchedConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(trace.Jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(trace.Jobs))
	}
	if res.PlacementConflicts == 0 {
		t.Fatal("8 schedulers on stale snapshots produced zero placement conflicts; " +
			"the claim path cannot be exercising contention")
	}
	// Every conflict either retries or (after MaxRetries) forces a refresh,
	// so retries can never exceed conflicts.
	if res.ConflictRetries > res.PlacementConflicts {
		t.Fatalf("retries %d > conflicts %d", res.ConflictRetries, res.PlacementConflicts)
	}
	if res.SnapshotRefreshes == 0 {
		t.Fatal("no snapshot refreshes recorded")
	}
	if res.SnapshotStalenessSeconds < 0 {
		t.Fatalf("negative staleness %g", res.SnapshotStalenessSeconds)
	}
	if res.CentralAssigns == 0 {
		t.Fatal("no central placements committed")
	}
	// Commits and conflicts partition placement attempts: conflicted
	// assigns are not counted as CentralAssigns.
	if res.SchedulerFailures != 0 || res.SchedulerRecoveries != 0 || res.SchedulerReassigned != 0 {
		t.Fatalf("churn-free run reported scheduler churn: fail=%d recover=%d reassign=%d",
			res.SchedulerFailures, res.SchedulerRecoveries, res.SchedulerReassigned)
	}
}

// TestMultiSchedulerDeterminism: the model must stay a pure function of
// (trace, config, seed) — two identical runs, identical bytes.
func TestMultiSchedulerDeterminism(t *testing.T) {
	trace := goldenTrace()
	a, err := Run(trace, multiSchedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(trace, multiSchedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalPinned(t, a), marshalPinned(t, b)) {
		t.Fatal("two identical multi-scheduler runs produced different reports")
	}
}

// TestSchedulerChurn scripts a mid-trace scheduler failure and recovery:
// the run must complete, with the failure's work re-hashed to the survivor
// and the recovery counted.
func TestSchedulerChurn(t *testing.T) {
	trace := goldenTrace()
	cfg := multiSchedConfig(2)
	cfg.Churn = &policy.ChurnSpec{Events: policy.SchedulerChurn(1, 20, 60)}
	res, err := Run(trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(trace.Jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(trace.Jobs))
	}
	if res.SchedulerFailures != 1 || res.SchedulerRecoveries != 1 {
		t.Fatalf("expected 1 failure + 1 recovery, got fail=%d recover=%d",
			res.SchedulerFailures, res.SchedulerRecoveries)
	}
	if res.SchedulerReassigned == 0 {
		t.Fatal("a 40 s scheduler outage mid-trace re-assigned no jobs")
	}
}

// TestAllSchedulersDown scripts a window with zero live schedulers: jobs
// submitted inside it park and drain on the recovery, and the run still
// completes.
func TestAllSchedulersDown(t *testing.T) {
	trace := goldenTrace()
	cfg := multiSchedConfig(2)
	cfg.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 20, Kind: policy.ChurnSchedFail, Node: 0},
		{At: 20, Kind: policy.ChurnSchedFail, Node: 1},
		{At: 50, Kind: policy.ChurnSchedRecover, Node: 0},
		{At: 50, Kind: policy.ChurnSchedRecover, Node: 1},
	}}
	res, err := Run(trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(trace.Jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(trace.Jobs))
	}
	if res.SchedulerFailures != 2 || res.SchedulerRecoveries != 2 {
		t.Fatalf("expected 2 failures + 2 recoveries, got fail=%d recover=%d",
			res.SchedulerFailures, res.SchedulerRecoveries)
	}
}

// TestSchedulerChurnWithNodeChurn combines scheduler churn with node
// membership churn: per-scheduler snapshot views, stale-member conflicts,
// and probe re-sends all interleave, and the run must still complete
// deterministically.
func TestSchedulerChurnWithNodeChurn(t *testing.T) {
	trace := goldenTrace()
	cfg := multiSchedConfig(4)
	cfg.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 15, Kind: policy.ChurnFail, Count: 80},
		{At: 25, Kind: policy.ChurnSchedFail, Node: 2},
		{At: 55, Kind: policy.ChurnRecover, Count: 60},
		{At: 70, Kind: policy.ChurnSchedRecover, Node: 2},
	}}
	run := func() []byte {
		res, err := Run(trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != len(trace.Jobs) {
			t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(trace.Jobs))
		}
		return marshalPinned(t, res)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("combined scheduler+node churn run is not deterministic")
	}
}

// TestMultiSchedulerConflictScaling: more schedulers on the same workload
// must see at least as much staleness-induced conflict pressure — the
// qualitative §4.10 shape the scheduler-count sweep reproduces.
func TestMultiSchedulerConflictScaling(t *testing.T) {
	trace := goldenTrace()
	one, err := Run(trace, multiSchedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(trace, multiSchedConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if many.PlacementConflicts < one.PlacementConflicts {
		t.Fatalf("16 schedulers conflicted less than 2 (%d < %d)",
			many.PlacementConflicts, one.PlacementConflicts)
	}
}
