package sim

// The simulator's typed-event union. Every discrete event a run executes is
// one flat simEvent value stored directly in the engine's heap — there are
// no per-event closures, so scheduling an event allocates nothing. The
// payload is deliberately compact (24 bytes: one pointer, a float64, an
// int32 ref, and two tag bytes): every heap sift copies it, so its size is
// a direct multiplier on the engine's dominant loop.
type evKind uint8

const (
	// evSubmit: a job arrives at its scheduler (ref = trace job index).
	evSubmit evKind = iota
	// evProbeArrive: a batch-sampling probe reaches the queue of node
	// ref after one network delay (js).
	evProbeArrive
	// evTaskArrive: a centrally placed task reaches the queue of node
	// ref after one network delay (js, dur).
	evTaskArrive
	// evProbeReply: the scheduler's answer to node ref's task request
	// lands after the request/response round trip (js).
	evProbeReply
	// evTaskDone: the task running on node ref completes (js, central).
	evTaskDone
	// evSample: periodic cluster-utilization snapshot (no payload).
	evSample
)

// simEvent is the event payload; which fields are meaningful depends on
// kind (see the kind constants). ref is a deliberate union — the trace job
// index for evSubmit, the node id otherwise — so the struct carries one
// int32 instead of two pointers.
type simEvent struct {
	kind    evKind
	central bool  // evTaskDone: task was placed by the centralized scheduler
	ref     int32 // evSubmit: index into trace.Jobs; node events: node id
	js      *jobState
	dur     float64 // evTaskArrive: actual task duration
}

// dispatch executes one event. It is the single handler switch the engine
// drives; the clock has already advanced to now.
func (s *simulation) dispatch(now float64, ev simEvent) {
	switch ev.kind {
	case evSubmit:
		s.submit(s.trace.Jobs[ev.ref])
	case evProbeArrive:
		s.nodes[ev.ref].enqueue(entry{kind: probeEntry, js: ev.js, enq: now})
	case evTaskArrive:
		s.nodes[ev.ref].enqueue(entry{kind: taskEntry, js: ev.js, dur: ev.dur, enq: now})
	case evProbeReply:
		s.nodes[ev.ref].probeReply(ev.js)
	case evTaskDone:
		s.nodes[ev.ref].taskDone(ev.js, ev.central, now)
	case evSample:
		s.sampleTick(now)
	}
}

// sampleTick records one utilization sample and schedules the next, for as
// long as jobs remain — the periodic sampler the paper uses for §2.3/§4.2
// (every 100 s by default). Each tick is an ordinary event: relative to
// other events at the same instant it fires in insertion order, and the
// next tick is scheduled only after the current one runs.
func (s *simulation) sampleTick(now float64) {
	if s.jobsDone >= len(s.trace.Jobs) {
		return
	}
	s.res.Utilization.AddAt(now, float64(s.busyNodes)/float64(s.slots))
	s.nextSample += s.cfg.UtilizationInterval
	s.eng.At(s.nextSample, simEvent{kind: evSample})
}
