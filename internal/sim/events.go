package sim

// The simulator's typed-event union. Every discrete event a run executes is
// one flat simEvent value stored directly in the engine's heap — there are
// no per-event closures, so scheduling an event allocates nothing, and the
// payload carries no pointers, so the heap's backing array is opaque to the
// garbage collector. The payload is deliberately compact (16 bytes: three
// int32 refs and two tag bytes): every heap sift copies it, so its size is
// a direct multiplier on the engine's dominant loop. Job state lives in the
// simulation's flat jobs arena and events refer to it by int32 index; even
// a task's duration is carried as a task index (aux) into the job's
// duration slice rather than as a float64.
type evKind uint8

const (
	// evSubmit: the next trace job arrives at its scheduler (ref = the
	// job's position in submission order). The handler chains the
	// following submission, so at most one submit event is ever pending —
	// the event heap holds in-flight state, never the unsubmitted trace.
	evSubmit evKind = iota
	// evProbeArrive: a batch-sampling probe reaches the queue of node
	// ref after one network delay (jidx).
	evProbeArrive
	// evTaskArrive: a centrally placed task reaches the queue of node
	// ref after one network delay (jidx; aux = task index within the
	// job, which determines its duration).
	evTaskArrive
	// evProbeReply: the scheduler's answer to node ref's task request
	// lands after the request/response round trip (jidx).
	evProbeReply
	// evTaskDone: the task running on node ref completes (jidx, central).
	evTaskDone
	// evSample: periodic cluster-utilization snapshot (no payload).
	evSample
)

// simEvent is the event payload; which fields are meaningful depends on
// kind (see the kind constants). ref is a deliberate union — the
// submission-order position for evSubmit, the node id otherwise — and jidx
// indexes the simulation's jobs arena, so the struct carries three int32s
// instead of any pointer.
type simEvent struct {
	kind    evKind
	central bool  // evTaskDone: task was placed by the centralized scheduler
	ref     int32 // evSubmit: submission-order position; node events: node id
	jidx    int32 // index into simulation.jobs (the job-state arena)
	aux     int32 // evTaskArrive: task index within the job
}

// dispatch executes one event. It is the single handler switch the engine
// drives; the clock has already advanced to now.
func (s *simulation) dispatch(now float64, ev simEvent) {
	switch ev.kind {
	case evSubmit:
		s.submitNext(ev.ref)
	case evProbeArrive:
		js := &s.jobs[ev.jidx]
		s.nodes[ev.ref].enqueue(s, entry{flags: longFlag(js.long), jidx: ev.jidx, enq: now})
	case evTaskArrive:
		js := &s.jobs[ev.jidx]
		s.nodes[ev.ref].enqueue(s, entry{
			flags: entryTask | longFlag(js.long),
			jidx:  ev.jidx,
			dur:   js.durations[ev.aux],
			enq:   now,
		})
	case evProbeReply:
		s.nodes[ev.ref].probeReply(s, ev.jidx)
	case evTaskDone:
		s.nodes[ev.ref].taskDone(s, ev.jidx, ev.central, now)
	case evSample:
		s.sampleTick(now)
	}
}

// submitNext submits the job at submission-order position pos and chains
// the next trace job's submit event. Only one submit event is ever
// pending, which is what keeps the engine's peak heap length proportional
// to in-flight messages and running tasks instead of to the trace length.
// The chain runs on the engine's reserved sequence numbers (position+1),
// reproducing the tie-break rank each submit would have had if every
// submit were preloaded before the run started.
func (s *simulation) submitNext(pos int32) {
	if next := pos + 1; int(next) < len(s.trace.Jobs) {
		idx := s.jobAt(next)
		s.eng.AtReserved(s.trace.Jobs[idx].SubmitTime, uint64(next)+1, simEvent{kind: evSubmit, ref: next})
	}
	s.submit(s.jobAt(pos))
}

// sampleTick records one utilization sample and schedules the next, for as
// long as jobs remain — the periodic sampler the paper uses for §2.3/§4.2
// (every 100 s by default). Each tick is an ordinary event: relative to
// other events at the same instant it fires in insertion order, and the
// next tick is scheduled only after the current one runs.
func (s *simulation) sampleTick(now float64) {
	if s.jobsDone >= len(s.trace.Jobs) {
		return
	}
	s.res.Utilization.AddAt(now, float64(s.busyNodes)/float64(s.slots))
	s.nextSample += s.cfg.UtilizationInterval
	s.eng.At(s.nextSample, simEvent{kind: evSample})
}
