package sim

import (
	"fmt"

	"repro/internal/workload"
)

// The simulator's typed-event union. Every discrete event a run executes is
// one flat simEvent value stored directly in the engine's heap — there are
// no per-event closures, so scheduling an event allocates nothing, and the
// payload carries no pointers, so the heap's backing array is opaque to the
// garbage collector. The payload is deliberately compact (16 bytes: three
// int32 refs and three tag bytes): every heap sift copies it, so its size
// is a direct multiplier on the engine's dominant loop. Job state lives in
// the simulation's flat jobs arena and events refer to it by int32 index;
// even a task's duration is carried as a task index (aux) into the job's
// duration slice rather than as a float64.
type evKind uint8

const (
	// evSubmit: the next trace job arrives at its scheduler (ref = the
	// job's position in submission order). The handler chains the
	// following submission, so at most one submit event is ever pending —
	// the event heap holds in-flight state, never the unsubmitted trace.
	evSubmit evKind = iota
	// evProbeArrive: a batch-sampling probe reaches the queue of node
	// ref after one network delay (jidx). If the node failed while the
	// probe was in flight, the probe is lost and re-sent to a live node.
	evProbeArrive
	// evTaskArrive: a centrally placed task reaches the queue of node
	// ref after one network delay (jidx; aux = task index within the
	// job, which determines its duration). If the node failed in flight,
	// the task is re-assigned by the central scheduler.
	evTaskArrive
	// evProbeReply: the scheduler's answer to node ref's task request
	// lands after the request/response round trip (jidx). gen pins the
	// node's incarnation: a reply addressed to a failed node is stale
	// and dropped (the probe was re-sent at failure time).
	evProbeReply
	// evTaskDone: the task running on node ref completes (jidx, central;
	// aux = task index). gen pins the node's incarnation: a completion
	// from before a failure is stale — that task was lost and re-routed.
	evTaskDone
	// evSample: periodic cluster-utilization snapshot (no payload).
	evSample
	// evNodeFail: scripted churn — node ref leaves the cluster (ref < 0:
	// fail aux random live nodes instead). Work on the node is lost and
	// re-routed; see simulation.failNode.
	evNodeFail
	// evNodeRecover: scripted churn — node ref rejoins the cluster, idle
	// and empty (ref < 0: recover aux random dead nodes).
	evNodeRecover
	// evCentralDown: scripted churn — the centralized scheduler goes
	// offline; central placements queue in a backlog.
	evCentralDown
	// evCentralUp: scripted churn — the centralized scheduler returns
	// and drains its backlog.
	evCentralUp
	// evSnapRefresh: scheduler ref refreshes its stale cluster snapshot
	// (multi-scheduler model). The chain is activity-gated: it re-arms
	// itself only while the scheduler keeps placing work, so an idle run
	// drains instead of ticking forever. gen pins the scheduler's
	// incarnation; a chain armed before a scheduler failure is stale.
	evSnapRefresh
	// evSchedRetry: scheduler ref retries the oldest conflicted placement
	// in its retry queue after the backoff (multi-scheduler model). gen
	// pins the scheduler's incarnation; retries queued before a failure
	// were re-assigned at failure time and their events are stale.
	evSchedRetry
	// evSchedFail: scripted churn — distributed scheduler ref fails; its
	// pending work re-hashes to the survivors.
	evSchedFail
	// evSchedRecover: scheduler ref returns with a fresh
	// snapshot and drains work that waited for a live scheduler.
	evSchedRecover
	// evProbeTimeout: a dropped message of the probe plane times out
	// (fault injection). ref < 0: the scheduler's probe send was dropped
	// and it retries toward a fresh pool node (jidx; attempt in the flags
	// high bits). ref >= 0: node ref's task-request round trip was dropped
	// and the node re-issues it (gen pins the node's incarnation). An
	// attempt past Faults.MaxRetries abandons the probe and degrades the
	// job to a direct placement (fallbackProbe).
	evProbeTimeout
	// evAssignRetry: a dropped task-placement message retries after its
	// backoff (fault injection). ref >= 0: re-send the central assignment
	// (or, with evfCommit, the multi-scheduler commit) to the same node
	// ref — its queue load was already charged (jidx, aux = task index,
	// attempt in flags). ref < 0: re-run a direct placement toward a fresh
	// node. Exhausted retries park the task (parkedFaults).
	evAssignRetry
	// evTaskDirect: a directly sent task (central-queue-free fallback, or
	// a speculative duplicate when evfSpec is set) reaches the queue of
	// node ref (jidx; aux = task index). Direct tasks skip the central
	// queue's bookkeeping entirely.
	evTaskDirect
	// evSpecLaunch: the speculation timer armed when task aux of job jidx
	// started on node ref fires; if the task is still running there, a
	// duplicate launches on a fresh node (first completion wins). gen pins
	// the node's incarnation.
	evSpecLaunch
	// evSpecCancel: the cancellation message for a speculation loser
	// reaches node ref, freeing the slot its cancelled task occupied. gen
	// pins the post-cancellation incarnation.
	evSpecCancel
	// evStraggle: scripted straggler event aux (an index into
	// Faults.Stragglers) fires: the target nodes slow down, stretching
	// their in-flight tasks.
	evStraggle
)

// simEvent.flags bits. evfCentral replaces the old dedicated bool (a task
// placed by the centralized scheduler); the rest exist only on fault-plane
// events, so every pre-existing event still carries a zero byte there.
const (
	evfCentral uint8 = 1 << 0 // evTaskDone/evAssignRetry: centrally placed task
	evfSpec    uint8 = 1 << 1 // evTaskDone/evTaskDirect: speculative duplicate
	evfCommit  uint8 = 1 << 2 // evAssignRetry: multi-scheduler commit message class
	// evfAttemptShift positions the retry attempt of evProbeTimeout and
	// evAssignRetry in the flags high bits (range [0, 31]; MaxFaultRetries
	// keeps attempts inside it).
	evfAttemptShift = 3
)

// simEvent is the event payload; which fields are meaningful depends on
// kind (see the kind constants). ref is a deliberate union — the
// submission-order position for evSubmit, the node id otherwise — and jidx
// indexes the simulation's jobs arena, so the struct carries three int32s
// instead of any pointer. gen is the scheduling-time incarnation of node
// ref (see dynState.epoch); it is always zero on a churn-free run, where
// no event can ever be stale.
//
// The size and pointer-freeness pins are enforced at vet time by hawklint's
// structsize analyzer and re-checked at run time by TestHotStructSizes:
//
//hawk:size=16
//hawk:nopointers
type simEvent struct {
	kind  evKind
	flags uint8 // evf* bits: placement class, speculation marker, retry attempt
	gen   uint8 // evProbeReply/evTaskDone: node incarnation; evSnapRefresh/evSchedRetry: scheduler incarnation
	sched uint8 // evTaskArrive/evTaskDone: placing scheduler (multi-scheduler model; 0 otherwise)
	ref   int32 // evSubmit: submission-order position; scheduler events: scheduler id; node events: node id
	jidx  int32 // index into simulation.jobs (the job-state arena)
	aux   int32 // evTaskArrive/evTaskDone: task index; churn events: random-pick count; evStraggle: script index
}

// dispatch executes one event. It is the single handler switch the engine
// drives; the clock has already advanced to now. The s.dyn nil checks are
// the whole cost of the dynamic cluster model on a churn-free run: one
// pointer compare per event, with gen always equal to the zero epoch.
//
//hawk:hotpath
func (s *simulation) dispatch(now float64, ev simEvent) {
	switch ev.kind {
	case evSubmit:
		s.submitNext(ev.ref)
	case evProbeArrive:
		if s.dyn != nil && !s.view.Alive(int(ev.ref)) {
			// The destination failed while the probe was in flight; the
			// sender notices and re-probes a live node.
			s.res.ProbesLost++
			s.resendProbe(ev.jidx)
			return
		}
		js := &s.jobs[ev.jidx]
		s.nodes[ev.ref].enqueue(s, entry{flags: longFlag(js.long), jidx: ev.jidx, tidx: -1, enq: now})
	case evTaskArrive:
		if s.dyn != nil && !s.view.Alive(int(ev.ref)) {
			// The destination failed in flight; the central scheduler
			// re-assigns the task to a live server.
			s.centralReassign(ev.jidx, ev.aux)
			return
		}
		js := &s.jobs[ev.jidx]
		s.nodes[ev.ref].enqueue(s, entry{
			flags: entryTask | longFlag(js.long),
			jidx:  ev.jidx,
			tidx:  ev.aux,
			sched: ev.sched,
			enq:   now,
		})
	case evProbeReply:
		if s.dyn != nil && ev.gen != s.dyn.epoch[ev.ref] {
			return // stale: the node failed mid-round-trip; re-routed at failure time
		}
		if s.ms != nil && !s.msReplyReady(ev) {
			return // the job's scheduler died mid-round-trip; re-requested or parked
		}
		s.nodes[ev.ref].probeReply(s, ev.jidx)
	case evTaskDone:
		if s.dyn != nil && ev.gen != s.dyn.epoch[ev.ref] {
			return // stale: the task was lost with the node and re-executes elsewhere
		}
		if s.flt != nil && s.flt.fin[ev.ref] > now {
			// A straggler event stretched the running task after this
			// completion was scheduled; re-arm at the authoritative finish.
			s.eng.At(s.flt.fin[ev.ref], ev)
			return
		}
		s.nodes[ev.ref].taskDone(s, ev.jidx, ev.aux, ev.flags, ev.sched, now)
	case evSample:
		s.sampleTick(now)
	case evNodeFail:
		if ev.ref < 0 {
			s.failRandomNodes(now, int(ev.aux))
		} else {
			s.failNode(ev.ref, now)
		}
	case evNodeRecover:
		if ev.ref < 0 {
			s.recoverRandomNodes(now, int(ev.aux))
		} else {
			s.recoverNode(ev.ref, now)
		}
	case evCentralDown:
		s.centralOutageStart(now)
	case evCentralUp:
		s.centralOutageEnd(now)
	case evSnapRefresh:
		s.snapRefreshTick(ev.ref, ev.gen, now)
	case evSchedRetry:
		s.schedRetryTick(ev.ref, ev.gen)
	case evSchedFail:
		s.failScheduler(ev.ref)
	case evSchedRecover:
		s.recoverScheduler(ev.ref, now)
	case evProbeTimeout:
		s.probeTimeoutTick(ev)
	case evAssignRetry:
		s.assignRetryTick(ev)
	case evTaskDirect:
		s.taskDirectArrive(ev, now)
	case evSpecLaunch:
		s.specLaunchTick(ev)
	case evSpecCancel:
		s.specCancelTick(ev)
	case evStraggle:
		s.straggleTick(int(ev.aux), now)
	}
}

// submitNext submits the pending decoded job (submission-order position
// pos), pulling the next job from the source and chaining its submit
// event. Only one submit event is ever pending and only one undecoded job
// is ever held, which is what keeps the engine's peak heap length — and,
// on a streamed run, the decoded workload — proportional to in-flight
// state instead of to the trace length. The chain runs on the engine's
// reserved sequence numbers (position+1), reproducing the tie-break rank
// each submit would have had if every submit were preloaded before the
// run started.
//
//hawk:hotpath
func (s *simulation) submitNext(pos int32) {
	if s.failErr != nil {
		return // a prior source failure already aborted the run
	}
	job := s.pending
	s.pending = nil
	if next := pos + 1; int(next) < s.totalJobs {
		nxt, ok := s.source.Next()
		if !ok {
			err := workload.SourceErr(s.source)
			if err == nil {
				err = fmt.Errorf("sim: source %q ended after %d jobs, meta promised %d", s.meta.Name, s.submitted, s.totalJobs) //hawk:allow fatal-abort path, runs at most once per run
			}
			s.failRun(err)
			return
		}
		if nxt.SubmitTime < job.SubmitTime {
			s.failRun(fmt.Errorf("sim: source %q: job %d out of order: submit %g after %g", s.meta.Name, nxt.ID, nxt.SubmitTime, job.SubmitTime)) //hawk:allow fatal-abort path, runs at most once per run
			return
		}
		s.pending = nxt
		s.submitted++
		s.eng.AtReserved(nxt.SubmitTime, uint64(next)+1, simEvent{kind: evSubmit, ref: next})
	}
	s.submit(job)
}

// sampleTick records one utilization sample and schedules the next, for as
// long as jobs remain — the periodic sampler the paper uses for §2.3/§4.2
// (every 100 s by default). Each tick is an ordinary event: relative to
// other events at the same instant it fires in insertion order, and the
// next tick is scheduled only after the current one runs. Alongside the
// whole-cluster series it samples the live general partition's busy
// fraction, the robustness figures' measure of stealing keeping that
// partition fed during a central outage.
//
//hawk:hotpath
func (s *simulation) sampleTick(now float64) {
	if s.jobsDone >= s.totalJobs {
		return
	}
	if s.eng.Pending() == 0 {
		// Nothing else is scheduled: every in-flight message and running
		// task is an event, so an empty heap means the remaining jobs are
		// stuck in a backlog no future event can release (a scenario that
		// never restores capacity). Stop the sampler so the engine drains
		// and run reports the deadlock instead of ticking forever.
		return
	}
	s.res.Utilization.AddAt(now, float64(s.busyNodes)/float64(s.slots))
	if aliveGeneral := s.view.AliveGeneral(); aliveGeneral > 0 {
		s.res.GeneralUtilization.AddAt(now, float64(s.busyGeneral)/float64(aliveGeneral))
	} else {
		s.res.GeneralUtilization.AddAt(now, 0)
	}
	s.nextSample += s.cfg.UtilizationInterval
	s.eng.At(s.nextSample, simEvent{kind: evSample})
}
