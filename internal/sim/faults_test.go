package sim

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

func faultTrace(t *testing.T) *workload.Trace {
	t.Helper()
	return workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 250, MeanInterArrival: 0.4, Seed: 11,
	})
}

// faultMix is one seeded fault configuration for the conservation sweep.
type faultMix struct {
	name string
	pol  string
	spec policy.FaultSpec
}

// conservationMixes enumerates the seeded fault combinations the
// conservation invariant must survive: every loss class alone and
// combined, with and without jitter, stragglers, and speculation, across
// the probe-based and central policies. MaxRetries is generous so a chain
// exhausting all retries (p^(MaxRetries+1)) cannot fire by chance and
// starve a placement mid-sweep.
func conservationMixes() []faultMix {
	const r = 8
	return []faultMix{
		{"probe-loss-sparrow", "sparrow", policy.FaultSpec{ProbeLoss: 0.3, MaxRetries: r}},
		{"probe-loss-hawk", "hawk", policy.FaultSpec{ProbeLoss: 0.3, MaxRetries: r}},
		{"reply-loss-sparrow", "sparrow", policy.FaultSpec{ReplyLoss: 0.3, MaxRetries: r}},
		{"reply-loss-hawk", "hawk", policy.FaultSpec{ReplyLoss: 0.3, MaxRetries: r}},
		{"steal-loss-hawk", "hawk", policy.FaultSpec{StealLoss: 0.5}},
		{"assign-loss-hawk", "hawk", policy.FaultSpec{AssignLoss: 0.3, MaxRetries: r}},
		{"assign-loss-central", "centralized", policy.FaultSpec{AssignLoss: 0.3, MaxRetries: r}},
		{"jitter-sparrow", "sparrow", policy.FaultSpec{Jitter: 0.05}},
		{"jitter-hawk", "hawk", policy.FaultSpec{Jitter: 0.05}},
		{"jitter-central", "centralized", policy.FaultSpec{Jitter: 0.05}},
		{"straggle-hawk", "hawk", policy.FaultSpec{
			Stragglers: []policy.StragglerEvent{{At: 20, Count: 100, Factor: 4}, {At: 60, Count: 50, Factor: 2}},
		}},
		{"straggle-recover-hawk", "hawk", policy.FaultSpec{
			Stragglers: []policy.StragglerEvent{{At: 10, Count: 200, Factor: 8}, {At: 50, Count: 200, Factor: 1}},
		}},
		{"speculate-sparrow", "sparrow", policy.FaultSpec{Speculate: true, SpeculatePercentile: 70}},
		{"speculate-hawk", "hawk", policy.FaultSpec{Speculate: true, SpeculatePercentile: 70}},
		{"speculate-stragglers-hawk", "hawk", policy.FaultSpec{
			Speculate: true, SpeculatePercentile: 80,
			Stragglers: []policy.StragglerEvent{{At: 15, Count: 150, Factor: 6}},
		}},
		{"mixed-loss-sparrow", "sparrow", policy.FaultSpec{
			ProbeLoss: 0.1, ReplyLoss: 0.1, StealLoss: 0.1, AssignLoss: 0.1, Jitter: 0.02, MaxRetries: r,
		}},
		{"mixed-loss-hawk", "hawk", policy.FaultSpec{
			ProbeLoss: 0.1, ReplyLoss: 0.1, StealLoss: 0.1, AssignLoss: 0.1, Jitter: 0.02, MaxRetries: r,
		}},
		{"mixed-loss-split", "split", policy.FaultSpec{
			ProbeLoss: 0.1, ReplyLoss: 0.1, AssignLoss: 0.1, Jitter: 0.02, MaxRetries: r,
		}},
		{"everything-hawk", "hawk", policy.FaultSpec{
			ProbeLoss: 0.08, ReplyLoss: 0.08, StealLoss: 0.2, AssignLoss: 0.08,
			Jitter: 0.03, MaxRetries: r, Speculate: true, SpeculatePercentile: 75,
			Stragglers: []policy.StragglerEvent{{At: 25, Count: 80, Factor: 5}},
		}},
		{"everything-central", "centralized", policy.FaultSpec{
			AssignLoss: 0.15, Jitter: 0.03, MaxRetries: r,
			Stragglers: []policy.StragglerEvent{{At: 25, Count: 80, Factor: 5}},
		}},
	}
}

// The conservation invariant: under any fault mix every submitted job
// completes exactly once, and the executed-task count balances the trace
// net of speculative duplicates. The fault plane may delay and duplicate
// work, never lose it.
func TestFaultConservation(t *testing.T) {
	tr := faultTrace(t)
	totalTasks := 0
	for _, j := range tr.Jobs {
		totalTasks += j.NumTasks()
	}
	for i, mix := range conservationMixes() {
		mix := mix
		t.Run(mix.name, func(t *testing.T) {
			spec := mix.spec
			res, err := Run(tr, policy.Config{
				NumNodes: 1200, Policy: mix.pol, Seed: int64(7 + i), Faults: &spec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Jobs) != tr.Len() {
				t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
			}
			seen := make(map[int]bool, len(res.Jobs))
			for _, j := range res.Jobs {
				if seen[j.ID] {
					t.Fatalf("job %d completed twice", j.ID)
				}
				seen[j.ID] = true
			}
			// Every execution is a trace task or a speculative duplicate
			// that reached a node; a duplicate cancelled while still queued
			// counts as launched but never executes.
			if res.TasksExecuted < int64(totalTasks) {
				t.Fatalf("executed %d < %d trace tasks", res.TasksExecuted, totalTasks)
			}
			if res.TasksExecuted > int64(totalTasks)+res.SpeculativeLaunches {
				t.Fatalf("executed %d > %d tasks + %d speculative launches",
					res.TasksExecuted, totalTasks, res.SpeculativeLaunches)
			}
			// Without node churn every launched duplicate resolves as a win
			// or as wasted work, exactly once.
			if res.SpeculativeWins+res.SpeculativeWasted != res.SpeculativeLaunches {
				t.Fatalf("speculation leak: %d wins + %d wasted != %d launches",
					res.SpeculativeWins, res.SpeculativeWasted, res.SpeculativeLaunches)
			}
			loss := spec.ProbeLoss + spec.ReplyLoss + spec.AssignLoss
			if loss > 0 && res.MessagesDropped.Total() == 0 {
				t.Error("lossy run dropped no messages")
			}
			if loss == 0 && spec.StealLoss == 0 && res.MessagesDropped.Total() != 0 {
				t.Errorf("loss-free run dropped %d messages", res.MessagesDropped.Total())
			}
		})
	}
}

// A fault-free config reports no fault counters at all: the MessagesDropped
// pointer stays nil so reports serialize byte-identically to runs that
// predate the fault plane.
func TestFaultFreeReportOmitsCounters(t *testing.T) {
	tr := faultTrace(t)
	res, err := Run(tr, policy.Config{NumNodes: 1200, Policy: "hawk", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesDropped != nil {
		t.Error("fault-free run populated MessagesDropped")
	}
	if res.ProbeRetries != 0 || res.ProbeTimeouts != 0 || res.FallbacksToCentral != 0 ||
		res.SpeculativeLaunches != 0 || res.StragglerSlowdowns != 0 {
		t.Error("fault-free run populated fault counters")
	}

	// A spec that injects nothing canonicalizes to nil and must produce the
	// identical report.
	same, err := Run(tr, policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 9,
		Faults: &policy.FaultSpec{MaxRetries: 5, RetryBackoff: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if same.Makespan != res.Makespan || same.TasksExecuted != res.TasksExecuted {
		t.Error("inject-nothing spec changed the run")
	}
}

// Retry and fallback defenses engage under heavy probe loss: timeouts fire,
// retries are bounded, and on a hawk cluster exhausted probes degrade to
// the central queue rather than hanging.
func TestFaultDefensesEngage(t *testing.T) {
	tr := faultTrace(t)
	res, err := Run(tr, policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 3,
		Faults: &policy.FaultSpec{ProbeLoss: 0.6, ReplyLoss: 0.6, MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeTimeouts == 0 || res.ProbeRetries == 0 {
		t.Errorf("60%% loss produced %d timeouts, %d retries", res.ProbeTimeouts, res.ProbeRetries)
	}
	if res.FallbacksToCentral == 0 {
		t.Error("exhausted probes never fell back to the central queue")
	}
	if res.MessagesDropped.Probes == 0 || res.MessagesDropped.Replies == 0 {
		t.Errorf("drop accounting: %+v", *res.MessagesDropped)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
}

// Total message loss must terminate with the deadlock diagnosis, never
// hang: retry chains are bounded, exhausted placements park, and the
// quiescent heap surfaces them in the error detail.
func TestFaultAllDropTerminates(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 40, MeanInterArrival: 0.5, Seed: 11,
	})
	for _, pol := range []string{"sparrow", "hawk", "centralized"} {
		_, err := Run(tr, policy.Config{
			NumNodes: 300, Policy: pol, Seed: 1,
			Faults: &policy.FaultSpec{ProbeLoss: 1, ReplyLoss: 1, AssignLoss: 1, MaxRetries: 2},
		})
		if err == nil {
			t.Fatalf("%s: total loss completed the trace", pol)
		}
		if !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("%s: want deadlock diagnosis, got %v", pol, err)
		}
		if !strings.Contains(err.Error(), "exhausting fault retries") {
			t.Fatalf("%s: deadlock detail omits the starved placements: %v", pol, err)
		}
	}
}

// Straggler semantics: a slowdown mid-task stretches the remaining work, a
// recovery (Factor 1) never retroactively shrinks an in-flight task, and
// subsequent tasks run at the node's current factor.
func TestStragglerStretchesInFlight(t *testing.T) {
	one := func(dur float64) *workload.Trace {
		return &workload.Trace{
			Name: "one", Cutoff: 1e9, ShortPartitionFraction: 0.5,
			Jobs: []*workload.Job{{ID: 0, SubmitTime: 0, Durations: []float64{dur}}},
		}
	}

	// Slow every node at t=10, factor 4: the single 100 s task has ~90 s
	// left, which stretches to ~360 s.
	slow, err := Run(one(100), policy.Config{
		NumNodes: 4, Policy: "sparrow", Seed: 1,
		Faults: &policy.FaultSpec{Stragglers: []policy.StragglerEvent{{At: 10, Count: 4, Factor: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := slow.Jobs[0].Runtime; res < 350 || res > 380 {
		t.Errorf("stretched runtime %v, want ~370", res)
	}
	if slow.StragglerSlowdowns != 4 {
		t.Errorf("StragglerSlowdowns = %d, want 4", slow.StragglerSlowdowns)
	}

	// Ending a slowdown mid-task (factor 8 at t=0, factor 1 at t=10) must
	// not shrink the in-flight task below its already-committed stretch.
	recovered, err := Run(one(100), policy.Config{
		NumNodes: 4, Policy: "sparrow", Seed: 1,
		Faults: &policy.FaultSpec{Stragglers: []policy.StragglerEvent{
			{At: 0, Count: 4, Factor: 8},
			{At: 10, Count: 4, Factor: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := recovered.Jobs[0].Runtime; res < 790 {
		t.Errorf("runtime %v: recovery retroactively shrank an in-flight task", res)
	}
}

// Speculation first-completion-wins: on a cluster where a third of the
// nodes straggle, duplicates launched on healthy nodes finish first and the
// stragglers' copies are cancelled, improving aggregate job runtime. (The
// absolute makespan is not asserted: a one-shot duplicate placed on a
// random node can itself land on a straggler or queue behind stretched
// work, so the worst single job is not guaranteed to be rescued.)
func TestSpeculationBoundsStraggler(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 120, MeanInterArrival: 0.5, Seed: 4,
	})
	spec := policy.FaultSpec{
		Stragglers: []policy.StragglerEvent{{At: 5, Count: 300, Factor: 20}},
	}
	cfg := policy.Config{NumNodes: 900, Policy: "sparrow", Seed: 2, Faults: &spec}
	plain, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sspec := spec
	sspec.Speculate = true
	sspec.SpeculatePercentile = 90
	scfg := cfg
	scfg.Faults = &sspec
	spedUp, err := Run(tr, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if spedUp.SpeculativeLaunches == 0 || spedUp.SpeculativeWins == 0 {
		t.Fatalf("speculation idle: %d launches, %d wins",
			spedUp.SpeculativeLaunches, spedUp.SpeculativeWins)
	}
	mean := func(r *policy.Report) float64 {
		var sum float64
		for _, j := range r.Jobs {
			sum += j.Runtime
		}
		return sum / float64(len(r.Jobs))
	}
	if m, p := mean(spedUp), mean(plain); m >= p {
		t.Errorf("speculation did not help: mean runtime %v vs %v without", m, p)
	}
}

// Faults compose with churn: message loss, stragglers, and speculation
// riding the same run as scripted node failures must still conserve every
// task. A straggling node that then fails returns at nominal speed.
func TestFaultsComposeWithChurn(t *testing.T) {
	tr := faultTrace(t)
	res, err := Run(tr, policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 9,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 40, Kind: policy.ChurnFail, Count: 80},
			{At: 90, Kind: policy.ChurnRecover, Count: 80},
		}},
		Faults: &policy.FaultSpec{
			ProbeLoss: 0.1, ReplyLoss: 0.1, AssignLoss: 0.1, Jitter: 0.02,
			MaxRetries: 8, Speculate: true, SpeculatePercentile: 80,
			Stragglers: []policy.StragglerEvent{{At: 30, Count: 120, Factor: 6}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	seen := make(map[int]bool, len(res.Jobs))
	for _, j := range res.Jobs {
		if seen[j.ID] {
			t.Fatalf("job %d completed twice", j.ID)
		}
		seen[j.ID] = true
	}
	if res.NodeFailures != 80 || res.NodeRecoveries != 80 {
		t.Errorf("failures/recoveries = %d/%d, want 80/80", res.NodeFailures, res.NodeRecoveries)
	}
	// Churn can orphan a duplicate whose record resolved when its original
	// died, so the strict launch balance relaxes to an upper bound.
	if res.SpeculativeWins+res.SpeculativeWasted > res.SpeculativeLaunches {
		t.Errorf("speculation overcount: %d wins + %d wasted > %d launches",
			res.SpeculativeWins, res.SpeculativeWasted, res.SpeculativeLaunches)
	}
}

// Faults compose with the multi-scheduler model: commit-message loss rides
// the claim/commit path and every task still lands exactly once.
func TestFaultsComposeWithSchedulers(t *testing.T) {
	tr := faultTrace(t)
	res, err := Run(tr, policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 9,
		Schedulers: &policy.SchedulerSpec{Count: 4, SnapshotInterval: 5},
		Faults: &policy.FaultSpec{
			ProbeLoss: 0.1, ReplyLoss: 0.1, CommitLoss: 0.2, Jitter: 0.02, MaxRetries: 8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.MessagesDropped.Commits == 0 {
		t.Error("commit loss never dropped a commit")
	}
	if res.CentralAssigns == 0 {
		t.Error("multi-scheduler run placed nothing centrally")
	}
}

// Stragglers and node failures compose without double-counting capacity:
// the feasibility margin comes from ChurnSpec.MaxConcurrentFailures alone.
// A straggling node still holds its slots — it is slow, not gone — so even
// a spec that slows most of the cluster must not shrink the probe pool,
// and a node that straggles and *then* fails consumes exactly one unit of
// margin (its churn failure), not two.
func TestStragglerFeasibilityComposition(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 50, MeanInterArrival: 2, Seed: 1,
	})
	maxTasks := 0
	for _, j := range tr.Jobs {
		if n := j.NumTasks(); n > maxTasks {
			maxTasks = n
		}
	}
	nodes := maxTasks + 10
	// Straggle well over the margin's worth of nodes — including, by
	// construction, nodes the churn script later fails — while failing
	// exactly as many nodes as the margin allows. Only the churn failures
	// count: the run must pass the pre-flight and complete.
	cfg := policy.Config{
		NumNodes: nodes, Policy: "sparrow", Seed: 1,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 30, Kind: policy.ChurnFail, Count: 10},
			{At: 60, Kind: policy.ChurnRecover, Count: 10},
		}},
		Faults: &policy.FaultSpec{Stragglers: []policy.StragglerEvent{
			{At: 5, Count: nodes / 2, Factor: 4},
		}},
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatalf("stragglers fed the feasibility margin: %v", err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.StragglerSlowdowns != int64(nodes/2) {
		t.Errorf("StragglerSlowdowns = %d, want %d", res.StragglerSlowdowns, nodes/2)
	}
	// One more churn failure exceeds the margin — rejected up front even
	// though the straggler spec is unchanged, proving the margin tracks
	// churn only and a straggling-then-failing node counts once.
	over := cfg
	over.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 30, Kind: policy.ChurnFail, Count: 11},
	}}
	if _, err := Run(tr, over); err == nil {
		t.Fatal("scenario shrinking the pool below the widest job must be rejected")
	}
}
