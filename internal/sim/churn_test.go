package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

func churnTrace(t *testing.T) *workload.Trace {
	t.Helper()
	return workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 400, MeanInterArrival: 0.5, Seed: 11,
	})
}

// Under a rolling-failure scenario every job must still complete: lost
// probes are re-sent, lost tasks re-execute, and the report's churn
// counters account for the damage.
func TestChurnAllJobsComplete(t *testing.T) {
	tr := churnTrace(t)
	cfg := policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 9,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 40, Kind: policy.ChurnFail, Count: 80},
			{At: 90, Kind: policy.ChurnRecover, Count: 80},
			{At: 130, Kind: policy.ChurnFail, Node: 3},    // short partition
			{At: 140, Kind: policy.ChurnFail, Node: 1100}, // general partition
			{At: 190, Kind: policy.ChurnRecover, Node: 3},
			{At: 200, Kind: policy.ChurnRecover, Node: 1100},
		}},
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.NodeFailures != 82 || res.NodeRecoveries != 82 {
		t.Errorf("failures/recoveries = %d/%d, want 82/82", res.NodeFailures, res.NodeRecoveries)
	}
	if res.TasksReexecuted == 0 {
		t.Error("scenario interrupted no running task; enlarge the failure wave")
	}
	if res.WorkLostSeconds <= 0 {
		t.Error("re-executed tasks must account lost work")
	}
	if res.ProbesLost == 0 {
		t.Error("failing 80 loaded nodes must lose probes")
	}
	// Makespan is the last completion, not the last scripted event.
	last := 0.0
	for _, j := range res.Jobs {
		if end := j.SubmitTime + j.Runtime; end > last {
			last = end
		}
	}
	if res.Makespan != last {
		t.Errorf("makespan %g != last completion %g", res.Makespan, last)
	}
}

// Churn runs are deterministic: same (trace, config) — including the
// seeded random failure picks — same report.
func TestChurnDeterministic(t *testing.T) {
	tr := churnTrace(t)
	cfg := policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 7,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 30, Kind: policy.ChurnFail, Count: 60},
			{At: 100, Kind: policy.ChurnRecover, Count: 60},
		}},
	}
	a, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Jobs, b.Jobs) || a.Events != b.Events ||
		a.TasksReexecuted != b.TasksReexecuted || a.ProbesLost != b.ProbesLost {
		t.Fatal("identical churn configs produced different reports")
	}
}

// A scripted central outage parks central placements in the backlog,
// marks jobs submitted meanwhile, accounts the downtime exactly, and
// still completes every job once the scheduler returns.
func TestCentralOutage(t *testing.T) {
	tr := churnTrace(t)
	cfg := policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 9,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 50, Kind: policy.ChurnCentralDown},
			{At: 170, Kind: policy.ChurnCentralUp},
		}},
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.CentralOutageSeconds != 120 {
		t.Errorf("outage seconds = %g, want 120", res.CentralOutageSeconds)
	}
	if res.CentralDeferred == 0 {
		t.Error("a 120 s outage under this load must defer central placements")
	}
	marked := 0
	for _, j := range res.Jobs {
		if j.DuringOutage {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no job carries the DuringOutage mark")
	}
	if len(res.OutageShortRuntimes())+len(res.OutageLongRuntimes()) != marked {
		t.Error("outage runtime helpers disagree with the per-job marks")
	}
	// An outage with no membership churn keeps the static sampling fast
	// path, so the run before the outage is bit-identical to a run
	// without a scenario: every job completed before the outage started
	// has the exact same runtime.
	base, err := Run(tr, policy.Config{NumNodes: 1200, Policy: "hawk", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	baseRT := map[int]float64{}
	for _, j := range base.Jobs {
		baseRT[j.ID] = j.Runtime
	}
	checked := 0
	for _, j := range res.Jobs {
		if j.SubmitTime+j.Runtime < 50 {
			if baseRT[j.ID] != j.Runtime {
				t.Fatalf("job %d finished before the outage but diverged from the static run", j.ID)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no job completed before the outage; move the window")
	}
}

// An outage that the script never closes is accounted to the end of the
// run, and the backlog deadlock is reported with its cause.
func TestCentralOutageNeverEnds(t *testing.T) {
	tr := churnTrace(t)
	cfg := policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 9,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 50, Kind: policy.ChurnCentralDown},
		}},
	}
	_, err := Run(tr, cfg)
	if err == nil {
		t.Fatal("want deadlock error: long jobs can never place")
	}
	if !strings.Contains(err.Error(), "backlogged") {
		t.Errorf("deadlock error should name the central backlog, got: %v", err)
	}
}

// Heterogeneity that leaves every node at speed 1 — explicitly, or with
// zero-fraction classes — must not disturb the engine at all: identical
// jobs, counters, and event counts to a homogeneous run.
func TestUniformHeterogeneityIsIdentity(t *testing.T) {
	tr := churnTrace(t)
	base, err := Run(tr, policy.Config{NumNodes: 1200, Policy: "hawk", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]*policy.Heterogeneity{
		"speed-one": {Classes: []policy.SpeedClass{{Fraction: 0.5, Speed: 1}}},
		"zero-frac": {Classes: []policy.SpeedClass{{Fraction: 0, Speed: 0.25}}},
	} {
		res, err := Run(tr, policy.Config{NumNodes: 1200, Policy: "hawk", Seed: 9, Heterogeneity: h})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Jobs, base.Jobs) || res.Events != base.Events {
			t.Errorf("%s: uniform heterogeneity changed the run", name)
		}
	}
}

// Slowing the whole cluster by 2x must stretch job runtimes; the central
// queue keeps observing the scaled durations, so the run still completes.
func TestHeterogeneitySlowsJobs(t *testing.T) {
	tr := churnTrace(t)
	base, err := Run(tr, policy.Config{NumNodes: 1200, Policy: "hawk", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(tr, policy.Config{
		NumNodes: 1200, Policy: "hawk", Seed: 9,
		Heterogeneity: &policy.Heterogeneity{Classes: []policy.SpeedClass{{Fraction: 1, Speed: 0.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(slow.Jobs), tr.Len())
	}
	if slow.Makespan <= base.Makespan {
		t.Errorf("half-speed cluster makespan %g not above nominal %g", slow.Makespan, base.Makespan)
	}
}

// Node failures can hit the split cluster's central servers too: removing
// and re-adding general nodes must keep the waiting-time queue consistent.
func TestChurnWithCentralServers(t *testing.T) {
	tr := churnTrace(t)
	cfg := policy.Config{
		NumNodes: 1200, Policy: "centralized", Seed: 9,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 40, Kind: policy.ChurnFail, Count: 100},
			{At: 120, Kind: policy.ChurnRecover, Count: 100},
		}},
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.TasksReexecuted == 0 {
		t.Error("failing 100 busy central servers must interrupt tasks")
	}
}

// A scenario that could shrink a probe pool below the widest job is
// rejected before the run by the feasibility margin.
func TestChurnFeasibilityMargin(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 50, MeanInterArrival: 2, Seed: 1,
	})
	maxTasks := 0
	for _, j := range tr.Jobs {
		if n := j.NumTasks(); n > maxTasks {
			maxTasks = n
		}
	}
	nodes := maxTasks + 10
	cfg := policy.Config{
		NumNodes: nodes, Policy: "sparrow", Seed: 1,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 10, Kind: policy.ChurnFail, Count: 20}, // leaves < maxTasks live nodes
		}},
	}
	if _, err := Run(tr, cfg); err == nil {
		t.Fatal("scenario shrinking the pool below the widest job must be rejected")
	}
	// The same failures with recoveries in between are fine only if the
	// concurrent maximum stays within the margin.
	ok := policy.Config{
		NumNodes: nodes, Policy: "sparrow", Seed: 1,
		Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{
			{At: 10, Kind: policy.ChurnFail, Count: 5},
			{At: 20, Kind: policy.ChurnRecover, Count: 5},
			{At: 30, Kind: policy.ChurnFail, Count: 5},
			{At: 40, Kind: policy.ChurnRecover, Count: 5},
		}},
	}
	if _, err := Run(tr, ok); err != nil {
		t.Fatalf("staggered failures within the margin rejected: %v", err)
	}
}
