package sim

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// The benchmarks sample allocation behavior; these tests pin it. After a
// warm-up prefix has grown every scratch buffer, node queue, and the event
// heap to its steady-state capacity, stepping the engine through the heart
// of a run must allocate nothing — each subtest exercises one hot path on
// the flat arena layout: submit→probe placement (Sparrow), the steal path
// in both the Figure 3 and random-position forms (Hawk), and central
// assignment (§3.7).
//
// The only amortized-growth slices left on the path are the wait
// observations; their backing arrays are pre-grown here so the measurement
// sees the steady state rather than a growth step. The utilization sampler
// is pushed past the horizon for the same reason (its series lives in
// internal/stats and cannot be pre-grown from here).
//
// hawklint's hotalloc analyzer guards the same property at vet time: the
// functions these paths run through are annotated //hawk:hotpath (see
// internal/lint), which statically forbids the constructs that would make
// this pin regress — capturing closures, map allocation, append without
// backing-array reuse, interface boxing, fmt calls. AllocsPerRun stays as
// the runtime ground truth that the static rule set actually suffices.
func steadyStateSim(t *testing.T, tr *workload.Trace, cfg policy.Config, warm int) *simulation {
	t.Helper()
	cfg.UtilizationInterval = 1e18
	s, err := newSimulation(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.res.ShortEntryWaits = make([]float64, 0, 1<<21)
	s.res.LongEntryWaits = make([]float64, 0, 1<<21)
	for i := 0; i < warm; i++ {
		if !s.eng.Step() {
			t.Fatalf("simulation drained after %d warm-up events — enlarge the trace", i)
		}
	}
	return s
}

func measureSteadySteps(t *testing.T, s *simulation, steps int) {
	t.Helper()
	allocs := testing.AllocsPerRun(steps, func() { s.eng.Step() })
	if s.eng.Pending() == 0 {
		t.Fatal("simulation drained during measurement — enlarge the trace")
	}
	if allocs != 0 {
		t.Errorf("steady-state event dispatch allocated %v times per event, want 0", allocs)
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	t.Run("submit-probe", func(t *testing.T) {
		// All-short load on Sparrow: every measured event is a submit,
		// probe arrival, probe round-trip, or completion.
		tr := workload.Generate(workload.Google(), workload.GenConfig{
			NumJobs: 4000, MeanInterArrival: 0.2, Seed: 7,
		})
		s := steadyStateSim(t, tr, policy.Config{NumNodes: 2000, Policy: "sparrow", Seed: 1}, 20000)
		measureSteadySteps(t, s, 30000)
	})

	t.Run("steal", func(t *testing.T) {
		// The BenchmarkLargeCluster regime scaled down: mixed trace under
		// load so idle nodes steal constantly (candidate sampling,
		// eligible-group scans, queue surgery, enqueueFront).
		tr := workload.Generate(workload.Google(), workload.GenConfig{
			NumJobs: 1500, MeanInterArrival: 0.5, Seed: 13,
		})
		s := steadyStateSim(t, tr, policy.Config{NumNodes: 6000, Policy: "hawk", Seed: 5}, 30000)
		measureSteadySteps(t, s, 40000)
		if s.res.StealAttempts == 0 {
			t.Fatal("measured window exercised no steal attempts")
		}
	})

	t.Run("steal-random-positions", func(t *testing.T) {
		// The §3.6 ablation path: RandomShortIndicesInto through the
		// threaded scratch buffers.
		tr := workload.Generate(workload.Google(), workload.GenConfig{
			NumJobs: 1500, MeanInterArrival: 0.5, Seed: 13,
		})
		s := steadyStateSim(t, tr, policy.Config{
			NumNodes: 6000, Policy: "hawk", Seed: 5, StealRandomPositions: true,
		}, 30000)
		measureSteadySteps(t, s, 40000)
		if s.res.StealSuccesses == 0 {
			t.Fatal("measured window exercised no random-position steals")
		}
	})

	t.Run("central-assign", func(t *testing.T) {
		tr := workload.Generate(workload.Google(), workload.GenConfig{
			NumJobs: 800, MeanInterArrival: 0.5, Seed: 3,
		})
		s := steadyStateSim(t, tr, policy.Config{NumNodes: 3000, Policy: "centralized", Seed: 2}, 10000)
		measureSteadySteps(t, s, 20000)
		if s.res.CentralAssigns == 0 {
			t.Fatal("measured window exercised no central assignments")
		}
	})

	// The dynamic-cluster refactor must not cost the churn-free fast path
	// its zero-allocation steady state — including with heterogeneous
	// node speeds, which stay on the static membership samplers (speed
	// scaling is a per-execution division, not an allocation).
	t.Run("heterogeneous-churn-free", func(t *testing.T) {
		tr := workload.Generate(workload.Google(), workload.GenConfig{
			NumJobs: 1500, MeanInterArrival: 0.5, Seed: 13,
		})
		s := steadyStateSim(t, tr, policy.Config{
			NumNodes: 6000, Policy: "hawk", Seed: 5,
			Heterogeneity: &policy.Heterogeneity{Classes: []policy.SpeedClass{{Fraction: 0.4, Speed: 0.5}}},
		}, 30000)
		if s.speeds == nil {
			t.Fatal("heterogeneity spec did not materialize speed factors")
		}
		if s.dyn != nil || s.view.Dynamic() {
			t.Fatal("a churn-free run must stay on the static membership fast path")
		}
		measureSteadySteps(t, s, 40000)
		if s.res.StealAttempts == 0 {
			t.Fatal("measured window exercised no steal attempts")
		}
	})

	// The gray-failure plane must be free when unused: a fault-free config
	// carries no fault state at all (flt nil, membership static), so every
	// hot path takes the same branches — and the same zero allocations — it
	// took before the fault plane existed.
	t.Run("fault-free-fast-path", func(t *testing.T) {
		tr := workload.Generate(workload.Google(), workload.GenConfig{
			NumJobs: 1500, MeanInterArrival: 0.5, Seed: 13,
		})
		s := steadyStateSim(t, tr, policy.Config{NumNodes: 6000, Policy: "hawk", Seed: 5}, 30000)
		if s.flt != nil || s.dyn != nil || s.view.Dynamic() {
			t.Fatal("a fault-free run must carry no fault or membership state")
		}
		measureSteadySteps(t, s, 40000)
	})
}
