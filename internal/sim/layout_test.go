package sim

import (
	"testing"
	"unsafe"

	"repro/internal/policy"
	"repro/internal/workload"
)

// The flat-layout size pins. The event payload is copied by every heap
// sift and the queue entry by every steal and queue scan, so their sizes
// are direct multipliers on the simulator's dominant loops. The pointered
// layout this PR replaced was 24 bytes per event (kind, central, int32
// ref, *jobState, float64 dur) and 32 bytes per entry (kind, *jobState,
// two float64s); the int32-arena layout must stay strictly smaller, and
// both must stay pointer-free so the event heap and node queues are opaque
// to the garbage collector.
//
// The same pins are enforced at vet time by hawklint's structsize analyzer
// (the //hawk:size and //hawk:nopointers directives on simEvent and entry —
// see internal/lint); this test stays as the runtime backstop so the
// invariant still holds if the vet step is skipped.
func TestHotStructSizes(t *testing.T) {
	if got := unsafe.Sizeof(simEvent{}); got != 16 {
		t.Errorf("sizeof(simEvent) = %d, want 16 (was 24 with a *jobState field)", got)
	}
	if got := unsafe.Sizeof(entry{}); got != 24 {
		t.Errorf("sizeof(entry) = %d, want 24 (was 32 with a *jobState field)", got)
	}
	// The arena elements are not copied per event, but node size scales
	// with cluster size (170k nodes in the Figure 6 sweep) — keep it to
	// one cache line per pair.
	if got := unsafe.Sizeof(node{}); got > 40 {
		t.Errorf("sizeof(node) = %d, want <= 40", got)
	}
}

// Lazy chained submission must bound the event heap by in-flight state,
// not by trace length: the eager engine preloaded one submit event per
// trace job, so its peak pending length started at len(jobs)+1 and memory
// scaled with the trace. With chaining, at most one submit event is
// pending at a time and the peak tracks busy slots plus messages in their
// network flight.
func TestLazySubmissionBoundsEventHeap(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 8000, MeanInterArrival: 1, Seed: 3,
	})
	s, err := newSimulation(tr, policy.Config{NumNodes: 500, Policy: "hawk", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.run(); err != nil {
		t.Fatal(err)
	}
	peak := s.eng.MaxPending()
	// The in-flight model: at most one completion or probe round-trip
	// pending per busy slot, plus the probe bursts of jobs whose messages
	// are inside their 0.5 ms network flight (up to 2 probes per task),
	// plus the single chained submit and the sampler tick. The widest
	// job's burst bounds the flight term for this arrival rate.
	maxTasks := 0
	for _, j := range tr.Jobs {
		if n := j.NumTasks(); n > maxTasks {
			maxTasks = n
		}
	}
	bound := s.slots + 2*s.cfg.ProbeRatio*maxTasks + 64
	t.Logf("peak pending = %d for %d jobs on %d slots (in-flight bound %d)",
		peak, tr.Len(), s.slots, bound)
	// The eager engine's floor alone was len(jobs)+1 before the first
	// event fired; the in-flight bound does not grow with the trace, so
	// the peak must sit below both it and that old floor.
	if peak > bound || peak > tr.Len() {
		t.Errorf("peak pending events = %d, want O(in-flight) <= %d; O(trace) would be >= %d",
			peak, bound, tr.Len()+1)
	}
}

// An unsorted trace must schedule identically to its time-sorted form: the
// submitOrder permutation exists precisely so lazy chaining reproduces the
// eager heap's (submit time, trace position) ordering.
func TestUnsortedTraceMatchesSorted(t *testing.T) {
	sorted := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 120, MeanInterArrival: 0.5, Seed: 21,
	})
	// Scramble deterministically, keeping the same *workload.Job values.
	shuffled := &workload.Trace{
		Name:                   sorted.Name,
		Jobs:                   append([]*workload.Job(nil), sorted.Jobs...),
		Cutoff:                 sorted.Cutoff,
		ShortPartitionFraction: sorted.ShortPartitionFraction,
	}
	for i := range shuffled.Jobs {
		j := (i*7 + 3) % len(shuffled.Jobs)
		shuffled.Jobs[i], shuffled.Jobs[j] = shuffled.Jobs[j], shuffled.Jobs[i]
	}

	cfg := policy.Config{NumNodes: 400, Policy: "hawk", Seed: 5}
	a, err := Run(sorted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shuffled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.StealSuccesses != b.StealSuccesses || a.Events != b.Events {
		t.Fatalf("unsorted trace diverged: makespan %v vs %v, steals %d vs %d, events %d vs %d",
			a.Makespan, b.Makespan, a.StealSuccesses, b.StealSuccesses, a.Events, b.Events)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job report %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

// enqueueFront on a non-empty thief queue must preserve order (stolen
// entries first, then the previously queued ones) and reuse the backing
// array instead of allocating a fresh merged slice.
func TestEnqueueFrontNonEmptyQueue(t *testing.T) {
	s := &simulation{} // advance is a no-op while the node is busy
	mk := func(jidx int32) entry { return entry{jidx: jidx} }
	queued := func(n *node) []int32 {
		var ids []int32
		for _, e := range n.queue[n.head:] {
			ids = append(ids, e.jidx)
		}
		return ids
	}
	check := func(t *testing.T, n *node, want ...int32) {
		t.Helper()
		got := queued(n)
		if len(got) != len(want) {
			t.Fatalf("queue = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("queue = %v, want %v", got, want)
			}
		}
	}

	t.Run("head room", func(t *testing.T) {
		// Two popped slots at the front: the stolen entries must land in
		// them without touching the live region.
		n := &node{busy: true, queue: []entry{mk(0), mk(1), mk(2), mk(3)}, head: 2}
		before := &n.queue[0]
		n.enqueueFront(s, []entry{mk(10), mk(11)})
		check(t, n, 10, 11, 2, 3)
		if &n.queue[0] != before {
			t.Error("head-room path reallocated the queue")
		}
	})

	t.Run("shift in place", func(t *testing.T) {
		// No popped prefix, but spare capacity: live entries must slide
		// up within the same backing array.
		n := &node{busy: true}
		n.queue = make([]entry, 0, 8)
		n.queue = append(n.queue, mk(2), mk(3))
		before := &n.queue[0]
		n.enqueueFront(s, []entry{mk(10), mk(11), mk(12)})
		check(t, n, 10, 11, 12, 2, 3)
		if &n.queue[0] != before {
			t.Error("in-place shift reallocated the queue")
		}
	})

	t.Run("grow once", func(t *testing.T) {
		n := &node{busy: true, queue: []entry{mk(2), mk(3)}}
		n.queue = n.queue[:2:2] // no spare capacity
		n.enqueueFront(s, []entry{mk(10)})
		check(t, n, 10, 2, 3)
	})

	t.Run("steady state allocates nothing", func(t *testing.T) {
		n := &node{busy: true}
		n.queue = make([]entry, 0, 16)
		n.queue = append(n.queue, mk(1), mk(2), mk(3), mk(4))
		n.head = 0
		es := []entry{mk(20), mk(21)}
		allocs := testing.AllocsPerRun(100, func() {
			n.enqueueFront(s, es)
			// Restore the pre-steal shape without allocating.
			n.head += int32(len(es))
		})
		if allocs != 0 {
			t.Errorf("enqueueFront allocated %v times per merge with spare capacity", allocs)
		}
	})
}
