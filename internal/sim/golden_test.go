package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eventq"
	"repro/internal/policy"
	"repro/internal/workload"
)

// The golden-report pin: the typed-event engine rewrite (and any future
// hot-path work) must leave simulator output byte-identical to the engine
// that generated the files under testdata/golden. The serialized form
// includes everything a run produces — per-job reports, every counter, the
// event count, utilization samples, and the per-entry queueing waits — so
// any behavioral drift, however small, fails the diff.
//
// Regenerate (only when output is *meant* to change, with justification):
//
//	SIM_UPDATE_GOLDEN=1 go test ./internal/sim -run TestReportsMatchGolden

// pinnedReport is the full serialized state of one run, including the
// fields Report deliberately excludes from its public JSON form.
type pinnedReport struct {
	Report             *policy.Report `json:"report"`
	UtilizationSamples []float64      `json:"utilizationSamples"`
	ShortEntryWaits    []float64      `json:"shortEntryWaits"`
	LongEntryWaits     []float64      `json:"longEntryWaits"`
}

// goldenCases enumerates the pinned (trace, config) points: all four
// policies at a steal-heavy operating point, plus the mis-estimation,
// multi-slot, and random-position-stealing code paths.
func goldenCases() (*workload.Trace, map[string]policy.Config) {
	base := policy.Config{NumNodes: 1200, Seed: 9}
	cases := map[string]policy.Config{}
	for _, pol := range []string{"sparrow", "hawk", "centralized", "split"} {
		cfg := base
		cfg.Policy = pol
		cases[pol] = cfg
	}
	mis := base
	mis.Policy = "hawk"
	mis.MisestimateLo, mis.MisestimateHi = 0.5, 1.8
	cases["hawk-misestimate"] = mis

	slots := base
	slots.Policy = "hawk"
	slots.NumNodes, slots.SlotsPerNode = 600, 2
	cases["hawk-slots2"] = slots

	randSteal := base
	randSteal.Policy = "hawk"
	randSteal.StealRandomPositions = true
	cases["hawk-randsteal"] = randSteal

	// Dynamic-cluster scenarios: rolling node churn (membership-aware
	// sampling, task re-execution, probe re-sends) and a mid-trace
	// central-scheduler outage (backlog, outage marks). These pin the
	// churn paths the static cases never enter.
	churn := base
	churn.Policy = "hawk"
	churn.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 30, Kind: policy.ChurnFail, Count: 60},
		{At: 60, Kind: policy.ChurnFail, Node: 2},
		{At: 90, Kind: policy.ChurnRecover, Count: 40},
		{At: 130, Kind: policy.ChurnRecover, Count: 30},
	}}
	cases["hawk-churn"] = churn

	outage := base
	outage.Policy = "hawk"
	outage.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 40, Kind: policy.ChurnCentralDown},
		{At: 160, Kind: policy.ChurnCentralUp},
	}}
	cases["hawk-central-outage"] = outage

	// Multi-scheduler model: two concurrent schedulers placing against
	// stale snapshots with claim/commit conflict resolution. Pins the
	// optimistic-concurrency paths (snapshot refresh, conflict retry,
	// staleness accounting) that every single-scheduler case bypasses.
	sched2 := base
	sched2.Policy = "hawk"
	sched2.Schedulers = &policy.SchedulerSpec{Count: 2}
	cases["hawk-sched2"] = sched2

	// Gray-failure scenarios: a lossy/jittery message plane (drop
	// decisions, retry backoff chains, fault-stream draws) and straggler-
	// triggered speculative re-execution (threshold arming, duplicate
	// launches, first-completion-wins). These pin the fault-plane event
	// paths and the Seed+5 stream's draw order.
	msgloss := base
	msgloss.Policy = "hawk"
	msgloss.Faults = &policy.FaultSpec{
		ProbeLoss: 0.05, ReplyLoss: 0.03, StealLoss: 0.1,
		AssignLoss: 0.03, CommitLoss: 0.03, Jitter: 0.002, MaxRetries: 8,
	}
	cases["hawk-msgloss"] = msgloss

	spec := base
	spec.Policy = "hawk"
	spec.Faults = &policy.FaultSpec{
		Speculate: true, SpeculatePercentile: 90,
		Stragglers: []policy.StragglerEvent{
			{At: 20, Count: 80, Factor: 6},
			{At: 120, Count: 40, Factor: 1},
		},
	}
	cases["hawk-speculation"] = spec
	return goldenTrace(), cases
}

func goldenTrace() *workload.Trace {
	return workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 250, MeanInterArrival: 0.4, Seed: 11,
	})
}

func marshalPinned(t *testing.T, res *policy.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	err := enc.Encode(pinnedReport{
		Report:             res,
		UtilizationSamples: res.Utilization.Samples(),
		ShortEntryWaits:    res.ShortEntryWaits,
		LongEntryWaits:     res.LongEntryWaits,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReportsMatchGolden(t *testing.T) {
	trace, cases := goldenCases()
	update := os.Getenv("SIM_UPDATE_GOLDEN") != ""
	if update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			res, err := Run(trace, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := marshalPinned(t, res)
			path := filepath.Join("testdata", "golden", name+".json")
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with SIM_UPDATE_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: report differs from pinned golden output.\n"+
					"The simulator must stay byte-identical across perf work; if this "+
					"change is intentional, regenerate with SIM_UPDATE_GOLDEN=1 and say why in the PR.",
					name)
			}
		})
	}
}

// TestBackendsProduceIdenticalReports re-checks the engine-backend
// equivalence the golden suite pins implicitly: every golden (trace,
// config) point is run once on each event-queue backend and the two
// serialized reports must match byte for byte. The golden files prove
// the ladder reproduces the order the heap had when they were
// generated; this proves the two current backends agree with each
// other directly, without any file in the loop.
func TestBackendsProduceIdenticalReports(t *testing.T) {
	trace, cases := goldenCases()
	defer func(b eventq.Backend) { engineBackend = b }(engineBackend)
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			engineBackend = eventq.BackendLadder
			ladder, err := Run(trace, cfg)
			if err != nil {
				t.Fatal(err)
			}
			engineBackend = eventq.BackendHeap
			heap, err := Run(trace, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(marshalPinned(t, ladder), marshalPinned(t, heap)) {
				t.Fatalf("%s: ladder and heap backends produced different reports; "+
					"the engine's dispatch order must be backend-independent", name)
			}
		})
	}
}
