package workload

import (
	"fmt"
	"math"

	"repro/internal/randdist"
)

// ClusterSpec describes one k-means cluster of a workload, following the
// paper's §4.1 recipe: the number of tasks per job and the per-job mean task
// duration are drawn around centroid values, and per-task durations are
// Gaussian around the job mean.
type ClusterSpec struct {
	Name     string
	Fraction float64 // fraction of jobs drawn from this cluster
	// MeanTasks is the centroid for the number of tasks per job; the draw
	// is exponential with this mean, clamped to at least one task.
	MeanTasks float64
	// MeanDur is the centroid for the per-job mean task duration
	// (seconds). When DurSigma == 0 the draw is exponential with this
	// mean (the paper's recipe for the Cloudera/Facebook/Yahoo traces);
	// otherwise it is log-normal with median MeanDur and the given sigma,
	// which gives the synthetic Google trace its heavier tail with less
	// leakage across the long/short cutoff.
	MeanDur  float64
	DurSigma float64
	// TaskDurCV is the coefficient of variation of per-task durations
	// around the job mean (Gaussian, truncated at zero). The paper's
	// derived traces use sigma = 2*mean, i.e. CV = 2.
	TaskDurCV float64
	// Long marks this cluster as long-by-construction (every cluster
	// other than the first is long in [4, 5]); used for Table 1/2 stats.
	Long bool
}

// Spec describes a full synthetic workload: its clusters plus the default
// scheduling parameters the paper uses for the trace.
type Spec struct {
	Name                   string
	Clusters               []ClusterSpec
	Cutoff                 float64 // default long/short cutoff, seconds
	ShortPartitionFraction float64 // default reserved fraction (§4.1)
}

// Google returns the synthetic Google-2011-like workload. The paper's
// actual trace is not redistributable, so the clusters below are calibrated
// so that (with the default 1129 s cutoff) roughly 10% of jobs are long,
// long jobs hold roughly 80-84% of task-seconds and roughly 28% of tasks,
// and the per-class CDFs fall in the ranges of Figure 4. See DESIGN.md §2.
//
// Within-job task-duration variation (TaskDurCV = 0.15) models the paper's
// observation that jobs are largely recurring computations with similar
// tasks (§3.3 cites [9]): tasks of one job cluster tightly around the job
// mean, which is what makes the average-task-runtime estimate useful to the
// centralized scheduler. The mis-estimation experiment (§4.8) perturbs the
// estimates independently of this knob.
func Google() Spec {
	return Spec{
		Name:                   "google",
		Cutoff:                 1129,
		ShortPartitionFraction: 0.17,
		Clusters: []ClusterSpec{
			{Name: "short-small", Fraction: 0.60, MeanTasks: 10, MeanDur: 100, DurSigma: 0.7, TaskDurCV: 0.15},
			{Name: "short-medium", Fraction: 0.30, MeanTasks: 45, MeanDur: 350, DurSigma: 0.6, TaskDurCV: 0.15},
			{Name: "long-batch", Fraction: 0.08, MeanTasks: 65, MeanDur: 2200, DurSigma: 0.5, TaskDurCV: 0.15, Long: true},
			{Name: "long-huge", Fraction: 0.02, MeanTasks: 150, MeanDur: 4000, DurSigma: 0.5, TaskDurCV: 0.15, Long: true},
		},
	}
}

// ClouderaC returns the Cloudera-C 2011 workload built with the paper's own
// recipe (§4.1): exponential draws around cluster centroids, Gaussian task
// durations with sigma = 2*mean. Centroids are derived so Table 1 holds:
// ~5% long jobs holding ~93% of task-seconds.
//
// Note on cutoffs for the derived traces: redrawing negative Gaussian
// samples at sigma = 2*mean (the paper's recipe) inflates the realized
// mean task duration to ~2.02x the drawn centroid, so the default cutoffs
// sit near the geometric mean of the *realized* short and long duration
// means.
func ClouderaC() Spec {
	return Spec{
		Name:                   "cloudera",
		Cutoff:                 320,
		ShortPartitionFraction: 0.09,
		Clusters: []ClusterSpec{
			{Name: "short", Fraction: 0.9498, MeanTasks: 20, MeanDur: 50, TaskDurCV: 2},
			{Name: "long-medium", Fraction: 0.0350, MeanTasks: 150, MeanDur: 500, TaskDurCV: 2, Long: true},
			{Name: "long-large", Fraction: 0.0152, MeanTasks: 400, MeanDur: 1500, TaskDurCV: 2, Long: true},
		},
	}
}

// Facebook returns the Facebook 2010 workload (paper recipe): ~2% long jobs
// holding ~99.8% of task-seconds.
func Facebook() Spec {
	return Spec{
		Name:                   "facebook",
		Cutoff:                 280,
		ShortPartitionFraction: 0.02,
		Clusters: []ClusterSpec{
			{Name: "short", Fraction: 0.9799, MeanTasks: 5, MeanDur: 20, TaskDurCV: 2},
			{Name: "long-medium", Fraction: 0.0150, MeanTasks: 800, MeanDur: 1000, TaskDurCV: 2, Long: true},
			{Name: "long-large", Fraction: 0.0051, MeanTasks: 2500, MeanDur: 2000, TaskDurCV: 2, Long: true},
		},
	}
}

// Yahoo returns the Yahoo 2011 workload (paper recipe): ~9.4% long jobs
// holding ~98.3% of task-seconds.
func Yahoo() Spec {
	return Spec{
		Name:                   "yahoo",
		Cutoff:                 270,
		ShortPartitionFraction: 0.02,
		Clusters: []ClusterSpec{
			{Name: "short", Fraction: 0.9059, MeanTasks: 15, MeanDur: 30, TaskDurCV: 2},
			{Name: "long-medium", Fraction: 0.0700, MeanTasks: 120, MeanDur: 600, TaskDurCV: 2, Long: true},
			{Name: "long-large", Fraction: 0.0241, MeanTasks: 500, MeanDur: 1600, TaskDurCV: 2, Long: true},
		},
	}
}

// AllSpecs returns the four workload specs in the order of Table 1.
func AllSpecs() []Spec {
	return []Spec{Google(), ClouderaC(), Facebook(), Yahoo()}
}

// SpecByName returns the spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown spec %q (want google, cloudera, facebook, or yahoo)", name)
}

// GenConfig parameterizes trace generation.
type GenConfig struct {
	NumJobs int
	// MeanInterArrival is the mean job inter-arrival time (seconds); job
	// submission times follow a Poisson process (§4.1).
	MeanInterArrival float64
	Seed             int64
}

// Generate synthesizes a trace from the spec. Generation is deterministic
// for a given (spec, config) pair.
func Generate(spec Spec, cfg GenConfig) *Trace {
	src := randdist.New(cfg.Seed)
	jobs := make([]*Job, 0, cfg.NumJobs)
	for i := 0; i < cfg.NumJobs; i++ {
		cs := pickCluster(spec.Clusters, src.Float64())
		jobs = append(jobs, genJob(i, cs, src))
	}
	rescaleArrivals(jobs, cfg.MeanInterArrival, src.Fork())
	t := &Trace{
		Name:                   spec.Name,
		Jobs:                   jobs,
		Cutoff:                 spec.Cutoff,
		ShortPartitionFraction: spec.ShortPartitionFraction,
	}
	t.SortBySubmitTime()
	return t
}

func pickCluster(clusters []ClusterSpec, u float64) ClusterSpec {
	total := 0.0
	for _, c := range clusters {
		total += c.Fraction
	}
	u *= total
	acc := 0.0
	for _, c := range clusters {
		acc += c.Fraction
		if u < acc {
			return c
		}
	}
	return clusters[len(clusters)-1]
}

// drawJobShape draws a job's shape — task count and mean task duration —
// from the cluster spec. Both the materializing and streaming generators
// call it, so the two consume identical draws.
func drawJobShape(cs ClusterSpec, src *randdist.Source) (n int, mean float64) {
	n = int(src.Exp(cs.MeanTasks))
	if n < 1 {
		n = 1
	}
	if cs.DurSigma > 0 {
		mean = src.LogNormal(math.Log(cs.MeanDur), cs.DurSigma)
	} else {
		mean = src.Exp(cs.MeanDur)
	}
	if mean <= 0 {
		mean = cs.MeanDur * 1e-3
	}
	return n, mean
}

// genJobInto regenerates j in place as job id drawn from cs, reusing the
// Durations backing array when it has capacity. SubmitTime is reset to 0;
// the caller assigns arrivals.
func genJobInto(j *Job, id int, cs ClusterSpec, src *randdist.Source) {
	n, mean := drawJobShape(cs, src)
	j.ID = id
	j.SubmitTime = 0
	j.ConstructedLong = cs.Long
	if cap(j.Durations) >= n {
		j.Durations = j.Durations[:n]
	} else {
		j.Durations = make([]float64, n)
	}
	sigma := cs.TaskDurCV * mean
	for i := range j.Durations {
		if sigma > 0 {
			j.Durations[i] = src.TruncGaussian(mean, sigma)
		} else {
			j.Durations[i] = mean
		}
	}
}

// skipJob consumes exactly the draws genJobInto would for one job from cs
// and returns its task count, without building the job. The streaming
// generator's metadata prescan runs on this, keeping pass one O(1) in
// memory while staying draw-for-draw aligned with pass two.
func skipJob(cs ClusterSpec, src *randdist.Source) int {
	n, mean := drawJobShape(cs, src)
	sigma := cs.TaskDurCV * mean
	if sigma > 0 {
		for i := 0; i < n; i++ {
			src.TruncGaussian(mean, sigma)
		}
	}
	return n
}

func genJob(id int, cs ClusterSpec, src *randdist.Source) *Job {
	j := &Job{}
	genJobInto(j, id, cs, src)
	return j
}

// MotivationWorkload builds the exact §2.3 scenario used for Figure 1:
// 1000 jobs, 95% short (100 tasks of 100 s each), 5% long (1000 tasks of
// 20000 s each), Poisson submissions with a 50 s mean inter-arrival time.
func MotivationWorkload(seed int64) *Trace {
	src := randdist.New(seed)
	const (
		numJobs   = 1000
		shortProb = 0.95
	)
	jobs := make([]*Job, 0, numJobs)
	for i := 0; i < numJobs; i++ {
		j := &Job{ID: i}
		if src.Float64() < shortProb {
			j.Durations = constantDurations(100, 100)
		} else {
			j.Durations = constantDurations(1000, 20000)
			j.ConstructedLong = true
		}
		jobs = append(jobs, j)
	}
	rescaleArrivals(jobs, 50, src.Fork())
	t := &Trace{
		Name: "motivation",
		Jobs: jobs,
		// Any cutoff between 100 s and 20000 s separates the two classes.
		Cutoff:                 1000,
		ShortPartitionFraction: 0.10,
	}
	t.SortBySubmitTime()
	return t
}

func constantDurations(n int, d float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// ComputeStatsByConstruction computes Table 1/2 statistics using the
// generator's cluster membership (the paper deems every non-first cluster
// long), rather than the scheduler's cutoff classification.
func ComputeStatsByConstruction(t *Trace) Stats {
	var s Stats
	var longTS, totalTS float64
	var longTasks int
	var longDurSum, shortDurSum float64
	var shortJobs int
	for _, j := range t.Jobs {
		ts := j.TaskSeconds()
		totalTS += ts
		s.TotalTasks += j.NumTasks()
		if j.ConstructedLong {
			s.LongJobs++
			longTS += ts
			longTasks += j.NumTasks()
			longDurSum += j.AvgTaskDuration()
		} else {
			shortJobs++
			shortDurSum += j.AvgTaskDuration()
		}
	}
	s.TotalJobs = len(t.Jobs)
	s.TotalTaskSeconds = totalTS
	if s.TotalJobs > 0 {
		s.PctLongJobs = 100 * float64(s.LongJobs) / float64(s.TotalJobs)
	}
	if totalTS > 0 {
		s.PctLongTaskSeconds = 100 * longTS / totalTS
	}
	if s.TotalTasks > 0 {
		s.PctLongTasks = 100 * float64(longTasks) / float64(s.TotalTasks)
	}
	if s.LongJobs > 0 && shortJobs > 0 && shortDurSum > 0 {
		s.AvgTaskDurRatio = (longDurSum / float64(s.LongJobs)) / (shortDurSum / float64(shortJobs))
	}
	return s
}
