package workload

import "repro/internal/randdist"

// GeneratorSource streams the exact trace Generate materializes, one job
// at a time, in O(in-flight) memory. Construction runs a metadata prescan
// (pass one): it replays the generator's RNG draw-for-draw via skipJob —
// without building any job — to learn MaxTasks and TotalTasks, and to
// position the arrival-process fork at the same point Generate forks it.
// Next then re-runs the draws (pass two) from a fresh source with the same
// seed, producing each job on demand.
//
// Because Generate assigns Poisson arrivals cumulatively in id order (they
// are non-decreasing) and sorts stably, its emitted order is id order —
// the same order pass two produces — so a GeneratorSource is byte-for-byte
// equivalent to Generate: same jobs, same order, same submit times. The
// equivalence suite pins this.
//
// GeneratorSource implements Recycler: jobs handed back through Recycle
// are reused by later Next calls, Durations backing arrays included, so a
// simulation that recycles promptly runs the whole trace on a handful of
// job objects.
type GeneratorSource struct {
	spec     Spec
	cfg      GenConfig
	meta     Meta
	forkSeed int64

	src  *randdist.Source // pass-two draw stream
	arr  *randdist.ArrivalProcess
	next int
	free []*Job
}

// NewGeneratorSource builds the streaming counterpart of
// Generate(spec, cfg). The constructor costs one full pass of RNG draws
// (O(total tasks) time, O(1) memory); each Next costs the draws of one
// job.
func NewGeneratorSource(spec Spec, cfg GenConfig) *GeneratorSource {
	g := &GeneratorSource{spec: spec, cfg: cfg}
	src := randdist.New(cfg.Seed)
	m := Meta{
		Name:                   spec.Name,
		Cutoff:                 spec.Cutoff,
		ShortPartitionFraction: spec.ShortPartitionFraction,
		NumJobs:                cfg.NumJobs,
		Sorted:                 true,
	}
	for i := 0; i < cfg.NumJobs; i++ {
		cs := pickCluster(spec.Clusters, src.Float64())
		n := skipJob(cs, src)
		if n > m.MaxTasks {
			m.MaxTasks = n
		}
		m.TotalTasks += int64(n)
	}
	// Generate forks the arrival source after all job draws; capturing the
	// fork seed here reproduces that stream exactly.
	g.forkSeed = src.Int63()
	g.meta = m
	g.Reset()
	return g
}

// Meta returns the trace metadata computed by the prescan.
func (g *GeneratorSource) Meta() Meta { return g.meta }

// Next generates and returns the next job, or (nil, false) after NumJobs.
func (g *GeneratorSource) Next() (*Job, bool) {
	if g.next >= g.cfg.NumJobs {
		return nil, false
	}
	var j *Job
	if n := len(g.free); n > 0 {
		j = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		j = &Job{}
	}
	cs := pickCluster(g.spec.Clusters, g.src.Float64())
	genJobInto(j, g.next, cs, g.src)
	j.SubmitTime = g.arr.Next()
	g.next++
	return j, true
}

// Recycle returns a job previously yielded by Next to the free list for
// reuse. The caller must not touch j or its Durations afterwards.
func (g *GeneratorSource) Recycle(j *Job) {
	if j == nil {
		return
	}
	g.free = append(g.free, j)
}

// Reset rewinds the source to the first job without re-running the
// prescan; the free list survives. Benchmarks stream the same trace many
// times through one source this way.
func (g *GeneratorSource) Reset() {
	g.src = randdist.New(g.cfg.Seed)
	g.arr = randdist.NewArrivalProcess(randdist.New(g.forkSeed), g.cfg.MeanInterArrival)
	g.next = 0
}

var (
	_ Source   = (*GeneratorSource)(nil)
	_ Recycler = (*GeneratorSource)(nil)
)
