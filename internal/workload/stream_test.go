package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func itoa(n int) string { return strconv.Itoa(n) }

func jobEqual(a, b *Job) bool {
	if a.ID != b.ID || a.SubmitTime != b.SubmitTime || a.ConstructedLong != b.ConstructedLong {
		return false
	}
	if len(a.Durations) != len(b.Durations) {
		return false
	}
	for i := range a.Durations {
		if a.Durations[i] != b.Durations[i] {
			return false
		}
	}
	return true
}

func genCfg(n int) GenConfig { return GenConfig{NumJobs: n, MeanInterArrival: 2.3, Seed: 42} }

// drainSource pulls every job, copying them (so recycling sources are safe
// to compare against) and failing the test on a source error.
func drainSource(t *testing.T, src Source) []*Job {
	t.Helper()
	rec, _ := src.(Recycler)
	var out []*Job
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		cp := &Job{ID: j.ID, SubmitTime: j.SubmitTime, ConstructedLong: j.ConstructedLong,
			Durations: append([]float64(nil), j.Durations...)}
		out = append(out, cp)
		if rec != nil {
			rec.Recycle(j)
		}
	}
	if err := SourceErr(src); err != nil {
		t.Fatalf("source error: %v", err)
	}
	return out
}

// The streamed generator must reproduce Generate exactly: same jobs, same
// order, same submit times, for every spec — with recycling exercised so
// reuse of Job objects is proven not to corrupt the stream.
func TestGeneratorSourceEquivalence(t *testing.T) {
	for _, spec := range AllSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			cfg := genCfg(300)
			want := Generate(spec, cfg)
			src := NewGeneratorSource(spec, cfg)
			m := src.Meta()
			if m.NumJobs != want.Len() {
				t.Fatalf("meta jobs = %d, want %d", m.NumJobs, want.Len())
			}
			wm := want.Meta()
			if m.MaxTasks != wm.MaxTasks || m.TotalTasks != wm.TotalTasks {
				t.Fatalf("meta sizes = (%d, %d), want (%d, %d)", m.MaxTasks, m.TotalTasks, wm.MaxTasks, wm.TotalTasks)
			}
			if m.Cutoff != want.Cutoff || m.ShortPartitionFraction != want.ShortPartitionFraction || m.Name != want.Name {
				t.Fatalf("meta defaults mismatch: %+v", m)
			}
			got := drainSource(t, src)
			if len(got) != want.Len() {
				t.Fatalf("streamed %d jobs, want %d", len(got), want.Len())
			}
			for i := range got {
				if !jobEqual(got[i], want.Jobs[i]) {
					t.Fatalf("job %d differs: %+v != %+v", i, got[i], want.Jobs[i])
				}
			}
		})
	}
}

func TestGeneratorSourceReset(t *testing.T) {
	src := NewGeneratorSource(Google(), genCfg(100))
	first := drainSource(t, src)
	src.Reset()
	second := drainSource(t, src)
	if len(first) != len(second) {
		t.Fatalf("reset changed job count: %d != %d", len(first), len(second))
	}
	for i := range first {
		if !jobEqual(first[i], second[i]) {
			t.Fatalf("job %d differs after reset", i)
		}
	}
}

// An unsorted trace must come out of the adapter in stable submission
// order while the trace itself stays untouched.
func TestTraceSourceUnsorted(t *testing.T) {
	tr := &Trace{Name: "t", Cutoff: 10, ShortPartitionFraction: 0.1, Jobs: []*Job{
		{ID: 0, SubmitTime: 5, Durations: []float64{1}},
		{ID: 1, SubmitTime: 2, Durations: []float64{1}},
		{ID: 2, SubmitTime: 2, Durations: []float64{1}},
		{ID: 3, SubmitTime: 0, Durations: []float64{1}},
	}}
	if tr.Meta().Sorted {
		t.Fatal("trace should report unsorted")
	}
	src := NewTraceSource(tr)
	if !src.Meta().Sorted {
		t.Fatal("adapter must present a sorted stream")
	}
	var ids []int
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		ids = append(ids, j.ID)
	}
	want := []int{3, 1, 2, 0} // stable: 1 before 2 at the tie
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
	if tr.Jobs[0].ID != 0 {
		t.Fatal("adapter reordered the underlying trace")
	}
}

func TestTraceSourceSortedNoOrder(t *testing.T) {
	tr := Generate(Google(), genCfg(50))
	src := NewTraceSource(tr)
	got := drainSource(t, src)
	for i := range got {
		if !jobEqual(got[i], tr.Jobs[i]) {
			t.Fatalf("job %d differs", i)
		}
	}
	if src.Counted() != tr.Len() {
		t.Fatalf("Counted = %d, want %d", src.Counted(), tr.Len())
	}
}

func TestStreamFileRoundTrip(t *testing.T) {
	for _, name := range []string{"trace.hawk", "trace.hawk.gz"} {
		t.Run(name, func(t *testing.T) {
			cfg := genCfg(200)
			want := Generate(Google(), cfg)
			path := filepath.Join(t.TempDir(), name)
			if err := SaveSource(path, NewGeneratorSource(Google(), cfg)); err != nil {
				t.Fatal(err)
			}
			fs, err := OpenSource(path)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close()
			m := fs.Meta()
			wm := want.Meta()
			if m.Name != "google" || m.NumJobs != want.Len() || m.MaxTasks != wm.MaxTasks || m.TotalTasks != wm.TotalTasks {
				t.Fatalf("header meta = %+v, want to match %+v", m, wm)
			}
			if m.Cutoff != want.Cutoff || m.ShortPartitionFraction != want.ShortPartitionFraction {
				t.Fatalf("header defaults = (%g, %g)", m.Cutoff, m.ShortPartitionFraction)
			}
			got := drainSource(t, fs)
			if len(got) != want.Len() {
				t.Fatalf("read %d jobs, want %d", len(got), want.Len())
			}
			for i := range got {
				if !jobEqual(got[i], want.Jobs[i]) {
					t.Fatalf("job %d differs after file round trip", i)
				}
			}
		})
	}
}

// A legacy headerless CSV must be recognized as such so callers can fall
// back to the materializing loader.
func TestOpenSourceLegacyFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.csv")
	if err := SaveFile(path, Generate(Yahoo(), genCfg(10))); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSource(path)
	if err == nil || !strings.Contains(err.Error(), "hawk-trace") {
		t.Fatalf("want ErrNotStreamTrace, got %v", err)
	}
}

func TestMaterialize(t *testing.T) {
	cfg := genCfg(150)
	want := Generate(ClouderaC(), cfg)
	got, err := Materialize(NewGeneratorSource(ClouderaC(), cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Cutoff != want.Cutoff || got.ShortPartitionFraction != want.ShortPartitionFraction {
		t.Fatalf("materialized defaults differ: %+v", got)
	}
	if got.Len() != want.Len() {
		t.Fatalf("materialized %d jobs, want %d", got.Len(), want.Len())
	}
	for i := range got.Jobs {
		if !jobEqual(got.Jobs[i], want.Jobs[i]) {
			t.Fatalf("job %d differs", i)
		}
	}
}

func writeStream(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "t.hawk")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileSourceErrors(t *testing.T) {
	head := func(jobs, maxtasks, tasks int) string {
		return "#hawk-trace v=1 name=\"t\" cutoff=10 frac=0.1 jobs=" +
			itoa(jobs) + " maxtasks=" + itoa(maxtasks) + " tasks=" + itoa(tasks) + "\n"
	}
	cases := []struct {
		name string
		body string
		want string
	}{
		{"truncated", head(2, 1, 2) + "0,0,1,5\n", "header promised"},
		{"excess records", head(1, 1, 2) + "0,0,1,5\n1,1,1,5\n", "more records"},
		{"out of order", head(2, 1, 2) + "0,5,1,5\n1,1,1,5\n", "out of order"},
		{"maxtasks exceeded", head(1, 1, 2) + "0,0,2,5,5\n", "at most"},
		{"bad record", head(1, 1, 1) + "0,0,x,5\n", "task count"},
		{"negative duration", head(1, 1, 1) + "0,0,1,-5\n", "negative duration"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs, err := OpenSource(writeStream(t, t.TempDir(), c.body))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer fs.Close()
			for {
				if _, ok := fs.Next(); !ok {
					break
				}
			}
			if err := fs.Err(); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Err() = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestParseStreamHeaderErrors(t *testing.T) {
	cases := []string{
		"not a header",
		"#hawk-trace v=2 name=\"x\" jobs=1",
		"#hawk-trace name=\"x\" jobs=1",       // missing version
		"#hawk-trace v=1 jobs=-3",             // negative
		"#hawk-trace v=1 frac=1.5",            // out of range
		"#hawk-trace v=1 name=\"unterminated", // bad quote
		"#hawk-trace v=1 jobs=abc",
		"#hawk-trace v=1 garbage",
	}
	for _, c := range cases {
		if _, err := parseStreamHeader(c); err == nil {
			t.Errorf("accepted header %q", c)
		}
	}
	m, err := parseStreamHeader("#hawk-trace v=1 name=\"a b\" cutoff=5 frac=0.5 jobs=3 maxtasks=2 tasks=6 future=ok")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "a b" || m.NumJobs != 3 || m.MaxTasks != 2 || m.TotalTasks != 6 {
		t.Fatalf("parsed meta = %+v", m)
	}
}

// WriteSource must reject out-of-order sources and meta/job-count
// mismatches rather than produce a file readers would choke on.
func TestWriteSourceRejectsBadSources(t *testing.T) {
	unsorted := &Trace{Name: "u", Jobs: []*Job{
		{ID: 0, SubmitTime: 5, Durations: []float64{1}},
		{ID: 1, SubmitTime: 1, Durations: []float64{1}},
	}}
	var buf bytes.Buffer
	// TraceSource sorts, so build a raw misbehaving source instead.
	if err := WriteSource(&buf, &sliceSource{meta: Meta{Name: "u", NumJobs: 2, Sorted: true}, jobs: unsorted.Jobs}); err == nil {
		t.Fatal("accepted out-of-order source")
	}
	short := &sliceSource{meta: Meta{Name: "s", NumJobs: 5, Sorted: true}, jobs: unsorted.Jobs[:1]}
	buf.Reset()
	if err := WriteSource(&buf, short); err == nil {
		t.Fatal("accepted job-count mismatch")
	}
}

// sliceSource is a minimal Source for failure-injection tests.
type sliceSource struct {
	meta Meta
	jobs []*Job
	next int
}

func (s *sliceSource) Meta() Meta { return s.meta }
func (s *sliceSource) Next() (*Job, bool) {
	if s.next >= len(s.jobs) {
		return nil, false
	}
	j := s.jobs[s.next]
	s.next++
	return j, true
}
