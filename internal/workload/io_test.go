package workload

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate(Google(), GenConfig{NumJobs: 200, MeanInterArrival: 2, Seed: 4})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip: %d jobs, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], got.Jobs[i]
		if a.ID != b.ID || a.ConstructedLong != b.ConstructedLong {
			t.Fatalf("job %d metadata mismatch", i)
		}
		if math.Abs(a.SubmitTime-b.SubmitTime) > 1e-12 {
			t.Fatalf("job %d submit mismatch", i)
		}
		if len(a.Durations) != len(b.Durations) {
			t.Fatalf("job %d task count mismatch", i)
		}
		for k := range a.Durations {
			if a.Durations[k] != b.Durations[k] {
				t.Fatalf("job %d duration %d mismatch: %v != %v", i, k, a.Durations[k], b.Durations[k])
			}
		}
	}
}

// Property: any structurally valid trace survives a CSV round trip.
func TestCSVRoundTripProperty(t *testing.T) {
	check := func(jobs [][]float64) bool {
		tr := &Trace{}
		for i, durs := range jobs {
			if len(durs) == 0 {
				durs = []float64{1}
			}
			clean := make([]float64, len(durs))
			for k, d := range durs {
				d = math.Abs(d)
				if math.IsNaN(d) || math.IsInf(d, 0) {
					d = 1
				}
				clean[k] = d
			}
			tr.Jobs = append(tr.Jobs, &Job{
				ID:              i,
				SubmitTime:      float64(i),
				Durations:       clean,
				ConstructedLong: i%3 == 0,
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Jobs {
			if got.Jobs[i].ConstructedLong != tr.Jobs[i].ConstructedLong {
				return false
			}
			if got.Jobs[i].TaskSeconds() != tr.Jobs[i].TaskSeconds() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"short record", "1,2\n"},
		{"bad id", "x,0,1,5\n"},
		{"bad submit", "1,x,1,5\n"},
		{"bad count", "1,0,x,5\n"},
		{"zero count", "1,0,0,5\n"},
		{"count mismatch", "1,0,3,5,6\n"},
		{"bad duration", "1,0,1,x\n"},
		{"negative duration", "1,0,1,-5\n"},
		{"duplicate id", "1,0,1,5\n1,1,1,5\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.in)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty input should parse: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("empty input gave %d jobs", tr.Len())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	tr := Generate(Yahoo(), GenConfig{NumJobs: 50, MeanInterArrival: 1, Seed: 6})
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("loaded %d jobs, want %d", got.Len(), tr.Len())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestLongMarkerFormat(t *testing.T) {
	// A job with a trailing L is long; durations that happen to be
	// parseable are not confused with the marker.
	in := "7,1.5,2,10,20,L\n8,2.5,1,30\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Jobs[0].ConstructedLong || tr.Jobs[1].ConstructedLong {
		t.Fatal("L marker parsed incorrectly")
	}
}
