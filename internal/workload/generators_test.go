package workload

import (
	"math"
	"testing"
)

func TestGenerateDeterminism(t *testing.T) {
	cfg := GenConfig{NumJobs: 500, MeanInterArrival: 2, Seed: 9}
	a := Generate(Google(), cfg)
	b := Generate(Google(), cfg)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.ID != jb.ID || ja.SubmitTime != jb.SubmitTime || ja.NumTasks() != jb.NumTasks() {
			t.Fatalf("job %d differs between identical generations", i)
		}
		for k := range ja.Durations {
			if ja.Durations[k] != jb.Durations[k] {
				t.Fatalf("job %d task %d duration differs", i, k)
			}
		}
	}
}

func TestGenerateValidAndSorted(t *testing.T) {
	for _, spec := range AllSpecs() {
		tr := Generate(spec, GenConfig{NumJobs: 1000, MeanInterArrival: 2, Seed: 3})
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if tr.Len() != 1000 {
			t.Fatalf("%s: generated %d jobs", spec.Name, tr.Len())
		}
		prev := 0.0
		for _, j := range tr.Jobs {
			if j.SubmitTime < prev {
				t.Fatalf("%s: submissions not sorted", spec.Name)
			}
			prev = j.SubmitTime
		}
		if tr.Cutoff != spec.Cutoff || tr.ShortPartitionFraction != spec.ShortPartitionFraction {
			t.Fatalf("%s: trace metadata not propagated", spec.Name)
		}
	}
}

// The generators must reproduce Table 1's published statistics within
// tolerance. Paper values: Google 10.00%/83.65%, Cloudera-c 5.02%/92.79%,
// Facebook 2.01%/99.79%, Yahoo 9.41%/98.31%.
func TestTable1Calibration(t *testing.T) {
	want := map[string]struct {
		pctLong, pctTS float64
		tolLong, tolTS float64
	}{
		"google":   {10.00, 83.65, 2.0, 5.0},
		"cloudera": {5.02, 92.79, 1.5, 4.0},
		"facebook": {2.01, 99.79, 1.0, 1.0},
		"yahoo":    {9.41, 98.31, 2.0, 1.5},
	}
	for _, spec := range AllSpecs() {
		tr := Generate(spec, GenConfig{NumJobs: 20000, MeanInterArrival: 2, Seed: 42})
		st := ComputeStatsByConstruction(tr)
		w := want[spec.Name]
		if math.Abs(st.PctLongJobs-w.pctLong) > w.tolLong {
			t.Errorf("%s: %%long jobs = %.2f, paper %.2f (tol %.1f)", spec.Name, st.PctLongJobs, w.pctLong, w.tolLong)
		}
		if math.Abs(st.PctLongTaskSeconds-w.pctTS) > w.tolTS {
			t.Errorf("%s: %%task-seconds = %.2f, paper %.2f (tol %.1f)", spec.Name, st.PctLongTaskSeconds, w.pctTS, w.tolTS)
		}
	}
}

// Classification by the default cutoff must roughly agree with the
// generator's construction classes: the trace is usable by the scheduler.
func TestCutoffClassificationAgreesWithConstruction(t *testing.T) {
	for _, spec := range AllSpecs() {
		tr := Generate(spec, GenConfig{NumJobs: 10000, MeanInterArrival: 2, Seed: 1})
		byCut := ComputeStats(tr, spec.Cutoff)
		byGen := ComputeStatsByConstruction(tr)
		// Within a factor of two is enough for the scheduler to behave
		// per the paper; exact agreement is impossible with the paper's
		// own exponential-draw recipe.
		if byCut.PctLongJobs < byGen.PctLongJobs/2 || byCut.PctLongJobs > byGen.PctLongJobs*2 {
			t.Errorf("%s: cutoff classifies %.2f%% long, construction %.2f%%",
				spec.Name, byCut.PctLongJobs, byGen.PctLongJobs)
		}
	}
}

func TestMotivationWorkload(t *testing.T) {
	tr := MotivationWorkload(1)
	if tr.Len() != 1000 {
		t.Fatalf("jobs = %d, want 1000", tr.Len())
	}
	short, long := 0, 0
	for _, j := range tr.Jobs {
		if j.ConstructedLong {
			long++
			if j.NumTasks() != 1000 || j.Durations[0] != 20000 {
				t.Fatalf("long job shape wrong: %d tasks x %v s", j.NumTasks(), j.Durations[0])
			}
		} else {
			short++
			if j.NumTasks() != 100 || j.Durations[0] != 100 {
				t.Fatalf("short job shape wrong: %d tasks x %v s", j.NumTasks(), j.Durations[0])
			}
		}
	}
	// 95% short with binomial noise.
	if short < 920 || short > 980 {
		t.Fatalf("short jobs = %d, want ~950", short)
	}
	// Mean inter-arrival ~50 s.
	mean := tr.MakespanLowerBound() / float64(tr.Len())
	if mean < 40 || mean > 60 {
		t.Fatalf("mean inter-arrival = %v, want ~50", mean)
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"google", "cloudera", "facebook", "yahoo"} {
		spec, err := SpecByName(name)
		if err != nil || spec.Name != name {
			t.Fatalf("SpecByName(%s) = %v, %v", name, spec.Name, err)
		}
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown spec should error")
	}
}

func TestClusterFractionsRespected(t *testing.T) {
	// A spec with a single cluster must put every job in it.
	spec := Spec{
		Name:   "mono",
		Cutoff: 10,
		Clusters: []ClusterSpec{
			{Name: "only", Fraction: 1, MeanTasks: 5, MeanDur: 100, TaskDurCV: 0, Long: true},
		},
	}
	tr := Generate(spec, GenConfig{NumJobs: 200, MeanInterArrival: 1, Seed: 2})
	for _, j := range tr.Jobs {
		if !j.ConstructedLong {
			t.Fatal("job escaped the only cluster")
		}
	}
}

func TestZeroCVGivesConstantDurations(t *testing.T) {
	spec := Spec{
		Name:   "const",
		Cutoff: 10,
		Clusters: []ClusterSpec{
			{Name: "c", Fraction: 1, MeanTasks: 10, MeanDur: 100, TaskDurCV: 0},
		},
	}
	tr := Generate(spec, GenConfig{NumJobs: 50, MeanInterArrival: 1, Seed: 2})
	for _, j := range tr.Jobs {
		for _, d := range j.Durations {
			if d != j.Durations[0] {
				t.Fatal("CV=0 should give identical durations within a job")
			}
		}
	}
}

func TestGoogleFigure4Ranges(t *testing.T) {
	// Figure 4 sanity: long-job mean durations mostly in 1000-15000 s;
	// short-job durations mostly under 800 s.
	tr := Generate(Google(), GenConfig{NumJobs: 10000, MeanInterArrival: 2, Seed: 5})
	var longIn, longTotal, shortIn, shortTotal int
	for _, j := range tr.Jobs {
		avg := j.AvgTaskDuration()
		if j.ConstructedLong {
			longTotal++
			if avg >= 1000 && avg <= 15000 {
				longIn++
			}
		} else {
			shortTotal++
			if avg <= 800 {
				shortIn++
			}
		}
	}
	if frac := float64(longIn) / float64(longTotal); frac < 0.75 {
		t.Errorf("only %.0f%% of long jobs in Figure 4a's range", 100*frac)
	}
	if frac := float64(shortIn) / float64(shortTotal); frac < 0.75 {
		t.Errorf("only %.0f%% of short jobs in Figure 4b's range", 100*frac)
	}
}
