package workload

import (
	"fmt"
	"sort"
)

// Meta carries the trace-level facts a simulation must know before the
// first job is decoded: the scheduling defaults (long/short cutoff and
// reserved-partition fraction), the exact job count, and size bounds used
// for feasibility checks and event-heap hints. Sources know their Meta up
// front; nothing in it requires materializing the job list.
type Meta struct {
	// Name identifies the workload (e.g. "google").
	Name string
	// Cutoff is the default long/short cutoff (seconds of average task
	// duration), as on Trace.
	Cutoff float64
	// ShortPartitionFraction is the default fraction of nodes reserved for
	// short tasks, as on Trace.
	ShortPartitionFraction float64
	// NumJobs is the exact number of jobs the source will yield.
	NumJobs int
	// MaxTasks is the largest per-job task count the source will yield,
	// or 0 if unknown. Used for up-front feasibility checks.
	MaxTasks int
	// TotalTasks is the total task count across all jobs, or 0 if unknown.
	// Used to size the simulator's event heap.
	TotalTasks int64
	// Sorted reports whether jobs arrive in non-decreasing SubmitTime
	// order. The simulator requires a sorted source.
	Sorted bool
}

// Source is a pull iterator over a trace's jobs in submission order. It is
// the streaming counterpart of Trace: the simulator decodes the next job
// only when its submit event fires, so peak memory is bounded by in-flight
// work rather than trace length.
//
// Contract: Next returns the next job and true, or nil and false after the
// last job. A source that can fail mid-stream (e.g. a file reader) should
// also implement Err() error, checked via SourceErr after Next returns
// false. A returned *Job and its Durations remain owned by the caller
// until handed back through Recycle (if the source implements Recycler);
// sources must never reuse or mutate a yielded job before then.
type Source interface {
	// Meta returns the trace metadata, known before any job is decoded.
	Meta() Meta
	// Next returns the next job in submission order, or (nil, false) when
	// the source is exhausted or failed.
	Next() (*Job, bool)
}

// Recycler is optionally implemented by sources that pool job objects.
// Recycle hands a job previously returned by Next back to the source for
// reuse; the caller must not touch the job or its Durations afterwards.
// Recycling is what makes streamed generation O(in-flight) in allocations
// as well as bytes: steady state reuses a small free list of jobs instead
// of producing per-job garbage.
type Recycler interface {
	Recycle(*Job)
}

// SourceErr returns the terminal error of src, if src reports one via an
// Err() error method (file readers do; in-memory sources do not). It
// returns nil for sources without an Err method. Callers should check it
// after Next returns false to distinguish exhaustion from mid-stream
// failure.
func SourceErr(src Source) error {
	if f, ok := src.(interface{ Err() error }); ok {
		return f.Err()
	}
	return nil
}

// Meta returns the trace's metadata in Source form. It scans the job list
// once; Sorted reflects the actual ordering.
func (t *Trace) Meta() Meta {
	m := Meta{
		Name:                   t.Name,
		Cutoff:                 t.Cutoff,
		ShortPartitionFraction: t.ShortPartitionFraction,
		NumJobs:                len(t.Jobs),
		Sorted:                 true,
	}
	prev := 0.0
	for _, j := range t.Jobs {
		n := len(j.Durations)
		if n > m.MaxTasks {
			m.MaxTasks = n
		}
		m.TotalTasks += int64(n)
		if j.SubmitTime < prev {
			m.Sorted = false
		}
		prev = j.SubmitTime
	}
	return m
}

// TraceSource adapts an in-memory Trace to the Source interface. It yields
// the trace's jobs in submission order (sorting an index permutation
// internally when the trace is unsorted, without reordering the trace), so
// its Meta always reports Sorted. Jobs stay owned by the Trace; a
// TraceSource does not recycle them.
type TraceSource struct {
	t     *Trace
	order []int32 // nil when t.Jobs is already sorted
	next  int
	meta  Meta
}

// NewTraceSource returns a Source view of t. The trace is not copied or
// mutated; yielding is O(1) per job after an O(n log n) setup when the
// trace is unsorted.
func NewTraceSource(t *Trace) *TraceSource {
	s := &TraceSource{t: t, meta: t.Meta()}
	if !s.meta.Sorted {
		s.order = make([]int32, len(t.Jobs))
		for i := range s.order {
			s.order[i] = int32(i)
		}
		sort.SliceStable(s.order, func(a, b int) bool {
			return t.Jobs[s.order[a]].SubmitTime < t.Jobs[s.order[b]].SubmitTime
		})
		s.meta.Sorted = true
	}
	return s
}

// Meta returns the trace metadata; Sorted is always true.
func (s *TraceSource) Meta() Meta { return s.meta }

// Next yields the next job by submission order.
func (s *TraceSource) Next() (*Job, bool) {
	if s.next >= len(s.t.Jobs) {
		return nil, false
	}
	i := s.next
	s.next++
	if s.order != nil {
		i = int(s.order[i])
	}
	return s.t.Jobs[i], true
}

// Trace returns the underlying in-memory trace. The simulator uses this to
// detect adapter mode: trace-backed jobs are retained by their owner, so
// slot recycling must not scavenge their Durations.
func (s *TraceSource) Trace() *Trace { return s.t }

// Materialize drains src into an in-memory Trace, validating the result.
// It is the bridge back from streaming to the eager call sites (workload
// statistics, trace transforms); by definition it costs O(trace) memory.
func Materialize(src Source) (*Trace, error) {
	m := src.Meta()
	t := &Trace{
		Name:                   m.Name,
		Cutoff:                 m.Cutoff,
		ShortPartitionFraction: m.ShortPartitionFraction,
		Jobs:                   make([]*Job, 0, m.NumJobs),
	}
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := SourceErr(src); err != nil {
		return nil, err
	}
	if !m.Sorted {
		t.SortBySubmitTime()
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Counted reports how many jobs have been yielded so far; exposed for
// progress reporting by long-running CLI conversions.
func (s *TraceSource) Counted() int { return s.next }

var _ Source = (*TraceSource)(nil)

// sortedCheck is a tiny helper shared by streaming sources that must
// enforce non-decreasing submit order without buffering: it returns an
// error when t regresses below prev.
func sortedCheck(name string, id int, t, prev float64) error {
	if t < prev {
		return fmt.Errorf("workload: %s: job %d submit time %g out of order (previous %g)", name, id, t, prev)
	}
	return nil
}
