package workload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// CSV trace format, one job per record:
//
//	jobID,submitTime,numTasks,dur0,dur1,...,durN-1[,L]
//
// matching the tuples the paper's simulator consumes (§4.1): "(jobID, job
// submission time, number of tasks in the job, duration of each task)". A
// trailing "L" marks jobs that are long by construction.

// WriteCSV serializes the trace.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	for _, j := range t.Jobs {
		rec := make([]string, 0, 3+len(j.Durations)+1)
		rec = append(rec,
			strconv.Itoa(j.ID),
			strconv.FormatFloat(j.SubmitTime, 'g', -1, 64),
			strconv.Itoa(len(j.Durations)))
		for _, d := range j.Durations {
			rec = append(rec, strconv.FormatFloat(d, 'g', -1, 64))
		}
		if j.ConstructedLong {
			rec = append(rec, "L")
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Name, Cutoff and
// ShortPartitionFraction are not part of the format; callers set them after
// loading (or use the defaults from the generating Spec).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1 // variable-length records
	t := &Trace{}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if len(rec) < 4 {
			return nil, fmt.Errorf("workload: line %d: record too short (%d fields)", line, len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad job id %q: %w", line, rec[0], err)
		}
		submit, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad submit time %q: %w", line, rec[1], err)
		}
		n, err := strconv.Atoi(rec[2])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("workload: line %d: bad task count %q", line, rec[2])
		}
		rest := rec[3:]
		long := false
		if len(rest) == n+1 && rest[n] == "L" {
			long = true
			rest = rest[:n]
		}
		if len(rest) != n {
			return nil, fmt.Errorf("workload: line %d: expected %d durations, got %d", line, n, len(rest))
		}
		durations := make([]float64, n)
		for i, f := range rest {
			d, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad duration %q: %w", line, f, err)
			}
			durations[i] = d
		}
		t.Jobs = append(t.Jobs, &Job{ID: id, SubmitTime: submit, Durations: durations, ConstructedLong: long})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SaveFile writes the trace to path.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
