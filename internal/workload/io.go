package workload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// CSV trace format, one job per record:
//
//	jobID,submitTime,numTasks,dur0,dur1,...,durN-1[,L]
//
// matching the tuples the paper's simulator consumes (§4.1): "(jobID, job
// submission time, number of tasks in the job, duration of each task)". A
// trailing "L" marks jobs that are long by construction.

// WriteCSV serializes the trace.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	rec := make([]string, 0, 64)
	for _, j := range t.Jobs {
		rec = appendJobRecord(rec[:0], j)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Name, Cutoff and
// ShortPartitionFraction are not part of the format; callers set them after
// loading (or use the defaults from the generating Spec).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1 // variable-length records
	t := &Trace{}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		j := &Job{}
		if err := parseJobFields(rec, j); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseJobFields decodes one CSV record (WriteCSV format) into j, reusing
// j.Durations' backing array when it has capacity, and checks the per-job
// invariants Validate would: non-negative submit time and durations, at
// least one task. Shared by the materializing and streaming readers.
func parseJobFields(rec []string, j *Job) error {
	if len(rec) < 4 {
		return fmt.Errorf("record too short (%d fields)", len(rec))
	}
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return fmt.Errorf("bad job id %q: %w", rec[0], err)
	}
	submit, err := strconv.ParseFloat(rec[1], 64)
	if err != nil {
		return fmt.Errorf("bad submit time %q: %w", rec[1], err)
	}
	if submit < 0 {
		return fmt.Errorf("negative submit time %g", submit)
	}
	n, err := strconv.Atoi(rec[2])
	if err != nil || n < 1 {
		return fmt.Errorf("bad task count %q", rec[2])
	}
	rest := rec[3:]
	long := false
	if len(rest) == n+1 && rest[n] == "L" {
		long = true
		rest = rest[:n]
	}
	if len(rest) != n {
		return fmt.Errorf("expected %d durations, got %d", n, len(rest))
	}
	if cap(j.Durations) >= n {
		j.Durations = j.Durations[:n]
	} else {
		j.Durations = make([]float64, n)
	}
	for i, f := range rest {
		d, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", f, err)
		}
		if d < 0 {
			return fmt.Errorf("negative duration %g", d)
		}
		j.Durations[i] = d
	}
	j.ID, j.SubmitTime, j.ConstructedLong = id, submit, long
	return nil
}

// SaveFile writes the trace to path.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
