package workload

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Streaming trace file format ("hawk-trace"): a header line carrying the
// Meta, followed by one CSV record per job in the WriteCSV format,
// gzip-compressed when the path ends in ".gz":
//
//	#hawk-trace v=1 name="google" cutoff=1129 frac=0.17 jobs=50000 maxtasks=4113 tasks=1352384
//	0,1.93,12,104.2,98.7,...
//
// Records must be in non-decreasing submit-time order — the writer
// enforces it, the reader verifies it — so a reader can feed the simulator
// directly without buffering. Unlike the legacy headerless format, the
// job count and size bounds are known before the first record is decoded.

// ErrNotStreamTrace reports that a file lacks the hawk-trace header and is
// presumably a legacy headerless CSV; callers fall back to LoadFile.
var ErrNotStreamTrace = errors.New("workload: missing #hawk-trace header")

const streamHeaderMagic = "#hawk-trace"

// WriteSource drains src to w in the hawk-trace format (uncompressed; see
// SaveSource for the gzip-by-extension convenience). Jobs are written as
// they are pulled and recycled back to src when it implements Recycler, so
// converting a streamed source to a file is O(in-flight) in memory. It is
// an error for src to yield jobs out of submit-time order.
func WriteSource(w io.Writer, src Source) error {
	m := src.Meta()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s v=1 name=%q cutoff=%s frac=%s jobs=%d maxtasks=%d tasks=%d\n",
		streamHeaderMagic, m.Name,
		strconv.FormatFloat(m.Cutoff, 'g', -1, 64),
		strconv.FormatFloat(m.ShortPartitionFraction, 'g', -1, 64),
		m.NumJobs, m.MaxTasks, m.TotalTasks); err != nil {
		return err
	}
	cw := csv.NewWriter(bw)
	rec, prev, count := make([]string, 0, 64), 0.0, 0
	recycler, _ := src.(Recycler)
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if err := sortedCheck(m.Name, j.ID, j.SubmitTime, prev); err != nil {
			return err
		}
		prev = j.SubmitTime
		rec = appendJobRecord(rec[:0], j)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
		}
		count++
		if recycler != nil {
			recycler.Recycle(j)
		}
	}
	if err := SourceErr(src); err != nil {
		return err
	}
	if count != m.NumJobs {
		return fmt.Errorf("workload: source yielded %d jobs, meta promised %d", count, m.NumJobs)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// appendJobRecord appends j's CSV fields (WriteCSV format) to rec.
func appendJobRecord(rec []string, j *Job) []string {
	rec = append(rec,
		strconv.Itoa(j.ID),
		strconv.FormatFloat(j.SubmitTime, 'g', -1, 64),
		strconv.Itoa(len(j.Durations)))
	for _, d := range j.Durations {
		rec = append(rec, strconv.FormatFloat(d, 'g', -1, 64))
	}
	if j.ConstructedLong {
		rec = append(rec, "L")
	}
	return rec
}

// SaveSource writes src to path in the hawk-trace format, gzipped when the
// path ends in ".gz".
func SaveSource(path string, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := WriteSource(w, src); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// FileSource streams jobs from a hawk-trace file with chunked decode: one
// CSV record is parsed per Next, into a pooled Job, so peak memory is
// O(in-flight jobs) regardless of file size. It enforces the format's
// ordering and count invariants as it reads and reports failures through
// Err. FileSource implements Recycler; Close releases the file handle.
type FileSource struct {
	f    *os.File
	gz   *gzip.Reader
	cr   *csv.Reader
	meta Meta
	prev float64
	n    int
	err  error
	done bool
	free []*Job
}

// OpenSource opens a hawk-trace file for streaming (gzip inferred from a
// ".gz" suffix). It reads only the header: job records decode lazily via
// Next. Returns ErrNotStreamTrace (wrapped) when the header is absent.
func OpenSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &FileSource{f: f}
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		if s.gz, err = gzip.NewReader(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("workload: %s: %w", path, err)
		}
		r = s.gz
	}
	br := bufio.NewReaderSize(r, 1<<16)
	header, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		s.Close()
		return nil, fmt.Errorf("workload: %s: reading header: %w", path, err)
	}
	if s.meta, err = parseStreamHeader(header); err != nil {
		s.Close()
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	s.cr = csv.NewReader(br)
	s.cr.FieldsPerRecord = -1 // variable-length records
	s.cr.ReuseRecord = true
	return s, nil
}

// parseStreamHeader decodes the #hawk-trace header line. Values are
// space-separated key=value pairs; name is a Go-quoted string (spaces and
// quotes allowed).
func parseStreamHeader(line string) (Meta, error) {
	m := Meta{Sorted: true}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	rest, ok := strings.CutPrefix(line, streamHeaderMagic)
	if !ok || (rest != "" && rest[0] != ' ') {
		return m, ErrNotStreamTrace
	}
	sawVersion := false
	for rest != "" {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return m, fmt.Errorf("header field %q: missing '='", rest)
		}
		key, val := rest[:eq], rest[eq+1:]
		var err error
		if strings.HasPrefix(val, `"`) {
			var quoted string
			if quoted, err = strconv.QuotedPrefix(val); err != nil {
				return m, fmt.Errorf("header field %s: bad quoted value: %w", key, err)
			}
			rest = val[len(quoted):]
			if val, err = strconv.Unquote(quoted); err != nil {
				return m, fmt.Errorf("header field %s: %w", key, err)
			}
		} else if sp := strings.IndexByte(val, ' '); sp >= 0 {
			val, rest = val[:sp], val[sp:]
		} else {
			rest = ""
		}
		switch key {
		case "v":
			if val != "1" {
				return m, fmt.Errorf("unsupported hawk-trace version %q", val)
			}
			sawVersion = true
		case "name":
			m.Name = val
		case "cutoff":
			m.Cutoff, err = strconv.ParseFloat(val, 64)
		case "frac":
			m.ShortPartitionFraction, err = strconv.ParseFloat(val, 64)
		case "jobs":
			m.NumJobs, err = strconv.Atoi(val)
		case "maxtasks":
			m.MaxTasks, err = strconv.Atoi(val)
		case "tasks":
			m.TotalTasks, err = strconv.ParseInt(val, 10, 64)
		default:
			// Unknown keys are ignored for forward compatibility.
		}
		if err != nil {
			return m, fmt.Errorf("header field %s=%q: %w", key, val, err)
		}
	}
	if !sawVersion {
		return m, fmt.Errorf("header missing version field")
	}
	if m.NumJobs < 0 || m.MaxTasks < 0 || m.TotalTasks < 0 ||
		m.Cutoff < 0 || m.ShortPartitionFraction < 0 || m.ShortPartitionFraction > 1 {
		return m, fmt.Errorf("header has out-of-range values")
	}
	return m, nil
}

// Meta returns the metadata from the file header.
func (s *FileSource) Meta() Meta { return s.meta }

// Next decodes and returns the next job record. It returns (nil, false) at
// end of stream or on a decode error; check Err to distinguish.
func (s *FileSource) Next() (*Job, bool) {
	if s.done {
		return nil, false
	}
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		if s.n != s.meta.NumJobs {
			s.err = fmt.Errorf("workload: trace %q: file ended after %d jobs, header promised %d", s.meta.Name, s.n, s.meta.NumJobs)
		}
		return nil, false
	}
	if err != nil {
		s.fail(fmt.Errorf("workload: trace %q: job %d: %w", s.meta.Name, s.n, err))
		return nil, false
	}
	if s.n >= s.meta.NumJobs {
		s.fail(fmt.Errorf("workload: trace %q: more records than the %d jobs the header promised", s.meta.Name, s.meta.NumJobs))
		return nil, false
	}
	var j *Job
	if n := len(s.free); n > 0 {
		j = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		j = &Job{}
	}
	if err := parseJobFields(rec, j); err != nil {
		s.fail(fmt.Errorf("workload: trace %q: job %d: %w", s.meta.Name, s.n, err))
		return nil, false
	}
	if err := sortedCheck(s.meta.Name, j.ID, j.SubmitTime, s.prev); err != nil {
		s.fail(err)
		return nil, false
	}
	if len(j.Durations) > s.meta.MaxTasks {
		s.fail(fmt.Errorf("workload: trace %q: job %d has %d tasks, header promised at most %d", s.meta.Name, j.ID, len(j.Durations), s.meta.MaxTasks))
		return nil, false
	}
	s.prev = j.SubmitTime
	s.n++
	return j, true
}

func (s *FileSource) fail(err error) {
	s.done = true
	s.err = err
}

// Err returns the first error encountered while streaming, or nil after a
// clean end of stream.
func (s *FileSource) Err() error { return s.err }

// Recycle returns a job to the source's pool for reuse by a later Next.
func (s *FileSource) Recycle(j *Job) {
	if j == nil {
		return
	}
	s.free = append(s.free, j)
}

// Close releases the underlying file. Next returns false after Close.
func (s *FileSource) Close() error {
	s.done = true
	var gzErr error
	if s.gz != nil {
		gzErr = s.gz.Close()
		s.gz = nil
	}
	if s.f == nil {
		return gzErr
	}
	err := s.f.Close()
	s.f = nil
	if err == nil {
		err = gzErr
	}
	return err
}

var (
	_ Source   = (*FileSource)(nil)
	_ Recycler = (*FileSource)(nil)
)
