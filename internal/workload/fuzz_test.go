package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the trace parser with arbitrary input: it must
// never panic, and anything it accepts must be a valid trace that survives
// a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,0,2,10,20\n")
	f.Add("1,0,2,10,20,L\n2,5.5,1,7\n")
	f.Add("")
	f.Add("x,y,z\n")
	f.Add("1,0,1,1e300\n")
	f.Add("1,0,3,1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized trace fails to parse: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed job count: %d != %d", back.Len(), tr.Len())
		}
	})
}
