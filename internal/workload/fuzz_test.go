package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the trace parser with arbitrary input: it must
// never panic, and anything it accepts must be a valid trace that survives
// a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,0,2,10,20\n")
	f.Add("1,0,2,10,20,L\n2,5.5,1,7\n")
	f.Add("")
	f.Add("x,y,z\n")
	f.Add("1,0,1,1e300\n")
	f.Add("1,0,3,1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized trace fails to parse: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed job count: %d != %d", back.Len(), tr.Len())
		}
	})
}

// FuzzStreamTrace exercises the hawk-trace header and record parser: it
// must never panic, and any stream it fully accepts must round-trip
// through WriteSource/OpenSource with the job count preserved.
func FuzzStreamTrace(f *testing.F) {
	f.Add("#hawk-trace v=1 name=\"g\" cutoff=10 frac=0.1 jobs=1 maxtasks=2 tasks=2\n0,0,2,5,6\n")
	f.Add("#hawk-trace v=1 name=\"g\" cutoff=10 frac=0.1 jobs=2 maxtasks=1 tasks=2\n0,0,1,5\n1,2.5,1,6,L\n")
	f.Add("#hawk-trace v=1 jobs=0\n")
	f.Add("#hawk-trace v=1 name=\"a b\" cutoff=1e3 frac=0.5 jobs=1 maxtasks=1 tasks=1\n7,3,1,9\n")
	f.Add("#hawk-trace v=2 jobs=1\n0,0,1,5\n")
	f.Add("#hawk-trace v=1 jobs=1 future=\"key\"\n0,0,1,5\n")
	f.Add("1,0,2,10,20\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "in.hawk")
		if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
			t.Fatal(err)
		}
		src, err := OpenSource(path)
		if err != nil {
			return
		}
		defer src.Close()
		n, prev := 0, 0.0
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			if len(j.Durations) == 0 || j.SubmitTime < prev {
				t.Fatalf("accepted invalid job %d: %+v", n, j)
			}
			prev = j.SubmitTime
			n++
			src.Recycle(j)
		}
		if src.Err() != nil {
			return
		}
		if n != src.Meta().NumJobs {
			t.Fatalf("clean stream yielded %d jobs, header said %d", n, src.Meta().NumJobs)
		}
		// Round trip: re-open, write what we read, read it back.
		reread, err := OpenSource(path)
		if err != nil {
			t.Fatalf("second open failed: %v", err)
		}
		defer reread.Close()
		out := filepath.Join(dir, "out.hawk")
		if err := SaveSource(out, reread); err != nil {
			t.Fatalf("accepted stream fails to serialize: %v", err)
		}
		back, err := OpenSource(out)
		if err != nil {
			t.Fatalf("serialized stream fails to open: %v", err)
		}
		defer back.Close()
		m := 0
		for {
			if _, ok := back.Next(); !ok {
				break
			}
			m++
		}
		if back.Err() != nil {
			t.Fatalf("serialized stream fails to parse: %v", back.Err())
		}
		if m != n {
			t.Fatalf("round trip changed job count: %d != %d", m, n)
		}
	})
}
