// Package workload defines the job/trace model and the synthetic trace
// generators that substitute for the paper's Google, Cloudera, Facebook, and
// Yahoo workloads.
//
// A trace is exactly what the paper's simulator consumes (§4.1): tuples of
// (job id, submission time, number of tasks, duration of each task). The
// generators reproduce the published marginals: Table 1's long-job and
// task-second shares and Figure 4's task-duration / tasks-per-job CDFs.
//
// Workloads come in two forms. Trace materializes every job up front;
// Source streams them one at a time in submission order with the trace's
// size and defaults known up front (Meta), so a consumer's memory is
// bounded by in-flight work. Three sources cover the spectrum:
// TraceSource adapts an in-memory Trace, GeneratorSource synthesizes jobs
// on demand draw-for-draw identical to Generate, and FileSource decodes
// the on-disk hawk-trace format (gzipped CSV with a metadata header; see
// SaveSource/OpenSource) chunk by chunk. Sources that implement Recycler
// pool decoded jobs handed back by the consumer, closing the loop to zero
// steady-state allocation.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/randdist"
)

// Job is one job of a trace. Durations are the *actual* per-task runtimes;
// schedulers only ever see the estimate (average task duration, possibly
// perturbed by the mis-estimation experiments).
type Job struct {
	ID         int
	SubmitTime float64   // seconds since trace start
	Durations  []float64 // actual runtime of each task, seconds
	// ConstructedLong records whether the generator drew this job from a
	// long cluster. Schedulers never read it; it exists for Table 1/2
	// workload characterization, which the paper computes from cluster
	// membership.
	ConstructedLong bool
}

// NumTasks returns the number of tasks in the job.
func (j *Job) NumTasks() int { return len(j.Durations) }

// AvgTaskDuration returns the average task duration, the paper's per-job
// runtime estimate (§3.3).
func (j *Job) AvgTaskDuration() float64 {
	if len(j.Durations) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range j.Durations {
		sum += d
	}
	return sum / float64(len(j.Durations))
}

// TaskSeconds returns the total work of the job (sum of task durations).
func (j *Job) TaskSeconds() float64 {
	sum := 0.0
	for _, d := range j.Durations {
		sum += d
	}
	return sum
}

// Trace is an ordered sequence of jobs plus the metadata the scheduler
// experiments need.
type Trace struct {
	Name string
	Jobs []*Job
	// Cutoff is the default long/short cutoff (seconds of average task
	// duration) used when scheduling this trace; jobs at or above the
	// cutoff are long.
	Cutoff float64
	// ShortPartitionFraction is the default fraction of nodes reserved
	// for short tasks, derived from the long-job task-second share
	// (Table 1 / §4.1 parameters).
	ShortPartitionFraction float64
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// SortBySubmitTime orders jobs by submission time (stable, preserving id
// order for ties), as the simulator requires.
func (t *Trace) SortBySubmitTime() {
	sort.SliceStable(t.Jobs, func(i, j int) bool {
		return t.Jobs[i].SubmitTime < t.Jobs[j].SubmitTime
	})
}

// MakespanLowerBound returns the last submission time, a lower bound on the
// simulated horizon.
func (t *Trace) MakespanLowerBound() float64 {
	last := 0.0
	for _, j := range t.Jobs {
		if j.SubmitTime > last {
			last = j.SubmitTime
		}
	}
	return last
}

// Validate checks structural invariants: non-negative submit times and
// durations, at least one task per job, unique ids.
func (t *Trace) Validate() error {
	seen := make(map[int]struct{}, len(t.Jobs))
	for _, j := range t.Jobs {
		if j == nil {
			return fmt.Errorf("workload: trace %q contains nil job", t.Name)
		}
		if _, dup := seen[j.ID]; dup {
			return fmt.Errorf("workload: duplicate job id %d", j.ID)
		}
		seen[j.ID] = struct{}{}
		if j.SubmitTime < 0 {
			return fmt.Errorf("workload: job %d has negative submit time %f", j.ID, j.SubmitTime)
		}
		if len(j.Durations) == 0 {
			return fmt.Errorf("workload: job %d has no tasks", j.ID)
		}
		for i, d := range j.Durations {
			if d < 0 {
				return fmt.Errorf("workload: job %d task %d has negative duration %f", j.ID, i, d)
			}
		}
	}
	return nil
}

// Stats aggregates the workload-characterization numbers of Tables 1 and 2.
type Stats struct {
	TotalJobs          int
	LongJobs           int
	PctLongJobs        float64 // percentage, 0-100
	PctLongTaskSeconds float64 // percentage of task-seconds in long jobs
	PctLongTasks       float64 // percentage of tasks belonging to long jobs
	AvgTaskDurRatio    float64 // avg task duration long / short (per-job averages)
	TotalTasks         int
	TotalTaskSeconds   float64
}

// ComputeStats classifies jobs by cutoff (average task duration >= cutoff is
// long) and computes Table 1/2 statistics.
func ComputeStats(t *Trace, cutoff float64) Stats {
	var s Stats
	var longTS, totalTS float64
	var longTasks int
	var longDurSum, shortDurSum float64
	var shortJobs int
	for _, j := range t.Jobs {
		ts := j.TaskSeconds()
		totalTS += ts
		s.TotalTasks += j.NumTasks()
		avg := j.AvgTaskDuration()
		if avg >= cutoff {
			s.LongJobs++
			longTS += ts
			longTasks += j.NumTasks()
			longDurSum += avg
		} else {
			shortJobs++
			shortDurSum += avg
		}
	}
	s.TotalJobs = len(t.Jobs)
	s.TotalTaskSeconds = totalTS
	if s.TotalJobs > 0 {
		s.PctLongJobs = 100 * float64(s.LongJobs) / float64(s.TotalJobs)
	}
	if totalTS > 0 {
		s.PctLongTaskSeconds = 100 * longTS / totalTS
	}
	if s.TotalTasks > 0 {
		s.PctLongTasks = 100 * float64(longTasks) / float64(s.TotalTasks)
	}
	if s.LongJobs > 0 && shortJobs > 0 && shortDurSum > 0 {
		s.AvgTaskDurRatio = (longDurSum / float64(s.LongJobs)) / (shortDurSum / float64(shortJobs))
	}
	return s
}

// SplitByCutoff partitions the per-job values of f into (short, long) slices
// by the cutoff classification, for the Figure 4 per-class CDFs.
func SplitByCutoff(t *Trace, cutoff float64, f func(*Job) float64) (short, long []float64) {
	for _, j := range t.Jobs {
		v := f(j)
		if j.AvgTaskDuration() >= cutoff {
			long = append(long, v)
		} else {
			short = append(short, v)
		}
	}
	return short, long
}

// Scale returns a copy of the trace with all task durations multiplied by
// durFactor and all submit times by arrivalFactor. Used by the prototype
// experiments, which scale the Google sample from seconds to milliseconds
// (§4.1 "Real cluster run").
func (t *Trace) Scale(durFactor, arrivalFactor float64) *Trace {
	out := &Trace{
		Name:                   t.Name,
		Cutoff:                 t.Cutoff * durFactor,
		ShortPartitionFraction: t.ShortPartitionFraction,
		Jobs:                   make([]*Job, len(t.Jobs)),
	}
	for i, j := range t.Jobs {
		nj := &Job{
			ID:              j.ID,
			SubmitTime:      j.SubmitTime * arrivalFactor,
			Durations:       make([]float64, len(j.Durations)),
			ConstructedLong: j.ConstructedLong,
		}
		for k, d := range j.Durations {
			nj.Durations[k] = d * durFactor
		}
		out.Jobs[i] = nj
	}
	return out
}

// CapTasks returns a copy of the trace in which no job has more than
// maxTasks tasks; removed tasks have their durations folded into the
// remaining ones so each job keeps its original task-seconds, mirroring the
// paper's scale-down procedure for the 100-node prototype run (§4.1).
func (t *Trace) CapTasks(maxTasks int) *Trace {
	out := &Trace{
		Name:                   t.Name,
		Cutoff:                 t.Cutoff,
		ShortPartitionFraction: t.ShortPartitionFraction,
		Jobs:                   make([]*Job, len(t.Jobs)),
	}
	for i, j := range t.Jobs {
		nj := &Job{ID: j.ID, SubmitTime: j.SubmitTime, ConstructedLong: j.ConstructedLong}
		if j.NumTasks() <= maxTasks {
			nj.Durations = append([]float64(nil), j.Durations...)
		} else {
			factor := float64(j.NumTasks()) / float64(maxTasks)
			avg := j.AvgTaskDuration()
			nj.Durations = make([]float64, maxTasks)
			for k := range nj.Durations {
				nj.Durations[k] = avg * factor
			}
		}
		out.Jobs[i] = nj
	}
	return out
}

// Sample returns a copy containing the first n jobs by submission order,
// with submission times preserved. Used to take the 3300-job Google sample
// of §4.10.
func (t *Trace) Sample(n int) *Trace {
	if n > len(t.Jobs) {
		n = len(t.Jobs)
	}
	cp := &Trace{
		Name:                   t.Name,
		Cutoff:                 t.Cutoff,
		ShortPartitionFraction: t.ShortPartitionFraction,
	}
	jobs := append([]*Job(nil), t.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].SubmitTime < jobs[j].SubmitTime })
	cp.Jobs = jobs[:n]
	return cp
}

// rescaleArrivals multiplies all submission times so that the mean
// inter-arrival time equals target. Helper for generators.
func rescaleArrivals(jobs []*Job, targetMeanInterArrival float64, src *randdist.Source) {
	arr := randdist.NewArrivalProcess(src, targetMeanInterArrival)
	for _, j := range jobs {
		j.SubmitTime = arr.Next()
	}
}

// WithArrivals returns a copy of the trace whose submission times are
// redrawn from a Poisson process with the given mean inter-arrival time.
// The paper's prototype experiments vary cluster load exactly this way:
// "We vary the cluster load by varying the mean job inter-arrival rate as a
// multiple of the mean task runtime" (§4.1).
func (t *Trace) WithArrivals(meanInterArrival float64, seed int64) *Trace {
	out := t.Scale(1, 1)
	rescaleArrivals(out.Jobs, meanInterArrival, randdist.New(seed))
	out.SortBySubmitTime()
	return out
}

// MeanTaskDuration returns the mean task duration across every task of the
// trace, the unit in which the prototype experiments express load.
func (t *Trace) MeanTaskDuration() float64 {
	var sum float64
	var n int
	for _, j := range t.Jobs {
		sum += j.TaskSeconds()
		n += j.NumTasks()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
