package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func job(id int, submit float64, durs ...float64) *Job {
	return &Job{ID: id, SubmitTime: submit, Durations: durs}
}

func TestJobAccessors(t *testing.T) {
	j := job(1, 0, 100, 200, 300)
	if j.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d", j.NumTasks())
	}
	if j.AvgTaskDuration() != 200 {
		t.Fatalf("AvgTaskDuration = %v", j.AvgTaskDuration())
	}
	if j.TaskSeconds() != 600 {
		t.Fatalf("TaskSeconds = %v", j.TaskSeconds())
	}
	empty := &Job{ID: 2}
	if empty.AvgTaskDuration() != 0 {
		t.Fatal("empty job avg should be 0")
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{Jobs: []*Job{job(1, 0, 10), job(2, 5, 20)}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []*Trace{
		{Jobs: []*Job{job(1, 0, 10), job(1, 1, 10)}}, // duplicate id
		{Jobs: []*Job{job(1, -1, 10)}},               // negative submit
		{Jobs: []*Job{{ID: 1}}},                      // no tasks
		{Jobs: []*Job{job(1, 0, -5)}},                // negative duration
		{Jobs: []*Job{nil}},                          // nil job
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestSortBySubmitTime(t *testing.T) {
	tr := &Trace{Jobs: []*Job{job(1, 5, 1), job(2, 3, 1), job(3, 4, 1)}}
	tr.SortBySubmitTime()
	want := []int{2, 3, 1}
	for i, j := range tr.Jobs {
		if j.ID != want[i] {
			t.Fatalf("sorted order %v at %d, want %v", j.ID, i, want[i])
		}
	}
	if tr.MakespanLowerBound() != 5 {
		t.Fatalf("MakespanLowerBound = %v", tr.MakespanLowerBound())
	}
}

func TestComputeStats(t *testing.T) {
	tr := &Trace{Jobs: []*Job{
		job(1, 0, 10, 10),     // short: avg 10, TS 20
		job(2, 0, 1000, 1000), // long: avg 1000, TS 2000
		job(3, 0, 5, 5, 5, 5), // short: avg 5, TS 20
	}}
	s := ComputeStats(tr, 100)
	if s.TotalJobs != 3 || s.LongJobs != 1 {
		t.Fatalf("jobs = %d long = %d", s.TotalJobs, s.LongJobs)
	}
	if math.Abs(s.PctLongJobs-100.0/3) > 1e-9 {
		t.Fatalf("PctLongJobs = %v", s.PctLongJobs)
	}
	if math.Abs(s.PctLongTaskSeconds-100*2000.0/2040) > 1e-9 {
		t.Fatalf("PctLongTaskSeconds = %v", s.PctLongTaskSeconds)
	}
	if s.TotalTasks != 8 {
		t.Fatalf("TotalTasks = %d", s.TotalTasks)
	}
	// Duration ratio: long avg 1000 / short avg (10+5)/2 = 7.5 -> 133.3.
	if math.Abs(s.AvgTaskDurRatio-1000/7.5) > 1e-9 {
		t.Fatalf("AvgTaskDurRatio = %v", s.AvgTaskDurRatio)
	}
}

func TestSplitByCutoff(t *testing.T) {
	tr := &Trace{Jobs: []*Job{job(1, 0, 10), job(2, 0, 1000)}}
	short, long := SplitByCutoff(tr, 100, func(j *Job) float64 { return float64(j.NumTasks()) })
	if len(short) != 1 || len(long) != 1 {
		t.Fatalf("split = %d/%d", len(short), len(long))
	}
}

func TestScale(t *testing.T) {
	tr := &Trace{
		Cutoff:                 1000,
		ShortPartitionFraction: 0.17,
		Jobs:                   []*Job{{ID: 1, SubmitTime: 10, Durations: []float64{100}, ConstructedLong: true}},
	}
	s := tr.Scale(0.001, 2)
	if s.Jobs[0].Durations[0] != 0.1 {
		t.Fatalf("scaled duration = %v", s.Jobs[0].Durations[0])
	}
	if s.Jobs[0].SubmitTime != 20 {
		t.Fatalf("scaled submit = %v", s.Jobs[0].SubmitTime)
	}
	if s.Cutoff != 1 {
		t.Fatalf("scaled cutoff = %v", s.Cutoff)
	}
	if !s.Jobs[0].ConstructedLong {
		t.Fatal("Scale dropped ConstructedLong")
	}
	// The original must be untouched.
	if tr.Jobs[0].Durations[0] != 100 {
		t.Fatal("Scale mutated the source trace")
	}
}

func TestCapTasksPreservesTaskSeconds(t *testing.T) {
	tr := &Trace{Jobs: []*Job{job(1, 0, 10, 20, 30, 40, 50, 60)}}
	capped := tr.CapTasks(3)
	j := capped.Jobs[0]
	if j.NumTasks() != 3 {
		t.Fatalf("capped to %d tasks, want 3", j.NumTasks())
	}
	if math.Abs(j.TaskSeconds()-210) > 1e-9 {
		t.Fatalf("task-seconds changed: %v, want 210", j.TaskSeconds())
	}
	// Small jobs pass through unchanged.
	small := tr.CapTasks(100)
	if small.Jobs[0].NumTasks() != 6 {
		t.Fatal("uncapped job was modified")
	}
}

// Property: CapTasks preserves per-job task-seconds for any job and cap.
func TestCapTasksProperty(t *testing.T) {
	check := func(raw []float64, capRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		durs := make([]float64, len(raw))
		for i, v := range raw {
			d := math.Abs(v)
			if math.IsNaN(d) || math.IsInf(d, 0) || d > 1e9 {
				d = 1
			}
			durs[i] = d
		}
		cap := int(capRaw)%len(durs) + 1
		tr := &Trace{Jobs: []*Job{{ID: 1, Durations: durs}}}
		capped := tr.CapTasks(cap)
		j := capped.Jobs[0]
		if j.NumTasks() > cap {
			return false
		}
		orig := tr.Jobs[0].TaskSeconds()
		diff := math.Abs(j.TaskSeconds() - orig)
		return diff <= 1e-9*math.Max(1, orig)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSample(t *testing.T) {
	tr := &Trace{Jobs: []*Job{job(1, 30, 1), job(2, 10, 1), job(3, 20, 1)}}
	s := tr.Sample(2)
	if s.Len() != 2 {
		t.Fatalf("sample size %d", s.Len())
	}
	if s.Jobs[0].ID != 2 || s.Jobs[1].ID != 3 {
		t.Fatalf("sample should be earliest jobs, got %d,%d", s.Jobs[0].ID, s.Jobs[1].ID)
	}
	if tr.Sample(10).Len() != 3 {
		t.Fatal("oversized sample should clamp")
	}
}

func TestWithArrivals(t *testing.T) {
	tr := &Trace{Jobs: []*Job{job(1, 100, 1), job(2, 200, 1)}}
	out := tr.WithArrivals(5, 1)
	if out.Len() != 2 {
		t.Fatal("job count changed")
	}
	prev := 0.0
	for _, j := range out.Jobs {
		if j.SubmitTime < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = j.SubmitTime
	}
	// Determinism.
	out2 := tr.WithArrivals(5, 1)
	for i := range out.Jobs {
		if out.Jobs[i].SubmitTime != out2.Jobs[i].SubmitTime {
			t.Fatal("WithArrivals not deterministic")
		}
	}
}

func TestMeanTaskDuration(t *testing.T) {
	tr := &Trace{Jobs: []*Job{job(1, 0, 10, 20), job(2, 0, 30)}}
	if m := tr.MeanTaskDuration(); m != 20 {
		t.Fatalf("MeanTaskDuration = %v", m)
	}
	empty := &Trace{}
	if m := empty.MeanTaskDuration(); m != 0 {
		t.Fatalf("empty MeanTaskDuration = %v", m)
	}
}
