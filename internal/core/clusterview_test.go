package core

import (
	"testing"

	"repro/internal/randdist"
)

// A static view must draw bit-for-bit identically to sampling the
// Partition directly — that equivalence is what keeps every churn-free
// golden report byte-identical through the cluster-model refactor.
func TestStaticViewSamplesLikePartition(t *testing.T) {
	p := NewPartition(500, 0.1)
	v := NewClusterView(p)
	srcA := randdist.New(42)
	srcB := randdist.New(42)
	for trial := 0; trial < 200; trial++ {
		k := 1 + trial%17
		var a, b []int
		switch trial % 3 {
		case 0:
			a = p.SampleAll(srcA, k)
			b = v.SampleAllInto(nil, srcB, k)
		case 1:
			a = p.SampleGeneral(srcA, k)
			b = v.SampleGeneralInto(nil, srcB, k)
		case 2:
			a = p.SampleShort(srcA, k)
			b = v.SampleShortInto(nil, srcB, k)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: draw %d differs: %d vs %d", trial, i, a[i], b[i])
			}
		}
	}
	// The two sources must also end in the same state.
	if srcA.Int63() != srcB.Int63() {
		t.Fatal("static view consumed different random draws than the partition")
	}
}

func TestStaticViewCountsAndSpeeds(t *testing.T) {
	p := NewPartition(100, 0.2)
	v := NewClusterView(p)
	if v.Dynamic() {
		t.Fatal("fresh view must be static")
	}
	if v.AliveAll() != 100 || v.AliveShort() != 20 || v.AliveGeneral() != 80 {
		t.Fatalf("static alive counts %d/%d/%d", v.AliveAll(), v.AliveShort(), v.AliveGeneral())
	}
	if !v.Alive(0) || !v.Alive(99) {
		t.Fatal("all nodes alive on a static view")
	}
	if v.Speed(17) != 1 {
		t.Fatal("homogeneous view must report speed 1")
	}
	speeds := make([]float64, 100)
	for i := range speeds {
		speeds[i] = 0.5
	}
	v.SetSpeeds(speeds)
	if v.Speed(17) != 0.5 {
		t.Fatal("SetSpeeds not observed")
	}
}

func TestDynamicMembership(t *testing.T) {
	p := NewPartition(50, 0.2) // short: 0..9, general: 10..49
	v := NewClusterView(p)
	v.EnableMembership()
	if !v.Dynamic() {
		t.Fatal("EnableMembership did not switch the view")
	}
	if !v.Fail(3) || !v.Fail(12) || !v.Fail(49) {
		t.Fatal("failing live nodes must report true")
	}
	if v.Fail(3) {
		t.Fatal("failing a dead node must report false")
	}
	if v.Alive(3) || v.Alive(12) || v.Alive(49) {
		t.Fatal("failed nodes still alive")
	}
	if v.AliveAll() != 47 || v.AliveShort() != 9 || v.AliveGeneral() != 38 {
		t.Fatalf("alive counts %d/%d/%d after 3 failures", v.AliveAll(), v.AliveShort(), v.AliveGeneral())
	}
	dead := v.AppendDead(nil)
	if len(dead) != 3 || dead[0] != 3 || dead[1] != 12 || dead[2] != 49 {
		t.Fatalf("AppendDead = %v", dead)
	}

	// No sample may ever return a dead node, each draw set is distinct,
	// and every pool draw respects the partition side.
	src := randdist.New(7)
	for trial := 0; trial < 500; trial++ {
		ids := v.SampleAllInto(nil, src, 10)
		seen := map[int]bool{}
		for _, id := range ids {
			if !v.Alive(id) {
				t.Fatalf("sampled dead node %d", id)
			}
			if seen[id] {
				t.Fatalf("duplicate sample %d", id)
			}
			seen[id] = true
		}
		for _, id := range v.SampleGeneralInto(nil, src, 8) {
			if !p.IsGeneral(id) || !v.Alive(id) {
				t.Fatalf("bad general sample %d", id)
			}
		}
		for _, id := range v.SampleShortInto(nil, src, 4) {
			if p.IsGeneral(id) || !v.Alive(id) {
				t.Fatalf("bad short sample %d", id)
			}
		}
	}

	if !v.Recover(12) {
		t.Fatal("recovering a dead node must report true")
	}
	if v.Recover(12) {
		t.Fatal("recovering a live node must report false")
	}
	if v.AliveGeneral() != 39 || !v.Alive(12) {
		t.Fatal("recovery did not restore membership")
	}
	// Recovered nodes are sampled again.
	found := false
	for trial := 0; trial < 200 && !found; trial++ {
		for _, id := range v.SampleGeneralInto(nil, src, 5) {
			if id == 12 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("recovered node 12 never sampled")
	}
}

// Failing every node of a pool leaves its samples empty instead of
// looping, and the whole-cluster pool still serves the other side.
func TestDynamicMembershipExhaustion(t *testing.T) {
	p := NewPartition(10, 0.3) // short 0..2
	v := NewClusterView(p)
	v.EnableMembership()
	for id := 0; id < 3; id++ {
		v.Fail(id)
	}
	src := randdist.New(1)
	if got := v.SampleShortInto(nil, src, 2); len(got) != 0 {
		t.Fatalf("sampling an empty short pool returned %v", got)
	}
	if got := v.SampleAllInto(nil, src, 10); len(got) != 7 {
		t.Fatalf("whole-cluster sample returned %d ids, want the 7 live", len(got))
	}
}

func TestDynamicSamplingZeroAlloc(t *testing.T) {
	p := NewPartition(1000, 0.1)
	v := NewClusterView(p)
	v.EnableMembership()
	for id := 0; id < 50; id++ {
		v.Fail(id * 7)
	}
	src := randdist.New(3)
	dst := make([]int, 0, 32)
	allocs := testing.AllocsPerRun(1000, func() {
		dst = v.SampleAllInto(dst[:0], src, 10)
		dst = v.SampleGeneralInto(dst[:0], src, 10)
	})
	if allocs != 0 {
		t.Errorf("dynamic sampling allocated %v times per round, want 0", allocs)
	}
}

func TestCentralQueueRemoveAdd(t *testing.T) {
	q := NewCentralQueue([]int{0, 1, 2, 3})
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Load server 0 so it is the busiest, then remove it.
	for i := 0; i < 4; i++ {
		q.Assign(0, 10) // spreads one task per idle server
	}
	q.TaskStarted(0, 0, 10, 10)
	if !q.Remove(0) {
		t.Fatal("Remove(0) on a tracked server must report true")
	}
	if q.Remove(0) {
		t.Fatal("Remove(0) twice must report false")
	}
	if q.Len() != 3 {
		t.Fatalf("Len after remove = %d", q.Len())
	}
	if q.Waiting(0, 1) != -1 {
		t.Fatal("removed server still tracked")
	}
	// Assignments go to the remaining servers only.
	for i := 0; i < 12; i++ {
		id, _ := q.Assign(1, 5)
		if id == 0 {
			t.Fatal("assigned to a removed server")
		}
	}
	// Re-adding restores an idle server with zero waiting, which must win
	// the next assignment over the loaded survivors.
	if !q.Add(0, 2) {
		t.Fatal("Add(0) after removal must report true")
	}
	if q.Add(0, 2) {
		t.Fatal("Add(0) while tracked must report false")
	}
	if q.Len() != 4 {
		t.Fatalf("Len after add = %d", q.Len())
	}
	if w := q.Waiting(0, 2); w != 0 {
		t.Fatalf("re-added server waiting = %g, want 0", w)
	}
	if id, _ := q.Assign(2, 5); id != 0 {
		t.Fatalf("next assignment went to %d, want the idle re-added 0", id)
	}
	// Growing the id space via Add works too.
	if !q.Add(9, 3) {
		t.Fatal("Add(9) beyond the original id range must work")
	}
	if q.Waiting(9, 3) != 0 {
		t.Fatal("grown server not tracked")
	}
}
