package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCentralQueueAssignsIdleFirst(t *testing.T) {
	q := NewCentralQueue([]int{1, 2, 3})
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		id, wait := q.Assign(0, 100)
		if wait != 0 {
			t.Fatalf("idle server should have zero waiting, got %v", wait)
		}
		if seen[id] {
			t.Fatalf("server %d assigned twice before others", id)
		}
		seen[id] = true
	}
	// Fourth assignment stacks on some server with waiting 100.
	_, wait := q.Assign(0, 100)
	if wait != 100 {
		t.Fatalf("stacked assignment waiting = %v, want 100", wait)
	}
}

func TestCentralQueueWaitingAccumulates(t *testing.T) {
	q := NewCentralQueue([]int{1})
	for i := 0; i < 5; i++ {
		_, wait := q.Assign(0, 10)
		if want := float64(i * 10); wait != want {
			t.Fatalf("assignment %d waiting = %v, want %v", i, wait, want)
		}
	}
}

func TestCentralQueueTimeDecay(t *testing.T) {
	q := NewCentralQueue([]int{1})
	q.Assign(0, 100) // queued work: 100
	q.TaskStarted(1, 0, 100, 100)
	// At t=40, 60 seconds of the running task remain.
	if w := q.MinWaiting(40); math.Abs(w-60) > 1e-9 {
		t.Fatalf("waiting at t=40 = %v, want 60", w)
	}
	// Past the estimated end, waiting clamps at zero.
	if w := q.MinWaiting(150); w != 0 {
		t.Fatalf("waiting at t=150 = %v, want 0", w)
	}
}

func TestCentralQueueFeedbackReanchors(t *testing.T) {
	q := NewCentralQueue([]int{1, 2})
	// Both get one task of estimate 100.
	q.Assign(0, 100)
	q.Assign(0, 100)
	q.TaskStarted(1, 0, 100, 100)
	q.TaskStarted(2, 0, 100, 100)
	// Server 1 finishes early at t=10: its waiting drops to zero while
	// server 2 still has ~90 remaining, so the next task goes to 1.
	q.TaskFinished(1, 10)
	id, wait := q.Assign(10, 50)
	if id != 1 {
		t.Fatalf("assignment went to %d, want the early-finisher 1", id)
	}
	if wait != 0 {
		t.Fatalf("waiting = %v, want 0", wait)
	}
}

func TestCentralQueueLateFinishKeepsWaiting(t *testing.T) {
	q := NewCentralQueue([]int{1, 2})
	q.Assign(0, 100)
	q.TaskStarted(1, 0, 100, 100)
	// At t=150 the task on 1 still runs (estimate was wrong). Server 1's
	// running term is exhausted; waiting is 0 — the scheduler believed
	// the estimate. Assign goes to server 2 only if it has less waiting;
	// both are zero, so tie-break by id picks 1. Start feedback matters:
	// after server 1 reports a *new* start, its waiting rises again.
	q.TaskStarted(1, 150, 100, 100)
	id, _ := q.Assign(150, 10)
	if id != 2 {
		t.Fatalf("assignment went to %d, want idle server 2", id)
	}
}

func TestCentralQueueNilSafety(t *testing.T) {
	var q *CentralQueue
	q.TaskStarted(1, 0, 10, 10) // must not panic
	q.TaskFinished(1, 0)
}

func TestCentralQueueUntrackedNode(t *testing.T) {
	q := NewCentralQueue([]int{1})
	q.TaskStarted(99, 0, 10, 10) // unknown node: ignored
	q.TaskFinished(99, 0)
	if w := q.Waiting(99, 0); w != -1 {
		t.Fatalf("Waiting(unknown) = %v, want -1", w)
	}
}

func TestCentralQueueEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Assign on empty queue should panic")
		}
	}()
	NewCentralQueue(nil).Assign(0, 1)
}

// Property: Assign always returns the minimum waiting time across servers
// (checked against a brute-force scan via Waitings).
func TestCentralQueueMinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := make([]int, 50)
	for i := range ids {
		ids[i] = i
	}
	q := NewCentralQueue(ids)
	now := 0.0
	running := map[int]float64{} // node -> est of running task
	queued := map[int][]float64{}
	for step := 0; step < 3000; step++ {
		now += rng.Float64() * 5
		switch rng.Intn(3) {
		case 0: // assign
			est := rng.Float64()*100 + 1
			all := q.Waitings(now)
			min := math.Inf(1)
			for _, w := range all {
				min = math.Min(min, w)
			}
			id, wait := q.Assign(now, est)
			if math.Abs(wait-min) > 1e-6 {
				t.Fatalf("step %d: Assign waiting %v != min %v", step, wait, min)
			}
			queued[id] = append(queued[id], est)
		case 1: // start a queued task somewhere
			for id, list := range queued {
				if len(list) > 0 && running[id] == 0 {
					est := list[0]
					queued[id] = list[1:]
					q.TaskStarted(id, now, est, est)
					running[id] = est
					break
				}
			}
		case 2: // finish a running task
			for id, est := range running {
				if est > 0 {
					q.TaskFinished(id, now)
					delete(running, id)
					break
				}
			}
		}
		// Waiting times must never be negative.
		for _, w := range q.Waitings(now) {
			if w < 0 {
				t.Fatalf("negative waiting %v", w)
			}
		}
	}
}

func TestCentralQueueDeterministicTieBreak(t *testing.T) {
	q1 := NewCentralQueue([]int{3, 1, 2})
	q2 := NewCentralQueue([]int{3, 1, 2})
	for i := 0; i < 10; i++ {
		a, _ := q1.Assign(0, 10)
		b, _ := q2.Assign(0, 10)
		if a != b {
			t.Fatal("equal queues diverged")
		}
	}
}

// Property-based workout of the heap invariant under arbitrary operation
// sequences encoded as byte strings.
func TestCentralQueueFuzzOps(t *testing.T) {
	check := func(ops []byte) bool {
		q := NewCentralQueue([]int{0, 1, 2, 3, 4})
		now := 0.0
		for _, op := range ops {
			now += float64(op%7) * 0.5
			switch op % 3 {
			case 0:
				q.Assign(now, float64(op%11)+1)
			case 1:
				q.TaskStarted(int(op%5), now, float64(op%13)+1, float64(op%13)+1)
			case 2:
				q.TaskFinished(int(op%5), now)
			}
		}
		for _, w := range q.Waitings(now) {
			if w < 0 || math.IsNaN(w) {
				return false
			}
		}
		return q.Len() == 5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
