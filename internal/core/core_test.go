package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randdist"
	"repro/internal/workload"
)

func TestEstimatorExact(t *testing.T) {
	job := &workload.Job{ID: 1, Durations: []float64{100, 200, 300}}
	e := NewEstimator(0, 0, 1)
	if got := e.Estimate(job); got != 200 {
		t.Fatalf("exact estimate = %v, want 200", got)
	}
	e1 := NewEstimator(1, 1, 1)
	if got := e1.Estimate(job); got != 200 {
		t.Fatalf("unit-range estimate = %v, want 200", got)
	}
}

func TestEstimatorNil(t *testing.T) {
	var e *Estimator
	job := &workload.Job{ID: 1, Durations: []float64{50}}
	if got := e.Estimate(job); got != 50 {
		t.Fatalf("nil estimator should be exact, got %v", got)
	}
}

func TestEstimatorMisestimationRange(t *testing.T) {
	job := &workload.Job{ID: 1, Durations: []float64{1000}}
	e := NewEstimator(0.5, 1.5, 7)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10000; i++ {
		v := e.Estimate(job)
		if v < 500 || v >= 1500 {
			t.Fatalf("estimate %v outside [500, 1500)", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 600 || hi < 1400 {
		t.Fatalf("mis-estimation not spanning the range: [%v, %v]", lo, hi)
	}
}

func TestEstimatorDeterminism(t *testing.T) {
	job := &workload.Job{ID: 1, Durations: []float64{100}}
	a := NewEstimator(0.1, 1.9, 42)
	b := NewEstimator(0.1, 1.9, 42)
	for i := 0; i < 100; i++ {
		if a.Estimate(job) != b.Estimate(job) {
			t.Fatal("estimator streams diverged for equal seeds")
		}
	}
}

func TestClassifier(t *testing.T) {
	c := Classifier{Cutoff: 1129}
	if c.IsLong(1128.9) {
		t.Fatal("below cutoff should be short")
	}
	if !c.IsLong(1129) {
		t.Fatal("at cutoff should be long")
	}
	if !c.IsLong(20000) {
		t.Fatal("far above cutoff should be long")
	}
}

func TestPartitionSizing(t *testing.T) {
	p := NewPartition(15000, 0.17)
	if p.ShortOnlyNodes() != 2550 {
		t.Fatalf("short partition = %d, want 2550", p.ShortOnlyNodes())
	}
	if p.GeneralNodes() != 12450 {
		t.Fatalf("general partition = %d, want 12450", p.GeneralNodes())
	}
	if p.NumNodes() != 15000 {
		t.Fatalf("NumNodes = %d", p.NumNodes())
	}
}

func TestPartitionMembership(t *testing.T) {
	p := NewPartition(100, 0.2)
	for id := 0; id < 20; id++ {
		if p.IsGeneral(id) {
			t.Fatalf("node %d should be short-only", id)
		}
	}
	for id := 20; id < 100; id++ {
		if !p.IsGeneral(id) {
			t.Fatalf("node %d should be general", id)
		}
	}
	if got := p.GeneralID(0); got != 20 {
		t.Fatalf("GeneralID(0) = %d, want 20", got)
	}
	if got := p.GeneralID(79); got != 99 {
		t.Fatalf("GeneralID(79) = %d, want 99", got)
	}
}

func TestPartitionCeiling(t *testing.T) {
	// The reservation is ceil(fraction * nodes): any positive fraction
	// reserves at least one node, and fractional products round up.
	cases := []struct {
		nodes int
		frac  float64
		want  int
	}{
		{3, 0.34, 2},   // 1.02 rounds up
		{10, 0.01, 1},  // 0.1 rounds up
		{10, 0.25, 3},  // 2.5 rounds up
		{100, 0.2, 20}, // exact products stay exact
		{100, 0.07, 7}, // 0.07*100 is 7.0000000000000009 in float64; noise must not ceil to 8
		{15000, 0.17, 2550},
	}
	for _, c := range cases {
		if got := NewPartition(c.nodes, c.frac).ShortOnlyNodes(); got != c.want {
			t.Errorf("NewPartition(%d, %g) reserved %d, want %d", c.nodes, c.frac, got, c.want)
		}
	}
}

func TestPartitionClamping(t *testing.T) {
	// A full reservation must still leave one general node.
	p := NewPartition(10, 1.0)
	if p.GeneralNodes() < 1 {
		t.Fatalf("general partition empty: %+v", p)
	}
	// Negative and oversized fractions clamp.
	if p := NewPartition(10, -0.5); p.ShortOnlyNodes() != 0 {
		t.Fatalf("negative fraction should reserve nothing, got %d", p.ShortOnlyNodes())
	}
	if p := NewPartition(0, 0.5); p.NumNodes() != 0 {
		t.Fatalf("zero nodes mishandled: %+v", p)
	}
}

// Property: every partition splits the cluster exactly and samples stay in
// the right ranges.
func TestPartitionProperty(t *testing.T) {
	src := randdist.New(3)
	check := func(nodes uint16, fracRaw uint8) bool {
		n := int(nodes%5000) + 2
		frac := float64(fracRaw) / 255
		p := NewPartition(n, frac)
		if p.ShortOnlyNodes()+p.GeneralNodes() != n {
			return false
		}
		if p.GeneralNodes() < 1 {
			return false
		}
		for _, id := range p.SampleGeneral(src, 10) {
			if !p.IsGeneral(id) {
				return false
			}
		}
		for _, id := range p.SampleAll(src, 10) {
			if id < 0 || id >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNumProbes(t *testing.T) {
	if got := NumProbes(10, 2, 1000); got != 20 {
		t.Fatalf("NumProbes = %d, want 20", got)
	}
	if got := NumProbes(600, 2, 1000); got != 1000 {
		t.Fatalf("NumProbes capped = %d, want 1000", got)
	}
	if got := NumProbes(0, 2, 1000); got != 1 {
		t.Fatalf("NumProbes floor = %d, want 1", got)
	}
	if got := NumProbes(5, 2, 0); got != 0 {
		t.Fatalf("NumProbes with no candidates = %d, want 0", got)
	}
}

func TestPartitionString(t *testing.T) {
	if s := NewPartition(10, 0.2).String(); s == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestPartitionCeilingLargeProducts(t *testing.T) {
	// The noise guard must be relative: 0.07*3e8 is 21000000.000000004 in
	// float64, ~4e-9 above the intended integer.
	if got := NewPartition(300000000, 0.07).ShortOnlyNodes(); got != 21000000 {
		t.Fatalf("reserved %d, want 21000000", got)
	}
}

func TestPartitionTinyPositiveFraction(t *testing.T) {
	// The ceiling contract: any positive fraction reserves at least one
	// node, even when the noise guard clamps a near-zero product.
	if got := NewPartition(100, 1e-12).ShortOnlyNodes(); got != 1 {
		t.Fatalf("reserved %d, want 1", got)
	}
}
