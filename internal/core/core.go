// Package core implements the Hawk scheduler's policy components (Delgado
// et al., USENIX ATC '15) as engine-independent building blocks:
//
//   - runtime estimation and long/short classification (§3.3),
//   - cluster partitioning into a short partition and a general partition (§3.4),
//   - Sparrow-style batch-sampling probe placement for short jobs (§3.5),
//   - randomized work stealing with Figure 3's eligible-group rule (§3.6),
//   - the centralized waiting-time priority queue for long jobs (§3.7).
//
// Both the trace-driven simulator (internal/sim) and the live goroutine
// prototype (internal/liverun) are built from these pieces, so the policies
// under test are byte-for-byte identical across the two engines — mirroring
// how the paper reuses the same design in its simulator and Spark plug-in.
//
// Every decision here must be a pure function of its inputs and an explicit
// seeded randdist.Source; hawklint's determinism analyzer enforces it:
//
//hawk:deterministic
//hawk:exporteddoc
package core

import (
	"fmt"
	"math"

	"repro/internal/randdist"
	"repro/internal/workload"
)

// DefaultProbeRatio is the number of probes per task for batch sampling.
// The Sparrow authors found two to be the best probe ratio (§4.1).
const DefaultProbeRatio = 2

// DefaultStealCap is the default number of random nodes an idle server
// contacts when attempting to steal (§4.1).
const DefaultStealCap = 10

// DefaultNetworkDelay is the modelled one-way network delay (§4.1).
const DefaultNetworkDelay = 0.0005 // 0.5 ms in seconds

// Estimator produces per-job estimated task runtimes. Hawk estimates a
// job's task runtime as the average of the job's task durations (§3.3); the
// mis-estimation experiments (§4.8) multiply the correct estimate by a
// factor drawn uniformly from [MisLo, MisHi].
type Estimator struct {
	// MisLo and MisHi bound the uniform mis-estimation factor. A zero
	// Estimator (both zero) means exact estimates, as does MisLo = MisHi = 1.
	MisLo, MisHi float64
	src          *randdist.Source
}

// NewEstimator returns an estimator with the given mis-estimation range.
// Pass lo = hi = 1 (or 0, 0) for exact estimates. The seed controls the
// per-job factor draws.
func NewEstimator(lo, hi float64, seed int64) *Estimator {
	return &Estimator{MisLo: lo, MisHi: hi, src: randdist.New(seed)}
}

// Estimate returns the (possibly perturbed) estimated task runtime for j.
// Each call draws a fresh factor, so call it once per job and cache the
// result — the scheduler must use one consistent estimate per job.
func (e *Estimator) Estimate(j *workload.Job) float64 {
	actual := j.AvgTaskDuration()
	if e == nil || (e.MisLo == 0 && e.MisHi == 0) || (e.MisLo == 1 && e.MisHi == 1) {
		return actual
	}
	return actual * e.src.Uniform(e.MisLo, e.MisHi)
}

// Classifier separates long from short jobs by comparing the estimated task
// runtime against a cutoff (§3.3).
type Classifier struct {
	// Cutoff in seconds; jobs with estimate >= Cutoff are long.
	Cutoff float64
}

// IsLong reports whether a job with the given estimated task runtime is
// scheduled as a long job.
func (c Classifier) IsLong(estimate float64) bool { return estimate >= c.Cutoff }

// Partition describes Hawk's cluster split (§3.4). Nodes are identified by
// dense ids [0, NumNodes); ids below shortOnly form the short partition
// (reserved for short tasks), the rest form the general partition.
type Partition struct {
	numNodes  int
	shortOnly int
}

// NewPartition reserves ceil(shortFraction * numNodes) nodes for short
// tasks, leaving at least one general node whenever numNodes > 0. The
// fraction is clamped to [0, 1].
func NewPartition(numNodes int, shortFraction float64) Partition {
	if numNodes < 0 {
		numNodes = 0
	}
	if shortFraction < 0 {
		shortFraction = 0
	}
	if shortFraction > 1 {
		shortFraction = 1
	}
	p := shortFraction * float64(numNodes)
	short := int(math.Ceil(p))
	// Guard the ceiling against upward float noise: 0.07*100 is
	// 7.0000000000000009 in float64, and the true ceiling of the intended
	// product is 7, not 8. The tolerance is relative so the guard still
	// holds at huge products (0.07*3e8 is off by ~4e-9 absolute).
	if r := math.Round(p); p > r && p-r < 1e-9*math.Max(1, r) {
		short = int(r)
	}
	// Any positive fraction reserves at least one node, per the ceiling
	// contract — even when the guard clamped a near-zero product.
	if short == 0 && p > 0 {
		short = 1
	}
	if short >= numNodes && numNodes > 0 {
		short = numNodes - 1
	}
	return Partition{numNodes: numNodes, shortOnly: short}
}

// NumNodes returns the total cluster size.
func (p Partition) NumNodes() int { return p.numNodes }

// ShortOnlyNodes returns the size of the short partition.
func (p Partition) ShortOnlyNodes() int { return p.shortOnly }

// GeneralNodes returns the size of the general partition.
func (p Partition) GeneralNodes() int { return p.numNodes - p.shortOnly }

// IsGeneral reports whether node id belongs to the general partition (and
// may therefore run long tasks and be a steal victim).
func (p Partition) IsGeneral(id int) bool { return id >= p.shortOnly }

// GeneralID returns the node id of the i-th general-partition node.
func (p Partition) GeneralID(i int) int { return p.shortOnly + i }

// SampleGeneral returns k distinct random general-partition node ids.
func (p Partition) SampleGeneral(src *randdist.Source, k int) []int {
	return p.SampleGeneralInto(nil, src, k)
}

// SampleGeneralInto appends k distinct random general-partition node ids to
// dst and returns the extended slice, drawing identically to SampleGeneral.
// Zero heap allocations in steady state when dst has capacity; the
// simulator threads a per-run scratch buffer through here on every probe
// placement and steal attempt.
//
//hawk:hotpath
func (p Partition) SampleGeneralInto(dst []int, src *randdist.Source, k int) []int {
	n := p.GeneralNodes()
	if k > n {
		k = n
	}
	start := len(dst)
	dst = src.SampleWithoutReplacementInto(dst, n, k)
	for i := start; i < len(dst); i++ {
		dst[i] += p.shortOnly
	}
	return dst
}

// SampleAll returns k distinct random node ids from the whole cluster
// (short jobs may be probed anywhere, §3.4).
func (p Partition) SampleAll(src *randdist.Source, k int) []int {
	return p.SampleAllInto(nil, src, k)
}

// SampleAllInto is the scratch-buffer form of SampleAll; see
// SampleGeneralInto.
//
//hawk:hotpath
func (p Partition) SampleAllInto(dst []int, src *randdist.Source, k int) []int {
	if k > p.numNodes {
		k = p.numNodes
	}
	return src.SampleWithoutReplacementInto(dst, p.numNodes, k)
}

// SampleShort returns k distinct random short-partition node ids, used by
// policies that confine short jobs to the reserved partition (the §4.6
// split-cluster baseline).
func (p Partition) SampleShort(src *randdist.Source, k int) []int {
	return p.SampleShortInto(nil, src, k)
}

// SampleShortInto is the scratch-buffer form of SampleShort; see
// SampleGeneralInto.
//
//hawk:hotpath
func (p Partition) SampleShortInto(dst []int, src *randdist.Source, k int) []int {
	if k > p.shortOnly {
		k = p.shortOnly
	}
	return src.SampleWithoutReplacementInto(dst, p.shortOnly, k)
}

// String renders a one-line debug summary of the partition split.
func (p Partition) String() string {
	return fmt.Sprintf("partition{nodes=%d shortOnly=%d general=%d}", p.numNodes, p.shortOnly, p.GeneralNodes())
}

// NumProbes returns the batch-sampling probe count for a job with tasks
// tasks: ratio*tasks, capped at the number of candidate nodes (§3.5).
//
//hawk:hotpath
func NumProbes(tasks, ratio, candidateNodes int) int {
	n := tasks * ratio
	if n > candidateNodes {
		n = candidateNodes
	}
	if n < 1 && candidateNodes > 0 {
		n = 1
	}
	return n
}
