package core

// CentralQueue is the centralized scheduler's data structure (§3.7): a
// priority queue of <server, waiting time> tuples kept sorted by waiting
// time. The waiting time of a server is the sum of the estimated execution
// times of all long tasks in that server's queue plus the remaining
// estimated execution time of any long task currently executing there.
//
// The queue observes the lifecycle of the tasks it placed: the runtime
// reports TaskStarted and TaskFinished, which is what keeps the waiting
// times "timely and fairly accurate" (§3.7) even when actual task durations
// deviate from the estimates. Short tasks and probes are invisible to it,
// exactly as in the paper.
//
// Exact min-waiting extraction despite continuously decaying waiting times
// is achieved with two heaps:
//
//   - the running heap holds servers whose estimated running task extends
//     into the future (runEnd > now), keyed by runEnd + queued. All such
//     waiting times decay at unit rate, so their relative order is
//     time-invariant. A member whose runEnd slips into the past has true
//     waiting = queued >= key - now, so it can only be *under*-estimated
//     while buried in the heap — the root therefore stays the true minimum
//     of the heap, and expired roots are lazily migrated out.
//   - the idle heap holds the rest, keyed by queued (time-invariant).
//
// Assign compares the two roots' true waiting times and picks the smaller,
// so assignments are exactly min-waiting at every instant.
type CentralQueue struct {
	now float64
	// servers is indexed by node id (nil = node not tracked). Node ids are
	// dense per partition, so a slice lookup replaces the obvious map: the
	// queue is rebuilt for every simulation in a sweep, and a map would
	// cost one allocation per server plus bucket churn on every rebuild.
	servers []*serverState
	// states is the backing arena the servers pointers index into; kept so
	// SyncFrom can rebuild the queue in place without reallocating it.
	states  []serverState
	count   int        // tracked servers (non-nil entries)
	running serverHeap // key: runEnd + queued
	idle    serverHeap // key: queued
}

type serverState struct {
	nodeID  int
	runEnd  float64 // estimated completion instant of the running long task
	queued  float64 // summed estimates of queued long tasks
	heapIdx int
	inRun   bool
}

// key returns the heap ordering key for the heap the server currently
// occupies.
func (s *serverState) key() float64 {
	if s.inRun {
		return s.runEnd + s.queued
	}
	return s.queued
}

// waiting returns the true waiting time at instant now.
func (s *serverState) waiting(now float64) float64 {
	w := s.queued
	if s.runEnd > now {
		w += s.runEnd - now
	}
	return w
}

// NewCentralQueue builds a queue over the given node ids, all initially
// idle (zero waiting time). Server state is allocated as one block — three
// allocations total regardless of cluster size.
func NewCentralQueue(nodeIDs []int) *CentralQueue {
	maxID := -1
	for _, id := range nodeIDs {
		if id > maxID {
			maxID = id
		}
	}
	q := &CentralQueue{
		servers: make([]*serverState, maxID+1),
		count:   len(nodeIDs),
	}
	q.states = make([]serverState, len(nodeIDs))
	q.idle.items = make([]*serverState, 0, len(nodeIDs))
	for i, id := range nodeIDs {
		s := &q.states[i]
		s.nodeID = id
		q.servers[id] = s
		q.idle.push(s)
	}
	return q
}

// Len returns the number of servers tracked.
func (q *CentralQueue) Len() int { return q.count }

// lookup returns the tracked server for nodeID, or nil.
func (q *CentralQueue) lookup(nodeID int) *serverState {
	if nodeID < 0 || nodeID >= len(q.servers) {
		return nil
	}
	return q.servers[nodeID]
}

//hawk:hotpath
func (q *CentralQueue) advance(now float64) {
	if now > q.now {
		q.now = now
	}
	// Migrate expired running roots: their tasks should have finished by
	// their estimate; their waiting no longer decays.
	for q.running.len() > 0 {
		root := q.running.peek()
		if root.runEnd > q.now {
			break
		}
		q.running.remove(root)
		root.inRun = false
		q.idle.push(root)
	}
}

// best returns the server with the smallest true waiting time at q.now.
//
//hawk:hotpath
func (q *CentralQueue) best() *serverState {
	var r, i *serverState
	if q.running.len() > 0 {
		r = q.running.peek()
	}
	if q.idle.len() > 0 {
		i = q.idle.peek()
	}
	switch {
	case r == nil:
		return i
	case i == nil:
		return r
	}
	wr, wi := r.waiting(q.now), i.waiting(q.now)
	if wr != wi {
		if wr < wi {
			return r
		}
		return i
	}
	if r.nodeID < i.nodeID {
		return r
	}
	return i
}

// Assign places one task with the given estimated duration on the server
// with the smallest waiting time at instant now, bumps that server's
// waiting time, and returns the chosen node id along with the waiting time
// the scheduler expects the task to experience.
//
//hawk:hotpath
func (q *CentralQueue) Assign(now, estDuration float64) (nodeID int, waiting float64) {
	if q.count == 0 {
		panic("core: Assign on empty CentralQueue")
	}
	q.advance(now)
	s := q.best()
	waiting = s.waiting(q.now)
	s.queued += estDuration
	q.fix(s)
	return s.nodeID, waiting
}

// AddLoad bumps a specific server's queued-work estimate without choosing
// it: the multi-scheduler commit path picked the node on a scheduler's
// *local* queue (Assign there) and, after winning the claim, reflects the
// placement into the shared authoritative queue with AddLoad — so every
// scheduler's next snapshot sees the committed load. A node the queue does
// not track (removed by churn) is ignored. Never allocates.
//
//hawk:hotpath
func (q *CentralQueue) AddLoad(nodeID int, now, estDuration float64) {
	s := q.lookup(nodeID)
	if s == nil {
		return
	}
	q.advance(now)
	s.queued += estDuration
	q.fix(s)
}

// SyncFrom rebuilds this queue as a copy of src: same clock, same tracked
// servers, same per-server waiting state. This is the snapshot-refresh
// primitive of the multi-scheduler model — a scheduler's stale local queue
// catches up to the shared authoritative queue in one O(n) pass (bulk
// heapify, no per-server sift) and allocates nothing once its arenas have
// grown to src's size. The two queues share no memory afterwards.
func (q *CentralQueue) SyncFrom(src *CentralQueue) {
	q.now = src.now
	if cap(q.servers) < len(src.servers) {
		q.servers = make([]*serverState, len(src.servers))
	} else {
		q.servers = q.servers[:len(src.servers)]
		for i := range q.servers {
			q.servers[i] = nil
		}
	}
	if cap(q.states) < src.count {
		q.states = make([]serverState, src.count)
	} else {
		q.states = q.states[:src.count]
	}
	q.running.items = q.running.items[:0]
	q.idle.items = q.idle.items[:0]
	i := 0
	for id, ss := range src.servers {
		if ss == nil {
			continue
		}
		st := &q.states[i]
		i++
		*st = *ss
		q.servers[id] = st
		if st.inRun {
			q.running.items = append(q.running.items, st)
		} else {
			q.idle.items = append(q.idle.items, st)
		}
	}
	q.count = src.count
	q.running.heapify()
	q.idle.heapify()
}

// TaskStarted records that a previously assigned task began executing on
// nodeID at instant now: its estimate leaves the queued sum, and the
// running term is anchored to the duration the executing node reports
// (runDuration). Node monitors know the concrete task they launched, so
// the "remaining execution time of any long task that currently may be
// executing" (§3.7) tracks the real task rather than a stale estimate —
// without this, a server whose task overruns its estimate looks idle and
// attracts assignments while still busy. Callers without better knowledge
// may pass runDuration == estDuration.
//
//hawk:hotpath
func (q *CentralQueue) TaskStarted(nodeID int, now, estDuration, runDuration float64) {
	if q == nil {
		return
	}
	s := q.lookup(nodeID)
	if s == nil {
		return // node not tracked (e.g. outside the general partition)
	}
	q.advance(now)
	s.queued -= estDuration
	if s.queued < 0 {
		s.queued = 0
	}
	q.moveTo(s, true, q.now+runDuration)
}

// TaskFinished records that the running task on nodeID completed at instant
// now, clearing the remaining-execution term.
//
//hawk:hotpath
func (q *CentralQueue) TaskFinished(nodeID int, now float64) {
	if q == nil {
		return
	}
	s := q.lookup(nodeID)
	if s == nil {
		return
	}
	q.advance(now)
	q.moveTo(s, false, q.now)
}

// moveTo places the server in the requested heap with the new runEnd.
//
//hawk:hotpath
func (q *CentralQueue) moveTo(s *serverState, running bool, runEnd float64) {
	if s.inRun {
		q.running.remove(s)
	} else {
		q.idle.remove(s)
	}
	s.runEnd = runEnd
	s.inRun = running && runEnd > q.now
	if s.inRun {
		q.running.push(s)
	} else {
		q.idle.push(s)
	}
}

// fix restores heap order after s's key changed in place.
//
//hawk:hotpath
func (q *CentralQueue) fix(s *serverState) {
	if s.inRun {
		q.running.fix(s)
	} else {
		q.idle.fix(s)
	}
}

// Remove stops tracking nodeID — the node left the cluster (failure or
// drain). Estimated work attributed to the server is discarded; the runtime
// re-routes the concrete tasks it knows were queued or running there. It
// reports whether the node was tracked. Rare-path: membership transitions,
// not assignment.
func (q *CentralQueue) Remove(nodeID int) bool {
	s := q.lookup(nodeID)
	if s == nil {
		return false
	}
	if s.inRun {
		q.running.remove(s)
	} else {
		q.idle.remove(s)
	}
	q.servers[nodeID] = nil
	q.count--
	return true
}

// Add starts (or resumes) tracking nodeID as an idle server with zero
// waiting time at instant now — the node joined or rejoined the cluster.
// It reports whether the node was newly added (false if already tracked).
func (q *CentralQueue) Add(nodeID int, now float64) bool {
	if nodeID < 0 {
		return false
	}
	if q.lookup(nodeID) != nil {
		return false
	}
	q.advance(now)
	if nodeID >= len(q.servers) {
		grown := make([]*serverState, nodeID+1)
		copy(grown, q.servers)
		q.servers = grown
	}
	s := &serverState{nodeID: nodeID, runEnd: q.now}
	q.servers[nodeID] = s
	q.idle.push(s)
	q.count++
	return true
}

// MinWaiting returns the smallest waiting time across servers at instant
// now: the queueing delay the next assigned task would see.
func (q *CentralQueue) MinWaiting(now float64) float64 {
	if q.count == 0 {
		return 0
	}
	q.advance(now)
	return q.best().waiting(q.now)
}

// Waiting returns the waiting time of a specific server at instant now, or
// -1 if the server is not tracked.
func (q *CentralQueue) Waiting(nodeID int, now float64) float64 {
	s := q.lookup(nodeID)
	if s == nil {
		return -1
	}
	q.advance(now)
	return s.waiting(q.now)
}

// Waitings returns the waiting time of every tracked server at instant now,
// in unspecified order. Intended for tests and introspection.
func (q *CentralQueue) Waitings(now float64) []float64 {
	q.advance(now)
	out := make([]float64, 0, q.count)
	for _, s := range q.servers {
		if s != nil {
			out = append(out, s.waiting(q.now))
		}
	}
	return out
}

// serverHeap is an indexed binary heap of servers ordered by key() with
// nodeID tie-breaking for determinism. Like internal/eventq's event heap it
// is hand-rolled rather than built on container/heap: the heap sits on
// CentralQueue.Assign's hot path, and container/heap both moves elements
// through interface{} and pays an indirect call per comparison and swap.
// Only the root is ever observed (best/advance), and (key, nodeID) is a
// strict total order over members, so any valid heap arrangement yields
// identical scheduling decisions.
type serverHeap struct {
	items []*serverState
}

func (h *serverHeap) len() int           { return len(h.items) }
func (h *serverHeap) peek() *serverState { return h.items[0] }

func (h *serverHeap) less(i, j int) bool {
	ki, kj := h.items[i].key(), h.items[j].key()
	if ki != kj {
		return ki < kj
	}
	return h.items[i].nodeID < h.items[j].nodeID
}

func (h *serverHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

//hawk:hotpath
func (h *serverHeap) push(s *serverState) {
	s.heapIdx = len(h.items)
	h.items = append(h.items, s)
	h.siftUp(s.heapIdx)
}

//hawk:hotpath
func (h *serverHeap) remove(s *serverState) {
	i := s.heapIdx
	n := len(h.items) - 1
	if i != n {
		h.swap(i, n)
	}
	h.items[n] = nil // drop the reference so a departed server can be collected
	h.items = h.items[:n]
	if i != n {
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
}

// fix restores heap order around position s after s's key changed in place.
//
//hawk:hotpath
func (h *serverHeap) fix(s *serverState) {
	if !h.siftDown(s.heapIdx) {
		h.siftUp(s.heapIdx)
	}
}

// heapify establishes heap order over items filled in arbitrary order (the
// classic bottom-up build): O(n) total, versus O(n log n) for pushing one by
// one. SyncFrom uses it to rebuild a mirrored queue in one pass.
func (h *serverHeap) heapify() {
	for i, s := range h.items {
		s.heapIdx = i
	}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

//hawk:hotpath
func (h *serverHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown reports whether it moved the element, mirroring container/heap's
// down so fix and remove sift up only when no downward motion occurred.
//
//hawk:hotpath
func (h *serverHeap) siftDown(i int) bool {
	start := i
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		j := left
		if right := left + 1; right < n && h.less(right, left) {
			j = right
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > start
}
