package core

import "container/heap"

// CentralQueue is the centralized scheduler's data structure (§3.7): a
// priority queue of <server, waiting time> tuples kept sorted by waiting
// time. The waiting time of a server is the sum of the estimated execution
// times of all long tasks in that server's queue plus the remaining
// estimated execution time of any long task currently executing there.
//
// The queue observes the lifecycle of the tasks it placed: the runtime
// reports TaskStarted and TaskFinished, which is what keeps the waiting
// times "timely and fairly accurate" (§3.7) even when actual task durations
// deviate from the estimates. Short tasks and probes are invisible to it,
// exactly as in the paper.
//
// Exact min-waiting extraction despite continuously decaying waiting times
// is achieved with two heaps:
//
//   - the running heap holds servers whose estimated running task extends
//     into the future (runEnd > now), keyed by runEnd + queued. All such
//     waiting times decay at unit rate, so their relative order is
//     time-invariant. A member whose runEnd slips into the past has true
//     waiting = queued >= key - now, so it can only be *under*-estimated
//     while buried in the heap — the root therefore stays the true minimum
//     of the heap, and expired roots are lazily migrated out.
//   - the idle heap holds the rest, keyed by queued (time-invariant).
//
// Assign compares the two roots' true waiting times and picks the smaller,
// so assignments are exactly min-waiting at every instant.
type CentralQueue struct {
	now     float64
	servers map[int]*serverState
	running serverHeap // key: runEnd + queued
	idle    serverHeap // key: queued
}

type serverState struct {
	nodeID  int
	runEnd  float64 // estimated completion instant of the running long task
	queued  float64 // summed estimates of queued long tasks
	heapIdx int
	inRun   bool
}

// key returns the heap ordering key for the heap the server currently
// occupies.
func (s *serverState) key() float64 {
	if s.inRun {
		return s.runEnd + s.queued
	}
	return s.queued
}

// waiting returns the true waiting time at instant now.
func (s *serverState) waiting(now float64) float64 {
	w := s.queued
	if s.runEnd > now {
		w += s.runEnd - now
	}
	return w
}

// NewCentralQueue builds a queue over the given node ids, all initially
// idle (zero waiting time).
func NewCentralQueue(nodeIDs []int) *CentralQueue {
	q := &CentralQueue{servers: make(map[int]*serverState, len(nodeIDs))}
	for _, id := range nodeIDs {
		s := &serverState{nodeID: id}
		q.servers[id] = s
		q.idle.push(s)
	}
	return q
}

// Len returns the number of servers tracked.
func (q *CentralQueue) Len() int { return len(q.servers) }

func (q *CentralQueue) advance(now float64) {
	if now > q.now {
		q.now = now
	}
	// Migrate expired running roots: their tasks should have finished by
	// their estimate; their waiting no longer decays.
	for q.running.len() > 0 {
		root := q.running.peek()
		if root.runEnd > q.now {
			break
		}
		q.running.remove(root)
		root.inRun = false
		q.idle.push(root)
	}
}

// best returns the server with the smallest true waiting time at q.now.
func (q *CentralQueue) best() *serverState {
	var r, i *serverState
	if q.running.len() > 0 {
		r = q.running.peek()
	}
	if q.idle.len() > 0 {
		i = q.idle.peek()
	}
	switch {
	case r == nil:
		return i
	case i == nil:
		return r
	}
	wr, wi := r.waiting(q.now), i.waiting(q.now)
	if wr != wi {
		if wr < wi {
			return r
		}
		return i
	}
	if r.nodeID < i.nodeID {
		return r
	}
	return i
}

// Assign places one task with the given estimated duration on the server
// with the smallest waiting time at instant now, bumps that server's
// waiting time, and returns the chosen node id along with the waiting time
// the scheduler expects the task to experience.
func (q *CentralQueue) Assign(now, estDuration float64) (nodeID int, waiting float64) {
	if len(q.servers) == 0 {
		panic("core: Assign on empty CentralQueue")
	}
	q.advance(now)
	s := q.best()
	waiting = s.waiting(q.now)
	s.queued += estDuration
	q.fix(s)
	return s.nodeID, waiting
}

// TaskStarted records that a previously assigned task began executing on
// nodeID at instant now: its estimate leaves the queued sum, and the
// running term is anchored to the duration the executing node reports
// (runDuration). Node monitors know the concrete task they launched, so
// the "remaining execution time of any long task that currently may be
// executing" (§3.7) tracks the real task rather than a stale estimate —
// without this, a server whose task overruns its estimate looks idle and
// attracts assignments while still busy. Callers without better knowledge
// may pass runDuration == estDuration.
func (q *CentralQueue) TaskStarted(nodeID int, now, estDuration, runDuration float64) {
	if q == nil {
		return
	}
	s, ok := q.servers[nodeID]
	if !ok {
		return // node not tracked (e.g. outside the general partition)
	}
	q.advance(now)
	s.queued -= estDuration
	if s.queued < 0 {
		s.queued = 0
	}
	q.moveTo(s, true, q.now+runDuration)
}

// TaskFinished records that the running task on nodeID completed at instant
// now, clearing the remaining-execution term.
func (q *CentralQueue) TaskFinished(nodeID int, now float64) {
	if q == nil {
		return
	}
	s, ok := q.servers[nodeID]
	if !ok {
		return
	}
	q.advance(now)
	q.moveTo(s, false, q.now)
}

// moveTo places the server in the requested heap with the new runEnd.
func (q *CentralQueue) moveTo(s *serverState, running bool, runEnd float64) {
	if s.inRun {
		q.running.remove(s)
	} else {
		q.idle.remove(s)
	}
	s.runEnd = runEnd
	s.inRun = running && runEnd > q.now
	if s.inRun {
		q.running.push(s)
	} else {
		q.idle.push(s)
	}
}

// fix restores heap order after s's key changed in place.
func (q *CentralQueue) fix(s *serverState) {
	if s.inRun {
		q.running.fix(s)
	} else {
		q.idle.fix(s)
	}
}

// MinWaiting returns the smallest waiting time across servers at instant
// now: the queueing delay the next assigned task would see.
func (q *CentralQueue) MinWaiting(now float64) float64 {
	if len(q.servers) == 0 {
		return 0
	}
	q.advance(now)
	return q.best().waiting(q.now)
}

// Waiting returns the waiting time of a specific server at instant now, or
// -1 if the server is not tracked.
func (q *CentralQueue) Waiting(nodeID int, now float64) float64 {
	s, ok := q.servers[nodeID]
	if !ok {
		return -1
	}
	q.advance(now)
	return s.waiting(q.now)
}

// Waitings returns the waiting time of every tracked server at instant now,
// in unspecified order. Intended for tests and introspection.
func (q *CentralQueue) Waitings(now float64) []float64 {
	q.advance(now)
	out := make([]float64, 0, len(q.servers))
	for _, s := range q.servers {
		out = append(out, s.waiting(q.now))
	}
	return out
}

// serverHeap is an indexed binary heap of servers ordered by key() with
// nodeID tie-breaking for determinism.
type serverHeap struct {
	items []*serverState
}

func (h *serverHeap) len() int           { return len(h.items) }
func (h *serverHeap) peek() *serverState { return h.items[0] }

func (h *serverHeap) push(s *serverState) {
	s.heapIdx = len(h.items)
	h.items = append(h.items, s)
	heap.Fix((*heapImpl)(h), s.heapIdx)
}

func (h *serverHeap) remove(s *serverState) {
	heap.Remove((*heapImpl)(h), s.heapIdx)
}

func (h *serverHeap) fix(s *serverState) {
	heap.Fix((*heapImpl)(h), s.heapIdx)
}

type heapImpl serverHeap

func (h *heapImpl) Len() int { return len(h.items) }

func (h *heapImpl) Less(i, j int) bool {
	ki, kj := h.items[i].key(), h.items[j].key()
	if ki != kj {
		return ki < kj
	}
	return h.items[i].nodeID < h.items[j].nodeID
}

func (h *heapImpl) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *heapImpl) Push(x any) {
	s := x.(*serverState)
	s.heapIdx = len(h.items)
	h.items = append(h.items, s)
}

func (h *heapImpl) Pop() any {
	old := h.items
	n := len(old)
	s := old[n-1]
	h.items = old[:n-1]
	return s
}
