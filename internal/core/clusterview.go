package core

import (
	"fmt"

	"repro/internal/randdist"
)

// ClusterView is the dynamic cluster model every engine schedules against:
// the static Partition (which node ids are reserved for short tasks), the
// live membership set (which nodes are currently up), and per-node speed
// factors (heterogeneous clusters run the same task at different rates).
//
// A view starts static: full membership, homogeneous speeds. In that state
// every sampling method delegates to the Partition's dense-range rejection
// sampler, drawing bit-for-bit identically to sampling from the Partition
// directly — the churn-free fast path costs one nil check. Engines that run
// failure/churn scenarios call EnableMembership once up front; from then on
// samples are drawn uniformly from the alive members of the requested pool.
//
// Membership is maintained as one compact alive-id list per partition side
// plus a per-node position index, so Fail and Recover are O(1) swap-remove/
// append and sampling k alive nodes is O(k) with zero allocations when the
// caller's scratch buffer has capacity — the same contract as the static
// samplers. The view is not safe for concurrent use; the live engine
// serializes access behind its cluster lock.
type ClusterView struct {
	part Partition

	// speed is nil for a homogeneous cluster; otherwise speed[id] is the
	// node's speed factor (> 0, 1 = nominal) and task durations scale by
	// 1/speed at the executing node.
	speed []float64

	// Membership state; all nil/unused until EnableMembership.
	alive        []bool
	shortAlive   []int32 // alive ids in the short partition (unordered)
	generalAlive []int32 // alive ids in the general partition (unordered)
	pos          []int32 // node id -> index within its side's alive list

	// Claim state; nil/unused until EnableClaims (see claims.go).
	claims   []claimRec
	claimVer uint64
}

// NewClusterView returns a static view of the partition: full membership,
// homogeneous speeds.
func NewClusterView(part Partition) *ClusterView {
	return &ClusterView{part: part}
}

// Partition returns the underlying static partition.
func (v *ClusterView) Partition() Partition { return v.part }

// SetSpeeds installs per-node speed factors (index = node id; values must
// be positive). The slice is retained, not copied. Pass nil to restore a
// homogeneous view.
func (v *ClusterView) SetSpeeds(speed []float64) {
	if speed != nil && len(speed) != v.part.NumNodes() {
		panic(fmt.Sprintf("core: SetSpeeds with %d factors for %d nodes", len(speed), v.part.NumNodes()))
	}
	v.speed = speed
}

// Speed returns the node's speed factor (1 for a homogeneous view).
func (v *ClusterView) Speed(id int) float64 {
	if v.speed == nil {
		return 1
	}
	return v.speed[id]
}

// Speeds returns the per-node speed slice, or nil for a homogeneous view.
// Engines cache it to scale task durations without a method call per task.
func (v *ClusterView) Speeds() []float64 { return v.speed }

// Dynamic reports whether membership tracking is enabled.
func (v *ClusterView) Dynamic() bool { return v.alive != nil }

// EnableMembership switches the view to dynamic membership with every node
// initially alive. Sampling leaves the static fast path permanently: from
// here on draws come from the alive-id lists, so the random streams differ
// from a static view's even while all nodes are up.
func (v *ClusterView) EnableMembership() {
	if v.alive != nil {
		return
	}
	n := v.part.NumNodes()
	short := v.part.ShortOnlyNodes()
	v.alive = make([]bool, n)
	v.pos = make([]int32, n)
	v.shortAlive = make([]int32, short)
	v.generalAlive = make([]int32, n-short)
	for id := 0; id < n; id++ {
		v.alive[id] = true
		if id < short {
			v.shortAlive[id] = int32(id)
			v.pos[id] = int32(id)
		} else {
			v.generalAlive[id-short] = int32(id)
			v.pos[id] = int32(id - short)
		}
	}
}

// Alive reports whether the node is a live cluster member (always true for
// a static view).
//
//hawk:hotpath
func (v *ClusterView) Alive(id int) bool {
	if v.alive == nil {
		return true
	}
	return v.alive[id]
}

// AliveAll returns the number of live nodes in the whole cluster.
func (v *ClusterView) AliveAll() int {
	if v.alive == nil {
		return v.part.NumNodes()
	}
	return len(v.shortAlive) + len(v.generalAlive)
}

// AliveGeneral returns the number of live general-partition nodes.
func (v *ClusterView) AliveGeneral() int {
	if v.alive == nil {
		return v.part.GeneralNodes()
	}
	return len(v.generalAlive)
}

// AliveShort returns the number of live short-partition nodes.
func (v *ClusterView) AliveShort() int {
	if v.alive == nil {
		return v.part.ShortOnlyNodes()
	}
	return len(v.shortAlive)
}

// sideList returns the alive list holding id.
func (v *ClusterView) sideList(id int) *[]int32 {
	if id < v.part.ShortOnlyNodes() {
		return &v.shortAlive
	}
	return &v.generalAlive
}

// Fail removes the node from the membership set. It reports whether the
// node was alive. The view must be dynamic (EnableMembership).
func (v *ClusterView) Fail(id int) bool {
	if v.alive == nil {
		panic("core: Fail on a static ClusterView (call EnableMembership)")
	}
	if !v.alive[id] {
		return false
	}
	v.alive[id] = false
	list := v.sideList(id)
	l := *list
	i := v.pos[id]
	last := l[len(l)-1]
	l[i] = last
	v.pos[last] = i
	*list = l[:len(l)-1]
	return true
}

// Recover returns the node to the membership set. It reports whether the
// node was dead. The view must be dynamic (EnableMembership).
func (v *ClusterView) Recover(id int) bool {
	if v.alive == nil {
		panic("core: Recover on a static ClusterView (call EnableMembership)")
	}
	if v.alive[id] {
		return false
	}
	v.alive[id] = true
	list := v.sideList(id)
	v.pos[id] = int32(len(*list))
	*list = append(*list, int32(id))
	return true
}

// AppendDead appends the ids of all dead nodes to dst in increasing id
// order and returns the extended slice. O(NumNodes); intended for rare
// scenario events (picking random nodes to recover), not hot paths.
func (v *ClusterView) AppendDead(dst []int) []int {
	if v.alive == nil {
		return dst
	}
	for id, up := range v.alive {
		if !up {
			dst = append(dst, id)
		}
	}
	return dst
}

// SampleAllInto appends k distinct random live node ids (whole cluster) to
// dst and returns the extended slice. Static views draw identically to
// Partition.SampleAllInto; dynamic views draw uniformly from the alive set.
// Zero heap allocations when dst has capacity.
//
//hawk:hotpath
func (v *ClusterView) SampleAllInto(dst []int, src *randdist.Source, k int) []int {
	if v.alive == nil {
		return v.part.SampleAllInto(dst, src, k)
	}
	n := len(v.shortAlive) + len(v.generalAlive)
	if k > n {
		k = n
	}
	start := len(dst)
	dst = src.SampleWithoutReplacementInto(dst, n, k)
	short := len(v.shortAlive)
	for i := start; i < len(dst); i++ {
		if idx := dst[i]; idx < short {
			dst[i] = int(v.shortAlive[idx])
		} else {
			dst[i] = int(v.generalAlive[idx-short])
		}
	}
	return dst
}

// SampleGeneralInto appends k distinct random live general-partition node
// ids to dst; see SampleAllInto.
//
//hawk:hotpath
func (v *ClusterView) SampleGeneralInto(dst []int, src *randdist.Source, k int) []int {
	if v.alive == nil {
		return v.part.SampleGeneralInto(dst, src, k)
	}
	if k > len(v.generalAlive) {
		k = len(v.generalAlive)
	}
	start := len(dst)
	dst = src.SampleWithoutReplacementInto(dst, len(v.generalAlive), k)
	for i := start; i < len(dst); i++ {
		dst[i] = int(v.generalAlive[dst[i]])
	}
	return dst
}

// SampleShortInto appends k distinct random live short-partition node ids
// to dst; see SampleAllInto.
//
//hawk:hotpath
func (v *ClusterView) SampleShortInto(dst []int, src *randdist.Source, k int) []int {
	if v.alive == nil {
		return v.part.SampleShortInto(dst, src, k)
	}
	if k > len(v.shortAlive) {
		k = len(v.shortAlive)
	}
	start := len(dst)
	dst = src.SampleWithoutReplacementInto(dst, len(v.shortAlive), k)
	for i := start; i < len(dst); i++ {
		dst[i] = int(v.shortAlive[dst[i]])
	}
	return dst
}

// String renders a one-line debug summary of the view's shape and state.
func (v *ClusterView) String() string {
	return fmt.Sprintf("view{%v alive=%d/%d dynamic=%v hetero=%v}",
		v.part, v.AliveAll(), v.part.NumNodes(), v.Dynamic(), v.speed != nil)
}
