package core

import "repro/internal/randdist"

// StealPolicy implements Hawk's randomized task stealing (§3.6). A node
// that runs out of work contacts up to Cap random general-partition nodes
// and steals, from the first that has one, the "eligible group": the first
// consecutive run of short tasks that comes after a long task (Figure 3).
type StealPolicy struct {
	// Cap bounds the number of random nodes contacted per attempt
	// (default 10, swept in Figure 15).
	Cap int
	// Enabled gates stealing entirely (the "Hawk w/o stealing" ablation).
	Enabled bool
}

// NewStealPolicy returns the paper's default stealing configuration.
func NewStealPolicy() StealPolicy {
	return StealPolicy{Cap: DefaultStealCap, Enabled: true}
}

// Candidates returns the node ids a thief should contact, in contact order:
// up to Cap distinct random live members of the general partition, excluding
// the thief itself when it happens to be sampled (a node cannot steal from
// its own queue).
func (s StealPolicy) Candidates(v *ClusterView, src *randdist.Source, thiefID int) []int {
	return s.CandidatesInto(nil, v, src, thiefID)
}

// CandidatesInto is the scratch-buffer form of Candidates: it appends the
// contact list to dst and returns the extended slice, drawing identically
// to Candidates. With a reused per-simulation buffer the default steal
// path stays allocation-free (as does the random-position ablation's, via
// RandomShortIndicesInto). Victims come from the view, so a dynamic view
// never hands a thief a dead node; a static view draws identically to
// sampling the Partition directly.
//
//hawk:hotpath
func (s StealPolicy) CandidatesInto(dst []int, v *ClusterView, src *randdist.Source, thiefID int) []int {
	if !s.Enabled || s.Cap <= 0 {
		return dst
	}
	// Sample one extra so that dropping the thief still yields Cap
	// candidates when possible.
	start := len(dst)
	dst = v.SampleGeneralInto(dst, src, s.Cap+1)
	w := start
	for _, id := range dst[start:] {
		if id == thiefID {
			continue
		}
		dst[w] = id
		w++
		if w-start == s.Cap {
			break
		}
	}
	return dst[:w]
}

// EligibleGroup computes the stealable range of a victim's queue per
// Figure 3. isLong describes the queued entries head-first (true for long
// tasks); executingLong tells whether the victim is currently running a
// long task. The returned half-open range [start, end) is non-empty iff
// ok; entries in the range are all short.
//
// Cases (Figure 3):
//
//	b1/b2 — victim executing a long task: steal the consecutive short run
//	        at the head of the queue (those shorts queue behind the
//	        running long task).
//	a1/a2 — victim executing a short task: steal the consecutive short run
//	        immediately after the *first* long entry in the queue (the
//	        shorts before it will run soon anyway).
//
//hawk:hotpath
func EligibleGroup(executingLong bool, isLong []bool) (start, end int, ok bool) {
	if executingLong {
		end = 0
		for end < len(isLong) && !isLong[end] {
			end++
		}
		return 0, end, end > 0
	}
	// Find the first long entry.
	firstLong := -1
	for i, l := range isLong {
		if l {
			firstLong = i
			break
		}
	}
	if firstLong == -1 {
		return 0, 0, false
	}
	start = firstLong + 1
	end = start
	for end < len(isLong) && !isLong[end] {
		end++
	}
	return start, end, end > start
}

// RandomShortIndices returns count indices of short entries drawn uniformly
// at random from the whole queue. It implements the alternative stealing
// choice the paper argues *against* (§3.6): "If short tasks were stolen
// from random positions in server queues that would likely end up focusing
// on too many jobs at the same time while failing to improve most." The
// ablation experiments use it to quantify that design argument.
// The returned indices are sorted in increasing order.
//
// It is the allocating convenience form of RandomShortIndicesInto and draws
// the identical value sequence.
func RandomShortIndices(isLong []bool, count int, src *randdist.Source) []int {
	picks, _ := RandomShortIndicesInto(nil, nil, isLong, count, src)
	return picks
}

// RandomShortIndicesInto is the scratch-buffer form of RandomShortIndices:
// it appends the picked queue indices to dst and returns the extended slice
// alongside the (possibly grown) shorts workspace, which the caller retains
// for the next call. When both buffers have capacity the call performs zero
// heap allocations, so the random-position ablation sweeps are as
// allocation-free as the default Figure 3 rule; the simulator threads both
// buffers through per-simulation scratch. Draw-for-draw identical to
// RandomShortIndices: the sample is taken into dst and remapped in place,
// consuming exactly the same random values.
//
//hawk:hotpath
func RandomShortIndicesInto(dst, shorts []int, isLong []bool, count int, src *randdist.Source) (picks, shortsBuf []int) {
	shorts = shorts[:0]
	for i, l := range isLong {
		if !l {
			shorts = append(shorts, i)
		}
	}
	if count > len(shorts) {
		count = len(shorts)
	}
	if count <= 0 {
		return dst, shorts
	}
	start := len(dst)
	dst = src.SampleWithoutReplacementInto(dst, len(shorts), count)
	for i := start; i < len(dst); i++ {
		dst[i] = shorts[dst[i]]
	}
	sortInts(dst[start:])
	return dst, shorts
}

// sortInts is a small insertion sort; steal groups are tiny, so pulling in
// package sort is not worth it here.
//
//hawk:hotpath
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
