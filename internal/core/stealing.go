package core

import "repro/internal/randdist"

// StealPolicy implements Hawk's randomized task stealing (§3.6). A node
// that runs out of work contacts up to Cap random general-partition nodes
// and steals, from the first that has one, the "eligible group": the first
// consecutive run of short tasks that comes after a long task (Figure 3).
type StealPolicy struct {
	// Cap bounds the number of random nodes contacted per attempt
	// (default 10, swept in Figure 15).
	Cap int
	// Enabled gates stealing entirely (the "Hawk w/o stealing" ablation).
	Enabled bool
}

// NewStealPolicy returns the paper's default stealing configuration.
func NewStealPolicy() StealPolicy {
	return StealPolicy{Cap: DefaultStealCap, Enabled: true}
}

// Candidates returns the node ids a thief should contact, in contact order:
// up to Cap distinct random members of the general partition, excluding the
// thief itself when it happens to be sampled (a node cannot steal from its
// own queue).
func (s StealPolicy) Candidates(p Partition, src *randdist.Source, thiefID int) []int {
	return s.CandidatesInto(nil, p, src, thiefID)
}

// CandidatesInto is the scratch-buffer form of Candidates: it appends the
// contact list to dst and returns the extended slice, drawing identically
// to Candidates. With a reused per-simulation buffer the default steal
// path stays allocation-free. (The random-position ablation's
// RandomShortIndices still allocates — it is off the paper's default
// configuration and exists to be argued against.)
func (s StealPolicy) CandidatesInto(dst []int, p Partition, src *randdist.Source, thiefID int) []int {
	if !s.Enabled || s.Cap <= 0 {
		return dst
	}
	// Sample one extra so that dropping the thief still yields Cap
	// candidates when possible.
	start := len(dst)
	dst = p.SampleGeneralInto(dst, src, s.Cap+1)
	w := start
	for _, id := range dst[start:] {
		if id == thiefID {
			continue
		}
		dst[w] = id
		w++
		if w-start == s.Cap {
			break
		}
	}
	return dst[:w]
}

// EligibleGroup computes the stealable range of a victim's queue per
// Figure 3. isLong describes the queued entries head-first (true for long
// tasks); executingLong tells whether the victim is currently running a
// long task. The returned half-open range [start, end) is non-empty iff
// ok; entries in the range are all short.
//
// Cases (Figure 3):
//
//	b1/b2 — victim executing a long task: steal the consecutive short run
//	        at the head of the queue (those shorts queue behind the
//	        running long task).
//	a1/a2 — victim executing a short task: steal the consecutive short run
//	        immediately after the *first* long entry in the queue (the
//	        shorts before it will run soon anyway).
func EligibleGroup(executingLong bool, isLong []bool) (start, end int, ok bool) {
	if executingLong {
		end = 0
		for end < len(isLong) && !isLong[end] {
			end++
		}
		return 0, end, end > 0
	}
	// Find the first long entry.
	firstLong := -1
	for i, l := range isLong {
		if l {
			firstLong = i
			break
		}
	}
	if firstLong == -1 {
		return 0, 0, false
	}
	start = firstLong + 1
	end = start
	for end < len(isLong) && !isLong[end] {
		end++
	}
	return start, end, end > start
}

// RandomShortIndices returns count indices of short entries drawn uniformly
// at random from the whole queue. It implements the alternative stealing
// choice the paper argues *against* (§3.6): "If short tasks were stolen
// from random positions in server queues that would likely end up focusing
// on too many jobs at the same time while failing to improve most." The
// ablation experiments use it to quantify that design argument.
// The returned indices are sorted in increasing order.
func RandomShortIndices(isLong []bool, count int, src *randdist.Source) []int {
	shorts := make([]int, 0, len(isLong))
	for i, l := range isLong {
		if !l {
			shorts = append(shorts, i)
		}
	}
	if count > len(shorts) {
		count = len(shorts)
	}
	if count <= 0 {
		return nil
	}
	picks := src.SampleWithoutReplacement(len(shorts), count)
	out := make([]int, count)
	for i, p := range picks {
		out[i] = shorts[p]
	}
	sortInts(out)
	return out
}

// sortInts is a small insertion sort; steal groups are tiny, so pulling in
// package sort is not worth it here.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
