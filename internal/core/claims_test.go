package core

import "testing"

func TestClaimSemantics(t *testing.T) {
	v := NewClusterView(NewPartition(10, 0.2))
	v.EnableClaims()

	if v.ClaimVersion() != 0 {
		t.Fatalf("fresh view has claim version %d, want 0", v.ClaimVersion())
	}
	// First claim on a fresh view always succeeds and advances the version.
	if !v.Claim(3, 0, 0) {
		t.Fatal("claim on an unclaimed node failed")
	}
	if v.ClaimVersion() != 1 {
		t.Fatalf("claim version = %d after one claim, want 1", v.ClaimVersion())
	}

	// A different scheduler whose snapshot predates that claim conflicts.
	if v.Claim(3, 1, 0) {
		t.Fatal("stale claim by another scheduler succeeded, want conflict")
	}
	// The failed claim must not advance the version or steal the record.
	if v.ClaimVersion() != 1 {
		t.Fatalf("failed claim moved the version to %d", v.ClaimVersion())
	}

	// The same scheduler never conflicts with its own claims, however stale
	// its snapshot: it knows its own placements.
	if !v.Claim(3, 0, 0) {
		t.Fatal("self-claim conflicted")
	}

	// A snapshot taken at the current version sees every claim: no conflict.
	since := v.ClaimVersion()
	if !v.Claim(3, 1, since) {
		t.Fatal("fresh-snapshot claim conflicted")
	}

	// Unrelated nodes never conflict.
	if !v.Claim(7, 2, 0) {
		t.Fatal("claim on an untouched node conflicted")
	}
}

func TestClaimDeadNode(t *testing.T) {
	v := NewClusterView(NewPartition(10, 0.2))
	v.EnableMembership()
	v.EnableClaims()
	v.Fail(4)
	if v.Claim(4, 0, v.ClaimVersion()) {
		t.Fatal("claim on a dead node succeeded")
	}
	v.Recover(4)
	if !v.Claim(4, 0, v.ClaimVersion()) {
		t.Fatal("claim on a recovered node failed")
	}
}

func TestSnapshotInto(t *testing.T) {
	v := NewClusterView(NewPartition(10, 0.2))

	// Static source: the snapshot is static too.
	snap := v.SnapshotInto(nil)
	if snap.Dynamic() {
		t.Fatal("snapshot of a static view is dynamic")
	}
	if snap.AliveAll() != 10 {
		t.Fatalf("static snapshot sees %d nodes, want 10", snap.AliveAll())
	}

	// Dynamic source: the snapshot owns a membership copy frozen at the
	// snapshot instant.
	v.EnableMembership()
	v.Fail(5)
	snap = v.SnapshotInto(snap)
	if !snap.Dynamic() || snap.AliveAll() != 9 || snap.Alive(5) {
		t.Fatalf("snapshot did not capture the failure: alive=%d", snap.AliveAll())
	}
	// Later churn on the source must not leak into the snapshot...
	v.Fail(6)
	if !snap.Alive(6) {
		t.Fatal("source churn leaked into the snapshot")
	}
	// ...and churn applied to the snapshot must not touch the source.
	snap.Fail(7)
	if !v.Alive(7) {
		t.Fatal("snapshot churn leaked into the source")
	}

	// Refreshing reuses the snapshot and catches it up.
	snap = v.SnapshotInto(snap)
	if snap.Alive(6) || snap.AliveAll() != 8 {
		t.Fatalf("refreshed snapshot stale: alive=%d", snap.AliveAll())
	}
}

func TestCentralQueueAddLoad(t *testing.T) {
	q := NewCentralQueue([]int{0, 1, 2})
	q.AddLoad(1, 0, 5)
	if w := q.Waiting(1, 0); w != 5 {
		t.Fatalf("Waiting(1) = %g after AddLoad(5), want 5", w)
	}
	// Assign must now prefer the unloaded servers.
	for i := 0; i < 2; i++ {
		id, _ := q.Assign(0, 1)
		if id == 1 {
			t.Fatal("Assign picked the loaded server over idle ones")
		}
	}
	// Untracked nodes are ignored, not a panic.
	q.AddLoad(99, 0, 5)
	q.AddLoad(-1, 0, 5)
}

func TestCentralQueueSyncFrom(t *testing.T) {
	truth := NewCentralQueue([]int{0, 1, 2, 3})
	local := NewCentralQueue([]int{0, 1, 2, 3})

	// Diverge the two: load the truth, start a task, drop a server.
	truth.AddLoad(2, 0, 10)
	truth.AddLoad(3, 0, 4)
	truth.TaskStarted(3, 1, 4, 6) // running until t=7
	truth.Remove(0)
	// The local queue drifted its own way in the meantime.
	local.AddLoad(1, 0, 99)

	local.SyncFrom(truth)
	if local.Len() != truth.Len() {
		t.Fatalf("Len = %d after sync, want %d", local.Len(), truth.Len())
	}
	for _, id := range []int{0, 1, 2, 3} {
		if got, want := local.Waiting(id, 2), truth.Waiting(id, 2); got != want {
			t.Fatalf("Waiting(%d) = %g after sync, want %g", id, got, want)
		}
	}
	// Min-waiting order must match exactly: drain assignments side by side.
	for i := 0; i < 6; i++ {
		li, lw := local.Assign(2, 1)
		ti, tw := truth.Assign(2, 1)
		if li != ti || lw != tw {
			t.Fatalf("assign %d diverged after sync: local (%d, %g), truth (%d, %g)", i, li, lw, ti, tw)
		}
	}
	// The copies are independent: loading one leaves the other alone.
	local.AddLoad(2, 2, 50)
	if lw, tw := local.Waiting(2, 2), truth.Waiting(2, 2); lw == tw {
		t.Fatal("local load leaked into the truth queue")
	}

	// Re-sync after the divergence converges again and reuses the arenas.
	local.SyncFrom(truth)
	if got, want := local.Waiting(2, 2), truth.Waiting(2, 2); got != want {
		t.Fatalf("re-sync: Waiting(2) = %g, want %g", got, want)
	}
}
