package core

import (
	"testing"
	"testing/quick"

	"repro/internal/randdist"
)

// Figure 3's four cases, encoded directly.
func TestEligibleGroupFigure3(t *testing.T) {
	L, S := true, false
	cases := []struct {
		name          string
		executingLong bool
		queue         []bool
		wantStart     int
		wantEnd       int
		wantOK        bool
	}{
		// a1: executing short; queue S S L S S -> steal the group after
		// the first long entry.
		{"a1", false, []bool{S, S, L, S, S}, 3, 5, true},
		// a2: executing short; queue L S S L -> steal shorts after the
		// first long.
		{"a2", false, []bool{L, S, S, L}, 1, 3, true},
		// b1: executing long; queue S S L S -> steal the head shorts.
		{"b1", true, []bool{S, S, L, S}, 0, 2, true},
		// b2: executing long; queue S L L -> steal the single head short.
		{"b2", true, []bool{S, L, L}, 0, 1, true},
		// Executing long with a long at the head: nothing stealable at
		// the head.
		{"long-head", true, []bool{L, S, S}, 0, 0, false},
		// Executing short with no long in queue: nothing to steal.
		{"no-long", false, []bool{S, S, S}, 0, 0, false},
		// Executing short, long at tail with nothing after it.
		{"long-tail", false, []bool{S, S, L}, 0, 0, false},
		// Empty queue.
		{"empty-long", true, nil, 0, 0, false},
		{"empty-short", false, nil, 0, 0, false},
		// Executing long over an all-short queue: whole queue eligible.
		{"all-short", true, []bool{S, S, S}, 0, 3, true},
	}
	for _, c := range cases {
		start, end, ok := EligibleGroup(c.executingLong, c.queue)
		if ok != c.wantOK || (ok && (start != c.wantStart || end != c.wantEnd)) {
			t.Errorf("%s: EligibleGroup(%v, %v) = (%d, %d, %v), want (%d, %d, %v)",
				c.name, c.executingLong, c.queue, start, end, ok, c.wantStart, c.wantEnd, c.wantOK)
		}
	}
}

// Property: the eligible group contains only short entries, is maximal
// (bounded by a long entry or the queue end on the right), and starts
// either at the head (victim running long) or right after the first long.
func TestEligibleGroupProperty(t *testing.T) {
	check := func(executingLong bool, queue []bool) bool {
		start, end, ok := EligibleGroup(executingLong, queue)
		if !ok {
			return start == end
		}
		if start < 0 || end > len(queue) || start >= end {
			return false
		}
		for i := start; i < end; i++ {
			if queue[i] {
				return false // stole a long entry
			}
		}
		// Maximality on the right.
		if end < len(queue) && !queue[end] {
			return false
		}
		if executingLong {
			return start == 0
		}
		// start-1 must be the first long entry.
		if start == 0 || !queue[start-1] {
			return false
		}
		for i := 0; i < start-1; i++ {
			if queue[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStealPolicyCandidates(t *testing.T) {
	p := NewPartition(100, 0.2) // general: 20..99
	pol := StealPolicy{Cap: 10, Enabled: true}
	src := randdist.New(1)
	for trial := 0; trial < 100; trial++ {
		thief := trial % 100
		cands := pol.Candidates(NewClusterView(p), src, thief)
		if len(cands) > 10 {
			t.Fatalf("got %d candidates, cap is 10", len(cands))
		}
		seen := map[int]bool{}
		for _, id := range cands {
			if !p.IsGeneral(id) {
				t.Fatalf("candidate %d outside the general partition", id)
			}
			if id == thief {
				t.Fatal("thief may not steal from itself")
			}
			if seen[id] {
				t.Fatalf("duplicate candidate %d", id)
			}
			seen[id] = true
		}
	}
}

func TestStealPolicyDisabled(t *testing.T) {
	p := NewPartition(100, 0.2)
	src := randdist.New(2)
	if c := (StealPolicy{Cap: 10, Enabled: false}).Candidates(NewClusterView(p), src, 0); c != nil {
		t.Fatalf("disabled policy returned candidates: %v", c)
	}
	if c := (StealPolicy{Cap: 0, Enabled: true}).Candidates(NewClusterView(p), src, 0); c != nil {
		t.Fatalf("zero cap returned candidates: %v", c)
	}
}

func TestStealPolicyCapLargerThanPartition(t *testing.T) {
	p := NewPartition(10, 0.5) // 5 general nodes
	pol := StealPolicy{Cap: 50, Enabled: true}
	src := randdist.New(3)
	cands := pol.Candidates(NewClusterView(p), src, 7) // thief inside general partition
	if len(cands) != 4 {
		t.Fatalf("want all 4 other general nodes, got %d (%v)", len(cands), cands)
	}
}

func TestNewStealPolicyDefaults(t *testing.T) {
	pol := NewStealPolicy()
	if pol.Cap != DefaultStealCap || !pol.Enabled {
		t.Fatalf("unexpected defaults: %+v", pol)
	}
}

func TestRandomShortIndices(t *testing.T) {
	src := randdist.New(4)
	L, S := true, false
	flags := []bool{S, L, S, S, L, S}
	for trial := 0; trial < 200; trial++ {
		idx := RandomShortIndices(flags, 3, src)
		if len(idx) != 3 {
			t.Fatalf("got %d indices, want 3", len(idx))
		}
		for i, v := range idx {
			if flags[v] {
				t.Fatalf("picked a long entry at %d", v)
			}
			if i > 0 && idx[i-1] >= v {
				t.Fatal("indices not strictly increasing")
			}
		}
	}
	// Requesting more than available clamps.
	if idx := RandomShortIndices(flags, 10, src); len(idx) != 4 {
		t.Fatalf("clamped pick = %d, want all 4 shorts", len(idx))
	}
	// No shorts: nothing to pick.
	if idx := RandomShortIndices([]bool{L, L}, 2, src); idx != nil {
		t.Fatalf("picked from all-long queue: %v", idx)
	}
	if idx := RandomShortIndices(flags, 0, src); idx != nil {
		t.Fatalf("count 0 should pick nothing: %v", idx)
	}
}

// RandomShortIndicesInto must draw identically to RandomShortIndices —
// pick for pick across arbitrary flag patterns and counts, leaving the two
// sources in the same state — and must not allocate once its buffers have
// capacity. The simulator's random-position ablation threads scratch
// buffers through it, and the golden-report pin only covers one operating
// point; this covers the distribution.
func TestRandomShortIndicesIntoEquivalence(t *testing.T) {
	alloc := randdist.New(99)
	into := randdist.New(99)
	pattern := randdist.New(1234) // drives flag patterns and counts only
	var picks, shorts []int
	for trial := 0; trial < 500; trial++ {
		flags := make([]bool, 1+pattern.Intn(40))
		for i := range flags {
			flags[i] = pattern.Float64() < 0.4
		}
		count := pattern.Intn(len(flags) + 3)
		want := RandomShortIndices(flags, count, alloc)
		picks, shorts = RandomShortIndicesInto(picks[:0], shorts[:0], flags, count, into)
		if len(picks) != len(want) {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(picks), len(want))
		}
		for i := range want {
			if picks[i] != want[i] {
				t.Fatalf("trial %d: picks = %v, want %v", trial, picks, want)
			}
		}
	}
	// The streams must still agree after the whole sequence: any skipped
	// or extra draw shows up here even if the picks happened to match.
	for i := 0; i < 32; i++ {
		if a, b := alloc.Int63(), into.Int63(); a != b {
			t.Fatalf("rng streams diverged after equivalent call sequences (draw %d: %d vs %d)", i, a, b)
		}
	}
}

func TestRandomShortIndicesIntoZeroAllocs(t *testing.T) {
	src := randdist.New(7)
	flags := []bool{false, true, false, false, true, false, false}
	picks := make([]int, 0, 8)
	shorts := make([]int, 0, 8)
	// Warm the source's internal sampling scratch.
	picks, shorts = RandomShortIndicesInto(picks[:0], shorts[:0], flags, 3, src)
	allocs := testing.AllocsPerRun(500, func() {
		picks, shorts = RandomShortIndicesInto(picks[:0], shorts[:0], flags, 3, src)
	})
	if allocs != 0 {
		t.Errorf("RandomShortIndicesInto allocated %v times per call with warm buffers", allocs)
	}
	_ = picks
}
