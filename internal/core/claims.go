package core

// Optimistic concurrency for distributed schedulers, in the shared-state
// (Omega) style: the authoritative ClusterView carries a per-node claim
// record and a global claim version. Each scheduler works against a stale
// snapshot of the view taken at some version; a placement is an optimistic
// Claim against the authoritative view, which succeeds unless another
// scheduler claimed the same node after the snapshot was taken (or the node
// died). A failed Claim is the conflict signal the scheduler's
// detect-and-retry loop consumes.
//
// Claims are orthogonal to membership: enabling them never moves sampling
// off the static fast path, so a static cluster still draws bit-identically
// to the plain partition samplers.

// claimRec is the last successful claim on one node: the global version at
// which it happened and which scheduler made it.
type claimRec struct {
	ver uint64
	by  int32
}

// EnableClaims switches the view to claim tracking with no node claimed.
// Idempotent; must be called before Claim.
func (v *ClusterView) EnableClaims() {
	if v.claims != nil {
		return
	}
	v.claims = make([]claimRec, v.part.NumNodes())
}

// ClaimVersion returns the current global claim version. A scheduler records
// it when snapshotting the view and passes it back as sinceVer on every
// Claim, which is how the view knows whether the claimant's information
// about a node predates a competing claim.
func (v *ClusterView) ClaimVersion() uint64 { return v.claimVer }

// Claim optimistically claims one placement slot on the node for scheduler
// `by`, whose snapshot of the cluster was taken at claim version sinceVer.
// The claim fails — returning false and changing nothing — when the node is
// not a live member, or when a different scheduler claimed the node after
// sinceVer (the claimant could not have seen that placement; the slot count
// it placed against is stale). Claims by the same scheduler never conflict
// with each other: a scheduler always knows its own placements.
//
// On success the global version advances and the node's claim record is
// updated to it, so every commit is ordered and later claims can be tested
// against any snapshot version. Claim never allocates.
//
//hawk:hotpath
func (v *ClusterView) Claim(id int, by int32, sinceVer uint64) bool {
	if v.claims == nil {
		panic("core: Claim on a ClusterView without EnableClaims")
	}
	if !v.Alive(id) {
		return false
	}
	c := &v.claims[id]
	if c.ver > sinceVer && c.by != by {
		return false
	}
	v.claimVer++
	c.ver = v.claimVer
	c.by = by
	return true
}

// SnapshotInto copies the view's membership into dst (allocating it when
// nil) and returns it, reusing dst's backing arrays when they have capacity.
// The snapshot shares the immutable partition and speed table but owns its
// membership copy, so the source view can keep churning while schedulers
// sample from the snapshot. Claim state is deliberately not copied: claims
// live only on the authoritative view.
func (v *ClusterView) SnapshotInto(dst *ClusterView) *ClusterView {
	if dst == nil {
		dst = &ClusterView{}
	}
	dst.part = v.part
	dst.speed = v.speed
	if v.alive == nil {
		dst.alive, dst.pos = nil, nil
		dst.shortAlive, dst.generalAlive = nil, nil
		return dst
	}
	dst.alive = append(dst.alive[:0], v.alive...)
	dst.pos = append(dst.pos[:0], v.pos...)
	dst.shortAlive = append(dst.shortAlive[:0], v.shortAlive...)
	dst.generalAlive = append(dst.generalAlive[:0], v.generalAlive...)
	return dst
}
