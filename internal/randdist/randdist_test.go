package randdist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("streams diverged at %d: %v != %v", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(42)
	child := parent.Fork()
	// Fork must be deterministic given the parent state.
	parent2 := New(42)
	child2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatal("forked streams are not reproducible")
		}
	}
}

func TestUniformRange(t *testing.T) {
	src := New(1)
	for i := 0; i < 10000; i++ {
		v := src.Uniform(0.3, 1.7)
		if v < 0.3 || v >= 1.7 {
			t.Fatalf("Uniform(0.3, 1.7) = %v out of range", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	src := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += src.Exp(50)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Fatalf("Exp(50) sample mean = %v, want ~50", mean)
	}
}

func TestTruncGaussianNonNegative(t *testing.T) {
	src := New(3)
	for i := 0; i < 50000; i++ {
		if v := src.TruncGaussian(10, 20); v < 0 {
			t.Fatalf("TruncGaussian returned negative value %v", v)
		}
	}
}

func TestTruncGaussianMeanNoTruncation(t *testing.T) {
	// With sigma << mean truncation almost never fires, so the sample
	// mean must approach the nominal mean.
	src := New(4)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += src.TruncGaussian(100, 5)
	}
	mean := sum / n
	if math.Abs(mean-100) > 0.5 {
		t.Fatalf("TruncGaussian(100, 5) mean = %v, want ~100", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	src := New(5)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = src.LogNormal(math.Log(200), 0.5)
	}
	// Median of LogNormal(mu, sigma) is e^mu.
	med := quickSelectMedian(vals)
	if med < 180 || med > 220 {
		t.Fatalf("LogNormal median = %v, want ~200", med)
	}
}

func quickSelectMedian(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

func TestPoissonMean(t *testing.T) {
	src := New(6)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += src.Poisson(4)
	}
	mean := float64(sum) / n
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("Poisson(4) mean = %v, want ~4", mean)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	src := New(7)
	if v := src.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := src.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	src := New(8)
	check := func(n, k uint16) bool {
		nn := int(n%5000) + 1
		kk := int(k % 200)
		out := src.SampleWithoutReplacement(nn, kk)
		want := kk
		if want > nn {
			want = nn
		}
		if len(out) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	src := New(9)
	out := src.SampleWithoutReplacement(10, 10)
	if len(out) != 10 {
		t.Fatalf("want full permutation of 10, got %d", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatal("permutation has duplicates")
	}
}

func TestSampleWithoutReplacementEdge(t *testing.T) {
	src := New(10)
	if out := src.SampleWithoutReplacement(5, 0); len(out) != 0 {
		t.Fatalf("k=0 should give empty, got %v", out)
	}
	if out := src.SampleWithoutReplacement(5, -3); len(out) != 0 {
		t.Fatalf("negative k should give empty, got %v", out)
	}
	if out := src.SampleWithoutReplacement(1, 1); len(out) != 1 || out[0] != 0 {
		t.Fatalf("n=1 k=1 should give [0], got %v", out)
	}
}

func TestSampleUniformity(t *testing.T) {
	// Each element of [0,100) should be sampled roughly equally often.
	src := New(11)
	counts := make([]int, 100)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range src.SampleWithoutReplacement(100, 5) {
			counts[v]++
		}
	}
	want := float64(trials*5) / 100 // 1000
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.2 {
			t.Fatalf("element %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestArrivalProcessMonotonic(t *testing.T) {
	src := New(12)
	ap := NewArrivalProcess(src, 10)
	prev := 0.0
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		next := ap.Next()
		if next < prev {
			t.Fatalf("arrivals not monotonic: %v < %v", next, prev)
		}
		sum += next - prev
		prev = next
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("mean inter-arrival = %v, want ~10", mean)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(13).Intn(0)
}

// legacySampleWithoutReplacement is a frozen copy of the allocating
// algorithm as it existed before the scratch-buffer variant was introduced.
// The equivalence tests below pin SampleWithoutReplacementInto to this
// reference draw-for-draw: identical (seed, n, k) call sequences must yield
// identical values AND leave the underlying generator in the identical
// state, or previously pinned simulation output would silently change.
func legacySampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k >= n {
		return rng.Perm(n)
	}
	if k <= 0 {
		return nil
	}
	if k*3 >= n {
		p := rng.Perm(n)
		return p[:k]
	}
	out := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	for len(out) < k {
		v := rng.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// sampleEquivalenceCases covers every code path: rejection (k << n),
// partial Fisher-Yates (k*3 >= n), full permutation (k == n), clamping
// (k > n), and no-ops (k <= 0) — chained on ONE source so stream state
// carries across calls.
var sampleEquivalenceCases = []struct{ n, k int }{
	{1000, 7}, {50, 40}, {10, 10}, {5, 9}, {5, 0}, {5, -2},
	{3000, 999}, {3000, 1000}, {1, 1}, {2, 1}, {100, 33}, {100, 34},
}

func TestSampleIntoMatchesLegacyDrawForDraw(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		legacy := rand.New(rand.NewSource(seed))
		src := New(seed)
		buf := make([]int, 0, 64)
		for _, c := range sampleEquivalenceCases {
			want := legacySampleWithoutReplacement(legacy, c.n, c.k)
			buf = src.SampleWithoutReplacementInto(buf[:0], c.n, c.k)
			if len(buf) != len(want) {
				t.Fatalf("seed %d (n=%d,k=%d): len %d, want %d", seed, c.n, c.k, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("seed %d (n=%d,k=%d): draw %d = %d, want %d",
						seed, c.n, c.k, i, buf[i], want[i])
				}
			}
		}
		// The generators must also agree AFTER the sequence: equal next
		// draws prove the scratch variant consumed exactly as many values.
		if got, want := src.Int63(), legacy.Int63(); got != want {
			t.Fatalf("seed %d: stream diverged after sampling: %d vs %d", seed, got, want)
		}
	}
}

func TestSampleIntoMatchesAllocatingVariant(t *testing.T) {
	a := New(99)
	b := New(99)
	buf := make([]int, 0, 64)
	for _, c := range sampleEquivalenceCases {
		want := a.SampleWithoutReplacement(c.n, c.k)
		buf = b.SampleWithoutReplacementInto(buf[:0], c.n, c.k)
		if len(buf) != len(want) {
			t.Fatalf("(n=%d,k=%d): len %d, want %d", c.n, c.k, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("(n=%d,k=%d): draw %d = %d, want %d", c.n, c.k, i, buf[i], want[i])
			}
		}
	}
	if got, want := b.Int63(), a.Int63(); got != want {
		t.Fatalf("streams diverged after sampling: %d vs %d", got, want)
	}
}

func TestSampleIntoAppends(t *testing.T) {
	src := New(5)
	dst := []int{-1, -2}
	dst = src.SampleWithoutReplacementInto(dst, 100, 3)
	if len(dst) != 5 || dst[0] != -1 || dst[1] != -2 {
		t.Fatalf("Into must append after the existing prefix, got %v", dst)
	}
}

func TestSampleIntoZeroAllocSteadyState(t *testing.T) {
	src := New(6)
	buf := make([]int, 0, 64)
	// Warm the scratch buffers (rejection set + Fisher-Yates workspace).
	buf = src.SampleWithoutReplacementInto(buf[:0], 1000, 10)
	buf = src.SampleWithoutReplacementInto(buf[:0], 60, 40)
	allocs := testing.AllocsPerRun(200, func() {
		buf = src.SampleWithoutReplacementInto(buf[:0], 1000, 10) // rejection path
		buf = src.SampleWithoutReplacementInto(buf[:0], 60, 40)   // Fisher-Yates path
	})
	if allocs != 0 {
		t.Fatalf("steady-state sampling allocated %v times per op, want 0", allocs)
	}
}
