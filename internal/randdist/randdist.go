// Package randdist provides seeded random distributions used by the
// workload generators, the simulator, and the live runtime.
//
// All state is held in an explicit *Source so that every experiment is
// reproducible from a single integer seed and safe to run in parallel
// (each goroutine owns its own Source).
package randdist

import (
	"math"
	"math/rand"
)

// Source is a seeded random source with the distribution helpers the Hawk
// reproduction needs. It is not safe for concurrent use; create one Source
// per goroutine.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed. Equal seeds yield equal streams.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child source. The child stream is a pure
// function of the parent's current state, so forking preserves determinism.
func (s *Source) Fork() *Source {
	return New(s.rng.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// The paper's derived traces (§4.1) draw task counts and mean task
// durations from exponential distributions around cluster centroids.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// TruncGaussian returns a Gaussian sample with the given mean and standard
// deviation, redrawn until non-negative. The paper draws per-task runtimes
// from a Gaussian with sigma = 2*mean, "excluding negative values" (§4.1).
func (s *Source) TruncGaussian(mean, stddev float64) float64 {
	for {
		v := s.rng.NormFloat64()*stddev + mean
		if v >= 0 {
			return v
		}
	}
}

// LogNormal returns a log-normal sample where mu and sigma parameterize the
// underlying normal distribution. Used to give the synthetic Google trace a
// heavy-tailed task-duration distribution matching Figure 4.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.rng.NormFloat64()*sigma + mu)
}

// Poisson returns a Poisson-distributed count with the given mean,
// using inversion by sequential search for small means and the
// exponential-gap method otherwise.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Exponential inter-arrival gaps: count arrivals in one unit of time.
	count := 0
	t := 0.0
	for {
		t += s.rng.ExpFloat64() / mean
		if t > 1 {
			return count
		}
		count++
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// SampleWithoutReplacement returns k distinct uniform values from [0, n).
// If k >= n it returns a full permutation. For k much smaller than n it
// uses rejection sampling via a set, which is O(k) expected time, so probe
// and steal-victim selection stay cheap even on 50000-node clusters.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return s.rng.Perm(n)
	}
	if k <= 0 {
		return nil
	}
	// For large k relative to n, a partial Fisher-Yates avoids rejection
	// stalls; for the common case (k << n) rejection is faster and
	// allocates only the result slice plus a small map.
	if k*3 >= n {
		p := s.rng.Perm(n)
		return p[:k]
	}
	out := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	for len(out) < k {
		v := s.rng.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// ArrivalProcess generates job submission times.
type ArrivalProcess struct {
	src  *Source
	mean float64
	now  float64
}

// NewArrivalProcess returns a Poisson arrival process whose inter-arrival
// times are exponential with the given mean (seconds). The paper derives
// job submission times "from a Poisson distribution" (§2.3, §4.1).
func NewArrivalProcess(src *Source, meanInterArrival float64) *ArrivalProcess {
	return &ArrivalProcess{src: src, mean: meanInterArrival}
}

// Next advances the process and returns the next absolute arrival time.
func (a *ArrivalProcess) Next() float64 {
	a.now += a.src.Exp(a.mean)
	return a.now
}
