// Package randdist provides seeded random distributions used by the
// workload generators, the simulator, and the live runtime.
//
// All state is held in an explicit *Source so that every experiment is
// reproducible from a single integer seed and safe to run in parallel
// (each goroutine owns its own Source). hawklint's determinism analyzer
// keeps it that way: seeded rand.New(rand.NewSource(...)) streams are the
// only randomness allowed here — never the global math/rand functions.
//
//hawk:deterministic
package randdist

import (
	"math"
	"math/rand"
)

// Source is a seeded random source with the distribution helpers the Hawk
// reproduction needs. It is not safe for concurrent use; create one Source
// per goroutine.
type Source struct {
	rng *rand.Rand

	// Scratch state reused by SampleWithoutReplacementInto so steady-state
	// sampling performs zero heap allocations. The buffers are private to
	// one call at a time (a Source is single-goroutine by contract), and
	// only their capacity survives between calls — never their contents.
	//
	// stamp/gen implement the rejection set as a generation-stamped array
	// rather than a map: value v is "seen this call" iff stamp[v] == gen,
	// and bumping gen invalidates the whole set in O(1). A map here would
	// pay a whole-table clear per call (Go's map clear zeroes every
	// bucket), which profiles as the dominant cost of steal-candidate
	// sampling — each steal attempt draws ~10 values but would clear a
	// table sized by the largest probe burst ever drawn.
	stamp       []uint32
	gen         uint32
	permScratch []int
}

// New returns a Source seeded with seed. Equal seeds yield equal streams.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child source. The child stream is a pure
// function of the parent's current state, so forking preserves determinism.
func (s *Source) Fork() *Source {
	return New(s.rng.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// The paper's derived traces (§4.1) draw task counts and mean task
// durations from exponential distributions around cluster centroids.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// TruncGaussian returns a Gaussian sample with the given mean and standard
// deviation, redrawn until non-negative. The paper draws per-task runtimes
// from a Gaussian with sigma = 2*mean, "excluding negative values" (§4.1).
func (s *Source) TruncGaussian(mean, stddev float64) float64 {
	for {
		v := s.rng.NormFloat64()*stddev + mean
		if v >= 0 {
			return v
		}
	}
}

// LogNormal returns a log-normal sample where mu and sigma parameterize the
// underlying normal distribution. Used to give the synthetic Google trace a
// heavy-tailed task-duration distribution matching Figure 4.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.rng.NormFloat64()*sigma + mu)
}

// Poisson returns a Poisson-distributed count with the given mean,
// using inversion by sequential search for small means and the
// exponential-gap method otherwise.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Exponential inter-arrival gaps: count arrivals in one unit of time.
	count := 0
	t := 0.0
	for {
		t += s.rng.ExpFloat64() / mean
		if t > 1 {
			return count
		}
		count++
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// SampleWithoutReplacement returns k distinct uniform values from [0, n).
// If k >= n it returns a full permutation. It is the allocating convenience
// form of SampleWithoutReplacementInto and draws the identical value
// sequence for identical (seed, n, k) call sequences.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	return s.SampleWithoutReplacementInto(make([]int, 0, k), n, k)
}

// SampleWithoutReplacementInto appends k distinct uniform values from
// [0, n) to dst and returns the extended slice, consuming exactly the same
// random draws as SampleWithoutReplacement. When dst has capacity for the
// appended values the call performs zero heap allocations in steady state:
// the rejection set and the Fisher-Yates workspace are scratch buffers on
// the Source, reused across calls. Callers on the simulator hot path thread
// a per-simulation buffer through (see internal/sim); calls must not be
// nested on one Source.
//
// For k much smaller than n it uses rejection sampling via the reused set,
// which is O(k) expected time, so probe and steal-victim selection stay
// cheap even on 50000-node clusters; for large k relative to n a partial
// Fisher-Yates avoids rejection stalls.
//
//hawk:hotpath
func (s *Source) SampleWithoutReplacementInto(dst []int, n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return dst
	}
	if k*3 >= n {
		s.permScratch = s.permInto(s.permScratch[:0], n)
		dst = append(dst, s.permScratch[:k]...)
		return dst
	}
	if n > len(s.stamp) {
		s.stamp = append(s.stamp, make([]uint32, n-len(s.stamp))...)
	}
	s.gen++
	if s.gen == 0 {
		// Generation counter wrapped: stale stamps could alias the new
		// generation, so reset them once and restart at 1.
		clear(s.stamp)
		s.gen = 1
	}
	for added := 0; added < k; {
		v := s.rng.Intn(n)
		if s.stamp[v] == s.gen {
			continue
		}
		s.stamp[v] = s.gen
		dst = append(dst, v)
		added++
	}
	return dst
}

// permInto appends a uniform permutation of [0, n) to dst, consuming the
// exact random draws math/rand's Perm would — including the redundant
// Intn(1) of the i = 0 iteration, which rand.Perm keeps for Go 1 stream
// compatibility. That draw-for-draw equivalence is what lets the Into
// sampling path reproduce the allocating path bit-for-bit.
//
//hawk:hotpath
func (s *Source) permInto(dst []int, n int) []int {
	start := len(dst)
	for i := 0; i < n; i++ {
		j := s.rng.Intn(i + 1)
		dst = append(dst, 0)
		dst[start+i] = dst[start+j]
		dst[start+j] = i
	}
	return dst
}

// ArrivalProcess generates job submission times.
type ArrivalProcess struct {
	src  *Source
	mean float64
	now  float64
}

// NewArrivalProcess returns a Poisson arrival process whose inter-arrival
// times are exponential with the given mean (seconds). The paper derives
// job submission times "from a Poisson distribution" (§2.3, §4.1).
func NewArrivalProcess(src *Source, meanInterArrival float64) *ArrivalProcess {
	return &ArrivalProcess{src: src, mean: meanInterArrival}
}

// Next advances the process and returns the next absolute arrival time.
func (a *ArrivalProcess) Next() float64 {
	a.now += a.src.Exp(a.mean)
	return a.now
}
