package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testTrace(seed int64) *workload.Trace {
	return workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 200, MeanInterArrival: 2.3, Seed: seed,
	})
}

func TestMapOrderingAndResults(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), items, 8, func(_ context.Context, i, v int) (int, error) {
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d — ordering must be stable", i, v, i*i)
		}
	}
}

func TestMapRespectsWorkerBound(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	items := make([]int, 40)
	_, err := Map(context.Background(), items, jobs, func(_ context.Context, i, _ int) (int, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("observed %d concurrent workers, bound is %d", p, jobs)
	}
}

func TestMapFirstErrorIsLowestIndex(t *testing.T) {
	items := make([]int, 64)
	// Every odd item fails; the reported error must deterministically be
	// item 1's, however the goroutines race.
	for trial := 0; trial < 10; trial++ {
		_, err := Map(context.Background(), items, 8, func(_ context.Context, i, _ int) (int, error) {
			if i%2 == 1 {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return 0, nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		if got := err.Error(); got != "item 1 failed" {
			t.Fatalf("trial %d: error = %q, want lowest-indexed failure \"item 1 failed\"", trial, got)
		}
	}
}

func TestMapStopsClaimingAfterError(t *testing.T) {
	var started atomic.Int64
	items := make([]int, 1000)
	_, err := Map(context.Background(), items, 2, func(_ context.Context, i, _ int) (int, error) {
		started.Add(1)
		return 0, errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n > 10 {
		t.Fatalf("%d items started after first error; pool should stop claiming", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	items := make([]int, 100)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, items, 2, func(ctx context.Context, i, _ int) (int, error) {
			started.Add(1)
			<-release
			return 0, nil
		})
	}()
	cancel()
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 4 {
		t.Fatalf("%d items ran after cancellation", n)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Map(ctx, []int{1, 2, 3}, 1, func(_ context.Context, i, _ int) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran despite pre-cancelled context")
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), nil, 4, func(_ context.Context, i, _ int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestSweepMatchesSerialRuns is the core determinism property: a parallel
// sweep returns exactly the reports a serial loop over sim.Run produces.
func TestSweepMatchesSerialRuns(t *testing.T) {
	tr := testTrace(1)
	var pts []Point
	for _, nodes := range []int{2000, 3000, 4000} {
		for _, pol := range []string{"hawk", "sparrow"} {
			pts = append(pts, Point{Trace: tr, Config: policy.Config{NumNodes: nodes, Policy: pol, Seed: 42}})
		}
	}
	want := make([]*policy.Report, len(pts))
	for i, p := range pts {
		r, err := sim.Run(p.Trace, p.Config)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	got, err := Run(context.Background(), Sweep{Points: pts, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("point %d: parallel report differs from serial run", i)
		}
	}
}

func TestSweepErrorNamesPoint(t *testing.T) {
	tr := testTrace(2)
	pts := []Point{
		{Trace: tr, Config: policy.Config{NumNodes: 2000, Policy: "hawk", Seed: 1}},
		{Trace: tr, Config: policy.Config{NumNodes: 0, Policy: "hawk", Seed: 1}}, // invalid
	}
	_, err := Run(context.Background(), Sweep{Points: pts, Jobs: 2})
	if err == nil {
		t.Fatal("expected error from invalid point")
	}
	if !strings.Contains(err.Error(), "sweep point 1") {
		t.Fatalf("error %q does not identify the failing point", err)
	}
}

func TestSweepCustomEngine(t *testing.T) {
	tr := testTrace(3)
	calls := 0
	eng := func(tt *workload.Trace, cfg policy.Config) (*policy.Report, error) {
		calls++
		return &policy.Report{Engine: "fake", Policy: cfg.Policy}, nil
	}
	got, err := Run(context.Background(), Sweep{
		Points: []Point{{Trace: tr, Config: policy.Config{NumNodes: 1, Policy: "hawk"}}},
		Engine: eng,
		Jobs:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || got[0].Engine != "fake" {
		t.Fatalf("custom engine not used: calls=%d, engine=%q", calls, got[0].Engine)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if s < 0 {
			t.Fatalf("DeriveSeed(42, %d) = %d, want non-negative", i, s)
		}
		if seen[s] {
			t.Fatalf("DeriveSeed(42, %d) = %d collides with an earlier index", i, s)
		}
		seen[s] = true
		if s != DeriveSeed(42, i) {
			t.Fatalf("DeriveSeed not deterministic at index %d", i)
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different bases should derive different seeds")
	}
}

func TestSeededPoints(t *testing.T) {
	tr := testTrace(4)
	cfg := policy.Config{NumNodes: 100, Policy: "hawk"}
	pts := SeededPoints(tr, cfg, 7, 5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Trace != tr {
			t.Fatalf("point %d: trace not shared", i)
		}
		if p.Config.Seed != DeriveSeed(7, i) {
			t.Fatalf("point %d: seed %d, want DeriveSeed(7, %d)", i, p.Config.Seed, i)
		}
		if p.Config.NumNodes != 100 || p.Config.Policy != "hawk" {
			t.Fatalf("point %d: config fields not preserved: %+v", i, p.Config)
		}
	}
}
