// Package sweep fans independent scheduling runs out over a bounded worker
// pool.
//
// Every figure and table of the paper's evaluation is a sweep over
// independent (trace, config) points — node-count sweeps reach 170,000
// simulated nodes per series — and each point is a single-threaded
// simulation. This package is the fan-out layer between the experiment
// drivers and the engines: it executes a set of points concurrently while
// guaranteeing that the observable result is byte-identical to running the
// same points serially.
//
// The guarantees:
//
//   - Bounded concurrency: at most Jobs points run at once (default
//     runtime.GOMAXPROCS).
//   - Stable ordering: result i corresponds to point i, regardless of
//     completion order.
//   - Deterministic first-error propagation: if points fail, the error
//     reported is the lowest-indexed point's, not whichever goroutine
//     happened to lose the race. Remaining points are cancelled.
//   - Context cancellation: cancelling the context stops the sweep between
//     points and returns the context's error.
//
// Determinism of the aggregate falls out of determinism of the parts: a
// simulator run is a pure function of (trace, config, seed) — see the
// internal/eventq ordering invariant — runs share no mutable state (traces
// are read-only during runs, every random stream lives in a per-run
// Source), and results are reassembled in input order.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Engine executes one run: a trace under a configuration. sim.Run and
// liverun.Run both satisfy it (as do the hawk package's re-exports).
type Engine func(*workload.Trace, policy.Config) (*policy.Report, error)

// SourceEngine executes one streamed run: a workload source under a
// configuration. sim.RunSource satisfies it.
type SourceEngine func(workload.Source, policy.Config) (*policy.Report, error)

// SourceFactory opens a fresh workload Source for one run. Sweep points
// run concurrently and a Source is stateful (a single decode cursor), so a
// streamed point carries a factory instead of a Source: each execution
// gets its own instance, keeping runs share-nothing.
type SourceFactory func() (workload.Source, error)

// Point is one run of a sweep: either a materialized Trace or a streamed
// Source factory (exactly one must be set). Points may share a *Trace:
// engines treat traces as read-only.
type Point struct {
	Trace *workload.Trace
	// Source, when set, streams the point's workload through the sweep's
	// SourceEngine instead of materializing a trace, so a sweep over a
	// full-scale workload holds only each running point's in-flight jobs.
	Source SourceFactory
	Config policy.Config
}

// Sweep is a set of independent runs plus execution options.
type Sweep struct {
	Points []Point
	// Engine executes each trace point; nil selects the discrete-event
	// simulator.
	Engine Engine
	// SourceEngine executes each streamed point; nil selects the
	// simulator's streaming entry point (sim.RunSource).
	SourceEngine SourceEngine
	// Jobs bounds how many points run concurrently. Zero or negative
	// means one worker per available CPU (runtime.GOMAXPROCS).
	Jobs int
}

// Run executes the sweep and returns one report per point, in point order.
// On error the slice is nil and the error identifies the lowest-indexed
// failing point.
func (s Sweep) Run(ctx context.Context) ([]*policy.Report, error) {
	eng := s.Engine
	if eng == nil {
		eng = sim.Run
	}
	srcEng := s.SourceEngine
	if srcEng == nil {
		srcEng = sim.RunSource
	}
	reports, err := Map(ctx, s.Points, s.Jobs, func(_ context.Context, i int, p Point) (*policy.Report, error) {
		r, err := s.runPoint(p, eng, srcEng)
		if err != nil {
			return nil, fmt.Errorf("sweep point %d (policy %q, %d nodes, seed %d): %w",
				i, p.Config.Policy, p.Config.NumNodes, p.Config.Seed, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// runPoint dispatches one point to the engine matching its workload form.
func (s Sweep) runPoint(p Point, eng Engine, srcEng SourceEngine) (*policy.Report, error) {
	if p.Source != nil {
		if p.Trace != nil {
			return nil, fmt.Errorf("point sets both Trace and Source")
		}
		src, err := p.Source()
		if err != nil {
			return nil, err
		}
		if closer, ok := src.(interface{ Close() error }); ok {
			defer closer.Close()
		}
		return srcEng(src, p.Config)
	}
	return eng(p.Trace, p.Config)
}

// Run executes a sweep; it is the package-level spelling of Sweep.Run for
// call sites that build the Sweep inline.
func Run(ctx context.Context, s Sweep) ([]*policy.Report, error) {
	return s.Run(ctx)
}

// Map runs fn over every item on a worker pool of the given size (zero or
// negative means runtime.GOMAXPROCS) and returns the results in item order.
//
// Items are claimed in index order. If any fn returns an error, the pool
// stops claiming new items and Map returns the error of the lowest-indexed
// failing item — a deterministic choice, so parallel error behavior is
// reproducible. If the context is cancelled and no item failed, Map returns
// the context's error. The result slice is only valid when the error is
// nil.
func Map[T, R any](ctx context.Context, items []T, jobs int, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(items) {
		jobs = len(items)
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	if jobs == 1 {
		// Serial fast path: no goroutines, identical semantics.
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next    atomic.Int64
		errMu   sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(i int, err error) {
		errMu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, firstEr = i, err
		}
		errMu.Unlock()
		cancel() // stop the pool claiming further items
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || ctx.Err() != nil {
					return
				}
				r, err := fn(ctx, i, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if errIdx != -1 {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// DeriveSeed deterministically derives the seed for point i of a multi-seed
// sweep from a base seed. It mixes (base, i) through splitmix64 so adjacent
// indices yield decorrelated streams — unlike base+i, which hands highly
// correlated states to simple generators. The result is non-negative and
// depends only on the arguments, so a sweep built from (base, 0..n-1) is
// reproducible no matter how its points are scheduled.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// SeededPoints builds n points running the same trace and configuration
// under n derived seeds — the shape of every "averaged over N runs" figure.
func SeededPoints(t *workload.Trace, cfg policy.Config, base int64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		c := cfg
		c.Seed = DeriveSeed(base, i)
		pts[i] = Point{Trace: t, Config: c}
	}
	return pts
}
