package experiments

import (
	"context"
	"fmt"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Fig1Result holds the §2.3 motivation experiment: short-job runtime CDF
// under Sparrow on a loaded heterogeneous cluster (Figure 1).
type Fig1Result struct {
	ShortRuntimeCDF []stats.CDFPoint
	MedianUtil      float64
	MaxUtil         float64
	// FracOver15000s is the fraction of short jobs with runtimes above
	// 15000 s, the "large fraction" the paper calls out (execution time
	// is only 100 s).
	FracOver15000s float64
}

// Fig1 runs the motivation scenario: 1000 jobs (95% short: 100 tasks x
// 100 s; 5% long: 1000 tasks x 20000 s), Poisson arrivals with 50 s mean,
// 15000 nodes, Sparrow.
func Fig1(seed int64) (*Fig1Result, error) {
	t := workload.MotivationWorkload(seed)
	r, err := sim.Run(t, policy.Config{NumNodes: 15000, Policy: "sparrow", Seed: seed})
	if err != nil {
		return nil, err
	}
	short := r.ShortRuntimes()
	return &Fig1Result{
		ShortRuntimeCDF: stats.CDF(short),
		MedianUtil:      r.Utilization.MedianUpTo(t.MakespanLowerBound()),
		MaxUtil:         r.Utilization.Max(),
		FracOver15000s:  1 - stats.FractionAtOrBelow(short, 15000),
	}, nil
}

// Fig4Data holds the per-workload CDFs of Figure 4: average task duration
// per job and number of tasks per job, split long/short by construction.
type Fig4Data struct {
	Workload   string
	LongDur    []stats.CDFPoint // (a) long jobs, avg task duration
	ShortDur   []stats.CDFPoint // (b) short jobs, avg task duration
	LongTasks  []stats.CDFPoint // (c) long jobs, tasks per job
	ShortTasks []stats.CDFPoint // (d) short jobs, tasks per job
}

// Fig4 computes the workload-property CDFs for all four traces, generating
// and characterizing each trace on its own worker.
func Fig4(sc Scale) ([]Fig4Data, error) {
	return sweep.Map(context.Background(), workload.AllSpecs(), sc.Workers,
		func(_ context.Context, _ int, spec workload.Spec) (Fig4Data, error) {
			t := TraceFor(spec, sc)
			var longDur, shortDur, longTasks, shortTasks []float64
			for _, j := range t.Jobs {
				if j.ConstructedLong {
					longDur = append(longDur, j.AvgTaskDuration())
					longTasks = append(longTasks, float64(j.NumTasks()))
				} else {
					shortDur = append(shortDur, j.AvgTaskDuration())
					shortTasks = append(shortTasks, float64(j.NumTasks()))
				}
			}
			return Fig4Data{
				Workload:   spec.Name,
				LongDur:    stats.CDF(longDur),
				ShortDur:   stats.CDF(shortDur),
				LongTasks:  stats.CDF(longTasks),
				ShortTasks: stats.CDF(shortTasks),
			}, nil
		})
}

// Fig5Point is one cluster size of Figure 5: Hawk normalized to Sparrow on
// the Google trace, plus the 5c additional metrics.
type Fig5Point struct {
	RatioPoint
	// Figure 5c metrics.
	FracShortImproved  float64 // fraction of short jobs with Hawk <= Sparrow
	FracLongImproved   float64
	AvgRatioShort      float64 // mean Hawk runtime / mean Sparrow runtime
	AvgRatioLong       float64
	FracShortBy50      float64 // fraction of short jobs improved by > 50%
	HawkStealSuccesses int64
}

// Fig5 sweeps cluster size on the Google trace, comparing Hawk to Sparrow
// (Figures 5a, 5b, 5c).
func Fig5(sc Scale) ([]Fig5Point, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	nodeSweep := NodeSweep("google")
	pairs, err := runPairs(t, nodeSweep, sc.PolicyName(), "sparrow", sc)
	if err != nil {
		return nil, err
	}
	points := make([]Fig5Point, 0, len(nodeSweep))
	for i, nodes := range nodeSweep {
		rh, rs := pairs[i][0], pairs[i][1]
		p := Fig5Point{RatioPoint: ratioPoint(t, rh, rs, float64(nodes))}
		shortCmp := stats.ComparePaired(rh.RuntimesByID(false), rs.RuntimesByID(false))
		longCmp := stats.ComparePaired(rh.RuntimesByID(true), rs.RuntimesByID(true))
		p.FracShortImproved = shortCmp.FractionImprovedOrEqual
		p.FracLongImproved = longCmp.FractionImprovedOrEqual
		p.AvgRatioShort = shortCmp.MeanRuntimeRatio
		p.AvgRatioLong = longCmp.MeanRuntimeRatio
		p.FracShortBy50 = shortCmp.FractionImprovedBy50
		p.HawkStealSuccesses = rh.StealSuccesses
		points = append(points, p)
	}
	return points, nil
}

func ratioPoint(t *workload.Trace, cand, base *policy.Report, x float64) RatioPoint {
	s50, s90, l50, l90 := ratiosFor(t, cand, base, t.Cutoff)
	return RatioPoint{
		X:            x,
		ShortP50:     s50,
		ShortP90:     s90,
		LongP50:      l50,
		LongP90:      l90,
		BaselineUtil: base.Utilization.MedianUpTo(t.MakespanLowerBound()),
	}
}

// Fig6Series is one sub-figure of Figure 6: Hawk normalized to Sparrow on
// a derived trace (the paper plots the 90th percentiles plus utilization).
type Fig6Series struct {
	Workload string
	Points   []RatioPoint
}

// Fig6 sweeps cluster sizes on the Cloudera, Facebook, and Yahoo traces.
// Trace generation parallelizes per workload; the full cross product of
// (workload, cluster size, scheduler) simulations — the Facebook series
// alone reaches 170,000 simulated nodes — then fans out over one pool.
func Fig6(sc Scale) ([]Fig6Series, error) {
	ctx := context.Background()
	specs := []workload.Spec{workload.ClouderaC(), workload.Facebook(), workload.Yahoo()}
	traces, err := sweep.Map(ctx, specs, sc.Workers,
		func(_ context.Context, _ int, spec workload.Spec) (*workload.Trace, error) {
			return TraceFor(spec, sc), nil
		})
	if err != nil {
		return nil, err
	}
	var pts []sweep.Point
	for i, spec := range specs {
		for _, nodes := range NodeSweep(spec.Name) {
			pts = append(pts,
				sweep.Point{Trace: traces[i], Config: sc.apply(policy.Config{NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed})},
				sweep.Point{Trace: traces[i], Config: sc.apply(policy.Config{NumNodes: nodes, Policy: "sparrow", Seed: sc.Seed})})
		}
	}
	reports, err := sweep.Run(ctx, sweep.Sweep{Points: pts, Jobs: sc.Workers})
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	series := make([]Fig6Series, 0, len(specs))
	idx := 0
	for i, spec := range specs {
		s := Fig6Series{Workload: spec.Name}
		for _, nodes := range NodeSweep(spec.Name) {
			rh, rs := reports[idx], reports[idx+1]
			idx += 2
			s.Points = append(s.Points, ratioPoint(traces[i], rh, rs, float64(nodes)))
		}
		series = append(series, s)
	}
	return series, nil
}

// Fig7Row is one bar group of Figure 7: a Hawk ablation normalized to full
// Hawk at 15000 nodes on the Google trace.
type Fig7Row struct {
	Variant  string // "w/o centralized", "w/o partition", "w/o stealing"
	ShortP50 float64
	ShortP90 float64
	LongP50  float64
	LongP90  float64
}

// Fig7 runs the component breakdown: disabling each of Hawk's mechanisms in
// turn and normalizing to the full system.
func Fig7(sc Scale) ([]Fig7Row, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	names := []string{"w/o centralized", "w/o partition", "w/o stealing"}
	cfgs := []policy.Config{
		{NumNodes: nodes, Policy: "hawk", Seed: sc.Seed}, // full system, the normalization baseline
		{NumNodes: nodes, Policy: "hawk", Seed: sc.Seed, DisableCentral: true},
		{NumNodes: nodes, Policy: "hawk", Seed: sc.Seed, DisablePartition: true},
		{NumNodes: nodes, Policy: "hawk", Seed: sc.Seed, DisableStealing: true},
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	full := reports[0]
	rows := make([]Fig7Row, 0, len(names))
	for i, name := range names {
		s50, s90, l50, l90 := ratiosFor(t, reports[i+1], full, t.Cutoff)
		rows = append(rows, Fig7Row{Variant: name, ShortP50: s50, ShortP90: s90, LongP50: l50, LongP90: l90})
	}
	return rows, nil
}

// Fig8And9 compares Hawk to the fully centralized scheduler across cluster
// sizes on the Google trace (Figure 8: short jobs; Figure 9: long jobs).
func Fig8And9(sc Scale) ([]RatioPoint, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	nodeSweep := NodeSweep("google")
	pairs, err := runPairs(t, nodeSweep, sc.PolicyName(), "centralized", sc)
	if err != nil {
		return nil, err
	}
	points := make([]RatioPoint, 0, len(nodeSweep))
	for i, nodes := range nodeSweep {
		points = append(points, ratioPoint(t, pairs[i][0], pairs[i][1], float64(nodes)))
	}
	return points, nil
}

// Fig10And11 compares Hawk to the split cluster across cluster sizes on the
// Google trace (Figure 10: short jobs; Figure 11: long jobs).
func Fig10And11(sc Scale) ([]RatioPoint, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	nodeSweep := NodeSweep("google")
	pairs, err := runPairs(t, nodeSweep, sc.PolicyName(), "split", sc)
	if err != nil {
		return nil, err
	}
	points := make([]RatioPoint, 0, len(nodeSweep))
	for i, nodes := range nodeSweep {
		points = append(points, ratioPoint(t, pairs[i][0], pairs[i][1], float64(nodes)))
	}
	return points, nil
}

// Fig12And13 sweeps the long/short cutoff at 15000 nodes, Hawk normalized
// to Sparrow (Figure 12: long jobs; Figure 13: short jobs). Jobs are
// (re)classified at each cutoff for reporting, as in the paper.
func Fig12And13(sc Scale) ([]RatioPoint, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	cutoffs := []float64{750, 1000, 1129, 1300, 1500, 2000}
	cfgs := make([]policy.Config, 0, 1+len(cutoffs))
	cfgs = append(cfgs, policy.Config{NumNodes: nodes, Policy: "sparrow", Seed: sc.Seed})
	for _, cutoff := range cutoffs {
		cfgs = append(cfgs, policy.Config{NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed, Cutoff: cutoff})
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("fig12: %w", err)
	}
	rs := reports[0]
	points := make([]RatioPoint, 0, len(cutoffs))
	for i, cutoff := range cutoffs {
		s50, s90, l50, l90 := ratiosFor(t, reports[i+1], rs, cutoff)
		points = append(points, RatioPoint{
			X: cutoff, ShortP50: s50, ShortP90: s90, LongP50: l50, LongP90: l90,
			BaselineUtil: rs.Utilization.MedianUpTo(t.MakespanLowerBound()),
		})
	}
	return points, nil
}

// Fig14Point is one mis-estimation range of Figure 14: Hawk with inaccurate
// estimates normalized to Sparrow, long jobs (classified without
// mis-estimation), averaged over several runs.
type Fig14Point struct {
	Lo, Hi  float64
	LongP50 float64
	LongP90 float64
}

// Fig14 sweeps the mis-estimation magnitude. Each range is averaged over
// sc.Runs seeds, as the paper averages over ten runs.
func Fig14(sc Scale) ([]Fig14Point, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	runs := sc.Runs
	if runs < 1 {
		runs = 1
	}
	ranges := [][2]float64{{0.1, 1.9}, {0.2, 1.8}, {0.3, 1.7}, {0.4, 1.6}, {0.5, 1.5}, {0.6, 1.4}, {0.7, 1.3}}
	// One flat sweep covers the whole figure. The Sparrow baseline depends
	// only on the seed, so it runs once per seed and is shared across
	// mis-estimation ranges (the serial loop re-ran it per range); the
	// reports are identical either way because runs are deterministic.
	cfgs := make([]policy.Config, 0, runs+len(ranges)*runs)
	for run := 0; run < runs; run++ {
		cfgs = append(cfgs, policy.Config{NumNodes: nodes, Policy: "sparrow", Seed: sc.Seed + int64(run)})
	}
	for _, rg := range ranges {
		for run := 0; run < runs; run++ {
			cfgs = append(cfgs, policy.Config{
				NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed + int64(run),
				MisestimateLo: rg[0], MisestimateHi: rg[1],
			})
		}
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("fig14: %w", err)
	}
	sparrow := reports[:runs]
	points := make([]Fig14Point, 0, len(ranges))
	for ri, rg := range ranges {
		var sum50, sum90 float64
		for run := 0; run < runs; run++ {
			rh := reports[runs+ri*runs+run]
			// Classify by exact estimates: "the set of jobs classified
			// as long when no mis-estimations are present".
			_, _, l50, l90 := ratiosFor(t, rh, sparrow[run], t.Cutoff)
			sum50 += l50
			sum90 += l90
		}
		points = append(points, Fig14Point{
			Lo: rg[0], Hi: rg[1],
			LongP50: sum50 / float64(runs),
			LongP90: sum90 / float64(runs),
		})
	}
	return points, nil
}

// Fig15Point is one stealing-cap setting of Figure 15: Hawk with the given
// cap normalized to Hawk with cap 1, short jobs.
type Fig15Point struct {
	Cap      int
	ShortP50 float64
	ShortP90 float64
	LongP50  float64
	LongP90  float64
}

// Fig15 sweeps the maximum number of nodes contacted per steal attempt.
func Fig15(sc Scale) ([]Fig15Point, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	caps := []int{1, 2, 3, 4, 5, 10, 15, 20, 25, 50, 75, 100, 250}
	cfgs := make([]policy.Config, len(caps))
	for i, stealCap := range caps {
		cfgs[i] = policy.Config{NumNodes: nodes, Policy: "hawk", Seed: sc.Seed, StealCap: stealCap}
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	base := reports[0] // cap 1, the figure's normalization baseline
	points := make([]Fig15Point, 0, len(caps))
	for i, stealCap := range caps {
		s50, s90, l50, l90 := ratiosFor(t, reports[i], base, t.Cutoff)
		points = append(points, Fig15Point{Cap: stealCap, ShortP50: s50, ShortP90: s90, LongP50: l50, LongP90: l90})
	}
	return points, nil
}
