package experiments

import (
	"fmt"

	"repro/internal/liverun"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig16Config parameterizes the implementation-vs-simulation experiment
// (§4.10, Figures 16 and 17). The paper uses a 3300-job Google sample on
// 100 nodes with task durations scaled from seconds to milliseconds; the
// defaults below reproduce that, and smaller configurations trade fidelity
// for wall-clock time.
type Fig16Config struct {
	NumJobs       int
	NumNodes      int
	NumSchedulers int
	// DurationScale multiplies trace task durations; the paper uses 1e-3
	// (seconds to milliseconds).
	DurationScale float64
	// LoadFactors are the swept values of (mean inter-arrival time) /
	// (mean task runtime); the paper sweeps 1 to 2.25.
	LoadFactors []float64
	Seed        int64
	// Workers bounds how many simulator runs execute concurrently (the
	// live-prototype runs stay serial regardless — they measure real
	// wall-clock time, and co-running prototypes would contend for CPU
	// and distort each other's latencies). Zero means GOMAXPROCS.
	Workers int
}

// DefaultFig16Config reproduces the paper's setup. A full run takes tens of
// minutes of wall-clock time because the prototype really sleeps.
func DefaultFig16Config() Fig16Config {
	return Fig16Config{
		NumJobs:       3300,
		NumNodes:      100,
		NumSchedulers: 10,
		DurationScale: 1e-3,
		LoadFactors:   []float64{1, 1.2, 1.4, 1.6, 1.8, 2, 2.25},
		Seed:          42,
	}
}

// QuickFig16Config is a reduced setup for tests and benchmarks: fewer jobs,
// durations scaled to ~tens of milliseconds, three load points.
func QuickFig16Config() Fig16Config {
	return Fig16Config{
		NumJobs:       300,
		NumNodes:      100,
		NumSchedulers: 10,
		DurationScale: 2e-4,
		LoadFactors:   []float64{1, 1.6, 2.25},
		Seed:          42,
	}
}

// Fig16Point is one load factor of Figures 16/17: Hawk normalized to
// Sparrow in the live prototype and in the simulator, per job class.
type Fig16Point struct {
	LoadFactor float64
	Impl       RatioQuad
	Sim        RatioQuad
}

// RatioQuad bundles the four percentile ratios the figures plot.
type RatioQuad struct {
	ShortP50, ShortP90, LongP50, LongP90 float64
}

// Fig16And17 runs the prototype and the simulator on the same scaled trace
// across load factors. Unlike the other drivers this one consumes real
// wall-clock time proportional to the scaled trace length.
func Fig16And17(cfg Fig16Config) ([]Fig16Point, error) {
	base := buildPrototypeTrace(cfg)
	meanDur := base.MeanTaskDuration()
	points := make([]Fig16Point, 0, len(cfg.LoadFactors))
	for _, k := range cfg.LoadFactors {
		t := base.WithArrivals(k*meanDur, cfg.Seed+int64(1000*k))

		implHawk, err := liverun.Run(t, policy.Config{
			NumNodes: cfg.NumNodes, NumSchedulers: cfg.NumSchedulers,
			Policy: "hawk", Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig16 live hawk k=%.2f: %w", k, err)
		}
		implSparrow, err := liverun.Run(t, policy.Config{
			NumNodes: cfg.NumNodes, NumSchedulers: cfg.NumSchedulers,
			Policy: "sparrow", Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig16 live sparrow k=%.2f: %w", k, err)
		}

		simHawk, simSparrow, err := runPair(t, cfg.NumNodes, "hawk", "sparrow", Scale{Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("fig16 sim k=%.2f: %w", k, err)
		}

		s50, s90, l50, l90 := ratiosFor(t, simHawk, simSparrow, t.Cutoff)
		points = append(points, Fig16Point{
			LoadFactor: k,
			Impl:       liveRatios(t, implHawk, implSparrow),
			Sim:        RatioQuad{ShortP50: s50, ShortP90: s90, LongP50: l50, LongP90: l90},
		})
	}
	return points, nil
}

// buildPrototypeTrace takes the Google sample, caps job widths to fit the
// small cluster (keeping task-seconds constant, §4.1), and scales durations.
func buildPrototypeTrace(cfg Fig16Config) *workload.Trace {
	full := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs:          cfg.NumJobs,
		MeanInterArrival: 1, // overwritten per load factor
		Seed:             cfg.Seed,
	})
	capTasks := cfg.NumNodes / 3
	if capTasks < 1 {
		capTasks = 1
	}
	return full.CapTasks(capTasks).Scale(cfg.DurationScale, 1)
}

func liveRatios(t *workload.Trace, cand, base *policy.Report) RatioQuad {
	classes := make(map[int]bool, t.Len())
	for _, j := range t.Jobs {
		classes[j.ID] = j.AvgTaskDuration() >= t.Cutoff
	}
	collect := func(r *policy.Report, long bool) []float64 {
		var out []float64
		for _, j := range r.Jobs {
			if classes[j.ID] == long {
				out = append(out, j.Runtime)
			}
		}
		return out
	}
	return RatioQuad{
		ShortP50: stats.Ratio(stats.Percentile(collect(cand, false), 50), stats.Percentile(collect(base, false), 50)),
		ShortP90: stats.Ratio(stats.Percentile(collect(cand, false), 90), stats.Percentile(collect(base, false), 90)),
		LongP50:  stats.Ratio(stats.Percentile(collect(cand, true), 50), stats.Percentile(collect(base, true), 50)),
		LongP90:  stats.Ratio(stats.Percentile(collect(cand, true), 90), stats.Percentile(collect(base, true), 90)),
	}
}
