package experiments

import (
	"fmt"

	"repro/internal/policy"
)

// The paper justifies two design choices in prose without dedicated
// figures; the drivers below turn those arguments into measurable
// ablations (DESIGN.md lists them as extensions).

// StealPositionRow quantifies §3.6's argument for stealing the first
// consecutive group of short tasks behind a long task rather than short
// tasks from random queue positions.
type StealPositionRow struct {
	Policy   string // "figure3-group" or "random-positions"
	ShortP50 float64
	ShortP90 float64
	LongP50  float64
	LongP90  float64
	// FocusJobsPerSteal approximates how many distinct jobs a steal
	// touches: entries stolen per successful steal (the paper's concern
	// is random stealing "focusing on too many jobs at the same time").
	EntriesPerSteal float64
}

// AblationStealPosition compares the two stealing choices at the paper's
// headline operating point, normalized to Sparrow so the rows are
// comparable to Figure 5.
func AblationStealPosition(sc Scale) ([]StealPositionRow, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	names := []string{"figure3-group", "random-positions"}
	cfgs := []policy.Config{
		{NumNodes: nodes, Policy: "sparrow", Seed: sc.Seed},
		{NumNodes: nodes, Policy: "hawk", Seed: sc.Seed},
		{NumNodes: nodes, Policy: "hawk", Seed: sc.Seed, StealRandomPositions: true},
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("steal ablation: %w", err)
	}
	rs := reports[0]
	rows := make([]StealPositionRow, 0, len(names))
	for i, name := range names {
		r := reports[i+1]
		s50, s90, l50, l90 := ratiosFor(t, r, rs, t.Cutoff)
		row := StealPositionRow{
			Policy:   name,
			ShortP50: s50, ShortP90: s90, LongP50: l50, LongP90: l90,
		}
		if r.StealSuccesses > 0 {
			row.EntriesPerSteal = float64(r.EntriesStolen) / float64(r.StealSuccesses)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ProbeRatioPoint is one probe-ratio setting: Sparrow (and Hawk's short
// jobs) with the given probes-per-task, normalized to ratio 2 — the value
// the Sparrow authors found best and the paper adopts (§4.1).
type ProbeRatioPoint struct {
	Ratio    int
	Policy   string
	ShortP50 float64
	ShortP90 float64
	Probes   int64 // messaging cost
}

// AblationProbeRatio sweeps the batch-sampling probe ratio for both
// schedulers at the headline operating point.
func AblationProbeRatio(sc Scale) ([]ProbeRatioPoint, error) {
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	policies := []string{"sparrow", "hawk"}
	ratios := []int{1, 2, 3, 4}
	cfgs := make([]policy.Config, 0, len(policies)*len(ratios))
	for _, pol := range policies {
		for _, ratio := range ratios {
			cfgs = append(cfgs, policy.Config{NumNodes: nodes, Policy: pol, Seed: sc.Seed, ProbeRatio: ratio})
		}
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("probe ratio ablation: %w", err)
	}
	points := make([]ProbeRatioPoint, 0, len(cfgs))
	for pi, pol := range policies {
		base := reports[pi*len(ratios)+1] // ratio 2, the normalization baseline
		for ri, ratio := range ratios {
			r := reports[pi*len(ratios)+ri]
			s50, s90, _, _ := ratiosFor(t, r, base, t.Cutoff)
			points = append(points, ProbeRatioPoint{
				Ratio: ratio, Policy: pol,
				ShortP50: s50, ShortP90: s90,
				Probes: r.ProbesSent,
			})
		}
	}
	return points, nil
}
