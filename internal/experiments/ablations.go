package experiments

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/sim"
)

// The paper justifies two design choices in prose without dedicated
// figures; the drivers below turn those arguments into measurable
// ablations (DESIGN.md lists them as extensions).

// StealPositionRow quantifies §3.6's argument for stealing the first
// consecutive group of short tasks behind a long task rather than short
// tasks from random queue positions.
type StealPositionRow struct {
	Policy   string // "figure3-group" or "random-positions"
	ShortP50 float64
	ShortP90 float64
	LongP50  float64
	LongP90  float64
	// FocusJobsPerSteal approximates how many distinct jobs a steal
	// touches: entries stolen per successful steal (the paper's concern
	// is random stealing "focusing on too many jobs at the same time").
	EntriesPerSteal float64
}

// AblationStealPosition compares the two stealing choices at the paper's
// headline operating point, normalized to Sparrow so the rows are
// comparable to Figure 5.
func AblationStealPosition(sc Scale) ([]StealPositionRow, error) {
	t := GoogleTrace(sc)
	const nodes = 15000
	rs, err := sim.Run(t, policy.Config{NumNodes: nodes, Policy: "sparrow", Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	rows := make([]StealPositionRow, 0, 2)
	for _, variant := range []struct {
		name   string
		random bool
	}{
		{"figure3-group", false},
		{"random-positions", true},
	} {
		r, err := sim.Run(t, policy.Config{
			NumNodes: nodes, Policy: "hawk", Seed: sc.Seed,
			StealRandomPositions: variant.random,
		})
		if err != nil {
			return nil, fmt.Errorf("steal ablation %s: %w", variant.name, err)
		}
		s50, s90, l50, l90 := ratiosFor(t, r, rs, t.Cutoff)
		row := StealPositionRow{
			Policy:   variant.name,
			ShortP50: s50, ShortP90: s90, LongP50: l50, LongP90: l90,
		}
		if r.StealSuccesses > 0 {
			row.EntriesPerSteal = float64(r.EntriesStolen) / float64(r.StealSuccesses)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ProbeRatioPoint is one probe-ratio setting: Sparrow (and Hawk's short
// jobs) with the given probes-per-task, normalized to ratio 2 — the value
// the Sparrow authors found best and the paper adopts (§4.1).
type ProbeRatioPoint struct {
	Ratio    int
	Policy   string
	ShortP50 float64
	ShortP90 float64
	Probes   int64 // messaging cost
}

// AblationProbeRatio sweeps the batch-sampling probe ratio for both
// schedulers at the headline operating point.
func AblationProbeRatio(sc Scale) ([]ProbeRatioPoint, error) {
	t := GoogleTrace(sc)
	const nodes = 15000
	points := make([]ProbeRatioPoint, 0, 8)
	for _, pol := range []string{"sparrow", "hawk"} {
		base, err := sim.Run(t, policy.Config{NumNodes: nodes, Policy: pol, Seed: sc.Seed, ProbeRatio: 2})
		if err != nil {
			return nil, err
		}
		for _, ratio := range []int{1, 2, 3, 4} {
			r := base
			if ratio != 2 {
				r, err = sim.Run(t, policy.Config{NumNodes: nodes, Policy: pol, Seed: sc.Seed, ProbeRatio: ratio})
				if err != nil {
					return nil, fmt.Errorf("probe ratio %d: %w", ratio, err)
				}
			}
			s50, s90, _, _ := ratiosFor(t, r, base, t.Cutoff)
			points = append(points, ProbeRatioPoint{
				Ratio: ratio, Policy: pol,
				ShortP50: s50, ShortP90: s90,
				Probes: r.ProbesSent,
			})
		}
	}
	return points, nil
}
