package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFig7SerialVsParallelByteIdentical is the sweep subsystem's headline
// guarantee at figure granularity: running Fig7 at QuickScale serially
// (Workers=1) and in parallel (Workers=8) must produce byte-identical
// reports for the same seed.
func TestFig7SerialVsParallelByteIdentical(t *testing.T) {
	t.Parallel()
	serial := QuickScale()
	serial.Workers = 1
	parallel := QuickScale()
	parallel.Workers = 8

	rowsSerial, err := Fig7(serial)
	if err != nil {
		t.Fatal(err)
	}
	rowsParallel, err := Fig7(parallel)
	if err != nil {
		t.Fatal(err)
	}

	bs, err := json.Marshal(rowsSerial)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := json.Marshal(rowsParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs, bp) {
		t.Fatalf("serial and parallel Fig7 reports differ:\nserial:   %s\nparallel: %s", bs, bp)
	}
}

// TestTable1SerialVsParallel covers the sweep.Map-backed drivers: the
// parallel table must equal the serial one row for row.
func TestTable1SerialVsParallel(t *testing.T) {
	t.Parallel()
	serial := Scale{NumJobs: 1000, Seed: 42, Workers: 1}
	parallel := serial
	parallel.Workers = 4
	a, err := Table1(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
