package experiments

import "testing"

// The scheduler-count sweep (§4.10): the single-scheduler baseline is
// conflict-free by construction, the multi-scheduler points pay claim
// conflicts, and latency degrades gracefully across the whole axis.
// Skipped in -short mode like the other full-figure sweeps.
func TestSchedulerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full scheduler sweep in -short mode")
	}
	rows, err := SchedulerSweep(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SchedulerCounts) {
		t.Fatalf("got %d rows, want %d", len(rows), len(SchedulerCounts))
	}
	base := rows[0]
	if base.Schedulers != 1 || base.PlacementConflicts != 0 || base.SnapshotRefreshes != 0 {
		t.Fatalf("single-scheduler baseline not conflict-free: %+v", base)
	}
	if base.CentralAssigns == 0 {
		t.Fatal("baseline placed nothing centrally")
	}
	for _, r := range rows[1:] {
		if r.CentralAssigns != base.CentralAssigns {
			t.Errorf("%d schedulers committed %d central assigns, baseline %d — every task must still place exactly once",
				r.Schedulers, r.CentralAssigns, base.CentralAssigns)
		}
		if r.PlacementConflicts == 0 {
			t.Errorf("%d schedulers recorded no conflicts at the sweep's staleness window", r.Schedulers)
		}
		if r.ConflictRetries > r.PlacementConflicts {
			t.Errorf("%d schedulers: retries %d > conflicts %d", r.Schedulers, r.ConflictRetries, r.PlacementConflicts)
		}
		// Graceful degradation is the figure's claim: long-job p50 within
		// 10% of the exact single-scheduler baseline at every count.
		if r.LongP50 > 1.1*base.LongP50 || r.LongP50 < 0.9*base.LongP50 {
			t.Errorf("%d schedulers: long p50 %.0f strays >10%% from baseline %.0f", r.Schedulers, r.LongP50, base.LongP50)
		}
	}
}
