package experiments

import (
	"math"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// testScale keeps experiment tests fast while preserving the load regime
// (load depends on the arrival rate, not the job count).
var testScale = Scale{NumJobs: 1500, Seed: 42, Runs: 1}

func TestTable1MatchesPaperShape(t *testing.T) {
	rows, err := Table1(Scale{NumJobs: 8000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	paper := map[string]struct{ long, ts float64 }{
		"google":   {10.00, 83.65},
		"cloudera": {5.02, 92.79},
		"facebook": {2.01, 99.79},
		"yahoo":    {9.41, 98.31},
	}
	for _, r := range rows {
		want := paper[r.Workload]
		if math.Abs(r.PctLongJobs-want.long) > 3 {
			t.Errorf("%s: %%long %.2f vs paper %.2f", r.Workload, r.PctLongJobs, want.long)
		}
		if math.Abs(r.PctLongTaskSeconds-want.ts) > 6 {
			t.Errorf("%s: %%TS %.2f vs paper %.2f", r.Workload, r.PctLongTaskSeconds, want.ts)
		}
	}
	if FormatTable1(rows) == "" {
		t.Fatal("empty rendering")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(Scale{NumJobs: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TotalJobs != 2000 {
			t.Errorf("%s: jobs = %d", r.Workload, r.TotalJobs)
		}
		if r.PctLongJobs <= 0 || r.PctLongJobs >= 50 {
			t.Errorf("%s: %%long = %v", r.Workload, r.PctLongJobs)
		}
	}
	if FormatTable2(rows) == "" {
		t.Fatal("empty rendering")
	}
}

// Figure 1's headline claim: under Sparrow on the loaded heterogeneous
// cluster, a large fraction of 100 s short jobs take over 15000 s, while
// the cluster still has idle servers (median utilization < 100%).
func TestFig1HeadOfLineBlocking(t *testing.T) {
	r, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.FracOver15000s < 0.3 {
		t.Errorf("only %.0f%% of short jobs exceeded 15000 s; paper shows a large fraction",
			100*r.FracOver15000s)
	}
	if r.MedianUtil < 0.7 || r.MedianUtil > 1 {
		t.Errorf("median utilization %.2f outside the loaded-but-not-full regime", r.MedianUtil)
	}
	if len(r.ShortRuntimeCDF) == 0 {
		t.Error("no CDF points")
	}
}

func TestFig4Shapes(t *testing.T) {
	data, err := Fig4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4 {
		t.Fatalf("workloads = %d", len(data))
	}
	for _, d := range data {
		if len(d.LongDur) == 0 || len(d.ShortDur) == 0 || len(d.LongTasks) == 0 || len(d.ShortTasks) == 0 {
			t.Errorf("%s: empty CDFs", d.Workload)
		}
		// Long jobs must dominate short jobs in average task duration at
		// the median.
		if medianOf(d.LongDur) <= medianOf(d.ShortDur) {
			t.Errorf("%s: long median duration <= short median", d.Workload)
		}
	}
}

func medianOf(points []stats.CDFPoint) float64 {
	for _, p := range points {
		if p.Fraction >= 0.5 {
			return p.Value
		}
	}
	return 0
}

// The headline Figure 5 claim at reduced scale: at the high-load point
// Hawk improves short jobs substantially and long jobs are not much worse.
func TestFig5Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	pts, err := Fig5(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(NodeSweep("google")) {
		t.Fatalf("points = %d", len(pts))
	}
	// Find the most-loaded non-overloaded point (15000 nodes).
	var p15 *Fig5Point
	for i := range pts {
		if pts[i].X == 15000 {
			p15 = &pts[i]
		}
	}
	if p15 == nil {
		t.Fatal("no 15000-node point")
	}
	if p15.ShortP50 > 0.6 || p15.ShortP90 > 0.7 {
		t.Errorf("short ratios at 15000 nodes = %.2f/%.2f; paper shows large improvements",
			p15.ShortP50, p15.ShortP90)
	}
	if p15.LongP50 > 1.3 {
		t.Errorf("long p50 ratio at 15000 nodes = %.2f; paper shows improvement", p15.LongP50)
	}
	if p15.FracShortImproved < 0.6 {
		t.Errorf("fraction of short jobs improved = %.2f; paper reports 86%%", p15.FracShortImproved)
	}
	// At the largest cluster the schedulers converge.
	last := pts[len(pts)-1]
	if last.ShortP50 < 0.8 || last.ShortP50 > 1.2 {
		t.Errorf("idle-cluster short ratio = %.2f, want ~1", last.ShortP50)
	}
}

func TestFig7AblationDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	rows, err := Fig7(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Variant {
		case "w/o stealing":
			// The paper: short jobs are greatly penalized without
			// stealing.
			if r.ShortP50 < 1.2 {
				t.Errorf("w/o stealing short p50 = %.2f, want > 1.2", r.ShortP50)
			}
		case "w/o centralized":
			// Long jobs take a significant hit without the centralized
			// scheduler.
			if r.LongP50 < 1.0 {
				t.Errorf("w/o centralized long p50 = %.2f, want >= 1", r.LongP50)
			}
		}
	}
}

func TestFig12CutoffRange(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	pts, err := Fig12And13(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// The paper's claim: benefits hold for the whole range of cutoffs.
	for _, p := range pts {
		if p.ShortP50 > 0.8 {
			t.Errorf("cutoff %.0f: short p50 ratio %.2f — benefit should hold across cutoffs",
				p.X, p.ShortP50)
		}
	}
}

func TestFig15MonotoneImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	pts, err := Fig15(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.Cap != 1 || first.ShortP50 != 1 {
		t.Fatalf("baseline point wrong: %+v", first)
	}
	// Performance increases with the cap (paper: "performance increases
	// with an increase in the cap value").
	if last.ShortP50 > 0.8 {
		t.Errorf("cap 250 short p50 = %.2f, want clearly below 1", last.ShortP50)
	}
	// Cap 10 already gives a significant benefit.
	for _, p := range pts {
		if p.Cap == 10 && p.ShortP50 > 0.9 {
			t.Errorf("cap 10 short p50 = %.2f, want significant benefit", p.ShortP50)
		}
	}
}

func TestTraceForCapsWideJobs(t *testing.T) {
	tr := TraceFor(workload.Facebook(), Scale{NumJobs: 3000, Seed: 1})
	minNodes := NodeSweep("facebook")[0]
	for _, j := range tr.Jobs {
		if j.NumTasks() > minNodes {
			t.Fatalf("job %d has %d tasks > smallest cluster %d", j.ID, j.NumTasks(), minNodes)
		}
	}
}

func TestNodeSweepsAreSane(t *testing.T) {
	for _, name := range []string{"google", "cloudera", "facebook", "yahoo", "unknown"} {
		sweep := NodeSweep(name)
		if len(sweep) < 2 {
			t.Errorf("%s: sweep too small", name)
		}
		for i := 1; i < len(sweep); i++ {
			if sweep[i] <= sweep[i-1] {
				t.Errorf("%s: sweep not increasing", name)
			}
		}
	}
}

func TestRatiosForAlignsJobSets(t *testing.T) {
	// ratiosFor must compare identical job sets: with candidate ==
	// baseline, every ratio is exactly 1.
	tr, err := GoogleTrace(Scale{NumJobs: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr, policy.Config{NumNodes: 5000, Policy: "hawk", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s50, s90, l50, l90 := ratiosFor(tr, res, res, tr.Cutoff)
	for _, v := range []float64{s50, s90, l50, l90} {
		if v != 1 {
			t.Fatalf("self-ratio = %v, want 1", v)
		}
	}
}
