package experiments

import "testing"

// The §3.6 design argument must be measurable: Figure 3's group rule beats
// (or at least matches) random-position stealing for short jobs.
func TestStealPositionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	rows, err := AblationStealPosition(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var group, random *StealPositionRow
	for i := range rows {
		switch rows[i].Policy {
		case "figure3-group":
			group = &rows[i]
		case "random-positions":
			random = &rows[i]
		}
	}
	if group == nil || random == nil {
		t.Fatal("missing variants")
	}
	// Both still improve on Sparrow; the group rule should not lose to
	// random positions at the p90 (job-focused stealing is the point).
	if group.ShortP50 >= 1 {
		t.Errorf("group stealing p50 ratio = %.2f, want < 1", group.ShortP50)
	}
	if group.ShortP90 > random.ShortP90*1.15 {
		t.Errorf("group rule p90 %.2f much worse than random %.2f — contradicts §3.6",
			group.ShortP90, random.ShortP90)
	}
}

func TestProbeRatioAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	pts, err := AblationProbeRatio(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Ratio == 2 && (p.ShortP50 != 1 || p.ShortP90 != 1) {
			t.Errorf("%s ratio 2 should be the normalization baseline, got %.2f/%.2f",
				p.Policy, p.ShortP50, p.ShortP90)
		}
		// One probe per task must be clearly worse than two (no slack
		// for late binding).
		if p.Ratio == 1 && p.ShortP50 < 1.02 {
			t.Errorf("%s ratio 1 p50 = %.2f, expected worse than baseline", p.Policy, p.ShortP50)
		}
		if p.Probes <= 0 {
			t.Errorf("%s ratio %d: no probes recorded", p.Policy, p.Ratio)
		}
	}
}
