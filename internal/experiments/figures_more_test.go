package experiments

import (
	"math"
	"testing"
)

func TestFig6AllTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	// Facebook's long tasks run for thousands of seconds, so the trace
	// must span well past them for the load regime to establish itself.
	series, err := Fig6(Scale{NumJobs: 8000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(NodeSweep(s.Workload)) {
			t.Errorf("%s: %d points", s.Workload, len(s.Points))
		}
		// The paper's claim: benefits hold across all traces — at the
		// most-loaded plotted points Hawk improves short jobs.
		improved := false
		for _, p := range s.Points {
			if !math.IsNaN(p.ShortP90) && p.ShortP90 < 0.9 {
				improved = true
			}
			if p.BaselineUtil < 0 || p.BaselineUtil > 1 {
				t.Errorf("%s: utilization %v out of range", s.Workload, p.BaselineUtil)
			}
		}
		if !improved {
			t.Errorf("%s: Hawk never improved short p90 across the sweep", s.Workload)
		}
	}
}

func TestFig8And9Directions(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	pts, err := Fig8And9(Scale{NumJobs: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(NodeSweep("google")) {
		t.Fatalf("points = %d", len(pts))
	}
	// Paper: long jobs are slightly better centralized (Figure 9), and
	// both schedulers converge on light clusters. Our centralized
	// baseline observes exact queue state with zero scheduling latency,
	// so — as recorded in EXPERIMENTS.md — it serves short jobs better
	// than the paper's; we assert Hawk stays competitive (bounded worse)
	// rather than strictly better under load.
	for _, p := range pts {
		if !math.IsNaN(p.LongP50) && p.LongP50 < 0.85 {
			t.Errorf("n=%.0f: long p50 = %.2f — centralized should be >= Hawk for longs", p.X, p.LongP50)
		}
		if !math.IsNaN(p.ShortP90) && p.ShortP90 > 2.5 {
			t.Errorf("n=%.0f: short p90 = %.2f — Hawk should stay competitive with centralized", p.X, p.ShortP90)
		}
	}
	last := pts[len(pts)-1]
	if last.ShortP50 < 0.85 || last.ShortP50 > 1.15 || last.LongP50 < 0.85 || last.LongP50 > 1.15 {
		t.Errorf("light-load point should converge to ~1, got short %.2f long %.2f", last.ShortP50, last.LongP50)
	}
}

func TestFig10And11Directions(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	pts, err := Fig10And11(Scale{NumJobs: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Hawk fares significantly better for short jobs in the
	// middle of the sweep (split-cluster shorts cannot use the general
	// partition), slightly worse for long jobs.
	best := math.Inf(1)
	for _, p := range pts {
		if p.ShortP50 < best {
			best = p.ShortP50
		}
	}
	if best > 0.7 {
		t.Errorf("best short p50 vs split = %.2f, want clear improvement", best)
	}
	for _, p := range pts {
		if !math.IsNaN(p.LongP50) && p.LongP50 < 0.8 {
			t.Errorf("n=%.0f: long p50 = %.2f — split should be >= Hawk for longs", p.X, p.LongP50)
		}
	}
}

func TestFig14Robustness(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	t.Parallel()
	pts, err := Fig14(Scale{NumJobs: 2000, Seed: 42, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	// Paper: "Hawk is robust to mis-estimations" — long-job ratios stay
	// in a sane band across all magnitudes (no blow-up).
	for _, p := range pts {
		if math.IsNaN(p.LongP50) || p.LongP50 <= 0 || p.LongP50 > 2 {
			t.Errorf("range %.1f-%.1f: long p50 ratio %v out of band", p.Lo, p.Hi, p.LongP50)
		}
		if p.Lo >= p.Hi {
			t.Errorf("bad range %v-%v", p.Lo, p.Hi)
		}
	}
}

func TestFig16And17Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("live prototype too slow for -short")
	}
	t.Parallel()
	cfg := Fig16Config{
		NumJobs:       40,
		NumNodes:      50,
		NumSchedulers: 4,
		DurationScale: 1e-4,
		LoadFactors:   []float64{1.2},
		Seed:          42,
	}
	pts, err := Fig16And17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	// Both engines must produce finite, positive ratios from the same
	// trace; agreement within a loose band is the §4.10 claim ("the
	// simulation and implementation experiments agree and show similar
	// trends") — at this tiny scale we only require sanity.
	for name, q := range map[string]RatioQuad{"impl": p.Impl, "sim": p.Sim} {
		for metric, v := range map[string]float64{
			"shortP50": q.ShortP50, "shortP90": q.ShortP90,
			"longP50": q.LongP50, "longP90": q.LongP90,
		} {
			if math.IsNaN(v) || v <= 0 {
				t.Errorf("%s %s = %v", name, metric, v)
			}
		}
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d := DefaultFig16Config()
	if d.NumJobs != 3300 || d.NumNodes != 100 || d.NumSchedulers != 10 {
		t.Errorf("default fig16 config deviates from §4.10: %+v", d)
	}
	if d.DurationScale != 1e-3 {
		t.Errorf("paper scales durations 1000x, got %v", d.DurationScale)
	}
	if len(d.LoadFactors) != 7 || d.LoadFactors[0] != 1 || d.LoadFactors[6] != 2.25 {
		t.Errorf("load factors = %v", d.LoadFactors)
	}
	q := QuickFig16Config()
	if q.NumJobs >= d.NumJobs {
		t.Error("quick config should be smaller than the default")
	}
	if DefaultScale().NumJobs <= QuickScale().NumJobs {
		t.Error("default scale should exceed quick scale")
	}
}
