package experiments

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stats"
)

// The robustness experiment behind the paper's §4 resilience argument:
// Hawk's centralized scheduler is a single logical component, and the
// paper's answer to "what if it dies?" is that the distributed side —
// batch-sampling probes plus randomized stealing over the partitioned
// cluster — keeps short jobs flowing and the general partition busy while
// the central queue is gone. This driver scripts exactly that: kill the
// centralized scheduler mid-trace, restore it later, and compare the
// candidate policy with and without stealing over the outage window.

// OutageRow is one variant of the central-outage robustness experiment.
type OutageRow struct {
	Variant string // "hawk", "hawk w/o stealing"

	// Median general-partition utilization before and during the outage —
	// the headline comparison: stealing keeps the partition fed while
	// long-job placement is suspended.
	GeneralUtilBefore float64
	GeneralUtilOutage float64

	// Short-job p50 runtime overall vs jobs submitted during the outage.
	ShortP50       float64
	ShortP50Outage float64
	// Long-job p50 runtime overall vs during the outage (long jobs park
	// in the central backlog until recovery, so this shows the cost).
	LongP50       float64
	LongP50Outage float64

	CentralDeferred int64
	OutageSeconds   float64
	StealSuccesses  int64
}

// RobustnessOutage runs the central-scheduler-outage scenario on the
// Google trace at the paper's 15000-node operating point: the centralized
// scheduler is scripted down over the middle ~40% of the arrival window,
// for the candidate policy with stealing and with stealing disabled.
func RobustnessOutage(sc Scale) ([]OutageRow, error) {
	// The driver scripts its own outage; a CLI churn overlay (Scale.Churn)
	// must not leak into the variants and muddy the comparison.
	sc.Churn = nil
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	last := 0.0
	for _, j := range t.Jobs {
		if j.SubmitTime > last {
			last = j.SubmitTime
		}
	}
	downAt, upAt := 0.3*last, 0.7*last
	churn := &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: downAt, Kind: policy.ChurnCentralDown},
		{At: upAt, Kind: policy.ChurnCentralUp},
	}}
	cfgs := []policy.Config{
		{NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed, Churn: churn},
		{NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed, Churn: churn, DisableStealing: true},
	}
	names := []string{sc.PolicyName(), sc.PolicyName() + " w/o stealing"}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("robustness: %w", err)
	}
	rows := make([]OutageRow, 0, len(reports))
	for i, r := range reports {
		rows = append(rows, OutageRow{
			Variant:           names[i],
			GeneralUtilBefore: r.GeneralUtilization.MedianBetween(0, downAt),
			GeneralUtilOutage: r.GeneralUtilization.MedianBetween(downAt, upAt),
			ShortP50:          stats.Percentile(r.ShortRuntimes(), 50),
			ShortP50Outage:    stats.Percentile(r.OutageShortRuntimes(), 50),
			LongP50:           stats.Percentile(r.LongRuntimes(), 50),
			LongP50Outage:     stats.Percentile(r.OutageLongRuntimes(), 50),
			CentralDeferred:   r.CentralDeferred,
			OutageSeconds:     r.CentralOutageSeconds,
			StealSuccesses:    r.StealSuccesses,
		})
	}
	return rows, nil
}

// ChurnRow is one variant of the node-churn experiment: the candidate
// policy under scripted rolling node failures vs the undisturbed baseline.
type ChurnRow struct {
	Variant         string
	ShortP50        float64
	LongP50         float64
	NodeFailures    int64
	NodeRecoveries  int64
	TasksReexecuted int64
	ProbesLost      int64
	WorkLostSeconds float64
}

// RobustnessChurn runs the candidate policy through a rolling-failure
// scenario — waves of random node failures through the arrival window,
// each wave recovering before the next — against the same run on a stable
// cluster, quantifying how much re-execution and lost work the re-routing
// machinery absorbs.
func RobustnessChurn(sc Scale) ([]ChurnRow, error) {
	// The churned-vs-stable comparison defines both scenarios itself: the
	// stable baseline must stay churn-free even when the CLI sets a churn
	// overlay for the other experiments.
	sc.Churn = nil
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	last := 0.0
	for _, j := range t.Jobs {
		if j.SubmitTime > last {
			last = j.SubmitTime
		}
	}
	// Four waves: fail 300 random nodes (2% of the cluster), recover them
	// half a wave later.
	const waveNodes = 300
	var events []policy.ChurnEvent
	for w := 0; w < 4; w++ {
		at := (0.15 + 0.2*float64(w)) * last
		events = append(events,
			policy.ChurnEvent{At: at, Kind: policy.ChurnFail, Count: waveNodes},
			policy.ChurnEvent{At: at + 0.1*last, Kind: policy.ChurnRecover, Count: waveNodes})
	}
	cfgs := []policy.Config{
		{NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed, Churn: &policy.ChurnSpec{Events: events}},
		{NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed},
	}
	names := []string{sc.PolicyName() + " under churn", sc.PolicyName() + " stable"}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("robustness-churn: %w", err)
	}
	rows := make([]ChurnRow, 0, len(reports))
	for i, r := range reports {
		rows = append(rows, ChurnRow{
			Variant:         names[i],
			ShortP50:        stats.Percentile(r.ShortRuntimes(), 50),
			LongP50:         stats.Percentile(r.LongRuntimes(), 50),
			NodeFailures:    r.NodeFailures,
			NodeRecoveries:  r.NodeRecoveries,
			TasksReexecuted: r.TasksReexecuted,
			ProbesLost:      r.ProbesLost,
			WorkLostSeconds: r.WorkLostSeconds,
		})
	}
	return rows, nil
}

// FaultRow is one (policy, loss) point of the message-loss sweep.
type FaultRow struct {
	Policy   string
	Loss     float64
	ShortP50 float64
	ShortP99 float64
	LongP50  float64

	MessagesDropped    int64
	ProbeRetries       int64
	AssignRetries      int64
	FallbacksToCentral int64
}

// FaultLossSweep is the swept per-class drop probability axis: lossless
// through a heavily degraded 10% RPC plane.
var FaultLossSweep = []float64{0, 0.01, 0.02, 0.05, 0.10}

// RobustnessFaults sweeps uniform message loss from 0 to 10% across the
// probe-based, hybrid, and centralized schedulers on the Google trace at
// the paper's 15000-node operating point, reporting how short-job latency
// degrades as the retry/timeout/fallback defenses absorb the drops. Hawk's
// hybrid split is the interesting case: probe traffic rides the lossy
// plane with bounded retries while exhausted short jobs degrade to the
// central queue instead of hanging.
func RobustnessFaults(sc Scale) ([]FaultRow, error) {
	// The loss probability is this experiment's swept axis; a CLI fault
	// overlay (Scale.Faults) must not leak into the points.
	sc.Faults = nil
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	policies := []string{sc.PolicyName(), "sparrow", "centralized"}
	if sc.PolicyName() == "sparrow" || sc.PolicyName() == "centralized" {
		policies = []string{"hawk", "sparrow", "centralized"}
	}
	var cfgs []policy.Config
	for _, pol := range policies {
		for _, loss := range FaultLossSweep {
			cfg := policy.Config{NumNodes: nodes, Policy: pol, Seed: sc.Seed}
			if loss > 0 {
				// MaxRetries 8 keeps a full retry-chain exhaustion (p^9)
				// out of reach even at 10% loss, so every point measures
				// degradation rather than starvation.
				cfg.Faults = &policy.FaultSpec{
					ProbeLoss: loss, ReplyLoss: loss, StealLoss: loss,
					AssignLoss: loss, CommitLoss: loss, MaxRetries: 8,
				}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("robustness-faults: %w", err)
	}
	rows := make([]FaultRow, 0, len(reports))
	for i, r := range reports {
		row := FaultRow{
			Policy:             policies[i/len(FaultLossSweep)],
			Loss:               FaultLossSweep[i%len(FaultLossSweep)],
			ShortP50:           stats.Percentile(r.ShortRuntimes(), 50),
			ShortP99:           stats.Percentile(r.ShortRuntimes(), 99),
			LongP50:            stats.Percentile(r.LongRuntimes(), 50),
			ProbeRetries:       r.ProbeRetries,
			AssignRetries:      r.AssignRetries,
			FallbacksToCentral: r.FallbacksToCentral,
		}
		if r.MessagesDropped != nil {
			row.MessagesDropped = r.MessagesDropped.Total()
		}
		rows = append(rows, row)
	}
	return rows, nil
}
