package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Table1Row reproduces one row of Table 1: long jobs form a small fraction
// of jobs but a large fraction of task-seconds.
type Table1Row struct {
	Workload           string
	PctLongJobs        float64
	PctLongTaskSeconds float64
}

// Table1 regenerates Table 1 over the four synthetic workloads, using the
// paper's classification (every non-first k-means cluster is long).
func Table1(sc Scale) []Table1Row {
	rows := make([]Table1Row, 0, 4)
	for _, spec := range workload.AllSpecs() {
		t := TraceFor(spec, sc)
		st := workload.ComputeStatsByConstruction(t)
		rows = append(rows, Table1Row{
			Workload:           spec.Name,
			PctLongJobs:        st.PctLongJobs,
			PctLongTaskSeconds: st.PctLongTaskSeconds,
		})
	}
	return rows
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %14s\n", "Workload", "% Long Jobs", "% Task-Seconds")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %11.2f%% %13.2f%%\n", r.Workload, r.PctLongJobs, r.PctLongTaskSeconds)
	}
	return b.String()
}

// Table2Row reproduces one row of Table 2: long-job percentage and total
// job count per workload.
type Table2Row struct {
	Workload    string
	PctLongJobs float64
	TotalJobs   int
}

// Table2 regenerates Table 2.
func Table2(sc Scale) []Table2Row {
	rows := make([]Table2Row, 0, 4)
	for _, spec := range workload.AllSpecs() {
		t := TraceFor(spec, sc)
		st := workload.ComputeStatsByConstruction(t)
		rows = append(rows, Table2Row{
			Workload:    spec.Name,
			PctLongJobs: st.PctLongJobs,
			TotalJobs:   st.TotalJobs,
		})
	}
	return rows
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %18s\n", "Workload", "% Long Jobs", "Total number jobs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %11.2f%% %18d\n", r.Workload, r.PctLongJobs, r.TotalJobs)
	}
	return b.String()
}
