package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sweep"
	"repro/internal/workload"
)

// Table1Row reproduces one row of Table 1: long jobs form a small fraction
// of jobs but a large fraction of task-seconds.
type Table1Row struct {
	Workload           string
	PctLongJobs        float64
	PctLongTaskSeconds float64
}

// Table1 regenerates Table 1 over the four synthetic workloads, using the
// paper's classification (every non-first k-means cluster is long). Each
// workload generates and characterizes on its own worker.
func Table1(sc Scale) ([]Table1Row, error) {
	return sweep.Map(context.Background(), workload.AllSpecs(), sc.Workers,
		func(_ context.Context, _ int, spec workload.Spec) (Table1Row, error) {
			st := workload.ComputeStatsByConstruction(TraceFor(spec, sc))
			return Table1Row{
				Workload:           spec.Name,
				PctLongJobs:        st.PctLongJobs,
				PctLongTaskSeconds: st.PctLongTaskSeconds,
			}, nil
		})
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %14s\n", "Workload", "% Long Jobs", "% Task-Seconds")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %11.2f%% %13.2f%%\n", r.Workload, r.PctLongJobs, r.PctLongTaskSeconds)
	}
	return b.String()
}

// Table2Row reproduces one row of Table 2: long-job percentage and total
// job count per workload.
type Table2Row struct {
	Workload    string
	PctLongJobs float64
	TotalJobs   int
}

// Table2 regenerates Table 2, one workload per worker.
func Table2(sc Scale) ([]Table2Row, error) {
	return sweep.Map(context.Background(), workload.AllSpecs(), sc.Workers,
		func(_ context.Context, _ int, spec workload.Spec) (Table2Row, error) {
			st := workload.ComputeStatsByConstruction(TraceFor(spec, sc))
			return Table2Row{
				Workload:    spec.Name,
				PctLongJobs: st.PctLongJobs,
				TotalJobs:   st.TotalJobs,
			}, nil
		})
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %18s\n", "Workload", "% Long Jobs", "Total number jobs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %11.2f%% %18d\n", r.Workload, r.PctLongJobs, r.TotalJobs)
	}
	return b.String()
}
