// Package experiments reproduces every table and figure of the paper's
// evaluation (§2.3 and §4). Each driver builds the workload, runs the
// schedulers under comparison, and returns the rows or curve series the
// paper reports. EXPERIMENTS.md records paper-vs-measured values.
//
// Rows and figure points go straight into golden CSV/JSON reports, so
// every driver must produce identical output run to run; hawklint's
// determinism analyzer guards the package (map iteration feeding output is
// the classic way this breaks):
//
//hawk:deterministic
package experiments

import (
	"context"

	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Scale controls how large an experiment's trace is. The paper replays
// 506,460 Google jobs; our synthetic default is 20,000 jobs with the
// arrival rate calibrated so a 15,000-node cluster sits at the paper's
// "highly loaded but not overloaded" point (~0.87 median utilization).
// Load depends on the arrival rate, not the job count, so smaller scales
// (for quick runs and benchmarks) preserve the comparisons with more noise.
type Scale struct {
	NumJobs int
	Seed    int64
	// Runs averages metrics over this many seeds where the paper does
	// (Figure 14 averages ten runs). Zero means one run.
	Runs int
	// Policy is the registry name of the candidate policy the comparison
	// figures evaluate against their baselines. Empty means "hawk", the
	// paper's system; cmd/hawkexp threads its -policy flag through here.
	Policy string
	// Workers bounds how many simulations a sweep-shaped driver runs
	// concurrently (every figure fans its independent runs out over
	// internal/sweep). Zero means one worker per available CPU;
	// cmd/hawkexp threads its -jobs flag through here. Results are
	// byte-identical for any worker count, including 1 (serial).
	Workers int
	// Churn, when set, applies a scripted cluster-churn scenario to every
	// simulator run a driver launches (cmd/hawkexp threads its
	// -fail-nodes/-fail-at flags through here). Nil runs the static
	// cluster of the paper's baseline evaluation.
	Churn *policy.ChurnSpec
	// Heterogeneity, when set, applies per-node speed factors to every
	// simulator run (the -speed-skew flag).
	Heterogeneity *policy.Heterogeneity
	// Schedulers, when set, runs every simulation under the multi-scheduler
	// model (the -schedulers flag). SchedulerSweep ignores it — the
	// scheduler count is that experiment's swept axis.
	Schedulers *policy.SchedulerSpec
	// Faults, when set, runs every simulation under the gray-failure
	// injection plane (the -msg-loss/-jitter/-straggle-*/-speculate
	// flags). RobustnessFaults ignores it — message loss is that
	// experiment's swept axis.
	Faults *policy.FaultSpec
	// NetworkDelay, when nonzero, overrides the per-message-leg network
	// delay of every simulation (the -net-delay flag, seconds).
	NetworkDelay float64
	// TracePath, when set, replays a recorded hawk-trace file in place of
	// the synthetic Google trace in every experiment built on GoogleTrace
	// (cmd/hawkexp threads its -trace flag through here). Multi-workload
	// sweeps (Table 1/2, Figures 4 and 6) keep their synthetic traces —
	// one recording cannot stand in for four workload families.
	TracePath string
}

// apply overlays the scale's cluster scenario on one run configuration,
// leaving configs that script their own scenario untouched.
func (s Scale) apply(cfg policy.Config) policy.Config {
	if cfg.Churn == nil {
		cfg.Churn = s.Churn
	}
	if cfg.Heterogeneity == nil {
		cfg.Heterogeneity = s.Heterogeneity
	}
	if cfg.Schedulers == nil {
		cfg.Schedulers = s.Schedulers
	}
	if cfg.Faults == nil {
		cfg.Faults = s.Faults
	}
	if cfg.NetworkDelay == 0 {
		cfg.NetworkDelay = s.NetworkDelay
	}
	return cfg
}

// PolicyName returns the candidate policy, defaulting to "hawk".
func (s Scale) PolicyName() string {
	if s.Policy == "" {
		return "hawk"
	}
	return s.Policy
}

// DefaultScale is the scale used by cmd/hawkexp and EXPERIMENTS.md.
func DefaultScale() Scale { return Scale{NumJobs: 20000, Seed: 42, Runs: 10} }

// QuickScale is a reduced scale for benchmarks and smoke tests.
func QuickScale() Scale { return Scale{NumJobs: 4000, Seed: 42, Runs: 3} }

// meanInterArrival returns the calibrated mean job inter-arrival time
// (seconds) for a workload spec: the rate at which the second-smallest
// cluster size of the paper's sweep for that workload sits just above
// ~0.9 offered load, reproducing the paper's "overloaded at the smallest
// size, highly loaded at the next" regime.
func meanInterArrival(spec workload.Spec) float64 {
	switch spec.Name {
	case "google":
		return 2.3 // 15,000 nodes ~0.87 median utilization
	case "cloudera":
		return 1.5 // 20,000 nodes highly loaded
	case "facebook":
		return 1.0 // 90,000 nodes highly loaded
	case "yahoo":
		return 7.5 // 7,000 nodes highly loaded
	default:
		return 2.3
	}
}

// NodeSweep returns the cluster sizes (in nodes) the paper sweeps for a
// workload (Figures 5, 6).
func NodeSweep(name string) []int {
	switch name {
	case "google":
		return []int{10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000, 50000}
	case "cloudera":
		return []int{15000, 20000, 25000, 30000, 35000, 40000, 45000, 50000}
	case "facebook":
		return []int{70000, 90000, 110000, 130000, 150000, 170000}
	case "yahoo":
		return []int{5000, 7000, 9000, 11000, 13000, 15000, 17000, 19000}
	default:
		return []int{10000, 15000, 20000, 25000}
	}
}

// GoogleTrace returns the Google workload at the given scale: the default
// synthetic trace, or — when the scale names a recorded hawk-trace file —
// that recording, materialized so the sweep's runs can share it.
func GoogleTrace(sc Scale) (*workload.Trace, error) {
	if sc.TracePath != "" {
		src, err := workload.OpenSource(sc.TracePath)
		if err != nil {
			return nil, err
		}
		defer src.Close()
		return workload.Materialize(src)
	}
	return workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs:          sc.NumJobs,
		MeanInterArrival: meanInterArrival(workload.Google()),
		Seed:             sc.Seed,
	}), nil
}

// TraceFor generates the trace for any workload spec at the given scale,
// capped so the smallest swept cluster can still probe-schedule every job
// (the paper applies the same scale-down rule to its prototype runs).
func TraceFor(spec workload.Spec, sc Scale) *workload.Trace {
	t := workload.Generate(spec, workload.GenConfig{
		NumJobs:          sc.NumJobs,
		MeanInterArrival: meanInterArrival(spec),
		Seed:             sc.Seed,
	})
	sweep := NodeSweep(spec.Name)
	minNodes := sweep[0]
	for _, n := range sweep {
		if n < minNodes {
			minNodes = n
		}
	}
	// Batch sampling needs at least one candidate node per task, so cap
	// job widths at the smallest swept cluster size (the paper applies
	// the same scale-down rule to its 100-node prototype runs). The caps
	// rarely bind: they only trim the extreme tail of the task-count
	// distributions.
	return t.CapTasks(minNodes)
}

// runConfigs fans a set of simulator runs on a shared trace out over one
// bounded worker pool and returns the reports in config order. Every
// sweep-shaped driver funnels through here (or runPairs), so a single
// Scale.Workers knob bounds the whole figure's parallelism and a single
// Scale scenario (churn/heterogeneity) overlays every run.
func runConfigs(t *workload.Trace, cfgs []policy.Config, sc Scale) ([]*policy.Report, error) {
	pts := make([]sweep.Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i] = sweep.Point{Trace: t, Config: sc.apply(cfg)}
	}
	return sweep.Run(context.Background(), sweep.Sweep{Points: pts, Jobs: sc.Workers})
}

// runPairs runs the candidate and baseline policies at every cluster size
// of a node sweep, all fanned out over one worker pool, and returns the
// (candidate, baseline) report pairs in nodes order.
func runPairs(t *workload.Trace, nodes []int, candidate, baseline string, sc Scale) ([][2]*policy.Report, error) {
	cfgs := make([]policy.Config, 0, 2*len(nodes))
	for _, n := range nodes {
		cfgs = append(cfgs,
			policy.Config{NumNodes: n, Policy: candidate, Seed: sc.Seed},
			policy.Config{NumNodes: n, Policy: baseline, Seed: sc.Seed})
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, err
	}
	pairs := make([][2]*policy.Report, len(nodes))
	for i := range nodes {
		pairs[i] = [2]*policy.Report{reports[2*i], reports[2*i+1]}
	}
	return pairs, nil
}

// runPair runs the candidate and baseline policies on the same trace at one
// cluster size (concurrently, bounded by the scale's worker pool).
func runPair(t *workload.Trace, nodes int, candidate, baseline string, sc Scale) (*policy.Report, *policy.Report, error) {
	pairs, err := runPairs(t, []int{nodes}, candidate, baseline, sc)
	if err != nil {
		return nil, nil, err
	}
	return pairs[0][0], pairs[0][1], nil
}

// RatioPoint is one x-position of a "candidate normalized to baseline"
// figure: percentile runtime ratios per job class, plus the baseline's
// median cluster utilization (the dotted context line in the figures).
type RatioPoint struct {
	X            float64 // sweep variable (nodes, cutoff, cap, ...)
	ShortP50     float64 // candidate p50 / baseline p50, short jobs
	ShortP90     float64
	LongP50      float64
	LongP90      float64
	BaselineUtil float64
}

// ratiosFor computes the RatioPoint percentile ratios for two results over
// a common trace, classifying jobs by exact estimate at the given cutoff so
// both sides use identical job sets.
func ratiosFor(t *workload.Trace, cand, base *policy.Report, cutoff float64) (shortP50, shortP90, longP50, longP90 float64) {
	candRT := allRuntimes(cand)
	baseRT := allRuntimes(base)
	// Iterate the trace, not a classification map: trace order is fixed, so
	// the collected slices are identical run to run (Percentile sorts, but
	// building the inputs in map order was still a determinism hazard).
	var candShort, candLong, baseShort, baseLong []float64
	for _, j := range t.Jobs {
		long := j.AvgTaskDuration() >= cutoff
		c, okc := candRT[j.ID]
		b, okb := baseRT[j.ID]
		if !okc || !okb {
			continue
		}
		if long {
			candLong = append(candLong, c)
			baseLong = append(baseLong, b)
		} else {
			candShort = append(candShort, c)
			baseShort = append(baseShort, b)
		}
	}
	shortP50 = stats.Ratio(stats.Percentile(candShort, 50), stats.Percentile(baseShort, 50))
	shortP90 = stats.Ratio(stats.Percentile(candShort, 90), stats.Percentile(baseShort, 90))
	longP50 = stats.Ratio(stats.Percentile(candLong, 50), stats.Percentile(baseLong, 50))
	longP90 = stats.Ratio(stats.Percentile(candLong, 90), stats.Percentile(baseLong, 90))
	return shortP50, shortP90, longP50, longP90
}

func allRuntimes(r *policy.Report) map[int]float64 {
	out := make(map[int]float64, len(r.Jobs))
	for _, j := range r.Jobs {
		out[j.ID] = j.Runtime
	}
	return out
}
