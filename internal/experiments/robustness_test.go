package experiments

import (
	"math"
	"testing"
)

// The headline robustness claim (§4 resilience): with the centralized
// scheduler scripted down mid-trace, randomized stealing keeps the general
// partition utilized. Skipped in -short mode like the other full-figure
// sweeps (15000 simulated nodes).
func TestRobustnessOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("full robustness figure in -short mode")
	}
	rows, err := RobustnessOutage(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want stealing + no-stealing", len(rows))
	}
	withSteal, noSteal := rows[0], rows[1]
	if withSteal.StealSuccesses == 0 {
		t.Fatal("stealing variant recorded no successful steals")
	}
	if noSteal.StealSuccesses != 0 {
		t.Fatal("no-stealing variant stole anyway")
	}
	if withSteal.OutageSeconds <= 0 || withSteal.CentralDeferred == 0 {
		t.Fatalf("outage did not bite: %+v", withSteal)
	}
	// The resilience argument itself: with stealing the general partition
	// stays busy through the outage — no worse than a modest drop from
	// its pre-outage level — and at least as utilized as without
	// stealing.
	if math.IsNaN(withSteal.GeneralUtilOutage) || math.IsNaN(withSteal.GeneralUtilBefore) {
		t.Fatal("general-partition utilization series empty")
	}
	if withSteal.GeneralUtilOutage < noSteal.GeneralUtilOutage {
		t.Errorf("stealing general-partition utilization %.3f below no-stealing %.3f during the outage",
			withSteal.GeneralUtilOutage, noSteal.GeneralUtilOutage)
	}
	if withSteal.GeneralUtilOutage < 0.5*withSteal.GeneralUtilBefore {
		t.Errorf("stealing did not sustain the general partition: %.3f during vs %.3f before",
			withSteal.GeneralUtilOutage, withSteal.GeneralUtilBefore)
	}
}

func TestRobustnessChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("full churn figure in -short mode")
	}
	rows, err := RobustnessChurn(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	churned, stable := rows[0], rows[1]
	if churned.NodeFailures != 4*300 || churned.NodeRecoveries != 4*300 {
		t.Errorf("failures/recoveries = %d/%d, want 1200/1200", churned.NodeFailures, churned.NodeRecoveries)
	}
	if churned.TasksReexecuted == 0 || churned.WorkLostSeconds <= 0 {
		t.Error("rolling failures interrupted no work")
	}
	if stable.NodeFailures != 0 || stable.TasksReexecuted != 0 {
		t.Error("stable baseline saw churn")
	}
}

// The message-loss sweep must cover every (policy, loss) point, engage the
// retry machinery at nonzero loss, and stay clean at zero.
func TestRobustnessFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault sweep in -short mode")
	}
	rows, err := RobustnessFaults(Scale{NumJobs: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(FaultLossSweep); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.ShortP50 <= 0 {
			t.Errorf("%s loss %.2f: short p50 %.2f", r.Policy, r.Loss, r.ShortP50)
		}
		if r.Loss == 0 && r.MessagesDropped != 0 {
			t.Errorf("%s lossless point dropped %d messages", r.Policy, r.MessagesDropped)
		}
		if r.Loss > 0 && r.MessagesDropped == 0 {
			t.Errorf("%s loss %.2f dropped nothing", r.Policy, r.Loss)
		}
		if r.Policy != "centralized" && r.Loss >= 0.05 && r.ProbeRetries == 0 {
			t.Errorf("%s loss %.2f: no probe retries", r.Policy, r.Loss)
		}
		if r.Policy == "centralized" && r.Loss > 0 && r.AssignRetries == 0 {
			t.Errorf("centralized loss %.2f: no assign retries", r.Loss)
		}
	}
}
