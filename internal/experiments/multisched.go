package experiments

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stats"
)

// The multi-scheduler experiment behind §4.10: the paper's prototype runs
// ten distributed schedulers, and the natural simulator question is how the
// shared-state optimistic-concurrency model degrades as the scheduler count
// grows — more schedulers means staler snapshots per placement and more
// claim conflicts on the contested servers, paid for in retries and central
// placement latency. This driver sweeps the count from one (the exact,
// conflict-free legacy path) to one hundred and reports the conflict rate
// alongside the runtime percentiles per job class.

// SchedulerCounts is the swept scheduler-count axis: 1 is the legacy
// single-scheduler baseline, 10 is the paper's prototype operating point
// (§4.10), 100 is the stress end.
var SchedulerCounts = []int{1, 2, 5, 10, 20, 50, 100}

// sweepSnapshotInterval is the refresh cadence the sweep runs at. It is
// deliberately coarser than the spec's 5 s default: contention needs the
// staleness window to be commensurate with per-scheduler placement gaps,
// and on a fixed-load trace those gaps grow linearly with the scheduler
// count. At the default cadence everything past a handful of schedulers is
// dormant between placements, wakes with a caught-up snapshot (exactly as
// the live engine's free-running ticker would have provided), and never
// conflicts — a true but uninteresting regime. At 60 s the sweep exposes
// both regimes: conflicts climb while schedulers stay mutually active,
// peak around the paper's ten-scheduler operating point, then fall off as
// dormancy makes placements effectively fresh again.
const sweepSnapshotInterval = 60

// MultiSchedRow is one scheduler count of the sweep.
type MultiSchedRow struct {
	Schedulers int

	// ConflictRate is placement conflicts per committed central assign —
	// the headline degradation curve (0 by construction at one scheduler).
	ConflictRate float64
	// RetriesPerConflict shows how often a lost claim resolved within the
	// bounded backoff budget rather than forcing a snapshot refresh.
	RetriesPerConflict float64
	// MeanStaleness is the mean snapshot age (seconds) at commit time.
	MeanStaleness float64

	ShortP50 float64
	ShortP90 float64
	LongP50  float64
	LongP90  float64

	PlacementConflicts int64
	ConflictRetries    int64
	SnapshotRefreshes  int64
	CentralAssigns     int64
}

// SchedulerSweep runs the candidate policy on the Google trace at the
// paper's 15000-node operating point for each count in SchedulerCounts,
// fanning the runs out over the scale's worker pool.
func SchedulerSweep(sc Scale) ([]MultiSchedRow, error) {
	// The scheduler count is this experiment's swept axis; a CLI -schedulers
	// overlay must not override it (and would corrupt the n=1 baseline).
	sc.Schedulers = nil
	t, err := GoogleTrace(sc)
	if err != nil {
		return nil, err
	}
	const nodes = 15000
	cfgs := make([]policy.Config, 0, len(SchedulerCounts))
	for _, n := range SchedulerCounts {
		cfg := policy.Config{NumNodes: nodes, Policy: sc.PolicyName(), Seed: sc.Seed}
		if n > 1 {
			cfg.Schedulers = &policy.SchedulerSpec{Count: n, SnapshotInterval: sweepSnapshotInterval}
		}
		cfgs = append(cfgs, cfg)
	}
	reports, err := runConfigs(t, cfgs, sc)
	if err != nil {
		return nil, fmt.Errorf("scheduler-sweep: %w", err)
	}
	rows := make([]MultiSchedRow, 0, len(reports))
	for i, r := range reports {
		row := MultiSchedRow{
			Schedulers:         SchedulerCounts[i],
			ShortP50:           stats.Percentile(r.ShortRuntimes(), 50),
			ShortP90:           stats.Percentile(r.ShortRuntimes(), 90),
			LongP50:            stats.Percentile(r.LongRuntimes(), 50),
			LongP90:            stats.Percentile(r.LongRuntimes(), 90),
			PlacementConflicts: r.PlacementConflicts,
			ConflictRetries:    r.ConflictRetries,
			SnapshotRefreshes:  r.SnapshotRefreshes,
			CentralAssigns:     r.CentralAssigns,
		}
		if r.CentralAssigns > 0 {
			row.ConflictRate = float64(r.PlacementConflicts) / float64(r.CentralAssigns)
			row.MeanStaleness = r.SnapshotStalenessSeconds / float64(r.CentralAssigns)
		}
		if r.PlacementConflicts > 0 {
			row.RetriesPerConflict = float64(r.ConflictRetries) / float64(r.PlacementConflicts)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
