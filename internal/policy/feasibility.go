package policy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// CheckFeasibility verifies, before any engine starts work, that every
// route the policy can take for every job is executable: a probe-scheduled
// job needs a candidate pool at least as wide as its task count (with
// batch sampling one probe yields at most one task, so a wider job could
// never finish — callers should scale traces down first with
// workload.Trace.CapTasks, as the paper does for its 100-node prototype),
// and a central route needs a declared central pool.
//
// The check runs against the cluster view's full membership minus the
// scenario's worst-case concurrent failures (failureMargin, from
// ChurnSpec.MaxConcurrentFailures): a churn script that could shrink a
// probe pool below the widest job is rejected up front — re-routing keeps
// probes alive across failures, but batch sampling still needs one live
// candidate per task at submission time. Pass margin 0 for a static run.
//
// classes returns the job classifications to check. Engines with exact
// estimates pass the single true class; the simulator passes both classes
// when mis-estimation can flip a job's class at runtime.
func CheckFeasibility(trace *workload.Trace, pol Policy, view *core.ClusterView, failureMargin int, classes func(*workload.Job) []bool) error {
	hasCentral := pol.CentralPool() != PoolNone
	for _, j := range trace.Jobs {
		for _, long := range classes(j) {
			dec := pol.Route(JobInfo{
				ID: j.ID, Tasks: j.NumTasks(), Estimate: j.AvgTaskDuration(), Long: long,
			})
			switch dec.Action {
			case ActionCentral:
				if !hasCentral {
					return fmt.Errorf("policy: %q routes jobs centrally but declares no central pool", pol.String())
				}
			default:
				n := dec.Pool.Size(view) - failureMargin
				if j.NumTasks() > n {
					if failureMargin > 0 {
						return fmt.Errorf("policy: job %d with %d tasks exceeds the %q probe pool's %d nodes surviving worst-case churn (%d concurrent failures); shrink the scenario or cap tasks",
							j.ID, j.NumTasks(), dec.Pool, n, failureMargin)
					}
					return fmt.Errorf("policy: job %d with %d tasks exceeds the %d-node %q probe pool; cap tasks first",
						j.ID, j.NumTasks(), n, dec.Pool)
				}
			}
		}
	}
	return nil
}

// CheckFeasibilityMeta is the streaming counterpart of CheckFeasibility:
// it checks a workload's up-front metadata without materializing any job.
// Structural errors — a central route with no declared central pool — are
// definitive and returned. The probe-pool width check uses the
// conservative Meta.MaxTasks bound under both classifications; when that
// bound fails the result is not a verdict (the widest job might route
// centrally), so the check returns perJob=true and the engine re-checks
// each job against its actual route at submission.
func CheckFeasibilityMeta(m workload.Meta, pol Policy, view *core.ClusterView, failureMargin int) (perJob bool, err error) {
	hasCentral := pol.CentralPool() != PoolNone
	for _, long := range []bool{false, true} {
		dec := pol.Route(JobInfo{ID: 0, Tasks: m.MaxTasks, Estimate: 1, Long: long})
		switch dec.Action {
		case ActionCentral:
			if !hasCentral {
				return false, fmt.Errorf("policy: %q routes jobs centrally but declares no central pool", pol.String())
			}
		default:
			if m.MaxTasks > dec.Pool.Size(view)-failureMargin {
				perJob = true
			}
		}
	}
	return perJob, nil
}
