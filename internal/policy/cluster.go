package policy

import (
	"fmt"
	"math"

	"repro/internal/randdist"
)

// The scenario spec for the dynamic cluster model: scripted membership
// transitions (node failures and recoveries, central-scheduler outages) and
// per-node speed heterogeneity. Both engines consume the same spec — the
// simulator turns churn events into typed simulation events on its virtual
// clock, the live engine replays them on a real-time controller — so a
// scenario written once runs on either. A Config with neither field set is
// the static, homogeneous cluster of the paper's baseline evaluation, and
// engines keep their fast paths (and byte-identical output) in that case.

// ChurnKind names one kind of scripted cluster transition.
type ChurnKind string

const (
	// ChurnFail removes a node from the cluster at the event time. Work on
	// the node is lost and re-routed: queued and in-flight probes are
	// re-sent to live nodes in the job's pool, queued and running centrally
	// placed tasks are re-assigned by the central scheduler, and a task
	// that was mid-execution re-executes from scratch elsewhere.
	ChurnFail ChurnKind = "fail"
	// ChurnRecover returns a node to the cluster, idle and empty.
	ChurnRecover ChurnKind = "recover"
	// ChurnCentralDown takes the centralized scheduler offline: jobs and
	// re-routed tasks that need central placement queue in a backlog until
	// it returns. Distributed probing and stealing continue — the paper's
	// §4 resilience argument.
	ChurnCentralDown ChurnKind = "central-down"
	// ChurnCentralUp brings the centralized scheduler back and drains the
	// backlog in arrival order.
	ChurnCentralUp ChurnKind = "central-up"
	// ChurnSchedFail fails one distributed scheduler (Node = scheduler id;
	// requires Config.Schedulers). Its queued retries and owned jobs are
	// re-assigned to the surviving schedulers by re-hashing; while no
	// scheduler is live, newly submitted jobs wait for a recovery.
	ChurnSchedFail ChurnKind = "scheduler-fail"
	// ChurnSchedRecover returns a failed scheduler to service with a fresh
	// cluster snapshot and drains work that waited on it.
	ChurnSchedRecover ChurnKind = "scheduler-recover"
)

// ChurnEvent is one scripted transition.
type ChurnEvent struct {
	// At is the event time in seconds: simulated seconds in the simulator,
	// real seconds since run start in the live engine.
	At float64 `json:"at"`
	// Kind selects the transition.
	Kind ChurnKind `json:"kind"`
	// Node is the explicit target node id for fail/recover events when
	// Count is zero.
	Node int `json:"node,omitempty"`
	// Count, when positive, targets Count nodes picked uniformly at random
	// (from the live set for fail, the dead set for recover) by the run's
	// seeded churn stream instead of the explicit Node.
	Count int `json:"count,omitempty"`
}

// ChurnSpec scripts a run's cluster transitions. Events fire in the listed
// order for equal times; the schedule is deterministic for a given seed.
type ChurnSpec struct {
	Events []ChurnEvent `json:"events"`
}

// validate checks the spec against the cluster size and the scheduler
// count (zero when the multi-scheduler model is off, which rejects
// scheduler events: they would have no schedulers to act on).
func (s *ChurnSpec) validate(totalSlots, schedulers int) error {
	for i, ev := range s.Events {
		if ev.At < 0 || math.IsNaN(ev.At) {
			return fmt.Errorf("config: churn event %d: time %g invalid", i, ev.At)
		}
		switch ev.Kind {
		case ChurnFail, ChurnRecover:
			if ev.Count < 0 {
				return fmt.Errorf("config: churn event %d: negative count %d", i, ev.Count)
			}
			if ev.Count == 0 && (ev.Node < 0 || ev.Node >= totalSlots) {
				return fmt.Errorf("config: churn event %d: node %d outside [0, %d)", i, ev.Node, totalSlots)
			}
			if ev.Count > totalSlots {
				return fmt.Errorf("config: churn event %d: count %d exceeds %d slots", i, ev.Count, totalSlots)
			}
		case ChurnCentralDown, ChurnCentralUp:
			// No target.
		case ChurnSchedFail, ChurnSchedRecover:
			if schedulers == 0 {
				return fmt.Errorf("config: churn event %d: %s requires Config.Schedulers", i, ev.Kind)
			}
			if ev.Count != 0 {
				return fmt.Errorf("config: churn event %d: %s targets one scheduler by Node, not Count", i, ev.Kind)
			}
			if ev.Node < 0 || ev.Node >= schedulers {
				return fmt.Errorf("config: churn event %d: scheduler %d outside [0, %d)", i, ev.Node, schedulers)
			}
		default:
			return fmt.Errorf("config: churn event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// MaxConcurrentFailures returns the worst-case number of simultaneously
// dead nodes over the scripted timeline — the margin the feasibility check
// subtracts from every probe pool, so a scenario that could shrink a pool
// below the widest job is rejected before the run instead of deadlocking
// inside it.
func (s *ChurnSpec) MaxConcurrentFailures() int {
	if s == nil {
		return 0
	}
	// Events apply in time order (stable for ties, matching the engines).
	type step struct {
		at    float64
		delta int
	}
	steps := make([]step, 0, len(s.Events))
	for _, ev := range s.Events {
		n := ev.Count
		if n == 0 {
			n = 1
		}
		switch ev.Kind {
		case ChurnFail:
			steps = append(steps, step{ev.At, n})
		case ChurnRecover:
			steps = append(steps, step{ev.At, -n})
		}
	}
	// Stable insertion sort by time (specs are short).
	for i := 1; i < len(steps); i++ {
		for j := i; j > 0 && steps[j].at < steps[j-1].at; j-- {
			steps[j], steps[j-1] = steps[j-1], steps[j]
		}
	}
	down, worst := 0, 0
	for _, st := range steps {
		down += st.delta
		if down < 0 {
			down = 0 // recovering more than failed is a no-op
		}
		if down > worst {
			worst = down
		}
	}
	return worst
}

// SpeedClass is one heterogeneity class: Fraction of the cluster runs at
// the given Speed factor (1 = nominal; a task of duration d takes d/Speed
// seconds on the node).
type SpeedClass struct {
	Fraction float64 `json:"fraction"`
	Speed    float64 `json:"speed"`
}

// Heterogeneity configures per-node speed factors. Nodes are assigned to
// classes by a seeded draw, so the assignment is deterministic per (seed,
// cluster size); any fraction not covered by a class runs at speed 1.
type Heterogeneity struct {
	Classes []SpeedClass `json:"classes"`
}

// validate checks fractions and speeds.
func (h *Heterogeneity) validate() error {
	sum := 0.0
	for i, c := range h.Classes {
		if c.Fraction < 0 || c.Fraction > 1 || math.IsNaN(c.Fraction) {
			return fmt.Errorf("config: heterogeneity class %d: fraction %g outside [0, 1]", i, c.Fraction)
		}
		if c.Speed <= 0 || math.IsNaN(c.Speed) || math.IsInf(c.Speed, 0) {
			return fmt.Errorf("config: heterogeneity class %d: speed %g must be positive and finite", i, c.Speed)
		}
		sum += c.Fraction
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("config: heterogeneity class fractions sum to %g > 1", sum)
	}
	return nil
}

// uniform reports whether the classes leave every node at speed 1, in which
// case engines skip the heterogeneous path entirely.
func (h *Heterogeneity) uniform() bool {
	for _, c := range h.Classes {
		if c.Fraction > 0 && c.Speed != 1 {
			return false
		}
	}
	return true
}

// Factors materializes the per-node speed slice for a cluster of n slots:
// each node draws its class independently from the seeded stream (class
// fractions as cumulative probabilities, remainder at speed 1). Both
// engines call this with the run seed, so the simulator and the live
// prototype agree on which node is slow. Returns nil when the spec leaves
// the cluster homogeneous.
func (h *Heterogeneity) Factors(n int, seed int64) []float64 {
	if h == nil || n <= 0 || h.uniform() {
		return nil
	}
	src := randdist.New(seed)
	speeds := make([]float64, n)
	for id := range speeds {
		u := src.Float64()
		speeds[id] = 1
		acc := 0.0
		for _, c := range h.Classes {
			acc += c.Fraction
			if u < acc {
				speeds[id] = c.Speed
				break
			}
		}
	}
	return speeds
}
