// Package policy defines the engine-agnostic scheduling API of this
// repository: the Policy interface, the string-keyed policy registry, the
// shared run Config consumed by both execution engines, and the unified
// Report every engine produces.
//
// A Policy decides *what* to do with a job — probe-sample a pool of nodes,
// hand the job to the centralized waiting-time queue — and which structural
// mechanisms (reserved short partition, randomized work stealing) are
// active. The execution engines (the discrete-event simulator in
// internal/sim and the live goroutine prototype in internal/liverun) decide
// *how* those decisions execute: event scheduling vs real goroutines, modelled
// vs injected network delay. Policies are built from the internal/core
// primitives, so the exact same policy code runs on both engines.
//
// The package is re-exported as the public top-level package hawk; external
// code should import repro/hawk.
//
// Policy decisions feed both engines' deterministic replay, so the package
// is guarded by hawklint's determinism analyzer:
//
//hawk:deterministic
//hawk:exporteddoc
package policy

import (
	"fmt"

	//hawk:allow registry-listing order only, once per process, never per event
	"sort"

	"sync"
)

// Pool identifies a set of candidate nodes relative to the cluster's
// partition (see core.Partition): the whole cluster, the general partition
// (nodes that may run long tasks), or the reserved short-only partition.
type Pool int

const (
	// PoolNone is the zero Pool: no nodes. Returned by CentralPool when a
	// policy has no centralized scheduler.
	PoolNone Pool = iota
	// PoolAll is every node in the cluster.
	PoolAll
	// PoolGeneral is the general partition (may run long tasks).
	PoolGeneral
	// PoolShort is the reserved short-only partition.
	PoolShort
)

// String names the pool for error messages and reports.
func (p Pool) String() string {
	switch p {
	case PoolNone:
		return "none"
	case PoolAll:
		return "all"
	case PoolGeneral:
		return "general"
	case PoolShort:
		return "short"
	default:
		return fmt.Sprintf("pool(%d)", int(p))
	}
}

// Action is the kind of placement a Decision requests.
type Action int

const (
	// ActionProbe places the job with Sparrow-style batch sampling:
	// ProbeRatio probes per task over the Decision's Pool (§3.5).
	ActionProbe Action = iota
	// ActionCentral places every task of the job with the centralized
	// waiting-time algorithm (§3.7) over the policy's CentralPool.
	ActionCentral
)

// String names the action.
func (a Action) String() string {
	if a == ActionCentral {
		return "central"
	}
	return "probe"
}

// Decision tells an engine how to place one job.
type Decision struct {
	// Action selects probe sampling or central assignment.
	Action Action
	// Pool is the probe candidate pool; meaningful only for ActionProbe.
	Pool Pool
}

// JobInfo is the engine-independent view of a job being routed. Long is the
// scheduler's classification of the job (it reflects mis-estimation when
// the run configures it).
type JobInfo struct {
	ID       int
	Tasks    int
	Estimate float64
	Long     bool
}

// Policy is a scheduling policy: given a classified job, decide where its
// work goes, and declare which cluster mechanisms the run needs. The four
// schedulers the Hawk paper evaluates — sparrow, hawk, centralized, split —
// are registered implementations; new policies plug in via Register without
// touching engine code.
type Policy interface {
	// String returns the registry name the policy was built from.
	String() string
	// ShortPartitionFraction is the fraction of nodes reserved for short
	// tasks (§3.4). Zero means no reservation.
	ShortPartitionFraction() float64
	// Route decides the placement of one job.
	Route(job JobInfo) Decision
	// CentralPool is the node pool the centralized waiting-time queue
	// spans, or PoolNone when the policy never assigns centrally.
	CentralPool() Pool
	// Steal reports whether idle nodes perform randomized work stealing
	// (§3.6).
	Steal() bool
}

// Factory builds a Policy instance from a (normalized) run configuration.
// The configuration carries the generic knobs — partition fraction, the
// Disable* ablation switches — that parameterize the built-in policies;
// custom factories are free to ignore it.
type Factory func(cfg Config) (Policy, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register makes a policy available under the given name. It panics if the
// name is empty or already taken, mirroring database/sql.Register: a
// duplicate registration is a programming error, not a runtime condition.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("policy: Register with empty name")
	}
	if f == nil {
		panic("policy: Register with nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: Register called twice for %q", name))
	}
	registry[name] = f
}

// Policies returns the sorted names of all registered policies.
func Policies() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry { //hawk:allow order-insensitive collect; names are sorted before being returned
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Registered reports whether a policy name is in the registry, without
// instantiating anything. Config.Normalize uses it so a custom factory
// that rejects some configurations is never probed with a fabricated one.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// New instantiates the named policy for a run configuration.
func New(name string, cfg Config) (Policy, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, Policies())
	}
	return f(cfg)
}

// ParsePolicy resolves a policy name to a default-configured instance of
// that policy, so p.String() round-trips the name for every built-in. It
// instantiates the factory with a zero Config; custom factories that
// reject some configurations should not be probed this way — use
// Registered for pure name validation (the CLIs do). Engines build their
// own instance from the run's resolved Config.
func ParsePolicy(name string) (Policy, error) {
	return New(name, Config{})
}
