package policy

import (
	"repro/internal/core"
	"repro/internal/randdist"
)

// The Pool → node-set mapping is a pure function of the cluster partition,
// shared by every engine so a new Pool value needs exactly one dispatch
// site per operation.

// Size returns the node count of the pool under a partition. Unknown Pool
// values size to zero so a buggy custom Decision fails loudly at the
// feasibility check instead of silently probing the whole cluster.
func (p Pool) Size(part core.Partition) int {
	switch p {
	case PoolAll:
		return part.NumNodes()
	case PoolGeneral:
		return part.GeneralNodes()
	case PoolShort:
		return part.ShortOnlyNodes()
	default:
		return 0
	}
}

// IDs enumerates the pool's node ids in increasing order.
func (p Pool) IDs(part core.Partition) []int {
	ids := make([]int, p.Size(part))
	for i := range ids {
		if p == PoolGeneral {
			ids[i] = part.GeneralID(i)
		} else {
			ids[i] = i
		}
	}
	return ids
}

// Sample draws k distinct random node ids from the pool.
func (p Pool) Sample(part core.Partition, src *randdist.Source, k int) []int {
	return p.SampleInto(nil, part, src, k)
}

// SampleInto is the scratch-buffer form of Sample: it appends the sampled
// ids to dst and returns the extended slice, drawing identically to Sample.
// The simulator threads a per-run buffer through here so probe placement
// performs zero heap allocations in steady state.
func (p Pool) SampleInto(dst []int, part core.Partition, src *randdist.Source, k int) []int {
	switch p {
	case PoolAll:
		return part.SampleAllInto(dst, src, k)
	case PoolGeneral:
		return part.SampleGeneralInto(dst, src, k)
	case PoolShort:
		return part.SampleShortInto(dst, src, k)
	default:
		return dst
	}
}
