package policy

import (
	"repro/internal/core"
	"repro/internal/randdist"
)

// The Pool → node-set mapping is a pure function of the cluster view
// (partition + live membership), shared by every engine so a new Pool value
// needs exactly one dispatch site per operation. On a static view every
// operation reduces to the partition arithmetic it always was; on a dynamic
// view sizes and samples reflect live membership only.

// Size returns the live node count of the pool under a cluster view.
// Unknown Pool values size to zero so a buggy custom Decision fails loudly
// at the feasibility check instead of silently probing the whole cluster.
func (p Pool) Size(view *core.ClusterView) int {
	switch p {
	case PoolAll:
		return view.AliveAll()
	case PoolGeneral:
		return view.AliveGeneral()
	case PoolShort:
		return view.AliveShort()
	default:
		return 0
	}
}

// IDs enumerates the pool's node ids under the static partition in
// increasing order — the full membership the pool starts from, regardless
// of later churn (engines apply membership transitions on top, e.g. via
// CentralQueue.Remove/Add).
func (p Pool) IDs(part core.Partition) []int {
	size := 0
	switch p {
	case PoolAll:
		size = part.NumNodes()
	case PoolGeneral:
		size = part.GeneralNodes()
	case PoolShort:
		size = part.ShortOnlyNodes()
	}
	ids := make([]int, size)
	for i := range ids {
		if p == PoolGeneral {
			ids[i] = part.GeneralID(i)
		} else {
			ids[i] = i
		}
	}
	return ids
}

// Contains reports whether the pool spans node id under the partition
// (ignoring membership — pools are static sets; aliveness is the view's).
func (p Pool) Contains(part core.Partition, id int) bool {
	if id < 0 || id >= part.NumNodes() {
		return false
	}
	switch p {
	case PoolAll:
		return true
	case PoolGeneral:
		return part.IsGeneral(id)
	case PoolShort:
		return !part.IsGeneral(id)
	default:
		return false
	}
}

// Sample draws k distinct random live node ids from the pool.
func (p Pool) Sample(view *core.ClusterView, src *randdist.Source, k int) []int {
	return p.SampleInto(nil, view, src, k)
}

// SampleInto is the scratch-buffer form of Sample: it appends the sampled
// ids to dst and returns the extended slice, drawing identically to Sample.
// The simulator threads a per-run buffer through here so probe placement
// performs zero heap allocations in steady state. On a static view the
// draws are bit-identical to sampling the Partition directly.
func (p Pool) SampleInto(dst []int, view *core.ClusterView, src *randdist.Source, k int) []int {
	switch p {
	case PoolAll:
		return view.SampleAllInto(dst, src, k)
	case PoolGeneral:
		return view.SampleGeneralInto(dst, src, k)
	case PoolShort:
		return view.SampleShortInto(dst, src, k)
	default:
		return dst
	}
}
