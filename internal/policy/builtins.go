package policy

// The four schedulers the Hawk paper evaluates, as registry entries. Each
// is a small value type resolved from the run Config once at construction;
// Route itself is pure, so engines may call it from any goroutine.

func init() {
	Register("sparrow", newSparrow)
	Register("hawk", newHawk)
	Register("centralized", newCentralized)
	Register("split", newSplit)
}

// sparrow is the fully distributed baseline: batch sampling with
// ProbeRatio probes per task over the entire cluster for all jobs. No
// reservation, no central queue, no stealing.
type sparrow struct{}

func newSparrow(Config) (Policy, error) { return sparrow{}, nil }

func (sparrow) String() string                  { return "sparrow" }
func (sparrow) ShortPartitionFraction() float64 { return 0 }
func (sparrow) Route(JobInfo) Decision          { return Decision{Action: ActionProbe, Pool: PoolAll} }
func (sparrow) CentralPool() Pool               { return PoolNone }
func (sparrow) Steal() bool                     { return false }

// hawkPolicy is the paper's hybrid scheduler: long jobs centrally placed in
// the general partition, short jobs probed over the whole cluster (§3.4,
// §3.5), a reserved short partition, and randomized work stealing. The
// Figure 7 ablation switches carve individual mechanisms out.
type hawkPolicy struct {
	fraction       float64
	disableCentral bool
	steal          bool
}

func newHawk(cfg Config) (Policy, error) {
	frac := cfg.ShortPartitionFraction
	if cfg.DisablePartition {
		frac = 0
	}
	return hawkPolicy{
		fraction:       frac,
		disableCentral: cfg.DisableCentral,
		steal:          !cfg.DisableStealing,
	}, nil
}

func (hawkPolicy) String() string                    { return "hawk" }
func (p hawkPolicy) ShortPartitionFraction() float64 { return p.fraction }

func (p hawkPolicy) Route(j JobInfo) Decision {
	if j.Long {
		if p.disableCentral {
			return Decision{Action: ActionProbe, Pool: PoolGeneral}
		}
		return Decision{Action: ActionCentral}
	}
	// Short jobs probe the whole cluster: the short partition plus any
	// idle general node (§3.4, §3.5).
	return Decision{Action: ActionProbe, Pool: PoolAll}
}

func (p hawkPolicy) CentralPool() Pool {
	if p.disableCentral {
		return PoolNone
	}
	return PoolGeneral
}

func (p hawkPolicy) Steal() bool { return p.steal }

// centralized schedules all jobs with the §3.7 centralized algorithm over
// the whole cluster (no partition, no stealing).
type centralized struct{}

func newCentralized(Config) (Policy, error) { return centralized{}, nil }

func (centralized) String() string                  { return "centralized" }
func (centralized) ShortPartitionFraction() float64 { return 0 }
func (centralized) Route(JobInfo) Decision          { return Decision{Action: ActionCentral} }
func (centralized) CentralPool() Pool               { return PoolAll }
func (centralized) Steal() bool                     { return false }

// split is the §4.6 baseline: a short partition running only short jobs
// (distributed) and a long partition running only long jobs (centralized);
// no overlap, no stealing.
type split struct {
	fraction float64
}

func newSplit(cfg Config) (Policy, error) {
	frac := cfg.ShortPartitionFraction
	if cfg.DisablePartition {
		frac = 0
	}
	return split{fraction: frac}, nil
}

func (split) String() string                    { return "split" }
func (p split) ShortPartitionFraction() float64 { return p.fraction }

func (p split) Route(j JobInfo) Decision {
	if j.Long {
		return Decision{Action: ActionCentral}
	}
	return Decision{Action: ActionProbe, Pool: PoolShort}
}

func (split) CentralPool() Pool { return PoolGeneral }
func (split) Steal() bool       { return false }
