package policy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Config parameterizes one scheduling run and is consumed by every engine.
// Zero values select the paper's defaults where meaningful (see field
// comments); Normalize resolves them against a trace exactly once, so the
// values recorded in a Report are the values the run actually used — with
// the user's requested NumNodes and SlotsPerNode kept distinct rather than
// folded together.
type Config struct {
	// Policy is the registry name of the scheduling policy (see Policies).
	// Empty selects "hawk".
	Policy string `json:"policy"`
	// NumNodes is the cluster size as requested by the user; required
	// (> 0). Engines run NumNodes*SlotsPerNode single-slot queues — see
	// TotalSlots — but this field always reports the requested value.
	NumNodes int `json:"numNodes"`
	// SlotsPerNode expands every node into this many independently queued
	// slots (default 1). The paper notes that one-slot nodes are
	// "analogous to having multi-slot nodes with each slot served by a
	// different queue" (§4.1); this knob makes the analogy executable.
	SlotsPerNode int `json:"slotsPerNode"`
	// NumSchedulers is the number of distributed schedulers in the live
	// engine; jobs spread over them round-robin (default 10, §4.10). The
	// simulator models schedulers as free and ignores it — unless
	// Schedulers turns on the multi-scheduler model below.
	NumSchedulers int `json:"numSchedulers,omitempty"`
	// Schedulers, when set, turns on the distributed multi-scheduler model
	// in both engines (§4.10): Count concurrent schedulers, each placing
	// against its own stale snapshot of the cluster with optimistic
	// claim/commit and bounded conflict retries, with jobs hash-partitioned
	// across the live schedulers. Nil (the default) is the legacy exact
	// single-scheduler model; Normalize also canonicalizes a spec that is
	// behaviorally equivalent to it (Count 1, no scheduler churn) back to
	// nil, so reports and goldens stay byte-identical in that case.
	Schedulers *SchedulerSpec `json:"schedulers,omitempty"`
	// Cutoff is the long/short classification threshold in seconds of
	// estimated task runtime. Zero means "use the trace default".
	Cutoff float64 `json:"cutoff"`
	// ShortPartitionFraction is the fraction of nodes reserved for short
	// tasks. Zero or negative means "use the trace default". Policies
	// without a reserved partition ignore it.
	ShortPartitionFraction float64 `json:"shortPartitionFraction"`
	// ProbeRatio is the batch-sampling probes-per-task ratio (default 2).
	ProbeRatio int `json:"probeRatio"`
	// StealCap bounds the random nodes contacted per steal attempt
	// (default 10). Only stealing policies use it.
	StealCap int `json:"stealCap"`
	// DisableStealing turns off work stealing (Figure 7 ablation).
	DisableStealing bool `json:"disableStealing,omitempty"`
	// StealRandomPositions replaces Figure 3's consecutive-group rule
	// with stealing the same number of short entries from random queue
	// positions — the alternative the paper argues against in §3.6.
	// Ablation only; off by default. Simulator only: the live engine
	// rejects it rather than silently stealing groups.
	StealRandomPositions bool `json:"stealRandomPositions,omitempty"`
	// DisablePartition makes the general partition span the whole
	// cluster (Figure 7 ablation).
	DisablePartition bool `json:"disablePartition,omitempty"`
	// DisableCentral schedules long jobs with distributed probing over
	// the general partition instead of centrally (Figure 7 ablation).
	DisableCentral bool `json:"disableCentral,omitempty"`
	// NetworkDelay is the one-way message delay in seconds (default
	// 0.5 ms, §4.1). The simulator models it; the live engine injects it
	// as real sleep.
	NetworkDelay float64 `json:"networkDelay"`
	// MisestimateLo/Hi define the uniform mis-estimation factor range of
	// §4.8. Both zero (or both one) means exact estimates. Simulator
	// only: the live prototype estimates exactly (§3.3) and rejects a
	// config requesting otherwise.
	MisestimateLo float64 `json:"misestimateLo,omitempty"`
	MisestimateHi float64 `json:"misestimateHi,omitempty"`
	// Churn scripts dynamic cluster membership: node failures and
	// recoveries plus central-scheduler outages, applied by both engines.
	// Nil (the default) is a static cluster — engines keep their fast
	// paths and byte-identical output.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Heterogeneity assigns per-node speed factors (task durations scale
	// by 1/speed at the executing node). Nil is a homogeneous cluster.
	// Node-to-class assignment draws from Seed+2, shared by both engines.
	Heterogeneity *Heterogeneity `json:"heterogeneity,omitempty"`
	// Faults turns on the gray-failure injection plane: seeded per-class
	// message loss, delay jitter, scripted mid-run stragglers, and the
	// timeout/retry/speculation defenses (see FaultSpec). Nil (the
	// default) is a reliable network — engines keep their fast paths and
	// byte-identical output. All fault randomness draws from a dedicated
	// stream (Seed+5), composable with Churn, Heterogeneity, and
	// Schedulers.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Seed drives all randomness (probe placement, steal victims,
	// mis-estimation draws). Equal seeds give identical simulator runs.
	Seed int64 `json:"seed"`
	// DiscardJobReports drops the per-job Report.Jobs slice (and the raw
	// per-entry wait slices): per-class percentiles are instead aggregated
	// into bounded reservoirs (Report.Streamed), so report memory stays
	// O(1) however long the workload. Meant for streamed full-scale runs;
	// combine with JobSink to still persist every job. Simulator only.
	DiscardJobReports bool `json:"discardJobReports,omitempty"`
	// JobSink, when set, receives every completed job's JobReport in
	// completion order as the run executes. A non-nil error aborts the run
	// after the current drain. Composable with DiscardJobReports for
	// O(1)-memory runs that stream per-job results to disk. Not part of
	// the serialized config. Simulator only.
	JobSink func(JobReport) error `json:"-"`
	// UtilizationInterval is the utilization sampling period in seconds
	// (default 100, §2.3/§4.2). Simulator only.
	UtilizationInterval float64 `json:"utilizationInterval,omitempty"`
}

// Option mutates a Config under construction; see NewConfig.
type Option func(*Config)

// NewConfig builds a Config for the named policy from functional options:
//
//	cfg := policy.NewConfig("hawk", policy.WithNodes(15000), policy.WithSeed(42))
//
// Defaults are still resolved by Normalize at run time, so an option left
// out means "paper default", exactly as for a zero struct field.
func NewConfig(policyName string, opts ...Option) Config {
	c := Config{Policy: policyName}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithNodes sets the cluster size.
func WithNodes(n int) Option { return func(c *Config) { c.NumNodes = n } }

// WithSlotsPerNode sets the execution slots per node.
func WithSlotsPerNode(s int) Option { return func(c *Config) { c.SlotsPerNode = s } }

// WithSchedulers sets the distributed scheduler count and, for n > 1,
// turns on the multi-scheduler model in both engines (stale snapshots,
// optimistic claim/commit, hash-partitioned jobs — see SchedulerSpec). Use
// WithSchedulerSpec to also tune the snapshot cadence and retry policy.
func WithSchedulers(n int) Option {
	return func(c *Config) {
		c.NumSchedulers = n
		c.Schedulers = &SchedulerSpec{Count: n}
	}
}

// WithSchedulerSpec installs a full multi-scheduler spec (count, snapshot
// interval, conflict-retry policy).
func WithSchedulerSpec(spec SchedulerSpec) Option {
	return func(c *Config) {
		s := spec
		c.Schedulers = &s
		if s.Count > 0 {
			c.NumSchedulers = s.Count
		}
	}
}

// WithSchedulerChurn appends a scheduler fail/recover pair to the run's
// churn script (recoverAt <= failAt: the scheduler never recovers).
func WithSchedulerChurn(scheduler int, failAt, recoverAt float64) Option {
	return func(c *Config) {
		if c.Churn == nil {
			c.Churn = &ChurnSpec{}
		}
		c.Churn.Events = append(c.Churn.Events, SchedulerChurn(scheduler, failAt, recoverAt)...)
	}
}

// WithCutoff sets the long/short cutoff in seconds.
func WithCutoff(sec float64) Option { return func(c *Config) { c.Cutoff = sec } }

// WithShortPartitionFraction sets the reserved short-partition fraction.
func WithShortPartitionFraction(f float64) Option {
	return func(c *Config) { c.ShortPartitionFraction = f }
}

// WithProbeRatio sets the batch-sampling probes-per-task ratio.
func WithProbeRatio(r int) Option { return func(c *Config) { c.ProbeRatio = r } }

// WithStealCap bounds the nodes contacted per steal attempt.
func WithStealCap(n int) Option { return func(c *Config) { c.StealCap = n } }

// WithoutStealing disables randomized work stealing.
func WithoutStealing() Option { return func(c *Config) { c.DisableStealing = true } }

// WithRandomPositionStealing enables the §3.6 random-position ablation.
func WithRandomPositionStealing() Option {
	return func(c *Config) { c.StealRandomPositions = true }
}

// WithoutPartition disables the reserved short partition.
func WithoutPartition() Option { return func(c *Config) { c.DisablePartition = true } }

// WithoutCentral replaces centralized long-job placement with probing.
func WithoutCentral() Option { return func(c *Config) { c.DisableCentral = true } }

// WithNetworkDelay sets the one-way message delay in seconds.
func WithNetworkDelay(sec float64) Option { return func(c *Config) { c.NetworkDelay = sec } }

// WithMisestimation sets the uniform mis-estimation factor range of §4.8.
func WithMisestimation(lo, hi float64) Option {
	return func(c *Config) { c.MisestimateLo, c.MisestimateHi = lo, hi }
}

// WithChurn scripts cluster transitions: node failures/recoveries and
// central-scheduler outages. Events fire in listed order for equal times.
func WithChurn(events ...ChurnEvent) Option {
	return func(c *Config) { c.Churn = &ChurnSpec{Events: events} }
}

// WithHeterogeneity assigns per-node speed classes; any fraction not
// covered runs at the nominal speed 1.
func WithHeterogeneity(classes ...SpeedClass) Option {
	return func(c *Config) { c.Heterogeneity = &Heterogeneity{Classes: classes} }
}

// WithSpeedSkew is the one-knob heterogeneity shorthand: fraction of the
// cluster runs at the given speed factor, the rest at 1.
func WithSpeedSkew(fraction, speed float64) Option {
	return WithHeterogeneity(SpeedClass{Fraction: fraction, Speed: speed})
}

// WithSeed sets the seed driving all randomness.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithDiscardedJobReports drops per-job reports in favor of bounded
// reservoir aggregates (Report.Streamed), keeping report memory O(1) on
// full-scale streamed runs. Simulator only.
func WithDiscardedJobReports() Option { return func(c *Config) { c.DiscardJobReports = true } }

// WithJobSink streams every completed job's report to sink in completion
// order as the run executes. Simulator only.
func WithJobSink(sink func(JobReport) error) Option {
	return func(c *Config) { c.JobSink = sink }
}

// WithUtilizationInterval sets the simulator's utilization sampling period.
func WithUtilizationInterval(sec float64) Option {
	return func(c *Config) { c.UtilizationInterval = sec }
}

// TotalSlots is the number of single-slot FIFO queues an engine runs: the
// requested node count times the slots per node. An unset SlotsPerNode
// counts as the default 1, so the method is meaningful before Normalize.
func (c Config) TotalSlots() int {
	if c.SlotsPerNode <= 0 {
		return c.NumNodes
	}
	return c.NumNodes * c.SlotsPerNode
}

// Normalize validates the configuration and resolves defaults against the
// trace. It is idempotent; engines call it once on entry so defaults are
// resolved exactly once per run and the returned Config is what the run
// actually used.
func (c Config) Normalize(t *workload.Trace) (Config, error) {
	return c.NormalizeMeta(workload.Meta{
		Cutoff:                 t.Cutoff,
		ShortPartitionFraction: t.ShortPartitionFraction,
	})
}

// NormalizeMeta is Normalize against a workload's up-front metadata instead
// of a materialized trace — the form streamed runs use, since only the
// trace-default Cutoff and ShortPartitionFraction are consulted.
func (c Config) NormalizeMeta(m workload.Meta) (Config, error) {
	if c.Policy == "" {
		c.Policy = "hawk"
	}
	if !Registered(c.Policy) {
		return c, fmt.Errorf("policy: unknown policy %q (registered: %v)", c.Policy, Policies())
	}
	if c.NumNodes <= 0 {
		return c, fmt.Errorf("config: NumNodes must be positive, got %d", c.NumNodes)
	}
	if c.SlotsPerNode < 0 {
		return c, fmt.Errorf("config: SlotsPerNode must be non-negative, got %d", c.SlotsPerNode)
	}
	if c.SlotsPerNode == 0 {
		c.SlotsPerNode = 1
	}
	if c.NumSchedulers < 0 {
		return c, fmt.Errorf("config: NumSchedulers must be non-negative, got %d", c.NumSchedulers)
	}
	if c.NumSchedulers == 0 {
		c.NumSchedulers = 10
	}
	if c.Cutoff == 0 {
		c.Cutoff = m.Cutoff
	}
	if c.Cutoff <= 0 {
		return c, fmt.Errorf("config: cutoff must be positive, got %g", c.Cutoff)
	}
	if c.ShortPartitionFraction <= 0 {
		c.ShortPartitionFraction = m.ShortPartitionFraction
	}
	if c.ShortPartitionFraction > 1 {
		return c, fmt.Errorf("config: ShortPartitionFraction must be at most 1, got %g", c.ShortPartitionFraction)
	}
	if c.ProbeRatio <= 0 {
		c.ProbeRatio = core.DefaultProbeRatio
	}
	if c.StealCap <= 0 {
		c.StealCap = core.DefaultStealCap
	}
	if c.NetworkDelay < 0 {
		return c, fmt.Errorf("config: NetworkDelay must be non-negative, got %g", c.NetworkDelay)
	}
	if c.NetworkDelay == 0 {
		c.NetworkDelay = core.DefaultNetworkDelay
	}
	if c.MisestimateLo < 0 || c.MisestimateHi < c.MisestimateLo {
		return c, fmt.Errorf("config: mis-estimation range [%g, %g] invalid: need 0 <= lo <= hi",
			c.MisestimateLo, c.MisestimateHi)
	}
	if c.UtilizationInterval <= 0 {
		c.UtilizationInterval = 100
	}
	if c.Schedulers != nil {
		// Copy before resolving so a spec shared across sweep configs is
		// never mutated through the pointer.
		spec, err := c.Schedulers.normalize(c.NumSchedulers, c.NetworkDelay)
		if err != nil {
			return c, err
		}
		if spec.Count == 1 && !c.Churn.HasSchedulerEvents() {
			// One scheduler with nothing to fail is exactly the legacy
			// model: drop the spec so the run (and its serialized config)
			// is bit-identical to a run that never set it.
			c.Schedulers = nil
		} else {
			c.Schedulers = &spec
			c.NumSchedulers = spec.Count
		}
	} else if c.Churn.HasSchedulerEvents() {
		return c, fmt.Errorf("config: scheduler churn events require Config.Schedulers")
	}
	if c.Churn != nil {
		schedulers := 0
		if c.Schedulers != nil {
			schedulers = c.Schedulers.Count
		}
		if err := c.Churn.validate(c.TotalSlots(), schedulers); err != nil {
			return c, err
		}
	}
	if c.Heterogeneity != nil {
		if err := c.Heterogeneity.validate(); err != nil {
			return c, err
		}
	}
	if c.Faults != nil {
		// Copy before resolving, like Schedulers, so a spec shared across
		// sweep configs is never mutated through the pointer.
		spec, err := c.Faults.normalize(c.TotalSlots(), c.NetworkDelay)
		if err != nil {
			return c, err
		}
		if spec.injectsNothing() {
			// A spec that injects no faults is exactly the reliable
			// network: drop it so the run (and its serialized config) is
			// bit-identical to a run that never set it.
			c.Faults = nil
		} else {
			c.Faults = &spec
		}
	}
	return c, nil
}

// ExactEstimates reports whether the mis-estimation range leaves estimates
// exact (see core.Estimator): both bounds zero or both one.
func (c Config) ExactEstimates() bool {
	return (c.MisestimateLo == 0 && c.MisestimateHi == 0) ||
		(c.MisestimateLo == 1 && c.MisestimateHi == 1)
}
