package policy

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteResultsCSV exports per-job outcomes as CSV with a header row:
//
//	jobID,submitTime,runtime,tasks,long,trueLong,estimate
//
// so runs can be post-processed or plotted outside Go. The format is
// engine-independent: both the simulator and the live engine fill every
// column.
func WriteResultsCSV(w io.Writer, r *Report) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"jobID", "submitTime", "runtime", "tasks", "long", "trueLong", "estimate"}); err != nil {
		return err
	}
	for _, j := range r.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatFloat(j.SubmitTime, 'g', -1, 64),
			strconv.FormatFloat(j.Runtime, 'g', -1, 64),
			strconv.Itoa(j.Tasks),
			strconv.FormatBool(j.Long),
			strconv.FormatBool(j.TrueLong),
			strconv.FormatFloat(j.Estimate, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("policy: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveResultsCSV writes per-job outcomes to path.
func SaveResultsCSV(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteResultsCSV(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadResultsCSV parses a file written by WriteResultsCSV back into job
// reports (the scalar Report fields are not part of the format).
func ReadResultsCSV(r io.Reader) ([]JobReport, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("policy: empty results file")
	}
	out := make([]JobReport, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != 7 {
			return nil, fmt.Errorf("policy: results row %d has %d fields, want 7", i+2, len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad id: %w", i+2, err)
		}
		submit, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad submit: %w", i+2, err)
		}
		runtime, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad runtime: %w", i+2, err)
		}
		tasks, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad tasks: %w", i+2, err)
		}
		long, err := strconv.ParseBool(rec[4])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad long flag: %w", i+2, err)
		}
		trueLong, err := strconv.ParseBool(rec[5])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad trueLong flag: %w", i+2, err)
		}
		est, err := strconv.ParseFloat(rec[6], 64)
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad estimate: %w", i+2, err)
		}
		out = append(out, JobReport{
			ID: id, SubmitTime: submit, Runtime: runtime,
			Tasks: tasks, Long: long, TrueLong: trueLong, Estimate: est,
		})
	}
	return out, nil
}
