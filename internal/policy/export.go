package policy

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteResultsCSV exports per-job outcomes as CSV with a header row:
//
//	jobID,submitTime,runtime,tasks,long,trueLong,estimate
//
// so runs can be post-processed or plotted outside Go. The format is
// engine-independent: both the simulator and the live engine fill every
// column.
func WriteResultsCSV(w io.Writer, r *Report) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"jobID", "submitTime", "runtime", "tasks", "long", "trueLong", "estimate"}); err != nil {
		return err
	}
	for _, j := range r.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatFloat(j.SubmitTime, 'g', -1, 64),
			strconv.FormatFloat(j.Runtime, 'g', -1, 64),
			strconv.Itoa(j.Tasks),
			strconv.FormatBool(j.Long),
			strconv.FormatBool(j.TrueLong),
			strconv.FormatFloat(j.Estimate, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("policy: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// JobCSVSink streams per-job outcomes to CSV row by row, in the exact
// WriteResultsCSV format, as the run executes. It is the Config.JobSink
// counterpart of WriteResultsCSV for streamed runs: every job is persisted
// at completion and never retained, so exporting a multi-million-job run
// needs O(1) memory. Rows buffer through a bufio.Writer; call Close (or
// Flush) when the run returns.
type JobCSVSink struct {
	bw *bufio.Writer
	cw *csv.Writer
	f  *os.File // owned file when created by CreateJobCSVSink, else nil
	// rec is the reused row buffer; Sink fully overwrites it each call.
	rec [7]string
}

// NewJobCSVSink starts a CSV stream on w, writing the header row
// immediately. Pass sink.Sink as Config.JobSink.
func NewJobCSVSink(w io.Writer) (*JobCSVSink, error) {
	s := &JobCSVSink{bw: bufio.NewWriter(w)}
	s.cw = csv.NewWriter(s.bw)
	if err := s.cw.Write([]string{"jobID", "submitTime", "runtime", "tasks", "long", "trueLong", "estimate"}); err != nil {
		return nil, err
	}
	return s, nil
}

// CreateJobCSVSink creates path and starts a CSV stream on it; Close also
// closes the file.
func CreateJobCSVSink(path string) (*JobCSVSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s, err := NewJobCSVSink(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	return s, nil
}

// Sink appends one job row. It has the Config.JobSink signature.
func (s *JobCSVSink) Sink(j JobReport) error {
	s.rec[0] = strconv.Itoa(j.ID)
	s.rec[1] = strconv.FormatFloat(j.SubmitTime, 'g', -1, 64)
	s.rec[2] = strconv.FormatFloat(j.Runtime, 'g', -1, 64)
	s.rec[3] = strconv.Itoa(j.Tasks)
	s.rec[4] = strconv.FormatBool(j.Long)
	s.rec[5] = strconv.FormatBool(j.TrueLong)
	s.rec[6] = strconv.FormatFloat(j.Estimate, 'g', -1, 64)
	if err := s.cw.Write(s.rec[:]); err != nil {
		return fmt.Errorf("policy: writing job %d: %w", j.ID, err)
	}
	return nil
}

// Flush drains buffered rows to the underlying writer.
func (s *JobCSVSink) Flush() error {
	s.cw.Flush()
	if err := s.cw.Error(); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Close flushes and, when the sink owns its file, closes it.
func (s *JobCSVSink) Close() error {
	err := s.Flush()
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// SaveResultsCSV writes per-job outcomes to path.
func SaveResultsCSV(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteResultsCSV(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadResultsCSV parses a file written by WriteResultsCSV back into job
// reports (the scalar Report fields are not part of the format).
func ReadResultsCSV(r io.Reader) ([]JobReport, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("policy: empty results file")
	}
	out := make([]JobReport, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != 7 {
			return nil, fmt.Errorf("policy: results row %d has %d fields, want 7", i+2, len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad id: %w", i+2, err)
		}
		submit, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad submit: %w", i+2, err)
		}
		runtime, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad runtime: %w", i+2, err)
		}
		tasks, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad tasks: %w", i+2, err)
		}
		long, err := strconv.ParseBool(rec[4])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad long flag: %w", i+2, err)
		}
		trueLong, err := strconv.ParseBool(rec[5])
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad trueLong flag: %w", i+2, err)
		}
		est, err := strconv.ParseFloat(rec[6], 64)
		if err != nil {
			return nil, fmt.Errorf("policy: results row %d: bad estimate: %w", i+2, err)
		}
		out = append(out, JobReport{
			ID: id, SubmitTime: submit, Runtime: runtime,
			Tasks: tasks, Long: long, TrueLong: trueLong, Estimate: est,
		})
	}
	return out, nil
}
