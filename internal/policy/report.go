package policy

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/stats"
)

// JobReport records the outcome for one job, in any engine.
type JobReport struct {
	ID         int     `json:"id"`
	SubmitTime float64 `json:"submitTime"`
	// Runtime is the completion of the job's last task minus its
	// submission, in seconds (a job completes only after all its tasks,
	// §3.1). Simulated seconds in the simulator, wall-clock seconds in
	// the live engine.
	Runtime float64 `json:"runtime"`
	Tasks   int     `json:"tasks"`
	// Long is the scheduler's classification (with mis-estimation, if
	// configured); TrueLong is the classification under exact estimates,
	// used by Figure 14's reporting.
	Long     bool    `json:"long"`
	TrueLong bool    `json:"trueLong"`
	Estimate float64 `json:"estimate"`
	// DuringOutage marks jobs submitted while the centralized scheduler
	// was scripted down (ChurnCentralDown); the robustness experiments
	// split latency on it. Always false on a run without outage events.
	DuringOutage bool `json:"duringOutage,omitempty"`
}

// Report aggregates one run's outputs in the schema shared by every
// engine, so experiments, benchmarks, and CLIs compare engines
// apples-to-apples. Engine-specific fields are zero where an engine does
// not produce them.
type Report struct {
	// Engine names the engine that produced the report: "sim" for the
	// discrete-event simulator, "live" for the goroutine prototype.
	Engine string `json:"engine"`
	// Policy is the registry name of the scheduling policy that ran.
	Policy string `json:"policy"`
	// Config is the fully resolved configuration of the run, with the
	// user's requested NumNodes and SlotsPerNode kept as requested.
	Config Config `json:"config"`

	Jobs []JobReport `json:"jobs"`
	// Makespan is the completion time of the last job in seconds:
	// simulated time for the simulator, wall-clock time for the live
	// engine.
	Makespan float64 `json:"makespan"`
	// Utilization is the periodically sampled fraction of busy slots
	// (simulator only).
	Utilization stats.UtilizationSeries `json:"-"`
	// GeneralUtilization is the periodically sampled fraction of busy
	// slots among the *live general partition* (simulator only) — the
	// series the central-outage robustness figure plots to show stealing
	// keeping the general partition utilized while the centralized queue
	// is down.
	GeneralUtilization stats.UtilizationSeries `json:"-"`

	// Mechanism counters.
	ProbesSent     int64  `json:"probesSent"`
	Cancels        int64  `json:"cancels"`
	TasksExecuted  int64  `json:"tasksExecuted"`
	StealAttempts  int64  `json:"stealAttempts"`  // idle transitions that tried to steal
	StealContacts  int64  `json:"stealContacts"`  // victim nodes contacted (simulator only)
	StealSuccesses int64  `json:"stealSuccesses"` // attempts that stole a group
	EntriesStolen  int64  `json:"entriesStolen"`  // queue entries moved by stealing
	CentralAssigns int64  `json:"centralAssigns"`
	Events         uint64 `json:"events,omitempty"` // simulator event count

	// Dynamic-cluster counters, all zero (and omitted from JSON) on a run
	// without churn/heterogeneity so static reports are unchanged.
	NodeFailures   int64 `json:"nodeFailures,omitempty"`   // scripted node failures applied
	NodeRecoveries int64 `json:"nodeRecoveries,omitempty"` // scripted node recoveries applied
	// TasksReexecuted counts tasks that had started executing on a node
	// that failed and were re-run from scratch elsewhere.
	TasksReexecuted int64 `json:"tasksReexecuted,omitempty"`
	// ProbesLost counts batch-sampling probes lost to node failures
	// (queued on, in flight to, or awaiting reply at a failed node); each
	// is re-sent to a live node, so it also counts probe re-sends.
	ProbesLost int64 `json:"probesLost,omitempty"`
	// WorkLostSeconds is the execution time thrown away by failures: for
	// every task interrupted mid-run, the seconds it had been executing.
	WorkLostSeconds float64 `json:"workLostSeconds,omitempty"`
	// CentralDeferred counts placements (whole jobs at submission, single
	// tasks on re-route) parked in the backlog while the centralized
	// scheduler was down or had no live servers.
	CentralDeferred int64 `json:"centralDeferred,omitempty"`
	// CentralOutageSeconds is the total scripted central-scheduler
	// downtime that elapsed during the run.
	CentralOutageSeconds float64 `json:"centralOutageSeconds,omitempty"`

	// Multi-scheduler counters, all zero (and omitted from JSON) unless
	// Config.Schedulers turns on the concurrent-scheduler model.
	//
	// PlacementConflicts counts optimistic placements that failed their
	// claim: another scheduler had claimed the node after this scheduler's
	// snapshot (or the node had died unseen).
	PlacementConflicts int64 `json:"placementConflicts,omitempty"`
	// ConflictRetries counts conflicted placements re-tried after the
	// backoff; a conflict that had exhausted its retries instead forces a
	// snapshot refresh (so forced refreshes = conflicts - retries).
	ConflictRetries int64 `json:"conflictRetries,omitempty"`
	// SnapshotRefreshes counts cluster-snapshot refreshes across all
	// schedulers: periodic, post-dormancy catch-ups, and conflict-forced.
	SnapshotRefreshes int64 `json:"snapshotRefreshes,omitempty"`
	// SnapshotStalenessSeconds sums, over every committed central
	// placement, the age of the placing scheduler's snapshot at commit
	// time; divided by CentralAssigns it is the mean staleness a placement
	// decision was made against.
	SnapshotStalenessSeconds float64 `json:"snapshotStalenessSeconds,omitempty"`
	// SchedulerFailures / SchedulerRecoveries count scripted scheduler
	// churn events applied.
	SchedulerFailures   int64 `json:"schedulerFailures,omitempty"`
	SchedulerRecoveries int64 `json:"schedulerRecoveries,omitempty"`
	// SchedulerReassigned counts job-to-scheduler re-assignments after a
	// scheduler failure (each re-hash of an affected job counts once).
	SchedulerReassigned int64 `json:"schedulerReassigned,omitempty"`

	// Gray-failure counters, all zero (and omitted from JSON) unless
	// Config.Faults turns on the fault-injection plane.
	//
	// MessagesDropped counts injected message drops by class; nil on a
	// fault-free run so serialized reports are unchanged.
	MessagesDropped *MessageDrops `json:"messagesDropped,omitempty"`
	// ProbeTimeouts counts timeouts fired for dropped probe and
	// task-request messages (one per drop noticed, scheduler- or
	// node-side).
	ProbeTimeouts int64 `json:"probeTimeouts,omitempty"`
	// ProbeRetries counts probe/task-request re-sends after a timeout
	// (bounded by Faults.MaxRetries per probe).
	ProbeRetries int64 `json:"probeRetries,omitempty"`
	// AssignRetries counts central-assignment (and multi-scheduler commit)
	// re-sends after a dropped placement message.
	AssignRetries int64 `json:"assignRetries,omitempty"`
	// FallbacksToCentral counts probes that exhausted their retries and
	// degraded to a direct placement: through the central queue when the
	// policy has one, else straight to a live pool node.
	FallbacksToCentral int64 `json:"fallbacksToCentral,omitempty"`
	// SpeculativeLaunches counts duplicate task launches; of those,
	// SpeculativeWins finished before the original (which was cancelled)
	// and SpeculativeWasted lost to it (duplicate work thrown away).
	SpeculativeLaunches int64 `json:"speculativeLaunches,omitempty"`
	SpeculativeWins     int64 `json:"speculativeWins,omitempty"`
	SpeculativeWasted   int64 `json:"speculativeWasted,omitempty"`
	// StragglerSlowdowns counts scripted straggler slowdown applications
	// (one per affected node per event).
	StragglerSlowdowns int64 `json:"stragglerSlowdowns,omitempty"`

	// Per-entry queueing waits (time from arrival at a node to the slot
	// opening), split by the owning job's class. Diagnostics for the
	// head-of-line-blocking analyses (simulator only).
	ShortEntryWaits []float64 `json:"-"`
	LongEntryWaits  []float64 `json:"-"`

	// Streamed holds the bounded-memory aggregates of a run with
	// Config.DiscardJobReports set: per-class job counts and reservoir
	// samples standing in for the Jobs slice and the wait slices (which
	// are then empty). Nil on a run retaining per-job reports.
	Streamed *StreamedStats `json:"streamed,omitempty"`
}

// DefaultReservoirSize is the per-class reservoir capacity used when
// Config.DiscardJobReports turns on streamed aggregation: percentiles stay
// exact up to this many samples per class and become tight estimates
// beyond, while report memory stays constant.
const DefaultReservoirSize = 4096

// StreamedStats aggregates per-job outcomes with O(1) memory: class
// counts and fixed-capacity uniform reservoirs of the runtimes and queue
// waits. It stands in for Report.Jobs on runs that discard per-job
// reports; Report.Percentile and Report.Summary consult it transparently.
type StreamedStats struct {
	ShortJobs int64 `json:"shortJobs"`
	LongJobs  int64 `json:"longJobs"`
	// TrueShortJobs/TrueLongJobs count by the exact-estimate class (the
	// scheduler's view can differ under mis-estimation).
	TrueShortJobs int64 `json:"trueShortJobs"`
	TrueLongJobs  int64 `json:"trueLongJobs"`
	// OutageJobs counts jobs submitted during a scripted central outage.
	OutageJobs int64 `json:"outageJobs,omitempty"`

	shortRuntimes *stats.Reservoir
	longRuntimes  *stats.Reservoir
	shortWaits    *stats.Reservoir
	longWaits     *stats.Reservoir
}

// NewStreamedStats builds the aggregate with the given per-class reservoir
// capacity. The four reservoirs draw from consecutive sub-seeds so the
// aggregate is a pure function of (capacity, seed, observation sequence).
func NewStreamedStats(capacity int, seed int64) *StreamedStats {
	return &StreamedStats{
		shortRuntimes: stats.NewReservoir(capacity, seed),
		longRuntimes:  stats.NewReservoir(capacity, seed+1),
		shortWaits:    stats.NewReservoir(capacity, seed+2),
		longWaits:     stats.NewReservoir(capacity, seed+3),
	}
}

// ObserveJob folds one completed job into the aggregate.
//
//hawk:hotpath
func (st *StreamedStats) ObserveJob(j JobReport) {
	if j.Long {
		st.LongJobs++
		st.longRuntimes.Add(j.Runtime)
	} else {
		st.ShortJobs++
		st.shortRuntimes.Add(j.Runtime)
	}
	if j.TrueLong {
		st.TrueLongJobs++
	} else {
		st.TrueShortJobs++
	}
	if j.DuringOutage {
		st.OutageJobs++
	}
}

// ObserveWait folds one queue-entry wait into the aggregate.
//
//hawk:hotpath
func (st *StreamedStats) ObserveWait(w float64, long bool) {
	if long {
		st.longWaits.Add(w)
	} else {
		st.shortWaits.Add(w)
	}
}

// RuntimeReservoir returns the runtime reservoir for the class.
func (st *StreamedStats) RuntimeReservoir(long bool) *stats.Reservoir {
	if long {
		return st.longRuntimes
	}
	return st.shortRuntimes
}

// WaitReservoir returns the queue-wait reservoir for the class.
func (st *StreamedStats) WaitReservoir(long bool) *stats.Reservoir {
	if long {
		return st.longWaits
	}
	return st.shortWaits
}

// runtimes returns per-class runtimes selected by sel. It counts the
// matches first and allocates exactly: the callers immediately hand the
// slice to sorting statistics, so over-reserving len(r.Jobs) for what is
// typically a small class was pure waste.
func (r *Report) runtimes(sel func(JobReport) bool) []float64 {
	n := 0
	for _, j := range r.Jobs {
		if sel(j) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for _, j := range r.Jobs {
		if sel(j) {
			out = append(out, j.Runtime)
		}
	}
	return out
}

// ShortRuntimes returns runtimes of jobs the scheduler classified short.
func (r *Report) ShortRuntimes() []float64 {
	return r.runtimes(func(j JobReport) bool { return !j.Long })
}

// LongRuntimes returns runtimes of jobs the scheduler classified long.
func (r *Report) LongRuntimes() []float64 {
	return r.runtimes(func(j JobReport) bool { return j.Long })
}

// TrueShortRuntimes returns runtimes of jobs that are short under exact
// estimates (regardless of how mis-estimation classified them).
func (r *Report) TrueShortRuntimes() []float64 {
	return r.runtimes(func(j JobReport) bool { return !j.TrueLong })
}

// TrueLongRuntimes returns runtimes of jobs that are long under exact
// estimates.
func (r *Report) TrueLongRuntimes() []float64 {
	return r.runtimes(func(j JobReport) bool { return j.TrueLong })
}

// OutageShortRuntimes returns runtimes of short-classified jobs submitted
// while the centralized scheduler was scripted down.
func (r *Report) OutageShortRuntimes() []float64 {
	return r.runtimes(func(j JobReport) bool { return j.DuringOutage && !j.Long })
}

// OutageLongRuntimes returns runtimes of long-classified jobs submitted
// while the centralized scheduler was scripted down.
func (r *Report) OutageLongRuntimes() []float64 {
	return r.runtimes(func(j JobReport) bool { return j.DuringOutage && j.Long })
}

// RuntimesByID returns a job-id → runtime map for the class selected by
// long (using the true classification so paired comparisons across
// schedulers and mis-estimation settings align).
func (r *Report) RuntimesByID(long bool) map[int]float64 {
	out := make(map[int]float64)
	for _, j := range r.Jobs {
		if j.TrueLong == long {
			out[j.ID] = j.Runtime
		}
	}
	return out
}

// Percentile returns the p-th percentile runtime for the class — computed
// from the per-job reports, or from the streamed reservoir sample when the
// run discarded them (exact up to the reservoir capacity, an estimate
// beyond).
func (r *Report) Percentile(long bool, p float64) float64 {
	if len(r.Jobs) == 0 && r.Streamed != nil {
		return r.Streamed.RuntimeReservoir(long).Percentile(p)
	}
	if long {
		return stats.Percentile(r.LongRuntimes(), p)
	}
	return stats.Percentile(r.ShortRuntimes(), p)
}

// ClassSummary summarizes the class's runtimes from whichever store the
// run kept: the per-job reports, or the streamed reservoirs (with the
// exact class count substituted for the bounded sample's length).
func (r *Report) ClassSummary(long bool) stats.Summary {
	if len(r.Jobs) == 0 && r.Streamed != nil {
		s := r.Streamed.RuntimeReservoir(long).Summarize()
		// The reservoir retains a bounded sample; the count of observed
		// jobs is tracked exactly.
		if long {
			s.Count = int(r.Streamed.LongJobs)
		} else {
			s.Count = int(r.Streamed.ShortJobs)
		}
		return s
	}
	if long {
		return stats.Summarize(r.LongRuntimes())
	}
	return stats.Summarize(r.ShortRuntimes())
}

// Summary formats the headline numbers of the run.
func (r *Report) Summary() string {
	short := r.ClassSummary(false)
	long := r.ClassSummary(true)
	util := r.Utilization.Median()
	if math.IsNaN(util) {
		util = 0
	}
	return fmt.Sprintf("%s: short[%s] long[%s] medianUtil=%.1f%% makespan=%.0fs",
		r.Policy, short, long, 100*util, r.Makespan)
}

// jsonReport is the serialized form of Report: the Report fields plus the
// utilization samples, which live behind accessors in stats.
type jsonReport struct {
	Report
	UtilizationSamples []float64 `json:"utilizationSamples,omitempty"`
	MedianUtilization  float64   `json:"medianUtilization,omitempty"`
}

// WriteJSON writes the report as indented JSON, including the utilization
// samples, so runs from either engine can be archived and diffed with
// standard tooling.
func (r *Report) WriteJSON(w io.Writer) error {
	jr := jsonReport{Report: *r, UtilizationSamples: r.Utilization.Samples()}
	if med := r.Utilization.Median(); !math.IsNaN(med) {
		jr.MedianUtilization = med
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// SaveReportJSON writes the full report to path as JSON, the file-level
// counterpart of SaveResultsCSV.
func SaveReportJSON(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
