package policy_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/liverun"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

var builtins = []string{"sparrow", "hawk", "centralized", "split"}

func tinyTrace(jobs ...*workload.Job) *workload.Trace {
	return &workload.Trace{
		Name:                   "tiny",
		Jobs:                   jobs,
		Cutoff:                 1000,
		ShortPartitionFraction: 0.2,
	}
}

func job(id int, submit float64, durs ...float64) *workload.Job {
	return &workload.Job{ID: id, SubmitTime: submit, Durations: durs}
}

func TestPoliciesListsBuiltins(t *testing.T) {
	names := policy.Policies()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Policies() not sorted: %v", names)
		}
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range builtins {
		if !have[want] {
			t.Errorf("Policies() = %v, missing built-in %q", names, want)
		}
	}
}

func TestParsePolicyStringRoundTrip(t *testing.T) {
	for _, name := range builtins {
		p, err := policy.ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParsePolicy(%q).String() = %q", name, p.String())
		}
	}
}

func TestParsePolicyUnknown(t *testing.T) {
	_, err := policy.ParsePolicy("no-such-policy")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	// The error should help the user find a valid name.
	if !strings.Contains(err.Error(), "hawk") {
		t.Errorf("error %q does not list registered policies", err)
	}
}

func TestRegistryLookupBuildsFromConfig(t *testing.T) {
	p, err := policy.New("hawk", policy.Config{ShortPartitionFraction: 0.25, DisableStealing: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ShortPartitionFraction(); got != 0.25 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
	if p.Steal() {
		t.Error("DisableStealing ignored")
	}
	if p.CentralPool() != policy.PoolGeneral {
		t.Errorf("central pool = %v", p.CentralPool())
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(name string, f policy.Factory) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		policy.Register(name, f)
	}
	factory := func(policy.Config) (policy.Policy, error) { return nil, nil }
	mustPanic("hawk", factory) // duplicate of a built-in
	mustPanic("", factory)
	mustPanic("nil-factory", nil)
}

// Built-in route decisions: the table the engines execute.
func TestBuiltinRouting(t *testing.T) {
	cases := []struct {
		name        string
		long        bool
		wantAction  policy.Action
		wantPool    policy.Pool
		wantCentral policy.Pool
		wantSteal   bool
	}{
		{"sparrow", false, policy.ActionProbe, policy.PoolAll, policy.PoolNone, false},
		{"sparrow", true, policy.ActionProbe, policy.PoolAll, policy.PoolNone, false},
		{"hawk", false, policy.ActionProbe, policy.PoolAll, policy.PoolGeneral, true},
		{"hawk", true, policy.ActionCentral, policy.PoolNone, policy.PoolGeneral, true},
		{"centralized", false, policy.ActionCentral, policy.PoolNone, policy.PoolAll, false},
		{"centralized", true, policy.ActionCentral, policy.PoolNone, policy.PoolAll, false},
		{"split", false, policy.ActionProbe, policy.PoolShort, policy.PoolGeneral, false},
		{"split", true, policy.ActionCentral, policy.PoolNone, policy.PoolGeneral, false},
	}
	for _, c := range cases {
		p, err := policy.New(c.name, policy.Config{ShortPartitionFraction: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		dec := p.Route(policy.JobInfo{Long: c.long})
		if dec.Action != c.wantAction {
			t.Errorf("%s long=%v: action %v, want %v", c.name, c.long, dec.Action, c.wantAction)
		}
		if dec.Action == policy.ActionProbe && dec.Pool != c.wantPool {
			t.Errorf("%s long=%v: pool %v, want %v", c.name, c.long, dec.Pool, c.wantPool)
		}
		if p.CentralPool() != c.wantCentral {
			t.Errorf("%s: central pool %v, want %v", c.name, p.CentralPool(), c.wantCentral)
		}
		if p.Steal() != c.wantSteal {
			t.Errorf("%s: steal %v, want %v", c.name, p.Steal(), c.wantSteal)
		}
	}
}

func TestHawkAblationKnobs(t *testing.T) {
	p, err := policy.New("hawk", policy.Config{
		ShortPartitionFraction: 0.2, DisableCentral: true, DisablePartition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.ShortPartitionFraction() != 0 {
		t.Error("DisablePartition should zero the reservation")
	}
	if p.CentralPool() != policy.PoolNone {
		t.Error("DisableCentral should drop the central queue")
	}
	if dec := p.Route(policy.JobInfo{Long: true}); dec.Action != policy.ActionProbe || dec.Pool != policy.PoolGeneral {
		t.Errorf("w/o central long jobs should probe the general pool, got %+v", dec)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10))
	cfg, err := policy.Config{NumNodes: 4, SlotsPerNode: 2}.Normalize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != "hawk" {
		t.Errorf("default policy = %q", cfg.Policy)
	}
	// The user's requested sizes stay visible; engines expand via
	// TotalSlots instead of mutating NumNodes.
	if cfg.NumNodes != 4 || cfg.SlotsPerNode != 2 {
		t.Errorf("requested sizes mutated: NumNodes=%d SlotsPerNode=%d", cfg.NumNodes, cfg.SlotsPerNode)
	}
	if cfg.TotalSlots() != 8 {
		t.Errorf("TotalSlots = %d, want 8", cfg.TotalSlots())
	}
	if cfg.Cutoff != tr.Cutoff || cfg.ShortPartitionFraction != tr.ShortPartitionFraction {
		t.Errorf("trace defaults not applied: %+v", cfg)
	}
	if cfg.ProbeRatio != 2 || cfg.StealCap != 10 || cfg.NetworkDelay != 0.0005 {
		t.Errorf("paper defaults not applied: %+v", cfg)
	}
	if cfg.UtilizationInterval != 100 || cfg.NumSchedulers != 10 {
		t.Errorf("engine defaults not applied: %+v", cfg)
	}
	// Normalize is idempotent.
	again, err := cfg.Normalize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, cfg) {
		t.Errorf("Normalize not idempotent: %+v != %+v", again, cfg)
	}
}

func TestNewConfigOptions(t *testing.T) {
	cfg := policy.NewConfig("split",
		policy.WithNodes(100),
		policy.WithSlotsPerNode(2),
		policy.WithSchedulers(5),
		policy.WithCutoff(700),
		policy.WithShortPartitionFraction(0.3),
		policy.WithProbeRatio(3),
		policy.WithStealCap(7),
		policy.WithoutStealing(),
		policy.WithRandomPositionStealing(),
		policy.WithoutPartition(),
		policy.WithoutCentral(),
		policy.WithNetworkDelay(0.001),
		policy.WithMisestimation(0.5, 1.5),
		policy.WithSeed(9),
		policy.WithUtilizationInterval(50),
	)
	want := policy.Config{
		Policy: "split", NumNodes: 100, SlotsPerNode: 2, NumSchedulers: 5,
		Cutoff: 700, ShortPartitionFraction: 0.3, ProbeRatio: 3, StealCap: 7,
		DisableStealing: true, StealRandomPositions: true, DisablePartition: true,
		DisableCentral: true, NetworkDelay: 0.001, MisestimateLo: 0.5,
		MisestimateHi: 1.5, Seed: 9, UtilizationInterval: 50,
	}
	// WithSchedulers(n) now also opts into the multi-scheduler model; the
	// spec pointer is checked separately from the comparable remainder.
	if cfg.Schedulers == nil || cfg.Schedulers.Count != 5 {
		t.Errorf("WithSchedulers(5) did not install the scheduler spec: %+v", cfg.Schedulers)
	}
	cfg.Schedulers = nil
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("NewConfig = %+v, want %+v", cfg, want)
	}
}

// The multi-scheduler spec resolves defaults once in Normalize, and a spec
// that is behaviorally the legacy single scheduler canonicalizes to nil so
// those runs stay byte-identical to spec-less ones.
func TestSchedulerSpecNormalize(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10))

	cfg, err := policy.Config{NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: 3}}.Normalize(tr)
	if err != nil {
		t.Fatal(err)
	}
	spec := cfg.Schedulers
	if spec == nil || spec.Count != 3 || spec.SnapshotInterval != 5 || spec.MaxRetries != 3 {
		t.Fatalf("defaults not resolved: %+v", spec)
	}
	if spec.RetryBackoff != 4*cfg.NetworkDelay {
		t.Fatalf("RetryBackoff = %g, want 4 network delays", spec.RetryBackoff)
	}
	if cfg.NumSchedulers != 3 {
		t.Fatalf("NumSchedulers = %d, want the spec count", cfg.NumSchedulers)
	}

	// Count 1 with no scheduler churn is the legacy model: the spec is
	// dropped and NumSchedulers resolves exactly as if it was never set.
	one := policy.Config{NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: 1}}
	cfg, err = one.Normalize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Schedulers != nil || cfg.NumSchedulers != 10 {
		t.Fatalf("Count=1 spec not canonicalized away: %+v", cfg)
	}
	if one.Schedulers == nil {
		t.Fatal("Normalize mutated the caller's spec pointer")
	}

	// Count 1 *with* scheduler churn keeps the model on: there is a
	// scheduler to fail.
	cfg, err = policy.Config{
		NumNodes:   4,
		Schedulers: &policy.SchedulerSpec{Count: 1},
		Churn:      &policy.ChurnSpec{Events: policy.SchedulerChurn(0, 5, 10)},
	}.Normalize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Schedulers == nil || cfg.NumSchedulers != 1 {
		t.Fatalf("churned single scheduler canonicalized away: %+v", cfg)
	}

	// Zero count inherits NumSchedulers.
	cfg, err = policy.Config{NumNodes: 4, NumSchedulers: 7, Schedulers: &policy.SchedulerSpec{}}.Normalize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Schedulers == nil || cfg.Schedulers.Count != 7 {
		t.Fatalf("zero count did not inherit NumSchedulers: %+v", cfg.Schedulers)
	}

	for name, bad := range map[string]policy.Config{
		"count above cap":   {NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: policy.MaxSchedulers + 1}},
		"negative interval": {NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: 2, SnapshotInterval: -1}},
		"negative retries":  {NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: 2, MaxRetries: -1}},
		"negative backoff":  {NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: 2, RetryBackoff: -1}},
		"churn without spec": {NumNodes: 4,
			Churn: &policy.ChurnSpec{Events: policy.SchedulerChurn(0, 5, 10)}},
		"scheduler out of range": {NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: 2},
			Churn: &policy.ChurnSpec{Events: policy.SchedulerChurn(5, 5, 10)}},
		"scheduler churn by count": {NumNodes: 4, Schedulers: &policy.SchedulerSpec{Count: 2},
			Churn: &policy.ChurnSpec{Events: []policy.ChurnEvent{{At: 1, Kind: policy.ChurnSchedFail, Count: 2}}}},
	} {
		if _, err := bad.Normalize(tr); err == nil {
			t.Errorf("Normalize accepted %s", name)
		}
	}
}

// Config validation is shared: both engines must reject the same bad
// configurations, through the same Normalize path.
func TestConfigValidationSharedAcrossEngines(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10))
	noCutoff := tinyTrace(job(1, 0, 10))
	noCutoff.Cutoff = 0
	cases := []struct {
		name  string
		trace *workload.Trace
		cfg   policy.Config
	}{
		{"zero nodes", tr, policy.Config{NumNodes: 0}},
		{"negative slots", tr, policy.Config{NumNodes: 4, SlotsPerNode: -1}},
		{"negative schedulers", tr, policy.Config{NumNodes: 4, NumSchedulers: -2}},
		{"no cutoff anywhere", noCutoff, policy.Config{NumNodes: 4}},
		{"negative cutoff", tr, policy.Config{NumNodes: 4, Cutoff: -1}},
		{"unknown policy", tr, policy.Config{NumNodes: 4, Policy: "no-such-policy"}},
		{"fraction above one", tr, policy.Config{NumNodes: 4, ShortPartitionFraction: 1.5}},
		{"negative delay", tr, policy.Config{NumNodes: 4, NetworkDelay: -0.1}},
		{"negative misestimation", tr, policy.Config{NumNodes: 4, MisestimateLo: -0.5, MisestimateHi: 0.5}},
		{"inverted misestimation", tr, policy.Config{NumNodes: 4, MisestimateLo: 1.5, MisestimateHi: 0.5}},
	}
	for _, c := range cases {
		if _, err := c.cfg.Normalize(c.trace); err == nil {
			t.Errorf("Normalize accepted %s", c.name)
		}
		if _, err := sim.Run(c.trace, c.cfg); err == nil {
			t.Errorf("sim.Run accepted %s", c.name)
		}
		if _, err := liverun.Run(c.trace, c.cfg); err == nil {
			t.Errorf("liverun.Run accepted %s", c.name)
		}
	}
}

func TestResultsCSVRoundTrip(t *testing.T) {
	tr := workload.Generate(workload.Google(), workload.GenConfig{NumJobs: 100, MeanInterArrival: 1, Seed: 2})
	res, err := sim.Run(tr, policy.Config{NumNodes: 500, Policy: "hawk", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := policy.WriteResultsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := policy.ReadResultsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Jobs) {
		t.Fatalf("round trip: %d rows, want %d", len(got), len(res.Jobs))
	}
	for i := range got {
		if got[i] != res.Jobs[i] {
			t.Fatalf("row %d mismatch: %+v != %+v", i, got[i], res.Jobs[i])
		}
	}
}

func TestReadResultsCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"jobID,submitTime,runtime,tasks,long,trueLong,estimate\n1,2,3\n",
		"jobID,submitTime,runtime,tasks,long,trueLong,estimate\nx,0,1,1,false,false,1\n",
		"jobID,submitTime,runtime,tasks,long,trueLong,estimate\n1,0,1,1,maybe,false,1\n",
	}
	for i, in := range cases {
		if _, err := policy.ReadResultsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReportJSONExport(t *testing.T) {
	tr := tinyTrace(job(1, 0, 10), job(2, 1, 5000))
	res, err := sim.Run(tr, policy.Config{NumNodes: 10, SlotsPerNode: 2, Policy: "hawk", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Engine string           `json:"engine"`
		Policy string           `json:"policy"`
		Config policy.Config    `json:"config"`
		Jobs   []map[string]any `json:"jobs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported JSON unparseable: %v", err)
	}
	if decoded.Engine != "sim" || decoded.Policy != "hawk" {
		t.Errorf("engine/policy = %q/%q", decoded.Engine, decoded.Policy)
	}
	if len(decoded.Jobs) != 2 {
		t.Errorf("jobs = %d, want 2", len(decoded.Jobs))
	}
	// The report's config keeps the user's requested cluster size rather
	// than the slot-expanded one.
	if decoded.Config.NumNodes != 10 || decoded.Config.SlotsPerNode != 2 {
		t.Errorf("config sizes = %d/%d, want 10/2",
			decoded.Config.NumNodes, decoded.Config.SlotsPerNode)
	}
}
