package policy

import (
	"fmt"
	"math"
)

// The gray-failure injection plane. Where ChurnSpec scripts fail-stop
// faults (a node is either in the cluster or gone), FaultSpec injects the
// partial failures real clusters actually exhibit: messages of the probe,
// steal, and placement planes are dropped with seeded i.i.d. probability
// per message class, every message leg picks up bounded seeded jitter on
// top of NetworkDelay, and scripted straggler events slow nodes down
// mid-run (stretching the task they are executing — distinct from the
// static speed skew of Heterogeneity). The defenses ride along: dropped
// scheduler messages time out and retry with exponential backoff up to
// MaxRetries, probes that exhaust their retries fall back to the central
// queue (graceful degradation, never a hang), and optional speculative
// re-execution duplicates a task that runs past a percentile-based delay
// threshold, first completion winning.
//
// A nil FaultSpec on Config is the reliable-network model every golden
// report pins; Normalize canonicalizes a spec that injects nothing back to
// nil so both mean the same configuration by construction.

// MaxFaultRetries bounds FaultSpec.MaxRetries: engines pack the retry
// attempt of an in-flight timeout into a few bits of event state.
const MaxFaultRetries = 30

// StragglerEvent scripts one mid-run node slowdown: at time At the target
// node(s) start executing Factor times slower than their configured speed.
// A node's task in flight when the event fires stretches accordingly;
// Factor 1 restores full speed for subsequent tasks (an in-flight task does
// not shrink retroactively). A straggling node is slow, not dead: it keeps
// its place in the membership view and does not count against
// ChurnSpec.MaxConcurrentFailures or the feasibility margin.
type StragglerEvent struct {
	// At is the event time in seconds from the start of the run.
	At float64 `json:"at"`
	// Node is the explicit target when Count is zero.
	Node int `json:"node,omitempty"`
	// Count, when positive, targets that many random live nodes instead of
	// the explicit Node; the picks draw from the fault plane's dedicated
	// seeded stream.
	Count int `json:"count,omitempty"`
	// Factor is the slowdown multiplier applied to task execution time
	// (>= 1; exactly 1 ends a slowdown).
	Factor float64 `json:"factor"`
}

// FaultSpec configures the gray-failure injection plane and its defenses.
// All randomness (loss draws, jitter, retry-target sampling, straggler
// picks) comes from a dedicated stream derived from Config.Seed, so a
// fault-free run draws the exact same main-stream sequence as one that
// never set the spec.
type FaultSpec struct {
	// ProbeLoss is the drop probability of a scheduler-to-node probe
	// message. A dropped probe times out at the scheduler and is re-sent to
	// a fresh node with exponential backoff; after MaxRetries the job falls
	// back to the central queue (FallbacksToCentral).
	ProbeLoss float64 `json:"probeLoss,omitempty"`
	// ReplyLoss is the drop probability of the node-to-scheduler task
	// request round trip that resolves a probe. The node monitor re-issues
	// the request with exponential backoff; after MaxRetries it abandons
	// the probe and the job falls back to the central queue.
	ReplyLoss float64 `json:"replyLoss,omitempty"`
	// StealLoss is the drop probability of one steal request/response
	// exchange. Stealing is opportunistic, so a dropped contact is simply
	// skipped — the thief moves on to its next candidate victim.
	StealLoss float64 `json:"stealLoss,omitempty"`
	// AssignLoss is the drop probability of a central task assignment
	// message. The assignment retries toward the same node with
	// exponential backoff; after MaxRetries the placement parks until the
	// next node recovery (surfacing in the deadlock error's detail if
	// nothing ever releases it — graceful degradation, never a hang).
	AssignLoss float64 `json:"assignLoss,omitempty"`
	// CommitLoss is the drop probability of a multi-scheduler commit
	// message (the post-claim task send of the optimistic protocol). Only
	// meaningful with Config.Schedulers; retries like AssignLoss.
	CommitLoss float64 `json:"commitLoss,omitempty"`
	// Jitter is the maximum extra one-way delay in seconds added to every
	// message leg, drawn uniformly from [0, Jitter) per leg.
	Jitter float64 `json:"jitter,omitempty"`
	// MaxRetries bounds the retry chain of a dropped probe, reply, or
	// assignment (default 3, at most MaxFaultRetries). Attempt k waits
	// RetryBackoff * 2^(k-1) before re-sending.
	MaxRetries int `json:"maxRetries,omitempty"`
	// RetryBackoff is the base timeout in seconds before the first retry
	// (default 4 network delays), doubling per attempt.
	RetryBackoff float64 `json:"retryBackoff,omitempty"`
	// Stragglers scripts mid-run node slowdowns, applied in time order.
	Stragglers []StragglerEvent `json:"stragglers,omitempty"`
	// Speculate enables speculative re-execution of straggling short
	// tasks: a probe-scheduled task still running SpeculatePercentile of
	// its job's task-duration distribution after launch gets a duplicate on
	// a fresh node; the first completion wins and the loser is cancelled
	// through the churn incarnation machinery. Centrally placed tasks are
	// not speculated (the central queue already tracks their progress).
	Speculate bool `json:"speculate,omitempty"`
	// SpeculatePercentile is the delay threshold percentile (default 95)
	// of the job's task durations after which a running task is duplicated.
	SpeculatePercentile float64 `json:"speculatePercentile,omitempty"`
}

// MessageDrops counts dropped messages by class; the Report carries it as
// a nil-able pointer so fault-free reports serialize byte-identically to
// runs that predate the fault plane.
type MessageDrops struct {
	Probes  int64 `json:"probes,omitempty"`
	Replies int64 `json:"replies,omitempty"`
	Steals  int64 `json:"steals,omitempty"`
	Assigns int64 `json:"assigns,omitempty"`
	Commits int64 `json:"commits,omitempty"`
}

// Total sums the per-class drop counts.
func (m *MessageDrops) Total() int64 {
	if m == nil {
		return 0
	}
	return m.Probes + m.Replies + m.Steals + m.Assigns + m.Commits
}

// probability reports whether p is a valid probability: in [0, 1] and not
// NaN (the comparison rejects NaN by construction).
func probability(p float64) bool { return p >= 0 && p <= 1 }

// normalize validates the spec and resolves its defaults; totalSlots and
// networkDelay are the already-resolved Config values the straggler targets
// and backoff default validate against.
func (f FaultSpec) normalize(totalSlots int, networkDelay float64) (FaultSpec, error) {
	for _, c := range []struct {
		name string
		p    float64
	}{
		{"ProbeLoss", f.ProbeLoss},
		{"ReplyLoss", f.ReplyLoss},
		{"StealLoss", f.StealLoss},
		{"AssignLoss", f.AssignLoss},
		{"CommitLoss", f.CommitLoss},
	} {
		if !probability(c.p) {
			return f, fmt.Errorf("config: Faults.%s must be a probability in [0, 1], got %g", c.name, c.p)
		}
	}
	if !(f.Jitter >= 0) || math.IsInf(f.Jitter, 1) {
		return f, fmt.Errorf("config: Faults.Jitter must be finite and non-negative, got %g", f.Jitter)
	}
	if f.MaxRetries < 0 || f.MaxRetries > MaxFaultRetries {
		return f, fmt.Errorf("config: Faults.MaxRetries must be in [0, %d], got %d", MaxFaultRetries, f.MaxRetries)
	}
	if f.MaxRetries == 0 {
		f.MaxRetries = 3
	}
	if !(f.RetryBackoff >= 0) || math.IsInf(f.RetryBackoff, 1) {
		return f, fmt.Errorf("config: Faults.RetryBackoff must be finite and non-negative, got %g", f.RetryBackoff)
	}
	if f.RetryBackoff == 0 {
		f.RetryBackoff = 4 * networkDelay
	}
	for i, ev := range f.Stragglers {
		if !(ev.At >= 0) || math.IsInf(ev.At, 1) {
			return f, fmt.Errorf("config: straggler event %d: At must be finite and non-negative, got %g", i, ev.At)
		}
		if !(ev.Factor >= 1) || math.IsInf(ev.Factor, 1) {
			return f, fmt.Errorf("config: straggler event %d: Factor must be finite and at least 1, got %g", i, ev.Factor)
		}
		if ev.Count < 0 {
			return f, fmt.Errorf("config: straggler event %d: Count must be non-negative, got %d", i, ev.Count)
		}
		if ev.Count == 0 && (ev.Node < 0 || ev.Node >= totalSlots) {
			return f, fmt.Errorf("config: straggler event %d: node %d outside [0, %d)", i, ev.Node, totalSlots)
		}
		if ev.Count > totalSlots {
			return f, fmt.Errorf("config: straggler event %d: Count %d exceeds cluster size %d", i, ev.Count, totalSlots)
		}
	}
	if !probability(f.SpeculatePercentile / 100) {
		return f, fmt.Errorf("config: Faults.SpeculatePercentile must be in [0, 100], got %g", f.SpeculatePercentile)
	}
	if f.SpeculatePercentile == 0 {
		f.SpeculatePercentile = 95
	}
	return f, nil
}

// injectsNothing reports whether the (validated) spec is behaviorally
// identical to a nil one: no loss, no jitter, no stragglers, no
// speculation. Retry knobs alone configure defenses with nothing to defend
// against.
func (f FaultSpec) injectsNothing() bool {
	return f.ProbeLoss == 0 && f.ReplyLoss == 0 && f.StealLoss == 0 &&
		f.AssignLoss == 0 && f.CommitLoss == 0 && f.Jitter == 0 &&
		len(f.Stragglers) == 0 && !f.Speculate
}

// WithFaults installs a full gray-failure spec (per-class loss, jitter,
// stragglers, retry policy, speculation).
func WithFaults(spec FaultSpec) Option {
	return func(c *Config) {
		f := spec
		f.Stragglers = append([]StragglerEvent(nil), spec.Stragglers...)
		c.Faults = &f
	}
}

// WithMessageLoss sets one uniform drop probability across every message
// class (probe, reply, steal, assign, commit).
func WithMessageLoss(p float64) Option {
	return func(c *Config) {
		if c.Faults == nil {
			c.Faults = &FaultSpec{}
		}
		c.Faults.ProbeLoss = p
		c.Faults.ReplyLoss = p
		c.Faults.StealLoss = p
		c.Faults.AssignLoss = p
		c.Faults.CommitLoss = p
	}
}

// WithJitter sets the maximum extra per-leg message delay in seconds.
func WithJitter(sec float64) Option {
	return func(c *Config) {
		if c.Faults == nil {
			c.Faults = &FaultSpec{}
		}
		c.Faults.Jitter = sec
	}
}

// WithStragglers appends scripted mid-run node slowdowns to the fault spec.
func WithStragglers(events ...StragglerEvent) Option {
	return func(c *Config) {
		if c.Faults == nil {
			c.Faults = &FaultSpec{}
		}
		c.Faults.Stragglers = append(c.Faults.Stragglers, events...)
	}
}

// WithSpeculation enables speculative re-execution of straggling short
// tasks at the given delay-threshold percentile (0 selects the default 95).
func WithSpeculation(percentile float64) Option {
	return func(c *Config) {
		if c.Faults == nil {
			c.Faults = &FaultSpec{}
		}
		c.Faults.Speculate = true
		c.Faults.SpeculatePercentile = percentile
	}
}
