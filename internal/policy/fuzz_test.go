package policy

import (
	"math"
	"testing"
)

// FuzzFaultSpecNormalize exercises FaultSpec validation with arbitrary
// numeric inputs: it must never panic, must reject NaN / negative /
// out-of-range probabilities and factors, and any spec it accepts must
// normalize idempotently (engines call Normalize once; a second pass must
// be a fixed point).
func FuzzFaultSpecNormalize(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 1.0, 0.0)
	f.Add(0.1, 0.2, 0.3, 0.4, 0.5, 0.001, 5, 0.5, 10.0, 4.0, 95.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 30, 0.0, 0.0, 1.0, 100.0)
	f.Add(math.NaN(), 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 1.0, 0.0)
	f.Add(0.0, -0.5, 0.0, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 1.5, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, math.Inf(1), 0, 0.0, 0.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -1, 0.0, 5.0, 0.5, 200.0)
	f.Fuzz(func(t *testing.T, probeLoss, replyLoss, stealLoss, assignLoss, commitLoss,
		jitter float64, retries int, backoff, stragAt, stragFactor, pct float64) {
		spec := FaultSpec{
			ProbeLoss:    probeLoss,
			ReplyLoss:    replyLoss,
			StealLoss:    stealLoss,
			AssignLoss:   assignLoss,
			CommitLoss:   commitLoss,
			Jitter:       jitter,
			MaxRetries:   retries,
			RetryBackoff: backoff,
			Stragglers: []StragglerEvent{
				{At: stragAt, Count: 1, Factor: stragFactor},
			},
			Speculate:           true,
			SpeculatePercentile: pct,
		}
		const slots, netDelay = 100, 0.0005
		norm, err := spec.normalize(slots, netDelay)
		if err != nil {
			return
		}
		for name, p := range map[string]float64{
			"ProbeLoss":  norm.ProbeLoss,
			"ReplyLoss":  norm.ReplyLoss,
			"StealLoss":  norm.StealLoss,
			"AssignLoss": norm.AssignLoss,
			"CommitLoss": norm.CommitLoss,
		} {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("accepted spec has %s = %g outside [0, 1]", name, p)
			}
		}
		if math.IsNaN(norm.Jitter) || norm.Jitter < 0 || math.IsInf(norm.Jitter, 0) {
			t.Fatalf("accepted spec has Jitter = %g", norm.Jitter)
		}
		if norm.MaxRetries < 1 || norm.MaxRetries > MaxFaultRetries {
			t.Fatalf("accepted spec has MaxRetries = %d outside [1, %d]", norm.MaxRetries, MaxFaultRetries)
		}
		if !(norm.RetryBackoff >= 0) || math.IsInf(norm.RetryBackoff, 0) {
			t.Fatalf("accepted spec has RetryBackoff = %g", norm.RetryBackoff)
		}
		if !(norm.SpeculatePercentile > 0) || norm.SpeculatePercentile > 100 {
			t.Fatalf("accepted spec has SpeculatePercentile = %g outside (0, 100]", norm.SpeculatePercentile)
		}
		for i, ev := range norm.Stragglers {
			if !(ev.Factor >= 1) || math.IsInf(ev.Factor, 0) {
				t.Fatalf("accepted straggler %d has Factor = %g", i, ev.Factor)
			}
			if !(ev.At >= 0) || math.IsInf(ev.At, 0) {
				t.Fatalf("accepted straggler %d has At = %g", i, ev.At)
			}
		}
		again, err := norm.normalize(slots, netDelay)
		if err != nil {
			t.Fatalf("normalized spec fails re-normalization: %v", err)
		}
		if again.MaxRetries != norm.MaxRetries || again.RetryBackoff != norm.RetryBackoff ||
			again.SpeculatePercentile != norm.SpeculatePercentile {
			t.Fatalf("normalize is not idempotent: %+v != %+v", again, norm)
		}
	})
}
