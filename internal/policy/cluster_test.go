package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func newTestPartition(t *testing.T, nodes int, frac float64) core.Partition {
	t.Helper()
	return core.NewPartition(nodes, frac)
}

func scenarioTrace() *workload.Trace {
	return workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 20, MeanInterArrival: 5, Seed: 1,
	})
}

func TestNormalizeValidatesChurn(t *testing.T) {
	tr := scenarioTrace()
	bad := []ChurnSpec{
		{Events: []ChurnEvent{{At: -1, Kind: ChurnFail, Node: 0}}},
		{Events: []ChurnEvent{{At: 0, Kind: "explode", Node: 0}}},
		{Events: []ChurnEvent{{At: 0, Kind: ChurnFail, Node: 100}}},
		{Events: []ChurnEvent{{At: 0, Kind: ChurnFail, Node: -1}}},
		{Events: []ChurnEvent{{At: 0, Kind: ChurnRecover, Count: -2}}},
		{Events: []ChurnEvent{{At: 0, Kind: ChurnFail, Count: 500}}},
	}
	for i, spec := range bad {
		s := spec
		cfg := Config{Policy: "hawk", NumNodes: 100, Churn: &s}
		if _, err := cfg.Normalize(tr); err == nil {
			t.Errorf("bad churn spec %d accepted", i)
		}
	}
	good := Config{Policy: "hawk", NumNodes: 100, Churn: &ChurnSpec{Events: []ChurnEvent{
		{At: 10, Kind: ChurnFail, Node: 99},
		{At: 20, Kind: ChurnFail, Count: 5},
		{At: 30, Kind: ChurnCentralDown},
		{At: 40, Kind: ChurnCentralUp},
		{At: 50, Kind: ChurnRecover, Count: 6},
	}}}
	if _, err := good.Normalize(tr); err != nil {
		t.Fatalf("valid churn spec rejected: %v", err)
	}
	// SlotsPerNode expands the valid node-id range.
	slots := Config{Policy: "hawk", NumNodes: 100, SlotsPerNode: 2,
		Churn: &ChurnSpec{Events: []ChurnEvent{{At: 0, Kind: ChurnFail, Node: 150}}}}
	if _, err := slots.Normalize(tr); err != nil {
		t.Fatalf("slot-expanded node id rejected: %v", err)
	}
}

func TestNormalizeValidatesHeterogeneity(t *testing.T) {
	tr := scenarioTrace()
	bad := []Heterogeneity{
		{Classes: []SpeedClass{{Fraction: -0.1, Speed: 1}}},
		{Classes: []SpeedClass{{Fraction: 0.5, Speed: 0}}},
		{Classes: []SpeedClass{{Fraction: 0.5, Speed: -2}}},
		{Classes: []SpeedClass{{Fraction: 0.7, Speed: 1}, {Fraction: 0.7, Speed: 0.5}}},
	}
	for i, spec := range bad {
		h := spec
		cfg := Config{Policy: "hawk", NumNodes: 100, Heterogeneity: &h}
		if _, err := cfg.Normalize(tr); err == nil {
			t.Errorf("bad heterogeneity spec %d accepted", i)
		}
	}
	good := Config{Policy: "hawk", NumNodes: 100, Heterogeneity: &Heterogeneity{
		Classes: []SpeedClass{{Fraction: 0.3, Speed: 0.5}, {Fraction: 0.2, Speed: 2}},
	}}
	if _, err := good.Normalize(tr); err != nil {
		t.Fatalf("valid heterogeneity rejected: %v", err)
	}
}

func TestMaxConcurrentFailures(t *testing.T) {
	cases := []struct {
		spec *ChurnSpec
		want int
	}{
		{nil, 0},
		{&ChurnSpec{}, 0},
		{&ChurnSpec{Events: []ChurnEvent{
			{At: 1, Kind: ChurnFail, Count: 5},
			{At: 2, Kind: ChurnRecover, Count: 5},
			{At: 3, Kind: ChurnFail, Count: 3},
		}}, 5},
		{&ChurnSpec{Events: []ChurnEvent{
			{At: 1, Kind: ChurnFail, Count: 5},
			{At: 2, Kind: ChurnFail, Node: 7}, // explicit node counts 1
			{At: 3, Kind: ChurnRecover, Count: 2},
			{At: 4, Kind: ChurnFail, Count: 4},
		}}, 8},
		// Events listed out of time order still evaluate chronologically.
		{&ChurnSpec{Events: []ChurnEvent{
			{At: 10, Kind: ChurnFail, Count: 2},
			{At: 1, Kind: ChurnFail, Count: 9},
			{At: 5, Kind: ChurnRecover, Count: 9},
		}}, 9},
		// Central outages do not consume nodes.
		{&ChurnSpec{Events: []ChurnEvent{
			{At: 1, Kind: ChurnCentralDown},
			{At: 2, Kind: ChurnCentralUp},
		}}, 0},
	}
	for i, c := range cases {
		if got := c.spec.MaxConcurrentFailures(); got != c.want {
			t.Errorf("case %d: MaxConcurrentFailures = %d, want %d", i, got, c.want)
		}
	}
}

func TestHeterogeneityFactors(t *testing.T) {
	h := &Heterogeneity{Classes: []SpeedClass{{Fraction: 0.5, Speed: 0.5}}}
	a := h.Factors(1000, 42)
	b := h.Factors(1000, 42)
	if len(a) != 1000 {
		t.Fatalf("Factors returned %d entries", len(a))
	}
	slow := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Factors not deterministic per seed")
		}
		switch a[i] {
		case 0.5:
			slow++
		case 1:
		default:
			t.Fatalf("unexpected speed %g", a[i])
		}
	}
	if slow < 400 || slow > 600 {
		t.Errorf("slow fraction %d/1000 far from the configured 0.5", slow)
	}
	if c := h.Factors(1000, 43); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] && a[3] == c[3] &&
		a[4] == c[4] && a[5] == c[5] && a[6] == c[6] && a[7] == c[7] {
		t.Error("different seeds produced suspiciously identical assignments")
	}
	// Uniform specs materialize nothing.
	if (&Heterogeneity{Classes: []SpeedClass{{Fraction: 1, Speed: 1}}}).Factors(100, 1) != nil {
		t.Error("uniform spec must return nil factors")
	}
	var nilH *Heterogeneity
	if nilH.Factors(100, 1) != nil {
		t.Error("nil spec must return nil factors")
	}
}

func TestPoolContains(t *testing.T) {
	part := newTestPartition(t, 100, 0.2)
	cases := []struct {
		pool Pool
		id   int
		want bool
	}{
		{PoolAll, 0, true}, {PoolAll, 99, true}, {PoolAll, 100, false}, {PoolAll, -1, false},
		{PoolShort, 19, true}, {PoolShort, 20, false},
		{PoolGeneral, 19, false}, {PoolGeneral, 20, true},
		{PoolNone, 5, false},
	}
	for _, c := range cases {
		if got := c.pool.Contains(part, c.id); got != c.want {
			t.Errorf("%v.Contains(%d) = %v, want %v", c.pool, c.id, got, c.want)
		}
	}
}
