package policy

import "fmt"

// The distributed multi-scheduler model (§4.10). The paper's evaluation
// runs ten concurrent Hawk schedulers; this spec makes that concurrency a
// first-class, engine-shared model in the shared-state optimistic style:
// every scheduler owns an independent central queue and a *stale snapshot*
// of the cluster view, places tasks optimistically against its snapshot,
// and on a placement conflict (the slot was claimed by another scheduler's
// placement it could not yet see) detects-and-retries with a bounded
// backoff before forcing a snapshot refresh. Jobs hash-partition across the
// live schedulers; scheduler failure and recovery ride the ordinary churn
// machinery (ChurnSchedFail / ChurnSchedRecover), with a failed scheduler's
// jobs re-assigned to the survivors.

// MaxSchedulers bounds SchedulerSpec.Count: engines store scheduler ids in
// one byte alongside the other packed per-entry state, and the paper's
// sweep tops out at 100 schedulers.
const MaxSchedulers = 256

// SchedulerSpec configures the multi-scheduler model. A nil spec on Config
// is the legacy single-scheduler model: one exact, always-fresh central
// queue, no conflicts — the byte-identical fast path every golden report
// pins. Normalize canonicalizes a spec with Count 1 and no scheduler churn
// back to nil, so "one scheduler" and "the model turned off" are the same
// configuration by construction.
type SchedulerSpec struct {
	// Count is the number of concurrent schedulers (2..MaxSchedulers for
	// the model to engage). Zero resolves to Config.NumSchedulers.
	Count int `json:"count"`
	// SnapshotInterval is the cluster-state refresh cadence in seconds
	// (default 5): an active scheduler re-reads the shared central queue
	// (and, under node churn, the membership view) every interval, and a
	// dormant scheduler catches up before its first placement after one.
	// Smaller intervals mean fresher views and fewer conflicts at more
	// refresh traffic — the staleness/conflict trade the sweep measures.
	SnapshotInterval float64 `json:"snapshotInterval,omitempty"`
	// MaxRetries bounds how many times one placement re-tries after a
	// conflict (default 3) before the scheduler gives up on its snapshot
	// and forces a refresh.
	MaxRetries int `json:"maxRetries,omitempty"`
	// RetryBackoff is the delay in seconds before a conflicted placement
	// is retried (default 4 network delays).
	RetryBackoff float64 `json:"retryBackoff,omitempty"`
}

// normalize validates the spec and resolves its defaults; numSchedulers and
// networkDelay are the already-resolved Config values the defaults key off.
func (s SchedulerSpec) normalize(numSchedulers int, networkDelay float64) (SchedulerSpec, error) {
	if s.Count == 0 {
		s.Count = numSchedulers
	}
	if s.Count < 1 || s.Count > MaxSchedulers {
		return s, fmt.Errorf("config: Schedulers.Count must be in [1, %d], got %d", MaxSchedulers, s.Count)
	}
	if s.SnapshotInterval < 0 {
		return s, fmt.Errorf("config: Schedulers.SnapshotInterval must be non-negative, got %g", s.SnapshotInterval)
	}
	if s.SnapshotInterval == 0 {
		s.SnapshotInterval = 5
	}
	if s.MaxRetries < 0 {
		return s, fmt.Errorf("config: Schedulers.MaxRetries must be non-negative, got %d", s.MaxRetries)
	}
	if s.MaxRetries == 0 {
		s.MaxRetries = 3
	}
	if s.RetryBackoff < 0 {
		return s, fmt.Errorf("config: Schedulers.RetryBackoff must be non-negative, got %g", s.RetryBackoff)
	}
	if s.RetryBackoff == 0 {
		s.RetryBackoff = 4 * networkDelay
	}
	return s, nil
}

// SchedulerChurn builds the churn events scripting one scheduler's failure
// at failAt and, when recoverAt > failAt, its recovery — the scheduler-side
// analogue of a node fail/recover pair, for use with WithChurn or a
// ChurnSpec literal.
func SchedulerChurn(scheduler int, failAt, recoverAt float64) []ChurnEvent {
	evs := []ChurnEvent{{At: failAt, Kind: ChurnSchedFail, Node: scheduler}}
	if recoverAt > failAt {
		evs = append(evs, ChurnEvent{At: recoverAt, Kind: ChurnSchedRecover, Node: scheduler})
	}
	return evs
}

// HasSchedulerEvents reports whether the spec scripts any scheduler
// failures or recoveries.
func (s *ChurnSpec) HasSchedulerEvents() bool {
	if s == nil {
		return false
	}
	for _, ev := range s.Events {
		if ev.Kind == ChurnSchedFail || ev.Kind == ChurnSchedRecover {
			return true
		}
	}
	return false
}
