package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestReservoirExactUnderCapacity(t *testing.T) {
	// While the stream fits, the reservoir IS the stream: every value is
	// retained and percentiles match the exact computation bit for bit.
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 0, 1000)
	r := NewReservoir(1000, 42)
	for i := 0; i < 1000; i++ {
		v := rng.ExpFloat64() * 100
		vals = append(vals, v)
		r.Add(v)
	}
	if r.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", r.Count())
	}
	if !reflect.DeepEqual(r.Values(), vals) {
		t.Fatal("under capacity, retained sample is not the full stream")
	}
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		if got, want := r.Percentile(p), Percentile(vals, p); got != want {
			t.Errorf("Percentile(%v) = %v, want exact %v", p, got, want)
		}
	}
	if got, want := r.Summarize(), Summarize(vals); got != want {
		t.Errorf("Summarize = %+v, want %+v", got, want)
	}
}

func TestReservoirBoundedBeyondCapacity(t *testing.T) {
	const capacity = 64
	r := NewReservoir(capacity, 3)
	for i := 0; i < 100*capacity; i++ {
		r.Add(float64(i))
	}
	if r.Count() != 100*capacity {
		t.Fatalf("Count = %d, want %d", r.Count(), 100*capacity)
	}
	if got := len(r.Values()); got != capacity {
		t.Fatalf("retained %d values, want exactly the capacity %d", got, capacity)
	}
	// The retained sample must be drawn from the stream, without
	// duplicates of a same position (Algorithm R replaces in place).
	seen := map[float64]bool{}
	for _, v := range r.Values() {
		if v < 0 || v >= 100*capacity || v != math.Trunc(v) {
			t.Fatalf("retained value %v was never in the stream", v)
		}
		if seen[v] {
			t.Fatalf("value %v retained twice", v)
		}
		seen[v] = true
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(32, 99), NewReservoir(32, 99)
	other := NewReservoir(32, 100)
	for i := 0; i < 5000; i++ {
		v := float64(i%997) / 31
		a.Add(v)
		b.Add(v)
		other.Add(v)
	}
	if !reflect.DeepEqual(a.Values(), b.Values()) {
		t.Fatal("same (capacity, seed, stream) produced different samples")
	}
	if reflect.DeepEqual(a.Values(), other.Values()) {
		t.Fatal("different seeds produced identical samples — replacement draws are not seeded")
	}
}

func TestReservoirEstimateTracksExactPercentiles(t *testing.T) {
	// Beyond capacity the sample is uniform, so a generously sized
	// reservoir's percentile estimate must land near the exact one. The
	// tolerance is loose (a few percentile ranks of a heavy-tailed
	// stream) — this is a sanity check on the sampling, not a CI bound.
	rng := rand.New(rand.NewSource(5))
	n := 50000
	vals := make([]float64, 0, n)
	r := NewReservoir(4096, 17)
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64() * 100
		vals = append(vals, v)
		r.Add(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, p := range []float64{50, 90} {
		got := r.Percentile(p)
		// Locate the estimate's true rank in the full stream and compare
		// ranks rather than values: rank error is what Algorithm R bounds.
		rank := float64(sort.SearchFloat64s(sorted, got)) / float64(n) * 100
		if math.Abs(rank-p) > 3 {
			t.Errorf("P%v estimate %v sits at true rank %.1f", p, got, rank)
		}
	}
}

func TestReservoirEdgeCases(t *testing.T) {
	r := NewReservoir(0, 1) // clamped to capacity 1
	if !math.IsNaN(r.Percentile(50)) {
		t.Error("empty reservoir percentile is not NaN")
	}
	r.Add(3)
	r.Add(9)
	if r.Count() != 2 || len(r.Values()) != 1 {
		t.Errorf("capacity-1 reservoir: Count=%d retained=%d, want 2 and 1", r.Count(), len(r.Values()))
	}
	vs := r.Values()
	vs[0] = -1
	if r.Values()[0] == -1 {
		t.Error("Values returned the backing array, not a copy")
	}
}
