package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 90, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("Percentile(single, %v) = %v, want 7", p, got)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Fatalf("Percentile(empty) = %v, want NaN", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{5, 1, 3}
	Percentile(vals, 50)
	if vals[0] != 5 || vals[1] != 1 || vals[2] != 3 {
		t.Fatalf("input mutated: %v", vals)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	check := func(raw []float64, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = v
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(vals, a), Percentile(vals, b)
		return va <= vb && va >= Min(vals) && vb <= Max(vals)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedianMinMaxSum(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if m := Mean(vals); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(vals); m != 2.5 {
		t.Errorf("Median = %v", m)
	}
	if m := Min(vals); m != 1 {
		t.Errorf("Min = %v", m)
	}
	if m := Max(vals); m != 4 {
		t.Errorf("Max = %v", m)
	}
	if s := Sum(vals); s != 10 {
		t.Errorf("Sum = %v", s)
	}
}

func TestEmptyAggregatesNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty aggregates should be NaN")
	}
	if Sum(nil) != 0 {
		t.Fatal("empty Sum should be 0")
	}
}

func TestSummarize(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	s := Summarize(vals)
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if math.Abs(s.P50-50.5) > 1e-9 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.Max != 100 {
		t.Errorf("Max = %v", s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{1, 2, 2, 3})
	if len(points) != 3 {
		t.Fatalf("CDF has %d distinct points, want 3", len(points))
	}
	if points[0].Value != 1 || math.Abs(points[0].Fraction-0.25) > 1e-9 {
		t.Errorf("point 0 = %+v", points[0])
	}
	if points[1].Value != 2 || math.Abs(points[1].Fraction-0.75) > 1e-9 {
		t.Errorf("point 1 = %+v", points[1])
	}
	if points[2].Value != 3 || points[2].Fraction != 1 {
		t.Errorf("point 2 = %+v", points[2])
	}
}

func TestCDFAt(t *testing.T) {
	points := CDF([]float64{10, 20, 30, 40})
	cases := []struct {
		x    float64
		want float64
	}{
		{5, 0}, {10, 0.25}, {15, 0.25}, {40, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := CDFAt(points, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: a CDF is monotone in both value and fraction, ends at 1, and
// CDFAt agrees with direct counting.
func TestCDFProperty(t *testing.T) {
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			vals[i] = v
		}
		points := CDF(vals)
		if points[len(points)-1].Fraction != 1 {
			return false
		}
		for i := 1; i < len(points); i++ {
			if points[i].Value <= points[i-1].Value || points[i].Fraction < points[i-1].Fraction {
				return false
			}
		}
		// CDFAt at each sample value equals the counted fraction.
		sort.Float64s(vals)
		for _, p := range points {
			if math.Abs(CDFAt(points, p.Value)-FractionAtOrBelow(vals, p.Value)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if f := FractionAtOrBelow(vals, 2.5); f != 0.5 {
		t.Fatalf("FractionAtOrBelow = %v", f)
	}
	if f := FractionAtOrBelow(nil, 1); !math.IsNaN(f) {
		t.Fatalf("empty input should give NaN, got %v", f)
	}
}

func TestComparePaired(t *testing.T) {
	cand := map[int]float64{1: 10, 2: 50, 3: 100, 4: 9}
	base := map[int]float64{1: 20, 2: 50, 3: 80, 4: 100, 5: 7}
	cmp := ComparePaired(cand, base)
	// Jobs 1 (10<=20), 2 (50<=50), 4 (9<=100) improve-or-equal: 3/4.
	if math.Abs(cmp.FractionImprovedOrEqual-0.75) > 1e-9 {
		t.Errorf("FractionImprovedOrEqual = %v", cmp.FractionImprovedOrEqual)
	}
	// Jobs 1 (10 < 10) no; 10 < 0.5*20 = 10 is false; job 4: 9 < 50 yes.
	if math.Abs(cmp.FractionImprovedBy50-0.25) > 1e-9 {
		t.Errorf("FractionImprovedBy50 = %v", cmp.FractionImprovedBy50)
	}
	wantRatio := (10.0 + 50 + 100 + 9) / (20.0 + 50 + 80 + 100)
	if math.Abs(cmp.MeanRuntimeRatio-wantRatio) > 1e-9 {
		t.Errorf("MeanRuntimeRatio = %v, want %v", cmp.MeanRuntimeRatio, wantRatio)
	}
}

func TestComparePairedEmpty(t *testing.T) {
	cmp := ComparePaired(map[int]float64{1: 1}, map[int]float64{2: 1})
	if !math.IsNaN(cmp.MeanRuntimeRatio) {
		t.Fatal("disjoint ids should produce NaN ratios")
	}
}

func TestUtilizationSeries(t *testing.T) {
	var u UtilizationSeries
	for i, v := range []float64{0.1, 0.9, 0.5, 0.7, 0.3} {
		u.AddAt(float64(i*100), v)
	}
	if u.Len() != 5 {
		t.Fatalf("Len = %d", u.Len())
	}
	if m := u.Median(); m != 0.5 {
		t.Fatalf("Median = %v", m)
	}
	if m := u.Max(); m != 0.9 {
		t.Fatalf("Max = %v", m)
	}
	// Restricting to t <= 100 keeps only 0.1 and 0.9.
	if m := u.MedianUpTo(100); m != 0.5 {
		t.Fatalf("MedianUpTo(100) = %v", m)
	}
	if m := u.MedianUpTo(0); m != 0.1 {
		t.Fatalf("MedianUpTo(0) = %v", m)
	}
	s := u.Samples()
	s[0] = 99
	if u.Samples()[0] == 99 {
		t.Fatal("Samples must return a copy")
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(4, 2); r != 2 {
		t.Fatalf("Ratio = %v", r)
	}
	if r := Ratio(1, 0); !math.IsNaN(r) {
		t.Fatalf("Ratio by zero = %v, want NaN", r)
	}
}
