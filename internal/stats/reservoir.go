package stats

// Reservoir holds a fixed-capacity uniform sample of a value stream
// (Vitter's Algorithm R), so percentile estimates over arbitrarily long
// streams need O(capacity) memory. While the stream is no longer than the
// capacity the reservoir holds every value and its percentiles are exact;
// beyond that each value seen has the same capacity/n probability of being
// retained. Replacement draws come from a private splitmix64 stream, so a
// reservoir is a pure function of (capacity, seed, value sequence) — the
// same determinism contract as every other statistic here.
type Reservoir struct {
	values []float64
	n      int64  // values observed (not retained)
	state  uint64 // splitmix64 state
}

// NewReservoir returns an empty reservoir sampling at most capacity values.
// The backing array is allocated up front so Add never allocates.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{values: make([]float64, 0, capacity), state: uint64(seed)}
}

// next64 advances the splitmix64 stream.
func (r *Reservoir) next64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add observes one value.
//
//hawk:hotpath
func (r *Reservoir) Add(v float64) {
	r.n++
	if len(r.values) < cap(r.values) {
		r.values = append(r.values, v)
		return
	}
	// Retain with probability capacity/n: pick a uniform index in [0, n)
	// and replace only when it lands inside the reservoir.
	if i := r.next64() % uint64(r.n); i < uint64(len(r.values)) {
		r.values[i] = v
	}
}

// Count returns how many values have been observed (not how many are
// retained).
func (r *Reservoir) Count() int64 { return r.n }

// Values returns the retained sample, in retention order. The slice is a
// copy; mutating it does not affect the reservoir.
func (r *Reservoir) Values() []float64 {
	return append([]float64(nil), r.values...)
}

// Percentile returns the p-th percentile of the retained sample — exact
// while Count <= capacity, an estimate beyond. NaN when empty.
func (r *Reservoir) Percentile(p float64) float64 {
	return Percentile(r.values, p)
}

// Summarize computes the standard Summary over the retained sample.
func (r *Reservoir) Summarize() Summary {
	return Summarize(r.values)
}
