// Package stats provides the statistical helpers used to report the paper's
// metrics: percentile job runtimes, CDFs, paired Hawk-vs-baseline ratios,
// and time-sampled cluster utilization.
//
// Everything here feeds golden reports, so results must be replayable;
// hawklint's determinism analyzer enforces it:
//
//hawk:deterministic
package stats

import (
	"fmt"
	"math"

	//hawk:allow report-time percentile/CDF summarization only; the hot path uses reservoir.Add
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. It returns NaN for an empty
// input. The input slice is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Median returns the 50th percentile.
func Median(values []float64) float64 { return Percentile(values, 50) }

// Max returns the maximum, or NaN for an empty input.
func Max(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum, or NaN for an empty input.
func Min(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of values.
func Sum(values []float64) float64 {
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s
}

// Summary bundles the per-class percentiles the paper reports.
type Summary struct {
	Count int
	P50   float64
	P90   float64
	P99   float64
	Mean  float64
	Max   float64
}

// Summarize computes a Summary over values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{P50: math.NaN(), P90: math.NaN(), P99: math.NaN(), Mean: math.NaN(), Max: math.NaN()}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return Summary{
		Count: len(sorted),
		P50:   percentileSorted(sorted, 50),
		P90:   percentileSorted(sorted, 90),
		P99:   percentileSorted(sorted, 99),
		Mean:  Mean(sorted),
		Max:   sorted[len(sorted)-1],
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%.1f p90=%.1f p99=%.1f mean=%.1f max=%.1f",
		s.Count, s.P50, s.P90, s.P99, s.Mean, s.Max)
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // cumulative fraction <= Value, in (0, 1]
}

// CDF returns the empirical CDF of values as step points, one per distinct
// sample. Used to regenerate the CDF figures (Figures 1 and 4).
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	points := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		if len(points) > 0 && points[len(points)-1].Value == v {
			points[len(points)-1].Fraction = float64(i+1) / n
			continue
		}
		points = append(points, CDFPoint{Value: v, Fraction: float64(i+1) / n})
	}
	return points
}

// CDFAt evaluates an empirical CDF at x: the fraction of samples <= x.
func CDFAt(points []CDFPoint, x float64) float64 {
	idx := sort.Search(len(points), func(i int) bool { return points[i].Value > x })
	if idx == 0 {
		return 0
	}
	return points[idx-1].Fraction
}

// FractionAtOrBelow returns the fraction of values <= threshold.
func FractionAtOrBelow(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	count := 0
	for _, v := range values {
		if v <= threshold {
			count++
		}
	}
	return float64(count) / float64(len(values))
}

// PairedComparison compares per-job runtimes between a candidate scheduler
// and a baseline over the same jobs, producing the "additional metrics" of
// Figure 5c: the fraction of jobs the candidate improves (or ties) and the
// ratio of mean runtimes.
type PairedComparison struct {
	// FractionImprovedOrEqual is the fraction of jobs with candidate
	// runtime <= baseline runtime.
	FractionImprovedOrEqual float64
	// FractionImprovedBy50 is the fraction of jobs improved by more than 50%.
	FractionImprovedBy50 float64
	// MeanRuntimeRatio is mean(candidate) / mean(baseline).
	MeanRuntimeRatio float64
}

// ComparePaired builds a PairedComparison from two maps keyed by job id.
// Jobs present in only one map are ignored.
func ComparePaired(candidate, baseline map[int]float64) PairedComparison {
	// Sum in sorted-id order: candSum and baseSum are float accumulations,
	// so map-iteration order would leak into MeanRuntimeRatio's low bits
	// and make reports differ run to run.
	ids := make([]int, 0, len(candidate))
	for id := range candidate { //hawk:allow order-insensitive collect; ids are sorted below before any float math
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var better, muchBetter, total int
	var candSum, baseSum float64
	for _, id := range ids {
		c := candidate[id]
		b, ok := baseline[id]
		if !ok {
			continue
		}
		total++
		candSum += c
		baseSum += b
		if c <= b {
			better++
		}
		if c < 0.5*b {
			muchBetter++
		}
	}
	if total == 0 || baseSum == 0 {
		return PairedComparison{
			FractionImprovedOrEqual: math.NaN(),
			FractionImprovedBy50:    math.NaN(),
			MeanRuntimeRatio:        math.NaN(),
		}
	}
	return PairedComparison{
		FractionImprovedOrEqual: float64(better) / float64(total),
		FractionImprovedBy50:    float64(muchBetter) / float64(total),
		MeanRuntimeRatio:        candSum / baseSum,
	}
}

// UtilizationSeries accumulates periodic cluster-utilization snapshots
// (fraction of busy nodes), mirroring the paper's 100-second sampling.
type UtilizationSeries struct {
	times   []float64
	samples []float64
}

// Add appends one utilization sample in [0, 1] with an unspecified time.
func (u *UtilizationSeries) Add(fractionBusy float64) {
	u.AddAt(float64(len(u.samples)), fractionBusy)
}

// AddAt appends one timestamped utilization sample in [0, 1].
func (u *UtilizationSeries) AddAt(t, fractionBusy float64) {
	u.times = append(u.times, t)
	u.samples = append(u.samples, fractionBusy)
}

// MedianUpTo returns the median utilization over samples taken at or before
// deadline. Our synthetic traces are much shorter than the paper's
// month-long Google trace, so the post-arrival drain phase would otherwise
// dominate the median; restricting to the arrival window (deadline = last
// submission) recovers the statistic the paper plots.
func (u *UtilizationSeries) MedianUpTo(deadline float64) float64 {
	var window []float64
	for i, t := range u.times {
		if t <= deadline {
			window = append(window, u.samples[i])
		}
	}
	return Median(window)
}

// MedianBetween returns the median utilization over samples taken in the
// closed window [from, to] — the statistic the robustness figures report
// for an outage window. NaN when the window holds no samples.
func (u *UtilizationSeries) MedianBetween(from, to float64) float64 {
	var window []float64
	for i, t := range u.times {
		if t >= from && t <= to {
			window = append(window, u.samples[i])
		}
	}
	return Median(window)
}

// Len returns the number of samples collected.
func (u *UtilizationSeries) Len() int { return len(u.samples) }

// Median returns the median utilization, the statistic plotted as "median
// cluster utilization" across the paper's figures.
func (u *UtilizationSeries) Median() float64 { return Median(u.samples) }

// Max returns the maximum utilization sample.
func (u *UtilizationSeries) Max() float64 { return Max(u.samples) }

// Samples returns a copy of the collected samples.
func (u *UtilizationSeries) Samples() []float64 {
	return append([]float64(nil), u.samples...)
}

// Ratio returns a/b, or NaN when b == 0. Keeps figure code free of
// divide-by-zero special cases when a sweep point produced no jobs of a
// class.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
