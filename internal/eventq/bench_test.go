package eventq

import (
	"math/rand"
	"testing"
)

// benchEvent mirrors internal/sim's simEvent exactly: a 16-byte
// pointer-free union of tag bytes and arena indices, so the benchmarks
// pay the same record-move cost as the production hot path.
type benchEvent struct {
	kind  uint8
	flags uint8
	gen   uint8
	sched uint8
	ref   int32
	jidx  int32
	aux   int32
}

// rollingEngine builds an engine holding depth pending events, mimicking a
// live simulation's steady state: a window of in-flight completions and
// probes rolling forward through virtual time.
func rollingEngine(backend Backend, depth int, sink *int) (*Engine[benchEvent], *rand.Rand) {
	rng := rand.New(rand.NewSource(1))
	e := New(func(_ float64, ev benchEvent) { *sink += int(ev.ref) }, depth,
		WithBackend(backend))
	for i := 0; i < depth; i++ {
		e.At(rng.Float64()*1000, benchEvent{kind: 1, ref: int32(i)})
	}
	return e, rng
}

// benchRolling measures one push plus one dispatch per iteration at a
// fixed queue depth — the simulator's exact hot-loop shape.
func benchRolling(b *testing.B, backend Backend, depth int) {
	b.ReportAllocs()
	var sink int
	e, rng := rollingEngine(backend, depth, &sink)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(rng.Float64()*10, benchEvent{kind: 1, ref: int32(i)})
		e.Step()
	}
	_ = sink
}

func BenchmarkEngineHeap1k(b *testing.B)     { benchRolling(b, BackendHeap, 1024) }
func BenchmarkEngineLadder1k(b *testing.B)   { benchRolling(b, BackendLadder, 1024) }
func BenchmarkEngineHeap16k(b *testing.B)    { benchRolling(b, BackendHeap, 16384) }
func BenchmarkEngineLadder16k(b *testing.B)  { benchRolling(b, BackendLadder, 16384) }
func BenchmarkEngineHeap256k(b *testing.B)   { benchRolling(b, BackendHeap, 262144) }
func BenchmarkEngineLadder256k(b *testing.B) { benchRolling(b, BackendLadder, 262144) }

// benchDrain measures pre-load-then-drain: push b.N events up front (the
// trace pre-flight shape — churn scripts, straggler schedules), then pop
// them all.
func benchDrain(b *testing.B, backend Backend) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(2))
	var sink int
	e := New(func(_ float64, ev benchEvent) { sink += int(ev.ref) }, b.N,
		WithBackend(backend))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(rng.Float64()*1e6, benchEvent{kind: 1, ref: int32(i)})
	}
	e.Run()
	_ = sink
}

func BenchmarkEngineHeapDrain(b *testing.B)   { benchDrain(b, BackendHeap) }
func BenchmarkEngineLadderDrain(b *testing.B) { benchDrain(b, BackendLadder) }

// TestLadderZeroAllocAcrossDepths pins the zero-allocation contract at
// every benchmarked depth: after warm-up, the rolling push/dispatch cycle
// must not allocate regardless of how many events are pending.
func TestLadderZeroAllocAcrossDepths(t *testing.T) {
	depths := []int{1024, 16384, 262144}
	if testing.Short() {
		depths = depths[:2]
	}
	for _, depth := range depths {
		var sink int
		e, rng := rollingEngine(BackendLadder, depth, &sink)
		warm := 10 * depth
		if warm < 100000 {
			warm = 100000
		}
		for i := 0; i < warm; i++ {
			e.After(rng.Float64()*10, benchEvent{kind: 1})
			e.Step()
		}
		avg := testing.AllocsPerRun(50000, func() {
			e.After(rng.Float64()*10, benchEvent{kind: 1})
			e.Step()
		})
		if avg != 0 {
			t.Fatalf("depth %d: steady-state cycle allocated %v times per op, want 0", depth, avg)
		}
	}
}
