// Package eventq implements the discrete-event engine underlying the
// trace-driven cluster simulator.
//
// The engine is a typed-event design: a priority queue of flat event
// records — timestamp, sequence number, and a caller-defined payload —
// with a virtual clock. Engine is generic over the payload type E, and
// executing an event means handing its payload to the single dispatch
// function supplied at construction. This is deliberate: the obvious
// alternative, a queue of func() closures, heap-allocates one closure (plus
// its captured variables) per scheduled event, and the engine is the
// simulator's hottest call site — a run executes hundreds of thousands of
// events. With a small struct payload (the simulator uses a 16-byte
// pointer-free union of tag bytes and int32 arena indices, so the queue is
// also opaque to the garbage collector), pushing, popping, and dispatching
// events performs zero heap allocations; the only allocations the engine
// ever makes are the amortized growths of the backing arrays, and New's
// capacity hint removes even those when the caller can bound the live
// event count.
//
// # Backends
//
// The queue behind the engine is selectable at construction
// (WithBackend); both backends realize the identical total order, so a
// run's output is backend-independent, byte for byte.
//
//   - BackendHeap: a binary min-heap over a []event[E]. O(log n) per
//     operation, no tuning, strictly bounded worst case. Hand-rolled
//     rather than built on container/heap, whose interface would box
//     every element through interface{} on push and pop.
//
//   - BackendLadder: a ladder (calendar) timeline — events binned by
//     timestamp into bucket rungs over a moving time window, buckets
//     sorted lazily on first pop, with an unsorted overflow tier for
//     far-future timers. Amortized O(1) per operation; the default for
//     internal/sim. See ladder.go for the structure and the argument
//     for why its order is exactly the heap's.
//
// # Ordering invariant
//
// Events fire in nondecreasing timestamp order, and events scheduled for the
// same instant fire in scheduling (insertion) order: every event carries a
// monotonically increasing sequence number assigned by At, and the queue
// orders by (timestamp, sequence). A caller that schedules events lazily
// but needs them ordered as if scheduled up front can reserve the low end
// of the sequence space with ReserveSeqs and place events there with
// AtReserved. This FIFO tie-breaking is load-bearing:
// it makes every simulation a pure function of (trace, config, seed), which
// is what lets internal/sweep fan runs out over worker pools while
// guaranteeing byte-identical results to a serial run. Periodic samplers
// (internal/sim's utilization ticks) are ordinary events and obey the same
// rule: a tick scheduled before another event at the same instant fires
// before it, and one scheduled after fires after it.
//
// The whole package is a hot path and every function in it must be
// replayable; hawklint (internal/lint) enforces both:
//
//hawk:hotpath
//hawk:deterministic
package eventq

// Backend selects the priority-queue implementation behind an Engine.
// Both backends produce the identical dispatch order; they differ only
// in cost model (see the package comment).
type Backend uint8

const (
	// BackendHeap is the binary min-heap: O(log n) per operation.
	BackendHeap Backend = iota
	// BackendLadder is the ladder timeline: amortized O(1) per
	// operation on workloads whose pending window moves forward, which
	// is every discrete-event simulation.
	BackendLadder
)

// Option configures an Engine at construction time.
type Option func(*config)

type config struct {
	backend Backend
}

// WithBackend selects the queue implementation. The default is
// BackendHeap.
func WithBackend(b Backend) Option {
	//hawk:allow construction-time option closure, one per New call, never on the event loop
	return func(c *config) { c.backend = b }
}

// Engine is a discrete-event simulation engine over payloads of type E.
// The zero value is not usable; call New.
type Engine[E any] struct {
	now          float64
	seq          uint64
	reserved     uint64       // low sequence numbers set aside by ReserveSeqs
	lastReserved uint64       // highest reserved seq used so far (must increase)
	events       eventHeap[E] // heap backend; unused when lad != nil
	lad          *ladder[E]   // ladder backend; nil selects the heap
	count        uint64       // total events executed
	maxLen       int          // peak number of simultaneously pending events
	dispatch     func(now float64, ev E)
}

// New returns an empty engine with the clock at zero. dispatch is invoked
// once per executed event, with the clock already advanced to the event's
// timestamp; it must not be nil. capacity pre-sizes the event queue,
// eliminating growth-path copies on the hot loop: size it to the largest
// number of events expected to be pending at once (internal/sim derives a
// deliberately generous bound from its trace — see the hint comment in
// sim.Run). Zero is valid and simply means "grow on demand".
func New[E any](dispatch func(now float64, ev E), capacity int, opts ...Option) *Engine[E] {
	if dispatch == nil {
		panic("eventq: nil dispatch")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine[E]{dispatch: dispatch}
	if cfg.backend == BackendLadder {
		e.lad = newLadder[E](capacity)
	} else if capacity > 0 {
		e.events = make(eventHeap[E], 0, capacity)
	}
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine[E]) Now() float64 { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine[E]) Executed() uint64 { return e.count }

// Pending returns the number of events waiting in the queue.
func (e *Engine[E]) Pending() int {
	if e.lad != nil {
		return e.lad.n
	}
	return len(e.events)
}

// MaxPending returns the peak number of events that were pending at any one
// instant so far. It is the engine's live-memory high-water mark: the queue's
// working set is MaxPending events, however many events a run executes in
// total. Callers that feed the engine lazily (internal/sim chains trace
// submissions one at a time instead of preloading them) use it to verify
// the queue stays O(in-flight state) rather than O(trace).
func (e *Engine[E]) MaxPending() int { return e.maxLen }

// Cap returns the current capacity of the backing array New's hint
// pre-sizes (for tests and introspection): the heap's event array, or the
// ladder's overflow tier, which is where a pre-loaded schedule lands.
func (e *Engine[E]) Cap() int {
	if e.lad != nil {
		return cap(e.lad.top)
	}
	return cap(e.events)
}

// At schedules ev to be dispatched at absolute virtual time t. Scheduling
// in the past (t < Now) is clamped to Now: the event fires before any later
// event but virtual time never runs backwards. Among events with equal
// timestamps, earlier At calls fire first (see the package ordering
// invariant).
func (e *Engine[E]) At(t float64, ev E) {
	e.seq++
	e.schedule(t, e.seq, ev)
}

// schedule clamps t to the clock, pushes the event, and maintains the
// pending high-water mark — the single push path shared by At and
// AtReserved.
func (e *Engine[E]) schedule(t float64, seq uint64, ev E) {
	if t < e.now {
		t = e.now
	}
	var n int
	if e.lad != nil {
		e.lad.push(event[E]{at: t, seq: seq, payload: ev})
		n = e.lad.n
	} else {
		e.events.push(event[E]{at: t, seq: seq, payload: ev})
		n = len(e.events)
	}
	if n > e.maxLen {
		e.maxLen = n
	}
}

// After schedules ev to be dispatched d seconds after the current virtual
// time.
func (e *Engine[E]) After(d float64, ev E) {
	e.At(e.now+d, ev)
}

// ReserveSeqs reserves sequence numbers 1..n for AtReserved, starting
// ordinary At/After assignment at n+1. It must be called on a fresh engine
// (before anything is scheduled). Reserving lets a caller that schedules a
// known set of events lazily — internal/sim chains one trace submission at
// a time — keep the exact tie-break order those events would have had if
// pushed up front, before anything else: a reserved event wins every
// equal-timestamp tie against normally scheduled events.
func (e *Engine[E]) ReserveSeqs(n uint64) {
	if e.seq != 0 || e.Pending() != 0 {
		panic("eventq: ReserveSeqs after events were scheduled")
	}
	e.seq = n
	e.reserved = n
}

// AtReserved schedules ev at absolute virtual time t with the given
// reserved sequence number (1-based, at most the ReserveSeqs count).
// Scheduling in the past is clamped to Now, as in At. Reserved sequence
// numbers must be used in strictly increasing order — enforced, because a
// duplicated seq would give the queue two entries with an identical
// (timestamp, sequence) rank and silently break the total order the
// engine's determinism guarantee rests on.
func (e *Engine[E]) AtReserved(t float64, seq uint64, ev E) {
	if seq == 0 || seq > e.reserved {
		panic("eventq: AtReserved sequence number outside the reserved range")
	}
	if seq <= e.lastReserved {
		panic("eventq: AtReserved sequence numbers must strictly increase")
	}
	e.lastReserved = seq
	e.schedule(t, seq, ev)
}

// Step executes the single earliest pending event, advancing the clock.
// It returns false when the queue is empty.
func (e *Engine[E]) Step() bool {
	var ev event[E]
	if e.lad != nil {
		p := e.lad.front()
		if p == nil {
			return false
		}
		ev = *p
		e.lad.advance()
	} else {
		if len(e.events) == 0 {
			return false
		}
		ev = e.events.pop()
	}
	e.now = ev.at
	e.count++
	e.dispatch(e.now, ev.payload)
	return true
}

// peekAt reports the timestamp of the earliest pending event. For the
// ladder backend this may sort or re-bucket internally, but never changes
// the dispatch order.
func (e *Engine[E]) peekAt() (float64, bool) {
	if e.lad != nil {
		p := e.lad.front()
		if p == nil {
			return 0, false
		}
		return p.at, true
	}
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// Run executes events until the queue drains.
func (e *Engine[E]) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued and the clock at the last executed event (or deadline if the first
// pending event lies beyond it).
func (e *Engine[E]) RunUntil(deadline float64) {
	for {
		at, ok := e.peekAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// event is one queue entry: the (at, seq) rank plus the caller's payload.
type event[E any] struct {
	at      float64
	seq     uint64
	payload E
}

// eventLess is the total order both backends realize: nondecreasing
// timestamp, FIFO sequence number within a timestamp.
func eventLess[E any](a, b *event[E]) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
