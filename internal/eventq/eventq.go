// Package eventq implements the discrete-event engine underlying the
// trace-driven cluster simulator.
//
// The engine is a binary-heap priority queue of timestamped callbacks with a
// virtual clock. Events scheduled for the same instant fire in scheduling
// order (FIFO tie-breaking via a sequence number), which keeps simulations
// deterministic for a given seed.
package eventq

import "container/heap"

// Engine is a discrete-event simulation engine. The zero value is not
// usable; call New.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	count  uint64 // total events executed
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.count }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) is clamped to Now: the event fires before any later event but
// virtual time never runs backwards.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds after the current virtual time.
func (e *Engine) After(d float64, fn func()) {
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.count++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued and the clock at the last executed event (or deadline if the first
// pending event lies beyond it).
func (e *Engine) RunUntil(deadline float64) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// EverySample registers fn to run every interval seconds, starting at
// start, for as long as keepGoing returns true. It is used for periodic
// cluster-utilization snapshots (the paper samples every 100 s).
func (e *Engine) EverySample(start, interval float64, keepGoing func() bool, fn func(now float64)) {
	var tick func()
	next := start
	tick = func() {
		if !keepGoing() {
			return
		}
		fn(e.now)
		next += interval
		e.At(next, tick)
	}
	e.At(next, tick)
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
