// Package eventq implements the discrete-event engine underlying the
// trace-driven cluster simulator.
//
// The engine is a binary-heap priority queue of timestamped callbacks with a
// virtual clock. The heap is hand-rolled over a []event rather than built on
// container/heap so that pushing and popping events never boxes them through
// interface{} — the engine is the simulator's hottest allocation site, and a
// run executes hundreds of thousands of events.
//
// # Ordering invariant
//
// Events fire in nondecreasing timestamp order, and events scheduled for the
// same instant fire in scheduling (insertion) order: every event carries a
// monotonically increasing sequence number assigned by At, and the heap
// orders by (timestamp, sequence). This FIFO tie-breaking is load-bearing:
// it makes every simulation a pure function of (trace, config, seed), which
// is what lets internal/sweep fan runs out over worker pools while
// guaranteeing byte-identical results to a serial run. Periodic samplers
// registered with EverySample are ordinary events and obey the same rule: a
// sampler tick scheduled before another event at the same instant fires
// before it, and one scheduled after fires after it.
package eventq

// Engine is a discrete-event simulation engine. The zero value is not
// usable; call New.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	count  uint64 // total events executed
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.count }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) is clamped to Now: the event fires before any later event but
// virtual time never runs backwards. Among events with equal timestamps,
// earlier At calls fire first (see the package ordering invariant).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds after the current virtual time.
func (e *Engine) After(d float64, fn func()) {
	e.At(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	e.count++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued and the clock at the last executed event (or deadline if the first
// pending event lies beyond it).
func (e *Engine) RunUntil(deadline float64) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// EverySample registers fn to run every interval seconds, starting at
// start, for as long as keepGoing returns true. It is used for periodic
// cluster-utilization snapshots (the paper samples every 100 s). Each tick
// is a regular event: relative to other events at the same instant it fires
// in insertion order, and the next tick is scheduled only after the current
// one runs.
func (e *Engine) EverySample(start, interval float64, keepGoing func() bool, fn func(now float64)) {
	var tick func()
	next := start
	tick = func() {
		if !keepGoing() {
			return
		}
		fn(e.now)
		next += interval
		e.At(next, tick)
	}
	e.At(next, tick)
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// deliberately does not implement container/heap.Interface: that interface
// moves elements through interface{}, which would allocate on every push
// and pop.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // drop the fn reference so the closure can be collected
	*h = old[:n]
	if n > 1 {
		old[:n].siftDown(0)
	}
	return top
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		j := left
		if right := left + 1; right < n && h.less(right, left) {
			j = right
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
