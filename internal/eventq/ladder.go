package eventq

import "math"

// ladder is a calendar-queue ("ladder queue") timeline: a hierarchy of
// bucket arrays over a moving time window, with a sorted drain buffer at
// the bottom and an unsorted overflow tier at the top. It realizes the
// exact (at, seq) total order of eventHeap at amortized O(1) per
// operation: a push is one subtraction, one multiply, and one append; a
// pop is a copy out of a sorted run, with the sorting cost amortized one
// comparison-sort of a small bucket per bucket of events dispatched.
//
// # Structure
//
//	top     []event — unsorted, far-future events beyond rung 0's window
//	rungs   [0..depth) — bucket arrays; rung 0 is the outermost (widest)
//	        window, each deeper rung subdivides one bucket of its parent
//	bottom  []event — sorted ascending; events dispatch from bottom[head]
//
// Every event lives in exactly one tier. The tiers drain strictly in
// order: bottom first, then the innermost rung's remaining buckets, ...,
// then rung 0's remaining buckets, then top (which is then re-windowed
// into a fresh rung 0). A rung remembers the highest bucket it has
// already drained (cur); buckets at or below cur are empty — their
// contents moved to a deeper tier — so routing an incoming event at or
// below cur descends a level instead.
//
// # Determinism argument
//
// The heap dispatches in the total order (at, seq). The ladder dispatches
// the same order because
//
//  1. bucket partitioning respects timestamp order: an event's bucket
//     index idx(t) = int((t-start)*invWidth) is a monotone nondecreasing
//     function of t (for fixed start/invWidth), so every event in bucket
//     b has a timestamp <= every event in bucket b' > b;
//  2. routing is a pure function of the timestamp given the current
//     structure state: two events with equal timestamps pushed while the
//     structure is in compatible states take the same turns at every
//     rung (idx is deterministic in t; cur only advances when a bucket's
//     entire contents have moved to a deeper tier, so a later equal-t
//     push descends into exactly the tier holding its peers), and the
//     boundary clamps are identical on the push path and the
//     redistribution path — only rung 0 routes beyond-window events to
//     top, inner rungs clamp them into their last bucket;
//  3. every sorted stage (bucket promotion, bottom insertion) orders by
//     the full (at, seq) key, so within a bucket the FIFO tie-break is
//     exact, including ReserveSeqs events that arrive late with low
//     sequence numbers: a reserved event pushed while its equal-t peers
//     sit in bottom is binary-search inserted ahead of them.
//
// # Zero allocation in steady state
//
// All storage is recycled: promoting a bucket copies it into bottom and
// hands the cleared array back to the rung, retired rungs are pooled
// with their bucket arrays for the next spawn (carve pre-sizes any
// bucket whose capacity is below its counted incoming population), and
// top compacts in place on re-windowing. The heavily-populated bucket
// arrays additionally circulate through a ladder-wide spare pool
// (sparePool): the buckets just ahead of a rung's drain point absorb
// the stream of newly scheduled near-term events and shift with the
// sweep, so their capacity migrates through the pool — a draining
// bucket donates its array, a growing bucket adopts it — instead of
// every (depth, index) slot learning the peak population on its own.
// Storage therefore converges on the workload's high-water shape, after
// which push/front/advance allocate nothing.
type ladder[E any] struct {
	bottom []event[E] // sorted drain buffer; live region is bottom[head:]
	head   int        // index of the next event to dispatch
	rungs  []*rung[E] // rungs[:depth] are live; the rest are pooled for reuse
	depth  int
	top    []event[E] // unsorted overflow beyond rung 0's window
	n      int        // total pending events across all tiers
	// pool circulates the largest drained bucket arrays, shared by every
	// rung: the buckets just ahead of a rung's drain point absorb the
	// continuous stream of newly scheduled near-term events, far beyond
	// any redistribute count, and the sweep moves that pressure from
	// bucket to bucket — and, through spills and re-windows, from rung
	// to rung. Rather than letting every (depth, index) bucket slot
	// learn that capacity independently, a draining bucket's array lands
	// here when it beats the smallest spare, and a bucket about to
	// outgrow its own array adopts the tightest sufficient spare instead
	// of allocating (see rung.grow, rung.carve, rung.drained).
	pool sparePool[E]
}

type rung[E any] struct {
	buckets  [nbuckets][]event[E]
	start    float64 // timestamp of the left edge of bucket 0
	invWidth float64 // buckets per second
	cur      int     // highest bucket already drained; -1 when fresh
}

// sparePool holds cleared bucket arrays in circulation for adoption.
// Fixed slots, scanned linearly: it is touched only on bucket growth
// and drain, never on the per-event fast path.
type sparePool[E any] struct {
	s [nspares][]event[E]
}

// take removes and returns the smallest spare with capacity at least
// need, or nil when none qualifies. Tightest-fit keeps the biggest
// spares for the buckets that grow furthest.
func (p *sparePool[E]) take(need int) []event[E] {
	best := -1
	for i := 0; i < nspares; i++ {
		if c := cap(p.s[i]); c >= need && (best < 0 || c < cap(p.s[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	s := p.s[best][:0]
	p.s[best] = nil
	return s
}

// put offers a (cleared) array back to the pool, replacing the smallest
// slot if the offer beats it.
func (p *sparePool[E]) put(s []event[E]) {
	mi := 0
	for i := 1; i < nspares; i++ {
		if cap(p.s[i]) < cap(p.s[mi]) {
			mi = i
		}
	}
	if cap(s) > cap(p.s[mi]) {
		p.s[mi] = s[:0]
	}
}

const (
	// nbuckets is the fan-out per rung. 128 keeps a rung at ~3 KiB of
	// slice headers while giving span/128 resolution per level; two
	// levels resolve a window 16k-fold.
	nbuckets = 64
	nbF      = float64(nbuckets)

	// spillThreshold is the bucket size above which a bucket is
	// re-bucketed into a deeper rung instead of sorted directly:
	// insertion sort below it is cheap, and spilling above it keeps the
	// per-bucket sort small even when timestamps cluster.
	spillThreshold = 64

	// bottomSpawn bounds the sorted-insert buffer: when the live bottom
	// region outgrows it (a burst of near-term scheduling), the buffer
	// is re-bucketed into a fresh rung so inserts stay O(1) amortized.
	bottomSpawn = 256

	// maxRungs bounds recursion for pathological timestamp
	// distributions (e.g. clusters tighter than float64 resolution);
	// at the bound, buckets are sorted whatever their size.
	maxRungs = 12

	// insertionSortMax is the run length above which sortEvents switches
	// from insertion sort to heapsort. Promoted buckets are normally
	// under spillThreshold; larger runs only appear when spilling is
	// exhausted (degenerate spans), where insertion sort could go
	// quadratic.
	insertionSortMax = 64

	// smallTopPromote is the overflow-tier size at or below which
	// re-windowing skips the rung machinery and promotes the whole tier
	// as one sorted run: sorting ~a bucket's worth of events is cheaper
	// than fanning them across 128 buckets and draining those. This is
	// the common regime for shallow queues (a lightly loaded engine
	// oscillates between a near-empty top and an empty bottom).
	smallTopPromote = 2 * spillThreshold

	// topFanout and minWindowEvents size rung 0's window when
	// re-windowing: the window targets len(top)/topFanout events, at
	// least minWindowEvents, estimated from the tier's average gap. A
	// full-span window would make rung 0 live for most of the run, and
	// its buckets would then accumulate every event scheduled into the
	// window while it drains — O(total events) storage, which is what
	// the heap backend's single array never pays. A narrow window keeps
	// rung 0 short-lived and small; far-future events stay parked in
	// top (one flat array at its high-water capacity) until a later
	// re-window reaches them. The 1/topFanout fraction keeps the
	// re-window scans amortized O(topFanout) per dispatched event, and
	// the floor stops a huge sparse tier from being nibbled 128 events
	// at a time.
	topFanout       = 8
	minWindowEvents = 256

	// minGrow is the bucket capacity at which push routes an outgrowing
	// bucket through rung.grow (spare adoption or 4x regrowth) instead
	// of leaving it to append's doubling; tiny buckets aren't worth the
	// branch. minAdopt additionally gates spare adoption within grow:
	// only the hammered buckets ahead of the drain point reach it, so
	// the circulating arrays aren't claimed by buckets that would have
	// stopped growing anyway.
	minGrow  = 8
	minAdopt = 32

	// nspares is the number of drained arrays the ladder keeps in
	// circulation for adoption, across all rungs.
	nspares = 8
)

// newLadder pre-sizes the overflow tier, which is where a pre-loaded
// schedule (events pushed before the first pop) accumulates, and gives
// the drain buffer a head start (its steady-state size is bounded by the
// bottomSpawn re-bucketing threshold plus the largest promoted bucket).
func newLadder[E any](capacity int) *ladder[E] {
	l := &ladder[E]{}
	if capacity > 0 {
		l.top = make([]event[E], 0, capacity)
		bc := capacity
		if bc > 2*bottomSpawn {
			bc = 2 * bottomSpawn
		}
		l.bottom = make([]event[E], 0, bc)
	}
	return l
}

// push routes ev to its tier: the deepest rung whose undrained region
// covers ev.at, or top (beyond rung 0's window), or the sorted bottom
// buffer (at or below every rung's drain point).
func (l *ladder[E]) push(ev event[E]) {
	l.n++
	for i := 0; i < l.depth; i++ {
		r := l.rungs[i]
		f := (ev.at - r.start) * r.invWidth
		b := 0
		if f >= nbF {
			if i == 0 {
				// Beyond the outermost window: far-future
				// overflow. Only rung 0 may route here — an
				// inner rung's events must all fire before
				// its parent's later buckets, so inner rungs
				// clamp instead (below).
				l.top = append(l.top, ev)
				return
			}
			b = nbuckets - 1
		} else if f > 0 {
			b = int(f)
		}
		if b > r.cur {
			bkt := r.buckets[b]
			if len(bkt) == cap(bkt) && cap(bkt) >= minGrow {
				bkt = r.grow(bkt, &l.pool)
			}
			bkt = append(bkt, ev)
			r.buckets[b] = bkt
			return
		}
		// Bucket already drained into a deeper tier; descend so the
		// event joins whatever now holds its equal-timestamp peers.
	}
	if l.depth == 0 && l.head >= len(l.bottom) {
		// Idle structure (nothing draining): everything parks in top
		// until the first pop re-windows it.
		l.top = append(l.top, ev)
		return
	}
	l.insertBottom(ev)
}

// insertBottom binary-search inserts ev into the sorted live region
// bottom[head:], and re-buckets the buffer into a fresh rung if a burst
// of near-term scheduling has made it large.
func (l *ladder[E]) insertBottom(ev event[E]) {
	if l.head > 0 && len(l.bottom) == cap(l.bottom) {
		// Compact the drained prefix away instead of growing.
		n := copy(l.bottom, l.bottom[l.head:])
		clear(l.bottom[n:])
		l.bottom = l.bottom[:n]
		l.head = 0
	}
	lo, hi := l.head, len(l.bottom)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if eventLess(&l.bottom[m], &ev) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	l.bottom = append(l.bottom, event[E]{})
	copy(l.bottom[lo+1:], l.bottom[lo:])
	l.bottom[lo] = ev

	if len(l.bottom)-l.head > bottomSpawn && l.depth < maxRungs {
		live := l.bottom[l.head:]
		// bottom is sorted, so its span is last minus first — O(1).
		if s, e := live[0].at, live[len(live)-1].at; e > s {
			if l.spawnRung(live, s, e) {
				clear(l.bottom)
				l.bottom = l.bottom[:0]
				l.head = 0
			}
		}
	}
}

// front returns the earliest pending event, or nil when empty. It may
// promote a bucket into bottom, spill a skewed bucket into a deeper rung,
// or re-window the overflow tier — none of which changes the dispatch
// order. The returned pointer is valid until the next engine operation.
func (l *ladder[E]) front() *event[E] {
	for {
		if l.head < len(l.bottom) {
			return &l.bottom[l.head]
		}
		if l.n == 0 {
			return nil
		}
		// Bottom fully drained: recycle it (advance already zeroed
		// the dispatched slots) and pull the next sorted run.
		l.bottom = l.bottom[:0]
		l.head = 0
		promoted := false
		for l.depth > 0 {
			r := l.rungs[l.depth-1]
			b := r.next()
			if b < 0 {
				// Rung exhausted; retire it. Its (empty)
				// buckets keep their capacity for the next
				// spawn.
				l.depth--
				continue
			}
			bkt := r.buckets[b]
			if len(bkt) > spillThreshold && l.depth < maxRungs {
				if s, e := eventSpan(bkt); e > s {
					if l.spawnRung(bkt, s, e) {
						r.drained(b, &l.pool)
						continue
					}
				}
			}
			// Promote: copy the bucket into the drain buffer and
			// hand the (cleared) bucket chunk back to the rung.
			// Copying rather than swapping storage keeps bottom's
			// capacity converging on the largest promoted run and
			// leaves the rung's arena intact, so growth
			// allocations stop once the workload's shape has been
			// seen.
			l.bottom = append(l.bottom[:0], bkt...)
			r.drained(b, &l.pool)
			sortEvents(l.bottom)
			promoted = true
			break
		}
		if promoted {
			continue
		}
		// Every rung drained and n > 0: the remaining events are all
		// in top. Re-window it into a fresh rung 0.
		l.rewindowTop()
	}
}

// advance consumes the event front returned: zero its slot (dropping
// payload references, matching the heap's pop) and move the drain point.
func (l *ladder[E]) advance() {
	l.bottom[l.head] = event[E]{}
	l.head++
	l.n--
}

// carve prepares the rung's buckets for a redistribution whose
// per-bucket population the caller has counted: any bucket whose pooled
// capacity is below its incoming count is regrown once, to 2x the count
// (headroom for the direct pushes that land in the rung afterward), so
// the redistribution never walks an append-doubling series. Exact counts
// matter: event timestamps are heavily skewed toward the window's near
// edge, so uniform pre-sizing would either waste most of its slots or
// overflow the dense buckets. Buckets keep their arrays across spawns
// (the pool in ladder.rungs preserves them), so each one converges on
// the largest population its (depth, index) slot ever sees and the
// regrows stop.
func (r *rung[E]) carve(counts *[nbuckets]int32, pool *sparePool[E]) {
	for i := 0; i < nbuckets; i++ {
		c := int(counts[i])
		if cap(r.buckets[i]) >= c {
			continue
		}
		// A circulating spare that fits is a free swap, since every
		// bucket is empty at spawn; the outgrown array goes back to
		// the pool for a smaller bucket to claim.
		if s := pool.take(c); s != nil {
			pool.put(r.buckets[i][:0])
			r.buckets[i] = s
			continue
		}
		r.buckets[i] = make([]event[E], 0, 2*c)
	}
}

// drained recycles a bucket whose contents have just moved to another
// tier: zero the live slots (dropping payload references) and reset the
// length. An array bigger than the smallest circulating spare is
// swapped into the pool (the bucket gets that spare in exchange): the
// hammered buckets sit just ahead of the drain point and shift with it
// every generation, so capacity must migrate with the sweep rather
// than stay parked at whatever (depth, index) slot last happened to be
// under the hammer.
func (r *rung[E]) drained(b int, pool *sparePool[E]) {
	bkt := r.buckets[b]
	clear(bkt)
	mi := 0
	for i := 1; i < nspares; i++ {
		if cap(pool.s[i]) < cap(pool.s[mi]) {
			mi = i
		}
	}
	if cap(bkt) > cap(pool.s[mi]) {
		r.buckets[b] = pool.s[mi][:0]
		pool.s[mi] = bkt[:0]
	} else {
		r.buckets[b] = bkt[:0]
	}
}

// grow moves a full bucket to a larger array: ideally the tightest
// circulating spare that at least doubles it (a free swap — the one
// copy replaces the rest of a growth series), failing that any strictly
// larger spare (a shorter stride, but still allocation-free), and only
// when the pool has nothing bigger a fresh array at 4x. Quadrupling,
// not doubling: a geometric series to capacity N totals ~2N event slots
// of allocation at ratio 2 but ~1.3N at ratio 4, with half the copies,
// and the overshoot is not waste — outgrown arrays circulate through
// the spare pool and every array is reused across rung generations.
func (r *rung[E]) grow(bkt []event[E], pool *sparePool[E]) []event[E] {
	var s []event[E]
	if cap(bkt) >= minAdopt {
		if s = pool.take(2 * cap(bkt)); s == nil {
			s = pool.take(cap(bkt) + 1)
		}
	}
	if s == nil {
		s = make([]event[E], 0, 4*cap(bkt))
	}
	s = s[:len(bkt)]
	copy(s, bkt)
	clear(bkt)
	pool.put(bkt[:0])
	return s
}

// next scans for the rung's next non-empty bucket, marking it as the
// drain point. It returns -1 when the rung is exhausted.
func (r *rung[E]) next() int {
	for i := r.cur + 1; i < nbuckets; i++ {
		if len(r.buckets[i]) > 0 {
			r.cur = i
			return i
		}
	}
	return -1
}

// spawnRung redistributes src (spanning [lo, hi], hi > lo) into a fresh
// innermost rung whose nbuckets-1 inner buckets tile the span — the last
// bucket additionally catches boundary rounding, exactly as the push
// path's clamp does. It reports false, leaving the structure unchanged,
// when the span is too degenerate to subdivide (width underflows or is
// infinite); the caller then falls back to sorting.
func (l *ladder[E]) spawnRung(src []event[E], lo, hi float64) bool {
	width := (hi - lo) / (nbF - 1)
	inv := 1 / width
	if !(inv > 0) || math.IsInf(inv, 0) {
		return false
	}
	// Count pass, then carve exact-fit chunks, then scatter: the
	// redistribution allocates at most once (the arena ratchet) however
	// skewed src's timestamps are.
	var counts [nbuckets]int32
	for i := range src {
		f := (src[i].at - lo) * inv
		b := 0
		if f >= nbF {
			b = nbuckets - 1
		} else if f > 0 {
			b = int(f)
		}
		counts[b]++
	}
	r := l.getRung()
	r.carve(&counts, &l.pool)
	r.start = lo
	r.invWidth = inv
	r.cur = -1
	for i := range src {
		f := (src[i].at - lo) * inv
		b := 0
		if f >= nbF {
			b = nbuckets - 1
		} else if f > 0 {
			b = int(f)
		}
		r.buckets[b] = append(r.buckets[b], src[i])
	}
	l.depth++
	return true
}

// getRung returns a pooled retired rung, or grows the pool. A retired
// rung's arena keeps its capacity; the caller carves it for the spawn.
func (l *ladder[E]) getRung() *rung[E] {
	if l.depth == len(l.rungs) {
		l.rungs = append(l.rungs, &rung[E]{})
	}
	return l.rungs[l.depth]
}

// rewindowTop rebuilds rung 0 over the near end of the overflow tier: a
// window sized for ~len(top)/topFanout events (see topFanout). Events
// beyond the window stay in top, compacted in place, awaiting a
// later re-window. Called only when every rung has drained, so depth is
// 0 and bottom is empty. A small tier (<= smallTopPromote) or a
// degenerate span (all one timestamp, or too wide for float64) promotes
// the whole tier to bottom as a single sorted run instead.
func (l *ladder[E]) rewindowTop() {
	lo, hi := eventSpan(l.top)
	// Per-bucket width from the tier's average gap, sized so the window
	// captures ~target of the nearest events; clamped to the full span
	// so a small tier still tiles completely (the nbuckets-1 divisor
	// leaves the last bucket catching boundary rounding, as in
	// spawnRung).
	target := float64(len(l.top)) * (1.0 / topFanout)
	if target < minWindowEvents {
		target = minWindowEvents
	}
	width := (hi - lo) * target / (float64(len(l.top)) * (nbF - 1))
	if maxW := (hi - lo) / (nbF - 1); width > maxW {
		width = maxW
	}
	inv := 1 / width
	if len(l.top) <= smallTopPromote || !(inv > 0) || math.IsInf(inv, 0) {
		l.bottom = append(l.bottom[:0], l.top...)
		clear(l.top)
		l.top = l.top[:0]
		l.head = 0
		sortEvents(l.bottom)
		// depth stays 0 with a non-empty bottom: pushes insert into
		// bottom directly (top is empty, so the sorted buffer is the
		// whole structure and comparison order is trivially exact).
		return
	}
	// Count pass over the tier, then carve exact-fit chunks, then
	// scatter in-window events while compacting the keepers in place.
	var counts [nbuckets]int32
	win := 0
	for i := range l.top {
		f := (l.top[i].at - lo) * inv
		if f >= nbF {
			continue
		}
		b := 0
		if f > 0 {
			b = int(f)
		}
		counts[b]++
		win++
	}
	r := l.getRung()
	r.carve(&counts, &l.pool)
	r.start = lo
	r.invWidth = inv
	r.cur = -1
	keep := 0
	for i := range l.top {
		f := (l.top[i].at - lo) * inv
		if f >= nbF {
			l.top[keep] = l.top[i]
			keep++
			continue
		}
		b := 0
		if f > 0 {
			b = int(f)
		}
		r.buckets[b] = append(r.buckets[b], l.top[i])
	}
	clear(l.top[keep:])
	l.top = l.top[:keep]
	l.depth = 1
}

// eventSpan returns the min and max timestamp in s, which must be
// non-empty.
func eventSpan[E any](s []event[E]) (lo, hi float64) {
	lo, hi = s[0].at, s[0].at
	for i := 1; i < len(s); i++ {
		if s[i].at < lo {
			lo = s[i].at
		}
		if s[i].at > hi {
			hi = s[i].at
		}
	}
	return lo, hi
}

// sortEvents orders s by (at, seq): insertion sort for the small runs
// bucket promotion normally produces (and for its nearly-sorted best
// case — bottom-spawned buckets arrive pre-sorted), heapsort beyond
// insertionSortMax so degenerate runs stay O(n log n). Hand-rolled
// because sort.Slice boxes through interface{} and allocates its
// closure; the imports analyzer bans sort in hot-path packages.
func sortEvents[E any](s []event[E]) {
	if len(s) <= insertionSortMax {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && eventLess(&s[j], &s[j-1]); j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	// Heapsort: build a max-heap, then swap the max to the tail.
	for i := len(s)/2 - 1; i >= 0; i-- {
		siftDownMax(s, i, len(s))
	}
	for end := len(s) - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftDownMax(s, 0, end)
	}
}

// siftDownMax restores the max-heap property for s[:n] at root i, ordering
// by (at, seq).
func siftDownMax[E any](s []event[E], i, n int) {
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		j := left
		if right := left + 1; right < n && eventLess(&s[left], &s[right]) {
			j = right
		}
		if !eventLess(&s[i], &s[j]) {
			return
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
}
