package eventq

import (
	"math"
	"math/rand"
	"testing"
)

// timeDist generates scheduling offsets with a particular shape; the
// differential tests sweep shapes because the ladder's three code paths
// (bucket append, bottom insert, overflow tier) are selected by the
// timestamp distribution, and each must preserve the heap's order.
type timeDist struct {
	name string
	next func(rng *rand.Rand) float64
}

func timeDists() []timeDist {
	return []timeDist{
		{"uniform-wide", func(rng *rand.Rand) float64 { return rng.Float64() * 1000 }},
		{"clustered-ties", func(rng *rand.Rand) float64 { return float64(rng.Intn(8)) }},
		{"exponential", func(rng *rand.Rand) float64 { return rng.ExpFloat64() * 5 }},
		{"bimodal-far-future", func(rng *rand.Rand) float64 {
			if rng.Intn(10) == 0 {
				return 1e6 + rng.Float64()*1e6 // churn-script-like far timers
			}
			return rng.Float64() * 2
		}},
		{"single-instant", func(rng *rand.Rand) float64 { return 42 }},
		{"float-extremes", func(rng *rand.Rand) float64 {
			switch rng.Intn(12) {
			case 0:
				return math.Inf(1)
			case 1:
				return 1e300
			case 2:
				return 1e-300
			default:
				return rng.Float64() * 100
			}
		}},
	}
}

// TestLadderMatchesHeapRandomPrograms drives a heap engine and a ladder
// engine through identical random schedule/pop programs and requires the
// dispatch streams to be identical, event for event — the in-process twin
// of FuzzLadderVsHeap, swept across timestamp shapes.
func TestLadderMatchesHeapRandomPrograms(t *testing.T) {
	type fired struct {
		now float64
		id  int
	}
	for _, dist := range timeDists() {
		t.Run(dist.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				var gotH, gotL []fired
				h := New(func(now float64, id int) { gotH = append(gotH, fired{now, id}) }, 0)
				l := New(func(now float64, id int) { gotL = append(gotL, fired{now, id}) }, 0, WithBackend(BackendLadder))
				id := 0
				for op := 0; op < 30000; op++ {
					if h.Pending() == 0 || rng.Intn(5) > 1 {
						d := dist.next(rng)
						h.After(d, id)
						l.After(d, id)
						id++
					} else {
						h.Step()
						l.Step()
					}
					if h.Pending() != l.Pending() {
						t.Fatalf("seed %d op %d: pending diverged: heap %d ladder %d",
							seed, op, h.Pending(), l.Pending())
					}
				}
				h.Run()
				l.Run()
				if len(gotH) != len(gotL) {
					t.Fatalf("seed %d: dispatched %d (heap) vs %d (ladder) events", seed, len(gotH), len(gotL))
				}
				for i := range gotH {
					if gotH[i] != gotL[i] {
						t.Fatalf("seed %d: dispatch %d diverged: heap %+v ladder %+v",
							seed, i, gotH[i], gotL[i])
					}
				}
				if h.MaxPending() != l.MaxPending() {
					t.Fatalf("seed %d: MaxPending diverged: heap %d ladder %d",
						seed, h.MaxPending(), l.MaxPending())
				}
			}
		})
	}
}

// TestLadderReservedSeqsMatchHeap pins the hardest ordering case: reserved
// low sequence numbers pushed late, landing among equal-timestamp events
// that are already sorted in the ladder's drain buffer. The reserved event
// must still win the tie on both backends.
func TestLadderReservedSeqsMatchHeap(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		var gotH, gotL []int
		h := New(func(_ float64, id int) { gotH = append(gotH, id) }, 0)
		l := New(func(_ float64, id int) { gotL = append(gotL, id) }, 0, WithBackend(BackendLadder))
		const nReserved = 50
		h.ReserveSeqs(nReserved)
		l.ReserveSeqs(nReserved)
		id := 0
		nextReserved := uint64(1)
		for op := 0; op < 20000; op++ {
			switch {
			case nextReserved <= nReserved && rng.Intn(100) == 0:
				// Late reserved push at a heavily-tied timestamp.
				at := h.Now() + float64(rng.Intn(4))
				h.AtReserved(at, nextReserved, id)
				l.AtReserved(at, nextReserved, id)
				nextReserved++
				id++
			case h.Pending() == 0 || rng.Intn(3) > 0:
				at := h.Now() + float64(rng.Intn(4))
				h.At(at, id)
				l.At(at, id)
				id++
			default:
				h.Step()
				l.Step()
			}
		}
		h.Run()
		l.Run()
		if len(gotH) != len(gotL) {
			t.Fatalf("seed %d: dispatched %d (heap) vs %d (ladder)", seed, len(gotH), len(gotL))
		}
		for i := range gotH {
			if gotH[i] != gotL[i] {
				t.Fatalf("seed %d: dispatch %d diverged: heap id %d, ladder id %d",
					seed, i, gotH[i], gotL[i])
			}
		}
	}
}

// TestLadderBasicContracts runs the engine's behavioral contracts against
// the ladder backend: time order with FIFO ties, clock advancement,
// RunUntil semantics, and the capacity hint landing in the overflow tier.
func TestLadderBasicContracts(t *testing.T) {
	t.Run("order-and-ties", func(t *testing.T) {
		var got []int
		e := New(func(_ float64, id int) { got = append(got, id) }, 0, WithBackend(BackendLadder))
		e.At(5, 3)
		e.At(1, 0)
		e.At(5, 4)
		e.At(2, 1)
		e.At(2, 2)
		e.Run()
		for i, id := range got {
			if i != id {
				t.Fatalf("dispatch order %v, want ascending ids", got)
			}
		}
	})
	t.Run("run-until", func(t *testing.T) {
		var got []float64
		e := New(func(now float64, _ int) { got = append(got, now) }, 0, WithBackend(BackendLadder))
		for i := 1; i <= 10; i++ {
			e.At(float64(i), i)
		}
		e.RunUntil(4.5)
		if len(got) != 4 || e.Now() != 4.5 || e.Pending() != 6 {
			t.Fatalf("after RunUntil(4.5): fired %v, now %v, pending %d", got, e.Now(), e.Pending())
		}
		e.RunUntil(20)
		if len(got) != 10 || e.Now() != 20 {
			t.Fatalf("after RunUntil(20): fired %d events, now %v", len(got), e.Now())
		}
	})
	t.Run("idle-clock", func(t *testing.T) {
		e := New(func(_ float64, _ int) {}, 0, WithBackend(BackendLadder))
		e.RunUntil(7)
		if e.Now() != 7 {
			t.Fatalf("Now() = %v, want 7", e.Now())
		}
	})
	t.Run("past-clamps", func(t *testing.T) {
		var got []float64
		e := New(func(now float64, _ int) { got = append(got, now) }, 0, WithBackend(BackendLadder))
		e.At(10, 0)
		e.Run()
		e.At(3, 1) // in the past: clamps to now=10
		e.Run()
		if got[1] != 10 {
			t.Fatalf("past event fired at %v, want clamped to 10", got[1])
		}
	})
	t.Run("capacity-hint", func(t *testing.T) {
		e := New(func(_ float64, _ int) {}, 128, WithBackend(BackendLadder))
		if e.Cap() != 128 {
			t.Fatalf("Cap() = %d, want 128", e.Cap())
		}
		for i := 0; i < 128; i++ {
			e.At(float64(i), i)
		}
		if e.Cap() != 128 {
			t.Fatalf("pre-load within the hint grew the overflow tier to %d", e.Cap())
		}
	})
}

// TestLadderSpillAndRewindow forces the structure through its deep paths:
// repeated overflow re-windowing, bucket spills on tight clusters, and the
// degenerate single-instant promote — and checks the order against the
// heap throughout.
func TestLadderSpillAndRewindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var gotH, gotL []int
	h := New(func(_ float64, id int) { gotH = append(gotH, id) }, 0)
	l := New(func(_ float64, id int) { gotL = append(gotL, id) }, 0, WithBackend(BackendLadder))
	id := 0
	push := func(at float64) {
		h.At(at, id)
		l.At(at, id)
		id++
	}
	// Phase 1: a tight cluster (forces spill: >spillThreshold events in
	// one bucket) plus sparse outliers across nine decades.
	for i := 0; i < 2000; i++ {
		push(100 + rng.Float64()*1e-7)
	}
	for i := 0; i < 100; i++ {
		push(rng.Float64() * 1e9)
	}
	// Phase 2: drain halfway, interleaving near-term pushes that land in
	// the sorted drain buffer (and outgrow it, forcing a bottom spawn).
	for i := 0; i < 1000; i++ {
		h.Step()
		l.Step()
		push(h.Now() + rng.Float64()*1e-8)
	}
	// Phase 3: one instant, thousands of events — degenerate span, the
	// whole-tier sort path.
	for i := 0; i < 5000; i++ {
		push(2e9)
	}
	h.Run()
	l.Run()
	if len(gotH) != len(gotL) {
		t.Fatalf("dispatched %d (heap) vs %d (ladder)", len(gotH), len(gotL))
	}
	for i := range gotH {
		if gotH[i] != gotL[i] {
			t.Fatalf("dispatch %d diverged: heap id %d, ladder id %d", i, gotH[i], gotL[i])
		}
	}
	if h.Executed() != l.Executed() || l.Pending() != 0 {
		t.Fatalf("executed %d/%d, pending %d", h.Executed(), l.Executed(), l.Pending())
	}
}

// TestLadderZeroAllocSteadyState is the ladder twin of
// TestZeroAllocSteadyState: once array capacities reach the workload's
// high-water mark, the rolling push/dispatch cycle — including bucket
// promotion, sorting, and re-windowing — must not allocate.
func TestLadderZeroAllocSteadyState(t *testing.T) {
	type payload struct {
		kind uint8
		ref  int32
	}
	rng := rand.New(rand.NewSource(9))
	var executed int
	e := New(func(_ float64, _ payload) { executed++ }, 4096, WithBackend(BackendLadder))
	for i := 0; i < 4096; i++ {
		e.At(rng.Float64()*100, payload{kind: 1})
	}
	// Warm until every tier's backing arrays have seen the rolling
	// window's high-water mark, including several re-window cycles.
	for i := 0; i < 200000; i++ {
		e.After(rng.Float64()*10, payload{kind: 1})
		e.Step()
	}
	const rounds = 50000
	avg := testing.AllocsPerRun(rounds, func() {
		e.After(rng.Float64()*10, payload{kind: 1})
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state push/dispatch allocated %v times per op, want 0", avg)
	}
}
