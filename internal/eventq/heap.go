package eventq

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// deliberately does not implement container/heap.Interface: that interface
// moves elements through interface{}, which would allocate on every push
// and pop.
type eventHeap[E any] []event[E]

func (h eventHeap[E]) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap[E]) push(ev event[E]) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap[E]) pop() event[E] {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event[E]{} // drop payload references so they can be collected
	*h = old[:n]
	if n > 1 {
		old[:n].siftDown(0)
	}
	return top
}

func (h eventHeap[E]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap[E]) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		j := left
		if right := left + 1; right < n && h.less(right, left) {
			j = right
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
