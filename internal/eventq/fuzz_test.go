package eventq

import (
	"encoding/binary"
	"testing"
)

// FuzzLadderVsHeap drives a heap engine and a ladder engine through the
// identical fuzzer-chosen schedule/pop/reserve program and requires the
// two dispatch streams — (clock, payload) pairs — to match exactly, along
// with Pending, MaxPending, and Executed. The heap is the reference
// implementation of the (timestamp, seq) total order; any divergence is a
// ladder ordering bug.
//
// Program encoding (one op per 3 bytes, permissive by construction so
// every input is a valid program):
//
//	byte 0 % 8: 0-3 schedule via At, 4 schedule via AtReserved (if any
//	            reserved seqs remain; else At), 5-7 pop via Step
//	bytes 1-2:  time offset, quantized to quarter-seconds so equal
//	            timestamps — the tie-break cases — are common; an offset
//	            of 0xFFxx maps far into the future to exercise the
//	            ladder's overflow tier
//
// The first byte of the input picks how many sequence numbers to reserve
// (0..63) before anything is scheduled.
func FuzzLadderVsHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 0, 0, 1, 0, 0, 5, 0, 0, 4, 0, 0})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 5, 0, 0, 5, 0, 0})
	// Far-future bursts mixed with ties and pops.
	f.Add([]byte{
		16,
		0, 0xFF, 0xFF, 4, 0, 0, 0, 0xFF, 0x00, 4, 2, 0,
		5, 0, 0, 6, 0, 0, 7, 0, 0, 0, 2, 0, 4, 2, 0,
	})
	f.Fuzz(func(t *testing.T, program []byte) {
		type fired struct {
			now float64
			id  int
		}
		var gotH, gotL []fired
		h := New(func(now float64, id int) { gotH = append(gotH, fired{now, id}) }, 0)
		l := New(func(now float64, id int) { gotL = append(gotL, fired{now, id}) }, 0, WithBackend(BackendLadder))
		var reserved, nextReserved uint64
		if len(program) > 0 {
			reserved = uint64(program[0] % 64)
			program = program[1:]
			h.ReserveSeqs(reserved)
			l.ReserveSeqs(reserved)
			nextReserved = 1
		}
		id := 0
		for len(program) >= 3 {
			op := program[0] % 8
			raw := binary.LittleEndian.Uint16(program[1:3])
			program = program[3:]
			dt := float64(raw) * 0.25
			if raw >= 0xFF00 {
				// Overflow-tier territory: far beyond the live window.
				dt = float64(raw) * 1e7
			}
			switch {
			case op == 4 && nextReserved > 0 && nextReserved <= reserved:
				h.AtReserved(h.Now()+dt, nextReserved, id)
				l.AtReserved(l.Now()+dt, nextReserved, id)
				nextReserved++
				id++
			case op < 5:
				h.After(dt, id)
				l.After(dt, id)
				id++
			default:
				h.Step()
				l.Step()
			}
			if h.Pending() != l.Pending() {
				t.Fatalf("pending diverged mid-program: heap %d ladder %d", h.Pending(), l.Pending())
			}
		}
		h.Run()
		l.Run()
		if h.Executed() != l.Executed() {
			t.Fatalf("executed diverged: heap %d ladder %d", h.Executed(), l.Executed())
		}
		if h.MaxPending() != l.MaxPending() {
			t.Fatalf("MaxPending diverged: heap %d ladder %d", h.MaxPending(), l.MaxPending())
		}
		if len(gotH) != len(gotL) {
			t.Fatalf("dispatched %d (heap) vs %d (ladder) events", len(gotH), len(gotL))
		}
		for i := range gotH {
			if gotH[i] != gotL[i] {
				t.Fatalf("dispatch %d diverged: heap (t=%v id=%d), ladder (t=%v id=%d)",
					i, gotH[i].now, gotH[i].id, gotL[i].now, gotL[i].id)
			}
		}
	})
}
