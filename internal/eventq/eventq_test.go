package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// newClosureEngine instantiates the typed engine with a closure payload so
// the ordering tests read naturally. Production users (internal/sim) use a
// flat struct payload instead — see TestZeroAllocSteadyState for the
// allocation contract that design exists to honor.
func newClosureEngine() *Engine[func()] {
	return New(func(_ float64, fn func()) { fn() }, 0)
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := newClosureEngine()
	var fired []float64
	times := []float64{5, 1, 3, 2, 4, 0.5}
	for _, at := range times {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := newClosureEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken events out of scheduling order at %d: %v", i, order[:i+1])
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := newClosureEngine()
	e.At(10, func() {
		if e.Now() != 10 {
			t.Errorf("Now() = %v inside event at 10", e.Now())
		}
	})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("final Now() = %v, want 10", e.Now())
	}
}

func TestDispatchSeesEventTime(t *testing.T) {
	// The dispatch function receives the clock already advanced to the
	// event's timestamp, and it matches Now().
	var seen []float64
	e := New(func(now float64, at float64) {
		seen = append(seen, now)
		if now != at {
			t.Errorf("dispatched at now=%v, payload says %v", now, at)
		}
	}, 0)
	for _, at := range []float64{3, 1, 2} {
		e.At(at, at)
	}
	e.Run()
	if !sort.Float64sAreSorted(seen) || len(seen) != 3 {
		t.Fatalf("dispatch times = %v", seen)
	}
}

func TestNilDispatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nil dispatch did not panic")
		}
	}()
	New[int](nil, 0)
}

func TestPastSchedulingClamps(t *testing.T) {
	e := newClosureEngine()
	var secondTime float64 = -1
	e.At(10, func() {
		// Scheduling in the past must clamp to now, not rewind time.
		e.At(5, func() { secondTime = e.Now() })
	})
	e.Run()
	if secondTime != 10 {
		t.Fatalf("past-scheduled event ran at %v, want clamped to 10", secondTime)
	}
}

func TestAfterRelative(t *testing.T) {
	e := newClosureEngine()
	var at float64
	e.At(3, func() {
		e.After(4, func() { at = e.Now() })
	})
	e.Run()
	if at != 7 {
		t.Fatalf("After(4) from t=3 ran at %v, want 7", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	// A chain of events each scheduling the next must run to completion.
	e := newClosureEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != 1000 {
		t.Fatalf("chain executed %d steps, want 1000", count)
	}
	if e.Now() != 999 {
		t.Fatalf("final time %v, want 999", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := newClosureEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("total fired %d, want 5", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := newClosureEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("idle RunUntil left clock at %v, want 42", e.Now())
	}
}

func TestStep(t *testing.T) {
	e := newClosureEngine()
	if e.Step() {
		t.Fatal("Step on empty engine should return false")
	}
	ran := false
	e.At(1, func() { ran = true })
	if !e.Step() {
		t.Fatal("Step should execute the pending event")
	}
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed())
	}
}

// TestCapacityHint pins New's pre-sizing contract: a positive hint reserves
// heap capacity up front (no growth copies while pending stays within it),
// and a zero hint is valid — the heap simply grows on demand.
func TestCapacityHint(t *testing.T) {
	e := New(func(float64, int) {}, 128)
	if got := e.Cap(); got < 128 {
		t.Fatalf("Cap() = %d after New with hint 128", got)
	}
	for i := 0; i < 128; i++ {
		e.At(float64(i), i)
	}
	if got := e.Cap(); got != 128 {
		t.Fatalf("heap grew to cap %d despite fitting the hint", got)
	}

	zero := New(func(float64, int) {}, 0)
	if got := zero.Cap(); got != 0 {
		t.Fatalf("Cap() = %d after New with hint 0, want 0", got)
	}
	sum := 0
	dispatchSum := New(func(_ float64, v int) { sum += v }, 0)
	for i := 1; i <= 100; i++ {
		dispatchSum.At(float64(i), i)
	}
	dispatchSum.Run()
	if sum != 5050 {
		t.Fatalf("hint-0 engine dispatched sum %d, want 5050", sum)
	}
}

// TestZeroAllocSteadyState is the contract the typed-event redesign exists
// for: with a struct payload and sufficient heap capacity, scheduling and
// dispatching events performs zero heap allocations.
func TestZeroAllocSteadyState(t *testing.T) {
	type payload struct {
		kind uint8
		a, b *int
		dur  float64
	}
	var x, y int
	executed := 0
	e := New(func(_ float64, p payload) { executed += int(p.kind) }, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		e.At(rng.Float64()*1000, payload{kind: 1, a: &x, b: &y, dur: 0.5})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(rng.Float64()*10, payload{kind: 1, a: &x, b: &y})
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("push+pop allocated %v times per op, want 0", allocs)
	}
	if executed == 0 {
		t.Fatal("no events dispatched")
	}
}

// Property: for any set of event times, execution order is a sorted
// permutation and the clock never runs backwards.
func TestOrderingProperty(t *testing.T) {
	check := func(times []float64) bool {
		e := newClosureEngine()
		var fired []float64
		for _, at := range times {
			at := at
			if at < 0 {
				at = -at
			}
			e.At(at, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(times)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving At calls with Steps preserves global ordering for
// events at distinct times.
func TestInterleavedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := newClosureEngine()
	var fired []float64
	pending := 0
	for i := 0; i < 5000; i++ {
		if pending == 0 || rng.Intn(2) == 0 {
			at := e.Now() + rng.Float64()*100
			e.At(at, func() { fired = append(fired, e.Now()) })
			pending++
		} else {
			e.Step()
			pending--
		}
	}
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("interleaved execution violated time order")
	}
}

// TestTieBreakInsertionOrderInvariant is the invariant the parallel sweep
// layer's determinism proof rests on: for ANY interleaving of At calls, the
// global execution order equals a stable sort of the events by timestamp —
// i.e. same-timestamp events fire exactly in insertion order. It runs on a
// typed integer payload, the engine's production shape.
func TestTieBreakInsertionOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type key struct {
		at  float64
		ins int
	}
	var want []key
	var got []key
	e := New(func(now float64, ins int) {
		got = append(got, key{at: now, ins: ins})
	}, 0)
	// Many events crowded onto few distinct timestamps forces heavy
	// tie-breaking inside the heap.
	timestamps := []float64{0, 1, 1, 2, 3, 3, 3, 5, 8}
	for i := 0; i < 3000; i++ {
		at := timestamps[rng.Intn(len(timestamps))]
		want = append(want, key{at: at, ins: i})
		e.At(at, i)
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got (t=%v, ins=%d), want (t=%v, ins=%d) — "+
				"same-timestamp events must fire in insertion order",
				i, got[i].at, got[i].ins, want[i].at, want[i].ins)
		}
	}
}

// TestTieBreakSurvivesNestedScheduling checks the invariant when ties are
// created from inside running events (the simulator's normal mode: zero
// network delay hops schedule more work at the current instant).
func TestTieBreakSurvivesNestedScheduling(t *testing.T) {
	e := newClosureEngine()
	var order []int
	e.At(10, func() {
		// Scheduled while t=10 is executing: these tie with the events
		// below that were scheduled before Run, and must fire after them.
		e.At(10, func() { order = append(order, 103) })
		e.At(10, func() { order = append(order, 104) })
	})
	e.At(10, func() { order = append(order, 101) })
	e.At(10, func() { order = append(order, 102) })
	e.Run()
	want := []int{101, 102, 103, 104}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestHeapMatchesReferenceModel drives the hand-rolled heap against a
// stable-sorted reference model over a random interleaving of pushes and
// pops, catching any sift bug that reorders equal-timestamp events. It uses
// the typed payload path directly: the record IS the payload, no closures.
func TestHeapMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type rec struct {
		at  float64
		ins int
	}
	var model []rec
	var fired []rec
	e := New(func(_ float64, r rec) { fired = append(fired, r) }, 0)
	ins := 0
	for i := 0; i < 20000; i++ {
		if e.Pending() == 0 || rng.Intn(3) > 0 {
			at := e.Now() + float64(rng.Intn(8)) // few distinct values → many ties
			r := rec{at: at, ins: ins}
			ins++
			model = append(model, r)
			e.At(at, r)
		} else {
			e.Step()
		}
	}
	e.Run()
	sort.SliceStable(model, func(i, j int) bool { return model[i].at < model[j].at })
	// The interleaved pops make the global fired order differ from the
	// model, but within any single timestamp the insertion order must hold.
	byTime := make(map[float64][]int)
	for _, r := range fired {
		byTime[r.at] = append(byTime[r.at], r.ins)
	}
	for at, seqs := range byTime {
		if !sort.IntsAreSorted(seqs) {
			t.Fatalf("t=%v: insertion order violated: %v", at, seqs)
		}
	}
	if len(fired) != len(model) {
		t.Fatalf("fired %d events, want %d", len(fired), len(model))
	}
}

// simShapedEvent mirrors internal/sim's event union so the benchmark
// exercises the payload size the production hot path pays for.
type simShapedEvent struct {
	kind    uint8
	central bool
	a, b    *int
	dur     float64
}

func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	var sink int
	var x int
	e := New(func(_ float64, ev simShapedEvent) { sink += int(ev.kind) }, 16384)
	// Keep a rolling window of pending events like a live simulation.
	for i := 0; i < 10000; i++ {
		e.At(rng.Float64()*1000, simShapedEvent{kind: 1, a: &x})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(rng.Float64()*10, simShapedEvent{kind: 1, a: &x})
		e.Step()
	}
}

func TestMaxPendingTracksHighWaterMark(t *testing.T) {
	e := New(func(float64, int) {}, 0)
	if e.MaxPending() != 0 {
		t.Fatalf("fresh engine MaxPending = %d", e.MaxPending())
	}
	for i := 0; i < 5; i++ {
		e.At(float64(i), i)
	}
	if e.MaxPending() != 5 {
		t.Fatalf("MaxPending = %d after 5 pushes, want 5", e.MaxPending())
	}
	for i := 0; i < 3; i++ {
		e.Step()
	}
	// Draining must not lower the high-water mark…
	if e.MaxPending() != 5 {
		t.Fatalf("MaxPending = %d after draining to 2, want 5", e.MaxPending())
	}
	// …and refilling below it must not raise it.
	e.At(10, 99)
	if e.MaxPending() != 5 {
		t.Fatalf("MaxPending = %d after refill to 3, want 5", e.MaxPending())
	}
	e.At(11, 100)
	e.At(12, 101)
	e.At(13, 102)
	if e.MaxPending() != 6 {
		t.Fatalf("MaxPending = %d after growing past the mark, want 6", e.MaxPending())
	}
}

// Reserved sequence numbers let lazily scheduled events keep the tie-break
// rank of an up-front schedule: a reserved event must fire before any
// normally scheduled event at the same timestamp, even one pushed earlier
// in wall-clock order.
func TestReservedSeqsWinEqualTimestampTies(t *testing.T) {
	var fired []string
	e := New(func(_ float64, s string) { fired = append(fired, s) }, 0)
	e.ReserveSeqs(2)
	e.At(10, "normal-a") // scheduled first, seq 3
	e.At(10, "normal-b") // seq 4
	e.AtReserved(10, 1, "reserved-1")
	e.AtReserved(10, 2, "reserved-2")
	e.Run()
	want := []string{"reserved-1", "reserved-2", "normal-a", "normal-b"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestReserveSeqsMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	e := New(func(float64, int) {}, 0)
	e.At(1, 0)
	mustPanic("ReserveSeqs after scheduling", func() { e.ReserveSeqs(5) })

	e2 := New(func(float64, int) {}, 0)
	e2.ReserveSeqs(3)
	mustPanic("AtReserved seq 0", func() { e2.AtReserved(1, 0, 0) })
	mustPanic("AtReserved beyond range", func() { e2.AtReserved(1, 4, 0) })
	mustPanic("AtReserved without reservation", func() {
		New(func(float64, int) {}, 0).AtReserved(1, 1, 0)
	})

	// Reusing or rewinding a reserved seq would create two events with an
	// identical (timestamp, sequence) rank — unspecified pop order.
	e3 := New(func(float64, int) {}, 0)
	e3.ReserveSeqs(3)
	e3.AtReserved(1, 2, 0)
	mustPanic("AtReserved duplicate seq", func() { e3.AtReserved(1, 2, 0) })
	mustPanic("AtReserved decreasing seq", func() { e3.AtReserved(1, 1, 0) })
}
