package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var fired []float64
	times := []float64{5, 1, 3, 2, 4, 0.5}
	for _, at := range times {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken events out of scheduling order at %d: %v", i, order[:i+1])
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.At(10, func() {
		if e.Now() != 10 {
			t.Errorf("Now() = %v inside event at 10", e.Now())
		}
	})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("final Now() = %v, want 10", e.Now())
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	var secondTime float64 = -1
	e.At(10, func() {
		// Scheduling in the past must clamp to now, not rewind time.
		e.At(5, func() { secondTime = e.Now() })
	})
	e.Run()
	if secondTime != 10 {
		t.Fatalf("past-scheduled event ran at %v, want clamped to 10", secondTime)
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var at float64
	e.At(3, func() {
		e.After(4, func() { at = e.Now() })
	})
	e.Run()
	if at != 7 {
		t.Fatalf("After(4) from t=3 ran at %v, want 7", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	// A chain of events each scheduling the next must run to completion.
	e := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != 1000 {
		t.Fatalf("chain executed %d steps, want 1000", count)
	}
	if e.Now() != 999 {
		t.Fatalf("final time %v, want 999", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("total fired %d, want 5", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("idle RunUntil left clock at %v, want 42", e.Now())
	}
}

func TestStep(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine should return false")
	}
	ran := false
	e.At(1, func() { ran = true })
	if !e.Step() {
		t.Fatal("Step should execute the pending event")
	}
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed())
	}
}

func TestEverySample(t *testing.T) {
	e := New()
	active := true
	var samples []float64
	e.EverySample(100, 100, func() bool { return active }, func(now float64) {
		samples = append(samples, now)
		if now >= 500 {
			active = false
		}
	})
	e.Run()
	want := []float64{100, 200, 300, 400, 500}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

func TestEverySampleStopsImmediately(t *testing.T) {
	e := New()
	count := 0
	e.EverySample(10, 10, func() bool { return false }, func(float64) { count++ })
	e.Run()
	if count != 0 {
		t.Fatalf("sampler ran %d times despite keepGoing=false", count)
	}
}

// Property: for any set of event times, execution order is a sorted
// permutation and the clock never runs backwards.
func TestOrderingProperty(t *testing.T) {
	check := func(times []float64) bool {
		e := New()
		var fired []float64
		for _, at := range times {
			at := at
			if at < 0 {
				at = -at
			}
			e.At(at, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(times)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving At calls with Steps preserves global ordering for
// events at distinct times.
func TestInterleavedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := New()
	var fired []float64
	pending := 0
	for i := 0; i < 5000; i++ {
		if pending == 0 || rng.Intn(2) == 0 {
			at := e.Now() + rng.Float64()*100
			e.At(at, func() { fired = append(fired, e.Now()) })
			pending++
		} else {
			e.Step()
			pending--
		}
	}
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("interleaved execution violated time order")
	}
}

// TestTieBreakInsertionOrderInvariant is the invariant the parallel sweep
// layer's determinism proof rests on: for ANY interleaving of At calls, the
// global execution order equals a stable sort of the events by timestamp —
// i.e. same-timestamp events fire exactly in insertion order.
func TestTieBreakInsertionOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := New()
	type key struct {
		at  float64
		ins int
	}
	var want []key
	var got []key
	// Many events crowded onto few distinct timestamps forces heavy
	// tie-breaking inside the heap.
	timestamps := []float64{0, 1, 1, 2, 3, 3, 3, 5, 8}
	for i := 0; i < 3000; i++ {
		at := timestamps[rng.Intn(len(timestamps))]
		k := key{at: at, ins: i}
		want = append(want, k)
		e.At(at, func() { got = append(got, k) })
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got (t=%v, ins=%d), want (t=%v, ins=%d) — "+
				"same-timestamp events must fire in insertion order",
				i, got[i].at, got[i].ins, want[i].at, want[i].ins)
		}
	}
}

// TestTieBreakSurvivesNestedScheduling checks the invariant when ties are
// created from inside running events (the simulator's normal mode: zero
// network delay hops schedule more work at the current instant).
func TestTieBreakSurvivesNestedScheduling(t *testing.T) {
	e := New()
	var order []int
	e.At(10, func() {
		// Scheduled while t=10 is executing: these tie with the events
		// below that were scheduled before Run, and must fire after them.
		e.At(10, func() { order = append(order, 103) })
		e.At(10, func() { order = append(order, 104) })
	})
	e.At(10, func() { order = append(order, 101) })
	e.At(10, func() { order = append(order, 102) })
	e.Run()
	want := []int{101, 102, 103, 104}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestEverySampleTieOrder pins down EverySample's position among events at
// the same instant: a sampler registered before an At for the same time
// fires first, one registered after fires second.
func TestEverySampleTieOrder(t *testing.T) {
	e := New()
	var order []string
	active := true
	e.EverySample(100, 100, func() bool { return active }, func(now float64) {
		order = append(order, "sampler")
		active = false
	})
	e.At(100, func() { order = append(order, "event") })
	e.Run()
	if len(order) != 2 || order[0] != "sampler" || order[1] != "event" {
		t.Fatalf("order = %v, want [sampler event] — EverySample ticks are "+
			"ordinary events and obey insertion-order tie-breaking", order)
	}

	e = New()
	order = nil
	active = true
	e.At(100, func() { order = append(order, "event") })
	e.EverySample(100, 100, func() bool { return active }, func(now float64) {
		order = append(order, "sampler")
		active = false
	})
	e.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "sampler" {
		t.Fatalf("order = %v, want [event sampler]", order)
	}
}

// TestHeapMatchesReferenceModel drives the hand-rolled heap against a
// stable-sorted reference model over a random interleaving of pushes and
// pops, catching any sift bug that reorders equal-timestamp events.
func TestHeapMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := New()
	type rec struct {
		at  float64
		ins int
	}
	var model []rec
	var fired []rec
	ins := 0
	for i := 0; i < 20000; i++ {
		if e.Pending() == 0 || rng.Intn(3) > 0 {
			at := e.Now() + float64(rng.Intn(8)) // few distinct values → many ties
			r := rec{at: at, ins: ins}
			ins++
			model = append(model, r)
			e.At(at, func() { fired = append(fired, r) })
		} else {
			e.Step()
		}
	}
	e.Run()
	sort.SliceStable(model, func(i, j int) bool { return model[i].at < model[j].at })
	// The interleaved pops make the global fired order differ from the
	// model, but within any single timestamp the insertion order must hold.
	byTime := make(map[float64][]int)
	for _, r := range fired {
		byTime[r.at] = append(byTime[r.at], r.ins)
	}
	for at, seqs := range byTime {
		if !sort.IntsAreSorted(seqs) {
			t.Fatalf("t=%v: insertion order violated: %v", at, seqs)
		}
	}
	if len(fired) != len(model) {
		t.Fatalf("fired %d events, want %d", len(fired), len(model))
	}
}

func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	e := New()
	nop := func() {}
	// Keep a rolling window of pending events like a live simulation.
	for i := 0; i < 10000; i++ {
		e.At(rng.Float64()*1000, nop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(rng.Float64()*10, nop)
		e.Step()
	}
}
