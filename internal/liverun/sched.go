package liverun

import (
	"sync"
	"time"

	"repro/internal/core"
)

// The live engine's concurrent multi-scheduler model, mirroring the
// simulator's (see internal/sim/sched.go) with real concurrency instead of
// virtual-clock interleaving: each scheduler is backed by goroutines that
// place tasks against a *stale* mirror of the shared central queue,
// refreshed by a per-scheduler ticker, and commit through a versioned
// claim protocol under the central scheduler's lock. A lost claim really
// sleeps out its backoff before retrying, and a placement that exhausts
// its retries refreshes and places against fresh state — the shared-state
// optimistic concurrency the multi-scheduler experiments measure, here
// with genuine data-race pressure (the -race tests drive this path).
//
// Everything hangs off cluster.mscheds, nil unless Config.Schedulers is
// set, so a single-scheduler run never takes the extra locks.

// claimRec is the per-node claim record of the live commit protocol: the
// global claim version at the last successful claim and the scheduler that
// made it. Guarded by centralScheduler.mu.
type claimRec struct {
	ver uint64
	by  int32
}

// liveScheduler is one concurrent scheduler: an independent mirror of the
// central waiting-time queue plus the snapshot bookkeeping the claim
// protocol validates against.
type liveScheduler struct {
	id int32
	c  *cluster

	mu sync.Mutex
	// local mirrors the shared central queue as of the last refresh (nil
	// when the policy has no centralized component); between refreshes it
	// tracks only this scheduler's own placements.
	local   *core.CentralQueue
	snapVer uint64
	snapAt  time.Time
	alive   bool
}

func (ls *liveScheduler) isAlive() bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.alive
}

// refresh brings the mirror up to the shared truth and stamps the snapshot
// version and time.
func (ls *liveScheduler) refresh() {
	ls.mu.Lock()
	ls.refreshLocked()
	ls.mu.Unlock()
}

// refreshLocked is refresh with ls.mu held (lock order: ls.mu before
// central.mu, everywhere).
func (ls *liveScheduler) refreshLocked() {
	if ls.local != nil {
		ls.snapVer = ls.c.central.snapshotInto(ls.local)
	}
	ls.snapAt = time.Now()
	ls.c.snapshotRefreshes.Add(1)
}

// run is the scheduler's snapshot refresher: tick at the configured
// interval until the cluster stops. The simulator gates its refresh chain
// on placement activity to keep its event heap drainable; real tickers
// have no such constraint, so this one just runs.
func (ls *liveScheduler) run(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if ls.isAlive() {
				ls.refresh()
			}
		case <-ls.c.stop:
			return
		}
	}
}

// schedule places every task of a centrally routed job through the
// optimistic claim/commit path.
func (ls *liveScheduler) schedule(jr *jobRuntime) {
	for i := 0; i < jr.job.NumTasks(); i++ {
		dur := time.Duration(jr.job.Durations[i] * float64(time.Second))
		ls.placeTask(jr, dur, i)
	}
}

// placeTask runs the optimistic placement loop for one task: assign on the
// stale mirror, claim against the shared truth, and on conflict back off
// and retry — refreshing the snapshot once the configured retries are
// exhausted. A dead scheduler re-hashes the task to a survivor; an
// unavailable central scheduler parks it in the shared backlog.
func (ls *liveScheduler) placeTask(jr *jobRuntime, dur time.Duration, handle int) {
	c := ls.c
	backoff := time.Duration(c.cfg.Schedulers.RetryBackoff * float64(time.Second))
	attempt := 0
	for {
		if !ls.isAlive() {
			c.schedulerReassigned.Add(1)
			c.placeCentralMS(jr, dur, handle)
			return
		}
		if c.central.parkIfUnavailable(jr, dur, handle) {
			return
		}
		ls.mu.Lock()
		if ls.local.Len() == 0 {
			// Mirror last synced while the truth had no live server;
			// catch up before assigning.
			ls.refreshLocked()
		}
		nodeID, _ := ls.local.Assign(c.nowSeconds(), jr.est)
		sinceVer, snapAt := ls.snapVer, ls.snapAt
		ls.mu.Unlock()
		if c.central.tryCommit(nodeID, ls.id, sinceVer, jr.est) {
			c.centralAssigns.Add(1)
			c.stalenessNanos.Add(int64(time.Since(snapAt)))
			go c.deliverTask(c.nodes[nodeID], entry{job: jr, dur: dur, handle: handle, sched: ls.id}, true)
			return
		}
		// Conflict: the mirror's Assign already penalized the contested
		// server, so the retry naturally spreads to another one.
		c.placementConflicts.Add(1)
		attempt++
		if attempt > c.cfg.Schedulers.MaxRetries {
			ls.refresh()
			attempt = 0
			continue
		}
		c.conflictRetries.Add(1)
		if backoff > 0 {
			time.Sleep(backoff)
		}
	}
}

// pickScheduler hash-partitions a job id over the live schedulers (the
// simulator's Fibonacci hash, so both engines agree on the owner for a
// given live set), or returns -1 when none is live. Caller must not hold
// msMu.
func (c *cluster) pickScheduler(jobID int) int32 {
	c.msMu.Lock()
	defer c.msMu.Unlock()
	if len(c.msLive) == 0 {
		return -1
	}
	h := uint64(uint32(jobID)) * 0x9e3779b97f4a7c15
	return c.msLive[(h>>33)%uint64(len(c.msLive))]
}

// placeCentralMS routes one central task via a live scheduler, parking it
// when none is live (drained on the next scheduler recovery).
func (c *cluster) placeCentralMS(jr *jobRuntime, dur time.Duration, handle int) {
	owner := c.pickScheduler(jr.job.ID)
	if owner < 0 {
		c.msMu.Lock()
		c.msPending = append(c.msPending, centralItem{jr: jr, dur: dur, handle: handle})
		c.msMu.Unlock()
		c.centralDeferred.Add(1)
		return
	}
	c.mscheds[owner].placeTask(jr, dur, handle)
}

// mirrorStarted relays a task start to the placing scheduler's mirror, so
// its own placements' lifecycle stays fresh between snapshot refreshes.
func (c *cluster) mirrorStarted(sched int32, nodeID int, est float64, d time.Duration) {
	ls := c.mscheds[sched]
	ls.mu.Lock()
	if ls.alive && ls.local != nil {
		ls.local.TaskStarted(nodeID, c.nowSeconds(), est, d.Seconds())
	}
	ls.mu.Unlock()
}

// mirrorFinished relays a task completion to the placing scheduler's
// mirror.
func (c *cluster) mirrorFinished(sched int32, nodeID int) {
	ls := c.mscheds[sched]
	ls.mu.Lock()
	if ls.alive && ls.local != nil {
		ls.local.TaskFinished(nodeID, c.nowSeconds())
	}
	ls.mu.Unlock()
}

// failScheduler applies a scripted scheduler failure: the scheduler leaves
// the live set; placements it still has in flight notice on their next
// loop iteration and re-hash to a survivor. Failing a dead scheduler is a
// no-op.
func (c *cluster) failScheduler(id int) {
	ls := c.mscheds[id]
	ls.mu.Lock()
	if !ls.alive {
		ls.mu.Unlock()
		return
	}
	ls.alive = false
	ls.mu.Unlock()
	c.msMu.Lock()
	for i, v := range c.msLive {
		if v == int32(id) {
			c.msLive = append(c.msLive[:i], c.msLive[i+1:]...)
			break
		}
	}
	c.msMu.Unlock()
	c.schedulerFailures.Add(1)
}

// recoverScheduler returns a failed scheduler to service with a fresh
// snapshot and re-places the tasks that waited for a live scheduler.
func (c *cluster) recoverScheduler(id int) {
	ls := c.mscheds[id]
	ls.mu.Lock()
	if ls.alive {
		ls.mu.Unlock()
		return
	}
	ls.refreshLocked()
	ls.alive = true
	ls.mu.Unlock()
	c.msMu.Lock()
	i := 0
	for i < len(c.msLive) && c.msLive[i] < int32(id) {
		i++
	}
	c.msLive = append(c.msLive, 0)
	copy(c.msLive[i+1:], c.msLive[i:])
	c.msLive[i] = int32(id)
	pending := c.msPending
	c.msPending = nil
	c.msMu.Unlock()
	c.schedulerRecoveries.Add(1)
	for _, it := range pending {
		c.placeCentralMS(it.jr, it.dur, it.handle)
	}
}
