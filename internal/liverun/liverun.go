// Package liverun is the live prototype counterpart to the event-driven
// simulator: a goroutine-per-node cluster runtime in which node monitors,
// distributed schedulers, and a centralized scheduler exchange real messages
// (method calls with injected network latency) and tasks really execute
// (time.Sleep), mirroring the paper's Spark plug-in prototype built from
// Sparrow node monitors plus a centralized scheduler and work stealing
// (§3.8, §4.10).
//
// The engine executes any registered policy.Policy (see repro/hawk) — the
// same policy code the simulator runs; what differs is that here
// scheduling, probing, and stealing have real, nonzero costs — exactly the
// delta the paper's "implementation vs simulation" experiment measures
// (Figures 16 and 17).
package liverun

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/workload"
)

// Run executes the trace on a live goroutine cluster under the policy named
// by cfg.Policy and blocks until every job completes. Durations in the
// trace are interpreted as seconds of real execution (sleep) time; callers
// scale traces down first (the paper scales the Google sample by 1000x).
func Run(trace *workload.Trace, cfg policy.Config) (*policy.Report, error) {
	cfg, err := cfg.Normalize(trace)
	if err != nil {
		return nil, err
	}
	// Simulator-only knobs: the prototype estimates exactly (§3.3) and
	// steals Figure 3 groups only. Rejecting loudly beats a Report whose
	// Config records settings the run silently ignored.
	if !cfg.ExactEstimates() {
		return nil, fmt.Errorf("liverun: mis-estimation [%g, %g] is simulator-only; the live engine estimates exactly",
			cfg.MisestimateLo, cfg.MisestimateHi)
	}
	if cfg.StealRandomPositions {
		return nil, fmt.Errorf("liverun: StealRandomPositions is a simulator-only ablation")
	}
	if cfg.DiscardJobReports || cfg.JobSink != nil {
		return nil, fmt.Errorf("liverun: streamed report aggregation (DiscardJobReports/JobSink) is simulator-only")
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	pol, err := policy.New(cfg.Policy, cfg)
	if err != nil {
		return nil, err
	}

	// The live engine classifies exactly, so only each job's true route
	// is checked. The margin is the scenario's worst-case concurrent
	// failures, mirroring the simulator's pre-flight. The check runs on a
	// static view of the full membership, before the cluster (and its
	// churn controller) starts — the live view is mutated concurrently
	// once goroutines are up.
	cls := core.Classifier{Cutoff: cfg.Cutoff}
	preflight := core.NewClusterView(core.NewPartition(cfg.TotalSlots(), pol.ShortPartitionFraction()))
	if err := policy.CheckFeasibility(trace, pol, preflight, cfg.Churn.MaxConcurrentFailures(),
		func(j *workload.Job) []bool {
			return []bool{cls.IsLong(j.AvgTaskDuration())}
		}); err != nil {
		return nil, err
	}

	c := newCluster(cfg, pol)
	defer c.stopAll()

	jobs := append([]*workload.Job(nil), trace.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].SubmitTime < jobs[j].SubmitTime })

	start := time.Now()
	var wg sync.WaitGroup
	results := make([]policy.JobReport, len(jobs))

	for i, j := range jobs {
		// Pace submissions by the trace's submit times in real time.
		target := start.Add(time.Duration(j.SubmitTime * float64(time.Second)))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		idx, job := i, j
		long := cls.IsLong(job.AvgTaskDuration())
		duringOutage := c.central != nil && c.central.isDown()
		jr := newJobRuntime(job, long, time.Now())
		if f := cfg.Faults; f != nil && f.Speculate {
			jr.completed = make([]bool, job.NumTasks())
			jr.specThresh = specThreshold(f.SpeculatePercentile, job.Durations)
		}
		jr.onDone = func(runtime time.Duration) {
			results[idx] = policy.JobReport{
				ID:           job.ID,
				SubmitTime:   job.SubmitTime,
				Runtime:      runtime.Seconds(),
				Tasks:        job.NumTasks(),
				Long:         long,
				TrueLong:     long, // the live engine estimates exactly (§3.3)
				Estimate:     job.AvgTaskDuration(),
				DuringOutage: duringOutage,
			}
			wg.Done()
		}
		c.submit(jr, idx)
	}
	wg.Wait()

	res := &policy.Report{
		Engine:          "live",
		Policy:          c.pol.String(),
		Config:          cfg,
		Jobs:            results,
		Makespan:        time.Since(start).Seconds(),
		StealAttempts:   c.stealAttempts.Load(),
		StealSuccesses:  c.stealSuccesses.Load(),
		EntriesStolen:   c.entriesStolen.Load(),
		Cancels:         c.cancels.Load(),
		TasksExecuted:   c.tasksExecuted.Load(),
		ProbesSent:      c.probesSent.Load(),
		CentralAssigns:  c.centralAssigns.Load(),
		NodeFailures:    c.nodeFailures.Load(),
		NodeRecoveries:  c.nodeRecoveries.Load(),
		TasksReexecuted: c.tasksReexecuted.Load(),
		ProbesLost:      c.probesLost.Load(),
		CentralDeferred: c.centralDeferred.Load(),
		WorkLostSeconds: time.Duration(c.workLostNanos.Load()).Seconds(),

		PlacementConflicts:       c.placementConflicts.Load(),
		ConflictRetries:          c.conflictRetries.Load(),
		SnapshotRefreshes:        c.snapshotRefreshes.Load(),
		SnapshotStalenessSeconds: time.Duration(c.stalenessNanos.Load()).Seconds(),
		SchedulerFailures:        c.schedulerFailures.Load(),
		SchedulerRecoveries:      c.schedulerRecoveries.Load(),
		SchedulerReassigned:      c.schedulerReassigned.Load(),
	}
	if c.central != nil {
		res.CentralOutageSeconds = c.central.outageTotal().Seconds()
	}
	if f := c.faults; f != nil {
		// FallbacksToCentral stays zero: the live engine escalates an
		// exhausted send to a reliable one instead of degrading (see the
		// faultPlane comment on the engine difference).
		res.MessagesDropped = &policy.MessageDrops{
			Probes:  f.drops.probes.Load(),
			Replies: f.drops.replies.Load(),
			Steals:  f.drops.steals.Load(),
			Assigns: f.drops.assigns.Load(),
			Commits: f.drops.commits.Load(),
		}
		res.ProbeTimeouts = f.probeTimeouts.Load()
		res.ProbeRetries = f.probeRetries.Load()
		res.AssignRetries = f.assignRetries.Load()
		res.SpeculativeLaunches = f.specLaunches.Load()
		res.SpeculativeWins = f.specWins.Load()
		res.SpeculativeWasted = f.specWasted.Load()
		res.StragglerSlowdowns = f.straggles.Load()
	}
	return res, nil
}
