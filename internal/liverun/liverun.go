// Package liverun is the live prototype counterpart to the event-driven
// simulator: a goroutine-per-node cluster runtime in which node monitors,
// distributed schedulers, and a centralized scheduler exchange real messages
// (method calls with injected network latency) and tasks really execute
// (time.Sleep), mirroring the paper's Spark plug-in prototype built from
// Sparrow node monitors plus a centralized scheduler and work stealing
// (§3.8, §4.10).
//
// The scheduling policies are the same core package components the
// simulator uses; what differs is that here scheduling, probing, and
// stealing have real, nonzero costs — exactly the delta the paper's
// "implementation vs simulation" experiment measures (Figures 16 and 17).
package liverun

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Mode selects the scheduler for a live run. The paper's prototype
// implements Sparrow and Hawk.
type Mode int

const (
	// ModeSparrow runs batch sampling for every job.
	ModeSparrow Mode = iota
	// ModeHawk runs the hybrid scheduler: centralized long jobs in the
	// general partition, distributed short jobs, randomized stealing.
	ModeHawk
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeHawk {
		return "hawk"
	}
	return "sparrow"
}

// Config parameterizes a live cluster run. Durations in the trace are
// interpreted as seconds of real execution (sleep) time; callers scale
// traces down first (the paper scales the Google sample by 1000x).
type Config struct {
	// NumNodes is the number of node-monitor goroutines (paper: 100).
	NumNodes int
	// NumSchedulers is the number of distributed schedulers; jobs are
	// spread over them round-robin (paper: 10).
	NumSchedulers int
	Mode          Mode
	// Cutoff classifies long vs short jobs, in the trace's (scaled) time
	// unit. Zero means the trace default.
	Cutoff float64
	// ShortPartitionFraction reserves nodes for short tasks (Hawk only).
	// Negative or zero means the trace default.
	ShortPartitionFraction float64
	// ProbeRatio is probes-per-task for batch sampling (default 2).
	ProbeRatio int
	// StealCap bounds steal contacts per idle transition (default 10).
	StealCap int
	// NetworkDelay is the injected one-way message latency (default
	// 0.5 ms, matching the simulator's model).
	NetworkDelay time.Duration
	// DisableStealing turns stealing off (Hawk only).
	DisableStealing bool
	// Seed drives probe placement and steal-victim sampling.
	Seed int64
}

func (c Config) withDefaults(t *workload.Trace) (Config, error) {
	if c.NumNodes <= 0 {
		return c, fmt.Errorf("liverun: NumNodes must be positive, got %d", c.NumNodes)
	}
	if c.NumSchedulers <= 0 {
		c.NumSchedulers = 10
	}
	if c.Cutoff == 0 {
		c.Cutoff = t.Cutoff
	}
	if c.Cutoff <= 0 {
		return c, fmt.Errorf("liverun: cutoff must be positive, got %g", c.Cutoff)
	}
	if c.ShortPartitionFraction <= 0 {
		c.ShortPartitionFraction = t.ShortPartitionFraction
	}
	if c.ProbeRatio <= 0 {
		c.ProbeRatio = core.DefaultProbeRatio
	}
	if c.StealCap <= 0 {
		c.StealCap = core.DefaultStealCap
	}
	if c.NetworkDelay < 0 {
		return c, fmt.Errorf("liverun: negative network delay")
	}
	if c.NetworkDelay == 0 {
		c.NetworkDelay = 500 * time.Microsecond
	}
	return c, nil
}

// JobResult records one job's live outcome.
type JobResult struct {
	ID      int
	Runtime float64 // seconds, submission to last task completion
	Long    bool
	Tasks   int
}

// Result aggregates a live run.
type Result struct {
	Mode           Mode
	Jobs           []JobResult
	Elapsed        time.Duration
	StealAttempts  int64
	StealSuccesses int64
	EntriesStolen  int64
	Cancels        int64
	TasksExecuted  int64
}

// ShortRuntimes returns runtimes of short-classified jobs in seconds.
func (r *Result) ShortRuntimes() []float64 { return r.classRuntimes(false) }

// LongRuntimes returns runtimes of long-classified jobs in seconds.
func (r *Result) LongRuntimes() []float64 { return r.classRuntimes(true) }

func (r *Result) classRuntimes(long bool) []float64 {
	var out []float64
	for _, j := range r.Jobs {
		if j.Long == long {
			out = append(out, j.Runtime)
		}
	}
	return out
}

// Run executes the trace on a live goroutine cluster and blocks until every
// job completes.
func Run(trace *workload.Trace, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(trace)
	if err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	for _, j := range trace.Jobs {
		if j.NumTasks() > cfg.NumNodes {
			return nil, fmt.Errorf("liverun: job %d has %d tasks > %d nodes; cap tasks first", j.ID, j.NumTasks(), cfg.NumNodes)
		}
	}

	c := newCluster(cfg)
	defer c.stopAll()

	jobs := append([]*workload.Job(nil), trace.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].SubmitTime < jobs[j].SubmitTime })

	start := time.Now()
	var wg sync.WaitGroup
	results := make([]JobResult, len(jobs))

	for i, j := range jobs {
		// Pace submissions by the trace's submit times in real time.
		target := start.Add(time.Duration(j.SubmitTime * float64(time.Second)))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		idx, job := i, j
		long := job.AvgTaskDuration() >= cfg.Cutoff
		jr := newJobRuntime(job, long, time.Now())
		jr.onDone = func(runtime time.Duration) {
			results[idx] = JobResult{
				ID:      job.ID,
				Runtime: runtime.Seconds(),
				Long:    long,
				Tasks:   job.NumTasks(),
			}
			wg.Done()
		}
		c.submit(jr, idx)
	}
	wg.Wait()

	res := &Result{
		Mode:           cfg.Mode,
		Jobs:           results,
		Elapsed:        time.Since(start),
		StealAttempts:  c.stealAttempts.Load(),
		StealSuccesses: c.stealSuccesses.Load(),
		EntriesStolen:  c.entriesStolen.Load(),
		Cancels:        c.cancels.Load(),
		TasksExecuted:  c.tasksExecuted.Load(),
	}
	return res, nil
}
