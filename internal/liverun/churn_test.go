package liverun

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
)

// churnLiveTrace is a small mixed workload whose tasks are long enough
// (hundreds of ms) that a failure scheduled mid-run reliably interrupts
// executing tasks.
func churnLiveTrace() *workload.Trace {
	var jobs []*workload.Job
	id := 0
	for burst := 0; burst < 3; burst++ {
		at := 0.05 * float64(burst)
		for i := 0; i < 4; i++ {
			id++
			jobs = append(jobs, job(id, at, 120, 120))
		}
		id++
		jobs = append(jobs, job(id, at, 900, 900)) // long
	}
	return msTrace(500, jobs...)
}

// The live engine must mirror the simulator's membership transitions:
// scripted failures kill running work, the re-routing machinery re-probes
// and re-assigns it, and every job still completes.
func TestLiveChurnAllJobsComplete(t *testing.T) {
	tr := churnLiveTrace()
	cfg := fastConfig("hawk")
	cfg.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 0.15, Kind: policy.ChurnFail, Count: 6},
		{At: 0.55, Kind: policy.ChurnRecover, Count: 6},
		{At: 0.6, Kind: policy.ChurnFail, Node: 19},
		{At: 0.8, Kind: policy.ChurnRecover, Node: 19},
	}}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	for _, j := range res.Jobs {
		if j.Runtime <= 0 {
			t.Fatalf("job %d runtime %v", j.ID, j.Runtime)
		}
	}
	if res.NodeFailures != 7 || res.NodeRecoveries != 7 {
		t.Errorf("failures/recoveries = %d/%d, want 7/7", res.NodeFailures, res.NodeRecoveries)
	}
	tasks := 0
	for _, j := range tr.Jobs {
		tasks += j.NumTasks()
	}
	if res.TasksExecuted < int64(tasks) {
		t.Errorf("executed %d task attempts for %d tasks", res.TasksExecuted, tasks)
	}
}

// A scripted central outage on the live engine parks long-job placement in
// the backlog until central-up, marks jobs submitted meanwhile, and
// accounts the downtime.
func TestLiveCentralOutage(t *testing.T) {
	tr := churnLiveTrace()
	cfg := fastConfig("hawk")
	cfg.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 0.02, Kind: policy.ChurnCentralDown},
		{At: 0.5, Kind: policy.ChurnCentralUp},
	}}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.CentralDeferred == 0 {
		t.Error("long tasks submitted during the outage must be deferred")
	}
	if res.CentralOutageSeconds < 0.4 {
		t.Errorf("outage seconds = %g, want ~0.48", res.CentralOutageSeconds)
	}
	marked := 0
	for _, j := range res.Jobs {
		if j.DuringOutage {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no job carries the DuringOutage mark")
	}
}

// Heterogeneous speeds slow the live cluster down: the same trace on a
// uniformly half-speed cluster takes measurably longer.
func TestLiveHeterogeneity(t *testing.T) {
	tr := msTrace(500,
		job(1, 0, 200, 200, 200),
		job(2, 0, 200, 200, 200),
	)
	base := fastConfig("sparrow")
	base.NumNodes = 4
	fast, err := Run(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	slowCfg := fastConfig("sparrow")
	slowCfg.NumNodes = 4
	slowCfg.Heterogeneity = &policy.Heterogeneity{Classes: []policy.SpeedClass{{Fraction: 1, Speed: 0.5}}}
	slow, err := Run(tr, slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan < 1.5*fast.Makespan {
		t.Errorf("half-speed makespan %.3fs vs nominal %.3fs: expected ~2x", slow.Makespan, fast.Makespan)
	}
}

// The churn goroutine must stop with the cluster: a run that ends before
// its scripted events fire does not leak work past stopAll.
func TestLiveChurnStopsWithCluster(t *testing.T) {
	tr := msTrace(500, job(1, 0, 5), job(2, 0, 5))
	cfg := fastConfig("sparrow")
	cfg.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 3600, Kind: policy.ChurnFail, Count: 5}, // far beyond the run
	}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := Run(tr, cfg); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run with a far-future churn event did not return")
	}
}
