package liverun

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
)

// fastConfig returns a config with minimal latency so tests run quickly.
func fastConfig(pol string) policy.Config {
	return policy.Config{
		NumNodes:      20,
		NumSchedulers: 3,
		Policy:        pol,
		NetworkDelay:  (50 * time.Microsecond).Seconds(),
		Seed:          1,
	}
}

// msTrace builds a trace whose durations are given in milliseconds.
func msTrace(cutoffMs float64, jobs ...*workload.Job) *workload.Trace {
	tr := &workload.Trace{
		Name:                   "live",
		Jobs:                   jobs,
		Cutoff:                 cutoffMs / 1000,
		ShortPartitionFraction: 0.2,
	}
	for _, j := range tr.Jobs {
		for i := range j.Durations {
			j.Durations[i] /= 1000 // ms -> seconds
		}
	}
	return tr
}

func job(id int, submit float64, dursMs ...float64) *workload.Job {
	return &workload.Job{ID: id, SubmitTime: submit, Durations: dursMs}
}

func TestLiveAllJobsComplete(t *testing.T) {
	tr := msTrace(500,
		job(1, 0, 10, 20, 30),
		job(2, 0, 5),
		job(3, 0.01, 2000, 2000), // long
		job(4, 0.02, 15, 15),
	)
	for _, pol := range []string{"sparrow", "hawk"} {
		res, err := Run(tr, fastConfig(pol))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if len(res.Jobs) != 4 {
			t.Fatalf("%s: %d results", pol, len(res.Jobs))
		}
		if res.TasksExecuted != 8 {
			t.Fatalf("%s: executed %d tasks, want 8", pol, res.TasksExecuted)
		}
		for _, j := range res.Jobs {
			if j.Runtime <= 0 {
				t.Fatalf("%s: job %d runtime %v", pol, j.ID, j.Runtime)
			}
		}
	}
}

func TestLiveClassification(t *testing.T) {
	tr := msTrace(500, job(1, 0, 10), job(2, 0, 2000))
	res, err := Run(tr, fastConfig("hawk"))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if j.ID == 1 && j.Long {
			t.Error("job 1 misclassified long")
		}
		if j.ID == 2 && !j.Long {
			t.Error("job 2 misclassified short")
		}
	}
	if len(res.ShortRuntimes()) != 1 || len(res.LongRuntimes()) != 1 {
		t.Fatal("class split wrong")
	}
}

func TestLiveRuntimeAtLeastTaskDuration(t *testing.T) {
	tr := msTrace(500, job(1, 0, 50, 50))
	res, err := Run(tr, fastConfig("sparrow"))
	if err != nil {
		t.Fatal(err)
	}
	if rt := res.Jobs[0].Runtime; rt < 0.050 {
		t.Fatalf("runtime %v s < task duration 50 ms", rt)
	}
}

func TestLiveValidation(t *testing.T) {
	tr := msTrace(500, job(1, 0, 10))
	if _, err := Run(tr, policy.Config{NumNodes: 0}); err == nil {
		t.Error("zero nodes should error")
	}
	bad := msTrace(500, job(1, 0, 10))
	bad.Cutoff = 0
	if _, err := Run(bad, policy.Config{NumNodes: 10}); err == nil {
		t.Error("zero cutoff should error")
	}
	wide := msTrace(500, job(1, 0, make([]float64, 30)...))
	for i := range wide.Jobs[0].Durations {
		wide.Jobs[0].Durations[i] = 0.001
	}
	if _, err := Run(wide, fastConfig("sparrow")); err == nil {
		t.Error("job wider than the cluster should error")
	}
}

func TestLiveHawkSteals(t *testing.T) {
	// Long tasks occupy the general partition while short tasks queue
	// behind them; the short-partition nodes should steal at least once.
	jobs := []*workload.Job{}
	id := 0
	for i := 0; i < 4; i++ { // long jobs saturating the 16 general nodes
		id++
		jobs = append(jobs, job(id, 0, 300, 300, 300, 300))
	}
	for i := 0; i < 20; i++ { // short jobs arriving right behind
		id++
		jobs = append(jobs, job(id, 0.005, 10, 10))
	}
	tr := msTrace(100, jobs...)
	res, err := Run(tr, fastConfig("hawk"))
	if err != nil {
		t.Fatal(err)
	}
	if res.StealAttempts == 0 {
		t.Fatal("no steal attempts in a congested hawk cluster")
	}
}

// The live engine executes registry policies the simulator also runs; the
// split-cluster baseline exercises the short-only probe pool and a central
// queue in the same live run.
func TestLiveSplitPolicy(t *testing.T) {
	tr := msTrace(500, job(1, 0, 10, 10), job(2, 0, 2000), job(3, 0.01, 5))
	tr.ShortPartitionFraction = 0.5
	res, err := Run(tr, fastConfig("split"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 4 {
		t.Fatalf("executed %d tasks, want 4", res.TasksExecuted)
	}
	if res.CentralAssigns == 0 {
		t.Fatal("split must place long jobs centrally")
	}
	if res.StealAttempts != 0 {
		t.Fatal("split must not steal")
	}
}

func TestLiveDisableStealing(t *testing.T) {
	tr := msTrace(500, job(1, 0, 10), job(2, 0, 2000))
	cfg := fastConfig("hawk")
	cfg.DisableStealing = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StealAttempts != 0 {
		t.Fatalf("stealing disabled but %d attempts recorded", res.StealAttempts)
	}
}

func TestLiveCentralFeedbackSerializesLongs(t *testing.T) {
	// Two long jobs of two tasks each on a cluster with exactly two
	// general nodes: central placement must spread tasks across both
	// general nodes and the queue feedback keeps assignments balanced,
	// so all tasks complete and both general nodes were used.
	tr := msTrace(100,
		job(1, 0, 200, 200),
		job(2, 0.001, 200, 200),
	)
	tr.ShortPartitionFraction = 0.5 // 10 of 20 nodes short-only
	cfg := fastConfig("hawk")
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 4 {
		t.Fatalf("executed %d tasks, want 4", res.TasksExecuted)
	}
	for _, j := range res.Jobs {
		if !j.Long {
			t.Fatalf("job %d should classify long", j.ID)
		}
		// With 10 general nodes, the four 200 ms tasks can run fully in
		// parallel; any runtime beyond ~3x the task duration means the
		// central queue stacked them pathologically.
		if j.Runtime > 0.6 {
			t.Fatalf("job %d runtime %.3f s, want < 0.6 (parallel placement)", j.ID, j.Runtime)
		}
	}
}
