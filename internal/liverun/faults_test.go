package liverun

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// faultLiveTrace is a small mixed workload with tasks long enough
// (hundreds of ms) that stragglers and speculative duplicates have time to
// matter before the run drains.
func faultLiveTrace() *workload.Trace {
	var jobs []*workload.Job
	id := 0
	for burst := 0; burst < 3; burst++ {
		at := 0.05 * float64(burst)
		for i := 0; i < 4; i++ {
			id++
			jobs = append(jobs, job(id, at, 120, 120, 120))
		}
		id++
		jobs = append(jobs, job(id, at, 900, 900)) // long
	}
	return msTrace(500, jobs...)
}

// The live engine's conservation invariant: under any fault mix every
// submitted job completes exactly once (the report has one entry per job)
// and the attempt accounting brackets hold. Together with the simulator's
// twenty-mix sweep this covers both engines, as the issue requires; the
// live mixes stay small because every backoff and straggle here burns real
// wall-clock time.
func TestLiveFaultConservation(t *testing.T) {
	mixes := []struct {
		name   string
		policy string
		spec   policy.FaultSpec
		sched  bool
	}{
		{name: "probe-loss-sparrow", policy: "sparrow",
			spec: policy.FaultSpec{ProbeLoss: 0.3, ReplyLoss: 0.2, MaxRetries: 4}},
		{name: "steal-assign-loss-hawk", policy: "hawk",
			spec: policy.FaultSpec{StealLoss: 0.5, AssignLoss: 0.3, MaxRetries: 4}},
		{name: "jitter-centralized", policy: "centralized",
			spec: policy.FaultSpec{AssignLoss: 0.2, Jitter: 0.002, MaxRetries: 4}},
		{name: "straggle-hawk", policy: "hawk",
			spec: policy.FaultSpec{ProbeLoss: 0.1, Stragglers: []policy.StragglerEvent{
				{At: 0.1, Count: 5, Factor: 3},
				{At: 0.5, Count: 5, Factor: 1}, // recovery re-times in-flight work
			}}},
		{name: "speculate-sparrow", policy: "sparrow",
			spec: policy.FaultSpec{Speculate: true, SpeculatePercentile: 50,
				Stragglers: []policy.StragglerEvent{{At: 0.05, Count: 4, Factor: 8}}}},
		{name: "commit-loss-split", policy: "split", sched: true,
			spec: policy.FaultSpec{CommitLoss: 0.3, AssignLoss: 0.2, MaxRetries: 4}},
		{name: "everything-hawk", policy: "hawk", sched: true,
			spec: policy.FaultSpec{ProbeLoss: 0.2, ReplyLoss: 0.1, StealLoss: 0.3,
				AssignLoss: 0.2, CommitLoss: 0.2, Jitter: 0.001, MaxRetries: 4,
				Speculate: true, SpeculatePercentile: 75,
				Stragglers: []policy.StragglerEvent{{At: 0.1, Count: 3, Factor: 5}}}},
	}
	for i, m := range mixes {
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			tr := faultLiveTrace()
			cfg := fastConfig(m.policy)
			cfg.Seed = int64(7 + i)
			spec := m.spec
			cfg.Faults = &spec
			if m.sched {
				cfg.Schedulers = &policy.SchedulerSpec{Count: 3, SnapshotInterval: 0.05}
			}
			res, err := Run(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Jobs) != tr.Len() {
				t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
			}
			tasks := 0
			for _, j := range tr.Jobs {
				tasks += j.NumTasks()
			}
			for _, j := range res.Jobs {
				if j.Runtime <= 0 {
					t.Fatalf("job %d runtime %v", j.ID, j.Runtime)
				}
			}
			if res.TasksExecuted < int64(tasks) {
				t.Errorf("executed %d task attempts for %d tasks", res.TasksExecuted, tasks)
			}
			if res.MessagesDropped == nil {
				t.Fatal("fault run reported no MessagesDropped block")
			}
			// A duplicate may still be in flight when the last original
			// completes and the run tears down, so launches bound the
			// resolved outcomes from above rather than matching exactly.
			if res.SpeculativeWins+res.SpeculativeWasted > res.SpeculativeLaunches {
				t.Errorf("speculation resolved %d+%d outcomes from %d launches",
					res.SpeculativeWins, res.SpeculativeWasted, res.SpeculativeLaunches)
			}
			if len(spec.Stragglers) > 0 && res.StragglerSlowdowns == 0 {
				t.Error("straggler events applied no slowdowns")
			}
		})
	}
}

// A fault-free run must not grow a fault plane: no MessagesDropped block,
// zero fault counters.
func TestLiveFaultFreeReportOmitsCounters(t *testing.T) {
	res, err := Run(faultLiveTrace(), fastConfig("hawk"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesDropped != nil {
		t.Errorf("fault-free run reported drops %+v", res.MessagesDropped)
	}
	if res.ProbeTimeouts != 0 || res.ProbeRetries != 0 || res.AssignRetries != 0 ||
		res.SpeculativeLaunches != 0 || res.StragglerSlowdowns != 0 {
		t.Error("fault-free run reported nonzero fault counters")
	}
}

// Heavy probe and reply loss must visibly engage the defenses — timeouts,
// retries, drop counters — while the reliable final send keeps every job
// completing (the live engine's no-hang guarantee).
func TestLiveFaultDefensesEngage(t *testing.T) {
	tr := faultLiveTrace()
	cfg := fastConfig("sparrow")
	cfg.Faults = &policy.FaultSpec{ProbeLoss: 0.6, ReplyLoss: 0.5, MaxRetries: 2, RetryBackoff: 0.001}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.MessagesDropped.Probes == 0 || res.MessagesDropped.Replies == 0 {
		t.Errorf("60%%/50%% loss dropped %d probes, %d replies", res.MessagesDropped.Probes, res.MessagesDropped.Replies)
	}
	if res.ProbeTimeouts == 0 || res.ProbeRetries == 0 {
		t.Errorf("loss engaged %d timeouts, %d retries", res.ProbeTimeouts, res.ProbeRetries)
	}
	if res.FallbacksToCentral != 0 {
		t.Errorf("live engine recorded %d central fallbacks; exhaustion escalates to a reliable send instead", res.FallbacksToCentral)
	}
}

// Speculation rescues straggler-stretched tasks: with a quarter of the
// cluster slowed 10x, duplicates land on nominal nodes and win the race
// while the stragglers' originals grind on to a wasted finish.
func TestLiveSpeculationWins(t *testing.T) {
	var jobs []*workload.Job
	for id := 1; id <= 3; id++ {
		durs := make([]float64, 20)
		for i := range durs {
			durs[i] = 150
		}
		jobs = append(jobs, job(id, 0.02*float64(id), durs...))
	}
	tr := msTrace(500, jobs...)
	cfg := fastConfig("sparrow")
	cfg.Faults = &policy.FaultSpec{
		Speculate: true, SpeculatePercentile: 95,
		Stragglers: []policy.StragglerEvent{{At: 0, Count: 5, Factor: 10}},
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.SpeculativeLaunches == 0 {
		t.Fatal("no duplicates launched against 10x stragglers")
	}
	if res.SpeculativeWins == 0 {
		t.Errorf("%d duplicates launched, none won; wasted=%d", res.SpeculativeLaunches, res.SpeculativeWasted)
	}
}
