package liverun

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// multiSchedTrace is central-heavy: mostly long jobs, so the claim/commit
// path sees sustained concurrent placement pressure.
func multiSchedTrace() *workload.Trace {
	var jobs []*workload.Job
	id := 0
	for burst := 0; burst < 4; burst++ {
		at := 0.03 * float64(burst)
		for i := 0; i < 5; i++ {
			id++
			jobs = append(jobs, job(id, at, 700, 700)) // long: centrally placed
		}
		id++
		jobs = append(jobs, job(id, at, 30, 30)) // short: probe path
	}
	return msTrace(500, jobs...)
}

// TestLiveMultiScheduler drives the concurrent claim/commit path: several
// schedulers placing against stale mirrors, with a snapshot interval short
// enough to refresh mid-run. Run under -race in CI, this is the data-race
// check on the whole multi-scheduler commit machinery.
func TestLiveMultiScheduler(t *testing.T) {
	tr := multiSchedTrace()
	cfg := fastConfig("hawk")
	cfg.Schedulers = &policy.SchedulerSpec{Count: 4, SnapshotInterval: 0.05}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.CentralAssigns == 0 {
		t.Fatal("no central placements committed")
	}
	if res.SnapshotRefreshes == 0 {
		t.Fatal("no snapshot refreshes despite a 50 ms interval")
	}
	if res.ConflictRetries > res.PlacementConflicts {
		t.Fatalf("retries %d > conflicts %d", res.ConflictRetries, res.PlacementConflicts)
	}
	if res.SnapshotStalenessSeconds < 0 {
		t.Fatalf("negative staleness %g", res.SnapshotStalenessSeconds)
	}
}

// TestLiveSchedulerChurn scripts a scheduler failure and recovery mid-run:
// placements re-hash to the survivor, the recovery rejoins with a fresh
// snapshot, and every job completes.
func TestLiveSchedulerChurn(t *testing.T) {
	tr := multiSchedTrace()
	cfg := fastConfig("hawk")
	cfg.Schedulers = &policy.SchedulerSpec{Count: 2, SnapshotInterval: 0.05}
	cfg.Churn = &policy.ChurnSpec{Events: policy.SchedulerChurn(1, 0.02, 0.4)}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.SchedulerFailures != 1 || res.SchedulerRecoveries != 1 {
		t.Fatalf("expected 1 failure + 1 recovery, got fail=%d recover=%d",
			res.SchedulerFailures, res.SchedulerRecoveries)
	}
}

// TestLiveAllSchedulersDown: a window with no live scheduler parks central
// placements until the recovery drains them.
func TestLiveAllSchedulersDown(t *testing.T) {
	tr := multiSchedTrace()
	cfg := fastConfig("hawk")
	cfg.Schedulers = &policy.SchedulerSpec{Count: 2, SnapshotInterval: 0.05}
	cfg.Churn = &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 0.01, Kind: policy.ChurnSchedFail, Node: 0},
		{At: 0.01, Kind: policy.ChurnSchedFail, Node: 1},
		{At: 0.3, Kind: policy.ChurnSchedRecover, Node: 0},
		{At: 0.3, Kind: policy.ChurnSchedRecover, Node: 1},
	}}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != tr.Len() {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), tr.Len())
	}
	if res.SchedulerFailures != 2 || res.SchedulerRecoveries != 2 {
		t.Fatalf("expected 2 failures + 2 recoveries, got fail=%d recover=%d",
			res.SchedulerFailures, res.SchedulerRecoveries)
	}
}
