package liverun

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/randdist"
	"repro/internal/workload"
)

// cluster wires the node monitors, the distributed schedulers, and the
// centralized scheduler together.
type cluster struct {
	cfg      policy.Config
	pol      policy.Policy
	part     core.Partition
	steal    core.StealPolicy
	netDelay time.Duration
	nodes    []*nodeMonitor
	dscheds  []*distScheduler
	central  *centralScheduler
	stop     chan struct{}
	started  time.Time

	// view is the dynamic cluster model shared with the simulator's
	// engine: membership plus per-node speed factors. On a churn run
	// (dynamicView) viewMu serializes every sampler and every churn
	// transition against it (the simulator gets this for free from its
	// single-threaded event loop); it also guards probeSrc, churnSrc,
	// lostProbes, and parkedJobs. Without churn the view is immutable
	// after construction, so the samplers skip the cluster-wide lock —
	// the static fast path pays one bool check, mirroring the
	// simulator's zero-overhead contract.
	viewMu      sync.Mutex
	view        *core.ClusterView
	dynamicView bool             // churn scripted: view mutates at runtime
	probeSrc    *randdist.Source // stream for failure-re-sent probes
	churnSrc    *randdist.Source // stream for random churn picks
	lostProbes  []*jobRuntime    // probes waiting for a live pool node
	parkedJobs  []*jobRuntime    // jobs whose live pool was narrower than their task count

	stealAttempts  atomic.Int64
	stealSuccesses atomic.Int64
	entriesStolen  atomic.Int64
	cancels        atomic.Int64
	tasksExecuted  atomic.Int64
	probesSent     atomic.Int64
	centralAssigns atomic.Int64

	nodeFailures    atomic.Int64
	nodeRecoveries  atomic.Int64
	tasksReexecuted atomic.Int64
	probesLost      atomic.Int64
	centralDeferred atomic.Int64
	workLostNanos   atomic.Int64

	// Multi-scheduler state (nil/zero unless Config.Schedulers is set; see
	// sched.go). msMu guards the live-scheduler list and the placements
	// parked while no scheduler was live; it is never held while acquiring
	// a scheduler's or the central scheduler's lock.
	mscheds   []*liveScheduler
	msMu      sync.Mutex
	msLive    []int32
	msPending []centralItem

	placementConflicts  atomic.Int64
	conflictRetries     atomic.Int64
	snapshotRefreshes   atomic.Int64
	stalenessNanos      atomic.Int64
	schedulerFailures   atomic.Int64
	schedulerRecoveries atomic.Int64
	schedulerReassigned atomic.Int64

	// faults is the gray-failure plane (faults.go), nil unless Config.Faults
	// is set — the fault-free run pays one nil check per message, mirroring
	// the simulator's contract.
	faults *faultPlane
}

func newCluster(cfg policy.Config, pol policy.Policy) *cluster {
	c := &cluster{
		cfg:      cfg,
		pol:      pol,
		netDelay: time.Duration(cfg.NetworkDelay * float64(time.Second)),
		stop:     make(chan struct{}),
		started:  time.Now(),
	}
	slots := cfg.TotalSlots()
	c.part = core.NewPartition(slots, pol.ShortPartitionFraction())
	c.steal = core.StealPolicy{Cap: cfg.StealCap, Enabled: pol.Steal()}

	c.view = core.NewClusterView(c.part)
	if cfg.Heterogeneity != nil {
		// Seed+2, matching the simulator, so both engines agree on which
		// node is slow.
		c.view.SetSpeeds(cfg.Heterogeneity.Factors(slots, cfg.Seed+2))
	}
	if cfg.Churn != nil && len(cfg.Churn.Events) > 0 {
		// Before any goroutine can observe the view: membership tracking
		// flips the samplers off the static fast path, and dynamicView
		// turns the view lock on.
		c.view.EnableMembership()
		c.dynamicView = true
	}

	root := randdist.New(cfg.Seed)
	c.nodes = make([]*nodeMonitor, slots)
	for i := range c.nodes {
		c.nodes[i] = newNodeMonitor(i, c, root.Fork())
		c.nodes[i].speed = c.view.Speed(i)
	}
	c.dscheds = make([]*distScheduler, cfg.NumSchedulers)
	for i := range c.dscheds {
		c.dscheds[i] = &distScheduler{c: c, src: root.Fork()}
	}
	if pool := pol.CentralPool(); pool != policy.PoolNone {
		c.central = newCentralScheduler(c, pool.IDs(c.part))
	}
	if spec := cfg.Schedulers; spec != nil {
		if c.central != nil {
			c.central.claims = make([]claimRec, slots)
		}
		c.mscheds = make([]*liveScheduler, spec.Count)
		c.msLive = make([]int32, 0, spec.Count)
		interval := time.Duration(spec.SnapshotInterval * float64(time.Second))
		for i := range c.mscheds {
			ls := &liveScheduler{id: int32(i), c: c, alive: true, snapAt: time.Now()}
			if c.central != nil {
				ls.local = core.NewCentralQueue(pol.CentralPool().IDs(c.part))
			}
			c.mscheds[i] = ls
			c.msLive = append(c.msLive, int32(i))
			go ls.run(interval)
		}
	}
	c.probeSrc = root.Fork()
	c.churnSrc = root.Fork()
	if cfg.Faults != nil {
		c.faults = newFaultPlane(*cfg.Faults, cfg.Seed)
	}
	for _, n := range c.nodes {
		go n.run()
	}
	if c.cfg.Churn != nil && len(c.cfg.Churn.Events) > 0 {
		go c.runChurn()
	}
	if c.faults != nil && len(c.faults.spec.Stragglers) > 0 {
		go c.runStragglers()
	}
	return c
}

func (c *cluster) stopAll() { close(c.stop) }

// nowSeconds is the cluster's clock for the centralized waiting-time queue.
func (c *cluster) nowSeconds() float64 { return time.Since(c.started).Seconds() }

// latency injects one network hop of delay, plus the fault plane's per-leg
// jitter when configured.
func (c *cluster) latency() {
	d := c.netDelay
	if c.faults != nil {
		d += c.faults.jitterDelay()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// submit routes one job per the policy's decision: to the centralized
// scheduler or to a distributed scheduler. Jobs hash-partition over the
// live schedulers in the multi-scheduler model (matching the simulator's
// owner hash) and round-robin otherwise.
func (c *cluster) submit(jr *jobRuntime, seq int) {
	dec := c.pol.Route(policy.JobInfo{
		ID: jr.job.ID, Tasks: jr.job.NumTasks(), Estimate: jr.est, Long: jr.long,
	})
	if dec.Action == policy.ActionCentral {
		if c.mscheds != nil {
			go func() {
				for i := 0; i < jr.job.NumTasks(); i++ {
					dur := time.Duration(jr.job.Durations[i] * float64(time.Second))
					c.placeCentralMS(jr, dur, i)
				}
			}()
			return
		}
		go c.central.schedule(jr)
		return
	}
	pick := seq
	if c.mscheds != nil {
		if owner := c.pickScheduler(jr.job.ID); owner >= 0 {
			pick = int(owner)
		}
	}
	ds := c.dscheds[pick%len(c.dscheds)]
	go ds.schedule(jr, dec.Pool)
}

// runChurn replays the scripted cluster transitions on the real-time
// clock, mirroring the simulator's typed churn events: events apply in
// time order (stable for scripted ties), random picks draw from the
// cluster's seeded churn stream.
func (c *cluster) runChurn() {
	events := append([]policy.ChurnEvent(nil), c.cfg.Churn.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		target := c.started.Add(time.Duration(ev.At * float64(time.Second)))
		if d := time.Until(target); d > 0 {
			select {
			case <-time.After(d):
			case <-c.stop:
				return
			}
		}
		switch ev.Kind {
		case policy.ChurnFail:
			for _, id := range c.pickLive(ev) {
				c.failNode(id)
			}
		case policy.ChurnRecover:
			for _, id := range c.pickDead(ev) {
				c.recoverNode(id)
			}
		case policy.ChurnCentralDown:
			if c.central != nil {
				c.central.setDown()
			}
		case policy.ChurnCentralUp:
			if c.central != nil {
				c.central.setUp()
			}
		case policy.ChurnSchedFail:
			if c.mscheds != nil {
				c.failScheduler(ev.Node)
			}
		case policy.ChurnSchedRecover:
			if c.mscheds != nil {
				c.recoverScheduler(ev.Node)
			}
		}
	}
}

// pickLive resolves a fail event's targets: the explicit node, or Count
// random live nodes.
func (c *cluster) pickLive(ev policy.ChurnEvent) []int {
	if ev.Count == 0 {
		return []int{ev.Node}
	}
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	return c.view.SampleAllInto(nil, c.churnSrc, ev.Count)
}

// pickDead resolves a recover event's targets: the explicit node, or Count
// random dead nodes.
func (c *cluster) pickDead(ev policy.ChurnEvent) []int {
	if ev.Count == 0 {
		return []int{ev.Node}
	}
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	dead := c.view.AppendDead(nil)
	k := ev.Count
	if k > len(dead) {
		k = len(dead)
	}
	picks := c.churnSrc.SampleWithoutReplacementInto(nil, len(dead), k)
	ids := make([]int, len(picks))
	for i, p := range picks {
		ids[i] = dead[p]
	}
	return ids
}

// failNode removes one node from the live cluster: membership, the central
// queue's server set, the node's queue (every entry re-routed), and the
// running task (killed mid-sleep; the executing goroutine re-routes it).
func (c *cluster) failNode(id int) {
	c.viewMu.Lock()
	if !c.view.Alive(id) {
		c.viewMu.Unlock()
		return
	}
	c.view.Fail(id)
	c.viewMu.Unlock()
	c.nodeFailures.Add(1)
	if c.central != nil {
		c.central.remove(id)
	}
	dropped := c.nodes[id].goDown()
	for _, e := range dropped {
		c.rerouteEntry(e)
	}
}

// recoverNode returns one node to the cluster, idle and empty, and
// releases work waiting on capacity.
func (c *cluster) recoverNode(id int) {
	c.viewMu.Lock()
	if c.view.Alive(id) {
		c.viewMu.Unlock()
		return
	}
	c.view.Recover(id)
	lost := c.lostProbes
	c.lostProbes = nil
	parked := c.parkedJobs
	c.parkedJobs = nil
	c.viewMu.Unlock()
	c.nodeRecoveries.Add(1)
	if c.central != nil && c.pol.CentralPool().Contains(c.part, id) {
		c.central.add(id)
	}
	c.nodes[id].comeUp()
	for _, jr := range lost {
		c.resendProbe(jr)
	}
	for _, jr := range parked {
		dec := c.pol.Route(policy.JobInfo{
			ID: jr.job.ID, Tasks: jr.job.NumTasks(), Estimate: jr.est, Long: jr.long,
		})
		go c.dscheds[0].schedule(jr, dec.Pool)
	}
}

// rerouteEntry re-places one queue entry dropped by a failed node: probes
// are re-sent to a live pool node, centrally placed tasks re-assigned.
// (Queued tasks had not started, so they re-assign without counting as
// re-executed; the killed running task is accounted by its executor.) A
// speculative duplicate is simply dropped as wasted — its original runs
// (or re-serves) independently.
func (c *cluster) rerouteEntry(e entry) {
	if e.spec {
		c.faults.specWasted.Add(1)
		return
	}
	if e.probe {
		c.probesLost.Add(1)
		c.resendProbe(e.job)
		return
	}
	c.central.placeTask(e.job, e.dur, e.handle)
}

// resendProbe sends one replacement probe for the job to a live node of
// its decision pool, or parks the job until the next recovery when the
// pool has no live member.
func (c *cluster) resendProbe(jr *jobRuntime) {
	dec := c.pol.Route(policy.JobInfo{
		ID: jr.job.ID, Tasks: jr.job.NumTasks(), Estimate: jr.est, Long: jr.long,
	})
	c.viewMu.Lock()
	ids := dec.Pool.SampleInto(nil, c.view, c.probeSrc, 1)
	if len(ids) == 0 {
		c.lostProbes = append(c.lostProbes, jr)
		c.viewMu.Unlock()
		return
	}
	c.viewMu.Unlock()
	c.probesSent.Add(1)
	go c.deliverProbe(c.nodes[ids[0]], jr)
}

// distScheduler is one of the paper's per-job distributed schedulers
// (grouped: each scheduler instance handles many jobs over time, like the
// paper's 10 prototype schedulers handling 300 jobs each).
type distScheduler struct {
	c   *cluster
	mu  sync.Mutex // guards src
	src *randdist.Source
}

// schedule places ProbeRatio*t probes for the job via batch sampling
// (§3.5) over the decision's candidate pool — its live members, under
// churn. A pool currently narrower than the job's task count parks the
// job until a recovery widens it (batch sampling needs one live candidate
// per task).
func (d *distScheduler) schedule(jr *jobRuntime, pool policy.Pool) {
	c := d.c
	d.mu.Lock()
	if c.dynamicView {
		c.viewMu.Lock()
	}
	poolSize := pool.Size(c.view)
	if c.dynamicView && poolSize < jr.job.NumTasks() {
		c.parkedJobs = append(c.parkedJobs, jr)
		c.viewMu.Unlock()
		d.mu.Unlock()
		return
	}
	k := core.NumProbes(jr.job.NumTasks(), c.cfg.ProbeRatio, poolSize)
	ids := pool.SampleInto(nil, c.view, d.src, k)
	if c.dynamicView {
		c.viewMu.Unlock()
	}
	d.mu.Unlock()
	c.probesSent.Add(int64(len(ids)))
	for _, id := range ids {
		go c.deliverProbe(c.nodes[id], jr)
	}
}

// centralItem is one parked central placement.
type centralItem struct {
	jr     *jobRuntime
	dur    time.Duration
	handle int
}

// centralScheduler runs the §3.7 algorithm over its node pool, with the
// dynamic-cluster extensions: scripted outages park placements in a
// backlog, and failed servers leave the waiting-time queue until they
// recover.
type centralScheduler struct {
	c  *cluster
	mu sync.Mutex
	q  *core.CentralQueue

	down      bool
	downSince time.Time
	outage    time.Duration
	backlog   []centralItem

	// Claim state of the multi-scheduler commit protocol (sched.go); nil
	// on a single-scheduler run. claims is indexed by node id; claimVer is
	// the global version a snapshot validates against.
	claims   []claimRec
	claimVer uint64
}

func newCentralScheduler(c *cluster, nodeIDs []int) *centralScheduler {
	return &centralScheduler{c: c, q: core.NewCentralQueue(nodeIDs)}
}

// schedule places every task of a job on the least-waiting servers. The
// task index doubles as the completion handle speculation dedups on.
func (s *centralScheduler) schedule(jr *jobRuntime) {
	for i := 0; i < jr.job.NumTasks(); i++ {
		dur := time.Duration(jr.job.Durations[i] * float64(time.Second))
		s.placeTask(jr, dur, i)
	}
}

// placeTask assigns one task, or parks it while the scheduler is down or
// has no live servers. In the multi-scheduler model the placement is
// delegated to the job's owning scheduler's claim/commit path instead.
func (s *centralScheduler) placeTask(jr *jobRuntime, dur time.Duration, handle int) {
	c := s.c
	if c.mscheds != nil {
		c.placeCentralMS(jr, dur, handle)
		return
	}
	s.mu.Lock()
	if s.down || s.q.Len() == 0 {
		s.backlog = append(s.backlog, centralItem{jr: jr, dur: dur, handle: handle})
		s.mu.Unlock()
		c.centralDeferred.Add(1)
		return
	}
	nodeID, _ := s.q.Assign(c.nowSeconds(), jr.est)
	s.mu.Unlock()
	c.centralAssigns.Add(1)
	go c.deliverTask(c.nodes[nodeID], entry{job: jr, dur: dur, handle: handle}, false)
}

// parkIfUnavailable parks one multi-scheduler placement in the backlog if
// the central scheduler is down or has no live server, reporting whether
// it did. The backlog drains through placeTask on recovery, which routes
// back through the owning scheduler.
func (s *centralScheduler) parkIfUnavailable(jr *jobRuntime, dur time.Duration, handle int) bool {
	s.mu.Lock()
	if !s.down && s.q.Len() > 0 {
		s.mu.Unlock()
		return false
	}
	s.backlog = append(s.backlog, centralItem{jr: jr, dur: dur, handle: handle})
	s.mu.Unlock()
	s.c.centralDeferred.Add(1)
	return true
}

// snapshotInto copies the authoritative queue into a scheduler's mirror and
// returns the claim version the snapshot reflects.
func (s *centralScheduler) snapshotInto(local *core.CentralQueue) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	local.SyncFrom(s.q)
	return s.claimVer
}

// tryCommit is the multi-scheduler commit: scheduler `by`, holding a
// snapshot taken at claim version sinceVer, claims nodeID and publishes the
// placement's load into the authoritative queue. It fails — a placement
// conflict — when another scheduler claimed the node after the snapshot,
// or when the node has left the queue (failed) unseen.
func (s *centralScheduler) tryCommit(nodeID int, by int32, sinceVer uint64, est float64) bool {
	c := s.c
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.q.Waiting(nodeID, c.nowSeconds()) < 0 {
		return false // node no longer tracked: it failed since the snapshot
	}
	cl := &s.claims[nodeID]
	if cl.ver > sinceVer && cl.by != by {
		return false
	}
	s.claimVer++
	cl.ver = s.claimVer
	cl.by = by
	s.q.AddLoad(nodeID, c.nowSeconds(), est)
	return true
}

// drainLocked empties the backlog for re-placement; caller holds s.mu.
func (s *centralScheduler) drainLocked() []centralItem {
	pending := s.backlog
	s.backlog = nil
	return pending
}

// setDown starts a scripted outage.
func (s *centralScheduler) setDown() {
	s.mu.Lock()
	if !s.down {
		s.down = true
		s.downSince = time.Now()
	}
	s.mu.Unlock()
}

// setUp ends a scripted outage and re-places the backlog in arrival order.
func (s *centralScheduler) setUp() {
	s.mu.Lock()
	var pending []centralItem
	if s.down {
		s.down = false
		s.outage += time.Since(s.downSince)
		pending = s.drainLocked()
	}
	s.mu.Unlock()
	for _, it := range pending {
		s.placeTask(it.jr, it.dur, it.handle)
	}
}

// isDown reports whether a scripted outage is in progress.
func (s *centralScheduler) isDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// outageTotal returns the accumulated scripted downtime, including a still
// open outage.
func (s *centralScheduler) outageTotal() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.outage
	if s.down {
		total += time.Since(s.downSince)
	}
	return total
}

// remove drops a failed server from the waiting-time queue.
func (s *centralScheduler) remove(nodeID int) {
	s.mu.Lock()
	s.q.Remove(nodeID)
	s.mu.Unlock()
}

// add returns a recovered server to the queue (idle, zero waiting) and
// re-places any backlog that was parked for lack of live servers.
func (s *centralScheduler) add(nodeID int) {
	s.mu.Lock()
	s.q.Add(nodeID, s.c.nowSeconds())
	var pending []centralItem
	if !s.down {
		pending = s.drainLocked()
	}
	s.mu.Unlock()
	for _, it := range pending {
		s.placeTask(it.jr, it.dur, it.handle)
	}
}

// taskStarted relays node-monitor feedback to the waiting-time queue; the
// monitor reports the launched task's wall duration (speed-scaled on a
// heterogeneous cluster) so the running term tracks the real task (§3.7).
func (s *centralScheduler) taskStarted(nodeID int, est float64, dur time.Duration) {
	s.mu.Lock()
	s.q.TaskStarted(nodeID, s.c.nowSeconds(), est, dur.Seconds())
	s.mu.Unlock()
}

// taskFinished relays completion feedback.
func (s *centralScheduler) taskFinished(nodeID int) {
	s.mu.Lock()
	s.q.TaskFinished(nodeID, s.c.nowSeconds())
	s.mu.Unlock()
}

// lostTask is one task handed back after a node failure: its duration and
// the task-instance handle it keeps across re-serves.
type lostTask struct {
	dur    time.Duration
	handle int
}

// jobRuntime tracks one live job: task handout for batch sampling and
// completion accounting.
type jobRuntime struct {
	job  *workload.Job
	long bool
	est  float64

	mu        sync.Mutex
	next      int
	done      int
	lost      []lostTask // tasks lost to node failures, re-served first
	submitted time.Time
	onDone    func(runtime time.Duration)

	// Speculation state (fault plane): completed dedups per-task-instance
	// completions so a duplicate and its original count once between them;
	// specThresh is the delay after which a running task is duplicated.
	// Nil/zero unless the run speculates.
	completed  []bool
	specThresh time.Duration
}

func newJobRuntime(job *workload.Job, long bool, submitted time.Time) *jobRuntime {
	return &jobRuntime{
		job:       job,
		long:      long,
		est:       job.AvgTaskDuration(),
		submitted: submitted,
	}
}

// getTask hands the next unassigned task to a requesting node monitor — a
// task lost to a failure first, else the next fresh one — or reports that
// all tasks are taken (the probe is cancelled). The handle identifies the
// task instance across failures and speculative duplication.
func (j *jobRuntime) getTask() (time.Duration, int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := len(j.lost); n > 0 {
		lt := j.lost[n-1]
		j.lost = j.lost[:n-1]
		return lt.dur, lt.handle, true
	}
	if j.next >= j.job.NumTasks() {
		return 0, 0, false
	}
	d := j.job.Durations[j.next]
	h := j.next
	j.next++
	return time.Duration(d * float64(time.Second)), h, true
}

// pushLost hands a task back after the node running (or about to run) it
// failed; a later probe re-fetches it.
func (j *jobRuntime) pushLost(d time.Duration, handle int) {
	j.mu.Lock()
	j.lost = append(j.lost, lostTask{dur: d, handle: handle})
	j.mu.Unlock()
}

// taskDone accounts one finished task; the last completion fires onDone.
// Under speculation the completion bitmap makes the first finisher of a
// task instance the winner — a false return marks a loser (duplicate, or
// an original outraced by its duplicate) whose completion counts for
// nothing.
func (j *jobRuntime) taskDone(handle int) bool {
	j.mu.Lock()
	if j.completed != nil {
		if j.completed[handle] {
			j.mu.Unlock()
			return false
		}
		j.completed[handle] = true
	}
	j.done++
	finished := j.done == j.job.NumTasks()
	cb := j.onDone
	j.mu.Unlock()
	if finished && cb != nil {
		cb(time.Since(j.submitted))
	}
	return true
}

// isCompleted reports whether the task instance already finished (always
// false outside speculation, which alone allocates the bitmap).
func (j *jobRuntime) isCompleted(handle int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed != nil && j.completed[handle]
}
