package liverun

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/randdist"
	"repro/internal/workload"
)

// cluster wires the node monitors, the distributed schedulers, and the
// centralized scheduler together.
type cluster struct {
	cfg      policy.Config
	pol      policy.Policy
	part     core.Partition
	steal    core.StealPolicy
	netDelay time.Duration
	nodes    []*nodeMonitor
	dscheds  []*distScheduler
	central  *centralScheduler
	stop     chan struct{}
	started  time.Time

	stealAttempts  atomic.Int64
	stealSuccesses atomic.Int64
	entriesStolen  atomic.Int64
	cancels        atomic.Int64
	tasksExecuted  atomic.Int64
	probesSent     atomic.Int64
	centralAssigns atomic.Int64
}

func newCluster(cfg policy.Config, pol policy.Policy) *cluster {
	c := &cluster{
		cfg:      cfg,
		pol:      pol,
		netDelay: time.Duration(cfg.NetworkDelay * float64(time.Second)),
		stop:     make(chan struct{}),
		started:  time.Now(),
	}
	slots := cfg.TotalSlots()
	c.part = core.NewPartition(slots, pol.ShortPartitionFraction())
	c.steal = core.StealPolicy{Cap: cfg.StealCap, Enabled: pol.Steal()}

	root := randdist.New(cfg.Seed)
	c.nodes = make([]*nodeMonitor, slots)
	for i := range c.nodes {
		c.nodes[i] = newNodeMonitor(i, c, root.Fork())
	}
	c.dscheds = make([]*distScheduler, cfg.NumSchedulers)
	for i := range c.dscheds {
		c.dscheds[i] = &distScheduler{c: c, src: root.Fork()}
	}
	if pool := pol.CentralPool(); pool != policy.PoolNone {
		c.central = newCentralScheduler(c, pool.IDs(c.part))
	}
	for _, n := range c.nodes {
		go n.run()
	}
	return c
}

func (c *cluster) stopAll() { close(c.stop) }

// nowSeconds is the cluster's clock for the centralized waiting-time queue.
func (c *cluster) nowSeconds() float64 { return time.Since(c.started).Seconds() }

// latency injects one network hop of delay.
func (c *cluster) latency() {
	if c.netDelay > 0 {
		time.Sleep(c.netDelay)
	}
}

// submit routes one job per the policy's decision: to the centralized
// scheduler or to a distributed scheduler chosen round-robin.
func (c *cluster) submit(jr *jobRuntime, seq int) {
	dec := c.pol.Route(policy.JobInfo{
		ID: jr.job.ID, Tasks: jr.job.NumTasks(), Estimate: jr.est, Long: jr.long,
	})
	if dec.Action == policy.ActionCentral {
		go c.central.schedule(jr)
		return
	}
	ds := c.dscheds[seq%len(c.dscheds)]
	go ds.schedule(jr, dec.Pool)
}

// distScheduler is one of the paper's per-job distributed schedulers
// (grouped: each scheduler instance handles many jobs over time, like the
// paper's 10 prototype schedulers handling 300 jobs each).
type distScheduler struct {
	c   *cluster
	mu  sync.Mutex // guards src
	src *randdist.Source
}

// schedule places ProbeRatio*t probes for the job via batch sampling
// (§3.5) over the decision's candidate pool.
func (d *distScheduler) schedule(jr *jobRuntime, pool policy.Pool) {
	c := d.c
	k := core.NumProbes(jr.job.NumTasks(), c.cfg.ProbeRatio, pool.Size(c.part))
	d.mu.Lock()
	ids := pool.Sample(c.part, d.src, k)
	d.mu.Unlock()
	c.probesSent.Add(int64(len(ids)))
	for _, id := range ids {
		node := c.nodes[id]
		go func() {
			c.latency()
			node.enqueue(entry{probe: true, job: jr})
		}()
	}
}

// centralScheduler runs the §3.7 algorithm over its node pool.
type centralScheduler struct {
	c  *cluster
	mu sync.Mutex
	q  *core.CentralQueue
}

func newCentralScheduler(c *cluster, nodeIDs []int) *centralScheduler {
	return &centralScheduler{c: c, q: core.NewCentralQueue(nodeIDs)}
}

// schedule places every task of a job on the least-waiting servers.
func (s *centralScheduler) schedule(jr *jobRuntime) {
	c := s.c
	for i := 0; i < jr.job.NumTasks(); i++ {
		dur := time.Duration(jr.job.Durations[i] * float64(time.Second))
		s.mu.Lock()
		nodeID, _ := s.q.Assign(c.nowSeconds(), jr.est)
		s.mu.Unlock()
		c.centralAssigns.Add(1)
		node := c.nodes[nodeID]
		go func() {
			c.latency()
			node.enqueue(entry{job: jr, dur: dur})
		}()
	}
}

// taskStarted relays node-monitor feedback to the waiting-time queue; the
// monitor reports the launched task's duration so the running term tracks
// the real task (§3.7).
func (s *centralScheduler) taskStarted(nodeID int, est float64, dur time.Duration) {
	s.mu.Lock()
	s.q.TaskStarted(nodeID, s.c.nowSeconds(), est, dur.Seconds())
	s.mu.Unlock()
}

// taskFinished relays completion feedback.
func (s *centralScheduler) taskFinished(nodeID int) {
	s.mu.Lock()
	s.q.TaskFinished(nodeID, s.c.nowSeconds())
	s.mu.Unlock()
}

// jobRuntime tracks one live job: task handout for batch sampling and
// completion accounting.
type jobRuntime struct {
	job  *workload.Job
	long bool
	est  float64

	mu        sync.Mutex
	next      int
	done      int
	submitted time.Time
	onDone    func(runtime time.Duration)
}

func newJobRuntime(job *workload.Job, long bool, submitted time.Time) *jobRuntime {
	return &jobRuntime{
		job:       job,
		long:      long,
		est:       job.AvgTaskDuration(),
		submitted: submitted,
	}
}

// getTask hands the next unassigned task to a requesting node monitor, or
// reports that all tasks are taken (the probe is cancelled).
func (j *jobRuntime) getTask() (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next >= j.job.NumTasks() {
		return 0, false
	}
	d := j.job.Durations[j.next]
	j.next++
	return time.Duration(d * float64(time.Second)), true
}

// taskDone accounts one finished task; the last completion fires onDone.
func (j *jobRuntime) taskDone() {
	j.mu.Lock()
	j.done++
	finished := j.done == j.job.NumTasks()
	cb := j.onDone
	j.mu.Unlock()
	if finished && cb != nil {
		cb(time.Since(j.submitted))
	}
}
