package liverun

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/randdist"
)

// The live engine's gray-failure plane, mirroring internal/sim/faults.go
// with real timers in place of virtual-clock events. Message loss is
// decided at send time from the dedicated Seed+5 fault stream; a dropped
// transmission sleeps out its exponential backoff in the sender's
// goroutine and re-sends. One deliberate difference from the simulator:
// after MaxRetries the live engine escalates to a reliable final send
// instead of degrading (probe fallback to central, parked placement) — a
// goroutine that abandoned its send would lose the task it carries. The
// engines agree on drop and retry accounting and differ only in the
// exhausted tail, so FallbacksToCentral stays zero here.
//
// Stragglers broadcast a slow factor to their node monitors, which re-time
// any in-flight sleep (nodeMonitor.sleepTask). Speculation duplicates a
// probe-scheduled task still incomplete specThresh after it started; the
// first completion wins on the job's per-task bitmap, and — the second
// engine difference — the loser runs to completion (only node failure can
// interrupt a live sleep), counted as SpeculativeWasted like the
// simulator's cancelled copies.
type faultPlane struct {
	spec policy.FaultSpec
	mu   sync.Mutex       // guards src
	src  *randdist.Source // the Seed+5 fault stream, matching the simulator

	drops struct {
		probes, replies, steals, assigns, commits atomic.Int64
	}
	probeTimeouts atomic.Int64
	probeRetries  atomic.Int64
	assignRetries atomic.Int64
	specLaunches  atomic.Int64
	specWins      atomic.Int64
	specWasted    atomic.Int64
	straggles     atomic.Int64
}

func newFaultPlane(spec policy.FaultSpec, seed int64) *faultPlane {
	return &faultPlane{spec: spec, src: randdist.New(seed + 5)}
}

// drop draws one loss decision, counting a hit against the class counter.
func (f *faultPlane) drop(p float64, class *atomic.Int64) bool {
	if p == 0 {
		return false
	}
	f.mu.Lock()
	hit := f.src.Float64() < p
	f.mu.Unlock()
	if hit {
		class.Add(1)
	}
	return hit
}

// jitterDelay draws one extra per-leg delay, uniform in [0, Jitter).
func (f *faultPlane) jitterDelay() time.Duration {
	if f.spec.Jitter == 0 {
		return 0
	}
	f.mu.Lock()
	j := f.src.Float64() * f.spec.Jitter
	f.mu.Unlock()
	return time.Duration(j * float64(time.Second))
}

// backoff is the timeout before retry attempt k (1-based): RetryBackoff
// doubling per attempt, matching the simulator's retryDelay.
func (f *faultPlane) backoff(attempt int) time.Duration {
	return time.Duration(f.spec.RetryBackoff * float64(int64(1)<<(attempt-1)) * float64(time.Second))
}

// lossySend models transmitting one scheduler message over the lossy
// plane: each dropped transmission times out and re-sends after its
// backoff, up to MaxRetries, after which the final send is delivered
// reliably (see the package comment on the escalation difference).
// timeouts is nil for the assignment classes, which count retries only.
func (c *cluster) lossySend(p float64, class, timeouts, retries *atomic.Int64) {
	f := c.faults
	if f == nil || p == 0 {
		return
	}
	for attempt := 1; attempt <= f.spec.MaxRetries; attempt++ {
		if !f.drop(p, class) {
			return
		}
		if timeouts != nil {
			timeouts.Add(1)
		}
		retries.Add(1)
		time.Sleep(f.backoff(attempt))
	}
}

// deliverProbe carries one probe to its node over the lossy plane.
func (c *cluster) deliverProbe(n *nodeMonitor, jr *jobRuntime) {
	if f := c.faults; f != nil {
		c.lossySend(f.spec.ProbeLoss, &f.drops.probes, &f.probeTimeouts, &f.probeRetries)
	}
	c.latency()
	n.enqueue(entry{probe: true, job: jr})
}

// deliverTask carries one placed task to its node over the lossy plane;
// commit selects the multi-scheduler commit class over plain assignment.
func (c *cluster) deliverTask(n *nodeMonitor, e entry, commit bool) {
	if f := c.faults; f != nil {
		p, class := f.spec.AssignLoss, &f.drops.assigns
		if commit {
			p, class = f.spec.CommitLoss, &f.drops.commits
		}
		c.lossySend(p, class, nil, &f.assignRetries)
	}
	c.latency()
	n.enqueue(e)
}

// runStragglers replays the scripted straggler events on the real-time
// clock, like runChurn: events apply in time order, random picks draw from
// the fault stream over the live membership.
func (c *cluster) runStragglers() {
	f := c.faults
	events := append([]policy.StragglerEvent(nil), f.spec.Stragglers...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		target := c.started.Add(time.Duration(ev.At * float64(time.Second)))
		if d := time.Until(target); d > 0 {
			select {
			case <-time.After(d):
			case <-c.stop:
				return
			}
		}
		var ids []int
		if ev.Count > 0 {
			c.viewMu.Lock()
			f.mu.Lock()
			ids = c.view.SampleAllInto(nil, f.src, ev.Count)
			f.mu.Unlock()
			c.viewMu.Unlock()
		} else {
			ids = []int{ev.Node}
		}
		for _, id := range ids {
			c.nodes[id].setSlow(ev.Factor)
			f.straggles.Add(1)
		}
	}
}

// armSpeculation schedules a duplicate launch for a probe-scheduled task:
// if the task instance is still incomplete specThresh after it started, a
// copy is sent (loss-free, like the simulator's duplicate send — the
// defense must not need defending) to one random live node. The first
// completion wins on the job's bitmap; the loser runs to completion and is
// counted as wasted.
func (c *cluster) armSpeculation(jr *jobRuntime, dur time.Duration, handle, origNode int) {
	f := c.faults
	time.AfterFunc(jr.specThresh, func() {
		select {
		case <-c.stop:
			return
		default:
		}
		if jr.isCompleted(handle) {
			return
		}
		c.viewMu.Lock()
		f.mu.Lock()
		ids := c.view.SampleAllInto(nil, f.src, 1)
		f.mu.Unlock()
		c.viewMu.Unlock()
		if len(ids) == 0 || ids[0] == origNode {
			return // no live host besides the original: skip, don't retry
		}
		f.specLaunches.Add(1)
		c.latency()
		c.nodes[ids[0]].enqueue(entry{job: jr, dur: dur, handle: handle, spec: true})
	})
}

// specThreshold is a job's speculation delay threshold: the nearest-rank
// percentile of its task durations, matching the simulator's
// faultState.threshold.
func specThreshold(pct float64, durations []float64) time.Duration {
	sorted := append([]float64(nil), durations...)
	sort.Float64s(sorted)
	rank := int(float64(len(sorted))*pct/100+0.5) - 1
	rank = max(rank, 0)
	rank = min(rank, len(sorted)-1)
	return time.Duration(sorted[rank] * float64(time.Second))
}
