package liverun

import (
	"time"

	"repro/internal/core"
	"repro/internal/randdist"
	"sync"
)

// entry is one element of a live node's FIFO queue: a batch-sampling probe
// or a centrally placed task.
type entry struct {
	probe bool
	job   *jobRuntime
	dur   time.Duration // task entries only
}

func (e entry) long() bool { return e.job.long }

// nodeMonitor is the live analogue of a Sparrow node monitor, extended per
// §3.8 so monitors can communicate and send tasks to each other (work
// stealing). One goroutine per node: a single execution slot plus a
// mutex-protected FIFO queue that peers may steal from.
type nodeMonitor struct {
	id  int
	c   *cluster
	src *randdist.Source // owned by the node's goroutine and thieves; guarded by mu

	mu            sync.Mutex
	queue         []entry
	busy          bool
	executingLong bool
	wake          chan struct{} // capacity 1: "new work arrived"
}

func newNodeMonitor(id int, c *cluster, src *randdist.Source) *nodeMonitor {
	return &nodeMonitor{id: id, c: c, src: src, wake: make(chan struct{}, 1)}
}

// run is the node's main loop: drain the queue; when it runs dry, attempt
// one randomized steal; otherwise sleep until new work arrives.
func (n *nodeMonitor) run() {
	for {
		e, ok := n.pop()
		if !ok {
			if n.trySteal() {
				continue
			}
			select {
			case <-n.wake:
				continue
			case <-n.c.stop:
				return
			}
		}
		n.process(e)
	}
}

// pop takes the queue head, marking the node busy while it holds work.
func (n *nodeMonitor) pop() (entry, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.queue) == 0 {
		n.busy = false
		return entry{}, false
	}
	e := n.queue[0]
	n.queue = n.queue[1:]
	n.busy = true
	n.executingLong = e.long()
	return e, true
}

// process resolves a probe (request round trip, then run or cancel) or runs
// a centrally placed task, reporting start/finish feedback.
func (n *nodeMonitor) process(e entry) {
	c := n.c
	if e.probe {
		c.latency() // request
		dur, ok := e.job.getTask()
		c.latency() // response
		if !ok {
			c.cancels.Add(1)
			return
		}
		n.sleepTask(dur)
		e.job.taskDone()
		return
	}
	if c.central != nil {
		c.central.taskStarted(n.id, e.job.est, e.dur)
	}
	n.sleepTask(e.dur)
	if c.central != nil {
		c.central.taskFinished(n.id)
	}
	e.job.taskDone()
}

func (n *nodeMonitor) sleepTask(d time.Duration) {
	n.c.tasksExecuted.Add(1)
	if d > 0 {
		time.Sleep(d)
	}
}

// enqueue appends work and wakes the node if it is parked.
func (n *nodeMonitor) enqueue(e entry) {
	n.mu.Lock()
	n.queue = append(n.queue, e)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// trySteal performs one randomized steal attempt (§3.6): contact up to Cap
// random general-partition nodes, take the first eligible group found, and
// push it onto our own (empty) queue.
func (n *nodeMonitor) trySteal() bool {
	c := n.c
	if !c.steal.Enabled {
		return false
	}
	n.mu.Lock()
	candidates := c.steal.Candidates(c.part, n.src, n.id)
	n.mu.Unlock()
	if len(candidates) == 0 {
		return false
	}
	c.stealAttempts.Add(1)
	for _, id := range candidates {
		c.latency() // contacting the victim costs a message
		group := c.nodes[id].stealGroup()
		if len(group) == 0 {
			continue
		}
		c.latency() // shipping the stolen group back
		n.mu.Lock()
		n.queue = append(append(make([]entry, 0, len(group)+len(n.queue)), group...), n.queue...)
		n.mu.Unlock()
		c.stealSuccesses.Add(1)
		c.entriesStolen.Add(int64(len(group)))
		return true
	}
	return false
}

// stealGroup extracts this node's eligible group (Figure 3) for a thief, or
// nil when there is nothing to steal.
func (n *nodeMonitor) stealGroup() []entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.busy || len(n.queue) == 0 {
		return nil
	}
	flags := make([]bool, len(n.queue))
	for i, e := range n.queue {
		flags[i] = e.long()
	}
	start, end, ok := core.EligibleGroup(n.executingLong, flags)
	if !ok {
		return nil
	}
	group := append([]entry(nil), n.queue[start:end]...)
	n.queue = append(n.queue[:start], n.queue[end:]...)
	return group
}
