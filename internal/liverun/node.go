package liverun

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/randdist"
)

// entry is one element of a live node's FIFO queue: a batch-sampling
// probe, a centrally placed task, or a speculative duplicate.
type entry struct {
	probe bool
	job   *jobRuntime
	dur   time.Duration // task entries only
	// handle is the job's task-instance identity for task entries:
	// completion dedup under speculation and re-serve bookkeeping.
	handle int
	// spec marks a speculative duplicate (fault plane): it executes without
	// central bookkeeping and resolves win-or-wasted against the job's
	// completion bitmap.
	spec bool
	// sched is the scheduler that placed a task entry in the
	// multi-scheduler model: the node reports start/finish feedback to its
	// mirror as well as to the shared queue. Unused otherwise.
	sched int32
}

func (e entry) long() bool { return e.job.long }

// nodeMonitor is the live analogue of a Sparrow node monitor, extended per
// §3.8 so monitors can communicate and send tasks to each other (work
// stealing). One goroutine per node: a single execution slot plus a
// mutex-protected FIFO queue that peers may steal from. Under a churn
// scenario the monitor can go down (queue dropped, running task killed and
// re-routed) and come back up; on a heterogeneous cluster its speed factor
// stretches every task it executes.
type nodeMonitor struct {
	id    int
	c     *cluster
	src   *randdist.Source // owned by the node's goroutine and thieves; guarded by mu
	speed float64          // fixed per run; 1 on a homogeneous cluster

	mu            sync.Mutex
	queue         []entry
	busy          bool
	alive         bool
	executingLong bool
	wake          chan struct{} // capacity 1: "new work arrived" / "recovered"
	kill          chan struct{} // closed on failure; replaced on recovery
	slow          float64       // straggler factor (>= 1); 1 = nominal speed
	slowCh        chan struct{} // closed and replaced on each factor change
}

func newNodeMonitor(id int, c *cluster, src *randdist.Source) *nodeMonitor {
	return &nodeMonitor{
		id: id, c: c, src: src, speed: 1, alive: true,
		wake:   make(chan struct{}, 1),
		kill:   make(chan struct{}),
		slow:   1,
		slowCh: make(chan struct{}),
	}
}

// setSlow applies a scripted straggler factor; closing slowCh re-times any
// in-flight sleep at the new factor (sleepTask).
func (n *nodeMonitor) setSlow(factor float64) {
	n.mu.Lock()
	n.slow = factor
	close(n.slowCh)
	n.slowCh = make(chan struct{})
	n.mu.Unlock()
}

// run is the node's main loop: drain the queue; when it runs dry, attempt
// one randomized steal; otherwise sleep until new work arrives. A dead
// node parks until recovery wakes it.
func (n *nodeMonitor) run() {
	for {
		if !n.isAlive() {
			select {
			case <-n.wake:
				continue
			case <-n.c.stop:
				return
			}
		}
		e, ok := n.pop()
		if !ok {
			if n.trySteal() {
				continue
			}
			select {
			case <-n.wake:
				continue
			case <-n.c.stop:
				return
			}
		}
		n.process(e)
	}
}

func (n *nodeMonitor) isAlive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// goDown takes the node out of the cluster: marks it dead, closes the kill
// channel (interrupting a running task's sleep), and hands the dropped
// queue back for re-routing.
func (n *nodeMonitor) goDown() []entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return nil
	}
	n.alive = false
	close(n.kill)
	// Straggler state dies with the node (matching the simulator): a later
	// recovery returns it at nominal speed unless a straggle event re-slows
	// it while down.
	n.slow = 1
	dropped := n.queue
	n.queue = nil
	return dropped
}

// comeUp returns the node to service, idle and empty, with a fresh kill
// channel, and wakes its loop.
func (n *nodeMonitor) comeUp() {
	n.mu.Lock()
	if n.alive {
		n.mu.Unlock()
		return
	}
	n.alive = true
	n.kill = make(chan struct{})
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// pop takes the queue head, marking the node busy while it holds work.
func (n *nodeMonitor) pop() (entry, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || len(n.queue) == 0 {
		n.busy = false
		return entry{}, false
	}
	e := n.queue[0]
	n.queue = n.queue[1:]
	n.busy = true
	n.executingLong = e.long()
	return e, true
}

// process resolves a probe (request round trip, then run or cancel), runs
// a speculative duplicate (win-or-wasted against the job's bitmap), or
// runs a centrally placed task, reporting start/finish feedback. If the
// node is killed mid-execution the task is lost: its elapsed time is
// counted as lost work and the task re-routes (back to the job for a fresh
// probe, or to the central scheduler).
func (n *nodeMonitor) process(e entry) {
	c := n.c
	if e.spec {
		if !n.isAlive() || e.job.isCompleted(e.handle) {
			// The original finished first, or the duplicate surfaced on a
			// dead node: wasted without executing. The original's own chain
			// serves the task either way.
			c.faults.specWasted.Add(1)
			return
		}
		if n.sleepTask(e.dur) {
			if e.job.taskDone(e.handle) {
				c.faults.specWins.Add(1)
			} else {
				c.faults.specWasted.Add(1)
			}
			return
		}
		// Killed mid-run: the duplicate dies wasted; no re-route.
		c.faults.specWasted.Add(1)
		return
	}
	if e.probe {
		c.latency() // request
		dur, handle, ok := e.job.getTask()
		if f := c.faults; f != nil {
			// The task-request round trip rides the lossy plane too.
			c.lossySend(f.spec.ReplyLoss, &f.drops.replies, &f.probeTimeouts, &f.probeRetries)
		}
		c.latency() // response
		if !ok {
			c.cancels.Add(1)
			return
		}
		if !n.isAlive() {
			// Died during the round trip: the handed-out task never
			// started; give it back and re-probe elsewhere.
			e.job.pushLost(dur, handle)
			c.probesLost.Add(1)
			c.resendProbe(e.job)
			return
		}
		if f := c.faults; f != nil && f.spec.Speculate {
			c.armSpeculation(e.job, dur, handle, n.id)
		}
		if n.sleepTask(dur) {
			// A false return means the duplicate won the race; the job was
			// already credited.
			e.job.taskDone(handle)
			return
		}
		// Killed mid-run: re-execute from scratch via a fresh probe.
		c.tasksReexecuted.Add(1)
		e.job.pushLost(dur, handle)
		c.resendProbe(e.job)
		return
	}
	if !n.isAlive() {
		c.central.placeTask(e.job, e.dur, e.handle)
		return
	}
	if c.central != nil {
		c.central.taskStarted(n.id, e.job.est, n.scaled(e.dur))
		if c.mscheds != nil {
			c.mirrorStarted(e.sched, n.id, e.job.est, n.scaled(e.dur))
		}
	}
	if n.sleepTask(e.dur) {
		if c.central != nil {
			c.central.taskFinished(n.id)
			if c.mscheds != nil {
				c.mirrorFinished(e.sched, n.id)
			}
		}
		e.job.taskDone(e.handle)
		return
	}
	// Killed mid-run: the central queue already dropped this server; the
	// task re-assigns to a live one.
	c.tasksReexecuted.Add(1)
	c.central.placeTask(e.job, e.dur, e.handle)
}

// scaled stretches a task duration by the node's speed factor.
func (n *nodeMonitor) scaled(d time.Duration) time.Duration {
	if n.speed == 1 {
		return d
	}
	return time.Duration(float64(d) / n.speed)
}

// sleepTask executes one task for its (speed-scaled) duration. It returns
// false when the node was killed before completion, accounting the elapsed
// time as lost work (the caller decides whether the task re-executes — a
// speculative duplicate does not). A straggle broadcast mid-sleep re-times
// the remaining work at the node's new factor; unlike the simulator, a
// recovery (factor back to 1) speeds up the remaining work too — the live
// sleep is genuinely re-timed, not pinned to its committed finish.
func (n *nodeMonitor) sleepTask(d time.Duration) bool {
	d = n.scaled(d)
	n.mu.Lock()
	kill := n.kill
	alive := n.alive
	n.mu.Unlock()
	if !alive {
		// Failed between dequeue and launch: nothing executed yet.
		return false
	}
	n.c.tasksExecuted.Add(1)
	began := time.Now()
	remaining := d // straggle-free work left
	for remaining > 0 {
		n.mu.Lock()
		factor := n.slow
		slowCh := n.slowCh
		n.mu.Unlock()
		t := time.NewTimer(time.Duration(float64(remaining) * factor))
		start := time.Now()
		select {
		case <-t.C:
			return true
		case <-slowCh:
			t.Stop()
			// Work consumed so far at the factor that was in force; the
			// loop re-sleeps the remainder at the new factor.
			remaining -= time.Duration(float64(time.Since(start)) / factor)
		case <-kill:
			t.Stop()
			n.c.workLostNanos.Add(int64(time.Since(began)))
			return false
		}
	}
	return true
}

// enqueue appends work and wakes the node if it is parked. Work landing on
// a dead node (a message already in flight when the node failed) is
// re-routed instead, as the sender would on noticing the failure.
func (n *nodeMonitor) enqueue(e entry) {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		n.c.rerouteEntry(e)
		return
	}
	n.queue = append(n.queue, e)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// trySteal performs one randomized steal attempt (§3.6): contact up to Cap
// random live general-partition nodes, take the first eligible group
// found, and push it onto our own (empty) queue.
func (n *nodeMonitor) trySteal() bool {
	c := n.c
	if !c.steal.Enabled {
		return false
	}
	n.mu.Lock()
	if c.dynamicView {
		c.viewMu.Lock()
	}
	candidates := c.steal.Candidates(c.view, n.src, n.id)
	if c.dynamicView {
		c.viewMu.Unlock()
	}
	n.mu.Unlock()
	if len(candidates) == 0 {
		return false
	}
	c.stealAttempts.Add(1)
	for _, id := range candidates {
		if f := c.faults; f != nil && f.drop(f.spec.StealLoss, &f.drops.steals) {
			// The contact was lost; stealing is opportunistic, so the
			// thief simply moves on to its next candidate victim.
			continue
		}
		c.latency() // contacting the victim costs a message
		group := c.nodes[id].stealGroup()
		if len(group) == 0 {
			continue
		}
		c.latency() // shipping the stolen group back
		n.mu.Lock()
		if !n.alive {
			// The thief failed during the contact round trip; its queue
			// was already drained and nothing will serve it. Re-route the
			// stolen work as if it had landed on the dead node.
			n.mu.Unlock()
			for _, e := range group {
				c.rerouteEntry(e)
			}
			return false
		}
		n.queue = append(append(make([]entry, 0, len(group)+len(n.queue)), group...), n.queue...)
		n.mu.Unlock()
		c.stealSuccesses.Add(1)
		c.entriesStolen.Add(int64(len(group)))
		return true
	}
	return false
}

// stealGroup extracts this node's eligible group (Figure 3) for a thief, or
// nil when there is nothing to steal.
func (n *nodeMonitor) stealGroup() []entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || !n.busy || len(n.queue) == 0 {
		return nil
	}
	flags := make([]bool, len(n.queue))
	for i, e := range n.queue {
		flags[i] = e.long()
	}
	start, end, ok := core.EligibleGroup(n.executingLong, flags)
	if !ok {
		return nil
	}
	group := append([]entry(nil), n.queue[start:end]...)
	n.queue = append(n.queue[:start], n.queue[end:]...)
	return group
}
