package hawk_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/hawk"
)

func smallTrace() *hawk.Trace {
	// Durations in milliseconds-as-seconds so the live engine finishes
	// fast; cutoff separates job 3 as long.
	return &hawk.Trace{
		Name: "small",
		Jobs: []*hawk.Job{
			{ID: 1, SubmitTime: 0, Durations: []float64{0.010, 0.020, 0.030}},
			{ID: 2, SubmitTime: 0, Durations: []float64{0.005}},
			{ID: 3, SubmitTime: 0.01, Durations: []float64{2.0, 2.0}},
			{ID: 4, SubmitTime: 0.02, Durations: []float64{0.015, 0.015}},
		},
		Cutoff:                 0.5,
		ShortPartitionFraction: 0.2,
	}
}

// Both engines consume the same Config and produce the same Report schema.
func TestEnginesShareConfigAndReport(t *testing.T) {
	trace := smallTrace()
	cfg := hawk.NewConfig("hawk",
		hawk.WithNodes(20),
		hawk.WithSchedulers(3),
		hawk.WithNetworkDelay((50 * time.Microsecond).Seconds()),
		hawk.WithSeed(1))

	simRep, err := hawk.Simulate(trace, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	liveRep, err := hawk.RunLive(trace, cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}

	for _, rep := range []*hawk.Report{simRep, liveRep} {
		if rep.Policy != "hawk" {
			t.Errorf("%s report policy = %q", rep.Engine, rep.Policy)
		}
		if len(rep.Jobs) != trace.Len() {
			t.Errorf("%s report has %d jobs, want %d", rep.Engine, len(rep.Jobs), trace.Len())
		}
		if rep.TasksExecuted != 8 {
			t.Errorf("%s executed %d tasks, want 8", rep.Engine, rep.TasksExecuted)
		}
		if rep.Config.NumNodes != 20 {
			t.Errorf("%s report lost the requested node count: %d", rep.Engine, rep.Config.NumNodes)
		}
	}
	if simRep.Engine != "sim" || liveRep.Engine != "live" {
		t.Errorf("engine labels = %q/%q", simRep.Engine, liveRep.Engine)
	}

	// Both engines agree on classification for the same trace and cutoff.
	for _, rep := range []*hawk.Report{simRep, liveRep} {
		if n := len(rep.LongRuntimes()); n != 1 {
			t.Errorf("%s classified %d jobs long, want 1", rep.Engine, n)
		}
	}
}

// Engine is a common function type: drivers can be written once.
func TestEngineFuncType(t *testing.T) {
	trace := smallTrace()
	engines := map[string]hawk.Engine{"sim": hawk.Simulate, "live": hawk.RunLive}
	for name, run := range engines {
		rep, err := run(trace, hawk.NewConfig("sparrow",
			hawk.WithNodes(20), hawk.WithSeed(1),
			hawk.WithNetworkDelay((50*time.Microsecond).Seconds())))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Engine != name {
			t.Errorf("engine %q reported as %q", name, rep.Engine)
		}
	}
}

// A custom policy registered through the public API runs on both engines
// without any engine change. "nosteal-hawk" routes exactly like hawk with
// stealing off, so on the simulator its results must be identical to the
// built-in hawk policy with DisableStealing — the decisions, not the
// policy's name, drive the engine.
func TestRegisterCustomPolicy(t *testing.T) {
	// The registry is process-global and Register panics on duplicates, so
	// guard for in-process test reruns (go test -count=N).
	if !hawk.Registered("nosteal-hawk") {
		hawk.Register("nosteal-hawk", func(cfg hawk.Config) (hawk.Policy, error) {
			return noStealHawk{frac: cfg.ShortPartitionFraction}, nil
		})
	}
	found := false
	for _, name := range hawk.Policies() {
		if name == "nosteal-hawk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered policy missing from Policies(): %v", hawk.Policies())
	}

	trace := hawk.Generate(hawk.Google(), hawk.GenConfig{
		NumJobs: 300, MeanInterArrival: 1, Seed: 3,
	})
	custom, err := hawk.Simulate(trace, hawk.NewConfig("nosteal-hawk",
		hawk.WithNodes(2000), hawk.WithSeed(4)))
	if err != nil {
		t.Fatalf("custom policy run: %v", err)
	}
	builtin, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
		hawk.WithNodes(2000), hawk.WithSeed(4), hawk.WithoutStealing()))
	if err != nil {
		t.Fatalf("builtin run: %v", err)
	}
	if len(custom.Jobs) != len(builtin.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(custom.Jobs), len(builtin.Jobs))
	}
	for i := range custom.Jobs {
		c, b := custom.Jobs[i], builtin.Jobs[i]
		if c.ID != b.ID || c.Runtime != b.Runtime {
			t.Fatalf("job %d: custom runtime %v != builtin %v", c.ID, c.Runtime, b.Runtime)
		}
	}
	if custom.StealAttempts != 0 {
		t.Errorf("nosteal policy stole %d times", custom.StealAttempts)
	}
}

// noStealHawk is the test's custom policy: hawk's routing, stealing off.
type noStealHawk struct{ frac float64 }

func (noStealHawk) String() string                    { return "nosteal-hawk" }
func (p noStealHawk) ShortPartitionFraction() float64 { return p.frac }
func (noStealHawk) CentralPool() hawk.Pool            { return hawk.PoolGeneral }
func (noStealHawk) Steal() bool                       { return false }
func (noStealHawk) Route(j hawk.JobInfo) hawk.Decision {
	if j.Long {
		return hawk.Decision{Action: hawk.ActionCentral}
	}
	return hawk.Decision{Action: hawk.ActionProbe, Pool: hawk.PoolAll}
}

func TestParsePolicyReExport(t *testing.T) {
	for _, name := range []string{"sparrow", "hawk", "centralized", "split"} {
		p, err := hawk.ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParsePolicy(%q).String() = %q", name, p.String())
		}
	}
	if _, err := hawk.ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// RunSweep fans independent runs over a worker pool; results come back in
// point order and match serial Simulate calls exactly.
func TestRunSweepMatchesSerialSimulate(t *testing.T) {
	trace := smallTrace()
	var pts []hawk.SweepPoint
	for _, pol := range []string{"sparrow", "hawk", "centralized", "split"} {
		pts = append(pts, hawk.SweepPoint{
			Trace:  trace,
			Config: hawk.NewConfig(pol, hawk.WithNodes(20), hawk.WithSeed(9)),
		})
	}
	reports, err := hawk.RunSweep(context.Background(), hawk.Sweep{Points: pts, Jobs: 4})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if len(reports) != len(pts) {
		t.Fatalf("reports = %d, want %d", len(reports), len(pts))
	}
	for i, p := range pts {
		want, err := hawk.Simulate(p.Trace, p.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reports[i], want) {
			t.Errorf("point %d (%s): sweep report differs from serial Simulate", i, p.Config.Policy)
		}
	}
}

// A Sweep accepts any Engine, including the live prototype and custom fakes.
func TestSweepCustomEngine(t *testing.T) {
	calls := 0
	var eng hawk.Engine = func(tr *hawk.Trace, cfg hawk.Config) (*hawk.Report, error) {
		calls++
		return &hawk.Report{Engine: "fake"}, nil
	}
	reports, err := hawk.RunSweep(context.Background(), hawk.Sweep{
		Points: []hawk.SweepPoint{{Trace: smallTrace(), Config: hawk.NewConfig("hawk", hawk.WithNodes(5))}},
		Engine: eng,
		Jobs:   1,
	})
	if err != nil || calls != 1 || reports[0].Engine != "fake" {
		t.Fatalf("custom engine: reports=%v calls=%d err=%v", reports, calls, err)
	}
}

func TestDeriveSeedReExport(t *testing.T) {
	if hawk.DeriveSeed(1, 0) == hawk.DeriveSeed(1, 1) {
		t.Error("adjacent indices should derive different seeds")
	}
	pts := hawk.SeededPoints(smallTrace(), hawk.NewConfig("hawk", hawk.WithNodes(5)), 3, 4)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Config.Seed != hawk.DeriveSeed(3, i) {
			t.Errorf("point %d seed = %d", i, p.Config.Seed)
		}
	}
}

// The scenario surface is part of the public API: a churn spec built from
// the re-exported types runs on both engines, and the churn counters come
// back through the shared Report schema.
func TestScenarioAPIOnBothEngines(t *testing.T) {
	tr := smallTrace()
	cfg := hawk.NewConfig("hawk",
		hawk.WithNodes(20), hawk.WithSchedulers(2), hawk.WithSeed(3),
		hawk.WithNetworkDelay(0.0001),
		hawk.WithSpeedSkew(0.5, 0.5),
		hawk.WithChurn(
			hawk.ChurnEvent{At: 0.05, Kind: hawk.ChurnFail, Count: 3},
			hawk.ChurnEvent{At: 0.2, Kind: hawk.ChurnRecover, Count: 3},
		))
	for name, engine := range map[string]hawk.Engine{"sim": hawk.Simulate, "live": hawk.RunLive} {
		res, err := engine(tr, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Jobs) != tr.Len() {
			t.Fatalf("%s: completed %d of %d jobs", name, len(res.Jobs), tr.Len())
		}
		if res.NodeFailures != 3 || res.NodeRecoveries != 3 {
			t.Errorf("%s: failures/recoveries = %d/%d, want 3/3", name, res.NodeFailures, res.NodeRecoveries)
		}
	}
}

// A config whose scenario could starve a probe pool is rejected by either
// engine before the run starts.
func TestScenarioFeasibilityRejected(t *testing.T) {
	tr := smallTrace()
	cfg := hawk.NewConfig("sparrow",
		hawk.WithNodes(4), hawk.WithSeed(1),
		hawk.WithChurn(hawk.ChurnEvent{At: 0.01, Kind: hawk.ChurnFail, Count: 3}))
	if _, err := hawk.Simulate(tr, cfg); err == nil {
		t.Error("sim accepted a pool-starving scenario")
	}
	if _, err := hawk.RunLive(tr, cfg); err == nil {
		t.Error("live accepted a pool-starving scenario")
	}
}
