// Package hawk is the public, engine-agnostic scheduling API of this
// repository — a Go reproduction of "Hawk: Hybrid Datacenter Scheduling"
// (Delgado, Dinu, Kermarrec, Zwaenepoel — USENIX ATC 2015).
//
// The package decouples scheduling policy from execution engine. A Policy
// decides where each job's work goes — probe-sample a pool of nodes,
// Sparrow-style, or hand the job to the centralized waiting-time queue —
// and which cluster mechanisms (reserved short partition, randomized work
// stealing) are active. Two engines execute policies: Simulate, the
// trace-driven discrete-event simulator the paper evaluates with, and
// RunLive, the goroutine-per-node prototype in which messages and task
// execution consume real time. Both consume the same Config and produce
// the same Report, so results compare apples-to-apples.
//
// Runs schedule against a dynamic cluster model: a Config can script node
// failures and recoveries, central-scheduler outages, and heterogeneous
// node speeds (WithChurn, WithSpeedSkew) — both engines replay the same
// scenario, re-routing lost work, and the Report's churn counters account
// for the damage. With no scenario configured the cluster is static and
// engines keep their fast paths.
//
// The four schedulers the paper studies — "sparrow", "hawk", "centralized",
// "split" — are registered policies; list them with Policies, validate a
// CLI flag with Registered, and plug in new policies with Register
// without touching engine code:
//
//	trace := hawk.Generate(hawk.Google(), hawk.GenConfig{
//		NumJobs: 4000, MeanInterArrival: 2.3, Seed: 1,
//	})
//	report, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
//		hawk.WithNodes(15000), hawk.WithSeed(1)))
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(report.Summary())
//
// The underlying implementation lives in internal/policy (API types and
// built-in policies, assembled from the internal/core primitives),
// internal/sim, and internal/liverun; this package re-exports the stable
// surface. Every exported symbol here carries a doc comment; hawklint's
// exporteddoc analyzer enforces it:
//
//hawk:exporteddoc
package hawk

import (
	"context"
	"io"

	"repro/internal/liverun"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Core API types, re-exported from the internal policy layer.
type (
	// Policy is a scheduling policy: it routes classified jobs and
	// declares the cluster mechanisms a run needs.
	Policy = policy.Policy
	// Factory builds a Policy from a run Config; pass one to Register.
	Factory = policy.Factory
	// Config is the engine-agnostic run configuration shared by
	// Simulate and RunLive.
	Config = policy.Config
	// Option is a functional option for NewConfig.
	Option = policy.Option
	// Report is the unified result schema every engine produces.
	Report = policy.Report
	// JobReport is one job's outcome within a Report.
	JobReport = policy.JobReport
	// Decision is a Policy's placement verdict for one job.
	Decision = policy.Decision
	// JobInfo is the engine-independent view of a job being routed.
	JobInfo = policy.JobInfo
	// Pool identifies a candidate node set relative to the partition.
	Pool = policy.Pool
	// Action is the placement kind a Decision requests.
	Action = policy.Action

	// ChurnSpec scripts dynamic cluster membership for a run: node
	// failures and recoveries plus central-scheduler outages, replayed
	// identically by both engines. Work on a failed node is lost and
	// re-routed (probes re-sent, central tasks re-assigned, running tasks
	// re-executed); the Report's NodeFailures/TasksReexecuted/
	// WorkLostSeconds counters quantify the damage.
	ChurnSpec = policy.ChurnSpec
	// ChurnEvent is one scripted cluster transition of a ChurnSpec.
	ChurnEvent = policy.ChurnEvent
	// ChurnKind names a ChurnEvent's transition.
	ChurnKind = policy.ChurnKind
	// Heterogeneity assigns per-node speed factors: a task of duration d
	// takes d/speed seconds on its executing node.
	Heterogeneity = policy.Heterogeneity
	// SpeedClass is one Heterogeneity class (fraction of nodes, speed).
	SpeedClass = policy.SpeedClass
	// SchedulerSpec turns on the distributed multi-scheduler model (§4.10):
	// N concurrent schedulers, each placing against its own stale cluster
	// snapshot with optimistic claim/commit and bounded conflict retries,
	// jobs hash-partitioned across the live schedulers. Install it with
	// WithSchedulers(n) or WithSchedulerSpec; the Report's
	// PlacementConflicts / ConflictRetries / SnapshotStalenessSeconds
	// counters quantify the contention.
	SchedulerSpec = policy.SchedulerSpec

	// FaultSpec turns on the gray-failure injection plane: seeded
	// per-message-class loss, bounded delay jitter, scripted mid-run
	// stragglers, and the defenses against them — probe timeouts with
	// bounded exponential-backoff retries, graceful degradation to the
	// central queue, and optional speculative re-execution. Install it with
	// WithFaults or the per-knob options (WithMessageLoss, WithJitter,
	// WithStragglers, WithSpeculation); the Report's MessagesDropped /
	// ProbeRetries / FallbacksToCentral / Speculative* counters quantify
	// the damage and the defenses' work. Both engines replay the same
	// spec; a config without one carries no fault state at all.
	FaultSpec = policy.FaultSpec
	// StragglerEvent is one scripted slowdown of a FaultSpec: at time At,
	// Count random nodes (or the specific Node) run Factor times slower,
	// stretching their in-flight and future tasks; Factor 1 recovers.
	StragglerEvent = policy.StragglerEvent
	// MessageDrops breaks a Report's dropped messages down by class
	// (probes, task-request replies, steal contacts, central assignments,
	// multi-scheduler commits).
	MessageDrops = policy.MessageDrops
)

// MaxFaultRetries bounds FaultSpec.MaxRetries.
const MaxFaultRetries = policy.MaxFaultRetries

// Churn event kinds.
const (
	ChurnFail         = policy.ChurnFail
	ChurnRecover      = policy.ChurnRecover
	ChurnCentralDown  = policy.ChurnCentralDown
	ChurnCentralUp    = policy.ChurnCentralUp
	ChurnSchedFail    = policy.ChurnSchedFail
	ChurnSchedRecover = policy.ChurnSchedRecover
)

// MaxSchedulers bounds SchedulerSpec.Count.
const MaxSchedulers = policy.MaxSchedulers

// SchedulerChurn builds the churn events scripting one scheduler's failure
// and (when recoverAt > failAt) recovery, for use with WithChurn.
func SchedulerChurn(scheduler int, failAt, recoverAt float64) []ChurnEvent {
	return policy.SchedulerChurn(scheduler, failAt, recoverAt)
}

// Decision actions and candidate pools.
const (
	ActionProbe   = policy.ActionProbe
	ActionCentral = policy.ActionCentral

	PoolNone    = policy.PoolNone
	PoolAll     = policy.PoolAll
	PoolGeneral = policy.PoolGeneral
	PoolShort   = policy.PoolShort
)

// Register makes a policy available under the given name, alongside the
// built-in "sparrow", "hawk", "centralized", and "split". Registered
// policies run unmodified on every engine. It panics on empty or duplicate
// names.
func Register(name string, f Factory) { policy.Register(name, f) }

// Policies returns the sorted names of all registered policies.
func Policies() []string { return policy.Policies() }

// Registered reports whether a policy name is in the registry without
// instantiating it — the right check for validating a flag value.
func Registered(name string) bool { return policy.Registered(name) }

// ParsePolicy resolves a policy name to a default-configured instance, so
// ParsePolicy(name).String() == name for every built-in. It errors on
// unknown names, listing the registered ones. It instantiates the factory
// with a zero Config, so for pure flag validation — where a custom factory
// might reject a zero config — prefer Registered.
func ParsePolicy(name string) (Policy, error) { return policy.ParsePolicy(name) }

// NewPolicy instantiates a registered policy for a run configuration.
// Engines call this internally; it is exported for tests and tools that
// inspect policy decisions directly.
func NewPolicy(name string, cfg Config) (Policy, error) { return policy.New(name, cfg) }

// NewConfig builds a Config for the named policy from functional options;
// see the package example. Zero/omitted knobs resolve to the paper's
// defaults at run time.
func NewConfig(policyName string, opts ...Option) Config {
	return policy.NewConfig(policyName, opts...)
}

// Functional options for NewConfig.
var (
	WithNodes                  = policy.WithNodes
	WithSlotsPerNode           = policy.WithSlotsPerNode
	WithSchedulers             = policy.WithSchedulers
	WithSchedulerSpec          = policy.WithSchedulerSpec
	WithSchedulerChurn         = policy.WithSchedulerChurn
	WithCutoff                 = policy.WithCutoff
	WithShortPartitionFraction = policy.WithShortPartitionFraction
	WithProbeRatio             = policy.WithProbeRatio
	WithStealCap               = policy.WithStealCap
	WithoutStealing            = policy.WithoutStealing
	WithRandomPositionStealing = policy.WithRandomPositionStealing
	WithoutPartition           = policy.WithoutPartition
	WithoutCentral             = policy.WithoutCentral
	WithNetworkDelay           = policy.WithNetworkDelay
	WithMisestimation          = policy.WithMisestimation
	WithChurn                  = policy.WithChurn
	WithHeterogeneity          = policy.WithHeterogeneity
	WithSpeedSkew              = policy.WithSpeedSkew
	WithFaults                 = policy.WithFaults
	WithMessageLoss            = policy.WithMessageLoss
	WithJitter                 = policy.WithJitter
	WithStragglers             = policy.WithStragglers
	WithSpeculation            = policy.WithSpeculation
	WithSeed                   = policy.WithSeed
	WithUtilizationInterval    = policy.WithUtilizationInterval
	WithDiscardedJobReports    = policy.WithDiscardedJobReports
	WithJobSink                = policy.WithJobSink
)

// Engine runs a trace under a configuration and produces a Report. Both
// Simulate and RunLive satisfy it, so experiment drivers can be written
// once and pointed at either engine — and a Sweep fans any Engine out over
// a worker pool.
type Engine = sweep.Engine

// Simulate runs the trace-driven discrete-event simulator (§4.1). Runs are
// deterministic for a given (trace, config) pair.
func Simulate(trace *Trace, cfg Config) (*Report, error) { return sim.Run(trace, cfg) }

// SimulateSource runs the simulator on a streamed workload: jobs decode
// from the source one submit event at a time and finished job state is
// recycled, so peak memory is O(in-flight jobs + cluster size) however
// long the trace. For the same job stream the report is byte-identical to
// Simulate; combine with WithDiscardedJobReports (and optionally a
// NewJobCSVSink) to keep the report itself O(1) too.
func SimulateSource(src Source, cfg Config) (*Report, error) { return sim.RunSource(src, cfg) }

// RunLive runs the goroutine-per-node live prototype (§3.8, §4.10): real
// messages, injected network latency, tasks that really execute
// (time.Sleep). Trace durations are interpreted as seconds of real time;
// scale traces down first.
func RunLive(trace *Trace, cfg Config) (*Report, error) { return liverun.Run(trace, cfg) }

// Parallel sweeps: every figure of the paper's evaluation is a set of
// independent (trace, config) runs, and Sweep executes such a set over a
// bounded worker pool with results byte-identical to a serial loop.
type (
	// Sweep is a set of independent runs plus execution options: an
	// Engine (nil means Simulate) and Jobs, the worker-pool bound (zero
	// means one worker per CPU).
	Sweep = sweep.Sweep
	// SweepPoint is one run of a Sweep; points may share a *Trace.
	SweepPoint = sweep.Point
)

// RunSweep executes every point of the sweep over the worker pool and
// returns one report per point, in point order. Ordering, bounded
// concurrency, deterministic first-error propagation, and context
// cancellation are guaranteed; see internal/sweep for the contract.
//
//	reports, err := hawk.RunSweep(ctx, hawk.Sweep{Points: pts, Jobs: 8})
func RunSweep(ctx context.Context, s Sweep) ([]*Report, error) { return s.Run(ctx) }

// DeriveSeed deterministically derives the seed for point i of a
// multi-seed sweep from a base seed, mixing (base, i) so adjacent indices
// yield decorrelated random streams.
func DeriveSeed(base int64, i int) int64 { return sweep.DeriveSeed(base, i) }

// SeededPoints builds n sweep points running the same trace and
// configuration under n derived seeds — the shape of every "averaged over
// N runs" figure.
func SeededPoints(t *Trace, cfg Config, base int64, n int) []SweepPoint {
	return sweep.SeededPoints(t, cfg, base, n)
}

// WriteResultsCSV exports a report's per-job outcomes as CSV.
func WriteResultsCSV(w io.Writer, r *Report) error {
	return policy.WriteResultsCSV(w, r)
}

// SaveResultsCSV writes a report's per-job outcomes to path.
func SaveResultsCSV(path string, r *Report) error { return policy.SaveResultsCSV(path, r) }

// ReadResultsCSV parses a file written by WriteResultsCSV back into job
// reports (the scalar Report fields are not part of the format).
func ReadResultsCSV(r io.Reader) ([]JobReport, error) { return policy.ReadResultsCSV(r) }

// SaveReportJSON writes the full report (resolved config, jobs, counters,
// utilization samples) to path as JSON.
func SaveReportJSON(path string, r *Report) error { return policy.SaveReportJSON(path, r) }

// Workload surface: traces, synthetic generators, and trace I/O, re-exported
// so a quickstart can be written against this package alone.
type (
	// Trace is an ordered set of jobs plus workload-level defaults
	// (cutoff, short-partition fraction).
	Trace = workload.Trace
	// Job is one job: a submit time and per-task durations.
	Job = workload.Job
	// Spec describes a synthetic workload family (Google, Cloudera, ...).
	Spec = workload.Spec
	// GenConfig parameterizes synthetic trace generation.
	GenConfig = workload.GenConfig
	// WorkloadStats is the Table 1/2 characterization of a trace.
	WorkloadStats = workload.Stats

	// Source streams a workload job by job in submit-time order, with its
	// size and defaults known up front (Meta) — the input SimulateSource
	// consumes without ever materializing the trace.
	Source = workload.Source
	// WorkloadMeta is a Source's up-front metadata: exact job count, task
	// bounds, and the trace-level defaults.
	WorkloadMeta = workload.Meta
	// TraceSource adapts an in-memory Trace to the Source interface.
	TraceSource = workload.TraceSource
	// GeneratorSource streams a synthetic workload draw-for-draw identical
	// to Generate, holding O(in-flight) jobs instead of the whole trace.
	GeneratorSource = workload.GeneratorSource
	// FileSource streams jobs from a hawk-trace file (see SaveTraceSource)
	// with chunked decode; Close it when done.
	FileSource = workload.FileSource

	// JobCSVSink streams per-job outcomes to CSV as a run executes (the
	// Config.JobSink counterpart of WriteResultsCSV); see NewJobCSVSink.
	JobCSVSink = policy.JobCSVSink
	// StreamedStats is a Report's bounded-memory aggregate (class counts
	// plus reservoir samples), present when WithDiscardedJobReports ran.
	StreamedStats = policy.StreamedStats
)

// Synthetic workload generators for the paper's four traces (§4.1) and the
// §2.3 motivation scenario, plus trace statistics and CSV I/O.
var (
	Google                     = workload.Google
	Cloudera                   = workload.ClouderaC
	Facebook                   = workload.Facebook
	Yahoo                      = workload.Yahoo
	AllSpecs                   = workload.AllSpecs
	SpecByName                 = workload.SpecByName
	Generate                   = workload.Generate
	MotivationWorkload         = workload.MotivationWorkload
	ComputeStats               = workload.ComputeStats
	ComputeStatsByConstruction = workload.ComputeStatsByConstruction
	WriteTraceCSV              = workload.WriteCSV
	ReadTraceCSV               = workload.ReadCSV
	LoadTraceFile              = workload.LoadFile
	SaveTraceFile              = workload.SaveFile
)

// Streaming workload sources and the hawk-trace file format: build a
// Source from an in-memory trace, a synthetic spec, or a trace file, feed
// it to SimulateSource, and convert between forms without materializing.
var (
	// NewTraceSource adapts a Trace to a Source (sorting an index view,
	// not the trace, when submit times are out of order).
	NewTraceSource = workload.NewTraceSource
	// NewGeneratorSource streams the synthetic workload Generate(spec,
	// cfg) would produce, job for job, in O(in-flight) memory.
	NewGeneratorSource = workload.NewGeneratorSource
	// OpenTraceSource opens a hawk-trace file (gzip by ".gz" suffix) for
	// streaming; it reads only the header before the first job decodes.
	OpenTraceSource = workload.OpenSource
	// SaveTraceSource drains a Source to a hawk-trace file (gzip by ".gz"
	// suffix), recycling jobs as it writes.
	SaveTraceSource = workload.SaveSource
	// MaterializeSource drains a Source into an in-memory Trace.
	MaterializeSource = workload.Materialize
	// SourceErr returns a source's streaming error, if it exposes one.
	SourceErr = workload.SourceErr
)

// ErrNotStreamTrace reports that a file lacks the hawk-trace header.
// Callers that accept both formats match it with errors.Is and fall back
// to LoadTraceFile for legacy bare-CSV traces.
var ErrNotStreamTrace = workload.ErrNotStreamTrace

// NewJobCSVSink starts a streaming per-job CSV export on w; pass
// sink.Sink to WithJobSink. CreateJobCSVSink is the file convenience.
var (
	NewJobCSVSink    = policy.NewJobCSVSink
	CreateJobCSVSink = policy.CreateJobCSVSink
)
