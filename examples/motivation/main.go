// Motivation reproduces the paper's §2.3 motivation in miniature: on a
// highly loaded cluster with a heterogeneous *workload* (a mix of short
// and long jobs — not heterogeneous hardware; for per-node speed factors
// see examples/churn and hawk.WithSpeedSkew), a purely distributed
// scheduler (Sparrow) lets short jobs queue behind long ones, inflating
// their runtimes by orders of magnitude — even though idle servers exist.
//
// This is the experiment behind Figure 1.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/hawk"
	"repro/internal/stats"
)

func main() {
	// §2.3: 1000 jobs on 15000 nodes. 95% short jobs (100 tasks x 100 s),
	// 5% long jobs (1000 tasks x 20000 s), Poisson arrivals, mean 50 s.
	trace := hawk.MotivationWorkload(7)

	for _, policy := range []string{"sparrow", "hawk"} {
		res, err := hawk.Simulate(trace, hawk.NewConfig(policy,
			hawk.WithNodes(15000), hawk.WithSeed(7)))
		if err != nil {
			log.Fatalf("simulation failed: %v", err)
		}
		short := res.ShortRuntimes()
		fmt.Printf("%s:\n", res.Policy)
		fmt.Printf("  median utilization: %.1f%%  (enough idle servers for any short job)\n",
			100*res.Utilization.MedianUpTo(trace.MakespanLowerBound()))
		fmt.Printf("  short jobs over 15000 s: %.1f%%  (execution time is just 100 s)\n",
			100*(1-stats.FractionAtOrBelow(short, 15000)))
		fmt.Println("  CDF of short-job runtime:")
		plotCDF(stats.CDF(short))
		fmt.Println()
	}
}

// plotCDF renders a small ASCII CDF like Figure 1.
func plotCDF(points []stats.CDFPoint) {
	const width = 50
	marks := []float64{100, 500, 1000, 2500, 5000, 10000, 15000, 20000, 25000, 30000}
	for _, m := range marks {
		frac := stats.CDFAt(points, m)
		bar := strings.Repeat("#", int(frac*width))
		fmt.Printf("  %7.0fs |%-*s| %5.1f%%\n", m, width, bar, 100*frac)
	}
}
